(** Canonical byte encodings of the tuples the protocol signs.

    Every [\[...\]_SK] in Table 1 is a signature over a tuple; both signer
    and verifier must serialize the tuple identically, and tuples from
    different message kinds must never collide (otherwise a signature
    issued for one context could be replayed in another).  Each payload
    therefore starts with a domain-separation tag, and variable-length
    fields are length-prefixed. *)

module Address = Manet_ipv6.Address

val addr : Address.t -> string
(** 16 bytes, network order. *)

val u32 : int -> string
val u64 : int64 -> string
val lstring : string -> string
(** 2-byte length prefix + bytes. *)

val route : Address.t list -> string
(** Count-prefixed concatenation of addresses. *)

(* Signing payloads, one per signature kind in the protocol. *)

val arep_payload : sip:Address.t -> ch:int64 -> string
(** AREP: [\[SIP, ch\]_RSK]. *)

val drep_payload : dn:string -> ch:int64 -> string
(** DREP: [\[DN, ch\]_NSK]. *)

val rreq_source_payload : sip:Address.t -> seq:int -> string
(** RREQ: [\[SIP, seq\]_SSK]. *)

val srr_entry_payload : iip:Address.t -> seq:int -> string
(** SRR hop: [\[IIP, seq\]_ISK]. *)

val rrep_payload : sip:Address.t -> seq:int -> rr:Address.t list -> string
(** RREP: [\[SIP, seq, RR\]_DSK]; also the second half of a CREP. *)

val crep_cacher_payload :
  requester:Address.t -> seq:int -> rr:Address.t list -> string
(** CREP first half: [\[S'IP, seq', RR_{S'->S}\]_SSK]. *)

val rerr_payload : reporter:Address.t -> broken_next:Address.t -> string
(** RERR: [\[IIP, I'IP\]_ISK]. *)

val probe_reply_payload :
  responder:Address.t -> origin:Address.t -> seq:int -> string

val name_reply_payload :
  name:string -> result:Address.t option -> ch:int64 -> string
(** Secure DNS lookup response, signed by the DNS server. *)

val ip_change_payload :
  old_ip:Address.t -> new_ip:Address.t -> ch:int64 -> string
(** §3.2 address change: [\[XIP, X'IP, ch\]_XSK]. *)
