lib/attacks/adversary.ml: Hashtbl List Manet_crypto Manet_ipv6 Manet_proto Manet_sim
