(* Quickstart: bring up a small IPv6 MANET with secure bootstrapping and
   routing, then exchange some data.

   Run with:  dune exec examples/quickstart.exe *)

module Scenario = Manetsec.Scenario
module Stats = Manetsec.Sim.Stats
module Address = Manetsec.Ipv6.Address

let () =
  (* Ten nodes on a 600x600 field, node 0 hosting the DNS server.  The
     secure protocol (the paper's contribution) is the default. *)
  let params =
    {
      Scenario.default_params with
      n = 10;
      seed = 2024;
      topology = Scenario.Random { width = 600.0; height = 600.0 };
    }
  in
  let s = Scenario.create params in

  (* Phase 1 — secure bootstrapping (§3.1): every host autoconfigures a
     CGA, floods an AREQ to prove uniqueness, and registers its domain
     name with the DNS first-come-first-served. *)
  Scenario.bootstrap s;
  print_endline "Bootstrapped addresses:";
  Array.iter
    (fun node ->
      Printf.printf "  node %d -> %s\n" node.Scenario.index
        (Address.to_string (Scenario.address_of s node.Scenario.index)))
    (Scenario.nodes s);
  (match Scenario.dns_server s with
  | Some dns ->
      print_endline "DNS registrations:";
      List.iter
        (fun (name, addr) ->
          Printf.printf "  %-8s -> %s\n" name (Address.to_string addr))
        (Manetsec.Dns.entries dns)
  | None -> ());

  (* Phase 2 — secure route discovery and data transfer (§3.3): node 3
     talks to node 8.  Discovery floods a signed RREQ; every relay
     appends its verifiable identity; the destination checks them all. *)
  Scenario.start_cbr s ~flows:[ (3, 8); (5, 2) ] ~interval:0.5 ~duration:20.0 ();
  Scenario.run s ~until:60.0;

  let st = Scenario.stats s in
  Printf.printf "\nTraffic summary:\n";
  Printf.printf "  offered    %d\n" (Stats.get st "data.offered");
  Printf.printf "  delivered  %d  (ratio %.2f)\n"
    (Stats.get st "data.delivered")
    (Scenario.delivery_ratio s);
  Printf.printf "  acked      %d\n" (Stats.get st "data.acked");
  (match Scenario.mean_latency s with
  | Some l -> Printf.printf "  latency    %.1f ms (mean)\n" (l *. 1000.0)
  | None -> ());
  let signs, verifies = Scenario.crypto_ops s in
  Printf.printf "  crypto     %d signatures, %d verifications\n" signs verifies;
  Printf.printf "  control    %d bytes over the air\n" (Scenario.control_bytes s)
