(* Whole-stack integration properties: random benign networks must just
   work, the stack must hold up under radio loss, mobility, real RSA,
   and identical seeds must replay identically. *)

module Prng = Manet_crypto.Prng
module Address = Manet_ipv6.Address
module Engine = Manet_sim.Engine
module Stats = Manet_sim.Stats
module Mobility = Manet_sim.Mobility
module Scenario = Manetsec.Scenario

let qtest ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name gen prop)

let stat s name = Stats.get (Scenario.stats s) name

let prop_random_benign_networks_deliver =
  (* Any connected random network with honest nodes must deliver
     everything and reject nothing. *)
  qtest ~count:12 "integration: random benign secure networks deliver fully"
    QCheck.(pair small_nat small_nat)
    (fun (seed0, n0) ->
      let seed = 1 + (seed0 mod 1000) in
      let n = 6 + (n0 mod 18) in
      let params =
        {
          Scenario.default_params with
          n;
          seed;
          topology =
            Scenario.Random
              {
                width = 250.0 *. sqrt (float_of_int n);
                height = 250.0 *. sqrt (float_of_int n);
              };
        }
      in
      let s = Scenario.create params in
      let g = Prng.create ~seed:(seed + 1) in
      let flows =
        List.init 4 (fun _ ->
            let a = 1 + Prng.int g (n - 1) in
            let rec other () =
              let b = 1 + Prng.int g (n - 1) in
              if b = a then other () else b
            in
            (a, other ()))
      in
      Scenario.start_cbr s ~flows ~interval:0.5 ~duration:10.0 ();
      Scenario.run s ~until:40.0;
      Scenario.delivery_ratio s >= 0.99
      && stat s "secure.rreq_rejected" = 0
      && stat s "secure.rrep_rejected" = 0
      && stat s "secure.hostile_suspected" = 0)

let test_lossy_radio_still_delivers () =
  (* 15% per-reception loss: MAC retries and end-to-end retries must keep
     the delivery ratio high on a 4-hop chain. *)
  let params =
    {
      Scenario.default_params with
      n = 5;
      seed = 3;
      range = 150.0;
      loss = 0.15;
      topology = Scenario.Chain { spacing = 100.0 };
    }
  in
  let s = Scenario.create params in
  Scenario.start_cbr s ~flows:[ (1, 4) ] ~interval:0.5 ~duration:20.0 ();
  Scenario.run s ~until:80.0;
  Alcotest.(check bool)
    (Printf.sprintf "delivery under loss (%.2f)" (Scenario.delivery_ratio s))
    true
    (Scenario.delivery_ratio s > 0.9)

let test_rsa_suite_end_to_end () =
  (* The full stack with real RSA signatures: bootstrap, discovery with
     per-hop signing, delivery. *)
  let params =
    {
      Scenario.default_params with
      n = 5;
      seed = 9;
      range = 150.0;
      topology = Scenario.Chain { spacing = 100.0 };
      suite = Scenario.Rsa_suite 256;
    }
  in
  let s = Scenario.create params in
  Scenario.bootstrap s;
  Alcotest.(check int) "all configured" 4 (stat s "dad.configured");
  Scenario.start_cbr s ~flows:[ (1, 4) ] ~interval:1.0 ~duration:5.0 ();
  Scenario.run s ~until:(Engine.now (Scenario.engine s) +. 30.0);
  Alcotest.(check (float 0.01)) "full delivery" 1.0 (Scenario.delivery_ratio s);
  let signs, verifies = Scenario.crypto_ops s in
  Alcotest.(check bool) "real signatures made" true (signs > 0 && verifies > 0);
  Alcotest.(check int) "nothing rejected" 0 (stat s "secure.rrep_rejected")

let test_mobility_with_secure_routing () =
  let params =
    {
      Scenario.default_params with
      n = 20;
      seed = 21;
      range = 300.0;
      topology = Scenario.Random { width = 700.0; height = 700.0 };
      mobility =
        Mobility.Random_waypoint { min_speed = 1.0; max_speed = 8.0; pause = 1.0 };
    }
  in
  let s = Scenario.create params in
  Scenario.start_cbr s ~flows:[ (1, 12); (7, 18) ] ~interval:0.5 ~duration:60.0 ();
  Scenario.run s ~until:120.0;
  Alcotest.(check bool)
    (Printf.sprintf "mobile delivery (%.2f)" (Scenario.delivery_ratio s))
    true
    (Scenario.delivery_ratio s > 0.9)
  (* Note: under mobility an honest node that moved away can look like a
     silent dropper and draw suspicion — the paper's aggressive blame
     model accepts this; credits recover through later deliveries.  So no
     zero-suspicion assertion here, only that traffic keeps flowing. *)

let test_no_dns_scenario () =
  let params =
    {
      Scenario.default_params with
      n = 4;
      seed = 5;
      range = 150.0;
      topology = Scenario.Chain { spacing = 100.0 };
      with_dns = false;
    }
  in
  let s = Scenario.create params in
  Alcotest.(check bool) "no dns server" true (Scenario.dns_server s = None);
  Scenario.start_cbr s ~flows:[ (0, 3) ] ~interval:0.5 ~duration:5.0 ();
  Scenario.run s ~until:30.0;
  Alcotest.(check (float 0.01)) "delivery" 1.0 (Scenario.delivery_ratio s)

let test_determinism_across_runs () =
  (* Identical parameters must replay identically, counter for counter —
     the property every experiment in EXPERIMENTS.md relies on. *)
  let run () =
    let params =
      {
        Scenario.default_params with
        n = 12;
        seed = 77;
        topology = Scenario.Random { width = 600.0; height = 600.0 };
        mobility =
          Mobility.Random_waypoint { min_speed = 1.0; max_speed = 5.0; pause = 1.0 };
        adversaries = [ (3, Manetsec.Adversary.grayhole 0.5) ];
      }
    in
    let s = Scenario.create params in
    Scenario.bootstrap s;
    Scenario.start_cbr s ~flows:[ (1, 9); (9, 1) ] ~interval:0.5 ~duration:20.0 ();
    Scenario.run s ~until:(Engine.now (Scenario.engine s) +. 60.0);
    Stats.counters (Scenario.stats s)
  in
  let a = run () and b = run () in
  Alcotest.(check (list (pair string int))) "identical counter state" a b

let suites =
  [
    ( "integration",
      [
        prop_random_benign_networks_deliver;
        Alcotest.test_case "lossy radio" `Quick test_lossy_radio_still_delivers;
        Alcotest.test_case "rsa suite end to end" `Quick test_rsa_suite_end_to_end;
        Alcotest.test_case "mobility" `Quick test_mobility_with_secure_routing;
        Alcotest.test_case "no dns" `Quick test_no_dns_scenario;
        Alcotest.test_case "determinism" `Quick test_determinism_across_runs;
      ] );
  ]
