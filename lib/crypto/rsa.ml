type public_key = { n : Bignum.t; e : Bignum.t }

type private_key = {
  pn : Bignum.t;
  d : Bignum.t;
  pub : public_key;
  (* CRT components: signing works mod p and mod q separately (4x fewer
     limb operations) and recombines with Garner's formula. *)
  crt_p : Bignum.t;
  crt_q : Bignum.t;
  crt_dp : Bignum.t; (* d mod (p-1) *)
  crt_dq : Bignum.t; (* d mod (q-1) *)
  crt_qinv : Bignum.t; (* q^-1 mod p *)
}

(* manetdom: allow toplevel-state — F4 public-exponent constant; bignum
   limb arrays are never written after construction, so cross-domain
   sharing is read-only. *)
let default_e = Bignum.of_int 65537

let generate g ~bits =
  if bits < 32 then invalid_arg "Rsa.generate: modulus too small";
  let half = bits / 2 in
  let rec attempt () =
    let p = Bignum.generate_prime g ~bits:half in
    let q = Bignum.generate_prime g ~bits:(bits - half) in
    if Bignum.equal p q then attempt ()
    else begin
      let n = Bignum.mul p q in
      let phi = Bignum.mul (Bignum.sub p Bignum.one) (Bignum.sub q Bignum.one) in
      match (Bignum.mod_inverse default_e phi, Bignum.mod_inverse q p) with
      | Some d, Some qinv ->
          let pub = { n; e = default_e } in
          ( pub,
            {
              pn = n;
              d;
              pub;
              crt_p = p;
              crt_q = q;
              crt_dp = Bignum.mod_ d (Bignum.sub p Bignum.one);
              crt_dq = Bignum.mod_ d (Bignum.sub q Bignum.one);
              crt_qinv = qinv;
            } )
      | _ -> attempt ()
    end
  in
  attempt ()

(* m^d mod n via the CRT: s_p = m^dp mod p, s_q = m^dq mod q,
   s = s_q + q * (qinv * (s_p - s_q) mod p). *)
let private_exp sk m =
  let sp = Bignum.mod_pow m sk.crt_dp sk.crt_p in
  let sq = Bignum.mod_pow m sk.crt_dq sk.crt_q in
  let h = Bignum.mod_ (Bignum.mul sk.crt_qinv (Bignum.sub sp sq)) sk.crt_p in
  Bignum.add sq (Bignum.mul sk.crt_q h)


let modulus_bytes pk = (Bignum.numbits pk.n + 7) / 8

let with_u16_prefix s =
  let len = String.length s in
  let b = Bytes.create 2 in
  Bytes.set b 0 (Char.chr ((len lsr 8) land 0xFF));
  Bytes.set b 1 (Char.chr (len land 0xFF));
  Bytes.unsafe_to_string b ^ s

let public_key_to_bytes pk =
  with_u16_prefix (Bignum.to_bytes_be pk.n) ^ with_u16_prefix (Bignum.to_bytes_be pk.e)

let public_key_of_bytes s =
  let read_u16 pos =
    if pos + 2 > String.length s then None
    else Some ((Char.code s.[pos] lsl 8) lor Char.code s.[pos + 1])
  in
  match read_u16 0 with
  | None -> None
  | Some n_len -> (
      if 2 + n_len > String.length s then None
      else begin
        let n = Bignum.of_bytes_be (String.sub s 2 n_len) in
        match read_u16 (2 + n_len) with
        | None -> None
        | Some e_len ->
            if 4 + n_len + e_len <> String.length s then None
            else begin
              let e = Bignum.of_bytes_be (String.sub s (4 + n_len) e_len) in
              if Bignum.sign n <= 0 || Bignum.sign e <= 0 then None
              else Some { n; e }
            end
      end)

let digest_as_int pk msg =
  Bignum.mod_ (Bignum.of_bytes_be (Sha256.digest msg)) pk.n

let sign sk msg =
  let m = digest_as_int sk.pub msg in
  let s = private_exp sk m in
  Bignum.to_bytes_be ~pad:(modulus_bytes sk.pub) s

let sign_no_crt sk msg =
  let m = digest_as_int sk.pub msg in
  let s = Bignum.mod_pow m sk.d sk.pn in
  Bignum.to_bytes_be ~pad:(modulus_bytes sk.pub) s

let verify pk ~msg ~signature =
  if String.length signature <> modulus_bytes pk then false
  else begin
    let s = Bignum.of_bytes_be signature in
    if Bignum.compare s pk.n >= 0 then false
    else begin
      let recovered = Bignum.mod_pow s pk.e pk.n in
      Bignum.equal recovered (digest_as_int pk msg)
    end
  end
