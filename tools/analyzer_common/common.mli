(** analyzer_common — shared runtime for the AST analyzers.

    manetsem (PR 4), manetdom (PR 6) and manethot (PR 9) are all
    compiler-libs analyzers with the same operational shape: parse
    [lib/**/*.ml(i)], walk the AST, filter findings through in-source
    allow directives, and diff against a committed baseline where both
    fresh findings and stale pins fail the build.  This library owns
    that shape once — the comment scanner, the allow grammar (with the
    per-tool strictness switches), the parse/alias/binding toolkit and
    the baseline machinery — so the analyzers contain only their rules.

    {1 Findings} *)

type finding = { file : string; line : int; rule : string; msg : string }

val pp_finding : Format.formatter -> finding -> unit
(** [file:line: [rule] msg] — one line, the format the CLIs print. *)

val compare_findings : finding -> finding -> int
(** Order by file, line, rule, msg — the order findings are reported. *)

val contains : string -> string -> bool
(** [contains s sub] — naive substring test (analyzer-time only). *)

(** {1 Comment scanning} *)

val scan_comments : string -> (string * int * int) list
(** Every comment of an OCaml source, as (text, first line, last line).
    Strings (plain and [{id|...|id}]), char literals and nested comments
    are tracked lexically so the line ranges are exact. *)

val words_of : string -> string list
(** Whitespace-split words of a comment body. *)

(** {1 Allow directives}

    Two grammars share one scanner.  The legacy grammar (manetsem) puts
    the directive at the start of the comment and needs no rationale.
    The strict grammar (manetdom, manethot) finds the directive anywhere
    inside a comment — one block can carry several tools' allows — and
    requires prose after the rule names; a directive without it lands in
    [a_bad] instead of suppressing. *)

type allows = {
  a_ranges : (string * int * int) list;  (** rule, first, last line *)
  a_whole : string list;  (** file-wide allows *)
  a_bad : int list;  (** strict directives missing their rationale *)
}

val no_allows : allows

val scan_allows :
  tool:string ->
  rules:string list ->
  ?anywhere:bool ->
  ?require_rationale:bool ->
  string ->
  allows
(** [scan_allows ~tool ~rules src] reads [tool:]-prefixed allow
    directives from [src]'s comments.  [anywhere] (default [false])
    selects the strict placement rule; [require_rationale] (default
    [false]) the strict rationale rule.  An [allow] suppresses on the
    comment's lines plus the line below its last line; [allow-file]
    suppresses file-wide. *)

val suppressed : ?protect:string list -> allows -> finding -> bool
(** Whether [allows] suppresses the finding.  Rules in [protect]
    (e.g. ["annotation"]) can never be suppressed. *)

(** {1 Parsing and per-file units} *)

type parsed =
  | Impl of Parsetree.structure
  | Intf of Parsetree.signature
  | Fail of int * string

type unit_ = {
  u_path : string;
  u_mod : string;  (** capitalized basename: the compilation unit name *)
  u_parsed : parsed;
  u_aliases : (string, string) Hashtbl.t;  (** local module aliases *)
  u_allows : allows;
  u_analyzed : bool;  (** false for reference-only (use-site) files *)
}

val parse_file : string -> string -> parsed
(** Parse one source text; syntax errors become [Fail (line, msg)]. *)

val mk_unit :
  ?analyzed:bool -> scan:(string -> allows) -> string * string -> unit_
(** Build a unit from (path, content).  [scan] is the tool's configured
    {!scan_allows}; it only runs when [analyzed] (default [true]) —
    reference files carry {!no_allows}. *)

val parse_failures : unit_ list -> finding list
(** One ["parse"] finding per analyzed unit that failed to parse. *)

val annotation_findings : tool:string -> unit_ list -> finding list
(** One unsuppressible ["annotation"] finding per rationale-free strict
    directive ([a_bad]) across the units. *)

val filter_suppressed :
  ?protect:string list -> unit_ list -> finding list -> finding list
(** Filter findings through each unit's allows, then sort and de-dup —
    the shared tail of every analyzer's [analyze]. *)

val lid_last : Longident.t -> string
(** Last component of a long identifier. *)

val resolve :
  (string, string) Hashtbl.t -> Longident.t -> string option * string
(** Map a reference to (optional module last-component, name), chasing
    one step of local [module X = A.B] aliases.  Library module
    basenames in this tree are distinct, so the last component
    identifies a module uniquely. *)

val collect_aliases : Parsetree.structure -> (string, string) Hashtbl.t -> unit
(** Record [module X = A.B] aliases (nested structures included). *)

(** {1 Top-level bindings} *)

type binding = {
  b_unit : unit_;
  b_mod : string;  (** enclosing module: file module or submodule *)
  b_name : string;
  b_expr : Parsetree.expression;
  b_line : int;
}

val binding_name : Parsetree.pattern -> string option
(** The variable a pattern binds, looking through type constraints. *)

val collect_bindings : unit_ -> binding list
(** Every top-level [let] of an implementation, nested [module struct]s
    included, in source order. *)

val sub_expressions : Parsetree.expression -> Parsetree.expression list
(** One-level expression children, for generic traversal cases. *)

(** {1 Baseline}

    A baseline pins accepted pre-existing findings so that [@lint] only
    fails on {e new} ones.  Keys deliberately omit the line number so
    unrelated edits do not invalidate the baseline. *)

val finding_key : finding -> string
(** Stable identity of a finding: ["file|rule|msg"]. *)

val render_baseline : tool:string -> finding list -> string
(** Serialize findings as a sorted, de-duplicated baseline file; [tool]
    names the regeneration command in the header comment. *)

val parse_baseline : string -> string list
(** Keys from a baseline file's contents ([#] comments, blanks skipped). *)

val diff_baseline :
  baseline:string list -> finding list -> finding list * string list
(** [(fresh, stale)]: findings whose key is not pinned, and pinned keys
    that no longer fire.  Both are failures. *)

val json_escape : string -> string

val to_json : baseline:string list -> finding list -> string
(** All findings as a JSON array (each with a ["baselined"] flag), for
    the CI artifact. *)
