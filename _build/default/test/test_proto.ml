(* Unit tests for the protocol substrate: canonical signing payloads,
   the wire-size model, the address directory, identities, and the
   source-route transmission helpers. *)

module Prng = Manet_crypto.Prng
module Suite = Manet_crypto.Suite
module Address = Manet_ipv6.Address
module Cga = Manet_ipv6.Cga
module Engine = Manet_sim.Engine
module Topology = Manet_sim.Topology
module Net = Manet_sim.Net
module Messages = Manet_proto.Messages
module Codec = Manet_proto.Codec
module Wire = Manet_proto.Wire
module Directory = Manet_proto.Directory
module Identity = Manet_proto.Identity
module Ctx = Manet_proto.Node_ctx

let qtest ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name gen prop)

let addr s = Address.of_string_exn s
let a1 = addr "fec0::1"
let a2 = addr "fec0::2"
let a3 = addr "fec0::3"

(* ------------------------------------------------------------------ *)
(* Codec                                                              *)
(* ------------------------------------------------------------------ *)

let test_codec_primitives () =
  Alcotest.(check string) "u32" "\x00\x00\x01\x02" (Codec.u32 0x102);
  Alcotest.(check string) "u64" "\x00\x00\x00\x00\x00\x00\x01\x02" (Codec.u64 0x102L);
  Alcotest.(check string) "lstring" "\x00\x03abc" (Codec.lstring "abc");
  Alcotest.(check int) "addr is 16 bytes" 16 (String.length (Codec.addr a1));
  Alcotest.(check string) "route counts" (Codec.u32 2 ^ Codec.addr a1 ^ Codec.addr a2)
    (Codec.route [ a1; a2 ])

let all_payloads () =
  [
    Codec.arep_payload ~sip:a1 ~ch:7L;
    Codec.drep_payload ~dn:"x" ~ch:7L;
    Codec.rreq_source_payload ~sip:a1 ~seq:7;
    Codec.srr_entry_payload ~iip:a1 ~seq:7;
    Codec.rrep_payload ~sip:a1 ~seq:7 ~rr:[ a2 ];
    Codec.crep_cacher_payload ~requester:a1 ~seq:7 ~rr:[ a2 ];
    Codec.rerr_payload ~reporter:a1 ~broken_next:a2;
    Codec.probe_reply_payload ~responder:a1 ~origin:a2 ~seq:7;
    Codec.name_reply_payload ~name:"x" ~result:(Some a1) ~ch:7L;
    Codec.ip_change_payload ~old_ip:a1 ~new_ip:a2 ~ch:7L;
  ]

let test_codec_domain_separation () =
  (* No two payload kinds over "the same" fields may collide: a
     signature for one context must not verify in another. *)
  let payloads = all_payloads () in
  let distinct = List.sort_uniq compare payloads in
  Alcotest.(check int) "all payloads distinct" (List.length payloads)
    (List.length distinct)

let test_codec_field_sensitivity () =
  Alcotest.(check bool) "ch matters" false
    (String.equal (Codec.arep_payload ~sip:a1 ~ch:1L) (Codec.arep_payload ~sip:a1 ~ch:2L));
  Alcotest.(check bool) "sip matters" false
    (String.equal (Codec.arep_payload ~sip:a1 ~ch:1L) (Codec.arep_payload ~sip:a2 ~ch:1L));
  Alcotest.(check bool) "rr matters" false
    (String.equal
       (Codec.rrep_payload ~sip:a1 ~seq:1 ~rr:[ a2 ])
       (Codec.rrep_payload ~sip:a1 ~seq:1 ~rr:[ a3 ]));
  Alcotest.(check bool) "seq matters" false
    (String.equal
       (Codec.rrep_payload ~sip:a1 ~seq:1 ~rr:[ a2 ])
       (Codec.rrep_payload ~sip:a1 ~seq:2 ~rr:[ a2 ]));
  (* name_reply: None vs Some must differ even with crafted names *)
  Alcotest.(check bool) "result option matters" false
    (String.equal
       (Codec.name_reply_payload ~name:"x" ~result:None ~ch:1L)
       (Codec.name_reply_payload ~name:"x" ~result:(Some a1) ~ch:1L))

let prop_route_injective =
  qtest "codec: route encoding is injective on lengths"
    QCheck.(pair (int_bound 10) (int_bound 10))
    (fun (n, m) ->
      let mk k = List.init k (fun i -> Cga.generate ~pk_bytes:(string_of_int i) ~rn:0L) in
      n = m || not (String.equal (Codec.route (mk n)) (Codec.route (mk m))))

(* ------------------------------------------------------------------ *)
(* Wire model                                                         *)
(* ------------------------------------------------------------------ *)

let test_wire_monotone_in_route_length () =
  let mk hops =
    Messages.Areq
      { sip = a1; seq = 1; dn = None; ch = 1L; rr = List.init hops (fun _ -> a2) }
  in
  let size h = Wire.size_of (mk h) in
  Alcotest.(check bool) "grows" true (size 5 > size 1);
  Alcotest.(check int) "16 bytes per extra hop" 16 (size 2 - size 1)

let test_wire_rreq_srr_cost () =
  let sig_size = 64 and pk_size = 71 in
  let entry =
    { Messages.ip = a2; sig_ = String.make sig_size 's';
      pk = String.make pk_size 'p'; rn = 1L }
  in
  let mk hops =
    Messages.Rreq
      { sip = a1; dip = a2; seq = 1; srr = List.init hops (fun _ -> entry);
        sig_ = ""; spk = ""; srn = 0L }
  in
  let s1 = Wire.size_of (mk 1) in
  let s2 = Wire.size_of (mk 2) in
  Alcotest.(check int) "per-hop SRR cost matches model"
    (Wire.srr_entry_size ~sig_size ~pk_size)
    (s2 - s1)

let test_wire_crypto_fields_scale () =
  let mk ~sig_size ~pk_size =
    Messages.Rrep
      { sip = a1; dip = a2; rr = []; remaining = [];
        sig_ = String.make sig_size 's'; dpk = String.make pk_size 'p'; drn = 0L }
  in
  let plain = Wire.size_of (mk ~sig_size:0 ~pk_size:0) in
  let fat = Wire.size_of (mk ~sig_size:64 ~pk_size:71) in
  Alcotest.(check int) "sig+pk difference" (64 + 71) (fat - plain)

let test_wire_matches_binary_codec () =
  (* The size model is by construction the codec's output plus the IPv6
     header (minus sim metadata); pin that identity for a data packet. *)
  let msg =
    Messages.Data
      { src = a1; dst = a2; seq = 5; route = [ a3 ]; remaining = [ a3; a2 ];
        payload_size = 100; sent_at = 1.25 }
  in
  Alcotest.(check int) "identity"
    (Wire.ipv6_header + String.length (Manet_proto.Binary.encode msg) - 8)
    (Wire.size_of msg)

let test_wire_all_messages_positive () =
  List.iter
    (fun msg ->
      let size = Wire.size_of msg in
      Alcotest.(check bool) (Messages.tag msg) true (size > Wire.ipv6_header))
    [
      Messages.Areq { sip = a1; seq = 1; dn = None; ch = 1L; rr = [] };
      Messages.Arep { sip = a1; rr = []; remaining = []; sig_ = ""; pk = ""; rn = 0L };
      Messages.Drep { sip = a1; dn = "d"; rr = []; remaining = []; sig_ = "" };
      Messages.Rreq { sip = a1; dip = a2; seq = 1; srr = []; sig_ = ""; spk = ""; srn = 0L };
      Messages.Rrep { sip = a1; dip = a2; rr = []; remaining = []; sig_ = ""; dpk = ""; drn = 0L };
      Messages.Rerr { reporter = a1; broken_next = a2; dst = a3; remaining = []; sig_ = ""; pk = ""; rn = 0L };
      Messages.Data { src = a1; dst = a2; seq = 1; route = []; remaining = []; payload_size = 64; sent_at = 0.0 };
      Messages.Ack { src = a1; dst = a2; data_seq = 1; route = []; remaining = []; sent_at = 0.0 };
      Messages.Probe { origin = a1; target = a2; seq = 1; route = []; remaining = [] };
      Messages.Probe_reply { responder = a1; origin = a2; seq = 1; remaining = []; sig_ = ""; pk = ""; rn = 0L };
      Messages.Name_query { requester = a1; name = "n"; ch = 1L; route = []; remaining = [] };
      Messages.Name_reply { requester = a1; name = "n"; result = None; ch = 1L; remaining = []; sig_ = "" };
      Messages.Ip_change_request { old_ip = a1; new_ip = a2; route = []; remaining = [] };
      Messages.Ip_change_challenge { old_ip = a1; new_ip = a2; ch = 1L; remaining = [] };
      Messages.Ip_change_proof { old_ip = a1; new_ip = a2; old_rn = 0L; new_rn = 0L; pk = ""; sig_ = ""; route = []; remaining = [] };
      Messages.Ip_change_ack { old_ip = a1; new_ip = a2; accepted = true; remaining = [] };
    ]

let test_messages_with_remaining () =
  let msg = Messages.Data { src = a1; dst = a2; seq = 1; route = [ a3 ]; remaining = [ a3; a2 ]; payload_size = 0; sent_at = 0.0 } in
  (match Messages.remaining (Messages.with_remaining msg [ a2 ]) with
  | Some [ x ] -> Alcotest.(check bool) "replaced" true (Address.equal x a2)
  | _ -> Alcotest.fail "unexpected remaining");
  (* AREQ is flooded: with_remaining is the identity *)
  let areq = Messages.Areq { sip = a1; seq = 1; dn = None; ch = 1L; rr = [] } in
  Alcotest.(check bool) "areq unchanged" true (Messages.with_remaining areq [ a1 ] == areq);
  Alcotest.(check bool) "areq has no remaining" true (Messages.remaining areq = None)

(* ------------------------------------------------------------------ *)
(* Directory                                                          *)
(* ------------------------------------------------------------------ *)

let test_directory_basics () =
  let d = Directory.create () in
  Alcotest.(check (option int)) "empty" None (Directory.lookup d a1);
  Directory.register d a1 5;
  Directory.register d a1 5;
  Alcotest.(check (list int)) "idempotent" [ 5 ] (Directory.lookup_all d a1);
  Directory.register d a1 3;
  Alcotest.(check (list int)) "contested, sorted" [ 3; 5 ] (Directory.lookup_all d a1);
  Alcotest.(check (option int)) "first claimant" (Some 3) (Directory.lookup d a1);
  Directory.unregister d a1 3;
  Alcotest.(check (list int)) "one left" [ 5 ] (Directory.lookup_all d a1);
  Directory.unregister d a1 5;
  Alcotest.(check (option int)) "gone" None (Directory.lookup d a1)

let test_directory_addresses_of () =
  let d = Directory.create () in
  Directory.register d a1 7;
  Directory.register d a2 7;
  Directory.register d a3 8;
  Alcotest.(check int) "two addresses" 2 (List.length (Directory.addresses_of d 7));
  Alcotest.(check int) "one address" 1 (List.length (Directory.addresses_of d 8))

(* ------------------------------------------------------------------ *)
(* Identity                                                           *)
(* ------------------------------------------------------------------ *)

let test_identity_cga_binding () =
  let suite = Suite.mock (Prng.create ~seed:3) in
  let g = Prng.create ~seed:4 in
  let id = Identity.create suite g ~node_id:1 in
  Alcotest.(check bool) "address is own CGA" true
    (Cga.verify id.Identity.address ~pk_bytes:(Identity.pk_bytes id) ~rn:id.Identity.rn);
  let before = id.Identity.address in
  Identity.refresh_address id g;
  Alcotest.(check bool) "address changed" false (Address.equal before id.Identity.address);
  Alcotest.(check bool) "still a valid CGA" true
    (Cga.verify id.Identity.address ~pk_bytes:(Identity.pk_bytes id) ~rn:id.Identity.rn)

let test_identity_sign_roundtrip () =
  let suite = Suite.mock (Prng.create ~seed:5) in
  let g = Prng.create ~seed:6 in
  let id = Identity.create suite g ~node_id:2 in
  let sig_ = Identity.sign id "payload" in
  Alcotest.(check bool) "verifies" true
    (suite.Suite.verify ~pk_bytes:(Identity.pk_bytes id) ~msg:"payload" ~signature:sig_)

(* ------------------------------------------------------------------ *)
(* Node_ctx source-route transmission                                 *)
(* ------------------------------------------------------------------ *)

let make_ctx_world () =
  let engine = Engine.create ~seed:7 () in
  let topo = Topology.chain ~n:3 ~spacing:100.0 in
  let net = Net.create ~config:{ Net.default_config with range = 150.0 } engine topo in
  let directory = Directory.create () in
  let suite = Suite.mock (Prng.create ~seed:8) in
  let g = Prng.create ~seed:9 in
  let ids = Array.init 3 (fun i -> Identity.create suite g ~node_id:i) in
  Array.iteri (fun i id -> Directory.register directory id.Identity.address i) ids;
  let ctxs = Array.map (fun id -> Ctx.create net directory id (Prng.create ~seed:10)) ids in
  (engine, net, ids, ctxs)

let probe_msg target route =
  Messages.Probe { origin = target; target; seq = 1; route; remaining = [] }

let test_ctx_send_along_and_deliver () =
  let engine, net, ids, ctxs = make_ctx_world () in
  let a i = ids.(i).Identity.address in
  let consumed = ref None and forwarded = ref 0 in
  let handler i ~src:_ msg =
    Ctx.deliver_up ctxs.(i) ~src:0 msg
      ~consume:(fun m -> consumed := Some (i, m))
      ~forward:(fun ~next m ->
        incr forwarded;
        Ctx.send_along ctxs.(i) ~path:next m)
      ~not_mine:(fun _ -> ())
  in
  for i = 0 to 2 do
    Net.set_handler net i (handler i)
  done;
  (* 0 -> 1 -> 2 along the chain *)
  Ctx.send_along ctxs.(0) ~path:[ a 1; a 2 ] (probe_msg (a 2) []);
  Engine.run engine;
  Alcotest.(check int) "one forward" 1 !forwarded;
  (match !consumed with
  | Some (2, _) -> ()
  | Some (i, _) -> Alcotest.failf "consumed at wrong node %d" i
  | None -> Alcotest.fail "never consumed")

let test_ctx_send_along_unresolvable () =
  let engine, _net, ids, ctxs = make_ctx_world () in
  ignore ids;
  let failed = ref false in
  let ghost = addr "fec0::dead" in
  Ctx.send_along ctxs.(0) ~path:[ ghost ] ~on_fail:(fun () -> failed := true)
    (probe_msg ghost []);
  Engine.run engine;
  Alcotest.(check bool) "on_fail fired" true !failed

let test_ctx_empty_path_rejected () =
  let _engine, _net, _ids, ctxs = make_ctx_world () in
  Alcotest.check_raises "empty path" (Invalid_argument "Node_ctx.send_along: empty path")
    (fun () -> Ctx.send_along ctxs.(0) ~path:[] (probe_msg a1 []))

let test_ctx_byte_accounting () =
  let engine, net, ids, ctxs = make_ctx_world () in
  ignore net;
  let a i = ids.(i).Identity.address in
  let msg = probe_msg (a 1) [] in
  Ctx.send_along ctxs.(0) ~path:[ a 1 ] msg;
  Engine.run engine;
  let st = Engine.stats engine in
  Alcotest.(check int) "tx.probe counted" 1 (Manet_sim.Stats.get st "tx.probe");
  Alcotest.(check int) "bytes counted"
    (Ctx.size_of ctxs.(0) (Messages.with_remaining msg [ a 1 ]))
    (Manet_sim.Stats.get st "txbytes.probe")

(* ------------------------------------------------------------------ *)
(* BSAR ablation: verify_at_destination = false                       *)
(* ------------------------------------------------------------------ *)

let test_bsar_ablation_misses_impersonation () =
  (* With destination verification off (BSAR checks only the source),
     the poisoned SRR entry passes: this is precisely the gap the paper
     claims to close over BSAR. *)
  let module Scenario = Manetsec.Scenario in
  let module Adversary = Manetsec.Adversary in
  let base =
    {
      Scenario.default_params with
      n = 9;
      seed = 11;
      range = 150.0;
      topology = Scenario.Grid { cols = 3; spacing = 100.0 };
    }
  in
  let probe = Scenario.create base in
  let victim = Scenario.address_of probe 3 in
  let adversaries = [ (4, Adversary.impersonator victim); (3, Adversary.sleeper) ] in
  let run ~verify_at_destination =
    let params =
      {
        base with
        adversaries;
        secure_config =
          { base.Scenario.secure_config with verify_at_destination };
      }
    in
    let s = Scenario.create params in
    let got = ref None in
    Scenario.discover s ~src:1 ~dst:7 (fun r -> got := Some r);
    Scenario.run s ~until:20.0;
    match (Scenario.node s 1).Scenario.routing with
    | Scenario.Secure_agent agent ->
        List.exists
          (List.exists (Address.equal victim))
          (Manetsec.Secure_routing.cached_routes agent ~dst:(Scenario.address_of s 7))
    | _ -> Alcotest.fail "expected secure agent"
  in
  Alcotest.(check bool) "full protocol rejects" false (run ~verify_at_destination:true);
  Alcotest.(check bool) "BSAR-style accepts the poison" true
    (run ~verify_at_destination:false)

let suites =
  [
    ( "proto.codec",
      [
        Alcotest.test_case "primitives" `Quick test_codec_primitives;
        Alcotest.test_case "domain separation" `Quick test_codec_domain_separation;
        Alcotest.test_case "field sensitivity" `Quick test_codec_field_sensitivity;
        prop_route_injective;
      ] );
    ( "proto.wire",
      [
        Alcotest.test_case "monotone in route length" `Quick test_wire_monotone_in_route_length;
        Alcotest.test_case "srr per-hop cost" `Quick test_wire_rreq_srr_cost;
        Alcotest.test_case "crypto fields scale" `Quick test_wire_crypto_fields_scale;
        Alcotest.test_case "matches binary codec" `Quick test_wire_matches_binary_codec;
        Alcotest.test_case "all messages sized" `Quick test_wire_all_messages_positive;
        Alcotest.test_case "with_remaining" `Quick test_messages_with_remaining;
      ] );
    ( "proto.directory",
      [
        Alcotest.test_case "basics" `Quick test_directory_basics;
        Alcotest.test_case "addresses_of" `Quick test_directory_addresses_of;
      ] );
    ( "proto.identity",
      [
        Alcotest.test_case "cga binding" `Quick test_identity_cga_binding;
        Alcotest.test_case "sign roundtrip" `Quick test_identity_sign_roundtrip;
      ] );
    ( "proto.node_ctx",
      [
        Alcotest.test_case "send along and deliver" `Quick test_ctx_send_along_and_deliver;
        Alcotest.test_case "unresolvable next hop" `Quick test_ctx_send_along_unresolvable;
        Alcotest.test_case "empty path rejected" `Quick test_ctx_empty_path_rejected;
        Alcotest.test_case "byte accounting" `Quick test_ctx_byte_accounting;
      ] );
    ( "secure.ablation",
      [
        Alcotest.test_case "bsar-style misses impersonation" `Quick
          test_bsar_ablation_misses_impersonation;
      ] );
  ]
