(* Self-tests for manetlint: each rule must fire on a synthetic bad
   input, stay quiet on the matching good input, and honour its
   suppression annotation. *)

module Lint = Manetlint.Lint

let count rule files =
  List.length (List.filter (fun f -> f.Lint.rule = rule) (Lint.lint_files files))

let fires name rule files = Alcotest.(check bool) name true (count rule files > 0)
let clean name rule files = Alcotest.(check int) name 0 (count rule files)

(* --- determinism ------------------------------------------------------- *)

let test_determinism () =
  fires "gettimeofday in lib" "determinism"
    [ ("lib/sim/clock.ml", {|let now () = Unix.gettimeofday ()|}) ];
  clean "same code outside lib" "determinism"
    [ ("bin/clock.ml", {|let now () = Unix.gettimeofday ()|}) ];
  fires "Random.self_init" "determinism"
    [ ("lib/a.ml", {|let () = Random.self_init ()|}) ];
  fires "Sys.time" "determinism" [ ("lib/a.ml", {|let t = Sys.time ()|}) ];
  fires "Hashtbl.hash" "determinism"
    [ ("lib/a.ml", {|let h x = Hashtbl.hash x|}) ];
  clean "comments are ignored" "determinism"
    [ ("lib/a.ml", "(* Unix.gettimeofday *)\nlet x = 1\n") ];
  clean "string literals are ignored" "determinism"
    [ ("lib/a.ml", {|let s = "Unix.gettimeofday"|}) ];
  (* Stdlib Random draws are banned everywhere under lib/, and the rule
     covers the fault-injection library like any other — a seeded fault
     plan that drew from Random would silently stop being replayable. *)
  fires "Random.int in lib" "determinism"
    [ ("lib/a.ml", {|let pick n = Random.int n|}) ];
  fires "Random.float in lib/faults" "determinism"
    [ ("lib/faults/jitter.ml", {|let j () = Random.float 1.0|}) ];
  fires "Random.bool in lib/faults" "determinism"
    [ ("lib/faults/coin.ml", {|let flip () = Random.bool ()|}) ];
  fires "Random.init in lib/faults" "determinism"
    [ ("lib/faults/seed.ml", {|let () = Random.init 42|}) ];
  clean "Prng draws are fine in lib/faults" "determinism"
    [ ("lib/faults/ok.ml", {|let j g = Manet_crypto.Prng.float g 1.0|}) ];
  clean "Random in test code" "determinism"
    [ ("test/a.ml", {|let pick n = Random.int n|}) ]

let test_determinism_suppression () =
  clean "allow on the line above" "determinism"
    [ ("lib/a.ml", "(* manetlint: allow determinism *)\nlet t = Sys.time ()\n") ];
  (* A multi-line allow comment anchors to its *last* line: the flagged
     construct directly below the closing line is suppressed... *)
  clean "multi-line allow anchors to its last line" "determinism"
    [
      ( "lib/a.ml",
        "(* manetlint: allow determinism\n   because the rationale\n   spans \
         lines *)\nlet t = Sys.time ()\n" );
    ];
  (* ...but a construct past that anchor line is not. *)
  fires "line beyond the anchor is not suppressed" "determinism"
    [
      ( "lib/a.ml",
        "(* manetlint: allow determinism\n   spanning lines *)\nlet ok = 1\n\
         let t = Sys.time ()\n" );
    ];
  fires "blank line breaks the anchor" "determinism"
    [
      ( "lib/a.ml",
        "(* manetlint: allow determinism\n   spanning lines *)\n\nlet t = \
         Sys.time ()\n" );
    ];
  clean "allow-file" "determinism"
    [
      ( "lib/a.ml",
        "(* manetlint: allow-file determinism *)\n\nlet t = Sys.time ()\n" );
    ];
  (* An allow for one rule must not silence another rule on the same line. *)
  fires "unrelated rule unaffected" "failwith"
    [
      ( "lib/a.ml",
        "(* manetlint: allow determinism *)\nlet f () = failwith (Sys.time ())\n"
      );
    ]

(* --- hygiene: obj-magic, catch-all, failwith --------------------------- *)

let test_obj_magic () =
  fires "Obj.magic" "obj-magic" [ ("bin/a.ml", {|let coerce x = Obj.magic x|}) ];
  clean "suppressed" "obj-magic"
    [
      ("bin/a.ml", "(* manetlint: allow obj-magic *)\nlet coerce x = Obj.magic x\n");
    ]

let test_catch_all () =
  fires "try ... with _ ->" "catch-all"
    [ ("bin/a.ml", {|let f g = try g () with _ -> 0|}) ];
  fires "with | _ ->" "catch-all"
    [ ("bin/a.ml", {|let f x = match x with | _ -> 0|}) ];
  clean "record update is not a catch-all" "catch-all"
    [ ("bin/a.ml", {|let f d route = { d with route }|}) ];
  clean "named exception is fine" "catch-all"
    [ ("bin/a.ml", {|let f g = try g () with Not_found -> 0|}) ];
  clean "suppressed" "catch-all"
    [
      ( "bin/a.ml",
        "(* manetlint: allow catch-all *)\nlet f g = try g () with _ -> 0\n" );
    ]

let test_failwith () =
  fires "failwith in lib" "failwith"
    [ ("lib/a.ml", {|let f () = failwith "no"|}) ];
  clean "failwith outside lib" "failwith"
    [ ("bin/a.ml", {|let f () = failwith "no"|}) ];
  clean "suppressed" "failwith"
    [
      ( "lib/a.ml",
        "(* manetlint: allow failwith *)\nlet f () = failwith \"no\"\n" );
    ]

(* --- obs-no-printf ------------------------------------------------------ *)

let test_obs_no_printf () =
  fires "Printf.printf in lib" "obs-no-printf"
    [ ("lib/a.ml", {|let f x = Printf.printf "%d\n" x|}) ];
  fires "print_endline in lib" "obs-no-printf"
    [ ("lib/a.ml", {|let f s = print_endline s|}) ];
  fires "Format.printf in lib" "obs-no-printf"
    [ ("lib/a.ml", {|let f s = Format.printf "%s" s|}) ];
  fires "print_string in lib" "obs-no-printf"
    [ ("lib/a.ml", {|let f s = print_string s|}) ];
  clean "same code in bin" "obs-no-printf"
    [ ("bin/a.ml", {|let f s = print_endline s|}) ];
  clean "same code in bench" "obs-no-printf"
    [ ("bench/a.ml", {|let f s = print_endline s|}) ];
  clean "sprintf builds a value" "obs-no-printf"
    [ ("lib/a.ml", {|let f x = Printf.sprintf "%d" x|}) ];
  clean "formatter combinators are fine" "obs-no-printf"
    [ ("lib/a.ml", {|let pp fmt a = Format.pp_print_string fmt a|}) ];
  clean "comments are ignored" "obs-no-printf"
    [ ("lib/a.ml", "(* Printf.printf \"x\" *)\nlet x = 1\n") ];
  clean "string literals are ignored" "obs-no-printf"
    [ ("lib/a.ml", {|let s = "print_endline"|}) ];
  clean "suppressed" "obs-no-printf"
    [
      ( "lib/a.ml",
        "(* manetlint: allow obs-no-printf *)\nlet f s = print_endline s\n" );
    ];
  (* An allow for obs-no-printf must not silence other rules. *)
  fires "unrelated rule unaffected" "failwith"
    [
      ( "lib/a.ml",
        "(* manetlint: allow obs-no-printf *)\nlet f s = print_endline s; \
         failwith s\n" );
    ]

(* --- placeholder-sig --------------------------------------------------- *)

let placeholder_src = {|let entry = { Messages.ip = me; sig_ = ""; pk = "" }|}

let test_placeholder_sig () =
  fires "empty sig_ in lib/secure" "placeholder-sig"
    [ ("lib/secure/x.ml", placeholder_src) ];
  fires "empty sig_ in lib/dad" "placeholder-sig"
    [ ("lib/dad/x.ml", placeholder_src) ];
  clean "out of scope in lib/dsr (unauthenticated baseline)" "placeholder-sig"
    [ ("lib/dsr/x.ml", placeholder_src) ];
  clean "non-empty signature is fine" "placeholder-sig"
    [ ("lib/secure/x.ml", {|let entry = { ip = me; sig_ = sign t payload }|}) ];
  clean "suppressed" "placeholder-sig"
    [
      ( "lib/secure/x.ml",
        "(* manetlint: allow placeholder-sig *)\n" ^ placeholder_src ^ "\n" );
    ]

(* --- poly-compare ------------------------------------------------------ *)

let test_poly_compare () =
  fires "bare compare" "poly-compare"
    [ ("lib/a.ml", {|let sort l = List.sort compare l|}) ];
  fires "Stdlib.compare" "poly-compare"
    [ ("lib/a.ml", {|let c = Stdlib.compare|}) ];
  clean "Int.compare is fine" "poly-compare"
    [ ("lib/a.ml", {|let sort l = List.sort Int.compare l|}) ];
  clean "module-local compare used after its definition" "poly-compare"
    [
      ( "lib/a.ml",
        "let compare a b = Int.compare a b\n\nlet sort l = List.sort compare l\n"
      );
    ];
  fires "polymorphic = on address fields" "poly-compare"
    [ ("lib/a.ml", {|let same a b = a.sip = b.sip|}) ];
  fires "polymorphic <> on address fields" "poly-compare"
    [ ("lib/a.ml", {|let differ a b = a.old_ip <> b.new_ip|}) ];
  clean "record-field binding is not an equality" "poly-compare"
    [ ("lib/a.ml", {|let mk other = { sip = other.dip; n = 1 }|}) ];
  clean "out of scope outside lib" "poly-compare"
    [ ("bin/a.ml", {|let same a b = a.sip = b.sip|}) ];
  clean "suppressed" "poly-compare"
    [
      ( "lib/a.ml",
        "(* manetlint: allow poly-compare *)\nlet same a b = a.sip = b.sip\n" );
    ]

(* --- audit-counter ------------------------------------------------------ *)

let test_audit_counter () =
  fires "Ctx.stat on a rejection counter in lib/secure" "audit-counter"
    [ ("lib/secure/x.ml", {|let f t = Ctx.stat t.ctx "secure.rrep_rejected"|}) ];
  fires "Stats.incr on a replay counter in lib/dsr" "audit-counter"
    [ ("lib/dsr/x.ml", {|let f s = Stats.incr s "rrep.replayed"|}) ];
  fires "suspicion counter in lib/dad" "audit-counter"
    [ ("lib/dad/x.ml", {|let f t = Ctx.stat t.ctx "dad.collision"|}) ];
  fires "literal on the following line still found" "audit-counter"
    [
      ( "lib/dns/x.ml",
        "let f t =\n  Ctx.stat t.ctx\n    \"dns.warning_rejected\"\n" );
    ];
  clean "neutral counter name is fine" "audit-counter"
    [ ("lib/secure/x.ml", {|let f t = Ctx.stat t.ctx "data.delivered"|}) ];
  clean "out of scope outside the protocol dirs" "audit-counter"
    [ ("lib/sim/x.ml", {|let f s = Stats.incr s "queue.rejected"|}) ];
  clean "the audit path itself is the fix, not a finding" "audit-counter"
    [
      ( "lib/secure/x.ml",
        {|let f t src = Ctx.audit t.ctx ~kind:Audit.Replay_rejected ~subject_node:src ~stats:[ "secure.rrep_rejected" ] ~cause:"replayed rrep" ()|}
      );
    ];
  clean "suppressed" "audit-counter"
    [
      ( "lib/secure/x.ml",
        "(* manetlint: allow audit-counter *)\nlet f t = Ctx.stat t.ctx \
         \"secure.rrep_rejected\"\n" );
    ]

(* --- mli coverage ------------------------------------------------------ *)

let test_mli_coverage () =
  fires "lib module without mli" "mli-coverage"
    [ ("lib/foo/a.ml", "let x = 1\n") ];
  clean "lib module with mli" "mli-coverage"
    [ ("lib/foo/a.ml", "let x = 1\n"); ("lib/foo/a.mli", "val x : int\n") ];
  clean "bin module needs no mli" "mli-coverage"
    [ ("bin/a.ml", "let x = 1\n") ];
  clean "suppressed via allow-file" "mli-coverage"
    [ ("lib/foo/a.ml", "(* manetlint: allow-file mli-coverage *)\nlet x = 1\n") ]

(* --- security ----------------------------------------------------------- *)

let bad_handler =
  {|let handle_rrep t msg =
  match msg with
  | Messages.Rrep { sip; sig_; _ } -> accept t sip
  | _ -> ()
|}

let test_security_fires () =
  fires "unverified destructuring in a handler" "security"
    [ ("lib/fake/handler.ml", bad_handler) ];
  fires "consume_* counts as a handler" "security"
    [
      ( "lib/fake/handler.ml",
        {|let consume_rerr t msg =
  match msg with
  | Messages.Rerr { reporter; _ } -> drop_link t reporter
  | _ -> ()
|}
      );
    ]

let test_security_verified_ok () =
  clean "verify call in the arm body" "security"
    [
      ( "lib/fake/handler.ml",
        {|let consume_rrep t msg =
  match msg with
  | Messages.Rrep { sip; sig_; _ } ->
      if verify_rrep t sip sig_ then accept t sip
  | _ -> ()
|}
      );
    ];
  clean "MAC recomputation in the guard" "security"
    [
      ( "lib/fake/handler.ml",
        {|let handle_rreq t msg =
  match msg with
  | Messages.Rreq { sip; srr; _ } when rreq_mac t srr -> relay t sip
  | _ -> ()
|}
      );
    ];
  clean "verification via a same-module helper (transitive)" "security"
    [
      ( "lib/fake/handler.ml",
        {|let check_reply t m = Suite.verify t m

let consume_rrep t msg =
  match msg with
  | Messages.Rrep { sip; _ } -> check_reply t sip
  | _ -> ()
|}
      );
    ]

let test_security_scoping () =
  clean "constructing a signed message is not destructuring" "security"
    [
      ( "lib/fake/handler.ml",
        {|let handle_fwd t msg =
  match msg with
  | Data x -> send t (Messages.Rrep { dip = x; rr = [] })
  | _ -> ()
|}
      );
    ];
  clean "non-handler functions may destructure freely" "security"
    [
      ( "lib/fake/pp.ml",
        {|let describe msg =
  match msg with
  | Messages.Rrep { sip; _ } -> pp sip
  | _ -> ()
|}
      );
    ];
  clean "wildcard dispatch is not destructuring" "security"
    [
      ( "lib/fake/handler.ml",
        {|let handle t msg =
  match msg with
  | Messages.Rrep _ -> dispatch t msg
  | _ -> ()
|}
      );
    ]

let test_security_suppression () =
  clean "annotated arm" "security"
    [
      ( "lib/fake/handler.ml",
        {|let handle_rrep t msg =
  match msg with
  (* manetlint: allow security *)
  | Messages.Rrep { sip; _ } -> accept t sip
  | _ -> ()
|}
      );
    ]

(* --- proto-schema ------------------------------------------------------- *)

let messages_mli =
  {|type t =
  | Ping of { x : int }
  | Pong of { y : int }

val tag : t -> int
|}

let binary_good =
  {|let encode m =
  let buf = Buffer.create 16 in
  match m with
  | M.Ping { x } ->
      put_u8 buf 1;
      put_int buf x
  | M.Pong { y } ->
      put_u8 buf 2;
      put_int buf y

let decode_body tag buf =
  match tag with
  | 1 -> M.Ping { x = get_int buf }
  | 2 -> M.Pong { y = get_int buf }
  | _ -> fail buf
|}

let tests_good = {|let roundtrip = [ check Ping; check Pong ]|}

let proto_files ?(messages = messages_mli) ?(binary = binary_good)
    ?(tests = tests_good) () =
  [
    ("lib/proto/messages.mli", messages);
    ("lib/proto/binary.ml", binary);
    ("test/test_binary.ml", tests);
  ]

let test_proto_schema_clean () =
  clean "consistent schema" "proto-schema" (proto_files ())

let test_proto_schema_missing_encode () =
  let binary =
    {|let encode m =
  let buf = Buffer.create 16 in
  match m with
  | M.Ping { x } ->
      put_u8 buf 1;
      put_int buf x

let decode_body tag buf =
  match tag with
  | 1 -> M.Ping { x = get_int buf }
  | _ -> fail buf
|}
  in
  fires "missing encode branch" "proto-schema" (proto_files ~binary ())

let test_proto_schema_duplicate_tag () =
  let binary =
    {|let encode m =
  let buf = Buffer.create 16 in
  match m with
  | M.Ping { x } ->
      put_u8 buf 1;
      put_int buf x
  | M.Pong { y } ->
      put_u8 buf 1;
      put_int buf y

let decode_body tag buf =
  match tag with
  | 1 -> M.Ping { x = get_int buf }
  | _ -> fail buf
|}
  in
  fires "duplicate wire tag" "proto-schema" (proto_files ~binary ())

let test_proto_schema_decode_mismatch () =
  let binary =
    {|let encode m =
  let buf = Buffer.create 16 in
  match m with
  | M.Ping { x } ->
      put_u8 buf 1;
      put_int buf x
  | M.Pong { y } ->
      put_u8 buf 2;
      put_int buf y

let decode_body tag buf =
  match tag with
  | 1 -> M.Ping { x = get_int buf }
  | 2 -> M.Ping { x = get_int buf }
  | _ -> fail buf
|}
  in
  fires "decode yields the wrong constructor" "proto-schema"
    (proto_files ~binary ())

let test_proto_schema_missing_decode () =
  let binary =
    {|let encode m =
  let buf = Buffer.create 16 in
  match m with
  | M.Ping { x } ->
      put_u8 buf 1;
      put_int buf x
  | M.Pong { y } ->
      put_u8 buf 2;
      put_int buf y

let decode_body tag buf =
  match tag with
  | 1 -> M.Ping { x = get_int buf }
  | _ -> fail buf
|}
  in
  fires "missing decode arm" "proto-schema" (proto_files ~binary ())

let test_proto_schema_missing_test () =
  fires "constructor without roundtrip test" "proto-schema"
    (proto_files ~tests:{|let roundtrip = [ check Ping ]|} ())

let test_proto_schema_suppression () =
  let messages =
    {|type t =
  | Ping of { x : int }
  (* manetlint: allow proto-schema *)
  | Pong of { y : int }

val tag : t -> int
|}
  in
  clean "annotated constructor" "proto-schema"
    (proto_files ~messages ~tests:{|let roundtrip = [ check Ping ]|} ())

(* --- scenario-keyword --------------------------------------------------- *)

let scenario_schema =
  {|let kw_blackhole = "blackhole"
let kw_nodes = "nodes"
|}

let test_scenario_keyword_fires () =
  fires "stray vocabulary literal outside schema.ml" "scenario-keyword"
    [
      ("lib/scenario/schema.ml", scenario_schema);
      ("lib/scenario/scn.ml", {|let k = "blackhole"|});
    ]

let test_scenario_keyword_clean () =
  clean "schema.ml itself and non-vocabulary strings" "scenario-keyword"
    [
      ("lib/scenario/schema.ml", scenario_schema);
      ("lib/scenario/scn.ml", {|let msg = "not a keyword here"|});
    ]

let test_scenario_keyword_outside_tree () =
  clean "vocabulary literal outside lib/scenario" "scenario-keyword"
    [
      ("lib/scenario/schema.ml", scenario_schema);
      ("lib/core/other.ml", {|let k = "blackhole"|});
    ]

let test_scenario_keyword_missing_schema () =
  fires "lib/scenario without a schema.ml keyword table" "scenario-keyword"
    [ ("lib/scenario/scn.ml", {|let k = "blackhole"|}) ]

let test_scenario_keyword_suppression () =
  clean "annotated stray literal" "scenario-keyword"
    [
      ("lib/scenario/schema.ml", scenario_schema);
      ( "lib/scenario/scn.ml",
        {|(* manetlint: allow scenario-keyword *)
let k = "blackhole"|} );
    ]

(* --- schedule-label ---------------------------------------------------- *)

let test_schedule_label_fires () =
  fires "unlabeled schedule" "schedule-label"
    [
      ( "lib/dsr/dsr.ml",
        {|let arm t = Engine.schedule t.engine ~delay:1.0 (fun () -> fire t)|}
      );
    ];
  fires "unlabeled schedule_at" "schedule-label"
    [
      ( "lib/faults/faults.ml",
        {|let arm t = Engine.schedule_at t.engine ~time:3.0 (fun () -> fire t)|}
      );
    ];
  fires "unlabeled eta-passed callback" "schedule-label"
    [ ("lib/a.ml", {|let arm t cb = Engine.schedule t.engine ~delay:0.1 cb|}) ]

let test_schedule_label_clean () =
  clean "labeled schedule" "schedule-label"
    [
      ( "lib/dsr/dsr.ml",
        {|let arm t =
  Engine.schedule t.engine ~label:"dsr" ~delay:1.0 (fun () -> fire t)|}
      );
    ];
  clean "labeled schedule_at" "schedule-label"
    [
      ( "lib/faults/faults.ml",
        {|let arm t =
  Engine.schedule_at t.engine ~label:"fault" ~time:3.0 (fun () -> fire t)|}
      );
    ];
  (* A ~label inside the scheduled closure must not satisfy the call
     site: the window stops at the first "(fun". *)
  fires "label only inside the closure" "schedule-label"
    [
      ( "lib/a.ml",
        {|let arm t =
  Engine.schedule t.engine ~delay:1.0 (fun () ->
      Engine.schedule t.engine ~label:"x" ~delay:1.0 ignore)|}
      );
    ];
  clean "same code outside lib" "schedule-label"
    [
      ( "bin/main.ml",
        {|let arm t = Engine.schedule t.engine ~delay:1.0 (fun () -> fire t)|}
      );
    ]

let test_schedule_label_suppression () =
  clean "annotated unlabeled schedule" "schedule-label"
    [
      ( "lib/a.ml",
        {|(* manetlint: allow schedule-label — generic timer helper *)
let arm t cb = Engine.schedule t.engine ~delay:0.1 cb|}
      );
    ]

(* --- flood-origin-label ------------------------------------------------- *)

let test_flood_origin_label_fires () =
  fires "broadcast without flood recording" "flood-origin-label"
    [
      ( "lib/dsr/dsr.ml",
        {|let send t msg = Ctx.broadcast t.ctx msg|} );
    ];
  fires "broadcast in lib/secure" "flood-origin-label"
    [
      ( "lib/secure/srp.ml",
        {|let relay t msg = Ctx.broadcast t.ctx msg|} );
    ]

let test_flood_origin_label_clean () =
  clean "recorded origination" "flood-origin-label"
    [
      ( "lib/dad/dad.ml",
        {|let send t key msg =
  Flood.originate (floods t) ~kind:Flood.Areq ~key ~node:0;
  Flood.sent (floods t) ~kind:Flood.Areq ~key ~node:0;
  Ctx.broadcast t.ctx msg|}
      );
    ];
  clean "recorded relay inside the closure" "flood-origin-label"
    [
      ( "lib/secure/secure_routing.ml",
        {|let relay t key msg =
  Engine.schedule t.engine ~label:"secure" ~delay:0.01 (fun () ->
      Flood.sent (floods t) ~kind:Flood.Rreq ~key ~node:0;
      Ctx.broadcast t.ctx msg)|}
      );
    ];
  clean "same code outside the flooding protocols" "flood-origin-label"
    [ ("lib/attacks/adversary.ml", {|let x t msg = Ctx.broadcast t.ctx msg|}) ]

let test_flood_origin_label_suppression () =
  clean "annotated non-flood broadcast" "flood-origin-label"
    [
      ( "lib/dad/dad.ml",
        {|let warn t msg =
  (* manetlint: allow flood-origin-label — warning AREP, not a flood *)
  Ctx.broadcast t.ctx msg|}
      );
    ]

(* --- the repo itself is clean ------------------------------------------ *)

let test_rule_names_documented () =
  (* Every rule id used above must be an official rule, so suppression
     annotations can name it. *)
  List.iter
    (fun r ->
      Alcotest.(check bool)
        (Printf.sprintf "%s is a registered rule" r)
        true (List.mem r Lint.rules))
    [
      "proto-schema"; "security"; "placeholder-sig"; "determinism"; "obj-magic";
      "catch-all"; "failwith"; "mli-coverage"; "poly-compare"; "obs-no-printf";
      "audit-counter"; "scenario-keyword"; "schedule-label";
      "flood-origin-label";
    ]

let tc name f = Alcotest.test_case name `Quick f

let suites =
  [
    ( "lint",
      [
        tc "determinism" test_determinism;
        tc "determinism suppression" test_determinism_suppression;
        tc "obj-magic" test_obj_magic;
        tc "catch-all" test_catch_all;
        tc "failwith" test_failwith;
        tc "obs-no-printf" test_obs_no_printf;
        tc "placeholder-sig" test_placeholder_sig;
        tc "poly-compare" test_poly_compare;
        tc "audit-counter" test_audit_counter;
        tc "mli-coverage" test_mli_coverage;
        tc "security fires" test_security_fires;
        tc "security verified ok" test_security_verified_ok;
        tc "security scoping" test_security_scoping;
        tc "security suppression" test_security_suppression;
        tc "proto-schema clean" test_proto_schema_clean;
        tc "proto-schema missing encode" test_proto_schema_missing_encode;
        tc "proto-schema duplicate tag" test_proto_schema_duplicate_tag;
        tc "proto-schema decode mismatch" test_proto_schema_decode_mismatch;
        tc "proto-schema missing decode" test_proto_schema_missing_decode;
        tc "proto-schema missing test" test_proto_schema_missing_test;
        tc "proto-schema suppression" test_proto_schema_suppression;
        tc "scenario-keyword fires" test_scenario_keyword_fires;
        tc "scenario-keyword clean" test_scenario_keyword_clean;
        tc "scenario-keyword scoping" test_scenario_keyword_outside_tree;
        tc "scenario-keyword missing schema" test_scenario_keyword_missing_schema;
        tc "scenario-keyword suppression" test_scenario_keyword_suppression;
        tc "schedule-label fires" test_schedule_label_fires;
        tc "schedule-label clean" test_schedule_label_clean;
        tc "schedule-label suppression" test_schedule_label_suppression;
        tc "flood-origin-label fires" test_flood_origin_label_fires;
        tc "flood-origin-label clean" test_flood_origin_label_clean;
        tc "flood-origin-label suppression" test_flood_origin_label_suppression;
        tc "rule registry" test_rule_names_documented;
      ] );
  ]
