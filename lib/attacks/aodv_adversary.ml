module Address = Manet_ipv6.Address
module Prng = Manet_crypto.Prng
module Aodv = Manet_aodv.Aodv
module Net = Manet_sim.Net
module Engine = Manet_sim.Engine
module Stats = Manet_sim.Stats

type behavior = { forge_rrep : bool; drop_data : bool }

let blackhole = { forge_rrep = true; drop_data = true }
let silent_dropper = { forge_rrep = false; drop_data = true }

type t = {
  behavior : behavior;
  delegate : Aodv.t;
  rng : Prng.t;
  seen_rreq : (string, unit) Hashtbl.t;
}

let create ?(behavior = blackhole) ~delegate ~rng () =
  { behavior; delegate; rng; seen_rreq = Hashtbl.create 64 }

let address t = Aodv.address t.delegate
let stat t name = Stats.incr (Engine.stats (Net.engine (Aodv.net t.delegate))) name

(* Unicast to the link-layer sender of the RREQ; its freshly installed
   reverse route carries the reply onward. *)
let send_rrep_back t ~src forged =
  let net = Aodv.net t.delegate in
  let size = Aodv.msg_size ~sig_size:32 ~pk_size:32 forged in
  Net.unicast net ~src:(Aodv.node_id t.delegate) ~dst:src ~size forged

let handle t ~src msg =
  match msg with
  (* The adversary answers requests it has no business answering; by
     design it verifies nothing before forging its reply. *)
  (* manetlint: allow security *)
  | Aodv.Rreq { src = origin; bcast_id; dst; dst_seq_known; _ }
    when t.behavior.forge_rrep && not (Address.equal dst (address t)) ->
      let key = Address.to_bytes origin ^ string_of_int bcast_id in
      if not (Hashtbl.mem t.seen_rreq key) then begin
        Hashtbl.replace t.seen_rreq key ();
        (* Fabricate an irresistibly fresh one-hop reply.  We cannot sign
           as the destination, so under SAODV the sig/hash fields are
           junk and the reply dies at the first verifier. *)
        let forged =
          Aodv.Rrep
            {
              rep_src = origin;
              rep_dst = dst;
              dst_seq = dst_seq_known + 1000;
              hop_count = 0;
              sig_ = Prng.bytes t.rng 32;
              dpk = Prng.bytes t.rng 32;
              drn = Prng.bits64 t.rng;
              hash = Prng.bytes t.rng 32;
              top_hash = Prng.bytes t.rng 32;
              max_hops = 16;
            }
        in
        stat t "attack.rrep_forged";
        send_rrep_back t ~src forged
      end
      (* Do not relay: attract, don't help. *)
  | Aodv.Data { d_dst; _ }
    when t.behavior.drop_data && not (Address.equal d_dst (address t)) ->
      stat t "attack.data_dropped"
  | _ -> Aodv.handle t.delegate ~src msg
