(** Node placement on a 2-D plane.

    Positions are mutable (mobility models update them); neighbourhood is
    the unit-disk model: two nodes hear each other iff their distance is
    at most the radio range. *)

type t

val create : n:int -> width:float -> height:float -> t
(** [n] nodes, all at the origin, on a [width] x [height] field. *)

val random : Manet_crypto.Prng.t -> n:int -> width:float -> height:float -> t
(** Uniformly random placement. *)

val chain : n:int -> spacing:float -> t
(** Nodes in a line at [spacing] intervals: node [i] at [(i*spacing, 0)].
    With range in [(spacing, 2*spacing)) this forces an [n-1]-hop path. *)

val grid : rows:int -> cols:int -> spacing:float -> t
(** Row-major grid placement; node [r*cols + c] at [(c*s, r*s)]. *)

val size : t -> int
val width : t -> float
val height : t -> float

val position : t -> int -> float * float
val set_position : t -> int -> float * float -> unit

val distance : t -> int -> int -> float

val neighbors : t -> range:float -> int -> int list
(** Nodes within [range] of the given node (excluding itself), in
    ascending id order. *)

val in_range : t -> range:float -> int -> int -> bool

val is_connected : t -> range:float -> bool
(** Whether the unit-disk graph over all nodes is a single component. *)

exception
  No_connected_placement of { n : int; range : float; attempts : int }
(** Raised by {!random_connected} when no connected placement was found:
    the requested node count / radio range / field size make connectivity
    overwhelmingly unlikely.  Carries the node count, the radio range,
    and how many placements were tried. *)

(* manetsem: allow dead-export — documented bound referenced by the
   [Disconnected] error message; part of the generator's contract. *)
val max_placement_attempts : int
(** Number of placements {!random_connected} samples before giving up. *)

val random_connected :
  Manet_crypto.Prng.t -> n:int -> width:float -> height:float -> range:float -> t
(** Resamples random placements until connected.  Raises
    {!No_connected_placement} after {!max_placement_attempts} failures. *)
