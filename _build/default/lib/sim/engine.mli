(** The discrete-event simulation engine.

    Time is a float in seconds.  Events are closures ordered by firing
    time (FIFO among equal times).  The engine owns the run's PRNG root,
    the {!Stats} registry and the {!Trace} buffer so every protocol
    module can reach them through the one engine value. *)

type t

val create : seed:int -> unit -> t
(** Fresh engine at time 0 with a PRNG derived from [seed]. *)

val now : t -> float
val rng : t -> Manet_crypto.Prng.t
(** The engine's own stream; subsystems should {!Manet_crypto.Prng.split}
    it rather than share it. *)

val stats : t -> Stats.t
val trace : t -> Trace.t

val schedule : t -> delay:float -> (unit -> unit) -> unit
(** [schedule t ~delay f] runs [f] at [now t +. delay].
    Raises [Invalid_argument] on negative delay. *)

val schedule_at : t -> time:float -> (unit -> unit) -> unit
(** Absolute-time variant; [time] must not be in the past. *)

val run : ?until:float -> ?max_events:int -> t -> unit
(** Process events in order until the queue is empty, simulated time
    would pass [until], or [max_events] have fired.  Events scheduled
    beyond [until] remain queued, so [run] can be called again. *)

val pending : t -> int
(** Number of queued events. *)

val events_processed : t -> int

val log : t -> node:int -> event:string -> detail:string -> unit
(** Convenience: trace at the current simulated time. *)
