(** A binary min-heap keyed by float priority, structure-of-arrays.

    The event queue of the discrete-event engine.  Entries with equal
    priority pop in insertion order (a monotone sequence number breaks
    ties), which keeps simulations deterministic.

    The layout is allocation-free on the hot path: priorities live in
    an unboxed float array, and each entry carries two payload halves
    in parallel arrays — for the engine, the label and the event
    closure — so neither push nor pop boxes a tuple or an entry
    record.  The minimum entry is read field by field ({!min_prio},
    {!min_fst}, {!min_snd}) and removed with {!drop_min}; callers
    check {!is_empty} first, and the accessors raise
    [Invalid_argument] on an empty heap. *)

type ('a, 'b) t

val create : unit -> ('a, 'b) t
val is_empty : ('a, 'b) t -> bool
val size : ('a, 'b) t -> int

val push : ('a, 'b) t -> float -> 'a -> 'b -> unit
(** [push h p a b] inserts the entry [(a, b)] with priority [p]. *)

val min_prio : ('a, 'b) t -> float
(** Smallest priority.  Raises [Invalid_argument] if empty. *)

val min_fst : ('a, 'b) t -> 'a
(** First payload half of the minimum entry. *)

val min_snd : ('a, 'b) t -> 'b
(** Second payload half of the minimum entry. *)

val drop_min : ('a, 'b) t -> unit
(** Remove the minimum entry.  Raises [Invalid_argument] if empty. *)
