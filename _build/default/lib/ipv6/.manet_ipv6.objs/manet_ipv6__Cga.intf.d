lib/ipv6/cga.mli: Address Manet_crypto
