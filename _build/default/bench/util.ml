(* Shared helpers for the experiment harness: aligned text tables and
   scenario shorthands. *)

let heading title =
  let bar = String.make (String.length title) '=' in
  Printf.printf "\n%s\n%s\n" title bar

let subheading title = Printf.printf "\n--- %s ---\n" title

(* Print rows as an aligned table; every row must have the header's
   arity. *)
let print_table ~header rows =
  let all = header :: rows in
  let cols = List.length header in
  let width c =
    List.fold_left (fun acc row -> max acc (String.length (List.nth row c))) 0 all
  in
  let widths = List.init cols width in
  let print_row row =
    List.iteri
      (fun c cell -> Printf.printf "%-*s  " (List.nth widths c) cell)
      row;
    print_newline ()
  in
  print_row header;
  print_row (List.map (fun w -> String.make w '-') widths);
  List.iter print_row rows

let f2 v = Printf.sprintf "%.2f" v
let f1 v = Printf.sprintf "%.1f" v
let i v = string_of_int v

let mean l =
  match l with
  | [] -> nan
  | _ -> List.fold_left ( +. ) 0.0 l /. float_of_int (List.length l)
