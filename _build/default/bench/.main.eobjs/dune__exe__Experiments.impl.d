bench/experiments.ml: Array Float Fun List Manetsec Option Printf Util
