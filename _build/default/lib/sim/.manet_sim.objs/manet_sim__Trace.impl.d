lib/sim/trace.ml: Buffer Format List Queue String
