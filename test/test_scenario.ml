(* The scenario subsystem's contract: malformed files are rejected with
   positioned (line/col) errors, every committed example validates, a
   scenario-file run is byte-identical to the equivalent hand-coded
   configuration, and fanning one file across seeds is byte-deterministic
   in the domain count. *)

module Scn = Manet_scenario.Scn
module Sexp = Manet_scenario.Sexp
module Scenario = Manetsec.Scenario
module Mobility = Manetsec.Sim.Mobility
module Engine = Manetsec.Sim.Engine
module Adversary = Manetsec.Adversary
module Obs = Manetsec.Obs
module Json = Manetsec.Obs_json
module Audit = Manetsec.Audit
module Merge = Manetsec.Merge

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.equal (String.sub s i m) sub || go (i + 1)) in
  go 0

(* Decoding [text] must fail at exactly [line]:[col] with a message
   mentioning [needle] — the positioned-error contract a user sees as
   file:line:col from `manetsim scenario check`. *)
let check_err name text ~line ~col ~needle =
  let fail_pos (pos : Sexp.pos) msg =
    Alcotest.(check (pair int int))
      (name ^ ": position") (line, col)
      (pos.Sexp.line, pos.Sexp.col);
    if not (contains msg needle) then
      Alcotest.failf "%s: error %S does not mention %S" name msg needle
  in
  match Scn.parse text with
  | _decoded -> Alcotest.failf "%s: expected a positioned error" name
  | exception Scn.Error { pos; msg } -> fail_pos pos msg
  | exception Sexp.Parse_error { pos; msg } -> fail_pos pos msg

let test_error_positions () =
  check_err "malformed sexp"
    "(scenario (schema manetsim-scenario 1)\n  (name x)\n" ~line:1 ~col:1
    ~needle:"unclosed parenthesis";
  check_err "unknown field"
    "(scenario\n  (schema manetsim-scenario 1)\n  (name ok)\n  (nodes 4)\n\
    \  (frobnicate 1))"
    ~line:5 ~col:4 ~needle:"unknown field frobnicate";
  check_err "duplicate field"
    "(scenario\n  (schema manetsim-scenario 1)\n  (name ok)\n  (nodes 4)\n\
    \  (seed 2)\n  (seed 3))"
    ~line:6 ~col:4 ~needle:"duplicate field seed";
  check_err "duplicate node id"
    "(scenario\n  (schema manetsim-scenario 1)\n  (name ok)\n  (nodes 3)\n\
    \  (topology (explicit (width 100.0) (height 100.0)\n\
    \    (node 0 1.0 1.0)\n    (node 1 2.0 2.0)\n    (node 1 3.0 3.0))))"
    ~line:8 ~col:11 ~needle:"duplicate node id 1";
  check_err "out-of-range fraction"
    "(scenario\n  (schema manetsim-scenario 1)\n  (name ok)\n  (nodes 4)\n\
    \  (loss 1.5))"
    ~line:5 ~col:9 ~needle:"out of range";
  check_err "unknown adversary kind"
    "(scenario\n  (schema manetsim-scenario 1)\n  (name ok)\n  (nodes 4)\n\
    \  (adversaries (wormhole 2)))"
    ~line:5 ~col:17 ~needle:"unknown adversary kind wormhole";
  check_err "unsupported schema version"
    "(scenario\n  (schema manetsim-scenario 2)\n  (name ok)\n  (nodes 4))"
    ~line:2 ~col:29 ~needle:"unsupported schema version 2";
  check_err "adversary on the DNS node"
    "(scenario\n  (schema manetsim-scenario 1)\n  (name ok)\n  (nodes 4)\n\
    \  (adversaries (blackhole 0)))"
    ~line:5 ~col:27 ~needle:"node 0 hosts the DNS";
  check_err "flow to itself"
    "(scenario\n  (schema manetsim-scenario 1)\n  (name ok)\n  (nodes 4)\n\
    \  (traffic (cbr (src 2) (dst 2))))"
    ~line:5 ~col:12 ~needle:"source and destination are both node 2";
  check_err "node index out of range"
    "(scenario\n  (schema manetsim-scenario 1)\n  (name ok)\n  (nodes 4)\n\
    \  (faults (crash 9 (at 5.0))))"
    ~line:5 ~col:18 ~needle:"not in [0, 4)"

(* The full vocabulary decodes to the expected typed form. *)
let test_vocabulary () =
  let scn =
    Scn.parse
      "(scenario\n\
      \  (schema manetsim-scenario 1)\n\
      \  (name kitchen-sink)\n\
      \  (seed 9)\n\
      \  (nodes 8)\n\
      \  (range 300.0)\n\
      \  (loss 0.1)\n\
      \  (promiscuous true)\n\
      \  (protocol dsr)\n\
      \  (suite (rsa 512))\n\
      \  (dns false)\n\
      \  (topology (grid (cols 4) (spacing 150.0)))\n\
      \  (mobility (walk (speed 3.0) (turn-interval 2.0)))\n\
      \  (bootstrap (stagger 0.25))\n\
      \  (duration 10.0)\n\
      \  (run-until 40.0)\n\
      \  (traffic (cbr (src 0) (dst 7) (interval 0.25) (size 256) (start 12.0)\n\
      \    (duration 8.0)))\n\
      \  (adversaries (grayhole 3 (prob 0.25)) (rerr-spammer 5 (every 2.0))\n\
      \    (identity-churner 0 (every 5.0)) (sleeper 6))\n\
      \  (faults (crash 2 (at 15.0)) (restart 2 (at 20.0))\n\
      \    (link-down 1 4 (at 16.0)) (link-up 1 4 (at 18.0))\n\
      \    (flap 4 7 (from 20.0) (until 30.0) (period 2.5))\n\
      \    (outage 3 (from 22.0) (until 28.0)))\n\
      \  (exports metrics-prom report-json))"
  in
  Alcotest.(check int) "seed" 9 scn.Scn.seed;
  Alcotest.(check bool) "promiscuous" true scn.Scn.promiscuous;
  Alcotest.(check bool) "dns off" false scn.Scn.dns;
  (match scn.Scn.protocol with
  | Scn.Dsr -> ()
  | Scn.Secure | Scn.Srp -> Alcotest.fail "expected the dsr protocol");
  (match scn.Scn.suite with
  | Scn.Rsa 512 -> ()
  | Scn.Rsa _ | Scn.Mock -> Alcotest.fail "expected (rsa 512)");
  (match scn.Scn.topology with
  | Scn.Grid { cols = 4; _ } -> ()
  | _ -> Alcotest.fail "expected a 4-column grid");
  (match scn.Scn.mobility with
  | Scn.Walk { speed; _ } -> Alcotest.(check (float 1e-9)) "speed" 3.0 speed
  | _ -> Alcotest.fail "expected walk mobility");
  (match scn.Scn.flows with
  | [ f ] ->
      Alcotest.(check int) "size" 256 f.Scn.flow_size;
      Alcotest.(check (option (float 1e-9))) "start" (Some 12.0) f.Scn.flow_start
  | _ -> Alcotest.fail "expected one flow");
  Alcotest.(check int) "adversaries" 4 (List.length scn.Scn.adversaries);
  Alcotest.(check int) "faults" 6 (List.length scn.Scn.faults);
  Alcotest.(check int) "exports" 2 (List.length scn.Scn.exports)

let test_defaults () =
  let scn =
    Scn.parse "(scenario (schema manetsim-scenario 1) (name mini) (nodes 4))"
  in
  Alcotest.(check int) "default seed" 1 scn.Scn.seed;
  Alcotest.(check (float 1e-9)) "default duration" 60.0 scn.Scn.duration;
  Alcotest.(check (float 1e-9)) "default range" 250.0 scn.Scn.range;
  Alcotest.(check bool) "dns on" true scn.Scn.dns;
  (match scn.Scn.protocol with
  | Scn.Secure -> ()
  | Scn.Dsr | Scn.Srp -> Alcotest.fail "default protocol is secure");
  (match scn.Scn.topology with
  | Scn.Random { width; height } ->
      Alcotest.(check (float 1e-9)) "width" 1000.0 width;
      Alcotest.(check (float 1e-9)) "height" 1000.0 height
  | _ -> Alcotest.fail "default topology is random 1000x1000");
  match scn.Scn.mobility with
  | Scn.Static -> ()
  | _ -> Alcotest.fail "default mobility is static"

(* Under `dune runtest` the cwd is _build/default/test; under
   `dune exec` it is the project root. *)
let scenarios_dir =
  let from_test = Filename.concat (Filename.concat ".." "examples") "scenarios" in
  if Sys.file_exists from_test then from_test
  else Filename.concat "examples" "scenarios"

let read_scenario file =
  In_channel.with_open_bin (Filename.concat scenarios_dir file)
    In_channel.input_all

let test_examples_validate () =
  let files =
    Sys.readdir scenarios_dir |> Array.to_list
    |> List.filter (String.ends_with ~suffix:".scn")
    |> List.sort String.compare
  in
  Alcotest.(check bool)
    "at least six committed scenarios" true
    (List.length files >= 6);
  List.iter
    (fun file ->
      match Scn.parse (read_scenario file) with
      | scn ->
          Alcotest.(check bool)
            (file ^ " requests at least one export")
            true
            (List.length scn.Scn.exports >= 1)
      | exception Scn.Error { pos; msg } ->
          Alcotest.failf "%s:%d:%d: %s" file pos.Sexp.line pos.Sexp.col msg
      | exception Sexp.Parse_error { pos; msg } ->
          Alcotest.failf "%s:%d:%d: %s" file pos.Sexp.line pos.Sexp.col msg)
    files

(* The acceptance property: running blackhole_e1.scn produces exports
   byte-identical to the equivalent configuration written directly
   against the Manetsec API. *)
let test_file_equals_hand_coded () =
  let scn = Scn.parse (read_scenario "blackhole_e1.scn") in
  let file_side = Scn.execute scn in
  let exports = Scn.render_exports scn ~seed:scn.Scn.seed file_side in
  let contents_of kind =
    match List.find_opt (fun (k, _, _) -> k = kind) exports with
    | Some (_, _, contents) -> contents
    | None -> Alcotest.fail "missing export"
  in
  (* Hand-coded equivalent of the file, step by step. *)
  let params =
    {
      Scenario.default_params with
      n = 36;
      seed = 1;
      range = 250.0;
      topology = Scenario.Random { width = 900.0; height = 900.0 };
      mobility =
        Mobility.Random_waypoint { min_speed = 1.0; max_speed = 10.0; pause = 2.0 };
      protocol = Scenario.Secure;
      adversaries =
        List.map (fun i -> (i, Adversary.blackhole)) [ 5; 9; 13; 20; 27; 31; 35 ];
    }
  in
  let s = Scenario.create params in
  Obs.set_capture (Scenario.obs s) true;
  List.iter
    (fun (a, b) ->
      Scenario.start_cbr s ~flows:[ (a, b) ] ~interval:0.5 ~size:512
        ~start_at:0.0 ~duration:60.0 ())
    [ (1, 17); (3, 21); (8, 28); (14, 2); (6, 30); (11, 25); (19, 33); (22, 4) ];
  Scenario.run s ~until:120.0;
  let meta = Scn.meta scn ~seed:1 in
  (match meta with
  | [ (k1, Json.String v); (k2, Json.Int seed) ] ->
      Alcotest.(check (list string)) "meta keys" [ "scenario"; "seed" ] [ k1; k2 ];
      Alcotest.(check string) "meta name" "blackhole_e1" v;
      Alcotest.(check int) "meta seed" 1 seed
  | _ -> Alcotest.fail "unexpected meta shape");
  Alcotest.(check string) "stats csv byte-identical" (Scn.stats_csv s)
    (contents_of Scn.Stats_csv);
  Alcotest.(check string) "audit jsonl byte-identical"
    (Audit.to_jsonl ~meta (Obs.audit (Scenario.obs s)))
    (contents_of Scn.Audit_jsonl);
  Alcotest.(check string) "trace jsonl byte-identical"
    (Obs.to_jsonl ~meta (Scenario.obs s))
    (contents_of Scn.Trace_jsonl)

(* Fanning one scenario across seeds is byte-deterministic in the
   domain count (the Parallel/Merge contract, end to end). *)
let test_sweep_domain_invariant () =
  let scn =
    Scn.parse
      "(scenario\n\
      \  (schema manetsim-scenario 1)\n\
      \  (name chain-sweep)\n\
      \  (nodes 5)\n\
      \  (topology (chain (spacing 200.0)))\n\
      \  (bootstrap (stagger 0.5))\n\
      \  (duration 5.0)\n\
      \  (run-until 30.0)\n\
      \  (traffic (cbr (src 1) (dst 4) (interval 1.0)))\n\
      \  (exports stats-csv))"
  in
  let runs1 = Scn.sweep ~domains:1 ~seeds:[ 1; 2 ] scn in
  let runs2 = Scn.sweep ~domains:2 ~seeds:[ 1; 2 ] scn in
  (match runs1 with
  | r :: _ ->
      Alcotest.(check bool)
        "run key is the scenario meta" true
        (r.Merge.key = Scn.meta scn ~seed:1)
  | [] -> Alcotest.fail "no runs");
  Alcotest.(check string) "merged stats byte-identical"
    (Merge.stats_csv runs1) (Merge.stats_csv runs2);
  Alcotest.(check string) "merged audit byte-identical"
    (Merge.stream_jsonl ~name:"audit" runs1)
    (Merge.stream_jsonl ~name:"audit" runs2);
  Alcotest.(check string) "merged trace byte-identical"
    (Merge.stream_jsonl ~name:"trace" runs1)
    (Merge.stream_jsonl ~name:"trace" runs2)

let suites =
  [
    ( "scenario",
      [
        Alcotest.test_case "positioned errors" `Quick test_error_positions;
        Alcotest.test_case "vocabulary decode" `Quick test_vocabulary;
        Alcotest.test_case "defaults" `Quick test_defaults;
        Alcotest.test_case "examples validate" `Quick test_examples_validate;
        Alcotest.test_case "file run equals hand-coded run" `Slow
          test_file_equals_hand_coded;
        Alcotest.test_case "sweep domain-invariant" `Slow
          test_sweep_domain_invariant;
      ] );
  ]
