module Address = Manet_ipv6.Address

type 'a entry = {
  route : Address.t list;
  meta : 'a;
  added_at : float;
  mutable last_used : float;
}

type 'a t = {
  by_dst : (string, (Address.t * 'a entry list ref)) Hashtbl.t;
  capacity_per_dst : int;
}

let key = Address.to_bytes

let create ?(capacity_per_dst = 4) () =
  { by_dst = Hashtbl.create 32; capacity_per_dst }

let same_route r1 r2 =
  List.length r1 = List.length r2 && List.for_all2 Address.equal r1 r2

let insert t ~dst ~route ~meta ~now =
  let k = key dst in
  let _, entries =
    match Hashtbl.find_opt t.by_dst k with
    | Some pair -> pair
    | None ->
        let pair = (dst, ref []) in
        Hashtbl.add t.by_dst k pair;
        pair
  in
  match List.find_opt (fun e -> same_route e.route route) !entries with
  | Some e -> e.last_used <- now
  | None ->
      let e = { route; meta; added_at = now; last_used = now } in
      let kept =
        if List.length !entries >= t.capacity_per_dst then begin
          (* Evict the least recently used. *)
          let sorted =
            List.sort (fun a b -> Float.compare b.last_used a.last_used) !entries
          in
          List.filteri (fun i _ -> i < t.capacity_per_dst - 1) sorted
        end
        else !entries
      in
      entries := e :: kept

let entries t ~dst =
  match Hashtbl.find_opt t.by_dst (key dst) with
  | None -> []
  | Some (_, l) -> List.sort (fun a b -> Float.compare b.last_used a.last_used) !l

let best t ~dst ~score =
  match entries t ~dst with
  | [] -> None
  | all ->
      let best =
        List.fold_left
          (fun acc e ->
            match acc with
            | None -> Some (e, score e)
            | Some (_, s) ->
                let s' = score e in
                if s' > s then Some (e, s') else acc)
          None all
      in
      Option.map fst best

let filter_entries t keep =
  (* Apply [keep dst entry] to every entry; count removals. *)
  let removed = ref 0 in
  (* manetsem: allow determinism — order-insensitive: each bucket's ref
     cell is rewritten independently and the removal count is a
     commutative sum, so visiting order cannot leak anywhere. *)
  Hashtbl.iter
    (fun _ (dst, l) ->
      let kept = List.filter (fun e -> keep dst e) !l in
      removed := !removed + (List.length !l - List.length kept);
      l := kept)
    t.by_dst;
  !removed

let path_has_link ~owner ~dst route ~a ~b =
  let full = (owner :: route) @ [ dst ] in
  let rec scan = function
    | x :: (y :: _ as rest) ->
        if Address.equal x a && Address.equal y b then true else scan rest
    | _ -> false
  in
  scan full

let remove_link t ~owner ~a ~b =
  filter_entries t (fun dst e -> not (path_has_link ~owner ~dst e.route ~a ~b))

let remove_containing t addr =
  filter_entries t (fun dst e ->
      not (Address.equal dst addr || List.exists (Address.equal addr) e.route))

let remove_route t ~dst ~route =
  match Hashtbl.find_opt t.by_dst (key dst) with
  | None -> ()
  | Some (_, l) -> l := List.filter (fun e -> not (same_route e.route route)) !l

let size t = Hashtbl.fold (fun _ (_, l) acc -> acc + List.length !l) t.by_dst 0

