lib/proto/binary.ml: Buffer Char Int64 List Manet_ipv6 Messages Option Printf String
