lib/dsr/route_cache.ml: Hashtbl List Manet_ipv6 Option
