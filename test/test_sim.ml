(* Tests for the discrete-event simulator substrate. *)

module Prng = Manet_crypto.Prng
module Heap = Manet_sim.Heap
module Stats = Manet_sim.Stats
module Trace = Manet_sim.Trace
module Engine = Manet_sim.Engine
module Topology = Manet_sim.Topology
module Mobility = Manet_sim.Mobility
module Net = Manet_sim.Net

let qtest ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name gen prop)

(* ------------------------------------------------------------------ *)
(* Heap                                                               *)
(* ------------------------------------------------------------------ *)

(* Read-then-drop against the SoA accessors, as the engine does. *)
let pop h =
  if Heap.is_empty h then None
  else begin
    let p = Heap.min_prio h and v = Heap.min_snd h in
    Heap.drop_min h;
    Some (p, v)
  end

let test_heap_basic () =
  let h = Heap.create () in
  Alcotest.(check bool) "empty" true (Heap.is_empty h);
  Heap.push h 3.0 () "c";
  Heap.push h 1.0 () "a";
  Heap.push h 2.0 () "b";
  Alcotest.(check int) "size" 3 (Heap.size h);
  Alcotest.(check (pair (float 0.0) string)) "peek" (1.0, "a")
    (Heap.min_prio h, Heap.min_snd h);
  Alcotest.(check (option (pair (float 0.0) string))) "pop a" (Some (1.0, "a")) (pop h);
  Alcotest.(check (option (pair (float 0.0) string))) "pop b" (Some (2.0, "b")) (pop h);
  Alcotest.(check (option (pair (float 0.0) string))) "pop c" (Some (3.0, "c")) (pop h);
  Alcotest.(check (option (pair (float 0.0) string))) "pop empty" None (pop h);
  Alcotest.check_raises "min_prio on empty"
    (Invalid_argument "Heap.min_prio: empty heap") (fun () ->
      ignore (Heap.min_prio h))

let test_heap_fifo_ties () =
  let h = Heap.create () in
  List.iter (fun v -> Heap.push h 1.0 () v) [ 1; 2; 3; 4; 5 ];
  let order = List.init 5 (fun _ -> match pop h with Some (_, v) -> v | None -> -1) in
  Alcotest.(check (list int)) "insertion order among ties" [ 1; 2; 3; 4; 5 ] order

let prop_heap_sorts =
  qtest "heap: pops in sorted order"
    QCheck.(list (float_bound_exclusive 1000.0))
    (fun floats ->
      let h = Heap.create () in
      List.iter (fun f -> Heap.push h f () ()) floats;
      let rec drain acc =
        match pop h with None -> List.rev acc | Some (p, ()) -> drain (p :: acc)
      in
      let popped = drain [] in
      popped = List.sort compare floats)

let test_heap_interleaved () =
  (* push/pop interleaving exercises sift-down from mid-states *)
  let h = Heap.create () in
  let g = Prng.create ~seed:5 in
  let reference = ref [] in
  for _ = 1 to 1000 do
    if Prng.bool g || !reference = [] then begin
      let p = Prng.float g 100.0 in
      Heap.push h p () ();
      reference := List.merge compare [ p ] !reference
    end
    else begin
      match (pop h, !reference) with
      | Some (p, ()), r :: rest ->
          Alcotest.(check (float 0.0)) "min matches" r p;
          reference := rest
      | _ -> Alcotest.fail "heap/reference disagree on emptiness"
    end
  done

(* ------------------------------------------------------------------ *)
(* Stats                                                              *)
(* ------------------------------------------------------------------ *)

let test_stats_counters () =
  let s = Stats.create () in
  Alcotest.(check int) "missing is 0" 0 (Stats.get s "x");
  Stats.incr s "x";
  Stats.incr s "x" ~by:4;
  Stats.incr s "y";
  Alcotest.(check int) "x" 5 (Stats.get s "x");
  Alcotest.(check (list (pair string int))) "sorted" [ ("x", 5); ("y", 1) ] (Stats.counters s)

let test_stats_summary () =
  let s = Stats.create () in
  Alcotest.(check bool) "missing summary" true (Stats.summary s "lat" = None);
  List.iter (Stats.observe s "lat") [ 1.0; 2.0; 3.0; 4.0 ];
  match Stats.summary s "lat" with
  | None -> Alcotest.fail "expected summary"
  | Some sm ->
      Alcotest.(check int) "count" 4 sm.Stats.count;
      Alcotest.(check (float 1e-9)) "mean" 2.5 sm.Stats.mean;
      Alcotest.(check (float 1e-9)) "min" 1.0 sm.Stats.min;
      Alcotest.(check (float 1e-9)) "max" 4.0 sm.Stats.max;
      (* sample stddev of 1,2,3,4 = sqrt(5/3) *)
      Alcotest.(check (float 1e-9)) "stddev" (sqrt (5.0 /. 3.0)) sm.Stats.stddev

(* The sorted-output contract of Stats.counters / Stats.summaries
   (stats.mli): insertion order must never leak through, because the
   byte-determinism of every exporter built on these lists depends on
   it.  Names are inserted in an order chosen to disagree with byte
   order, across enough keys to force Hashtbl resizes. *)
let prop_stats_output_sorted =
  qtest ~count:50 "stats: counters and summaries sorted regardless of insertion"
    QCheck.(list_of_size (QCheck.Gen.int_range 1 100) (int_bound 500))
    (fun keys ->
      let s = Stats.create () in
      List.iter
        (fun k ->
          let name = Printf.sprintf "k%03d" k in
          Stats.incr s name;
          Stats.observe s name (float_of_int k))
        keys;
      let is_sorted names =
        List.equal String.equal (List.sort String.compare names) names
      in
      is_sorted (List.map fst (Stats.counters s))
      && is_sorted (List.map fst (Stats.summaries s)))

let prop_stats_welford =
  qtest ~count:100 "stats: welford mean matches direct sum"
    QCheck.(list_of_size (QCheck.Gen.int_range 1 200) (float_bound_exclusive 1000.0))
    (fun xs ->
      let s = Stats.create () in
      List.iter (Stats.observe s "v") xs;
      match Stats.summary s "v" with
      | None -> false
      | Some sm ->
          let direct = List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs) in
          abs_float (sm.Stats.mean -. direct) < 1e-6)

let test_stats_percentiles_exact () =
  let s = Stats.create () in
  for i = 1 to 100 do
    Stats.observe s "v" (float_of_int i)
  done;
  let p q = Option.get (Stats.percentile s "v" q) in
  Alcotest.(check (float 1e-9)) "p0 = min" 1.0 (p 0.0);
  Alcotest.(check (float 1e-9)) "p100 = max" 100.0 (p 1.0);
  Alcotest.(check (float 1.01)) "median" 50.5 (p 0.5);
  Alcotest.(check (float 1.01)) "p95" 95.0 (p 0.95);
  Alcotest.(check bool) "missing name" true (Stats.percentile s "nope" 0.5 = None);
  Alcotest.check_raises "bad q" (Invalid_argument "Stats.percentile: q outside [0,1]")
    (fun () -> ignore (Stats.percentile s "v" 1.5))

let test_stats_percentiles_reservoir () =
  (* Beyond the reservoir cap the estimate stays in the right ballpark. *)
  let s = Stats.create () in
  for i = 1 to 50_000 do
    Stats.observe s "v" (float_of_int (i mod 1000))
  done;
  match Stats.percentile s "v" 0.5 with
  | Some p -> Alcotest.(check bool) "median near 500" true (p > 350.0 && p < 650.0)
  | None -> Alcotest.fail "no percentile"

(* Below the 1024-slot reservoir cap the estimator must be *exact*: the
   nearest-rank order statistic sorted.(round (q * (n-1))), bit-for-bit. *)
let prop_percentile_exact_below_cap =
  qtest ~count:300 "stats: percentile exact below reservoir cap"
    QCheck.(
      pair
        (list_of_size (Gen.int_range 1 1023) (float_bound_exclusive 1000.0))
        (float_bound_inclusive 1.0))
    (fun (xs, q) ->
      let s = Stats.create () in
      List.iter (Stats.observe s "v") xs;
      let sorted = Array.of_list xs in
      Array.sort Float.compare sorted;
      let n = Array.length sorted in
      let idx = int_of_float (Float.round (q *. float_of_int (n - 1))) in
      Stats.percentile s "v" q = Some sorted.(idx))

(* Beyond the cap the reservoir is a random sample, but its RNG is a
   private LCG seeded from the stat name — so a fixed observation
   sequence must give a bit-identical estimate on every run. *)
let prop_percentile_reservoir_deterministic =
  qtest ~count:30 "stats: reservoir estimate deterministic for fixed sequence"
    QCheck.(int_bound 10_000)
    (fun seed ->
      let mk () =
        let s = Stats.create () in
        let g = Prng.create ~seed in
        for _ = 1 to 3000 do
          Stats.observe s "v" (Prng.float g 100.0)
        done;
        s
      in
      let a = mk () and b = mk () in
      List.for_all
        (fun q -> Stats.percentile a "v" q = Stats.percentile b "v" q)
        [ 0.0; 0.25; 0.5; 0.9; 0.99; 1.0 ])

let prop_percentile_out_of_range =
  qtest ~count:100 "stats: percentile rejects q outside [0,1]"
    QCheck.(float_bound_exclusive 50.0)
    (fun d ->
      let s = Stats.create () in
      Stats.observe s "v" 1.0;
      let bad q =
        match Stats.percentile s "v" q with
        | (_ : float option) -> false
        | exception Invalid_argument _ -> true
      in
      QCheck.assume (d > 0.0);
      bad (1.0 +. d) && bad (-.d))

let test_stats_clear () =
  let s = Stats.create () in
  Stats.incr s "x";
  Stats.observe s "v" 1.0;
  Stats.clear s;
  Alcotest.(check int) "counter gone" 0 (Stats.get s "x");
  Alcotest.(check bool) "summary gone" true (Stats.summary s "v" = None)

(* ------------------------------------------------------------------ *)
(* Trace                                                              *)
(* ------------------------------------------------------------------ *)

let test_trace_disabled_by_default () =
  let t = Trace.create () in
  Trace.log t ~time:1.0 ~node:0 ~event:"e" ~detail:"d";
  Alcotest.(check int) "nothing recorded" 0 (Trace.length t)

let test_trace_record_and_find () =
  let t = Trace.create () in
  Trace.enable t;
  Trace.log t ~time:1.0 ~node:0 ~event:"areq" ~detail:"first";
  Trace.log t ~time:2.0 ~node:1 ~event:"arep" ~detail:"second";
  Trace.log t ~time:3.0 ~node:2 ~event:"areq" ~detail:"third";
  Alcotest.(check int) "length" 3 (Trace.length t);
  let areqs = Trace.find t ~event:"areq" in
  Alcotest.(check int) "two areqs" 2 (List.length areqs);
  Alcotest.(check string) "order" "first" (List.hd areqs).Trace.detail

let test_trace_capacity () =
  let t = Trace.create ~capacity:3 () in
  Trace.enable t;
  for i = 1 to 5 do
    Trace.log t ~time:(float_of_int i) ~node:0 ~event:"e" ~detail:(string_of_int i)
  done;
  let details = List.map (fun e -> e.Trace.detail) (Trace.entries t) in
  Alcotest.(check (list string)) "keeps newest" [ "3"; "4"; "5" ] details

let test_trace_dropped () =
  let t = Trace.create ~capacity:3 () in
  Trace.enable t;
  Alcotest.(check int) "no drops yet" 0 (Trace.dropped t);
  for i = 1 to 5 do
    Trace.log t ~time:(float_of_int i) ~node:0 ~event:"e" ~detail:(string_of_int i)
  done;
  Alcotest.(check int) "two drops counted" 2 (Trace.dropped t);
  let rendered = Trace.render t in
  Alcotest.(check bool) "render reports drops" true
    (String.length rendered > 0
    && String.sub rendered 0 8 = "[trace: ");
  Trace.clear t;
  Alcotest.(check int) "clear resets drops" 0 (Trace.dropped t);
  Trace.log t ~time:1.0 ~node:0 ~event:"e" ~detail:"x";
  Alcotest.(check bool) "no header below capacity" true
    (String.sub (Trace.render t) 0 1 <> "[")

let test_trace_capacity_one () =
  let t = Trace.create ~capacity:1 () in
  Trace.enable t;
  for i = 1 to 4 do
    Trace.log t ~time:(float_of_int i) ~node:0 ~event:"e" ~detail:(string_of_int i)
  done;
  Alcotest.(check int) "length stays 1" 1 (Trace.length t);
  Alcotest.(check int) "three dropped" 3 (Trace.dropped t);
  Alcotest.(check (list string)) "newest survives" [ "4" ]
    (List.map (fun e -> e.Trace.detail) (Trace.entries t));
  (* The per-tag index must follow the ring: dropped entries are gone
     from find too. *)
  Alcotest.(check int) "index pruned with ring" 1
    (List.length (Trace.find t ~event:"e"))

let test_trace_drops_across_clear () =
  let t = Trace.create ~capacity:2 () in
  Trace.enable t;
  for i = 1 to 5 do
    Trace.log t ~time:(float_of_int i) ~node:0 ~event:"e" ~detail:(string_of_int i)
  done;
  Alcotest.(check int) "drops before clear" 3 (Trace.dropped t);
  Trace.clear t;
  Alcotest.(check int) "clear resets the counter" 0 (Trace.dropped t);
  Alcotest.(check int) "clear empties the buffer" 0 (Trace.length t);
  Alcotest.(check int) "find empty after clear" 0
    (List.length (Trace.find t ~event:"e"));
  for i = 1 to 3 do
    Trace.log t ~time:(float_of_int i) ~node:0 ~event:"e" ~detail:(string_of_int i)
  done;
  Alcotest.(check int) "counting resumes from zero" 1 (Trace.dropped t)

let test_trace_render_header_gated_on_drops () =
  let t = Trace.create ~capacity:3 () in
  Trace.enable t;
  Trace.log t ~time:1.0 ~node:0 ~event:"e" ~detail:"x";
  Alcotest.(check bool) "no header without drops" true
    (String.sub (Trace.render t) 0 1 <> "[");
  Trace.log t ~time:2.0 ~node:0 ~event:"e" ~detail:"y";
  Trace.log t ~time:3.0 ~node:0 ~event:"e" ~detail:"z";
  Trace.log t ~time:4.0 ~node:0 ~event:"e" ~detail:"w";
  Alcotest.(check string) "header once dropping" "[trace: "
    (String.sub (Trace.render t) 0 8)

let test_trace_disabled_noop () =
  let t = Trace.create ~capacity:2 () in
  for i = 1 to 10 do
    Trace.log t ~time:(float_of_int i) ~node:0 ~event:"e" ~detail:"d"
  done;
  Alcotest.(check bool) "disabled" false (Trace.is_enabled t);
  Alcotest.(check int) "no entries" 0 (Trace.length t);
  Alcotest.(check int) "no drops either" 0 (Trace.dropped t);
  Alcotest.(check int) "find empty" 0 (List.length (Trace.find t ~event:"e"));
  Alcotest.(check int) "fold sees nothing" 0
    (Trace.fold t ~init:0 ~f:(fun acc _ -> acc + 1))

let test_trace_fold_and_index_consistency () =
  (* After ring wraparound, fold order, entries and the per-tag index
     must all agree. *)
  let t = Trace.create ~capacity:4 () in
  Trace.enable t;
  for i = 1 to 10 do
    let event = if i mod 2 = 0 then "even" else "odd" in
    Trace.log t ~time:(float_of_int i) ~node:0 ~event ~detail:(string_of_int i)
  done;
  let entries = Trace.entries t in
  Alcotest.(check (list string)) "fold = entries, oldest first"
    (List.map (fun e -> e.Trace.detail) entries)
    (List.rev (Trace.fold t ~init:[] ~f:(fun acc e -> e.Trace.detail :: acc)));
  List.iter
    (fun tag ->
      Alcotest.(check (list string))
        (Printf.sprintf "find %s = filtered entries" tag)
        (List.filter_map
           (fun e -> if e.Trace.event = tag then Some e.Trace.detail else None)
           entries)
        (List.map (fun e -> e.Trace.detail) (Trace.find t ~event:tag)))
    [ "even"; "odd" ]

(* ------------------------------------------------------------------ *)
(* Engine                                                             *)
(* ------------------------------------------------------------------ *)

let test_engine_ordering () =
  let e = Engine.create ~seed:1 () in
  let log = ref [] in
  Engine.schedule e ~delay:2.0 (fun () -> log := "b" :: !log);
  Engine.schedule e ~delay:1.0 (fun () -> log := "a" :: !log);
  Engine.schedule e ~delay:3.0 (fun () -> log := "c" :: !log);
  Engine.run e;
  Alcotest.(check (list string)) "time order" [ "a"; "b"; "c" ] (List.rev !log);
  Alcotest.(check (float 1e-9)) "clock at last event" 3.0 (Engine.now e);
  Alcotest.(check int) "processed" 3 (Engine.events_processed e)

let test_engine_nested_scheduling () =
  let e = Engine.create ~seed:1 () in
  let count = ref 0 in
  let rec chain n =
    if n > 0 then
      Engine.schedule e ~delay:1.0 (fun () ->
          incr count;
          chain (n - 1))
  in
  chain 10;
  Engine.run e;
  Alcotest.(check int) "all fired" 10 !count;
  Alcotest.(check (float 1e-9)) "time advanced" 10.0 (Engine.now e)

let test_engine_until () =
  let e = Engine.create ~seed:1 () in
  let fired = ref [] in
  List.iter
    (fun d -> Engine.schedule e ~delay:d (fun () -> fired := d :: !fired))
    [ 1.0; 2.0; 3.0; 4.0 ];
  Engine.run ~until:2.5 e;
  Alcotest.(check (list (float 1e-9))) "only early events" [ 1.0; 2.0 ] (List.rev !fired);
  Alcotest.(check (float 1e-9)) "clock at horizon" 2.5 (Engine.now e);
  Alcotest.(check int) "rest pending" 2 (Engine.pending e);
  Engine.run e;
  Alcotest.(check int) "drained" 0 (Engine.pending e);
  Alcotest.(check (list (float 1e-9))) "all events" [ 1.0; 2.0; 3.0; 4.0 ] (List.rev !fired)

let test_engine_max_events () =
  let e = Engine.create ~seed:1 () in
  for i = 1 to 10 do
    Engine.schedule e ~delay:(float_of_int i) (fun () -> ())
  done;
  Engine.run ~max_events:4 e;
  Alcotest.(check int) "only 4 fired" 4 (Engine.events_processed e);
  Alcotest.(check int) "6 left" 6 (Engine.pending e)

let test_engine_negative_delay () =
  let e = Engine.create ~seed:1 () in
  Alcotest.check_raises "negative" (Invalid_argument "Engine.schedule: negative delay")
    (fun () -> Engine.schedule e ~delay:(-1.0) (fun () -> ()))

let test_engine_same_time_fifo () =
  let e = Engine.create ~seed:1 () in
  let log = ref [] in
  for i = 1 to 5 do
    Engine.schedule e ~delay:1.0 (fun () -> log := i :: !log)
  done;
  Engine.run e;
  Alcotest.(check (list int)) "fifo" [ 1; 2; 3; 4; 5 ] (List.rev !log)

let test_engine_profiling () =
  let e = Engine.create ~seed:1 () in
  Alcotest.(check bool) "off by default" false (Engine.profiling e);
  Engine.schedule e ~label:"alpha" ~delay:1.0 (fun () -> ());
  Engine.run e;
  Alcotest.(check (list (pair string int))) "nothing profiled while off" []
    (List.map (fun (l, p) -> (l, p.Engine.p_count)) (Engine.profile e));
  Engine.set_profiling e true;
  Engine.schedule e ~label:"alpha" ~delay:1.0 (fun () -> ());
  Engine.schedule e ~label:"alpha" ~delay:2.0 (fun () -> ());
  Engine.schedule e ~delay:3.0 (fun () -> ());
  Engine.run e;
  Alcotest.(check (list (pair string int))) "per-class counts"
    [ ("alpha", 2); ("other", 1) ]
    (List.map (fun (l, p) -> (l, p.Engine.p_count)) (Engine.profile e));
  Alcotest.(check bool) "wall clock accumulated" true (Engine.wall_in_run e >= 0.0);
  Alcotest.(check bool) "throughput positive" true (Engine.events_per_sec e > 0.0)

let test_engine_profiling_no_perturbation () =
  (* Profiling must not change event order, sim times or PRNG draws. *)
  let observe profiled =
    let e = Engine.create ~seed:5 () in
    Engine.set_profiling e profiled;
    let log = ref [] in
    let g = Engine.rng e in
    for i = 1 to 20 do
      Engine.schedule e ~label:(if i mod 2 = 0 then "a" else "b")
        ~delay:(Prng.float g 10.0)
        (fun () -> log := (i, Engine.now e) :: !log)
    done;
    Engine.run e;
    List.rev !log
  in
  Alcotest.(check bool) "identical schedule" true (observe false = observe true)

(* ------------------------------------------------------------------ *)
(* Topology                                                           *)
(* ------------------------------------------------------------------ *)

let test_topology_chain () =
  let t = Topology.chain ~n:5 ~spacing:100.0 in
  Alcotest.(check int) "size" 5 (Topology.size t);
  Alcotest.(check (float 1e-9)) "distance" 100.0 (Topology.distance t 0 1);
  Alcotest.(check (float 1e-9)) "distance 0-4" 400.0 (Topology.distance t 0 4);
  Alcotest.(check (list int)) "middle neighbors" [ 1; 3 ]
    (Topology.neighbors t ~range:150.0 2);
  Alcotest.(check (list int)) "end neighbors" [ 1 ] (Topology.neighbors t ~range:150.0 0);
  Alcotest.(check bool) "connected at 150" true (Topology.is_connected t ~range:150.0);
  Alcotest.(check bool) "disconnected at 50" false (Topology.is_connected t ~range:50.0)

let test_topology_grid () =
  let t = Topology.grid ~rows:3 ~cols:4 ~spacing:10.0 in
  Alcotest.(check int) "size" 12 (Topology.size t);
  (* node 5 = row 1, col 1: neighbors at range 10 are 1, 4, 6, 9 *)
  Alcotest.(check (list int)) "cross neighbors" [ 1; 4; 6; 9 ]
    (Topology.neighbors t ~range:10.5 5)

let test_topology_random_connected () =
  let g = Prng.create ~seed:3 in
  let t = Topology.random_connected g ~n:30 ~width:500.0 ~height:500.0 ~range:150.0 in
  Alcotest.(check bool) "connected" true (Topology.is_connected t ~range:150.0);
  for i = 0 to 29 do
    let x, y = Topology.position t i in
    Alcotest.(check bool) "in field" true (x >= 0.0 && x < 500.0 && y >= 0.0 && y < 500.0)
  done

let test_topology_set_position () =
  let t = Topology.create ~n:2 ~width:10.0 ~height:10.0 in
  Topology.set_position t 1 (3.0, 4.0);
  Alcotest.(check (float 1e-9)) "distance 3-4-5" 5.0 (Topology.distance t 0 1);
  Alcotest.(check bool) "in range" true (Topology.in_range t ~range:5.0 0 1);
  Alcotest.(check bool) "self never in range" false (Topology.in_range t ~range:5.0 0 0)

(* ------------------------------------------------------------------ *)
(* Mobility                                                           *)
(* ------------------------------------------------------------------ *)

let positions topo =
  Array.init (Topology.size topo) (Topology.position topo)

let test_mobility_static () =
  let e = Engine.create ~seed:1 () in
  let g = Prng.create ~seed:2 in
  let topo = Topology.random g ~n:5 ~width:100.0 ~height:100.0 in
  let before = positions topo in
  let m = Mobility.create e topo g Mobility.Static in
  Mobility.start m;
  Engine.run ~until:100.0 e;
  Alcotest.(check bool) "no movement" true (before = positions topo)

let test_mobility_waypoint_moves_and_stays_in_field () =
  let e = Engine.create ~seed:1 () in
  let g = Prng.create ~seed:2 in
  let topo = Topology.random g ~n:10 ~width:100.0 ~height:100.0 in
  let before = positions topo in
  let m =
    Mobility.create e topo g
      (Mobility.Random_waypoint { min_speed = 1.0; max_speed = 5.0; pause = 0.5 })
  in
  Mobility.start m;
  Engine.run ~until:60.0 e;
  let after = positions topo in
  Alcotest.(check bool) "nodes moved" true (before <> after);
  Array.iter
    (fun (x, y) ->
      Alcotest.(check bool) "within field" true
        (x >= 0.0 && x <= 100.0 && y >= 0.0 && y <= 100.0))
    after;
  Mobility.stop m;
  Engine.run e;
  Alcotest.(check int) "queue drains after stop" 0 (Engine.pending e)

let test_mobility_walk_bounded () =
  let e = Engine.create ~seed:7 () in
  let g = Prng.create ~seed:8 in
  let topo = Topology.random g ~n:10 ~width:50.0 ~height:50.0 in
  let m =
    Mobility.create e topo g (Mobility.Random_walk { speed = 10.0; turn_interval = 2.0 })
  in
  Mobility.start m;
  Engine.run ~until:30.0 e;
  Array.iter
    (fun (x, y) ->
      Alcotest.(check bool) "within field" true
        (x >= 0.0 && x <= 50.0 && y >= 0.0 && y <= 50.0))
    (positions topo);
  Mobility.stop m

let test_mobility_speed_bound () =
  (* Max displacement per tick must respect the speed limit. *)
  let e = Engine.create ~seed:9 () in
  let g = Prng.create ~seed:10 in
  let topo = Topology.random g ~n:5 ~width:1000.0 ~height:1000.0 in
  let m =
    Mobility.create ~tick:1.0 e topo g
      (Mobility.Random_waypoint { min_speed = 2.0; max_speed = 4.0; pause = 0.0 })
  in
  Mobility.start m;
  let prev = ref (positions topo) in
  let violations = ref 0 in
  for _ = 1 to 50 do
    Engine.run ~until:(Engine.now e +. 1.0) e;
    let cur = positions topo in
    Array.iteri
      (fun i (x, y) ->
        let px, py = !prev.(i) in
        let d = sqrt (((x -. px) ** 2.0) +. ((y -. py) ** 2.0)) in
        if d > 4.0 +. 1e-6 then incr violations)
      cur;
    prev := cur
  done;
  Mobility.stop m;
  Alcotest.(check int) "no speed violations" 0 !violations

(* ------------------------------------------------------------------ *)
(* Net                                                                *)
(* ------------------------------------------------------------------ *)

let make_net ?(config = Net.default_config) ~n ~spacing () =
  let e = Engine.create ~seed:11 () in
  let topo = Topology.chain ~n ~spacing in
  let net = Net.create ~config e topo in
  (e, net)

let test_net_broadcast_reaches_neighbors () =
  let e, net = make_net ~n:5 ~spacing:100.0 () in
  (* range 250: node 2 reaches 0,1,3,4 *)
  let received = ref [] in
  for i = 0 to 4 do
    Net.set_handler net i (fun ~src msg ->
        received := (i, src, msg) :: !received)
  done;
  Net.broadcast net ~src:2 ~size:100 "hello";
  Engine.run e;
  let receivers = List.sort compare (List.map (fun (i, _, _) -> i) !received) in
  Alcotest.(check (list int)) "neighbors got it" [ 0; 1; 3; 4 ] receivers;
  List.iter (fun (_, src, msg) ->
      Alcotest.(check int) "src" 2 src;
      Alcotest.(check string) "payload" "hello" msg)
    !received;
  Alcotest.(check int) "one transmission" 1 (Net.transmissions net);
  Alcotest.(check int) "bytes counted once" 100 (Net.bytes_sent net)

let test_net_broadcast_range_limited () =
  let e, net = make_net ~n:5 ~spacing:100.0 () in
  let cfg = { Net.default_config with range = 150.0 } in
  let topo = Net.topology net in
  ignore topo;
  let e2 = e in
  ignore e2;
  (* rebuild with short range *)
  let e = Engine.create ~seed:12 () in
  let topo = Topology.chain ~n:5 ~spacing:100.0 in
  let net = Net.create ~config:cfg e topo in
  let received = ref [] in
  for i = 0 to 4 do
    Net.set_handler net i (fun ~src:_ _ -> received := i :: !received)
  done;
  Net.broadcast net ~src:0 ~size:10 "x";
  Engine.run e;
  Alcotest.(check (list int)) "only node 1" [ 1 ] !received

let test_net_unicast_success () =
  let e, net = make_net ~n:3 ~spacing:100.0 () in
  let got = ref None in
  Net.set_handler net 1 (fun ~src msg -> got := Some (src, msg));
  let failed = ref false in
  Net.unicast net ~src:0 ~dst:1 ~size:50 ~on_fail:(fun () -> failed := true) "data";
  Engine.run e;
  Alcotest.(check (option (pair int string))) "delivered" (Some (0, "data")) !got;
  Alcotest.(check bool) "no failure" false !failed;
  Alcotest.(check int) "no unicast failures" 0 (Net.unicast_failures net)

let test_net_unicast_out_of_range_fails () =
  let cfg = { Net.default_config with range = 150.0 } in
  let e = Engine.create ~seed:13 () in
  let topo = Topology.chain ~n:3 ~spacing:100.0 in
  let net = Net.create ~config:cfg e topo in
  let got = ref false and failed = ref false in
  Net.set_handler net 2 (fun ~src:_ _ -> got := true);
  Net.unicast net ~src:0 ~dst:2 ~size:50 ~on_fail:(fun () -> failed := true) "data";
  Engine.run e;
  Alcotest.(check bool) "not delivered" false !got;
  Alcotest.(check bool) "failure reported" true !failed;
  Alcotest.(check int) "counted" 1 (Net.unicast_failures net)

let test_net_down_node () =
  let e, net = make_net ~n:3 ~spacing:100.0 () in
  let got = ref false and failed = ref false in
  Net.set_handler net 1 (fun ~src:_ _ -> got := true);
  Net.set_down net 1 true;
  Alcotest.(check bool) "is_down" true (Net.is_down net 1);
  Net.unicast net ~src:0 ~dst:1 ~size:50 ~on_fail:(fun () -> failed := true) "data";
  Engine.run e;
  Alcotest.(check bool) "down node got nothing" false !got;
  Alcotest.(check bool) "sender sees failure" true !failed;
  (* down sender transmits nothing *)
  Net.set_down net 1 false;
  Net.set_down net 0 true;
  Net.reset_counters net;
  Net.broadcast net ~src:0 ~size:10 "x";
  Engine.run e;
  Alcotest.(check int) "no transmission from down node" 0 (Net.transmissions net)

let test_net_loss_retries () =
  (* loss = 0.5 with 3 retries: most unicasts still get through; failures
     and retries are both visible in the counters. *)
  let cfg = { Net.default_config with loss = 0.5; mac_retries = 3 } in
  let e = Engine.create ~seed:17 () in
  let topo = Topology.chain ~n:2 ~spacing:100.0 in
  let net = Net.create ~config:cfg e topo in
  let delivered = ref 0 and failed = ref 0 in
  Net.set_handler net 1 (fun ~src:_ _ -> incr delivered);
  for _ = 1 to 200 do
    Net.unicast net ~src:0 ~dst:1 ~size:10 ~on_fail:(fun () -> incr failed) "x"
  done;
  Engine.run e;
  Alcotest.(check int) "accounting adds up" 200 (!delivered + !failed);
  (* P(all 4 attempts lost) = 1/16 -> expect ~12.5 failures of 200. *)
  Alcotest.(check bool) "mostly delivered" true (!delivered > 160);
  Alcotest.(check bool) "some failures" true (!failed > 0);
  Alcotest.(check bool) "retries cost transmissions" true
    (Net.transmissions net > 200)

let test_net_lossy_broadcast () =
  let cfg = { Net.default_config with loss = 0.3 } in
  let e = Engine.create ~seed:19 () in
  let topo = Topology.chain ~n:2 ~spacing:10.0 in
  let net = Net.create ~config:cfg e topo in
  let delivered = ref 0 in
  Net.set_handler net 1 (fun ~src:_ _ -> incr delivered);
  for _ = 1 to 1000 do
    Net.broadcast net ~src:0 ~size:10 "x"
  done;
  Engine.run e;
  (* Expect ~700 deliveries. *)
  Alcotest.(check bool) "loss rate plausible" true (!delivered > 620 && !delivered < 780)

let test_stats_snapshot_delta () =
  let s = Stats.create () in
  Stats.incr s "a";
  Stats.incr ~by:3 s "b";
  let before = Stats.snapshot s in
  Stats.incr ~by:2 s "b";
  Stats.incr s "c";
  let after = Stats.snapshot s in
  Alcotest.(check int) "snapshot_get present" 3 (Stats.snapshot_get before "b");
  Alcotest.(check int) "snapshot_get absent" 0 (Stats.snapshot_get before "c");
  Alcotest.(check (list (pair string int)))
    "delta omits unchanged" [ ("b", 2); ("c", 1) ]
    (Stats.delta ~before ~after)

let test_net_counters_invariant () =
  (* Seeded loss + retries + promiscuous overhear: whatever the channel
     does, bytes are exactly size * transmissions, and every offered
     unicast either reaches its handler or fires on_fail. *)
  let cfg =
    { Net.default_config with loss = 0.3; mac_retries = 3; promiscuous = true }
  in
  let e = Engine.create ~seed:29 () in
  let topo = Topology.chain ~n:3 ~spacing:100.0 in
  let net = Net.create ~config:cfg e topo in
  let got = ref 0 and overheard = ref 0 and failed = ref 0 in
  Net.set_handler net 1 (fun ~src:_ _ -> incr got);
  Net.set_handler net 2 (fun ~src:_ _ -> incr overheard);
  let offered = 100 in
  for _ = 1 to offered do
    Net.unicast net ~src:0 ~dst:1 ~size:10 ~on_fail:(fun () -> incr failed) "x"
  done;
  Engine.run e;
  Alcotest.(check int) "delivered + failed = offered" offered (!got + !failed);
  Alcotest.(check int) "bytes = size * transmissions"
    (10 * Net.transmissions net)
    (Net.bytes_sent net);
  Alcotest.(check bool) "retries happened" true
    (Net.transmissions net > offered);
  Alcotest.(check bool) "attempts bounded" true
    (Net.transmissions net <= 4 * offered);
  Alcotest.(check int) "failure counter matches callbacks" !failed
    (Net.unicast_failures net);
  Alcotest.(check bool) "promiscuous node overheard" true (!overheard > 0);
  Alcotest.(check int) "handler invocations = deliveries counter"
    (!got + !overheard) (Net.deliveries net)

let test_net_sender_down_mid_retry () =
  (* Certain loss forces the full retry ladder; the sender dies between
     the first and second attempt.  Exactly one frame must have been
     charged, and neither a retry nor on_fail may fire: the MAC state
     died with the node. *)
  let cfg = { Net.default_config with loss = 1.0; mac_retries = 3 } in
  let e = Engine.create ~seed:31 () in
  let topo = Topology.chain ~n:2 ~spacing:100.0 in
  let net = Net.create ~config:cfg e topo in
  let failed = ref false in
  Net.unicast net ~src:0 ~dst:1 ~size:50 ~on_fail:(fun () -> failed := true) "x";
  (* First attempt already happened synchronously; ack timeout is
     ~2.1e-4 s, so down the sender well before the retry. *)
  Engine.schedule e ~delay:1e-4 (fun () -> Net.set_down net 0 true);
  Engine.run e;
  Alcotest.(check int) "one transmission only" 1 (Net.transmissions net);
  Alcotest.(check int) "bytes for one frame" 50 (Net.bytes_sent net);
  Alcotest.(check bool) "no on_fail from a dead sender" false !failed;
  Alcotest.(check int) "no failure counted" 0 (Net.unicast_failures net)

let test_net_link_fault () =
  let e, net = make_net ~n:3 ~spacing:100.0 () in
  let got = ref 0 and failed = ref 0 in
  Net.set_handler net 1 (fun ~src:_ _ -> incr got);
  Net.set_link net 0 1 ~up:false;
  Alcotest.(check bool) "link reported down" false (Net.link_up net 0 1);
  Net.unicast net ~src:0 ~dst:1 ~size:10 ~on_fail:(fun () -> incr failed) "x";
  Net.broadcast net ~src:0 ~size:10 "y";
  Engine.run e;
  Alcotest.(check int) "nothing crossed the severed link" 0 !got;
  Alcotest.(check int) "unicast failed after full retries" 1 !failed;
  Alcotest.(check int) "all attempts were charged" 5 (Net.transmissions net);
  Net.set_link net 0 1 ~up:true;
  Net.unicast net ~src:0 ~dst:1 ~size:10 ~on_fail:(fun () -> incr failed) "x";
  Engine.run e;
  Alcotest.(check int) "restored link delivers" 1 !got

let test_net_partition () =
  let e, net = make_net ~n:4 ~spacing:100.0 () in
  let got = Array.make 4 0 in
  for i = 0 to 3 do
    Net.set_handler net i (fun ~src:_ _ -> got.(i) <- got.(i) + 1)
  done;
  Net.set_partition net [ 2; 3 ];
  Alcotest.(check bool) "cross-cut link down" false (Net.link_up net 1 2);
  Alcotest.(check bool) "same-side link up" true (Net.link_up net 2 3);
  Net.broadcast net ~src:1 ~size:10 "x";
  Engine.run e;
  Alcotest.(check int) "same side heard" 1 got.(0);
  Alcotest.(check int) "far side silent" 0 got.(2);
  Net.clear_partition net;
  Net.broadcast net ~src:1 ~size:10 "x";
  Engine.run e;
  Alcotest.(check bool) "healed: far side hears" true (got.(2) > 0)

let test_net_gilbert_elliott () =
  (* loss 0 in good, 1 in bad; stationary P(bad) = 0.1/(0.1+0.3) = 0.25,
     so ~75% of frames should get through. *)
  let e = Engine.create ~seed:37 () in
  let topo = Topology.chain ~n:2 ~spacing:10.0 in
  let net = Net.create e topo in
  Net.set_channel net
    (Net.Gilbert_elliott
       {
         p_good_to_bad = 0.1;
         p_bad_to_good = 0.3;
         loss_good = 0.0;
         loss_bad = 1.0;
       });
  let delivered = ref 0 in
  Net.set_handler net 1 (fun ~src:_ _ -> incr delivered);
  let frames = 2000 in
  for _ = 1 to frames do
    Net.broadcast net ~src:0 ~size:10 "x"
  done;
  Engine.run e;
  let ratio = float_of_int !delivered /. float_of_int frames in
  Alcotest.(check bool) "near stationary good fraction" true
    (ratio > 0.68 && ratio < 0.82);
  (* Burstiness: with loss 0/1 per state, consecutive frames are much
     more correlated than an i.i.d. channel — already implied by the
     Markov chain; here we just pin that the model is switchable back. *)
  Net.set_channel net (Net.Uniform { loss = 0.0 });
  let before = !delivered in
  Net.broadcast net ~src:0 ~size:10 "x";
  Engine.run e;
  Alcotest.(check int) "uniform zero-loss delivers" (before + 1) !delivered

let suites =
  [
    ( "sim.heap",
      [
        Alcotest.test_case "basic" `Quick test_heap_basic;
        Alcotest.test_case "fifo ties" `Quick test_heap_fifo_ties;
        prop_heap_sorts;
        Alcotest.test_case "interleaved" `Quick test_heap_interleaved;
      ] );
    ( "sim.stats",
      [
        Alcotest.test_case "counters" `Quick test_stats_counters;
        Alcotest.test_case "summary" `Quick test_stats_summary;
        prop_stats_output_sorted;
        prop_stats_welford;
        Alcotest.test_case "percentiles exact" `Quick test_stats_percentiles_exact;
        Alcotest.test_case "percentiles reservoir" `Quick test_stats_percentiles_reservoir;
        prop_percentile_exact_below_cap;
        prop_percentile_reservoir_deterministic;
        prop_percentile_out_of_range;
        Alcotest.test_case "clear" `Quick test_stats_clear;
        Alcotest.test_case "snapshot delta" `Quick test_stats_snapshot_delta;
      ] );
    ( "sim.trace",
      [
        Alcotest.test_case "disabled by default" `Quick test_trace_disabled_by_default;
        Alcotest.test_case "record and find" `Quick test_trace_record_and_find;
        Alcotest.test_case "capacity" `Quick test_trace_capacity;
        Alcotest.test_case "dropped count" `Quick test_trace_dropped;
        Alcotest.test_case "capacity one" `Quick test_trace_capacity_one;
        Alcotest.test_case "drops across clear" `Quick test_trace_drops_across_clear;
        Alcotest.test_case "render header gated on drops" `Quick
          test_trace_render_header_gated_on_drops;
        Alcotest.test_case "disabled no-op" `Quick test_trace_disabled_noop;
        Alcotest.test_case "fold and index consistency" `Quick
          test_trace_fold_and_index_consistency;
      ] );
    ( "sim.engine",
      [
        Alcotest.test_case "ordering" `Quick test_engine_ordering;
        Alcotest.test_case "nested scheduling" `Quick test_engine_nested_scheduling;
        Alcotest.test_case "until" `Quick test_engine_until;
        Alcotest.test_case "max events" `Quick test_engine_max_events;
        Alcotest.test_case "negative delay" `Quick test_engine_negative_delay;
        Alcotest.test_case "same time fifo" `Quick test_engine_same_time_fifo;
        Alcotest.test_case "profiling" `Quick test_engine_profiling;
        Alcotest.test_case "profiling no perturbation" `Quick
          test_engine_profiling_no_perturbation;
      ] );
    ( "sim.topology",
      [
        Alcotest.test_case "chain" `Quick test_topology_chain;
        Alcotest.test_case "grid" `Quick test_topology_grid;
        Alcotest.test_case "random connected" `Quick test_topology_random_connected;
        Alcotest.test_case "set position" `Quick test_topology_set_position;
      ] );
    ( "sim.mobility",
      [
        Alcotest.test_case "static" `Quick test_mobility_static;
        Alcotest.test_case "waypoint in field" `Quick test_mobility_waypoint_moves_and_stays_in_field;
        Alcotest.test_case "walk bounded" `Quick test_mobility_walk_bounded;
        Alcotest.test_case "speed bound" `Quick test_mobility_speed_bound;
      ] );
    ( "sim.net",
      [
        Alcotest.test_case "broadcast reaches neighbors" `Quick test_net_broadcast_reaches_neighbors;
        Alcotest.test_case "broadcast range limited" `Quick test_net_broadcast_range_limited;
        Alcotest.test_case "unicast success" `Quick test_net_unicast_success;
        Alcotest.test_case "unicast out of range" `Quick test_net_unicast_out_of_range_fails;
        Alcotest.test_case "down node" `Quick test_net_down_node;
        Alcotest.test_case "loss retries" `Quick test_net_loss_retries;
        Alcotest.test_case "lossy broadcast" `Quick test_net_lossy_broadcast;
        Alcotest.test_case "counters invariant" `Quick test_net_counters_invariant;
        Alcotest.test_case "sender down mid-retry" `Quick test_net_sender_down_mid_retry;
        Alcotest.test_case "link fault" `Quick test_net_link_fault;
        Alcotest.test_case "partition" `Quick test_net_partition;
        Alcotest.test_case "gilbert-elliott" `Quick test_net_gilbert_elliott;
      ] );
  ]
