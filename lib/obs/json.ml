type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string

(* --- printing ----------------------------------------------------------- *)

(* Canonical float rendering: integral values print with a single
   trailing ".0", everything else through %.12g.  Both are pure
   functions of the value, which is what keeps JSONL exports
   byte-identical across replays of the same seed.  NaN and the
   infinities have no JSON representation at all, so they are rejected
   here rather than silently emitted as unparseable tokens. *)
let float_str x =
  if not (Float.is_finite x) then
    invalid_arg "Json.float_str: non-finite floats have no JSON encoding";
  if Float.is_integer x && Float.abs x < 1e15 then Printf.sprintf "%.1f" x
  else Printf.sprintf "%.12g" x

let escape_to buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let rec to_buffer buf v =
  match v with
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float x -> Buffer.add_string buf (float_str x)
  | String s -> escape_to buf s
  | List items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ',';
          to_buffer buf item)
        items;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, item) ->
          if i > 0 then Buffer.add_char buf ',';
          escape_to buf k;
          Buffer.add_char buf ':';
          to_buffer buf item)
        fields;
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  to_buffer buf v;
  Buffer.contents buf

(* --- parsing ------------------------------------------------------------ *)

type cursor = { text : string; mutable pos : int }

let fail cur msg =
  raise (Parse_error (Printf.sprintf "offset %d: %s" cur.pos msg))

let peek cur =
  if cur.pos < String.length cur.text then Some cur.text.[cur.pos] else None

let advance cur = cur.pos <- cur.pos + 1

let skip_ws cur =
  let n = String.length cur.text in
  while
    cur.pos < n
    &&
    match cur.text.[cur.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
  do
    advance cur
  done

let expect cur c =
  match peek cur with
  | Some got when got = c -> advance cur
  | Some got -> fail cur (Printf.sprintf "expected %c, found %c" c got)
  | None -> fail cur (Printf.sprintf "expected %c, found end of input" c)

let literal cur word value =
  let n = String.length word in
  if
    cur.pos + n <= String.length cur.text
    && String.sub cur.text cur.pos n = word
  then begin
    cur.pos <- cur.pos + n;
    value
  end
  else fail cur (Printf.sprintf "expected %s" word)

let hex_val cur c =
  match c with
  | '0' .. '9' -> Char.code c - Char.code '0'
  | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
  | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
  | _ -> fail cur "bad hex digit in \\u escape"

let parse_string cur =
  expect cur '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek cur with
    | None -> fail cur "unterminated string"
    | Some '"' -> advance cur
    | Some '\\' -> (
        advance cur;
        match peek cur with
        | None -> fail cur "unterminated escape"
        | Some c ->
            advance cur;
            (match c with
            | '"' -> Buffer.add_char buf '"'
            | '\\' -> Buffer.add_char buf '\\'
            | '/' -> Buffer.add_char buf '/'
            | 'n' -> Buffer.add_char buf '\n'
            | 'r' -> Buffer.add_char buf '\r'
            | 't' -> Buffer.add_char buf '\t'
            | 'b' -> Buffer.add_char buf '\b'
            | 'f' -> Buffer.add_char buf '\012'
            | 'u' ->
                if cur.pos + 4 > String.length cur.text then
                  fail cur "truncated \\u escape";
                let v = ref 0 in
                for _ = 1 to 4 do
                  (match peek cur with
                  | Some h -> v := (!v * 16) + hex_val cur h
                  | None -> fail cur "truncated \\u escape");
                  advance cur
                done;
                (* Our own exports only emit \u00XX control codes; decode
                   anything in the Latin-1 range and reject the rest
                   rather than silently mangling it. *)
                if !v < 0x100 then Buffer.add_char buf (Char.chr !v)
                else fail cur "\\u escape above U+00FF unsupported"
            | c -> fail cur (Printf.sprintf "bad escape \\%c" c));
            go ())
    | Some c ->
        advance cur;
        Buffer.add_char buf c;
        go ()
  in
  go ();
  Buffer.contents buf

let parse_number cur =
  let start = cur.pos in
  let n = String.length cur.text in
  let is_float = ref false in
  let numeric c =
    match c with
    | '0' .. '9' | '-' | '+' -> true
    | '.' | 'e' | 'E' ->
        is_float := true;
        true
    | _ -> false
  in
  while cur.pos < n && numeric cur.text.[cur.pos] do
    advance cur
  done;
  let s = String.sub cur.text start (cur.pos - start) in
  if !is_float then
    match float_of_string_opt s with
    | Some x -> Float x
    | None -> fail cur (Printf.sprintf "bad number %S" s)
  else
    match int_of_string_opt s with
    | Some i -> Int i
    | None -> (
        match float_of_string_opt s with
        | Some x -> Float x
        | None -> fail cur (Printf.sprintf "bad number %S" s))

let rec parse_value cur =
  skip_ws cur;
  match peek cur with
  | None -> fail cur "unexpected end of input"
  | Some '{' ->
      advance cur;
      skip_ws cur;
      if peek cur = Some '}' then begin
        advance cur;
        Obj []
      end
      else begin
        let fields = ref [] in
        let rec members () =
          skip_ws cur;
          let k = parse_string cur in
          skip_ws cur;
          expect cur ':';
          let v = parse_value cur in
          fields := (k, v) :: !fields;
          skip_ws cur;
          match peek cur with
          | Some ',' ->
              advance cur;
              members ()
          | Some '}' -> advance cur
          | _ -> fail cur "expected , or } in object"
        in
        members ();
        Obj (List.rev !fields)
      end
  | Some '[' ->
      advance cur;
      skip_ws cur;
      if peek cur = Some ']' then begin
        advance cur;
        List []
      end
      else begin
        let items = ref [] in
        let rec elements () =
          let v = parse_value cur in
          items := v :: !items;
          skip_ws cur;
          match peek cur with
          | Some ',' ->
              advance cur;
              elements ()
          | Some ']' -> advance cur
          | _ -> fail cur "expected , or ] in array"
        in
        elements ();
        List (List.rev !items)
      end
  | Some '"' -> String (parse_string cur)
  | Some 't' -> literal cur "true" (Bool true)
  | Some 'f' -> literal cur "false" (Bool false)
  | Some 'n' -> literal cur "null" Null
  | Some _ -> parse_number cur

let parse text =
  let cur = { text; pos = 0 } in
  let v = parse_value cur in
  skip_ws cur;
  if cur.pos <> String.length text then fail cur "trailing garbage";
  v

(* --- accessors ---------------------------------------------------------- *)

let member key v =
  match v with Obj fields -> List.assoc_opt key fields | _ -> None

let to_int_opt = function Int i -> Some i | _ -> None

let to_float_opt = function
  | Float x -> Some x
  | Int i -> Some (float_of_int i)
  | _ -> None

let to_string_opt = function String s -> Some s | _ -> None
let to_list_opt = function List l -> Some l | _ -> None
