(** Cryptographically generated addresses — the paper's Figure 1.

    A node's site-local address is
    [fec0 :: H(PK, rn)]: a 10-bit site-local prefix, 38 zero bits, a
    16-bit subnet ID fixed to zero in a MANET, and a 64-bit interface
    identifier equal to the leading 64 bits of [H(PK || rn)].  Because the
    interface identifier commits to the owner's public key, a host cannot
    claim an address without exhibiting a key pair that hashes to it, and
    ownership can be challenged by demanding a signature under the
    corresponding private key. *)

val interface_id : pk_bytes:string -> rn:int64 -> int64
(** [interface_id ~pk_bytes ~rn] is the top 64 bits of
    [SHA-256 (pk_bytes || rn)] where [rn] is encoded big-endian. *)

val generate : pk_bytes:string -> rn:int64 -> Address.t
(** The full site-local CGA of Figure 1. *)

val fresh : Manet_crypto.Prng.t -> pk_bytes:string -> int64 * Address.t
(** [fresh g ~pk_bytes] draws a random modifier [rn] and returns
    [(rn, generate ~pk_bytes ~rn)].  A host that loses the DAD race keeps
    its key pair and calls this again for a new address. *)

val verify : Address.t -> pk_bytes:string -> rn:int64 -> bool
(** [verify addr ~pk_bytes ~rn] checks both halves of the Figure 1
    layout: the address must sit under [fec0::/10] with a zero subnet ID,
    and its interface identifier must equal [H(PK, rn)].  This is check
    (i) of every AREP/RREQ/RREP verification in §3. *)

(** {2 Global prefixes via a gateway}

    Figure 1 notes that the 16-bit subnet ID "can be replaced by the
    gateway when the node is connecting to the Internet": a gateway
    advertises a 48-bit routing prefix and a subnet, and hosts form
    global CGAs under it with the same [H(PK, rn)] interface identifier
    — the ownership proof is unchanged. *)

val global_hi : routing_prefix:Address.t -> subnet:int -> int64
(** The upper 64 bits: the top 48 bits of [routing_prefix] with the
    16-bit [subnet] in bits 16..63.  Raises [Invalid_argument] if
    [subnet] exceeds 16 bits. *)

val generate_under : hi:int64 -> pk_bytes:string -> rn:int64 -> Address.t
(** A CGA under an arbitrary upper half (site-local or
    gateway-advertised global). *)

val verify_under : hi:int64 -> Address.t -> pk_bytes:string -> rn:int64 -> bool
(** Ownership check against a specific upper half. *)
