(** Security audit stream: typed, schema-versioned security events.

    Where {!Obs} records {e causal} telemetry (spans, correlation), the
    audit stream records {e security posture}: every verification
    failure, replay rejection, credit slash, probe verdict and conflict
    the protocol layers observe, each attributed to the emitting node
    and — when the protocol can name one — an accused subject.  The
    paper's §4 analysis is qualitative; this stream is what turns it
    into queryable, per-node, per-time data.

    One [Audit.t] is shared by every node of a scenario (it lives inside
    {!Obs.t}).  Emission is always on: instrumented sites call
    {!emit} unconditionally, subscribers (metrics, detector) always see
    every event, and the [recording] switch only controls whether events
    are additionally retained in memory for {!to_jsonl}.  [emit] never
    draws randomness, never schedules engine events and never touches
    protocol state, so the layer cannot perturb a simulation: traces are
    byte-identical with recording on or off (the bench's "audit" section
    proves this).

    Everything recorded is a function of the deterministic sim domain,
    so {!to_jsonl} is byte-identical across replays of the same seed. *)

module Engine = Manet_sim.Engine

val schema : string
val schema_version : int
(** Schema identifier (["manetsim-audit"]) and version stamped into the
    JSONL header line; consumers must check both. *)

(** Event classification.  The [Attack_*] constructors are {e ground
    truth}: they are emitted by the adversary implementations in
    [lib/attacks] alongside their existing counters, and exist so a run
    can score a detector against what the adversaries actually did.
    [Fault_*] likewise records injected churn.  Neither family is ever
    evidence of misbehaviour by its subject. *)
type kind =
  | Sig_verify_fail  (** a signature check failed (§3.2–§3.4 checks) *)
  | Cga_mismatch  (** an address-to-key CGA binding failed (§3.1) *)
  | Replay_rejected  (** stale/unsolicited message rejected (§4) *)
  | Credit_slash  (** §3.4 credit system slashed a host *)
  | Rerr_rejected  (** route error failed authentication *)
  | Rerr_implausible  (** authentic RERR for a link we never held *)
  | Rerr_frequency  (** chronic RERR reporter flagged (§3.4) *)
  | Blackhole_probe_result  (** §3.4 probe localized a silent hop *)
  | Dns_conflict  (** DNS registration conflict / forced cancel *)
  | Dad_collision  (** duplicate address detected during DAD (§3.1) *)
  | Unverified_accept  (** baseline accepted an unauthenticated claim *)
  | Fault_crash  (** injected fault: node crashed *)
  | Fault_restart  (** injected fault: node restarted *)
  | Attack_forgery  (** ground truth: adversary forged a message *)
  | Attack_replay  (** ground truth: adversary replayed a capture *)
  | Attack_drop  (** ground truth: adversary dropped data/probes *)
  | Attack_impersonation  (** ground truth: adversary impersonated *)
  | Attack_rerr  (** ground truth: adversary fabricated a RERR *)
  | Attack_churn  (** ground truth: adversary churned identities *)

val all_kinds : kind list
(** Every constructor once, in declaration order. *)

val kind_label : kind -> string
(** Stable snake_case label used in exports (e.g. ["replay_rejected"]). *)

val kind_of_label : string -> kind option

val is_ground_truth : kind -> bool
(** True for the [Attack_*] family only. *)

type event = {
  seq : int;  (** dense, starting at 1, in emission order *)
  time : float;  (** simulated time *)
  kind : kind;
  node : int;  (** emitting node *)
  subject_node : int option;
      (** accused/affected node, when the emitter could resolve one *)
  subject_addr : string option;
      (** accused/affected address as printed text, when known *)
  cause : string;
}

type t

val create : ?capacity:int -> Engine.t -> t
(** One per scenario.  [capacity] caps in-memory retention (default
    200_000, oldest dropped first); emission and subscriber delivery are
    unaffected by the cap. *)

val emit :
  t ->
  kind:kind ->
  node:int ->
  ?subject_node:int ->
  ?subject_addr:string ->
  cause:string ->
  unit ->
  unit
(** Record one security event at the current simulated time.  Always
    notifies subscribers; retains the event only while [recording]. *)

val on_emit : t -> (event -> unit) -> unit
(** Subscribe to every subsequent emission (metrics, detector).
    Subscribers run synchronously in subscription order. *)

val set_recording : t -> bool -> unit
(** In-memory retention switch; default on.  Off, {!emit} still counts
    and notifies but stores nothing. *)

val recording : t -> bool
val count : t -> int
(** Total events emitted (including unretained ones). *)

val events : t -> event list
val dropped : t -> int

val counts_by_kind : event list -> (kind * int) list
(** Histogram over [all_kinds], zero entries omitted. *)

(** {1 Export / import} *)

val to_jsonl : ?meta:(string * Json.t) list -> t -> string
(** One header line (schema, version, counts, extended with [meta]),
    then one line per retained event in seq order.  Byte-identical
    across replays of the same seed. *)

type parsed = { header : Json.t; parsed_events : event list }

val parse_jsonl : string -> parsed
(** Inverse of {!to_jsonl} for offline analysis.  Raises
    {!Json.Parse_error} on malformed lines, wrong schema or unknown
    event kinds. *)

(** {1 Rendering} *)

val render_timeline : event list -> string
(** Human-readable event timeline, one line per event. *)

val render_scorecards : event list -> string
(** Per-node security scorecard: events emitted and accusations
    received, broken down by kind. *)
