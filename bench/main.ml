(* The benchmark harness: regenerates every table and figure of the
   paper (T1, T2, F1, F2, F3), runs the simulation evaluation (E1-E6)
   described in DESIGN.md, and finishes with the bechamel
   microbenchmarks.

     dune exec bench/main.exe              # everything
     dune exec bench/main.exe -- e1 e4     # a selection
*)

let sections =
  [
    ("t1", fun () -> Tables.table1 ());
    ("t2", fun () -> Tables.table2 ());
    ("f1", fun () -> Figures.fig1 ());
    ("f2", fun () -> Figures.fig2 ());
    ("f3", fun () -> Figures.fig3 ());
    ("e1", fun () -> Experiments.e1 ());
    ("e2", fun () -> Experiments.e2 ());
    ("e3", fun () -> Experiments.e3 ());
    ("e4", fun () -> Experiments.e4 ());
    ("e5", fun () -> Experiments.e5 ());
    ("e6", fun () -> Experiments.e6 ());
    ("e7", fun () -> Experiments.e7 ());
    ("resilience", fun () -> Resilience_bench.run ());
    ("profile", fun () -> Profile_bench.run ());
    ("audit", fun () -> Audit_bench.run ());
    ("micro", fun () -> Micro.run ());
    ("perf", fun () -> Perf_bench.run ());
  ]

let () =
  let requested =
    match Array.to_list Sys.argv with
    | _ :: (_ :: _ as names) -> List.map String.lowercase_ascii names
    | _ -> List.map fst sections
  in
  List.iter
    (fun name ->
      match List.assoc_opt name sections with
      | Some f -> f ()
      | None ->
          Printf.eprintf "unknown section %S (have: %s)\n" name
            (String.concat ", " (List.map fst sections)))
    requested
