(** Protocol messages.

    The control messages are exactly Table 1 of the paper (AREQ, AREP,
    DREP, RREQ, RREP, CREP, RERR), with their parameters as typed fields.
    The remaining variants are the data plane and DNS service traffic the
    simulation needs: source-routed data and end-to-end acknowledgements,
    the §3.4 black-hole probes, and the §3.2 secure name lookup and
    IP-change exchanges.

    Source-routed messages carry a [remaining] hop list: the addresses
    still to visit {e after} the current receiver.  A node holding a
    message with [remaining = []] is its final destination; otherwise it
    forwards to the head with the tail.  Messages are immutable —
    forwarding builds a new value. *)

module Address = Manet_ipv6.Address

type srr_entry = {
  ip : Address.t;  (** the intermediate node's claimed address *)
  sig_ : string;  (** [\[IIP, seq\]_ISK] *)
  pk : string;  (** the node's public key bytes *)
  rn : int64;  (** the CGA modifier for [ip] *)
}
(** One hop of the secure route record of §3.3. *)

type t =
  | Areq of {
      sip : Address.t;  (** tentative address under test *)
      seq : int;
      dn : string option;  (** domain name to register, if any *)
      ch : int64;  (** challenge *)
      rr : Address.t list;  (** route record, visit order *)
    }
  | Arep of {
      sip : Address.t;  (** the duplicate address *)
      rr : Address.t list;  (** the AREQ's route record *)
      remaining : Address.t list;
      sig_ : string;  (** [\[SIP, ch\]_RSK] *)
      pk : string;
      rn : int64;
    }
  | Drep of {
      sip : Address.t;
      dn : string;  (** the conflicting domain name *)
      rr : Address.t list;
      remaining : Address.t list;
      sig_ : string;  (** [\[DN, ch\]_NSK] *)
    }
  | Rreq of {
      sip : Address.t;
      dip : Address.t;
      seq : int;
      srr : srr_entry list;  (** secure route record, hop order *)
      sig_ : string;  (** [\[SIP, seq\]_SSK] *)
      spk : string;
      srn : int64;
    }
  | Rrep of {
      sip : Address.t;
      dip : Address.t;
      rr : Address.t list;  (** intermediate addresses, S to D order *)
      remaining : Address.t list;
      sig_ : string;  (** [\[SIP, seq, RR\]_DSK] *)
      dpk : string;
      drn : int64;
    }
  | Crep of {
      requester : Address.t;  (** S' *)
      cacher : Address.t;  (** S, the cache owner *)
      dip : Address.t;  (** D *)
      requester_seq : int;  (** seq', initiated by S' *)
      cacher_seq : int;  (** seq of S's original discovery *)
      rr_to_cacher : Address.t list;  (** intermediates S' to S *)
      rr_to_dest : Address.t list;  (** intermediates S to D *)
      remaining : Address.t list;
      sig_cacher : string;  (** [\[S'IP, seq', RR_{S'->S}\]_SSK] *)
      cacher_pk : string;
      cacher_rn : int64;
      sig_dest : string;  (** [\[SIP, seq, RR_{S->D}\]_DSK], replayed from S's cache *)
      dest_pk : string;
      dest_rn : int64;
    }
  | Rerr of {
      reporter : Address.t;  (** I, the node that saw the break *)
      broken_next : Address.t;  (** I', the unreachable next hop *)
      dst : Address.t;  (** S, the source being informed *)
      remaining : Address.t list;
      sig_ : string;  (** [\[IIP, I'IP\]_ISK] *)
      pk : string;
      rn : int64;
    }
  | Data of {
      src : Address.t;
      dst : Address.t;
      seq : int;
      route : Address.t list;  (** full intermediate route, for RERR context *)
      remaining : Address.t list;
      payload_size : int;
      sent_at : float;  (** simulation metadata for latency; not on the wire *)
    }
  | Ack of {
      src : Address.t;  (** D *)
      dst : Address.t;  (** S *)
      data_seq : int;
      route : Address.t list;  (** intermediates D to S order *)
      remaining : Address.t list;
      sent_at : float;  (** when the acknowledged data left its source *)
    }
  | Probe of {
      origin : Address.t;
      target : Address.t;  (** the hop under test *)
      seq : int;
      route : Address.t list;  (** intermediates origin to target *)
      remaining : Address.t list;
    }
  | Probe_reply of {
      responder : Address.t;
      origin : Address.t;
      seq : int;
      remaining : Address.t list;
      sig_ : string;  (** [\[responder, origin, seq\]_RSK] *)
      pk : string;
      rn : int64;
    }
  | Name_query of {
      requester : Address.t;
      name : string;
      ch : int64;
      route : Address.t list;  (** intermediates requester to DNS *)
      remaining : Address.t list;
    }
  | Name_reply of {
      requester : Address.t;
      name : string;
      result : Address.t option;  (** [None]: name unknown *)
      ch : int64;
      remaining : Address.t list;
      sig_ : string;  (** [\[name, result, ch\]_NSK] *)
    }
  | Ip_change_request of {
      old_ip : Address.t;
      new_ip : Address.t;
      route : Address.t list;  (** intermediates requester to DNS *)
      remaining : Address.t list;
    }
  | Ip_change_challenge of {
      old_ip : Address.t;
      new_ip : Address.t;
      ch : int64;
      remaining : Address.t list;
    }
  | Ip_change_proof of {
      old_ip : Address.t;
      new_ip : Address.t;
      old_rn : int64;
      new_rn : int64;
      pk : string;
      sig_ : string;  (** [\[old, new, ch\]_XSK] *)
      route : Address.t list;  (** intermediates requester to DNS *)
      remaining : Address.t list;
    }
  | Ip_change_ack of {
      old_ip : Address.t;
      new_ip : Address.t;
      accepted : bool;
      remaining : Address.t list;
    }

val tag : t -> string
(** Short lowercase tag ("areq", "rrep", ...) for stats and traces. *)

val remaining : t -> Address.t list option
(** The source-route hops left, or [None] for flooded messages (AREQ). *)

val with_remaining : t -> Address.t list -> t
(** Replace the [remaining] field (identity on AREQ). *)

val pp : Format.formatter -> t -> unit
(** One-line summary for traces and debugging. *)
