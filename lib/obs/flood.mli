(** Flood provenance: per-flood propagation accounting for AREQ and
    RREQ broadcasts.

    Every flood origin (a DAD address request or a route request, plain
    or secured) registers under the protocol's own dedup key — AREQ:
    [sip ^ seq ^ ch], RREQ: [sip ^ seq] — prefixed by a kind tag, and is
    assigned a dense id in first-origination order.  Both the key and
    the order are pure functions of the seeded event sequence, so ids,
    counters and the exports below are byte-identical across same-seed
    replays and sweep domain counts without any wire-format change.

    Per flood the registry accounts the propagation tree: copies sent
    (origin + rebroadcasts), copies received, duplicates suppressed by
    the protocols' seen-tables, verification events (secure RREQ copies
    cryptographically checked, per node), distinct nodes reached with
    first-seen time / parent / hop distance, hop radius, and completion
    (last-activity) time.

    Two derived metrics are first-class because ROADMAP item 3's
    verification cache is driven by them:

    - [duplicate_verifies_per_flood]: mean verifications per flood
      beyond one per verifying node — the redundant crypto work a
      (PK, rn, digest)-keyed cache would eliminate;
    - [flood_redundancy_ratio]: copies received per distinct node
      reached — the broadcast-storm factor items 1 and 5 chart.

    All recording is counter-pure (no clock reads, no PRNG draws, no
    event scheduling): keeping it on perturbs nothing. *)

module Engine = Manet_sim.Engine

type t

type kind = Areq | Rreq

val kind_str : kind -> string

val create : Engine.t -> t
(** Fresh registry; sim times are read from the engine's clock. *)

(** {1 Recording}

    All of these take the protocol's raw dedup key; tagging by [kind]
    is internal.  Unknown keys are registered lazily (with the acting
    node as presumed origin) so accounting never raises. *)

val originate : t -> kind:kind -> key:string -> node:int -> unit
(** Register a flood at its origination site, before the first copy is
    sent.  Idempotent for an already-known key. *)

val sent : t -> kind:kind -> key:string -> node:int -> unit
(** One copy broadcast (origination or rebroadcast) by [node]. *)

val received : t -> kind:kind -> key:string -> node:int -> src:int -> hops:int -> unit
(** One copy delivered to [node] from [src] at hop distance [hops],
    counted before any dedup decision.  The first copy per node records
    the propagation-tree edge (first-seen time, parent, hops). *)

val duplicate : t -> kind:kind -> key:string -> unit
(** The protocol's seen-table suppressed a received copy. *)

val verified : t -> kind:kind -> key:string -> node:int -> unit
(** [node] cryptographically verified one received copy. *)

(** {1 Read side} *)

type summary = {
  id : int;
  kind : kind;
  origin : int;
  start : float;
  last : float;
  sent : int;
  received : int;
  duplicates : int;
  verifies : int;
  verify_nodes : int;
  reached : int;
  hop_radius : int;
}

val summaries : t -> summary list
(** All floods in id order. *)

val tree : t -> id:int -> (int * (float * int * int * int)) list
(** Propagation-tree cells of one flood, sorted by node:
    [(node, (first_seen, parent, hops, verifies))].  [parent = -1] when
    the sender was unknown. *)

val flood_count : t -> int
val duplicate_verifies_per_flood : t -> float
val flood_redundancy_ratio : t -> float

val summary_json : t -> Json.t
(** Aggregate object (counts, totals, the two derived metrics) —
    appended into the perf export's deterministic section as the
    ["floods"] member. *)

val append_jsonl : Buffer.t -> t -> unit
(** One ["flood"] record line per flood in id order, then one
    ["flood_summary"] line — the flood tail of the timeline JSONL. *)
