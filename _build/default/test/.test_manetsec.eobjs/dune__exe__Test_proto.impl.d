test/test_proto.ml: Alcotest Array List Manet_crypto Manet_ipv6 Manet_proto Manet_sim Manetsec QCheck QCheck_alcotest String
