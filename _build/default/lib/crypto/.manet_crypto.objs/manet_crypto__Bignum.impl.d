lib/crypto/bignum.ml: Array Buffer Bytes Char Format List Printf Prng String
