let block_size = 64

let hmac_sha256 ~key msg =
  let key = if String.length key > block_size then Sha256.digest key else key in
  let pad fill =
    let b = Bytes.make block_size fill in
    String.iteri
      (fun i c -> Bytes.set b i (Char.chr (Char.code c lxor Char.code fill)))
      key;
    Bytes.unsafe_to_string b
  in
  let inner = Sha256.digest (pad '\x36' ^ msg) in
  Sha256.digest (pad '\x5c' ^ inner)

let verify ~key msg ~tag =
  let expected = hmac_sha256 ~key msg in
  if String.length expected <> String.length tag then false
  else begin
    let acc = ref 0 in
    String.iteri
      (fun i c -> acc := !acc lor (Char.code c lxor Char.code tag.[i]))
      expected;
    !acc = 0
  end
