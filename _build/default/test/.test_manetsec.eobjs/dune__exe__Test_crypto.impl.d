test/test_crypto.ml: Alcotest Array Bytes Char Fun Int64 List Manet_crypto Printf QCheck QCheck_alcotest String
