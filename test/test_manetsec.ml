let () =
  Alcotest.run "manetsec"
    (Test_crypto.suites @ Test_ipv6.suites @ Test_sim.suites @ Test_proto.suites
   @ Test_binary.suites @ Test_dad_dns.suites @ Test_routing.suites
   @ Test_aodv.suites @ Test_faults.suites @ Test_integration.suites
   @ Test_obs.suites @ Test_audit.suites @ Test_lint.suites
   @ Test_manetsem.suites @ Test_manetdom.suites @ Test_manethot.suites
   @ Test_sweep.suites
   @ Test_scenario.suites @ Test_perf.suites @ Test_timeline.suites)
