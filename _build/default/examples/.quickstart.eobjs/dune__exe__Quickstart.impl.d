examples/quickstart.ml: Array List Manetsec Printf
