examples/outdoor_event.ml: Array Float List Manetsec Option Printf
