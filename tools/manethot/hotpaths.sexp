; Hot-path roster for manethot (tools/manethot).
;
; One (Module function) form per entry.  These are the seed functions
; of the per-event path: everything they transitively reference (call,
; or install as a callback) in the analyzed tree is analyzed as hot
; too, so only the roots need naming here.  Entries must match a
; top-level function in the analyzed tree — a stale entry is a
; "roster" finding and fails the lint.

; Engine event dispatch: the pop/dispatch loop and the two schedulers
; every event goes through.
(Engine run)
(Engine schedule)
(Engine schedule_at)

; Net delivery and neighbour scan: every frame crosses these.  The
; scan iterates node indices directly through Topology.in_range;
; Topology.neighbors (the list-materializing variant) stays off the
; hot path for cold callers.
(Net deliver)
(Net broadcast)
(Net unicast)
(Topology in_range)

; Crypto verify path: every signed message is hashed and checked here.
(Sha256 digest)
(Sha256 update)
(Sha256 finalize)
(Hmac hmac_sha256)
(Hmac verify)
(Rsa verify)

; Hist/Perf record sites: called once per event / per crypto op.
(Hist add)
(Hist add_n)
(Perf incr)
(Perf crypto_op)
