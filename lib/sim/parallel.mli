(** Deterministic fan-out of independent tasks across OCaml 5 domains.

    This is the {e only} module in the tree sanctioned to touch the
    [Domain] API — manetdom's ["domain-primitive"] rule pins concurrency
    primitives to this file so that the rest of the simulation core
    stays reviewable as strictly sequential code.  The contract that
    makes the fan-out safe is certified by manetdom's other rules: no
    top-level mutable state anywhere under [lib/], so tasks passed to
    {!map} share nothing unless the caller threads it in explicitly.

    Determinism contract: [map ~domains f xs] returns results in the
    order of [xs], and the result list is {e independent of [domains]}
    — scheduling only changes wall-clock, never output.  Callers (the
    sweep runner) rely on this to produce byte-identical merged exports
    at any domain count. *)

val default_domains : unit -> int
(** [Domain.recommended_domain_count ()] — what [--domains 0] resolves
    to in the CLI. *)

val map : domains:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map ~domains f xs] applies [f] to every element of [xs] using up to
    [domains] concurrent domains (clamped to [1 .. length xs]; values
    [<= 1] run inline with no [Domain.spawn], the graceful fallback for
    single-core hosts or OCaml builds without effective parallelism).

    Work is dealt round-robin by index; the calling domain acts as
    worker 0, so [domains = 2] spawns one extra domain.  Exception
    semantics are identical at every domain count: every task runs,
    every spawned domain is joined, and then the first failure {e in
    input order} is re-raised with its original backtrace. *)
