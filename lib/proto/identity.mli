(** A node's cryptographic identity.

    A host owns a key pair for the lifetime of the simulation; its
    address is a CGA derived from the public key and a modifier [rn]
    that changes whenever DAD detects a collision (or when the host
    deliberately changes address, §3.2).  The key pair never needs to
    change with the address — that is the point of the [rn] field in
    Figure 1. *)

module Address = Manet_ipv6.Address
module Suite = Manet_crypto.Suite
module Prng = Manet_crypto.Prng

type t = {
  node_id : int;  (** simulator node id *)
  suite : Suite.t;
  keypair : Suite.keypair;
  mutable rn : int64;
  mutable address : Address.t;
  mutable domain_name : string option;
}

val create :
  ?address:Address.t -> ?name:string -> Suite.t -> Prng.t -> node_id:int -> t
(** [create suite g ~node_id] generates a key pair and an initial CGA.
    [?address] overrides the CGA (used for the DNS server's well-known
    address); [?name] sets the desired domain name. *)

val refresh_address : t -> Prng.t -> unit
(** Draw a fresh [rn] and recompute the CGA — the §3.1 response to a
    detected duplicate. *)

val sign : t -> string -> string
(** Sign with the node's private key (counts into the suite's op
    counters). *)

val pk_bytes : t -> string
