examples/disaster_rescue.ml: List Manetsec Printf
