module Engine = Manet_sim.Engine

(* Flood keys are the protocols' own dedup keys (AREQ: sip ^ seq ^ ch;
   RREQ: sip ^ seq) prefixed by a kind tag so the two key spaces cannot
   collide.  Ids are assigned densely in first-origination order, which
   is a pure function of the event sequence — deterministic across
   replays and domain counts. *)
module Stbl = Hashtbl.Make (struct
  type t = string

  let equal = String.equal
  let hash = String.hash
end)

module Itbl = Hashtbl.Make (struct
  type t = int

  let equal = Int.equal
  let hash x = x land max_int
end)

type kind = Areq | Rreq

let kind_str = function Areq -> "areq" | Rreq -> "rreq"
let tag = function Areq -> "A:" | Rreq -> "R:"

(* One cell per (flood, node) that received at least one copy: the
   propagation-tree edge.  [nc_parent] is the sender of the first copy
   seen (-1 when unknown), [nc_hops] its hop distance at that moment. *)
type node_cell = {
  nc_first_seen : float;
  nc_parent : int;
  nc_hops : int;
  mutable nc_verifies : int;
}

type flood = {
  f_id : int;
  f_kind : kind;
  f_origin : int;
  f_start : float;
  mutable f_last : float;
  mutable f_sent : int;
  mutable f_received : int;
  mutable f_dup_suppressed : int;
  mutable f_verifies : int;
  mutable f_verify_nodes : int;
  mutable f_hop_radius : int;
  f_nodes : node_cell Itbl.t;
}

type t = {
  engine : Engine.t;
  by_key : flood Stbl.t;
  mutable rev_order : flood list; (* newest first; reversed at export *)
  mutable count : int;
}

let create engine =
  { engine; by_key = Stbl.create 64; rev_order = []; count = 0 }

let find_or_create t ~kind ~key ~origin =
  let k = tag kind ^ key in
  match Stbl.find t.by_key k with
  | f -> f
  | exception Not_found ->
      (* manethot: allow hot-alloc — one record per distinct flood over
         the whole run, not per copy handled. *)
      let f =
        {
          f_id = t.count;
          f_kind = kind;
          f_origin = origin;
          f_start = Engine.now t.engine;
          f_last = Engine.now t.engine;
          f_sent = 0;
          f_received = 0;
          f_dup_suppressed = 0;
          f_verifies = 0;
          f_verify_nodes = 0;
          f_hop_radius = 0;
          f_nodes = Itbl.create 8;
        }
      in
      Stbl.add t.by_key k f;
      t.rev_order <- f :: t.rev_order;
      t.count <- t.count + 1;
      f

let touch t f = f.f_last <- Engine.now t.engine

let originate t ~kind ~key ~node =
  ignore (find_or_create t ~kind ~key ~origin:node)

let sent t ~kind ~key ~node =
  let f = find_or_create t ~kind ~key ~origin:node in
  f.f_sent <- f.f_sent + 1;
  touch t f

let received t ~kind ~key ~node ~src ~hops =
  let f = find_or_create t ~kind ~key ~origin:src in
  f.f_received <- f.f_received + 1;
  if hops > f.f_hop_radius then f.f_hop_radius <- hops;
  touch t f;
  if not (Itbl.mem f.f_nodes node) then
    (* manethot: allow hot-alloc — one cell per (flood, node) reached,
       not per copy received. *)
    Itbl.add f.f_nodes node
      {
        nc_first_seen = Engine.now t.engine;
        nc_parent = src;
        nc_hops = hops;
        nc_verifies = 0;
      }

let duplicate t ~kind ~key =
  let k = tag kind ^ key in
  match Stbl.find t.by_key k with
  | f ->
      f.f_dup_suppressed <- f.f_dup_suppressed + 1;
      touch t f
  | exception Not_found -> ()

let verified t ~kind ~key ~node =
  let f = find_or_create t ~kind ~key ~origin:node in
  f.f_verifies <- f.f_verifies + 1;
  touch t f;
  match Itbl.find f.f_nodes node with
  | cell ->
      if cell.nc_verifies = 0 then f.f_verify_nodes <- f.f_verify_nodes + 1;
      cell.nc_verifies <- cell.nc_verifies + 1
  | exception Not_found ->
      f.f_verify_nodes <- f.f_verify_nodes + 1;
      (* manethot: allow hot-alloc — defensive cell for a verify without
         a recorded reception; one per (flood, node) at most. *)
      Itbl.add f.f_nodes node
        {
          nc_first_seen = Engine.now t.engine;
          nc_parent = -1;
          nc_hops = 0;
          nc_verifies = 1;
        }

(* --- read side ---------------------------------------------------------- *)

type summary = {
  id : int;
  kind : kind;
  origin : int;
  start : float;
  last : float;
  sent : int;
  received : int;
  duplicates : int;
  verifies : int;
  verify_nodes : int;
  reached : int;
  hop_radius : int;
}

let summary_of f =
  {
    id = f.f_id;
    kind = f.f_kind;
    origin = f.f_origin;
    start = f.f_start;
    last = f.f_last;
    sent = f.f_sent;
    received = f.f_received;
    duplicates = f.f_dup_suppressed;
    verifies = f.f_verifies;
    verify_nodes = f.f_verify_nodes;
    reached = Itbl.length f.f_nodes;
    hop_radius = f.f_hop_radius;
  }

let summaries t = List.rev_map summary_of t.rev_order

let tree t ~id =
  let rec find = function
    | [] -> []
    | f :: rest ->
        if f.f_id = id then
          Itbl.fold
            (fun node c acc ->
              (node, (c.nc_first_seen, c.nc_parent, c.nc_hops, c.nc_verifies))
              :: acc)
            f.f_nodes []
          |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
        else find rest
  in
  find t.rev_order

let flood_count t = t.count

(* Mean extra verifications a flood costs beyond one per verifying node:
   the exact work the item-3 verification cache can eliminate. *)
let duplicate_verifies_per_flood t =
  if t.count = 0 then 0.0
  else
    let extra =
      List.fold_left
        (fun acc f ->
          let d = f.f_verifies - f.f_verify_nodes in
          acc + if d > 0 then d else 0)
        0 t.rev_order
    in
    float_of_int extra /. float_of_int t.count

(* Copies received per distinct node reached, across all floods: 1.0
   would be a perfectly efficient flood, unit-disk broadcast storms push
   it well above. *)
let flood_redundancy_ratio t =
  let recv, reached =
    List.fold_left
      (fun (r, n) f -> (r + f.f_received, n + Itbl.length f.f_nodes))
      (0, 0) t.rev_order
  in
  if reached = 0 then 0.0 else float_of_int recv /. float_of_int reached

let summary_json t =
  let per_kind k =
    List.fold_left
      (fun acc f -> if f.f_kind = k then acc + 1 else acc)
      0 t.rev_order
  in
  let totals get = List.fold_left (fun acc f -> acc + get f) 0 t.rev_order in
  Json.Obj
    [
      ("count", Json.Int t.count);
      ("areq", Json.Int (per_kind Areq));
      ("rreq", Json.Int (per_kind Rreq));
      ("copies_sent", Json.Int (totals (fun f -> f.f_sent)));
      ("copies_received", Json.Int (totals (fun f -> f.f_received)));
      ("duplicates_suppressed", Json.Int (totals (fun f -> f.f_dup_suppressed)));
      ("verifies", Json.Int (totals (fun f -> f.f_verifies)));
      ( "duplicate_verifies_per_flood",
        Json.Float (duplicate_verifies_per_flood t) );
      ("flood_redundancy_ratio", Json.Float (flood_redundancy_ratio t));
    ]

let record_json f =
  let s = summary_of f in
  Json.Obj
    [
      ("type", Json.String "flood");
      ("id", Json.Int s.id);
      ("kind", Json.String (kind_str s.kind));
      ("origin", Json.Int s.origin);
      ("start", Json.Float s.start);
      ("last", Json.Float s.last);
      ("sent", Json.Int s.sent);
      ("received", Json.Int s.received);
      ("duplicates", Json.Int s.duplicates);
      ("verifies", Json.Int s.verifies);
      ("verify_nodes", Json.Int s.verify_nodes);
      ("reached", Json.Int s.reached);
      ("hop_radius", Json.Int s.hop_radius);
    ]

(* One line per flood in id order, then the aggregate summary line —
   appended to the timeline JSONL body so one stream carries both the
   time series and the provenance accounting. *)
let append_jsonl buf t =
  List.iter
    (fun f ->
      Json.to_buffer buf (record_json f);
      Buffer.add_char buf '\n')
    (List.rev t.rev_order);
  Json.to_buffer buf
    (Json.Obj
       [ ("type", Json.String "flood_summary"); ("floods", summary_json t) ]);
  Buffer.add_char buf '\n'
