bench/figures.ml: Array Format Hashtbl Int64 List Manetsec Printf String Util
