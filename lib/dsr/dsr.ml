module Address = Manet_ipv6.Address
module Prng = Manet_crypto.Prng
module Messages = Manet_proto.Messages
module Codec = Manet_proto.Codec
module Ctx = Manet_proto.Node_ctx
module Audit = Manet_obs.Audit
module Engine = Manet_sim.Engine
module Obs = Manet_obs.Obs
module Flood = Manet_obs.Flood

type config = {
  discovery_timeout : float;
  max_discovery_attempts : int;
  use_cache_replies : bool;
  ack_timeout : float;
  max_send_retries : int;
  cache_capacity_per_dst : int;
  flood_jitter : float;
  use_acks : bool;
  salvage : bool;
  route_shortening : bool;
}

let default_config =
  {
    discovery_timeout = 1.0;
    max_discovery_attempts = 3;
    use_cache_replies = true;
    ack_timeout = 1.5;
    max_send_retries = 2;
    cache_capacity_per_dst = 4;
    flood_jitter = 0.01;
    use_acks = true;
    salvage = true;
    route_shortening = false;
  }

type packet = {
  p_dst : Address.t;
  p_size : int;
  p_seq : int;
  p_first_sent : float;
  mutable p_retries : int;
}

type pending_discovery = {
  d_dst : Address.t;
  mutable d_attempts : int;
  mutable d_resolved : bool;
  d_started : float;
  (* Telemetry: the whole discovery and the current attempt's flood. *)
  mutable d_span : int option;
  mutable d_flood : int option;
}

type t = {
  ctx : Ctx.t;
  config : config;
  cache : unit Route_cache.t;
  mutable rreq_seq : int;
  mutable data_seq : int;
  pending : (string, pending_discovery) Hashtbl.t; (* by dst *)
  queue : (string, packet Queue.t) Hashtbl.t; (* packets awaiting a route *)
  waiters : (string, (Address.t list option -> unit) list ref) Hashtbl.t;
  seen_rreq : (string, unit) Hashtbl.t; (* sip + seq *)
  reply_counts : (string, int) Hashtbl.t; (* replies sent per request, for route diversity *)
  in_flight : (string, packet) Hashtbl.t; (* dst + seq *)
  seen_data : (string, unit) Hashtbl.t; (* delivered (src, seq): retries must not double-count *)
}

let akey = Address.to_bytes
let fkey dst seq = akey dst ^ Codec.u32 seq

(* Telemetry correlation keys, shared with [Manet_secure]: a flood
   attempt is (source, seq); replies are identified by the fields both
   the responder and the consumer can see. *)
let rreq_corr ~sip ~seq = "rreq:" ^ akey sip ^ Codec.u32 seq

let rrep_corr ~sip ~dip ~rr =
  "rrep:" ^ akey sip ^ akey dip ^ String.concat "" (List.map akey rr)

let crep_corr ~cacher ~seq = "crep:" ^ akey cacher ^ Codec.u32 seq

let create ?(config = default_config) ctx =
  {
    ctx;
    config;
    cache = Route_cache.create ~capacity_per_dst:config.cache_capacity_per_dst ();
    rreq_seq = 0;
    data_seq = 0;
    pending = Hashtbl.create 16;
    queue = Hashtbl.create 16;
    waiters = Hashtbl.create 8;
    seen_rreq = Hashtbl.create 256;
    reply_counts = Hashtbl.create 64;
    in_flight = Hashtbl.create 32;
    seen_data = Hashtbl.create 64;
  }

let address t = Ctx.address t.ctx
let now t = Ctx.now t.ctx
let obs t = t.ctx.Ctx.obs

(* The RREQ dedup key (sip, seq) doubles as the flood-provenance id. *)
let floods t = Obs.flood (obs t)

let cached_route t ~dst =
  (* Prefer the shortest known route, as DSR does. *)
  Option.map
    (fun e -> e.Route_cache.route)
    (Route_cache.best t.cache ~dst ~score:(fun e ->
         -.float_of_int (List.length e.Route_cache.route)))

let cached_routes t ~dst =
  List.map (fun e -> e.Route_cache.route) (Route_cache.entries t.cache ~dst)


(* --- data transmission ------------------------------------------------ *)

let queue_for t dst =
  let k = akey dst in
  match Hashtbl.find_opt t.queue k with
  | Some q -> q
  | None ->
      let q = Queue.create () in
      Hashtbl.add t.queue k q;
      q

let rec transmit t packet route =
  let dst = packet.p_dst in
  Hashtbl.replace t.in_flight (fkey dst packet.p_seq) packet;
  let path = route @ [ dst ] in
  let msg =
    Messages.Data
      {
        src = address t;
        dst;
        seq = packet.p_seq;
        route;
        remaining = path;
        payload_size = packet.p_size;
        sent_at = packet.p_first_sent;
      }
  in
  Ctx.send_along t.ctx ~path
    ~on_fail:(fun () ->
      (* The very first hop is unreachable: purge and let the ack timer
         drive the retry. *)
      (match route with
      | next :: _ ->
          ignore (Route_cache.remove_link t.cache ~owner:(address t) ~a:(address t) ~b:next)
      | [] -> ignore (Route_cache.remove_route t.cache ~dst ~route)))
    msg;
  if t.config.use_acks then
    Engine.schedule t.ctx.Ctx.engine ~label:"dsr" ~delay:t.config.ack_timeout
      (fun () -> ack_timeout t packet route)

and ack_timeout t packet route =
  let k = fkey packet.p_dst packet.p_seq in
  match Hashtbl.find_opt t.in_flight k with
  | None -> () (* acked in time *)
  | Some p when p != packet -> ()
  | Some _ ->
      Hashtbl.remove t.in_flight k;
      Ctx.stat t.ctx "data.timeout";
      (* This route failed silently (black hole or stale cache): forget
         it and retry over whatever is left. *)
      Route_cache.remove_route t.cache ~dst:packet.p_dst ~route;
      if packet.p_retries < t.config.max_send_retries then begin
        packet.p_retries <- packet.p_retries + 1;
        dispatch t packet
      end
      else Ctx.stat t.ctx "data.dropped"

and dispatch t packet =
  match cached_route t ~dst:packet.p_dst with
  | Some route -> transmit t packet route
  | None ->
      Queue.push packet (queue_for t packet.p_dst);
      start_discovery t packet.p_dst

(* --- route discovery --------------------------------------------------- *)

and start_discovery t dst =
  let k = akey dst in
  if not (Hashtbl.mem t.pending k) then begin
    let d =
      {
        d_dst = dst;
        d_attempts = 0;
        d_resolved = false;
        d_started = now t;
        d_span = None;
        d_flood = None;
      }
    in
    d.d_span <-
      Some
        (Obs.start (obs t) ~kind:"route.discovery" ~node:(Ctx.node_id t.ctx)
           ~detail:("dst=" ^ Address.to_string dst)
           ());
    Hashtbl.add t.pending k d;
    send_rreq t d
  end

and send_rreq t d =
  t.rreq_seq <- t.rreq_seq + 1;
  let seq = t.rreq_seq in
  d.d_attempts <- d.d_attempts + 1;
  Ctx.stat t.ctx "route.discoveries";
  let fl =
    Obs.start (obs t) ?parent:d.d_span ~kind:"rreq.flood"
      ~node:(Ctx.node_id t.ctx)
      ~detail:
        (Printf.sprintf "dst=%s attempt=%d"
           (Address.to_string d.d_dst)
           d.d_attempts)
      ()
  in
  d.d_flood <- Some fl;
  Obs.correlate (obs t) (rreq_corr ~sip:(address t) ~seq) fl;
  (* Plain DSR: route record carried in the SRR field with empty
     authentication. *)
  let fk = fkey (address t) seq in
  Hashtbl.replace t.seen_rreq fk ();
  Flood.originate (floods t) ~kind:Flood.Rreq ~key:fk
    ~node:(Ctx.node_id t.ctx);
  Flood.sent (floods t) ~kind:Flood.Rreq ~key:fk ~node:(Ctx.node_id t.ctx);
  Ctx.broadcast t.ctx
    (Messages.Rreq
       { sip = address t; dip = d.d_dst; seq; srr = []; sig_ = ""; spk = ""; srn = 0L });
  Engine.schedule t.ctx.Ctx.engine ~label:"dsr" ~delay:t.config.discovery_timeout
    (fun () ->
      if not d.d_resolved then begin
        Obs.finish (obs t) fl Obs.Timeout;
        if d.d_attempts < t.config.max_discovery_attempts then send_rreq t d
        else discovery_failed t d
      end)

and discovery_failed t d =
  let k = akey d.d_dst in
  d.d_resolved <- true;
  Hashtbl.remove t.pending k;
  Ctx.stat t.ctx "route.discovery_failed";
  (match d.d_span with
  | Some id -> Obs.finish (obs t) id Obs.Timeout
  | None -> ());
  (match Hashtbl.find_opt t.queue k with
  | None -> ()
  | Some q ->
      Queue.iter (fun _ -> Ctx.stat t.ctx "data.dropped") q;
      Queue.clear q);
  notify_waiters t d.d_dst None

and notify_waiters t dst result =
  match Hashtbl.find_opt t.waiters (akey dst) with
  | None -> ()
  | Some l ->
      let callbacks = !l in
      Hashtbl.remove t.waiters (akey dst);
      List.iter (fun cb -> cb result) callbacks

and route_found t ~dst ~route =
  let k = akey dst in
  Route_cache.insert t.cache ~dst ~route ~meta:() ~now:(now t);
  (match Hashtbl.find_opt t.pending k with
  | Some d when not d.d_resolved ->
      d.d_resolved <- true;
      Hashtbl.remove t.pending k;
      (match d.d_flood with
      | Some id -> Obs.finish (obs t) id Obs.Ok
      | None -> ());
      (match d.d_span with
      | Some id -> Obs.finish (obs t) id Obs.Ok
      | None -> ());
      Ctx.observe t.ctx "route.discovery_time" (now t -. d.d_started);
      Ctx.observe t.ctx "route.hops" (float_of_int (List.length route + 1))
  | _ -> ());
  (* Flush queued packets over the fresh route. *)
  (match Hashtbl.find_opt t.queue k with
  | None -> ()
  | Some q ->
      let packets = List.of_seq (Queue.to_seq q) in
      Queue.clear q;
      List.iter (fun p -> dispatch t p) packets);
  notify_waiters t dst (Some route)

let send t ~dst ?(size = 512) () =
  t.data_seq <- t.data_seq + 1;
  Ctx.stat t.ctx "data.offered";
  dispatch t
    {
      p_dst = dst;
      p_size = size;
      p_seq = t.data_seq;
      p_first_sent = now t;
      p_retries = 0;
    }

let discover t ~dst ~on_route =
  match cached_route t ~dst with
  | Some route -> on_route (Some route)
  | None ->
      let k = akey dst in
      let l =
        match Hashtbl.find_opt t.waiters k with
        | Some l -> l
        | None ->
            let l = ref [] in
            Hashtbl.add t.waiters k l;
            l
      in
      l := on_route :: !l;
      start_discovery t dst

(* --- RREQ handling (flood side) ---------------------------------------- *)

let srr_ips srr = List.map (fun e -> e.Messages.ip) srr

let answer_as_destination t ~sip ~seq ~rr =
  Ctx.stat t.ctx "route.replies";
  let o = obs t in
  let sid =
    Obs.start o
      ?parent:(Obs.lookup o (rreq_corr ~sip ~seq))
      ~kind:"route.rrep"
      ~node:(Ctx.node_id t.ctx)
      ~detail:("to " ^ Address.to_string sip)
      ()
  in
  Obs.correlate o (rrep_corr ~sip ~dip:(address t) ~rr) sid;
  let back = List.rev rr @ [ sip ] in
  Ctx.send_along t.ctx ~path:back
    (Messages.Rrep
       { sip; dip = address t; rr; remaining = back; sig_ = ""; dpk = ""; drn = 0L })

let answer_from_cache t ~sip ~seq ~dip ~rr cached =
  Ctx.stat t.ctx "route.cache_replies";
  let o = obs t in
  let sid =
    Obs.start o
      ?parent:(Obs.lookup o (rreq_corr ~sip ~seq))
      ~kind:"route.crep"
      ~node:(Ctx.node_id t.ctx)
      ~detail:("to " ^ Address.to_string sip)
      ()
  in
  Obs.correlate o (crep_corr ~cacher:(address t) ~seq) sid;
  let back = List.rev rr @ [ sip ] in
  Ctx.send_along t.ctx ~path:back
    (Messages.Crep
       {
         requester = sip;
         cacher = address t;
         dip;
         requester_seq = seq;
         cacher_seq = 0;
         rr_to_cacher = rr;
         rr_to_dest = cached;
         remaining = back;
         sig_cacher = "";
         cacher_pk = "";
         cacher_rn = 0L;
         sig_dest = "";
         dest_pk = "";
         dest_rn = 0L;
       })

(* DSR destinations answer several copies of the same request (each
   arrives over a different path), giving the source route diversity. *)
let max_replies_per_request = 3

let handle_rreq t ~src msg =
  match msg with
  (* Plain DSR is the deliberately unauthenticated baseline (§3.3 uses
     it as the point of comparison): requests carry signature fields on
     the wire but this layer never checks them. *)
  (* manetlint: allow security *)
  | Messages.Rreq { sip; dip; seq; srr; _ } ->
      let key = fkey sip seq in
      let me = address t in
      let rr = srr_ips srr in
      Flood.received (floods t) ~kind:Flood.Rreq ~key ~node:(Ctx.node_id t.ctx)
        ~src ~hops:(List.length srr);
      if Address.equal dip me then begin
        if not (Address.equal sip me || List.exists (Address.equal me) rr) then begin
          let sent = Option.value ~default:0 (Hashtbl.find_opt t.reply_counts key) in
          if sent < max_replies_per_request then begin
            Hashtbl.replace t.reply_counts key (sent + 1);
            answer_as_destination t ~sip ~seq ~rr
          end
        end
      end
      else if Hashtbl.mem t.seen_rreq key then
        Flood.duplicate (floods t) ~kind:Flood.Rreq ~key
      else begin
        Hashtbl.replace t.seen_rreq key ();
        if Address.equal sip me || List.exists (Address.equal me) rr then ()
        else begin
          match
            if t.config.use_cache_replies then cached_route t ~dst:dip else None
          with
          | Some cached
            when (not (List.exists (Address.equal sip) cached))
                 && not (List.exists (fun a -> List.exists (Address.equal a) rr) cached) ->
              answer_from_cache t ~sip ~seq ~dip ~rr cached
          | _ ->
              (match Obs.lookup (obs t) (rreq_corr ~sip ~seq) with
              | Some id ->
                  Obs.note (obs t) id ~node:(Ctx.node_id t.ctx)
                    ("relay " ^ Address.to_string me)
              | None -> ());
              let entry = { Messages.ip = me; sig_ = ""; pk = ""; rn = 0L } in
              let relayed =
                Messages.Rreq
                  { sip; dip; seq; srr = srr @ [ entry ]; sig_ = ""; spk = ""; srn = 0L }
              in
              let delay = Prng.float t.ctx.Ctx.rng t.config.flood_jitter in
              Engine.schedule t.ctx.Ctx.engine ~label:"dsr" ~delay (fun () ->
                  Flood.sent (floods t) ~kind:Flood.Rreq ~key
                    ~node:(Ctx.node_id t.ctx);
                  Ctx.broadcast t.ctx relayed)
        end
      end
  | _ -> ()

(* --- source-routed message handling ------------------------------------ *)

let consume_rrep t msg =
  match msg with
  (* Unauthenticated baseline: replies accepted as-is (see handle_rreq). *)
  (* manetlint: allow security *)
  | Messages.Rrep { sip; dip; rr; _ } ->
      (match Obs.lookup (obs t) (rrep_corr ~sip ~dip ~rr) with
      | Some sid -> Obs.finish (obs t) sid Obs.Ok
      | None -> ());
      (* manetsem: allow taint — plain DSR is the deliberately
         unauthenticated §4 baseline; accepting the reply without any
         check is the vulnerability Secure_routing closes. *)
      route_found t ~dst:dip ~route:rr
  | _ -> ()

let consume_crep t msg =
  match msg with
  (* Unauthenticated baseline: cached replies accepted as-is. *)
  (* manetlint: allow security *)
  | Messages.Crep { cacher; dip; requester_seq; rr_to_cacher; rr_to_dest; _ } ->
      (match Obs.lookup (obs t) (crep_corr ~cacher ~seq:requester_seq) with
      | Some sid -> Obs.finish (obs t) sid Obs.Ok
      | None -> ());
      (* Splice: requester -> ... -> cacher -> ... -> destination. *)
      let route = rr_to_cacher @ (cacher :: rr_to_dest) in
      (* manetsem: allow taint — same unauthenticated §4 baseline as
         consume_rrep: cached replies are trusted verbatim by design. *)
      route_found t ~dst:dip ~route
  | _ -> ()

let split_route_at route me =
  (* Position of [me] in the intermediate list: hops before / after. *)
  let rec go before = function
    | [] -> None
    | x :: rest when Address.equal x me -> Some (List.rev before, rest)
    | x :: rest -> go (x :: before) rest
  in
  go [] route

(* DSR packet salvaging: an intermediate whose next hop died may push the
   packet over its own cached route instead of dropping it (the RERR is
   still sent so the source stops using the dead link). *)
let try_salvage t msg =
  match msg with
  | Messages.Data ({ dst; _ } as d) when t.config.salvage -> (
      match cached_route t ~dst with
      | Some route
        when not (List.exists (Address.equal (address t)) route) ->
          Ctx.stat t.ctx "data.salvaged";
          let path = route @ [ dst ] in
          Ctx.send_along t.ctx ~path
            (Messages.Data { d with route; remaining = path });
          true
      | _ -> false)
  | _ -> false

let forward_data t ~next msg =
  match msg with
  | Messages.Data { src; route; _ } ->
      Ctx.stat t.ctx "data.forwarded";
      Ctx.send_along t.ctx ~path:next msg ~on_fail:(fun () ->
          (* Link break: report back to the source (§3.4 / DSR route
             maintenance). *)
          let me = address t in
          let broken_next = List.hd next in
          let back =
            match split_route_at route me with
            | Some (before, _) -> List.rev before @ [ src ]
            | None -> [ src ]
          in
          Ctx.stat t.ctx "rerr.sent";
          Ctx.send_along t.ctx ~path:back
            (Messages.Rerr
               {
                 reporter = me;
                 broken_next;
                 dst = src;
                 remaining = back;
                 sig_ = "";
                 pk = "";
                 rn = 0L;
               });
          ignore (try_salvage t msg))
  | _ -> ()

let consume_data t msg =
  match msg with
  | Messages.Data { src; seq; route; sent_at; _ } ->
      (* Retransmissions of an already-delivered packet are re-acked but
         not re-counted. *)
      let k = fkey src seq in
      if not (Hashtbl.mem t.seen_data k) then begin
        Hashtbl.replace t.seen_data k ();
        Ctx.stat t.ctx "data.delivered";
        Ctx.observe t.ctx "data.latency" (now t -. sent_at)
      end;
      if t.config.use_acks then begin
      let back_route = List.rev route in
      let path = back_route @ [ src ] in
      Ctx.send_along t.ctx ~path
        (Messages.Ack
           {
             src = address t;
             dst = src;
             data_seq = seq;
             route = back_route;
             remaining = path;
             sent_at;
           })
      end
  | _ -> ()

let consume_ack t msg =
  match msg with
  | Messages.Ack { src = acker; data_seq; sent_at; _ } -> (
      (* The acker is the data's destination, so the in-flight key is
         (acker, data_seq). *)
      let k = fkey acker data_seq in
      match Hashtbl.find_opt t.in_flight k with
      | Some _ ->
          Hashtbl.remove t.in_flight k;
          Ctx.stat t.ctx "data.acked";
          Ctx.observe t.ctx "data.rtt" (now t -. sent_at)
      | None -> Ctx.stat t.ctx "ack.unmatched")
  | _ -> ()

(* DSR automatic route shortening: on a promiscuous radio we may
   overhear a data frame whose remaining hops include us further down the
   line — the hops between the transmitter and us are unnecessary.  Tell
   the source with a gratuitous route reply carrying the shortened
   route. *)
let overheard_data t msg =
  match msg with
  | Messages.Data { src; dst; route; remaining; _ }
    when t.config.route_shortening -> (
      let me = address t in
      match remaining with
      | head :: (_ :: _ as tail)
        when (not (Address.equal head me)) && List.exists (Address.equal me) tail
        -> (
          (* Shortened full route: drop everything between the hop before
             [head] and us. *)
          match split_route_at route me with
          | Some (_, after_me) ->
              let upto =
                (* intermediates the packet already passed: route minus
                   remaining, i.e. those before [head] *)
                let rec before acc = function
                  | [] -> List.rev acc
                  | x :: _ when Address.equal x head -> List.rev acc
                  | x :: rest -> before (x :: acc) rest
                in
                before [] route
              in
              let shortened = upto @ (me :: after_me) in
              if List.length shortened < List.length route then begin
                Ctx.stat t.ctx "route.shortened";
                (* Back to the source through the hops the packet already
                   used (we are in range of the last of them). *)
                let back = List.rev upto @ [ src ] in
                Ctx.send_along t.ctx ~path:back
                  (Messages.Rrep
                     {
                       sip = src;
                       dip = dst;
                       rr = shortened;
                       remaining = back;
                       sig_ = "";
                       dpk = "";
                       drn = 0L;
                     })
              end
          | None -> ())
      | _ -> ())
  | _ -> ()

let consume_rerr t msg =
  match msg with
  (* Plain DSR believes any error report — the exact weakness the §4
     RERR-forgery adversary exploits and secure routing closes. *)
  (* manetlint: allow security *)
  | Messages.Rerr { reporter; broken_next; _ } ->
      Ctx.stat t.ctx "rerr.received";
      (* Plain DSR believes any error report.  The audit stream still
         records the unverified acceptance so the exposure shows up in a
         timeline next to the secure stack's rejections. *)
      Ctx.audit t.ctx ~kind:Audit.Unverified_accept
        ~cause:
          ("unauthenticated rerr from " ^ Address.to_string reporter
         ^ " believed")
        ();
      ignore
        (* manetsem: allow taint — believing unauthenticated RERRs is the
           exact §4 forgery exposure the baseline exists to measure. *)
        (Route_cache.remove_link t.cache ~owner:(address t) ~a:reporter ~b:broken_next)
  | _ -> ()

let handle t ~src msg =
  match msg with
  | Messages.Rreq _ -> handle_rreq t ~src msg
  | Messages.Rrep _ ->
      Ctx.deliver_up t.ctx ~src msg ~consume:(consume_rrep t)
        ~forward:(fun ~next m -> Ctx.send_along t.ctx ~path:next m)
        ~not_mine:(fun _ -> ())
  | Messages.Crep _ ->
      Ctx.deliver_up t.ctx ~src msg ~consume:(consume_crep t)
        ~forward:(fun ~next m -> Ctx.send_along t.ctx ~path:next m)
        ~not_mine:(fun _ -> ())
  | Messages.Data _ ->
      Ctx.deliver_up t.ctx ~src msg ~consume:(consume_data t)
        ~forward:(fun ~next m -> forward_data t ~next m)
        ~not_mine:(fun m -> overheard_data t m)
  | Messages.Ack _ ->
      Ctx.deliver_up t.ctx ~src msg ~consume:(consume_ack t)
        ~forward:(fun ~next m -> Ctx.send_along t.ctx ~path:next m)
        ~not_mine:(fun _ -> ())
  | Messages.Rerr _ ->
      Ctx.deliver_up t.ctx ~src msg ~consume:(consume_rerr t)
        ~forward:(fun ~next m -> Ctx.send_along t.ctx ~path:next m)
        ~not_mine:(fun _ -> ())
  | Messages.Probe _ | Messages.Probe_reply _ | Messages.Name_query _
  | Messages.Name_reply _ | Messages.Ip_change_request _
  | Messages.Ip_change_challenge _ | Messages.Ip_change_proof _
  | Messages.Ip_change_ack _ ->
      Ctx.forward_transit t.ctx ~src msg
  | Messages.Areq _ | Messages.Arep _ | Messages.Drep _ -> ()
