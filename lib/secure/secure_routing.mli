(** Secure route discovery, reply, maintenance and credit-driven route
    selection — §3.3 and §3.4, the paper's primary contribution.

    Derived from DSR, with every host's identity verifiable along the
    route:

    - A source floods
      [RREQ(SIP, DIP, seq, SRR, \[SIP, seq\]_SSK, SPK, Srn)]; every relay
      appends [(\[IIP, seq\]_ISK, IPK, Irn)] to the secure route record.
    - The destination checks, for the source and each recorded hop, that
      (i) the address hashes from the attached key and modifier (CGA
      rule) and (ii) the signature over [(IP, seq)] verifies — then
      answers [RREP(SIP, DIP, \[SIP, seq, RR\]_DSK, DPK, Drn)], which the
      source verifies symmetrically.
    - A cache owner may answer with
      [CREP]: it signs the half it vouches for (requester to itself,
      under the requester's fresh [seq']) and replays the destination's
      original endorsement for the cached half.
    - Route errors carry [\[IIP, I'IP\]_ISK]: a RERR is accepted only
      from a verified identity naming a link the source actually uses.
    - Credits (§3.4, {!Credit}): acked deliveries reward every host on
      the route; implausible or high-frequency error reporting and failed
      integrity probes slash.  Under [use_credits] the source picks the
      cached route with the highest minimum member credit.
    - Black-hole localization: when an acked route goes silent, the
      source probes each prefix of the route; the first hop that fails
      to return a signed [Probe_reply] is slashed and routed around.

    The [verify_at_destination] switch exists for the BSAR ablation
    (E4): with it off, the destination checks only the source's
    identity, as BSAR does, and intermediate impersonation goes
    undetected. *)

module Address = Manet_ipv6.Address
module Messages = Manet_proto.Messages

type config = {
  discovery_timeout : float;
  max_discovery_attempts : int;
  use_cache_replies : bool;
  ack_timeout : float;
  max_send_retries : int;
  cache_capacity_per_dst : int;
  flood_jitter : float;
  use_credits : bool;  (** §3.4 credit-weighted route selection *)
  probe_on_timeout : bool;  (** §3.4 black-hole probing *)
  probe_timeout : float;
  verify_at_destination : bool;  (** false = BSAR-style source-only check *)
  salvage : bool;  (** DSR-style packet salvaging at intermediates *)
  credit : Credit.config;
}

val default_config : config

type t

val create :
  ?config:config ->
  ?trusted:(Address.t * string) list ->
  Manet_proto.Node_ctx.t ->
  t
(** [trusted] lists pre-distributed (address, public key) bindings that
    are verified by key equality instead of the CGA rule — the paper's
    DNS server, whose well-known address is not a CGA but whose public
    key every host received before joining. *)

val handle : t -> src:int -> Messages.t -> unit

val send : t -> dst:Address.t -> ?size:int -> unit -> unit

val discover :
  t -> dst:Address.t -> on_route:(Address.t list option -> unit) -> unit

(* manetsem: allow dead-export — inspection accessor kept for parity
   with Dsr.cached_route, so experiments can compare like for like. *)
val cached_route : t -> dst:Address.t -> Address.t list option
(** The route {!send} would pick now: highest minimum credit under
    [use_credits], shortest otherwise. *)

val cached_routes : t -> dst:Address.t -> Address.t list list
(** Every cached route for [dst] (inspection). *)

val credits : t -> Credit.t

(* manetsem: allow dead-export — uniform agent accessor; every protocol
   agent (Dad, Dsr, Srp, Secure_routing) exposes [address]. *)
val address : t -> Address.t

(** Statistics share the baseline's keys (see {!Manet_dsr.Dsr}) plus:
    counters [secure.rreq_rejected], [secure.rrep_rejected],
    [secure.crep_rejected], [secure.rerr_rejected],
    [secure.rerr_implausible], [secure.replayed_rreq],
    [secure.hostile_suspected], [probe.sent], [probe.replied],
    [probe.suspect_found]. *)
