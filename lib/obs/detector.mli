(** Online rule-based misbehaviour detector over the {!Audit} stream.

    Each audit event carrying an accused subject contributes a
    kind-specific evidence weight against that node.  Per node the
    detector keeps, over fixed windows of simulated time, the in-window
    weight and an EWMA of the per-window weight (decayed through empty
    windows, rolled lazily — nothing is scheduled on the engine).  A
    node is flagged [suspect] when either its cumulative evidence or
    its EWMA crosses the configured threshold.

    Weights encode how attributable each event family is (see DESIGN.md
    "Security observability" for the rationale and the known limits of
    replay attribution):
    - {!Audit.Blackhole_probe_result}: 1.0 — the §3.4 probe names the
      silent hop directly;
    - {!Audit.Replay_rejected} with a subject: 1.0 — transit-route
      mismatch or a provably stale sequence binding names the
      transmitter;
    - {!Audit.Rerr_frequency}: 1.0 — chronic reporter;
    - {!Audit.Credit_slash}: 0.6, but 0.2 when caused as a probe
      predecessor (the hop {e before} the suspect is only weakly
      implicated);
    - {!Audit.Rerr_implausible}: 0.3;
    - everything else (unattributable failures, ground-truth [Attack_*]
      and [Fault_*] events): 0.0 — ground truth must never feed the
      detector it is used to score. *)

type config = {
  window : float;  (** window length in simulated seconds *)
  ewma_alpha : float;  (** smoothing factor in (0, 1] *)
  ewma_threshold : float;  (** flag when the EWMA reaches this *)
  evidence_threshold : float;  (** flag when cumulative weight reaches this *)
}

val default_config : config
(** 5 s windows, alpha 0.3, EWMA threshold 0.5, evidence threshold 1.0. *)

val weight : Audit.event -> float
(** Evidence contributed by one event (0.0 without a subject). *)

type verdict = {
  v_node : int;
  v_evidence : float;  (** cumulative weight accused against the node *)
  v_events : int;  (** number of contributing events *)
  v_ewma_peak : float;
  v_suspect : bool;
  v_flagged_at : float option;  (** sim time of the first flag *)
}

type t

val create : ?config:config -> unit -> t

val attach : t -> Audit.t -> unit
(** Subscribe to a live audit stream ({!Audit.on_emit}). *)

val feed : t -> Audit.event -> unit
(** Offline path: score one event (e.g. replayed from a parsed JSONL
    export).  Events must arrive in non-decreasing time order. *)

val verdicts : t -> verdict list
(** One verdict per node that ever had evidence, sorted by node. *)

val suspects : t -> int list
(** Flagged nodes, ascending. *)

type assessment = {
  tp : int;
  fp : int;
  fn : int;
  precision : float;  (** 1.0 when nothing was flagged *)
  recall : float;  (** 1.0 when there were no adversaries *)
}

val score : t -> truth:int list -> assessment
(** Compare {!suspects} against the ground-truth adversary node list. *)

val render_verdicts : t -> string
(** Human-readable verdict table. *)

val render_assessment : assessment -> string
