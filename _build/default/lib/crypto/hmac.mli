(** HMAC-SHA256 (RFC 2104).

    Used by the idealized {!Mock_sig} signature scheme and available for
    end-to-end payload protection in the examples. *)

val hmac_sha256 : key:string -> string -> string
(** [hmac_sha256 ~key msg] is the 32-byte HMAC-SHA256 tag of [msg]. *)

val verify : key:string -> string -> tag:string -> bool
(** Constant-time comparison of a computed tag against [tag]. *)
