(** Run reports and trace queries over the observability data.

    Two consumers share this module: the simulator itself, which emits a
    JSON run report at the end of a run ({!run_report}), and the
    [manetsim report] CLI, which re-reads an exported JSONL trace
    ({!parse_jsonl}) and renders span trees, per-phase latency
    percentiles and top-k slow spans as plain text.  Nothing here
    prints; every renderer returns a string. *)

val report_schema : string

(** {1 Neutral span representation} *)

type span_info = {
  i_id : int;
  i_parent : int option;
  i_kind : string;
  i_node : int;
  i_detail : string;
  i_start : float;
  i_end : float option;
  i_outcome : string option;  (** ["ok"] etc., [None] while open *)
  i_reason : string option;
  i_notes : (float * int * string) list;  (** oldest first *)
}

(** {1 Phases} *)

val phase_names : string list
(** The derived phases the run report aggregates latency over:
    [dad.convergence], [re_dad.convergence] and [route.discovery_rtt]. *)

(** {1 JSON run report} *)

val run_report :
  engine:Manet_sim.Engine.t ->
  obs:Obs.t ->
  ?extra:(string * Json.t) list ->
  unit ->
  Json.t
(** One JSON object: schema/version header, [extra] caller fields (seed,
    scenario name, ...), sim-domain totals, every Stats counter and
    summary (with p50/p90/p99), per-kind span aggregates, per-phase
    latency percentiles, and the engine wall-clock profile.  The profile
    section is the only part fed by the host clock, which is why the
    report — unlike the JSONL trace — is not byte-stable. *)

(** {1 Reading a JSONL trace back} *)

type parsed = {
  header : Json.t;
  spans : span_info list;  (** id order *)
  events : Obs.event list;  (** log order *)
}

val parse_jsonl : string -> parsed
(** Parse the output of {!Obs.to_jsonl}.  Raises {!Json.Parse_error} on
    malformed input, wrong schema or unsupported version. *)

(** {1 Text renderers} *)

val render_tree : parsed -> string
(** The causal span forest, children indented under parents (spans whose
    parent id is absent from the file render as roots), with hop notes,
    durations and outcomes. *)

val render_phases : parsed -> string
(** Per-phase count/min/p50/p90/p99/max table. *)

val render_top : ?k:int -> parsed -> string
(** The [k] (default 10) longest finished spans, slowest first. *)
