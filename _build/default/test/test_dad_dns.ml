(* Integration tests for secure DAD (§3.1) and DNS services (§3.2). *)

module Prng = Manet_crypto.Prng
module Suite = Manet_crypto.Suite
module Address = Manet_ipv6.Address
module Cga = Manet_ipv6.Cga
module Engine = Manet_sim.Engine
module Topology = Manet_sim.Topology
module Net = Manet_sim.Net
module Stats = Manet_sim.Stats
module Messages = Manet_proto.Messages
module Codec = Manet_proto.Codec
module Ctx = Manet_proto.Node_ctx
module Directory = Manet_proto.Directory
module Identity = Manet_proto.Identity
module Dad = Manet_dad.Dad
module Dns = Manet_dns.Dns
module Dns_client = Manet_dns.Client

(* A small world: node 0 is the DNS server, nodes 1..n-1 are hosts, laid
   out in a chain with 100-unit spacing and 150-unit radio range (so only
   adjacent nodes hear each other). *)
type world = {
  engine : Engine.t;
  net : Messages.t Net.t;
  directory : Directory.t;
  identities : Identity.t array;
  ctxs : Ctx.t array;
  dads : Dad.t array;
  dns : Dns.t;
  clients : Dns_client.t array;
  dns_pk : string;
}

let make_world ?(n = 5) ?(seed = 42) () =
  let engine = Engine.create ~seed () in
  let topo = Topology.chain ~n ~spacing:100.0 in
  let config = { Net.default_config with range = 150.0 } in
  let net = Net.create ~config engine topo in
  let directory = Directory.create () in
  let suite = Suite.mock (Prng.create ~seed:(seed + 1)) in
  let id_rng = Prng.create ~seed:(seed + 2) in
  let identities =
    Array.init n (fun i ->
        if i = 0 then
          Identity.create ~address:Address.dns_server_1 ~name:"dns" suite id_rng
            ~node_id:0
        else Identity.create suite id_rng ~node_id:i)
  in
  let dns_pk = Identity.pk_bytes identities.(0) in
  (* Link-layer reachability: every initial address resolves (relays with
     tentative addresses can still be addressed, like link-layer frames). *)
  Array.iteri (fun i id -> Directory.register directory id.Identity.address i) identities;
  let ctxs =
    Array.init n (fun i ->
        Ctx.create net directory identities.(i) (Prng.create ~seed:(seed + 100 + i)))
  in
  let dads = Array.map (fun ctx -> Dad.create ~dns_pk ctx) ctxs in
  let dns = Dns.create ctxs.(0) in
  Dns.attach dns dads.(0);
  let clients = Array.map (fun ctx -> Dns_client.create ~dns_pk ctx) ctxs in
  Array.iteri
    (fun i ctx ->
      Net.set_handler net i (fun ~src msg ->
          match msg with
          | Messages.Areq _ | Messages.Arep _ | Messages.Drep _ ->
              Dad.handle dads.(i) ~src msg
          | Messages.Name_query _ | Messages.Ip_change_request _
          | Messages.Ip_change_proof _ ->
              if i = 0 then Dns.handle dns ~src msg
              else
                (* intermediate hop: forward along the source route *)
                Ctx.deliver_up ctx ~src msg
                  ~consume:(fun _ -> ())
                  ~forward:(fun ~next m -> Ctx.send_along ctx ~path:next m)
                  ~not_mine:(fun _ -> ())
          | Messages.Name_reply _ | Messages.Ip_change_challenge _
          | Messages.Ip_change_ack _ ->
              Dns_client.handle clients.(i) ~src msg
          | _ -> ()))
    ctxs;
  { engine; net; directory; identities; ctxs; dads; dns; clients; dns_pk }

let stat w name = Stats.get (Engine.stats w.engine) name

let run_dad ?dn w i =
  let result = ref None in
  Dad.start w.dads.(i) ?dn ~on_complete:(fun o -> result := Some o) ();
  Engine.run w.engine;
  match !result with
  | None -> Alcotest.failf "node %d: DAD never completed" i
  | Some o -> o

let expect_configured = function
  | Dad.Configured { address; name } -> (address, name)
  | Dad.Failed reason -> Alcotest.failf "DAD failed: %s" reason

(* ------------------------------------------------------------------ *)
(* DAD                                                                *)
(* ------------------------------------------------------------------ *)

let test_dad_unique_address_succeeds () =
  let w = make_world () in
  let addr, name = expect_configured (run_dad w 2 ~dn:"host2") in
  Alcotest.(check bool) "site local CGA" true (Address.is_site_local addr);
  Alcotest.(check (option string)) "name kept" (Some "host2") name;
  Alcotest.(check int) "no collision" 0 (stat w "dad.collision");
  Alcotest.(check bool) "configured" true (Dad.is_configured w.dads.(2))

let test_dad_all_nodes_bootstrap () =
  let w = make_world ~n:6 () in
  let outcomes = Array.make 6 None in
  for i = 1 to 5 do
    (* Stagger joins, as hosts arriving at an outdoor event would. *)
    Engine.schedule w.engine ~delay:(float_of_int i *. 3.0) (fun () ->
        Dad.start w.dads.(i)
          ~dn:(Printf.sprintf "host%d" i)
          ~on_complete:(fun o -> outcomes.(i) <- Some o)
          ())
  done;
  Engine.run w.engine;
  let addresses = ref [] in
  for i = 1 to 5 do
    match outcomes.(i) with
    | Some (Dad.Configured { address; _ }) -> addresses := address :: !addresses
    | Some (Dad.Failed r) -> Alcotest.failf "node %d failed: %s" i r
    | None -> Alcotest.failf "node %d never completed" i
  done;
  let distinct = List.sort_uniq Address.compare !addresses in
  Alcotest.(check int) "all addresses distinct" 5 (List.length distinct);
  (* All five names registered once commit_wait elapsed. *)
  Alcotest.(check int) "names registered" 5 (List.length (Dns.entries w.dns))

let force_duplicate w ~of_:i ~onto:j =
  (* Give node j the same tentative address as node i. *)
  let dup = w.identities.(i).Identity.address in
  Directory.unregister w.directory w.identities.(j).Identity.address j;
  w.identities.(j).Identity.address <- dup;
  Directory.register w.directory dup j

let test_dad_detects_duplicate_one_hop () =
  let w = make_world () in
  ignore (expect_configured (run_dad w 1));
  force_duplicate w ~of_:1 ~onto:2;
  let addr, _ = expect_configured (run_dad w 2) in
  Alcotest.(check bool) "got a different address" false
    (Address.equal addr w.identities.(1).Identity.address);
  Alcotest.(check bool) "collision detected" true (stat w "dad.collision" >= 1);
  Alcotest.(check bool) "duplicate answered" true (stat w "dad.duplicate_detected" >= 1)

let test_dad_detects_duplicate_multi_hop () =
  (* Owner at node 1, joiner at node 4: three hops apart, beyond radio
     range — only the flooded AREQ can find the collision. *)
  let w = make_world ~n:5 () in
  ignore (expect_configured (run_dad w 1));
  force_duplicate w ~of_:1 ~onto:4;
  let addr, _ = expect_configured (run_dad w 4) in
  Alcotest.(check bool) "resolved to fresh address" false
    (Address.equal addr w.identities.(1).Identity.address);
  Alcotest.(check bool) "collision detected" true (stat w "dad.collision" >= 1)

let test_dad_duplicate_warning_cancels_registration () =
  let w = make_world ~n:5 () in
  ignore (expect_configured (run_dad w 1));
  force_duplicate w ~of_:1 ~onto:3;
  let addr, name = expect_configured (run_dad w 3 ~dn:"charlie") in
  Alcotest.(check bool) "warning reached dns" true
    (stat w "dns.registration_cancelled" >= 1);
  (* The name must end up bound to the *new* address, never the duplicate. *)
  Alcotest.(check (option string)) "name kept" (Some "charlie") name;
  (match Dns.lookup w.dns "charlie" with
  | None -> Alcotest.fail "charlie not registered"
  | Some bound ->
      Alcotest.(check bool) "bound to final address" true (Address.equal bound addr);
      Alcotest.(check bool) "not bound to the duplicate" false
        (Address.equal bound w.identities.(1).Identity.address))

let test_dad_simultaneous_duplicates () =
  (* Two nodes start DAD for the same tentative address at the same
     moment: each should hear the other's AREQ, answer, and both end up
     with distinct addresses. *)
  let w = make_world ~n:5 () in
  force_duplicate w ~of_:1 ~onto:3;
  let o1 = ref None and o3 = ref None in
  Dad.start w.dads.(1) ~on_complete:(fun o -> o1 := Some o) ();
  Dad.start w.dads.(3) ~on_complete:(fun o -> o3 := Some o) ();
  Engine.run w.engine;
  match (!o1, !o3) with
  | Some (Dad.Configured { address = a1; _ }), Some (Dad.Configured { address = a3; _ }) ->
      Alcotest.(check bool) "distinct final addresses" false (Address.equal a1 a3);
      Alcotest.(check bool) "at least one collision seen" true
        (stat w "dad.collision" >= 1)
  | _ -> Alcotest.fail "both nodes must configure"

let test_dad_name_conflict_renames () =
  let w = make_world () in
  ignore (expect_configured (run_dad w 1 ~dn:"server"));
  let _, name = expect_configured (run_dad w 2 ~dn:"server") in
  Alcotest.(check (option string)) "renamed" (Some "server-2") name;
  Alcotest.(check bool) "drep sent" true (stat w "dns.drep_sent" >= 1);
  (match Dns.lookup w.dns "server" with
  | Some a ->
      Alcotest.(check bool) "original keeps name" true
        (Address.equal a w.identities.(1).Identity.address)
  | None -> Alcotest.fail "server lost");
  Alcotest.(check bool) "renamed entry exists" true (Dns.lookup w.dns "server-2" <> None)

let test_dad_name_conflict_fails_without_rename () =
  let w = make_world () in
  ignore (expect_configured (run_dad w 1 ~dn:"server"));
  let config = { Dad.default_config with auto_rename = false } in
  let dad = Dad.create ~config ~dns_pk:w.dns_pk w.ctxs.(2) in
  (* Swap in the stricter agent for node 2. *)
  let result = ref None in
  Net.set_handler w.net 2 (fun ~src msg ->
      match msg with
      | Messages.Areq _ | Messages.Arep _ | Messages.Drep _ ->
          Dad.handle dad ~src msg
      | _ -> ());
  Dad.start dad ~dn:"server" ~on_complete:(fun o -> result := Some o) ();
  Engine.run w.engine;
  match !result with
  | Some (Dad.Failed _) -> ()
  | Some (Dad.Configured _) -> Alcotest.fail "expected name-conflict failure"
  | None -> Alcotest.fail "DAD never completed"

let test_dad_permanent_entry_protected () =
  (* §3.2: a pre-provisioned (name, address) pair cannot be claimed by a
     newcomer. *)
  let w = make_world () in
  let server_addr = Address.of_string_exn "fec0::aaaa" in
  Dns.preload w.dns ~name:"yahoo.com" server_addr;
  let _, name = expect_configured (run_dad w 2 ~dn:"yahoo.com") in
  Alcotest.(check bool) "did not get the permanent name" true
    (name <> Some "yahoo.com");
  Alcotest.(check (option bool)) "mapping intact" (Some true)
    (Option.map (Address.equal server_addr) (Dns.lookup w.dns "yahoo.com"))

let test_dad_forged_arep_rejected () =
  (* An adversary (node 2) answers every AREQ with a forged AREP, trying
     to deny addresses (§4, forged AREP).  The initiator must ignore it
     and configure anyway. *)
  let w = make_world () in
  let attacker_ctx = w.ctxs.(2) in
  let attacker_rng = Prng.create ~seed:999 in
  Net.set_handler w.net 2 (fun ~src:_ msg ->
      match msg with
      | Messages.Areq { sip; rr; _ } ->
          let back_path = List.rev rr @ [ sip ] in
          let fake =
            Messages.Arep
              {
                sip;
                rr;
                remaining = back_path;
                sig_ = Prng.bytes attacker_rng 32;
                pk = Prng.bytes attacker_rng 32;
                rn = 0L;
              }
          in
          Ctx.send_along attacker_ctx ~path:back_path fake
      | _ -> ());
  let addr, _ = expect_configured (run_dad w 1) in
  Alcotest.(check bool) "configured despite forgery" true
    (Address.is_site_local addr);
  Alcotest.(check bool) "forgery was rejected" true (stat w "dad.arep_rejected" >= 1);
  Alcotest.(check int) "no collision recorded" 0 (stat w "dad.collision")

let test_dad_forged_drep_rejected () =
  (* A forged DREP (not signed by the DNS key) must not force a rename. *)
  let w = make_world () in
  let attacker_ctx = w.ctxs.(2) in
  let attacker_rng = Prng.create ~seed:1001 in
  Net.set_handler w.net 2 (fun ~src:_ msg ->
      match msg with
      | Messages.Areq { sip; dn = Some dn; rr; _ } ->
          let back_path = List.rev rr @ [ sip ] in
          let fake =
            Messages.Drep
              { sip; dn; rr; remaining = back_path; sig_ = Prng.bytes attacker_rng 32 }
          in
          Ctx.send_along attacker_ctx ~path:back_path fake
      | _ -> ());
  let _, name = expect_configured (run_dad w 1 ~dn:"alice") in
  Alcotest.(check (option string)) "kept the name" (Some "alice") name;
  Alcotest.(check bool) "forgery rejected" true (stat w "dad.drep_rejected" >= 1)

let test_dad_flood_is_duplicate_suppressed () =
  let w = make_world ~n:8 () in
  ignore (expect_configured (run_dad w 4));
  (* In an 8-node chain, each node broadcasts a given AREQ at most once:
     1 original + at most 7 relays. *)
  let areq_tx = stat w "tx.areq" in
  Alcotest.(check bool) "flood bounded by one tx per node"
    true
    (areq_tx >= 3 && areq_tx <= 8)

(* ------------------------------------------------------------------ *)
(* DNS client services                                                *)
(* ------------------------------------------------------------------ *)

let bootstrap_all w n =
  for i = 1 to n - 1 do
    Engine.schedule w.engine ~delay:(float_of_int i *. 3.0) (fun () ->
        Dad.start w.dads.(i)
          ~dn:(Printf.sprintf "host%d" i)
          ~on_complete:(fun _ -> ())
          ())
  done;
  Engine.run w.engine

(* The route (intermediates) from node i to the DNS at node 0 along the
   chain. *)
let route_to_dns w i =
  List.init (i - 1) (fun k -> w.identities.(i - 1 - k).Identity.address)

let test_dns_query_resolves () =
  let w = make_world ~n:5 () in
  bootstrap_all w 5;
  let result = ref `Pending in
  Dns_client.query w.clients.(4) ~route:(route_to_dns w 4) ~name:"host2"
    ~callback:(fun r -> result := `Got r);
  Engine.run w.engine;
  (match !result with
  | `Got (Some addr) ->
      Alcotest.(check bool) "resolves to host2's address" true
        (Address.equal addr w.identities.(2).Identity.address)
  | `Got None -> Alcotest.fail "name not found"
  | `Pending -> Alcotest.fail "no verified reply");
  Alcotest.(check bool) "verified" true (stat w "dns_client.verified_replies" >= 1)

let test_dns_query_unknown_name () =
  let w = make_world ~n:3 () in
  bootstrap_all w 3;
  let result = ref `Pending in
  Dns_client.query w.clients.(2) ~route:(route_to_dns w 2) ~name:"nobody"
    ~callback:(fun r -> result := `Got r);
  Engine.run w.engine;
  match !result with
  | `Got None -> ()
  | `Got (Some _) -> Alcotest.fail "unknown name resolved"
  | `Pending -> Alcotest.fail "no verified reply"

let test_dns_ip_change_accepted () =
  let w = make_world ~n:4 () in
  bootstrap_all w 4;
  let old_addr = w.identities.(3).Identity.address in
  let changed = ref None in
  Dns_client.request_ip_change w.clients.(3) ~route:(route_to_dns w 3)
    ~callback:(fun ok -> changed := Some ok);
  Engine.run w.engine;
  Alcotest.(check (option bool)) "accepted" (Some true) !changed;
  let new_addr = w.identities.(3).Identity.address in
  Alcotest.(check bool) "address really changed" false (Address.equal old_addr new_addr);
  Alcotest.(check bool) "still a valid CGA" true
    (Cga.verify new_addr
       ~pk_bytes:(Identity.pk_bytes w.identities.(3))
       ~rn:w.identities.(3).Identity.rn);
  (* The DNS followed the rebinding. *)
  (match Dns.lookup w.dns "host3" with
  | Some a -> Alcotest.(check bool) "dns rebound" true (Address.equal a new_addr)
  | None -> Alcotest.fail "host3 lost its name");
  (* The directory follows too. *)
  Alcotest.(check (option int)) "directory rebound" (Some 3)
    (Directory.lookup w.directory new_addr);
  Alcotest.(check (option int)) "old binding gone" None
    (Directory.lookup w.directory old_addr)

let test_dns_ip_change_forged_proof_rejected () =
  (* The attacker (node 2) tries to steal node 1's address binding: it
     requests a change of node 1's address and answers the challenge with
     its own key.  CGA verification must fail. *)
  let w = make_world ~n:3 () in
  bootstrap_all w 3;
  let victim = w.identities.(1).Identity.address in
  let attacker = w.identities.(2) in
  let atk_rng = Prng.create ~seed:7 in
  let new_rn, new_ip = Cga.fresh atk_rng ~pk_bytes:(Identity.pk_bytes attacker) in
  let route = route_to_dns w 2 in
  let path = route @ [ Address.dns_server_1 ] in
  Ctx.send_along w.ctxs.(2) ~path
    (Messages.Ip_change_request { old_ip = victim; new_ip; route; remaining = path });
  Engine.run w.engine;
  (* The challenge went to the victim (owner of old_ip), who has no
     pending change; the attacker cannot learn ch, so nothing changes. *)
  Alcotest.(check int) "no change committed" 0 (stat w "dns.ip_changed");
  (* Now the attacker guesses a challenge and sends a proof directly:
     the DNS must reject it. *)
  let sig_ =
    Identity.sign attacker
      (Codec.ip_change_payload ~old_ip:victim ~new_ip ~ch:0L)
  in
  Ctx.send_along w.ctxs.(2) ~path
    (Messages.Ip_change_proof
       {
         old_ip = victim;
         new_ip;
         old_rn = 0L;
         new_rn;
         pk = Identity.pk_bytes attacker;
         sig_;
         route;
         remaining = path;
       });
  Engine.run w.engine;
  Alcotest.(check int) "still no change" 0 (stat w "dns.ip_changed");
  (match Dns.lookup w.dns "host1" with
  | Some a -> Alcotest.(check bool) "victim keeps binding" true (Address.equal a victim)
  | None -> Alcotest.fail "victim lost binding")

let test_dns_fcfs_pending_conflict () =
  (* Two hosts race for the same name; the first AREQ to reach the DNS
     wins even before commit. *)
  let w = make_world ~n:4 () in
  let o1 = ref None and o2 = ref None in
  Engine.schedule w.engine ~delay:0.0 (fun () ->
      Dad.start w.dads.(1) ~dn:"race" ~on_complete:(fun o -> o1 := Some o) ());
  Engine.schedule w.engine ~delay:0.2 (fun () ->
      (* inside the first registration's commit window *)
      Dad.start w.dads.(2) ~dn:"race" ~on_complete:(fun o -> o2 := Some o) ());
  Engine.run w.engine;
  (match (!o1, !o2) with
  | Some (Dad.Configured { name = n1; _ }), Some (Dad.Configured { name = n2; _ }) ->
      Alcotest.(check (option string)) "first keeps name" (Some "race") n1;
      Alcotest.(check bool) "second renamed" true (n2 <> Some "race")
  | _ -> Alcotest.fail "both should configure");
  match Dns.lookup w.dns "race" with
  | Some a ->
      Alcotest.(check bool) "bound to first" true
        (Address.equal a w.identities.(1).Identity.address)
  | None -> Alcotest.fail "race not registered"

let suites =
  [
    ( "dad",
      [
        Alcotest.test_case "unique address succeeds" `Quick test_dad_unique_address_succeeds;
        Alcotest.test_case "all nodes bootstrap" `Quick test_dad_all_nodes_bootstrap;
        Alcotest.test_case "duplicate one hop" `Quick test_dad_detects_duplicate_one_hop;
        Alcotest.test_case "duplicate multi hop" `Quick test_dad_detects_duplicate_multi_hop;
        Alcotest.test_case "warning cancels registration" `Quick
          test_dad_duplicate_warning_cancels_registration;
        Alcotest.test_case "simultaneous duplicates" `Quick test_dad_simultaneous_duplicates;
        Alcotest.test_case "name conflict renames" `Quick test_dad_name_conflict_renames;
        Alcotest.test_case "name conflict strict" `Quick
          test_dad_name_conflict_fails_without_rename;
        Alcotest.test_case "permanent entry protected" `Quick test_dad_permanent_entry_protected;
        Alcotest.test_case "forged arep rejected" `Quick test_dad_forged_arep_rejected;
        Alcotest.test_case "forged drep rejected" `Quick test_dad_forged_drep_rejected;
        Alcotest.test_case "flood dedup" `Quick test_dad_flood_is_duplicate_suppressed;
      ] );
    ( "dns",
      [
        Alcotest.test_case "query resolves" `Quick test_dns_query_resolves;
        Alcotest.test_case "query unknown" `Quick test_dns_query_unknown_name;
        Alcotest.test_case "ip change accepted" `Quick test_dns_ip_change_accepted;
        Alcotest.test_case "ip change forged rejected" `Quick
          test_dns_ip_change_forged_proof_rejected;
        Alcotest.test_case "fcfs pending conflict" `Quick test_dns_fcfs_pending_conflict;
      ] );
  ]
