module Address = Manet_ipv6.Address

module Table = Hashtbl.Make (struct
  type t = Address.t

  let equal = Address.equal
  let hash = Address.hash
end)

type t = int list Table.t

let create () = Table.create 64

let register t addr node =
  let existing = Option.value ~default:[] (Table.find_opt t addr) in
  if not (List.mem node existing) then
    Table.replace t addr (List.sort Int.compare (node :: existing))

let unregister t addr node =
  match Table.find_opt t addr with
  | None -> ()
  | Some ids -> (
      match List.filter (fun i -> i <> node) ids with
      | [] -> Table.remove t addr
      | rest -> Table.replace t addr rest)

let lookup_all t addr = Option.value ~default:[] (Table.find_opt t addr)

let lookup t addr =
  match lookup_all t addr with [] -> None | id :: _ -> Some id

let addresses_of t node =
  Table.fold
    (fun addr ids acc -> if List.mem node ids then addr :: acc else acc)
    t []
  |> List.sort Address.compare
