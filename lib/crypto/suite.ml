type keypair = { pk_bytes : string; sign : string -> string }

type op = Sign | Verify | Hash

type t = {
  scheme_name : string;
  generate : unit -> keypair;
  verify : pk_bytes:string -> msg:string -> signature:string -> bool;
  signature_size : int;
  public_key_size : int;
  mutable sign_count : int;
  mutable verify_count : int;
  mutable sha256_blocks : int;
  mutable on_op : (op:op -> bytes:int -> unit) option;
}

(* One accounting point for every operation the suite performs: bump
   the op counter, charge the hash blocks the input costs, and notify
   the subscriber (the perf registry) so it can attribute the op to the
   message kind and node currently being dispatched. *)
let record t op ~bytes =
  (match op with
  | Sign -> t.sign_count <- t.sign_count + 1
  | Verify -> t.verify_count <- t.verify_count + 1
  | Hash -> ());
  t.sha256_blocks <- t.sha256_blocks + Sha256.blocks_of_len bytes;
  match t.on_op with None -> () | Some f -> f ~op ~bytes

let count_hash t ~bytes = record t Hash ~bytes

let rsa ?(bits = 512) prng =
  let rec suite =
    {
      scheme_name = Printf.sprintf "rsa-%d" bits;
      generate =
        (fun () ->
          let pub, priv = Rsa.generate prng ~bits in
          {
            pk_bytes = Rsa.public_key_to_bytes pub;
            sign =
              (fun msg ->
                record suite Sign ~bytes:(String.length msg);
                Rsa.sign priv msg);
          });
      verify =
        (fun ~pk_bytes ~msg ~signature ->
          record suite Verify ~bytes:(String.length msg);
          match Rsa.public_key_of_bytes pk_bytes with
          | None -> false
          | Some pk -> Rsa.verify pk ~msg ~signature);
      (* n is [bits] bits and e = 65537: 3 bytes, plus two 2-byte length
         prefixes. *)
      signature_size = (bits + 7) / 8;
      public_key_size = ((bits + 7) / 8) + 3 + 4;
      sign_count = 0;
      verify_count = 0;
      sha256_blocks = 0;
      on_op = None;
    }
  in
  suite

let mock prng =
  let registry = Mock_sig.create_registry () in
  let rec suite =
    {
      scheme_name = "mock-hmac";
      generate =
        (fun () ->
          let pk_bytes, sk = Mock_sig.generate registry prng in
          {
            pk_bytes;
            sign =
              (fun msg ->
                record suite Sign ~bytes:(String.length msg);
                Mock_sig.sign sk msg);
          });
      verify =
        (fun ~pk_bytes ~msg ~signature ->
          record suite Verify ~bytes:(String.length msg);
          Mock_sig.verify registry ~pk_bytes ~msg ~signature);
      signature_size = Mock_sig.signature_size;
      public_key_size = Mock_sig.public_key_size;
      sign_count = 0;
      verify_count = 0;
      sha256_blocks = 0;
      on_op = None;
    }
  in
  suite

let set_on_op t f = t.on_op <- f

let reset_counters t =
  t.sign_count <- 0;
  t.verify_count <- 0;
  t.sha256_blocks <- 0
