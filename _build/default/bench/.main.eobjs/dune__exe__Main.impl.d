bench/main.ml: Array Experiments Figures List Micro Printf String Sys Tables
