lib/attacks/adversary.mli: Manet_ipv6 Manet_proto
