type run = {
  key : (string * Json.t) list;
  stats : (string * int) list;
  streams : (string * string) list;
}

let schema = "manetsim-sweep"
let schema_version = 1

(* Scalar comparison for key coordinates: numbers numerically (so seed
   10 sorts after seed 2), everything else by canonical rendering. *)
let compare_value a b =
  match (a, b) with
  | Json.Int x, Json.Int y -> Int.compare x y
  | Json.Float x, Json.Float y -> Float.compare x y
  | Json.Int x, Json.Float y -> Float.compare (float_of_int x) y
  | Json.Float x, Json.Int y -> Float.compare x (float_of_int y)
  | Json.String x, Json.String y -> String.compare x y
  | a, b -> String.compare (Json.to_string a) (Json.to_string b)

let rec compare_key a b =
  match (a, b) with
  | [], [] -> 0
  | [], _ -> -1
  | _, [] -> 1
  | (na, va) :: ta, (nb, vb) :: tb ->
      let c = String.compare na nb in
      if c <> 0 then c
      else begin
        let c = compare_value va vb in
        if c <> 0 then c else compare_key ta tb
      end

let sorted runs = List.stable_sort (fun a b -> compare_key a.key b.key) runs

let split_header text =
  match String.index_opt text '\n' with
  | Some i ->
      (String.sub text 0 i, String.sub text (i + 1) (String.length text - i - 1))
  | None -> (text, "")

let stream_jsonl ~name runs =
  let runs = sorted runs in
  let buf = Buffer.create 4096 in
  let line v =
    Json.to_buffer buf v;
    Buffer.add_char buf '\n'
  in
  line
    (Json.Obj
       [
         ("schema", Json.String schema);
         ("version", Json.Int schema_version);
         ("stream", Json.String name);
         ("runs", Json.Int (List.length runs));
       ]);
  List.iteri
    (fun i r ->
      match List.assoc_opt name r.streams with
      | None ->
          invalid_arg
            (Printf.sprintf "Merge.stream_jsonl: run %d has no %S stream" i name)
      | Some text ->
          let header, rest = split_header text in
          (* Re-parse and re-print the per-run header so the embedded
             copy is canonical whatever whitespace the source used. *)
          line
            (Json.Obj (("run", Json.Int i) :: r.key @ [ ("source", Json.parse header) ]));
          Buffer.add_string buf rest;
          if rest <> "" && rest.[String.length rest - 1] <> '\n' then
            Buffer.add_char buf '\n')
    runs;
  Buffer.contents buf

let cell = function
  | Json.String s -> s
  | Json.Int i -> string_of_int i
  | Json.Float f -> Json.float_str f
  | j -> Json.to_string j

let stats_csv runs =
  let runs = sorted runs in
  let buf = Buffer.create 1024 in
  let key_names =
    match runs with r :: _ -> List.map fst r.key | [] -> []
  in
  List.iter
    (fun n ->
      Buffer.add_string buf n;
      Buffer.add_char buf ',')
    key_names;
  Buffer.add_string buf "counter,value\n";
  List.iter
    (fun r ->
      let prefix =
        String.concat "" (List.map (fun (_, v) -> cell v ^ ",") r.key)
      in
      List.iter
        (fun (name, v) ->
          Buffer.add_string buf prefix;
          Buffer.add_string buf name;
          Buffer.add_char buf ',';
          Buffer.add_string buf (string_of_int v);
          Buffer.add_char buf '\n')
        r.stats)
    runs;
  Buffer.contents buf
