(** Binary wire codec for {!Messages}.

    The simulator itself passes messages by value and only charges
    modelled sizes ({!Wire}), but a deployable implementation needs a
    concrete encoding; this module provides one so the message set is
    demonstrably serializable and so fuzz/property tests can exercise a
    real parser.

    Format: a 1-byte message tag, then the fields of the variant in
    declaration order — addresses as 16 network-order bytes, integers
    big-endian (u32 for sequence numbers and sizes, u64 for challenges
    and CGA modifiers), strings and signatures u16-length-prefixed,
    routes and SRRs u16-count-prefixed, options as a presence byte.
    [sent_at] timestamps are carried as IEEE-754 bits so decode is the
    exact inverse of encode (a field a real deployment would drop).

    The decoder never raises on malformed input: it returns
    [Error reason] on truncation, trailing garbage, unknown tags or
    out-of-range counts. *)

val encode : Messages.t -> string

val decode : string -> (Messages.t, string) result

val equal_message : Messages.t -> Messages.t -> bool
(** Structural equality over messages (addresses compared by value). *)
