(** The simulated radio: unit-disk broadcast medium with loss, delay and
    MAC-level retry for unicast frames.

    Nodes are integer ids into a {!Topology}.  Each node registers one
    receive handler; the network invokes it with the link-layer sender.
    Messages are an arbitrary type ['msg]; their wire size is supplied per
    send so that the overhead experiments can account bytes honestly
    without the simulator serializing anything.

    Semantics:
    - [broadcast] reaches every node currently within range, each
      delivery independently subject to the loss probability.
    - [unicast] models a MAC with link-level acknowledgements: up to
      [1 + mac_retries] attempts; if every attempt is lost or the target
      is out of range or down, the sender's [on_fail] callback fires
      after the attempts' worth of time — this is how DSR's route
      maintenance learns a link broke. *)

type 'msg t

type config = {
  range : float;  (** unit-disk radio range *)
  loss : float;  (** per-delivery loss probability in [0,1) *)
  bit_rate : float;  (** bits per second; sets transmission delay *)
  prop_delay : float;  (** per-hop propagation delay, seconds *)
  jitter : float;  (** uniform extra delivery delay, seconds *)
  mac_retries : int;  (** extra unicast attempts after the first *)
  promiscuous : bool;
      (** neighbours overhear unicast frames addressed to others — the
          radio mode DSR's automatic route shortening relies on *)
}

val default_config : config
(** 250 m range, no loss, 2 Mb/s, 5 us propagation, 0.1 ms jitter,
    3 retries, promiscuous off. *)

val create : ?config:config -> Engine.t -> Topology.t -> 'msg t

val config : 'msg t -> config
val topology : 'msg t -> Topology.t
val engine : 'msg t -> Engine.t
val size : 'msg t -> int

val set_handler : 'msg t -> int -> (src:int -> 'msg -> unit) -> unit
(** Replace node [i]'s receive handler (default: drop). *)

val set_down : 'msg t -> int -> bool -> unit
(** A down node neither sends, receives, nor acknowledges. *)

val is_down : 'msg t -> int -> bool

val broadcast : 'msg t -> src:int -> size:int -> 'msg -> unit
(** One radio transmission of [size] bytes to all current neighbours. *)

val unicast :
  'msg t -> src:int -> dst:int -> size:int -> ?on_fail:(unit -> unit) ->
  'msg -> unit
(** Link-layer unicast to a (supposed) neighbour. *)

val bytes_sent : 'msg t -> int
(** Total bytes put on the air, including retries. *)

val transmissions : 'msg t -> int
(** Number of radio transmissions (retries counted). *)

val deliveries : 'msg t -> int
val unicast_failures : 'msg t -> int

val reset_counters : 'msg t -> unit
