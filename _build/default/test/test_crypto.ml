(* Unit and property tests for the from-scratch crypto substrate. *)

module Prng = Manet_crypto.Prng
module Bignum = Manet_crypto.Bignum
module Sha256 = Manet_crypto.Sha256
module Hmac = Manet_crypto.Hmac
module Rsa = Manet_crypto.Rsa
module Mock_sig = Manet_crypto.Mock_sig
module Suite = Manet_crypto.Suite

let qtest ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name gen prop)

(* ------------------------------------------------------------------ *)
(* PRNG                                                               *)
(* ------------------------------------------------------------------ *)

let test_prng_determinism () =
  let a = Prng.create ~seed:42 and b = Prng.create ~seed:42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Prng.bits64 a) (Prng.bits64 b)
  done

let test_prng_seed_sensitivity () =
  let a = Prng.create ~seed:1 and b = Prng.create ~seed:2 in
  let distinct = ref false in
  for _ = 1 to 16 do
    if not (Int64.equal (Prng.bits64 a) (Prng.bits64 b)) then distinct := true
  done;
  Alcotest.(check bool) "streams differ" true !distinct

let test_prng_int_bounds () =
  let g = Prng.create ~seed:7 in
  for _ = 1 to 10_000 do
    let v = Prng.int g 13 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 13)
  done

let test_prng_float_bounds () =
  let g = Prng.create ~seed:11 in
  for _ = 1 to 10_000 do
    let v = Prng.float g 2.5 in
    Alcotest.(check bool) "in range" true (v >= 0.0 && v < 2.5)
  done

let test_prng_copy_replays () =
  let g = Prng.create ~seed:3 in
  let _ = Prng.bits64 g in
  let h = Prng.copy g in
  Alcotest.(check int64) "copy replays" (Prng.bits64 g) (Prng.bits64 h)

let test_prng_split_independent () =
  let g = Prng.create ~seed:5 in
  let h = Prng.split g in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Int64.equal (Prng.bits64 g) (Prng.bits64 h) then incr same
  done;
  Alcotest.(check bool) "split stream diverges" true (!same < 4)

let test_prng_shuffle_permutes () =
  let g = Prng.create ~seed:9 in
  let a = Array.init 50 Fun.id in
  Prng.shuffle g a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "same multiset" (Array.init 50 Fun.id) sorted

let test_prng_bytes_length () =
  let g = Prng.create ~seed:13 in
  List.iter
    (fun n -> Alcotest.(check int) "length" n (String.length (Prng.bytes g n)))
    [ 0; 1; 7; 8; 9; 31; 32; 33 ]

let test_prng_exponential_mean () =
  let g = Prng.create ~seed:17 in
  let n = 20_000 in
  let sum = ref 0.0 in
  for _ = 1 to n do
    let v = Prng.exponential g ~mean:4.0 in
    Alcotest.(check bool) "non-negative" true (v >= 0.0);
    sum := !sum +. v
  done;
  let mean = !sum /. float_of_int n in
  Alcotest.(check bool) "mean close to 4" true (abs_float (mean -. 4.0) < 0.2)

(* ------------------------------------------------------------------ *)
(* Bignum                                                             *)
(* ------------------------------------------------------------------ *)

let bn = Bignum.of_int
let bn_testable = Alcotest.testable Bignum.pp Bignum.equal

(* Generator of arbitrary-size integers via decimal strings. *)
let gen_bignum_of_bits bits =
  QCheck.Gen.(
    map2
      (fun seed neg ->
        let g = Prng.create ~seed in
        let v = Bignum.random g ~bits in
        if neg then Bignum.neg v else v)
      int bool)

let arb_bignum ?(bits = 300) () =
  QCheck.make ~print:Bignum.to_string (gen_bignum_of_bits bits)

let test_bignum_small_roundtrip () =
  List.iter
    (fun i ->
      Alcotest.(check (option int))
        (string_of_int i) (Some i)
        (Bignum.to_int_opt (bn i)))
    [ 0; 1; -1; 42; -42; 67108863; 67108864; -67108865; max_int / 2 ]

let test_bignum_decimal_known () =
  let cases =
    [
      ("0", 0);
      ("12345678901234567", 12345678901234567);
      ("-987654321", -987654321);
    ]
  in
  List.iter
    (fun (s, i) ->
      Alcotest.check bn_testable s (bn i) (Bignum.of_string s);
      Alcotest.(check string) s s (Bignum.to_string (bn i)))
    cases

let test_bignum_decimal_large () =
  let s = "123456789012345678901234567890123456789012345678901234567890" in
  Alcotest.(check string) "roundtrip" s (Bignum.to_string (Bignum.of_string s));
  let neg = "-" ^ s in
  Alcotest.(check string) "negative" neg (Bignum.to_string (Bignum.of_string neg))

let test_bignum_of_string_invalid () =
  List.iter
    (fun s ->
      Alcotest.check_raises s (Invalid_argument "Bignum.of_string: bad digit")
        (fun () -> ignore (Bignum.of_string s)))
    [ "12a"; "1.5" ];
  Alcotest.check_raises "empty" (Invalid_argument "Bignum.of_string: empty")
    (fun () -> ignore (Bignum.of_string ""))

let test_bignum_hex () =
  Alcotest.(check string) "hex" "deadbeef" (Bignum.to_hex (Bignum.of_hex "DEADBEEF"));
  Alcotest.check bn_testable "hex value" (bn 0xdeadbeef) (Bignum.of_hex "deadbeef");
  Alcotest.(check string) "zero" "0" (Bignum.to_hex Bignum.zero)

let test_bignum_bytes_be () =
  let v = Bignum.of_hex "0102030405060708090a" in
  Alcotest.(check string)
    "to_bytes" "\x01\x02\x03\x04\x05\x06\x07\x08\x09\x0a"
    (Bignum.to_bytes_be v);
  Alcotest.check bn_testable "roundtrip" v
    (Bignum.of_bytes_be (Bignum.to_bytes_be v));
  Alcotest.(check int) "padded" 16 (String.length (Bignum.to_bytes_be ~pad:16 v))

let prop_add_commutes =
  qtest "bignum: a+b = b+a"
    QCheck.(pair (arb_bignum ()) (arb_bignum ()))
    (fun (a, b) -> Bignum.equal (Bignum.add a b) (Bignum.add b a))

let prop_add_sub_inverse =
  qtest "bignum: (a+b)-b = a"
    QCheck.(pair (arb_bignum ()) (arb_bignum ()))
    (fun (a, b) -> Bignum.equal (Bignum.sub (Bignum.add a b) b) a)

let prop_mul_commutes =
  qtest "bignum: a*b = b*a"
    QCheck.(pair (arb_bignum ()) (arb_bignum ()))
    (fun (a, b) -> Bignum.equal (Bignum.mul a b) (Bignum.mul b a))

let prop_mul_distributes =
  qtest "bignum: a*(b+c) = a*b + a*c"
    QCheck.(triple (arb_bignum ()) (arb_bignum ()) (arb_bignum ()))
    (fun (a, b, c) ->
      Bignum.equal
        (Bignum.mul a (Bignum.add b c))
        (Bignum.add (Bignum.mul a b) (Bignum.mul a c)))

let prop_karatsuba_matches_school =
  (* Operands large enough to cross the Karatsuba threshold; compare the
     product against an independent identity: (a*b) / a = b. *)
  qtest ~count:20 "bignum: karatsuba consistent with division"
    QCheck.(pair (arb_bignum ~bits:2000 ()) (arb_bignum ~bits:1800 ()))
    (fun (a, b) ->
      let a = Bignum.abs a and b = Bignum.abs b in
      QCheck.assume (Bignum.sign a > 0);
      let p = Bignum.mul a b in
      let q, r = Bignum.divmod p a in
      Bignum.equal q b && Bignum.equal r Bignum.zero)

let prop_divmod_invariant =
  qtest "bignum: a = b*q + r with |r| < |b|"
    QCheck.(pair (arb_bignum ~bits:500 ()) (arb_bignum ~bits:200 ()))
    (fun (a, b) ->
      QCheck.assume (Bignum.sign b <> 0);
      let q, r = Bignum.divmod a b in
      Bignum.equal a (Bignum.add (Bignum.mul b q) r)
      && Bignum.compare (Bignum.abs r) (Bignum.abs b) < 0
      && (Bignum.sign r = 0 || Bignum.sign r = Bignum.sign a))

let prop_divmod_matches_int =
  qtest "bignum: divmod matches native int semantics"
    QCheck.(pair int int)
    (fun (a, b) ->
      QCheck.assume (b <> 0);
      (* Avoid abs min_int overflow in the test oracle itself. *)
      QCheck.assume (a > min_int && b > min_int);
      let q, r = Bignum.divmod (bn a) (bn b) in
      Bignum.equal q (bn (a / b)) && Bignum.equal r (bn (a mod b)))

let prop_mod_nonneg =
  qtest "bignum: mod_ is in [0, m)"
    QCheck.(pair (arb_bignum ()) (arb_bignum ~bits:100 ()))
    (fun (a, m) ->
      let m = Bignum.abs m in
      QCheck.assume (Bignum.sign m > 0);
      let r = Bignum.mod_ a m in
      Bignum.sign r >= 0 && Bignum.compare r m < 0)

let prop_shift_left_is_mul_pow2 =
  qtest "bignum: shift_left n k = n * 2^k"
    QCheck.(pair (arb_bignum ()) (int_bound 200))
    (fun (n, k) ->
      let pow2 = Bignum.shift_left Bignum.one k in
      Bignum.equal (Bignum.shift_left n k) (Bignum.mul n pow2))

let prop_shift_right_inverse =
  qtest "bignum: shift_right (shift_left n k) k = n"
    QCheck.(pair (arb_bignum ()) (int_bound 200))
    (fun (n, k) -> Bignum.equal (Bignum.shift_right (Bignum.shift_left n k) k) n)

let prop_numbits =
  qtest "bignum: 2^(numbits-1) <= |n| < 2^numbits"
    (arb_bignum ())
    (fun n ->
      QCheck.assume (Bignum.sign n <> 0);
      let nb = Bignum.numbits n in
      let lo = Bignum.shift_left Bignum.one (nb - 1) in
      let hi = Bignum.shift_left Bignum.one nb in
      let a = Bignum.abs n in
      Bignum.compare lo a <= 0 && Bignum.compare a hi < 0)

let prop_string_roundtrip =
  qtest "bignum: of_string (to_string n) = n"
    (arb_bignum ~bits:400 ())
    (fun n -> Bignum.equal n (Bignum.of_string (Bignum.to_string n)))

let prop_egcd =
  qtest "bignum: egcd bezout identity"
    QCheck.(pair (arb_bignum ~bits:200 ()) (arb_bignum ~bits:200 ()))
    (fun (a, b) ->
      let a = Bignum.abs a and b = Bignum.abs b in
      let g, x, y = Bignum.egcd a b in
      Bignum.equal g (Bignum.add (Bignum.mul a x) (Bignum.mul b y))
      && Bignum.equal g (Bignum.gcd a b))

let prop_mod_inverse =
  qtest "bignum: a * inv(a) = 1 (mod m)"
    QCheck.(pair (arb_bignum ~bits:200 ()) (arb_bignum ~bits:200 ()))
    (fun (a, m) ->
      let m = Bignum.abs m in
      QCheck.assume (Bignum.compare m Bignum.two > 0);
      match Bignum.mod_inverse a m with
      | None -> not (Bignum.equal (Bignum.gcd (Bignum.abs a) m) Bignum.one)
      | Some inv -> Bignum.equal (Bignum.mod_ (Bignum.mul a inv) m) Bignum.one)

let naive_mod_pow b e m =
  (* Oracle for small exponents. *)
  let rec go acc i =
    if i = 0 then acc else go (Bignum.mod_ (Bignum.mul acc b) m) (i - 1)
  in
  go (Bignum.mod_ Bignum.one m) e

let prop_mod_pow_matches_naive =
  qtest ~count:50 "bignum: mod_pow matches naive oracle"
    QCheck.(triple (arb_bignum ~bits:60 ()) (int_bound 40) (arb_bignum ~bits:60 ()))
    (fun (b, e, m) ->
      let m = Bignum.abs m in
      QCheck.assume (Bignum.sign m > 0);
      Bignum.equal (Bignum.mod_pow b (bn e) m) (naive_mod_pow b e m))

let prop_mod_pow_montgomery_matches_generic =
  (* Odd multi-limb moduli take the Montgomery path in mod_pow; it must
     agree with the division-based implementation bit for bit. *)
  qtest ~count:100 "bignum: montgomery mod_pow = generic mod_pow"
    QCheck.(triple (arb_bignum ~bits:300 ()) (arb_bignum ~bits:120 ()) (arb_bignum ~bits:260 ()))
    (fun (b, e, m) ->
      let e = Bignum.abs e in
      let m = Bignum.abs m in
      (* force odd, multi-limb *)
      let m = Bignum.add m (Bignum.shift_left Bignum.one 200) in
      let m = if Bignum.testbit m 0 then m else Bignum.add m Bignum.one in
      Bignum.equal (Bignum.mod_pow b e m) (Bignum.mod_pow_generic b e m))

let test_mod_pow_even_modulus () =
  (* Even moduli must still work (generic path). *)
  let b = Bignum.of_string "123456789123456789" in
  let e = Bignum.of_int 65537 in
  let m = Bignum.shift_left (Bignum.of_string "987654321987654321") 1 in
  Alcotest.check bn_testable "even modulus" (naive_mod_pow b 7 m)
    (Bignum.mod_pow b (bn 7) m);
  Alcotest.(check bool) "big even exponentiation runs" true
    (Bignum.compare (Bignum.mod_pow b e m) m < 0)

let test_mod_pow_fermat () =
  (* Fermat's little theorem at a known 61-bit Mersenne prime. *)
  let p = Bignum.of_string "2305843009213693951" in
  let g = Prng.create ~seed:23 in
  for _ = 1 to 10 do
    let a = Bignum.add Bignum.one (Bignum.random_below g (Bignum.sub p Bignum.one)) in
    Alcotest.check bn_testable "a^(p-1) = 1 mod p" Bignum.one
      (Bignum.mod_pow a (Bignum.sub p Bignum.one) p)
  done

let test_primality_known () =
  let g = Prng.create ~seed:29 in
  let primes = [ "2"; "3"; "65537"; "2305843009213693951"; "170141183460469231731687303715884105727" ] in
  let composites = [ "1"; "0"; "4"; "65536"; "561"; "341550071728321"; "2305843009213693953" ] in
  List.iter
    (fun s ->
      Alcotest.(check bool) ("prime " ^ s) true
        (Bignum.is_probable_prime g (Bignum.of_string s)))
    primes;
  List.iter
    (fun s ->
      Alcotest.(check bool) ("composite " ^ s) false
        (Bignum.is_probable_prime g (Bignum.of_string s)))
    composites

let test_generate_prime () =
  let g = Prng.create ~seed:31 in
  List.iter
    (fun bits ->
      let p = Bignum.generate_prime g ~bits in
      Alcotest.(check int) "width" bits (Bignum.numbits p);
      Alcotest.(check bool) "prime" true (Bignum.is_probable_prime g p);
      Alcotest.(check bool) "odd" true (Bignum.testbit p 0))
    [ 16; 64; 128 ]

let test_random_below () =
  let g = Prng.create ~seed:37 in
  let n = Bignum.of_string "1000000007" in
  for _ = 1 to 200 do
    let v = Bignum.random_below g n in
    Alcotest.(check bool) "in range" true
      (Bignum.sign v >= 0 && Bignum.compare v n < 0)
  done

(* ------------------------------------------------------------------ *)
(* SHA-256 (FIPS 180-4 vectors)                                       *)
(* ------------------------------------------------------------------ *)

let test_sha256_vectors () =
  let cases =
    [
      ("", "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
      ("abc", "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
      ( "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
        "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1" );
      ( "abcdefghbcdefghicdefghijdefghijkefghijklfghijklmghijklmnhijklmno\
         ijklmnopjklmnopqklmnopqrlmnopqrsmnopqrstnopqrstu",
        "cf5b16a778af8380036ce59e7b0492370b249b11e8f07a51afac45037afee9d1" );
    ]
  in
  List.iter
    (fun (input, expected) ->
      Alcotest.(check string) input expected (Sha256.digest_hex input))
    cases

let test_sha256_million_a () =
  let input = String.make 1_000_000 'a' in
  Alcotest.(check string) "million a"
    "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
    (Sha256.digest_hex input)

let prop_sha256_streaming =
  qtest "sha256: streaming chunks match one-shot"
    QCheck.(pair (string_of_size QCheck.Gen.(int_bound 500)) (int_bound 64))
    (fun (s, chunk) ->
      let chunk = max 1 chunk in
      let ctx = Sha256.init () in
      let len = String.length s in
      let pos = ref 0 in
      while !pos < len do
        let take = min chunk (len - !pos) in
        Sha256.update ctx (String.sub s !pos take);
        pos := !pos + take
      done;
      String.equal (Sha256.finalize ctx) (Sha256.digest s))

let test_sha256_block_boundaries () =
  (* Lengths straddling block/padding boundaries exercise the padding
     arithmetic. *)
  List.iter
    (fun n ->
      let s = String.make n 'x' in
      let ctx = Sha256.init () in
      Sha256.update ctx s;
      Alcotest.(check string)
        (Printf.sprintf "len %d" n)
        (Sha256.digest_hex s)
        (Sha256.hex (Sha256.finalize ctx)))
    [ 54; 55; 56; 57; 63; 64; 65; 119; 120; 127; 128; 129 ]

(* ------------------------------------------------------------------ *)
(* HMAC-SHA256 (RFC 4231 vectors)                                     *)
(* ------------------------------------------------------------------ *)

let hexval c =
  match c with
  | '0' .. '9' -> Char.code c - Char.code '0'
  | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
  | _ -> invalid_arg "hexval"

let of_hex s =
  String.init (String.length s / 2) (fun i ->
      Char.chr ((hexval s.[2 * i] lsl 4) lor hexval s.[(2 * i) + 1]))

let test_hmac_rfc4231 () =
  let cases =
    [
      ( of_hex "0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b",
        "Hi There",
        "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7" );
      ( "Jefe",
        "what do ya want for nothing?",
        "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843" );
      ( of_hex (String.concat "" (List.init 20 (fun _ -> "aa"))),
        of_hex (String.concat "" (List.init 50 (fun _ -> "dd"))),
        "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe" );
      (* Key longer than one block (131 bytes of 0xaa). *)
      ( of_hex (String.concat "" (List.init 131 (fun _ -> "aa"))),
        "Test Using Larger Than Block-Size Key - Hash Key First",
        "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54" );
    ]
  in
  List.iter
    (fun (key, msg, expected) ->
      Alcotest.(check string) "tag" expected
        (Sha256.hex (Hmac.hmac_sha256 ~key msg)))
    cases

let test_hmac_verify () =
  let key = "secret" and msg = "payload" in
  let tag = Hmac.hmac_sha256 ~key msg in
  Alcotest.(check bool) "accepts" true (Hmac.verify ~key msg ~tag);
  Alcotest.(check bool) "rejects bad tag" false
    (Hmac.verify ~key msg ~tag:(String.map (fun c -> Char.chr (Char.code c lxor 1)) tag));
  Alcotest.(check bool) "rejects bad msg" false (Hmac.verify ~key "other" ~tag);
  Alcotest.(check bool) "rejects truncated" false
    (Hmac.verify ~key msg ~tag:(String.sub tag 0 16))

(* ------------------------------------------------------------------ *)
(* RSA                                                                *)
(* ------------------------------------------------------------------ *)

let test_rsa_sign_verify () =
  let g = Prng.create ~seed:41 in
  let pub, priv = Rsa.generate g ~bits:256 in
  let msg = "route request 42" in
  let signature = Rsa.sign priv msg in
  Alcotest.(check int) "sig size" (Rsa.modulus_bytes pub) (String.length signature);
  Alcotest.(check bool) "accepts" true (Rsa.verify pub ~msg ~signature);
  Alcotest.(check bool) "rejects other msg" false
    (Rsa.verify pub ~msg:"route request 43" ~signature)

let test_rsa_wrong_key () =
  let g = Prng.create ~seed:43 in
  let pub1, priv1 = Rsa.generate g ~bits:256 in
  let pub2, _ = Rsa.generate g ~bits:256 in
  let msg = "hello" in
  let signature = Rsa.sign priv1 msg in
  Alcotest.(check bool) "own key accepts" true (Rsa.verify pub1 ~msg ~signature);
  Alcotest.(check bool) "other key rejects" false (Rsa.verify pub2 ~msg ~signature)

let test_rsa_tampered_signature () =
  let g = Prng.create ~seed:47 in
  let pub, priv = Rsa.generate g ~bits:256 in
  let msg = "msg" in
  let signature = Bytes.of_string (Rsa.sign priv msg) in
  Bytes.set signature 0 (Char.chr (Char.code (Bytes.get signature 0) lxor 0x80));
  Alcotest.(check bool) "rejects" false
    (Rsa.verify pub ~msg ~signature:(Bytes.unsafe_to_string signature));
  Alcotest.(check bool) "rejects wrong length" false
    (Rsa.verify pub ~msg ~signature:"short")

let test_rsa_pk_serialization () =
  let g = Prng.create ~seed:53 in
  let pub, priv = Rsa.generate g ~bits:256 in
  let bytes = Rsa.public_key_to_bytes pub in
  (match Rsa.public_key_of_bytes bytes with
  | None -> Alcotest.fail "roundtrip failed"
  | Some pub' ->
      let msg = "serialized" in
      let signature = Rsa.sign priv msg in
      Alcotest.(check bool) "decoded key verifies" true
        (Rsa.verify pub' ~msg ~signature));
  Alcotest.(check bool) "garbage rejected" true
    (Rsa.public_key_of_bytes "\x00" = None);
  Alcotest.(check bool) "truncated rejected" true
    (Rsa.public_key_of_bytes (String.sub bytes 0 (String.length bytes - 1)) = None)

let test_rsa_crt_matches_direct () =
  (* The CRT signing path must produce byte-identical signatures to the
     direct exponentiation. *)
  let g = Prng.create ~seed:101 in
  let _, priv = Rsa.generate g ~bits:384 in
  for i = 1 to 10 do
    let msg = Printf.sprintf "message %d" i in
    Alcotest.(check string) msg (Rsa.sign_no_crt priv msg) (Rsa.sign priv msg)
  done

let test_rsa_determinism () =
  (* Same PRNG seed must give the same key pair: experiments rely on it. *)
  let gen seed =
    let g = Prng.create ~seed in
    let pub, _ = Rsa.generate g ~bits:128 in
    Rsa.public_key_to_bytes pub
  in
  Alcotest.(check string) "reproducible" (gen 99) (gen 99)

(* ------------------------------------------------------------------ *)
(* Mock signatures and the suite interface                            *)
(* ------------------------------------------------------------------ *)

let test_mock_sig () =
  let reg = Mock_sig.create_registry () in
  let g = Prng.create ~seed:59 in
  let pk, sk = Mock_sig.generate reg g in
  let msg = "areq" in
  let signature = Mock_sig.sign sk msg in
  Alcotest.(check bool) "accepts" true
    (Mock_sig.verify reg ~pk_bytes:pk ~msg ~signature);
  Alcotest.(check bool) "rejects other msg" false
    (Mock_sig.verify reg ~pk_bytes:pk ~msg:"arep" ~signature);
  Alcotest.(check bool) "unknown pk rejects" false
    (Mock_sig.verify reg ~pk_bytes:(String.make 32 'z') ~msg ~signature)

let test_mock_registries_isolated () =
  let reg1 = Mock_sig.create_registry () and reg2 = Mock_sig.create_registry () in
  let g = Prng.create ~seed:61 in
  let pk, sk = Mock_sig.generate reg1 g in
  let signature = Mock_sig.sign sk "m" in
  Alcotest.(check bool) "own registry" true
    (Mock_sig.verify reg1 ~pk_bytes:pk ~msg:"m" ~signature);
  Alcotest.(check bool) "foreign registry" false
    (Mock_sig.verify reg2 ~pk_bytes:pk ~msg:"m" ~signature)

let suite_roundtrip suite =
  let kp = suite.Suite.generate () in
  let msg = "suite message" in
  let signature = kp.Suite.sign msg in
  Alcotest.(check bool) "accepts" true
    (suite.Suite.verify ~pk_bytes:kp.Suite.pk_bytes ~msg ~signature);
  Alcotest.(check bool) "rejects" false
    (suite.Suite.verify ~pk_bytes:kp.Suite.pk_bytes ~msg:"other" ~signature);
  Alcotest.(check int) "sig size advertised" suite.Suite.signature_size
    (String.length signature)

let test_suite_rsa () = suite_roundtrip (Suite.rsa ~bits:256 (Prng.create ~seed:67))
let test_suite_mock () = suite_roundtrip (Suite.mock (Prng.create ~seed:71))

let test_suite_counters () =
  let suite = Suite.mock (Prng.create ~seed:73) in
  let kp = suite.Suite.generate () in
  let s = kp.Suite.sign "a" in
  ignore (suite.Suite.verify ~pk_bytes:kp.Suite.pk_bytes ~msg:"a" ~signature:s);
  ignore (suite.Suite.verify ~pk_bytes:kp.Suite.pk_bytes ~msg:"b" ~signature:s);
  Alcotest.(check int) "signs" 1 suite.Suite.sign_count;
  Alcotest.(check int) "verifies" 2 suite.Suite.verify_count;
  Suite.reset_counters suite;
  Alcotest.(check int) "reset signs" 0 suite.Suite.sign_count;
  Alcotest.(check int) "reset verifies" 0 suite.Suite.verify_count

let suites =
  [
    ( "crypto.prng",
      [
        Alcotest.test_case "determinism" `Quick test_prng_determinism;
        Alcotest.test_case "seed sensitivity" `Quick test_prng_seed_sensitivity;
        Alcotest.test_case "int bounds" `Quick test_prng_int_bounds;
        Alcotest.test_case "float bounds" `Quick test_prng_float_bounds;
        Alcotest.test_case "copy replays" `Quick test_prng_copy_replays;
        Alcotest.test_case "split independent" `Quick test_prng_split_independent;
        Alcotest.test_case "shuffle permutes" `Quick test_prng_shuffle_permutes;
        Alcotest.test_case "bytes length" `Quick test_prng_bytes_length;
        Alcotest.test_case "exponential mean" `Quick test_prng_exponential_mean;
      ] );
    ( "crypto.bignum",
      [
        Alcotest.test_case "small roundtrip" `Quick test_bignum_small_roundtrip;
        Alcotest.test_case "decimal known" `Quick test_bignum_decimal_known;
        Alcotest.test_case "decimal large" `Quick test_bignum_decimal_large;
        Alcotest.test_case "of_string invalid" `Quick test_bignum_of_string_invalid;
        Alcotest.test_case "hex" `Quick test_bignum_hex;
        Alcotest.test_case "bytes be" `Quick test_bignum_bytes_be;
        prop_add_commutes;
        prop_add_sub_inverse;
        prop_mul_commutes;
        prop_mul_distributes;
        prop_karatsuba_matches_school;
        prop_divmod_invariant;
        prop_divmod_matches_int;
        prop_mod_nonneg;
        prop_shift_left_is_mul_pow2;
        prop_shift_right_inverse;
        prop_numbits;
        prop_string_roundtrip;
        prop_egcd;
        prop_mod_inverse;
        prop_mod_pow_matches_naive;
        prop_mod_pow_montgomery_matches_generic;
        Alcotest.test_case "mod_pow even modulus" `Quick test_mod_pow_even_modulus;
        Alcotest.test_case "fermat" `Quick test_mod_pow_fermat;
        Alcotest.test_case "primality known" `Quick test_primality_known;
        Alcotest.test_case "generate prime" `Quick test_generate_prime;
        Alcotest.test_case "random below" `Quick test_random_below;
      ] );
    ( "crypto.sha256",
      [
        Alcotest.test_case "fips vectors" `Quick test_sha256_vectors;
        Alcotest.test_case "million a" `Slow test_sha256_million_a;
        prop_sha256_streaming;
        Alcotest.test_case "block boundaries" `Quick test_sha256_block_boundaries;
      ] );
    ( "crypto.hmac",
      [
        Alcotest.test_case "rfc4231 vectors" `Quick test_hmac_rfc4231;
        Alcotest.test_case "verify" `Quick test_hmac_verify;
      ] );
    ( "crypto.rsa",
      [
        Alcotest.test_case "sign/verify" `Quick test_rsa_sign_verify;
        Alcotest.test_case "wrong key" `Quick test_rsa_wrong_key;
        Alcotest.test_case "tampered signature" `Quick test_rsa_tampered_signature;
        Alcotest.test_case "pk serialization" `Quick test_rsa_pk_serialization;
        Alcotest.test_case "crt matches direct" `Quick test_rsa_crt_matches_direct;
        Alcotest.test_case "determinism" `Quick test_rsa_determinism;
      ] );
    ( "crypto.suite",
      [
        Alcotest.test_case "mock sig" `Quick test_mock_sig;
        Alcotest.test_case "mock registries isolated" `Quick test_mock_registries_isolated;
        Alcotest.test_case "rsa suite" `Quick test_suite_rsa;
        Alcotest.test_case "mock suite" `Quick test_suite_mock;
        Alcotest.test_case "op counters" `Quick test_suite_counters;
      ] );
  ]
