module Engine = Manet_sim.Engine
module Net = Manet_sim.Net
module Hist = Manet_sim.Hist
module Suite = Manet_crypto.Suite

(* Name-keyed registries use a monomorphic string hash: the generic
   [Hashtbl] would hash and compare through the polymorphic primitives
   on every recorded op. *)
module Stbl = Hashtbl.Make (struct
  type t = string

  let equal = String.equal
  let hash = String.hash
end)

let schema = "manetsim-perf"
let schema_version = 1

type kind_ops = {
  mutable k_signs : int;
  mutable k_verifies : int;
  mutable k_hash_blocks : int;
}

type gc_phase = {
  mutable ph_events : int;
  mutable ph_minor_words : float;
  mutable ph_major_words : float;
  mutable ph_promoted_words : float;
  mutable ph_minor_collections : int;
  mutable ph_major_collections : int;
}

(* The kind/node a crypto op is attributed to while a message is being
   dispatched.  Outside any dispatch (key generation, originating a new
   message from a timer) ops land under [no_kind] / node -1. *)
let no_kind = "none"

type t = {
  counters : int ref Stbl.t;
  by_kind : kind_ops Stbl.t;
  mutable node_signs : int array;
  mutable node_verifies : int array;
  mutable max_node : int;
  mutable cur_kind : string;
  mutable cur_node : int;
  phases : gc_phase Stbl.t;
}

let create () =
  {
    counters = Stbl.create 16;
    by_kind = Stbl.create 16;
    node_signs = Array.make 16 0;
    node_verifies = Array.make 16 0;
    max_node = -1;
    cur_kind = no_kind;
    cur_node = -1;
    phases = Stbl.create 4;
  }

(* --- generic counters --------------------------------------------------- *)

let incr ?(n = 1) t name =
  match Stbl.find t.counters name with
  | r -> r := !r + n
  | exception Not_found ->
      (* manethot: allow hot-alloc — one ref per distinct counter name
         over the whole run, not per recorded op. *)
      Stbl.add t.counters name (ref n)

let counters t =
  Stbl.fold (fun name r acc -> (name, !r) :: acc) t.counters []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

(* --- crypto attribution ------------------------------------------------- *)

let ensure_node t n =
  let len = Array.length t.node_signs in
  if n >= len then begin
    let nlen = if n + 1 > 2 * len then n + 1 else 2 * len in
    (* manethot: allow hot-alloc — per-node counter arrays double
       O(log n) times over a run, amortized to nothing per op. *)
    let signs = Array.make nlen 0 and verifies = Array.make nlen 0 in
    Array.blit t.node_signs 0 signs 0 len;
    Array.blit t.node_verifies 0 verifies 0 len;
    t.node_signs <- signs;
    t.node_verifies <- verifies
  end;
  if n > t.max_node then t.max_node <- n

let kind_cell t kind =
  match Stbl.find t.by_kind kind with
  | c -> c
  | exception Not_found ->
      (* manethot: allow hot-alloc — one cell per distinct message kind
         over the whole run, not per crypto op. *)
      let c = { k_signs = 0; k_verifies = 0; k_hash_blocks = 0 } in
      Stbl.add t.by_kind kind c;
      c

let crypto_op t ~op ~bytes =
  let c = kind_cell t t.cur_kind in
  c.k_hash_blocks <- c.k_hash_blocks + Manet_crypto.Sha256.blocks_of_len bytes;
  match op with
  | Suite.Sign ->
      c.k_signs <- c.k_signs + 1;
      if t.cur_node >= 0 then begin
        ensure_node t t.cur_node;
        t.node_signs.(t.cur_node) <- t.node_signs.(t.cur_node) + 1
      end
  | Suite.Verify ->
      c.k_verifies <- c.k_verifies + 1;
      if t.cur_node >= 0 then begin
        ensure_node t t.cur_node;
        t.node_verifies.(t.cur_node) <- t.node_verifies.(t.cur_node) + 1
      end
  | Suite.Hash -> ()

let with_attribution t ~kind ~node f =
  let saved_kind = t.cur_kind and saved_node = t.cur_node in
  t.cur_kind <- kind;
  t.cur_node <- node;
  Fun.protect
    ~finally:(fun () ->
      t.cur_kind <- saved_kind;
      t.cur_node <- saved_node)
    f

let subscribe t suite =
  Suite.set_on_op suite (Some (fun ~op ~bytes -> crypto_op t ~op ~bytes))

(* --- GC phase accounting ------------------------------------------------ *)

let phase_cell t name =
  match Stbl.find_opt t.phases name with
  | Some p -> p
  | None ->
      let p =
        {
          ph_events = 0;
          ph_minor_words = 0.0;
          ph_major_words = 0.0;
          ph_promoted_words = 0.0;
          ph_minor_collections = 0;
          ph_major_collections = 0;
        }
      in
      Stbl.add t.phases name p;
      p

let phase t ~engine name f =
  let s0 = Gc.quick_stat () in
  let e0 = Engine.events_processed engine in
  Fun.protect
    ~finally:(fun () ->
      let s1 = Gc.quick_stat () in
      let p = phase_cell t name in
      p.ph_events <- p.ph_events + (Engine.events_processed engine - e0);
      p.ph_minor_words <-
        p.ph_minor_words +. (s1.Gc.minor_words -. s0.Gc.minor_words);
      p.ph_major_words <-
        p.ph_major_words +. (s1.Gc.major_words -. s0.Gc.major_words);
      p.ph_promoted_words <-
        p.ph_promoted_words +. (s1.Gc.promoted_words -. s0.Gc.promoted_words);
      p.ph_minor_collections <-
        p.ph_minor_collections + (s1.Gc.minor_collections - s0.Gc.minor_collections);
      p.ph_major_collections <-
        p.ph_major_collections + (s1.Gc.major_collections - s0.Gc.major_collections))
    f

let phases t =
  Stbl.fold (fun name p acc -> (name, p) :: acc) t.phases []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

(* --- export ------------------------------------------------------------- *)

let hist_json h =
  Json.Obj
    [
      ("count", Json.Int (Hist.count h));
      ("sum", Json.Int (Hist.sum h));
      ( "min",
        match Hist.min_value h with Some v -> Json.Int v | None -> Json.Null );
      ( "max",
        match Hist.max_value h with Some v -> Json.Int v | None -> Json.Null );
      ( "mean",
        match Hist.mean h with Some m -> Json.Float m | None -> Json.Null );
      ( "buckets",
        Json.List
          (List.map
             (fun (lo, hi, c) ->
               Json.List [ Json.Int lo; Json.Int hi; Json.Int c ])
             (Hist.nonzero_buckets h)) );
    ]

let hist_of_array a n =
  let h = Hist.create () in
  for i = 0 to n - 1 do
    Hist.add h a.(i)
  done;
  h

let kind_totals t =
  Stbl.fold
    (fun kind c acc -> (kind, (c.k_signs, c.k_verifies, c.k_hash_blocks)) :: acc)
    t.by_kind []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let by_kind_json t =
  let kinds =
    Stbl.fold (fun kind c acc -> (kind, c) :: acc) t.by_kind []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  Json.Obj
    (List.map
       (fun (kind, c) ->
         ( kind,
           Json.Obj
             [
               ("signs", Json.Int c.k_signs);
               ("verifies", Json.Int c.k_verifies);
               ("hash_blocks", Json.Int c.k_hash_blocks);
             ] ))
       kinds)

(* Every value below is a pure function of the deterministic sim domain
   (event sequence, seeded PRNG) — no wall clock, no GC.  Allocation
   counters looked deterministic on paper (OCaml counts words
   allocated, not collections performed) but empirically drift by a few
   words between same-process replays on the multicore runtime — the
   runtime's own internal allocations leak into [Gc.minor_words] — so
   every [Gc.quick_stat]-derived quantity is quarantined in
   {!wall_json}; only the per-phase *event* counts stay here. *)
(* [extra_det] lets callers append further deterministic members (the
   flood-provenance summary) without coupling this registry to the
   modules that compute them; every appended value must obey the same
   purity contract as the section it joins. *)
let deterministic_json ?(extra_det = []) t ~engine ~net ~suite =
  let n = t.max_node + 1 in
  let ints a k = Json.List (List.init k (fun i -> Json.Int a.(i))) in
  Json.Obj
    ([
      ( "events",
        Json.Obj
          [
            ("total", Json.Int (Engine.events_processed engine));
            ("max_pending", Json.Int (Engine.max_pending engine));
            ( "labels",
              Json.Obj
                (List.map
                   (fun (l, c) -> (l, Json.Int c))
                   (Engine.label_counts engine)) );
          ] );
      ( "occupancy",
        Json.Obj
          [
            ("stride", Json.Int (Engine.occupancy_stride engine));
            ( "samples",
              Json.List
                (List.map
                   (fun (i, p) -> Json.List [ Json.Int i; Json.Int p ])
                   (Engine.occupancy engine)) );
          ] );
      ( "net",
        Json.Obj
          [
            ("neighbour_scan", hist_json (Net.scan_hist net));
            ("fanout", hist_json (Net.fanout_hist net));
            ("retries", Json.Int (Net.retries net));
            ("transmissions", Json.Int (Net.transmissions net));
            ("deliveries", Json.Int (Net.deliveries net));
            ("unicast_failures", Json.Int (Net.unicast_failures net));
            ("bytes_sent", Json.Int (Net.bytes_sent net));
          ] );
      ( "crypto",
        Json.Obj
          [
            ("scheme", Json.String suite.Suite.scheme_name);
            ("signs", Json.Int suite.Suite.sign_count);
            ("verifies", Json.Int suite.Suite.verify_count);
            ("sha256_blocks", Json.Int suite.Suite.sha256_blocks);
            ("by_kind", by_kind_json t);
            ("per_node_signs", ints t.node_signs n);
            ("per_node_verifies", ints t.node_verifies n);
            ("node_signs_hist", hist_json (hist_of_array t.node_signs n));
            ("node_verifies_hist", hist_json (hist_of_array t.node_verifies n));
          ] );
      ( "counters",
        Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) (counters t)) );
      ( "phases",
        Json.Obj
          (List.map
             (fun (name, p) -> (name, Json.Obj [ ("events", Json.Int p.ph_events) ]))
             (phases t)) );
    ]
    @ extra_det)

let wall_json t ~engine =
  let g = Gc.quick_stat () in
  Json.Obj
    [
      ( "profile",
        Json.List
          (List.map
             (fun (label, e) ->
               Json.Obj
                 [
                   ("label", Json.String label);
                   ("events", Json.Int e.Engine.p_count);
                   ("wall_s", Json.Float e.Engine.p_wall_s);
                 ])
             (Engine.profile engine)) );
      ("wall_in_run_s", Json.Float (Engine.wall_in_run engine));
      ("events_per_sec", Json.Float (Engine.events_per_sec engine));
      ( "gc",
        Json.Obj
          [
            ("heap_words", Json.Int g.Gc.heap_words);
            ("top_heap_words", Json.Int g.Gc.top_heap_words);
            ("minor_collections", Json.Int g.Gc.minor_collections);
            ("major_collections", Json.Int g.Gc.major_collections);
            ( "phases",
              Json.Obj
                (List.map
                   (fun (name, p) ->
                     ( name,
                       Json.Obj
                         [
                           ("minor_words", Json.Float p.ph_minor_words);
                           ("major_words", Json.Float p.ph_major_words);
                           ("promoted_words", Json.Float p.ph_promoted_words);
                           ( "minor_collections",
                             Json.Int p.ph_minor_collections );
                           ( "major_collections",
                             Json.Int p.ph_major_collections );
                         ] ))
                   (phases t)) );
          ] );
    ]

let header ?(meta = []) () =
  Json.Obj
    ([ ("schema", Json.String schema); ("version", Json.Int schema_version) ]
    @ meta)

let to_json ?(meta = []) ?extra_det t ~engine ~net ~suite =
  Json.Obj
    ([ ("schema", Json.String schema); ("version", Json.Int schema_version) ]
    @ meta
    @ [
        ("deterministic", deterministic_json ?extra_det t ~engine ~net ~suite);
        ("wall_clock", wall_json t ~engine);
      ])

(* The sweep-mergeable form: one header line then one record holding
   only the deterministic section, so the merged stream stays
   byte-identical across domain counts and CI can cmp it directly. *)
let det_jsonl ?meta ?extra_det t ~engine ~net ~suite =
  let buf = Buffer.create 1024 in
  Json.to_buffer buf (header ?meta ());
  Buffer.add_char buf '\n';
  Json.to_buffer buf
    (Json.Obj
       [
         ("type", Json.String "det");
         ("deterministic", deterministic_json ?extra_det t ~engine ~net ~suite);
       ]);
  Buffer.add_char buf '\n';
  Buffer.contents buf
