(* manetdom driver.

   Usage:
     main.exe [--baseline FILE] [--write-baseline] [--json FILE] [ROOT]...

   ROOTs (default: lib) are analyzed.  Exit 1 on any finding not pinned
   in the baseline, or on stale baseline entries — a pinned key whose
   finding no longer fires fails the build too, so fixed findings must
   leave the baseline in the same commit.  The option parsing, file
   walking and baseline semantics live in Analyzer_common.Driver. *)

let () =
  Analyzer_common.Driver.run ~tool:"manetdom"
    ~analyze:(fun ~uses:_ files -> Manetdom.Dom.analyze files)
    ()
