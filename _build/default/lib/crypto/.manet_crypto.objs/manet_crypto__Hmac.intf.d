lib/crypto/hmac.mli:
