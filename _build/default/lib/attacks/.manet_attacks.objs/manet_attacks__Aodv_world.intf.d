lib/attacks/aodv_world.mli: Aodv_adversary Manet_aodv Manet_ipv6 Manet_sim
