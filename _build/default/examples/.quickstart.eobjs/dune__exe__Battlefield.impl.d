examples/battlefield.ml: List Manetsec Printf
