lib/secure/secure_routing.ml: Array Credit Hashtbl List Manet_crypto Manet_dsr Manet_ipv6 Manet_proto Manet_sim Option Queue String
