(* Reservoir size for percentile estimation: exact below the cap,
   uniform-sample approximation above it. *)
let reservoir_cap = 1024

(* FNV-1a, truncated to 30 bits: a stable per-name seed for the
   reservoir LCG.  Hashtbl.hash would work too but its value is not
   specified across OCaml versions, and replayability requires the
   jitter stream to be identical everywhere. *)
let fnv1a s =
  let h = ref 0x811C9DC5 in
  String.iter
    (fun c -> h := (!h lxor Char.code c) * 0x01000193 land 0x3FFFFFFF)
    s;
  !h

type acc = {
  mutable count : int;
  mutable mean : float;
  mutable m2 : float;
  mutable min : float;
  mutable max : float;
  reservoir : float array;
  mutable stored : int;
  (* Deterministic LCG for reservoir replacement (keeps runs replayable
     without threading a PRNG through every observe call). *)
  mutable lcg : int;
}

type summary = {
  count : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
}

type t = {
  counters : (string, int ref) Hashtbl.t;
  accs : (string, acc) Hashtbl.t;
}

let create () = { counters = Hashtbl.create 32; accs = Hashtbl.create 32 }

let incr ?(by = 1) t name =
  match Hashtbl.find_opt t.counters name with
  | Some r -> r := !r + by
  | None -> Hashtbl.add t.counters name (ref by)

let get t name =
  match Hashtbl.find_opt t.counters name with Some r -> !r | None -> 0

let counters t =
  Hashtbl.fold (fun k r acc -> (k, !r) :: acc) t.counters []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let observe t name x =
  let acc =
    match Hashtbl.find_opt t.accs name with
    | Some a -> a
    | None ->
        let a =
          {
            count = 0;
            mean = 0.0;
            m2 = 0.0;
            min = infinity;
            max = neg_infinity;
            reservoir = Array.make reservoir_cap 0.0;
            stored = 0;
            lcg = 0x2545F491 + (fnv1a name land 0xFFFF);
          }
        in
        Hashtbl.add t.accs name a;
        a
  in
  acc.count <- acc.count + 1;
  let delta = x -. acc.mean in
  acc.mean <- acc.mean +. (delta /. float_of_int acc.count);
  acc.m2 <- acc.m2 +. (delta *. (x -. acc.mean));
  if x < acc.min then acc.min <- x;
  if x > acc.max then acc.max <- x;
  (* Algorithm R reservoir update. *)
  if acc.stored < reservoir_cap then begin
    acc.reservoir.(acc.stored) <- x;
    acc.stored <- acc.stored + 1
  end
  else begin
    acc.lcg <- ((acc.lcg * 1103515245) + 12345) land max_int;
    let j = acc.lcg mod acc.count in
    if j < reservoir_cap then acc.reservoir.(j) <- x
  end

let summary_of_acc (a : acc) =
  {
    count = a.count;
    mean = a.mean;
    stddev = (if a.count < 2 then 0.0 else sqrt (a.m2 /. float_of_int (a.count - 1)));
    min = a.min;
    max = a.max;
  }

let summary t name =
  match Hashtbl.find_opt t.accs name with
  | Some a when a.count > 0 -> Some (summary_of_acc a)
  | _ -> None

let summaries t =
  Hashtbl.fold (fun k a acc -> (k, summary_of_acc a) :: acc) t.accs []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let percentile t name q =
  if q < 0.0 || q > 1.0 then invalid_arg "Stats.percentile: q outside [0,1]";
  match Hashtbl.find_opt t.accs name with
  | Some a when a.stored > 0 ->
      let sorted = Array.sub a.reservoir 0 a.stored in
      Array.sort Float.compare sorted;
      let idx =
        int_of_float (Float.round (q *. float_of_int (a.stored - 1)))
      in
      Some sorted.(idx)
  | _ -> None

type snapshot = (string * int) list

let snapshot t : snapshot = counters t

let snapshot_get (s : snapshot) name =
  match List.assoc_opt name s with Some v -> v | None -> 0

let delta ~(before : snapshot) ~(after : snapshot) : snapshot =
  (* Counters only grow, so every name in [before] is in [after]. *)
  List.filter_map
    (fun (k, v) ->
      let d = v - snapshot_get before k in
      if d <> 0 then Some (k, d) else None)
    after

let clear t =
  Hashtbl.reset t.counters;
  Hashtbl.reset t.accs
