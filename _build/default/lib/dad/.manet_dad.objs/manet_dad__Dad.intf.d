lib/dad/dad.mli: Manet_ipv6 Manet_proto
