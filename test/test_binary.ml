(* Property and unit tests for the binary wire codec.

   The generator is split per constructor so every Messages.t variant
   gets its own named roundtrip property (the proto-schema lint rule
   checks that each constructor is mentioned here or in test_proto.ml),
   plus whole-space properties over the mixture. *)

module Prng = Manet_crypto.Prng
module Address = Manet_ipv6.Address
module Messages = Manet_proto.Messages
module Binary = Manet_proto.Binary

let qtest ?(count = 500) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name gen prop)

(* --- per-variant random generators ------------------------------------- *)

let addr g = Address.of_bytes (Prng.bytes g 16)
let route g = List.init (Prng.int g 5) (fun _ -> addr g)
let str g = Prng.bytes g (Prng.int g 40)

let srr g =
  List.init (Prng.int g 4) (fun _ ->
      { Messages.ip = addr g; sig_ = str g; pk = str g; rn = Prng.bits64 g })

let opt g f = if Prng.bool g then Some (f g) else None
let i32 g = Prng.int g 1000000
let fl g = Prng.float g 1000.0

(* One named generator per constructor; the list is the authoritative
   per-variant coverage table. *)
let variant_gens : (string * (Prng.t -> Messages.t)) list =
  [
    ( "Areq",
      fun g ->
        Messages.Areq
          { sip = addr g; seq = i32 g; dn = opt g str; ch = Prng.bits64 g;
            rr = route g } );
    ( "Arep",
      fun g ->
        Messages.Arep
          { sip = addr g; rr = route g; remaining = route g; sig_ = str g;
            pk = str g; rn = Prng.bits64 g } );
    ( "Drep",
      fun g ->
        Messages.Drep
          { sip = addr g; dn = str g; rr = route g; remaining = route g;
            sig_ = str g } );
    ( "Rreq",
      fun g ->
        Messages.Rreq
          { sip = addr g; dip = addr g; seq = i32 g; srr = srr g; sig_ = str g;
            spk = str g; srn = Prng.bits64 g } );
    ( "Rrep",
      fun g ->
        Messages.Rrep
          { sip = addr g; dip = addr g; rr = route g; remaining = route g;
            sig_ = str g; dpk = str g; drn = Prng.bits64 g } );
    ( "Crep",
      fun g ->
        Messages.Crep
          { requester = addr g; cacher = addr g; dip = addr g;
            requester_seq = i32 g; cacher_seq = i32 g; rr_to_cacher = route g;
            rr_to_dest = route g; remaining = route g; sig_cacher = str g;
            cacher_pk = str g; cacher_rn = Prng.bits64 g; sig_dest = str g;
            dest_pk = str g; dest_rn = Prng.bits64 g } );
    ( "Rerr",
      fun g ->
        Messages.Rerr
          { reporter = addr g; broken_next = addr g; dst = addr g;
            remaining = route g; sig_ = str g; pk = str g; rn = Prng.bits64 g }
    );
    ( "Data",
      fun g ->
        Messages.Data
          { src = addr g; dst = addr g; seq = i32 g; route = route g;
            remaining = route g; payload_size = i32 g; sent_at = fl g } );
    ( "Ack",
      fun g ->
        Messages.Ack
          { src = addr g; dst = addr g; data_seq = i32 g; route = route g;
            remaining = route g; sent_at = fl g } );
    ( "Probe",
      fun g ->
        Messages.Probe
          { origin = addr g; target = addr g; seq = i32 g; route = route g;
            remaining = route g } );
    ( "Probe_reply",
      fun g ->
        Messages.Probe_reply
          { responder = addr g; origin = addr g; seq = i32 g;
            remaining = route g; sig_ = str g; pk = str g; rn = Prng.bits64 g }
    );
    ( "Name_query",
      fun g ->
        Messages.Name_query
          { requester = addr g; name = str g; ch = Prng.bits64 g;
            route = route g; remaining = route g } );
    ( "Name_reply",
      fun g ->
        Messages.Name_reply
          { requester = addr g; name = str g; result = opt g addr;
            ch = Prng.bits64 g; remaining = route g; sig_ = str g } );
    ( "Ip_change_request",
      fun g ->
        Messages.Ip_change_request
          { old_ip = addr g; new_ip = addr g; route = route g;
            remaining = route g } );
    ( "Ip_change_challenge",
      fun g ->
        Messages.Ip_change_challenge
          { old_ip = addr g; new_ip = addr g; ch = Prng.bits64 g;
            remaining = route g } );
    ( "Ip_change_proof",
      fun g ->
        Messages.Ip_change_proof
          { old_ip = addr g; new_ip = addr g; old_rn = Prng.bits64 g;
            new_rn = Prng.bits64 g; pk = str g; sig_ = str g; route = route g;
            remaining = route g } );
    ( "Ip_change_ack",
      fun g ->
        Messages.Ip_change_ack
          { old_ip = addr g; new_ip = addr g; accepted = Prng.bool g;
            remaining = route g } );
  ]

let gen_of mk =
  QCheck.Gen.(
    let* seed = int in
    return (mk (Prng.create ~seed)))

let arb_of mk =
  QCheck.make ~print:(fun m -> Format.asprintf "%a" Messages.pp m) (gen_of mk)

(* Mixture over all variants, for the whole-space properties below. *)
let gen_message =
  QCheck.Gen.(
    let* seed = int in
    let g = Prng.create ~seed in
    let _, mk = List.nth variant_gens (Prng.int g (List.length variant_gens)) in
    return (mk g))

let arb_message =
  QCheck.make ~print:(fun m -> Format.asprintf "%a" Messages.pp m) gen_message

(* --- per-variant roundtrips -------------------------------------------- *)

let roundtrips m =
  match Binary.decode (Binary.encode m) with
  | Ok m' -> Binary.equal_message m m'
  | Error e -> QCheck.Test.fail_reportf "decode failed: %s" e

let per_variant_roundtrips =
  List.map
    (fun (name, mk) ->
      qtest ~count:200
        (Printf.sprintf "binary: %s roundtrips" name)
        (arb_of mk) roundtrips)
    variant_gens

let test_wire_tags_distinct () =
  (* Every constructor must claim its own wire tag: generate one value
     per variant and check the leading tag bytes are pairwise distinct. *)
  let g = Prng.create ~seed:1312 in
  let tags =
    List.map (fun (name, mk) -> (name, Char.code (Binary.encode (mk g)).[0]))
      variant_gens
  in
  let distinct =
    List.sort_uniq Int.compare (List.map snd tags) |> List.length
  in
  Alcotest.(check int) "distinct wire tags" (List.length variant_gens) distinct;
  List.iter
    (fun (name, tag) ->
      Alcotest.(check bool)
        (Printf.sprintf "%s tag %d in range" name tag)
        true (tag >= 1 && tag <= 255))
    tags

(* --- whole-space properties -------------------------------------------- *)

let prop_roundtrip =
  qtest "binary: decode (encode m) = m" arb_message roundtrips

let prop_truncation_rejected =
  qtest ~count:200 "binary: every strict prefix is rejected"
    QCheck.(pair arb_message (float_bound_exclusive 1.0))
    (fun (m, frac) ->
      let enc = Binary.encode m in
      let n = int_of_float (frac *. float_of_int (String.length enc)) in
      QCheck.assume (n < String.length enc);
      match Binary.decode (String.sub enc 0 n) with
      | Error _ -> true
      | Ok m' ->
          (* A prefix that still parses must not silently equal the
             original (it can only happen if we truncated zero bytes). *)
          not (Binary.equal_message m m'))

let prop_trailing_garbage_rejected =
  qtest ~count:200 "binary: trailing bytes are rejected" arb_message (fun m ->
      match Binary.decode (Binary.encode m ^ "\x00") with
      | Error _ -> true
      | Ok _ -> false)

let prop_random_bytes_never_crash =
  (* The decoder must be total: arbitrary byte strings either decode to
     some message or return Error, never raise. *)
  qtest ~count:2000 "binary: decoding random bytes never raises"
    QCheck.(string_of_size QCheck.Gen.(int_bound 200))
    (fun s ->
      match Binary.decode s with Ok _ | Error _ -> true)

let prop_bitflip_detected_or_valid =
  (* Flipping one byte of a valid encoding must yield Error or a
     *different* well-formed message (never a silent identical parse). *)
  qtest ~count:300 "binary: single byte flips never alias the original"
    QCheck.(pair arb_message (pair small_nat small_nat))
    (fun (m, (pos0, delta0)) ->
      let enc = Bytes.of_string (Binary.encode m) in
      let pos = pos0 mod Bytes.length enc in
      let delta = 1 + (delta0 mod 255) in
      Bytes.set enc pos
        (Char.chr ((Char.code (Bytes.get enc pos) + delta) land 0xFF));
      match Binary.decode (Bytes.unsafe_to_string enc) with
      | Error _ -> true
      | Ok m' -> not (Binary.equal_message m m'))

let test_unknown_tag_rejected () =
  (match Binary.decode "\xff" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "tag 255 accepted");
  match Binary.decode "" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "empty input accepted"

let test_oversized_route_rejected () =
  (* tag 10 (Probe) with a route count beyond the cap *)
  let buf = Buffer.create 64 in
  Buffer.add_char buf '\x0a';
  Buffer.add_string buf (String.make 32 '\x00');
  (* seq *)
  Buffer.add_string buf "\x00\x00\x00\x01";
  (* route count = 65535 *)
  Buffer.add_string buf "\xff\xff";
  match Binary.decode (Buffer.contents buf) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "oversized route accepted"

let test_known_encoding_stable () =
  (* Pin one concrete encoding so accidental format changes are caught. *)
  let a = Address.of_string_exn "fec0::1" in
  let b = Address.of_string_exn "fec0::2" in
  let m =
    Messages.Ip_change_challenge { old_ip = a; new_ip = b; ch = 0x1122L; remaining = [ a ] }
  in
  let enc = Binary.encode m in
  Alcotest.(check int) "length" (1 + 16 + 16 + 8 + 2 + 16) (String.length enc);
  Alcotest.(check char) "tag" '\x0f' enc.[0];
  Alcotest.(check string) "ch bytes" "\x00\x00\x00\x00\x00\x00\x11\x22"
    (String.sub enc 33 8)

let suites =
  [
    ( "proto.binary",
      per_variant_roundtrips
      @ [
          Alcotest.test_case "wire tags distinct" `Quick test_wire_tags_distinct;
          prop_roundtrip;
          prop_truncation_rejected;
          prop_trailing_garbage_rejected;
          prop_random_bytes_never_crash;
          prop_bitflip_detected_or_valid;
          Alcotest.test_case "unknown tag" `Quick test_unknown_tag_rejected;
          Alcotest.test_case "oversized route" `Quick test_oversized_route_rejected;
          Alcotest.test_case "stable encoding" `Quick test_known_encoding_stable;
        ] );
  ]
