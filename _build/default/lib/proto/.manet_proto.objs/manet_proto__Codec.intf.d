lib/proto/codec.mli: Manet_ipv6
