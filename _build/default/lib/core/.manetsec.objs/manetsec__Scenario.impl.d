lib/core/scenario.ml: Array Hashtbl List Manet_attacks Manet_crypto Manet_dad Manet_dns Manet_dsr Manet_ipv6 Manet_proto Manet_secure Manet_sim Option Printf String
