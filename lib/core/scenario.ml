module Address = Manet_ipv6.Address
module Prng = Manet_crypto.Prng
module Suite = Manet_crypto.Suite
module Engine = Manet_sim.Engine
module Stats = Manet_sim.Stats
module Topology = Manet_sim.Topology
module Mobility = Manet_sim.Mobility
module Net = Manet_sim.Net
module Messages = Manet_proto.Messages
module Ctx = Manet_proto.Node_ctx
module Directory = Manet_proto.Directory
module Identity = Manet_proto.Identity
module Dad = Manet_dad.Dad
module Dns = Manet_dns.Dns
module Dns_client = Manet_dns.Client
module Dsr = Manet_dsr.Dsr
module Secure = Manet_secure.Secure_routing
module Srp = Manet_secure.Srp
module Adversary = Manet_attacks.Adversary
module Faults = Manet_faults.Faults
module Obs = Manet_obs.Obs
module Perf = Manet_obs.Perf
module Timeline = Manet_obs.Timeline
module Flood = Manet_obs.Flood
module Detector = Manet_obs.Detector

type topology_spec =
  | Chain of { spacing : float }
  | Grid of { cols : int; spacing : float }
  | Random of { width : float; height : float }
  | Explicit of { width : float; height : float; positions : (float * float) list }

type suite_spec = Mock_suite | Rsa_suite of int
type protocol = Plain_dsr | Secure | Srp_protocol

type params = {
  n : int;
  seed : int;
  range : float;
  loss : float;
  promiscuous : bool;
  topology : topology_spec;
  mobility : Mobility.model;
  protocol : protocol;
  suite : suite_spec;
  with_dns : bool;
  adversaries : (int * Adversary.behavior) list;
  dsr_config : Dsr.config;
  secure_config : Secure.config;
  dad_config : Dad.config;
}

let default_params =
  {
    n = 20;
    seed = 1;
    range = 250.0;
    loss = 0.0;
    promiscuous = false;
    topology = Random { width = 1000.0; height = 1000.0 };
    mobility = Mobility.Static;
    protocol = Secure;
    suite = Mock_suite;
    with_dns = true;
    adversaries = [];
    dsr_config = Dsr.default_config;
    secure_config = Secure.default_config;
    dad_config = Dad.default_config;
  }

type routing_agent = Dsr_agent of Dsr.t | Secure_agent of Secure.t | Srp_agent of Srp.t

type node = {
  index : int;
  identity : Identity.t;
  ctx : Ctx.t;
  dad : Dad.t;
  dns_client : Dns_client.t;
  routing : routing_agent;
  adversary : Adversary.t option;
}

type t = {
  params : params;
  engine : Engine.t;
  topo : Topology.t;
  net : Messages.t Net.t;
  directory : Directory.t;
  suite : Suite.t;
  nodes : node array;
  dns : Dns.t option;
  mobility : Mobility.t;
  obs : Obs.t;
  detector : Detector.t;
  mutable started : bool;
}

let build_topology params g =
  match params.topology with
  | Chain { spacing } -> Topology.chain ~n:params.n ~spacing
  | Grid { cols; spacing } ->
      let rows = (params.n + cols - 1) / cols in
      let t = Topology.grid ~rows ~cols ~spacing in
      (* grid may overshoot n; rebuild exactly n by truncation *)
      let exact = Topology.create ~n:params.n ~width:(Topology.width t) ~height:(Topology.height t) in
      for i = 0 to params.n - 1 do
        Topology.set_position exact i (Topology.position t i)
      done;
      exact
  | Random { width; height } ->
      Topology.random_connected g ~n:params.n ~width ~height ~range:params.range
  | Explicit { width; height; positions } ->
      if List.length positions <> params.n then
        invalid_arg "Scenario.create: explicit topology must place every node";
      let t = Topology.create ~n:params.n ~width ~height in
      List.iteri (fun i p -> Topology.set_position t i p) positions;
      t

let create params =
  if params.n < 2 then invalid_arg "Scenario.create: need at least 2 nodes";
  List.iter
    (fun (i, _) ->
      if i <= 0 && params.with_dns then
        invalid_arg "Scenario.create: node 0 hosts the DNS and must stay honest";
      if i < 0 || i >= params.n then invalid_arg "Scenario.create: adversary index")
    params.adversaries;
  let engine = Engine.create ~seed:params.seed () in
  let root = Engine.rng engine in
  let topo_rng = Prng.split root in
  let suite_rng = Prng.split root in
  let id_rng = Prng.split root in
  let topo = build_topology params topo_rng in
  let net_config =
    {
      Net.default_config with
      range = params.range;
      loss = params.loss;
      promiscuous = params.promiscuous;
    }
  in
  let net = Net.create ~config:net_config engine topo in
  let directory = Directory.create () in
  let suite =
    match params.suite with
    | Mock_suite -> Suite.mock suite_rng
    | Rsa_suite bits -> Suite.rsa ~bits suite_rng
  in
  let identities =
    Array.init params.n (fun i ->
        if i = 0 && params.with_dns then
          Identity.create ~address:Address.dns_server_1 ~name:"dns" suite id_rng
            ~node_id:0
        else Identity.create ~name:(Printf.sprintf "node%d" i) suite id_rng ~node_id:i)
  in
  Array.iteri
    (fun i id -> Directory.register directory id.Identity.address i)
    identities;
  let dns_pk = Identity.pk_bytes identities.(0) in
  (* The modelled network-wide master secret behind SRP's pairwise
     security associations. *)
  let srp_master = Prng.bytes (Prng.split root) 32 in
  (* One shared telemetry handle for the whole scenario: spans opened on
     one node (e.g. an AREP answer) parent correctly to spans opened on
     another (the originating flood). *)
  let obs = Obs.create engine in
  (* Crypto ops feed the perf registry from day one: the subscription
     only bumps side counters, so it perturbs no event order, PRNG draw
     or export byte. *)
  Perf.subscribe (Obs.perf obs) suite;
  (* The timeline rides the engine's per-event observer: counter-pure
     bucket closes over the counters above, so it is equally
     non-perturbing and its export equally byte-deterministic. *)
  Timeline.attach (Obs.timeline obs) ~net ~suite ~perf:(Obs.perf obs)
    ~audit:(Obs.audit obs);
  Timeline.install (Obs.timeline obs);
  (* The misbehaviour detector rides the audit stream online: every
     event any node emits feeds it at emission time, so verdicts are
     available the moment the run stops (and are deterministic, being a
     pure fold over the deterministic stream). *)
  let detector = Detector.create () in
  Detector.attach detector (Obs.audit obs);
  let ctxs =
    Array.map
      (fun id -> Ctx.create ~obs net directory id (Prng.split root))
      identities
  in
  let dads =
    Array.map (fun ctx -> Dad.create ~config:params.dad_config ~dns_pk ctx) ctxs
  in
  let dns =
    if params.with_dns then begin
      let server = Dns.create ctxs.(0) in
      Dns.attach server dads.(0);
      Some server
    end
    else None
  in
  let clients = Array.map (fun ctx -> Dns_client.create ~dns_pk ctx) ctxs in
  let behaviors = Hashtbl.create 8 in
  List.iter (fun (i, b) -> Hashtbl.replace behaviors i b) params.adversaries;
  let nodes =
    Array.init params.n (fun i ->
        let ctx = ctxs.(i) in
        let routing =
          match params.protocol with
          | Plain_dsr -> Dsr_agent (Dsr.create ~config:params.dsr_config ctx)
          | Secure ->
              let trusted =
                if params.with_dns then [ (Address.dns_server_1, dns_pk) ] else []
              in
              Secure_agent (Secure.create ~config:params.secure_config ~trusted ctx)
          | Srp_protocol -> Srp_agent (Srp.create ~master:srp_master ctx)
        in
        let honest_handle ~src msg =
          match routing with
          | Dsr_agent a -> Dsr.handle a ~src msg
          | Secure_agent a -> Secure.handle a ~src msg
          | Srp_agent a -> Srp.handle a ~src msg
        in
        let adversary =
          match Hashtbl.find_opt behaviors i with
          | None -> None
          | Some behavior ->
              Some
                (Adversary.create ~behavior
                   ~secure:(params.protocol = Secure)
                   ctx ~delegate:honest_handle)
        in
        {
          index = i;
          identity = identities.(i);
          ctx;
          dad = dads.(i);
          dns_client = clients.(i);
          routing;
          adversary;
        })
  in
  (* Per-node reception dispatch.  This closure is the one place that
     knows both the receiving node and the message kind, so it carries
     the perf registry's crypto attribution: every sign/verify/hash the
     handlers perform below is charged to (kind, node). *)
  let perf = Obs.perf obs in
  Array.iter
    (fun node ->
      let i = node.index in
      Net.set_handler net i (fun ~src msg ->
          Perf.with_attribution perf ~kind:(Messages.tag msg) ~node:i
          @@ fun () ->
          match msg with
          | Messages.Areq _ | Messages.Arep _ | Messages.Drep _ ->
              Dad.handle node.dad ~src msg
          | Messages.Name_query _ | Messages.Ip_change_request _
          | Messages.Ip_change_proof _ -> (
              match (i, dns) with
              | 0, Some server -> Dns.handle server ~src msg
              | _ -> Ctx.forward_transit node.ctx ~src msg)
          | Messages.Name_reply _ | Messages.Ip_change_challenge _
          | Messages.Ip_change_ack _ ->
              Dns_client.handle node.dns_client ~src msg
          | _ -> (
              match node.adversary with
              | Some adv -> Adversary.handle adv ~src msg
              | None -> (
                  match node.routing with
                  | Dsr_agent a -> Dsr.handle a ~src msg
                  | Secure_agent a -> Secure.handle a ~src msg
                  | Srp_agent a -> Srp.handle a ~src msg))))
    nodes;
  let mobility = Mobility.create engine topo (Prng.split root) params.mobility in
  {
    params;
    engine;
    topo;
    net;
    directory;
    suite;
    nodes;
    dns;
    mobility;
    obs;
    detector;
    started = false;
  }

let engine t = t.engine
let obs t = t.obs
let detector t = t.detector

let adversary_ids t =
  List.sort_uniq Int.compare (List.map fst t.params.adversaries)
let net t = t.net
let stats t = Engine.stats t.engine
let params t = t.params
let node t i = t.nodes.(i)
let nodes t = t.nodes
let dns_server t = t.dns
let suite t = t.suite
let address_of t i = t.nodes.(i).identity.Identity.address

let start t =
  if not t.started then begin
    t.started <- true;
    Mobility.start t.mobility;
    Array.iter
      (fun n -> Option.iter Adversary.start n.adversary)
      t.nodes
  end

let bootstrap ?(stagger = 0.5) t =
  start t;
  Array.iter
    (fun n ->
      if not (t.params.with_dns && n.index = 0) then begin
        let delay = stagger *. float_of_int n.index in
        Engine.schedule t.engine ~label:"dad" ~delay (fun () ->
            Dad.start n.dad
              ~dn:(Printf.sprintf "node%d" n.index)
              ~on_complete:(fun _ -> ())
              ())
      end)
    t.nodes;
  (* Let DAD, registration commits and warnings settle. *)
  let horizon =
    (stagger *. float_of_int t.params.n)
    +. (2.0 *. t.params.dad_config.Dad.arep_wait)
    +. 10.0
  in
  Perf.phase (Obs.perf t.obs) ~engine:t.engine "bootstrap" (fun () ->
      Engine.run ~until:(Engine.now t.engine +. horizon) t.engine)

let send t ~src ~dst ?(size = 512) () =
  let dst_addr = address_of t dst in
  match t.nodes.(src).routing with
  | Dsr_agent a -> Dsr.send a ~dst:dst_addr ~size ()
  | Secure_agent a -> Secure.send a ~dst:dst_addr ~size ()
  | Srp_agent a -> Srp.send a ~dst:dst_addr ~size ()

let start_cbr t ~flows ~interval ?(size = 512) ?start_at ~duration () =
  let t0 = match start_at with Some x -> x | None -> Engine.now t.engine in
  List.iter
    (fun (src, dst) ->
      let rec tick at =
        if at <= t0 +. duration then
          Engine.schedule_at t.engine ~label:"traffic" ~time:at (fun () ->
              send t ~src ~dst ~size ();
              tick (at +. interval))
      in
      tick t0)
    flows

let discover t ~src ~dst on_route =
  let dst_addr = address_of t dst in
  match t.nodes.(src).routing with
  | Dsr_agent a -> Dsr.discover a ~dst:dst_addr ~on_route
  | Secure_agent a -> Secure.discover a ~dst:dst_addr ~on_route
  | Srp_agent a -> Srp.discover a ~dst:dst_addr ~on_route

let run ?until t =
  start t;
  Perf.phase (Obs.perf t.obs) ~engine:t.engine "run" (fun () ->
      match until with
      | Some limit -> Engine.run ~until:limit t.engine
      | None -> Engine.run t.engine)

(* --- fault injection ---------------------------------------------------- *)

let inject t plan =
  Faults.validate ~n:t.params.n plan;
  if t.params.with_dns then
    List.iter
      (fun { Faults.event; _ } ->
        match event with
        | Faults.Crash 0 | Faults.Restart 0 ->
            invalid_arg "Scenario.inject: node 0 hosts the DNS and cannot churn"
        | _ -> ())
      plan;
  let base = Faults.net_hooks t.net in
  let hooks =
    {
      base with
      Faults.crash =
        (fun i ->
          Net.set_down t.net i true;
          (* A crash loses volatile protocol state: any in-flight DAD
             attempt dies with the node. *)
          Dad.abort t.nodes.(i).dad);
      restart =
        (fun i ->
          Net.set_down t.net i false;
          (* Rejoining the MANET means re-running the secure bootstrap
             (§3.1).  The node keeps its identity, so its CGA address and
             domain name are unchanged and the DNS sees a benign
             re-registration rather than a conflict. *)
          let n = t.nodes.(i) in
          Dad.abort n.dad;
          let dn =
            match n.identity.Identity.domain_name with
            | Some dn -> dn
            | None -> Printf.sprintf "node%d" i
          in
          (* Parent the re-DAD bootstrap span to the outage that forced
             it, making fault -> recovery causality queryable. *)
          let parent = Obs.lookup t.obs (Faults.outage_key i) in
          Dad.start n.dad ?parent ~dn ~on_complete:(fun _ -> ()) ());
    }
  in
  Faults.schedule ~obs:t.obs t.engine hooks plan

(* --- metrics ------------------------------------------------------------ *)

let delivery_ratio t =
  let s = stats t in
  let offered = Stats.get s "data.offered" in
  if offered = 0 then 1.0
  else float_of_int (Stats.get s "data.delivered") /. float_of_int offered

let ack_ratio t =
  let s = stats t in
  let offered = Stats.get s "data.offered" in
  if offered = 0 then 1.0
  else float_of_int (Stats.get s "data.acked") /. float_of_int offered

let control_bytes t =
  let s = stats t in
  List.fold_left
    (fun acc (name, v) ->
      if
        String.length name > 8
        && String.sub name 0 8 = "txbytes."
        && name <> "txbytes.data" && name <> "txbytes.ack"
      then acc + v
      else acc)
    0 (Stats.counters s)

let control_packets t =
  let s = stats t in
  List.fold_left
    (fun acc (name, v) ->
      if
        String.length name > 3
        && String.sub name 0 3 = "tx."
        && name <> "tx.data" && name <> "tx.ack"
      then acc + v
      else acc)
    0 (Stats.counters s)

let crypto_ops t = (t.suite.Suite.sign_count, t.suite.Suite.verify_count)

let mean_latency t =
  Option.map (fun s -> s.Stats.mean) (Stats.summary (stats t) "data.latency")

(* --- perf / timeline export --------------------------------------------- *)

(* The flood-provenance summary joins the perf export's deterministic
   section: it is a pure fold over the seeded event sequence, so it
   obeys the same byte-stability contract. *)
let flood_extra t = [ ("floods", Flood.summary_json (Obs.flood t.obs)) ]

let perf_json ?meta t =
  Perf.to_json ?meta ~extra_det:(flood_extra t) (Obs.perf t.obs)
    ~engine:t.engine ~net:t.net ~suite:t.suite

let perf_det_jsonl ?meta t =
  Perf.det_jsonl ?meta ~extra_det:(flood_extra t) (Obs.perf t.obs)
    ~engine:t.engine ~net:t.net ~suite:t.suite

let timeline_jsonl ?meta t =
  Timeline.to_jsonl ?meta (Obs.timeline t.obs) ~flood:(Obs.flood t.obs)

