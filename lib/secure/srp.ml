module Address = Manet_ipv6.Address
module Prng = Manet_crypto.Prng
module Hmac = Manet_crypto.Hmac
module Messages = Manet_proto.Messages
module Codec = Manet_proto.Codec
module Ctx = Manet_proto.Node_ctx
module Audit = Manet_obs.Audit
module Obs = Manet_obs.Obs
module Flood = Manet_obs.Flood
module Engine = Manet_sim.Engine
module Route_cache = Manet_dsr.Route_cache

type config = {
  discovery_timeout : float;
  max_discovery_attempts : int;
  ack_timeout : float;
  max_send_retries : int;
  cache_capacity_per_dst : int;
  flood_jitter : float;
}

let default_config =
  {
    discovery_timeout = 1.0;
    max_discovery_attempts = 3;
    ack_timeout = 1.5;
    max_send_retries = 2;
    cache_capacity_per_dst = 4;
    flood_jitter = 0.01;
  }

let pair_key ~master a b =
  let x = Address.to_bytes a and y = Address.to_bytes b in
  let lo, hi = if String.compare x y <= 0 then (x, y) else (y, x) in
  Hmac.hmac_sha256 ~key:master (lo ^ hi)

let rreq_mac ~key ~sip ~dip ~seq =
  Hmac.hmac_sha256 ~key ("SRPQ|" ^ Codec.addr sip ^ Codec.addr dip ^ Codec.u32 seq)

let rrep_mac ~key ~sip ~seq ~rr =
  Hmac.hmac_sha256 ~key ("SRPP|" ^ Codec.addr sip ^ Codec.u32 seq ^ Codec.route rr)

type packet = {
  p_dst : Address.t;
  p_size : int;
  p_seq : int;
  p_first_sent : float;
  mutable p_retries : int;
}

type pending_discovery = {
  d_dst : Address.t;
  mutable d_seq : int;
  mutable d_attempts : int;
  mutable d_resolved : bool;
  d_started : float;
}

type t = {
  ctx : Ctx.t;
  config : config;
  master : string;
  cache : unit Route_cache.t;
  mutable rreq_seq : int;
  mutable data_seq : int;
  pending : (string, pending_discovery) Hashtbl.t;
  queue : (string, packet Queue.t) Hashtbl.t;
  waiters : (string, (Address.t list option -> unit) list ref) Hashtbl.t;
  seen_rreq : (string, unit) Hashtbl.t;
  reply_counts : (string, int) Hashtbl.t;
  in_flight : (string, packet) Hashtbl.t;
  seen_data : (string, unit) Hashtbl.t;
}

let akey = Address.to_bytes
let fkey dst seq = akey dst ^ Codec.u32 seq

let create ?(config = default_config) ~master ctx =
  {
    ctx;
    config;
    master;
    cache = Route_cache.create ~capacity_per_dst:config.cache_capacity_per_dst ();
    rreq_seq = 0;
    data_seq = 0;
    pending = Hashtbl.create 16;
    queue = Hashtbl.create 16;
    waiters = Hashtbl.create 8;
    seen_rreq = Hashtbl.create 256;
    reply_counts = Hashtbl.create 64;
    in_flight = Hashtbl.create 32;
    seen_data = Hashtbl.create 64;
  }

let address t = Ctx.address t.ctx
let now t = Ctx.now t.ctx
let key_with t other = pair_key ~master:t.master (address t) other

let cached_route t ~dst =
  Option.map
    (fun e -> e.Route_cache.route)
    (Route_cache.best t.cache ~dst ~score:(fun e ->
         -.float_of_int (List.length e.Route_cache.route)))

let cached_routes t ~dst =
  List.map (fun e -> e.Route_cache.route) (Route_cache.entries t.cache ~dst)

(* --- data plane (same skeleton as the baseline) ------------------------ *)

let queue_for t dst =
  let k = akey dst in
  match Hashtbl.find_opt t.queue k with
  | Some q -> q
  | None ->
      let q = Queue.create () in
      Hashtbl.add t.queue k q;
      q

let rec transmit t packet route =
  let dst = packet.p_dst in
  Hashtbl.replace t.in_flight (fkey dst packet.p_seq) packet;
  let path = route @ [ dst ] in
  Ctx.send_along t.ctx ~path
    ~on_fail:(fun () -> Route_cache.remove_route t.cache ~dst ~route)
    (Messages.Data
       {
         src = address t;
         dst;
         seq = packet.p_seq;
         route;
         remaining = path;
         payload_size = packet.p_size;
         sent_at = packet.p_first_sent;
       });
  Engine.schedule t.ctx.Ctx.engine ~label:"srp" ~delay:t.config.ack_timeout
    (fun () ->
      let k = fkey dst packet.p_seq in
      match Hashtbl.find_opt t.in_flight k with
      | Some p when p == packet ->
          Hashtbl.remove t.in_flight k;
          Ctx.stat t.ctx "data.timeout";
          Route_cache.remove_route t.cache ~dst ~route;
          if packet.p_retries < t.config.max_send_retries then begin
            packet.p_retries <- packet.p_retries + 1;
            dispatch t packet
          end
          else Ctx.stat t.ctx "data.dropped"
      | _ -> ())

and dispatch t packet =
  match cached_route t ~dst:packet.p_dst with
  | Some route -> transmit t packet route
  | None ->
      Queue.push packet (queue_for t packet.p_dst);
      start_discovery t packet.p_dst

and start_discovery t dst =
  let k = akey dst in
  match Hashtbl.find_opt t.pending k with
  | Some d when not d.d_resolved -> ()
  | _ ->
      let d =
        { d_dst = dst; d_seq = 0; d_attempts = 0; d_resolved = false; d_started = now t }
      in
      Hashtbl.replace t.pending k d;
      send_rreq t d

and send_rreq t d =
  t.rreq_seq <- t.rreq_seq + 1;
  let seq = t.rreq_seq in
  d.d_seq <- seq;
  d.d_attempts <- d.d_attempts + 1;
  Ctx.stat t.ctx "route.discoveries";
  let sip = address t in
  (* The end-to-end MAC rides in the message's signature field; no key
     material travels (both ends already share the association). *)
  let mac = rreq_mac ~key:(key_with t d.d_dst) ~sip ~dip:d.d_dst ~seq in
  let fk = fkey sip seq in
  Hashtbl.replace t.seen_rreq fk ();
  let fl = Obs.flood t.ctx.Ctx.obs in
  Flood.originate fl ~kind:Flood.Rreq ~key:fk ~node:(Ctx.node_id t.ctx);
  Flood.sent fl ~kind:Flood.Rreq ~key:fk ~node:(Ctx.node_id t.ctx);
  Ctx.broadcast t.ctx
    (Messages.Rreq { sip; dip = d.d_dst; seq; srr = []; sig_ = mac; spk = ""; srn = 0L });
  Engine.schedule t.ctx.Ctx.engine ~label:"srp"
    ~delay:t.config.discovery_timeout (fun () ->
      if not d.d_resolved then begin
        if d.d_attempts < t.config.max_discovery_attempts then send_rreq t d
        else begin
          d.d_resolved <- true;
          Ctx.stat t.ctx "route.discovery_failed";
          (match Hashtbl.find_opt t.queue (akey d.d_dst) with
          | Some q ->
              Queue.iter (fun _ -> Ctx.stat t.ctx "data.dropped") q;
              Queue.clear q
          | None -> ());
          notify_waiters t d.d_dst None
        end
      end)

and notify_waiters t dst result =
  match Hashtbl.find_opt t.waiters (akey dst) with
  | None -> ()
  | Some l ->
      let callbacks = !l in
      Hashtbl.remove t.waiters (akey dst);
      List.iter (fun cb -> cb result) callbacks

and route_found t ~dst ~route =
  Route_cache.insert t.cache ~dst ~route ~meta:() ~now:(now t);
  (match Hashtbl.find_opt t.pending (akey dst) with
  | Some d when not d.d_resolved ->
      d.d_resolved <- true;
      Ctx.observe t.ctx "route.discovery_time" (now t -. d.d_started);
      Ctx.observe t.ctx "route.hops" (float_of_int (List.length route + 1))
  | _ -> ());
  (match Hashtbl.find_opt t.queue (akey dst) with
  | Some q ->
      let packets = List.of_seq (Queue.to_seq q) in
      Queue.clear q;
      List.iter (fun p -> dispatch t p) packets
  | None -> ());
  notify_waiters t dst (Some route)

let send t ~dst ?(size = 512) () =
  t.data_seq <- t.data_seq + 1;
  Ctx.stat t.ctx "data.offered";
  dispatch t
    { p_dst = dst; p_size = size; p_seq = t.data_seq; p_first_sent = now t; p_retries = 0 }

let discover t ~dst ~on_route =
  match cached_route t ~dst with
  | Some route -> on_route (Some route)
  | None ->
      let k = akey dst in
      let l =
        match Hashtbl.find_opt t.waiters k with
        | Some l -> l
        | None ->
            let l = ref [] in
            Hashtbl.add t.waiters k l;
            l
      in
      l := on_route :: !l;
      start_discovery t dst

(* --- discovery handling -------------------------------------------------- *)

let srr_ips srr = List.map (fun e -> e.Messages.ip) srr
let max_replies_per_request = 3

let handle_rreq t ~src msg =
  match msg with
  | Messages.Rreq { sip; dip; seq; srr; sig_; _ } ->
      let key = fkey sip seq in
      let me = address t in
      let rr = srr_ips srr in
      let fl = Obs.flood t.ctx.Ctx.obs in
      Flood.received fl ~kind:Flood.Rreq ~key ~node:(Ctx.node_id t.ctx) ~src
        ~hops:(List.length srr);
      if Address.equal dip me then begin
        if not (Address.equal sip me || List.exists (Address.equal me) rr) then begin
          let sent = Option.value ~default:0 (Hashtbl.find_opt t.reply_counts key) in
          if sent < max_replies_per_request then begin
            (* End-to-end verification only: the pair MAC proves the
               request's origin; the collected hops are taken on faith —
               SRP's deliberate trade-off. *)
            Flood.verified fl ~kind:Flood.Rreq ~key ~node:(Ctx.node_id t.ctx);
            let k_sd = key_with t sip in
            if String.equal sig_ (rreq_mac ~key:k_sd ~sip ~dip ~seq) then begin
              Hashtbl.replace t.reply_counts key (sent + 1);
              Ctx.stat t.ctx "route.replies";
              let back = List.rev rr @ [ sip ] in
              Ctx.send_along t.ctx ~path:back
                (Messages.Rrep
                   {
                     sip;
                     dip = me;
                     rr;
                     remaining = back;
                     sig_ = rrep_mac ~key:k_sd ~sip ~seq ~rr;
                     dpk = "";
                     drn = 0L;
                   })
            end
            else
              Ctx.audit t.ctx ~kind:Audit.Sig_verify_fail
                ~stats:[ "srp.rreq_rejected" ]
                ~cause:"rreq end-to-end MAC" ()
          end
        end
      end
      else if Hashtbl.mem t.seen_rreq key then
        Flood.duplicate fl ~kind:Flood.Rreq ~key
      else begin
        Hashtbl.replace t.seen_rreq key ();
        if Address.equal sip me || List.exists (Address.equal me) rr then ()
        else begin
          (* Relay with a bare address record: intermediates neither sign
             nor verify anything under SRP — this is a designated
             unsigned site, not a forgotten signature. *)
          (* manetlint: allow placeholder-sig *)
          let entry = { Messages.ip = me; sig_ = ""; pk = ""; rn = 0L } in
          let relayed =
            Messages.Rreq { sip; dip; seq; srr = srr @ [ entry ]; sig_; spk = ""; srn = 0L }
          in
          let delay = Prng.float t.ctx.Ctx.rng t.config.flood_jitter in
          Engine.schedule t.ctx.Ctx.engine ~label:"srp" ~delay (fun () ->
              Flood.sent fl ~kind:Flood.Rreq ~key ~node:(Ctx.node_id t.ctx);
              Ctx.broadcast t.ctx relayed)
        end
      end
  | _ -> ()

let consume_rrep t msg =
  match msg with
  | Messages.Rrep { dip; rr; sig_; _ } -> (
      match Hashtbl.find_opt t.pending (akey dip) with
      | Some d ->
          let k_sd = key_with t dip in
          if
            String.equal sig_
              (rrep_mac ~key:k_sd ~sip:(address t) ~seq:d.d_seq ~rr)
          then route_found t ~dst:dip ~route:rr
          else
            Ctx.audit t.ctx ~kind:Audit.Sig_verify_fail
              ~stats:[ "srp.rrep_rejected" ]
              ~cause:"rrep end-to-end MAC" ()
      | None ->
          Ctx.audit t.ctx ~kind:Audit.Replay_rejected
            ~stats:[ "srp.rrep_rejected" ]
            ~cause:"unsolicited rrep" ())
  | _ -> ()

(* --- maintenance / data -------------------------------------------------- *)

let split_route_at route me =
  let rec go before = function
    | [] -> None
    | x :: rest when Address.equal x me -> Some (List.rev before, rest)
    | x :: rest -> go (x :: before) rest
  in
  go [] route

let forward_data t ~next msg =
  match msg with
  | Messages.Data { src; route; _ } ->
      Ctx.stat t.ctx "data.forwarded";
      Ctx.send_along t.ctx ~path:next msg ~on_fail:(fun () ->
          let me = address t in
          let broken_next = List.hd next in
          let back =
            match split_route_at route me with
            | Some (before, _) -> List.rev before @ [ src ]
            | None -> [ src ]
          in
          Ctx.stat t.ctx "rerr.sent";
          (* SRP has no association with intermediates: the error report
             is necessarily unauthenticated (designated unsigned site). *)
          Ctx.send_along t.ctx ~path:back
            (Messages.Rerr
               { reporter = me; broken_next; dst = src; remaining = back;
                 (* manetlint: allow placeholder-sig *)
                 sig_ = ""; pk = ""; rn = 0L }))
  | _ -> ()

let consume_data t msg =
  match msg with
  | Messages.Data { src; seq; route; sent_at; _ } ->
      let k = fkey src seq in
      if not (Hashtbl.mem t.seen_data k) then begin
        Hashtbl.replace t.seen_data k ();
        Ctx.stat t.ctx "data.delivered";
        Ctx.observe t.ctx "data.latency" (now t -. sent_at)
      end;
      let back_route = List.rev route in
      let path = back_route @ [ src ] in
      Ctx.send_along t.ctx ~path
        (Messages.Ack
           { src = address t; dst = src; data_seq = seq; route = back_route;
             remaining = path; sent_at })
  | _ -> ()

let consume_ack t msg =
  match msg with
  | Messages.Ack { src = acker; data_seq; sent_at; _ } -> (
      let k = fkey acker data_seq in
      match Hashtbl.find_opt t.in_flight k with
      | Some _ ->
          Hashtbl.remove t.in_flight k;
          Ctx.stat t.ctx "data.acked";
          Ctx.observe t.ctx "data.rtt" (now t -. sent_at)
      | None -> Ctx.stat t.ctx "ack.unmatched")
  | _ -> ()

let consume_rerr t msg =
  match msg with
  (* SRP cannot authenticate intermediate error reports (no security
     association with relays), so it believes them — the documented
     exposure the paper's full scheme removes. *)
  (* manetlint: allow security *)
  | Messages.Rerr { reporter; broken_next; _ } ->
      Ctx.stat t.ctx "rerr.received";
      (* Unauthenticated, so believed — SRP's documented exposure. *)
      ignore
        (* manetsem: allow taint — SRP has no security association with
           relays, so RERR cannot be verified; acting on it unverified is
           the §3.4 exposure this module exists to exhibit as a baseline. *)
        (Route_cache.remove_link t.cache ~owner:(address t) ~a:reporter ~b:broken_next)
  | _ -> ()

let handle t ~src msg =
  match msg with
  | Messages.Rreq _ -> handle_rreq t ~src msg
  | Messages.Rrep _ ->
      Ctx.deliver_up t.ctx ~src msg ~consume:(consume_rrep t)
        ~forward:(fun ~next m -> Ctx.send_along t.ctx ~path:next m)
        ~not_mine:(fun _ -> ())
  | Messages.Data _ ->
      Ctx.deliver_up t.ctx ~src msg ~consume:(consume_data t)
        ~forward:(fun ~next m -> forward_data t ~next m)
        ~not_mine:(fun _ -> ())
  | Messages.Ack _ ->
      Ctx.deliver_up t.ctx ~src msg ~consume:(consume_ack t)
        ~forward:(fun ~next m -> Ctx.send_along t.ctx ~path:next m)
        ~not_mine:(fun _ -> ())
  | Messages.Rerr _ ->
      Ctx.deliver_up t.ctx ~src msg ~consume:(consume_rerr t)
        ~forward:(fun ~next m -> Ctx.send_along t.ctx ~path:next m)
        ~not_mine:(fun _ -> ())
  (* SRP is routing-plane only: DAD/DNS traffic is transit to relay,
     enumerated so a new Messages constructor forces a decision here. *)
  | Messages.Areq _ | Messages.Arep _ | Messages.Drep _ | Messages.Crep _
  | Messages.Probe _ | Messages.Probe_reply _ | Messages.Name_query _
  | Messages.Name_reply _ | Messages.Ip_change_request _
  | Messages.Ip_change_challenge _ | Messages.Ip_change_proof _
  | Messages.Ip_change_ack _ ->
      Ctx.forward_transit t.ctx ~src msg
