test/test_ipv6.ml: Alcotest Array Hashtbl List Manet_crypto Manet_ipv6 QCheck QCheck_alcotest
