test/test_dad_dns.ml: Alcotest Array List Manet_crypto Manet_dad Manet_dns Manet_ipv6 Manet_proto Manet_sim Option Printf
