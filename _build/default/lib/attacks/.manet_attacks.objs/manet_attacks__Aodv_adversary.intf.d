lib/attacks/aodv_adversary.mli: Manet_aodv Manet_crypto Manet_ipv6
