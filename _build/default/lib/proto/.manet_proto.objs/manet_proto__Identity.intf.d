lib/proto/identity.mli: Manet_crypto Manet_ipv6
