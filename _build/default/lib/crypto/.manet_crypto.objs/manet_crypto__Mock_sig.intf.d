lib/crypto/mock_sig.mli: Prng
