module Address = Manet_ipv6.Address

type srr_entry = { ip : Address.t; sig_ : string; pk : string; rn : int64 }

type t =
  | Areq of {
      sip : Address.t;
      seq : int;
      dn : string option;
      ch : int64;
      rr : Address.t list;
    }
  | Arep of {
      sip : Address.t;
      rr : Address.t list;
      remaining : Address.t list;
      sig_ : string;
      pk : string;
      rn : int64;
    }
  | Drep of {
      sip : Address.t;
      dn : string;
      rr : Address.t list;
      remaining : Address.t list;
      sig_ : string;
    }
  | Rreq of {
      sip : Address.t;
      dip : Address.t;
      seq : int;
      srr : srr_entry list;
      sig_ : string;
      spk : string;
      srn : int64;
    }
  | Rrep of {
      sip : Address.t;
      dip : Address.t;
      rr : Address.t list;
      remaining : Address.t list;
      sig_ : string;
      dpk : string;
      drn : int64;
    }
  | Crep of {
      requester : Address.t;
      cacher : Address.t;
      dip : Address.t;
      requester_seq : int;
      cacher_seq : int;
      rr_to_cacher : Address.t list;
      rr_to_dest : Address.t list;
      remaining : Address.t list;
      sig_cacher : string;
      cacher_pk : string;
      cacher_rn : int64;
      sig_dest : string;
      dest_pk : string;
      dest_rn : int64;
    }
  | Rerr of {
      reporter : Address.t;
      broken_next : Address.t;
      dst : Address.t;
      remaining : Address.t list;
      sig_ : string;
      pk : string;
      rn : int64;
    }
  | Data of {
      src : Address.t;
      dst : Address.t;
      seq : int;
      route : Address.t list;
      remaining : Address.t list;
      payload_size : int;
      sent_at : float;
    }
  | Ack of {
      src : Address.t;
      dst : Address.t;
      data_seq : int;
      route : Address.t list;
      remaining : Address.t list;
      sent_at : float;
    }
  | Probe of {
      origin : Address.t;
      target : Address.t;
      seq : int;
      route : Address.t list;
      remaining : Address.t list;
    }
  | Probe_reply of {
      responder : Address.t;
      origin : Address.t;
      seq : int;
      remaining : Address.t list;
      sig_ : string;
      pk : string;
      rn : int64;
    }
  | Name_query of {
      requester : Address.t;
      name : string;
      ch : int64;
      route : Address.t list;  (** intermediates requester to DNS *)
      remaining : Address.t list;
    }
  | Name_reply of {
      requester : Address.t;
      name : string;
      result : Address.t option;
      ch : int64;
      remaining : Address.t list;
      sig_ : string;
    }
  | Ip_change_request of {
      old_ip : Address.t;
      new_ip : Address.t;
      route : Address.t list;  (** intermediates requester to DNS *)
      remaining : Address.t list;
    }
  | Ip_change_challenge of {
      old_ip : Address.t;
      new_ip : Address.t;
      ch : int64;
      remaining : Address.t list;
    }
  | Ip_change_proof of {
      old_ip : Address.t;
      new_ip : Address.t;
      old_rn : int64;
      new_rn : int64;
      pk : string;
      sig_ : string;
      route : Address.t list;
      remaining : Address.t list;
    }
  | Ip_change_ack of {
      old_ip : Address.t;
      new_ip : Address.t;
      accepted : bool;
      remaining : Address.t list;
    }

let tag = function
  | Areq _ -> "areq"
  | Arep _ -> "arep"
  | Drep _ -> "drep"
  | Rreq _ -> "rreq"
  | Rrep _ -> "rrep"
  | Crep _ -> "crep"
  | Rerr _ -> "rerr"
  | Data _ -> "data"
  | Ack _ -> "ack"
  | Probe _ -> "probe"
  | Probe_reply _ -> "probe_reply"
  | Name_query _ -> "name_query"
  | Name_reply _ -> "name_reply"
  | Ip_change_request _ -> "ip_change_request"
  | Ip_change_challenge _ -> "ip_change_challenge"
  | Ip_change_proof _ -> "ip_change_proof"
  | Ip_change_ack _ -> "ip_change_ack"

let remaining = function
  | Areq _ -> None
  | Arep m -> Some m.remaining
  | Drep m -> Some m.remaining
  | Rreq _ -> None
  | Rrep m -> Some m.remaining
  | Crep m -> Some m.remaining
  | Rerr m -> Some m.remaining
  | Data m -> Some m.remaining
  | Ack m -> Some m.remaining
  | Probe m -> Some m.remaining
  | Probe_reply m -> Some m.remaining
  | Name_query m -> Some m.remaining
  | Name_reply m -> Some m.remaining
  | Ip_change_request m -> Some m.remaining
  | Ip_change_challenge m -> Some m.remaining
  | Ip_change_proof m -> Some m.remaining
  | Ip_change_ack m -> Some m.remaining

let with_remaining msg hops =
  match msg with
  | Areq _ -> msg
  | Arep m -> Arep { m with remaining = hops }
  | Drep m -> Drep { m with remaining = hops }
  | Rreq _ -> msg
  | Rrep m -> Rrep { m with remaining = hops }
  | Crep m -> Crep { m with remaining = hops }
  | Rerr m -> Rerr { m with remaining = hops }
  | Data m -> Data { m with remaining = hops }
  | Ack m -> Ack { m with remaining = hops }
  | Probe m -> Probe { m with remaining = hops }
  | Probe_reply m -> Probe_reply { m with remaining = hops }
  | Name_query m -> Name_query { m with remaining = hops }
  | Name_reply m -> Name_reply { m with remaining = hops }
  | Ip_change_request m -> Ip_change_request { m with remaining = hops }
  | Ip_change_challenge m -> Ip_change_challenge { m with remaining = hops }
  | Ip_change_proof m -> Ip_change_proof { m with remaining = hops }
  | Ip_change_ack m -> Ip_change_ack { m with remaining = hops }

let pp_route fmt route =
  Format.fprintf fmt "[%s]" (String.concat ";" (List.map Address.to_string route))

let pp fmt msg =
  match msg with
  | Areq m ->
      Format.fprintf fmt "AREQ(sip=%a, seq=%d, dn=%s, rr=%a)" Address.pp m.sip
        m.seq
        (Option.value ~default:"-" m.dn)
        pp_route m.rr
  | Arep m -> Format.fprintf fmt "AREP(sip=%a, rr=%a)" Address.pp m.sip pp_route m.rr
  | Drep m -> Format.fprintf fmt "DREP(sip=%a, dn=%s)" Address.pp m.sip m.dn
  | Rreq m ->
      Format.fprintf fmt "RREQ(sip=%a, dip=%a, seq=%d, hops=%d)" Address.pp m.sip
        Address.pp m.dip m.seq (List.length m.srr)
  | Rrep m ->
      Format.fprintf fmt "RREP(sip=%a, dip=%a, rr=%a)" Address.pp m.sip Address.pp
        m.dip pp_route m.rr
  | Crep m ->
      Format.fprintf fmt "CREP(req=%a, cacher=%a, dip=%a)" Address.pp m.requester
        Address.pp m.cacher Address.pp m.dip
  | Rerr m ->
      Format.fprintf fmt "RERR(reporter=%a, broken=%a, dst=%a)" Address.pp
        m.reporter Address.pp m.broken_next Address.pp m.dst
  | Data m ->
      Format.fprintf fmt "DATA(src=%a, dst=%a, seq=%d)" Address.pp m.src Address.pp
        m.dst m.seq
  | Ack m ->
      Format.fprintf fmt "ACK(src=%a, dst=%a, seq=%d)" Address.pp m.src Address.pp
        m.dst m.data_seq
  | Probe m ->
      Format.fprintf fmt "PROBE(origin=%a, target=%a, seq=%d)" Address.pp m.origin
        Address.pp m.target m.seq
  | Probe_reply m ->
      Format.fprintf fmt "PROBE_REPLY(responder=%a, seq=%d)" Address.pp m.responder
        m.seq
  | Name_query m -> Format.fprintf fmt "NAME_QUERY(name=%s)" m.name
  | Name_reply m ->
      Format.fprintf fmt "NAME_REPLY(name=%s, result=%s)" m.name
        (match m.result with Some a -> Address.to_string a | None -> "-")
  | Ip_change_request m ->
      Format.fprintf fmt "IP_CHANGE_REQUEST(old=%a, new=%a)" Address.pp m.old_ip
        Address.pp m.new_ip
  | Ip_change_challenge m ->
      Format.fprintf fmt "IP_CHANGE_CHALLENGE(old=%a)" Address.pp m.old_ip
  | Ip_change_proof m ->
      Format.fprintf fmt "IP_CHANGE_PROOF(old=%a, new=%a)" Address.pp m.old_ip
        Address.pp m.new_ip
  | Ip_change_ack m ->
      Format.fprintf fmt "IP_CHANGE_ACK(accepted=%b)" m.accepted
