(* Tests for the causal telemetry layer: span lifecycle, cross-node
   parenting through the correlation registry, the JSON codec, JSONL
   byte-determinism across replays, and the report renderers. *)

module Engine = Manet_sim.Engine
module Obs = Manetsec.Obs
module Json = Manetsec.Obs_json
module Report = Manetsec.Obs_report
module Scenario = Manetsec.Scenario
module Faults = Manetsec.Faults
module Directory = Manetsec.Proto.Directory
module Identity = Manetsec.Proto.Identity

(* ------------------------------------------------------------------ *)
(* Span primitives                                                    *)
(* ------------------------------------------------------------------ *)

let test_span_lifecycle () =
  let e = Engine.create ~seed:1 () in
  let o = Obs.create e in
  let root = Obs.start o ~kind:"route.discovery" ~node:1 ~detail:"d" () in
  Engine.schedule e ~delay:2.0 (fun () ->
      let child = Obs.start o ~parent:root ~kind:"rreq.flood" ~node:1 () in
      Obs.note o child ~node:3 "relay";
      Engine.schedule e ~delay:1.0 (fun () ->
          Obs.finish o child Obs.Ok;
          Obs.finish o root (Obs.Rejected "nope");
          (* finish is first-wins. *)
          Obs.finish o root Obs.Ok));
  Engine.run e;
  match Obs.spans o with
  | [ r; c ] ->
      Alcotest.(check int) "ids dense from 1" 1 r.Obs.id;
      Alcotest.(check bool) "root has no parent" true (r.Obs.parent = None);
      Alcotest.(check bool) "child parent" true (c.Obs.parent = Some root);
      Alcotest.(check (float 1e-9)) "child start" 2.0 c.Obs.start_time;
      Alcotest.(check bool) "child end" true (c.Obs.end_time = Some 3.0);
      Alcotest.(check bool) "child outcome" true (c.Obs.outcome = Some Obs.Ok);
      Alcotest.(check bool) "first finish wins" true
        (r.Obs.outcome = Some (Obs.Rejected "nope"));
      Alcotest.(check bool) "note recorded" true
        (c.Obs.notes = [ (2.0, 3, "relay") ])
  | l -> Alcotest.failf "expected 2 spans, got %d" (List.length l)

let test_correlation_registry () =
  let e = Engine.create ~seed:1 () in
  let o = Obs.create e in
  let a = Obs.start o ~kind:"k" ~node:0 () in
  let b = Obs.start o ~kind:"k" ~node:1 () in
  Alcotest.(check bool) "missing key" true (Obs.lookup o "x" = None);
  Obs.correlate o "x" a;
  Alcotest.(check bool) "bound" true (Obs.lookup o "x" = Some a);
  Obs.correlate o "x" b;
  Alcotest.(check bool) "rebinding replaces" true (Obs.lookup o "x" = Some b)

let test_event_capture_ring () =
  let e = Engine.create ~seed:1 () in
  let o = Obs.create ~event_capacity:2 e in
  Obs.log o ~node:0 ~event:"e0" ~detail:"";
  Alcotest.(check int) "capture off by default" 0 (List.length (Obs.events o));
  Obs.set_capture o true;
  for i = 1 to 5 do
    Obs.log o ~node:i ~event:(Printf.sprintf "e%d" i) ~detail:""
  done;
  Alcotest.(check (list string)) "newest kept" [ "e4"; "e5" ]
    (List.map (fun ev -> ev.Obs.name) (Obs.events o));
  Alcotest.(check int) "drops counted" 3 (Obs.events_dropped o)

(* ------------------------------------------------------------------ *)
(* JSON codec                                                         *)
(* ------------------------------------------------------------------ *)

let test_json_roundtrip () =
  let v =
    Json.Obj
      [
        ("a", Json.Int 42);
        ("b", Json.Float 2.5);
        ("s", Json.String "line\nquote\"tab\tend");
        ("l", Json.List [ Json.Null; Json.Bool true; Json.Int (-7) ]);
        ("nested", Json.Obj [ ("empty", Json.List []) ]);
      ]
  in
  Alcotest.(check bool) "roundtrip" true (Json.parse (Json.to_string v) = v);
  (* Canonical printing: a value renders to the same bytes every time. *)
  Alcotest.(check string) "stable bytes" (Json.to_string v) (Json.to_string v)

let test_json_parse_errors () =
  let bad s =
    match Json.parse s with
    | (_ : Json.t) -> false
    | exception Json.Parse_error _ -> true
  in
  Alcotest.(check bool) "trailing garbage" true (bad "{} x");
  Alcotest.(check bool) "unterminated string" true (bad {|{"a": "b|});
  Alcotest.(check bool) "bare word" true (bad "nope");
  Alcotest.(check bool) "empty" true (bad "")

let test_json_float_canonical () =
  Alcotest.(check string) "integral floats get .1f" "2.0" (Json.float_str 2.0);
  Alcotest.(check string) "negative zero" "-0.0" (Json.float_str (-0.0));
  Alcotest.(check string) "dyadic fraction exact" "0.25" (Json.float_str 0.25);
  Alcotest.(check bool) "large magnitudes use %g" true
    (float_of_string (Json.float_str 1e18) = 1e18)

let test_json_nonfinite_rejected () =
  let rejects x =
    match Json.float_str x with
    | (_ : string) -> false
    | exception Invalid_argument _ -> true
  in
  Alcotest.(check bool) "nan" true (rejects Float.nan);
  Alcotest.(check bool) "+inf" true (rejects Float.infinity);
  Alcotest.(check bool) "-inf" true (rejects Float.neg_infinity);
  (* The printers inherit the rejection, however deep the atom sits —
     a non-finite float must never reach an exported line. *)
  let printer_rejects v =
    match Json.to_string v with
    | (_ : string) -> false
    | exception Invalid_argument _ -> true
  in
  Alcotest.(check bool) "to_string Float nan" true
    (printer_rejects (Json.Float Float.nan));
  Alcotest.(check bool) "nested inf" true
    (printer_rejects
       (Json.Obj [ ("x", Json.List [ Json.Int 1; Json.Float Float.infinity ]) ]))

(* Exact-byte pins for the canonical formatter.  These strings are what
   live audit/trace exports contain; changing any of them changes every
   export's bytes, so a formatter tweak must be a deliberate,
   test-visible schema decision — not an accident. *)
let test_json_float_pinned () =
  List.iter
    (fun (x, expect) ->
      Alcotest.(check string) expect expect (Json.float_str x))
    [
      (0.0, "0.0");
      (1.0, "1.0");
      (-3.0, "-3.0");
      (0.5, "0.5");
      (0.1, "0.1");
      (1.0 /. 3.0, "0.333333333333");
      (6.50148517107, "6.50148517107");
      (12345.6789, "12345.6789");
      (1.5e-5, "1.5e-05");
      (* the integral-rendering boundary sits exactly at 1e15 *)
      (1e15 -. 1.0, "999999999999999.0");
      (1e15, "1e+15");
      (1e18, "1e+18");
    ]

(* ------------------------------------------------------------------ *)
(* Scenario-level: parenting, determinism, report                      *)
(* ------------------------------------------------------------------ *)

let small_params =
  {
    Scenario.default_params with
    n = 8;
    seed = 3;
    topology = Scenario.Random { width = 600.0; height = 600.0 };
  }

(* One full run: bootstrap, a forced outage (re-DAD), CBR traffic. *)
let run_once ?(params = small_params) ?(profile = false) () =
  let s = Scenario.create params in
  Obs.set_capture (Scenario.obs s) true;
  if profile then Engine.set_profiling (Scenario.engine s) true;
  Scenario.bootstrap s;
  let t0 = Engine.now (Scenario.engine s) in
  Scenario.inject s (Faults.outage ~from:(t0 +. 1.0) ~until:(t0 +. 6.0) 3);
  Scenario.start_cbr s ~flows:[ (1, 5); (2, 6) ] ~interval:0.5 ~duration:10.0 ();
  Scenario.run s ~until:(t0 +. 20.0);
  s

let jsonl_of s =
  Obs.to_jsonl ~meta:[ ("seed", Json.Int (Scenario.params s).Scenario.seed ) ]
    (Scenario.obs s)

let test_jsonl_byte_determinism () =
  let a = jsonl_of (run_once ()) in
  let b = jsonl_of (run_once ()) in
  Alcotest.(check bool) "replay is byte-identical" true (String.equal a b);
  (* Wall-clock profiling must not leak into the deterministic export. *)
  let c = jsonl_of (run_once ~profile:true ()) in
  Alcotest.(check bool) "profiling changes no byte" true (String.equal a c)

let test_causal_parenting () =
  let s = run_once () in
  let parsed = Report.parse_jsonl (jsonl_of s) in
  let by_id = Hashtbl.create 64 in
  List.iter
    (fun i -> Hashtbl.replace by_id i.Report.i_id i)
    parsed.Report.spans;
  let parent_kind i =
    match i.Report.i_parent with
    | None -> None
    | Some p ->
        Option.map (fun pi -> pi.Report.i_kind) (Hashtbl.find_opt by_id p)
  in
  let count = ref 0 in
  (* Every responder span must hang off the flood that caused it. *)
  List.iter
    (fun i ->
      match i.Report.i_kind with
      | "dns.registration" | "dns.drep" | "dad.arep" ->
          incr count;
          Alcotest.(check (option string))
            (i.Report.i_kind ^ " parented to the AREQ flood")
            (Some "dad.flood") (parent_kind i)
      | "route.rrep" | "route.crep" ->
          incr count;
          Alcotest.(check (option string))
            (i.Report.i_kind ^ " parented to the RREQ flood")
            (Some "rreq.flood") (parent_kind i)
      | "dad.flood" ->
          incr count;
          Alcotest.(check (option string)) "flood under its bootstrap"
            (Some "dad.bootstrap") (parent_kind i)
      | _ -> ())
    parsed.Report.spans;
  Alcotest.(check bool) "invariant exercised" true (!count > 10);
  (* The outage produced a re-DAD whose bootstrap hangs off the outage. *)
  let re_dad =
    List.filter
      (fun i ->
        i.Report.i_kind = "dad.bootstrap" && parent_kind i = Some "fault.outage")
      parsed.Report.spans
  in
  Alcotest.(check int) "one re-DAD parented to its outage" 1 (List.length re_dad);
  match re_dad with
  | [ i ] ->
      Alcotest.(check int) "on the crashed node" 3 i.Report.i_node;
      Alcotest.(check (option string)) "recovered" (Some "ok") i.Report.i_outcome
  | _ -> ()

let test_arep_on_collision () =
  (* Give the joiner node 1's address before bootstrap: node 1 must
     answer the joiner's AREQ flood with an AREP parented to it. *)
  let params = { small_params with seed = 5 } in
  let s = Scenario.create params in
  Obs.set_capture (Scenario.obs s) true;
  let n = params.Scenario.n in
  let victim = Scenario.address_of s 1 in
  let joiner = Scenario.node s (n - 1) in
  let dir = joiner.Scenario.ctx.Manetsec.Proto.Node_ctx.directory in
  Directory.unregister dir (Scenario.address_of s (n - 1)) (n - 1);
  joiner.Scenario.identity.Identity.address <- victim;
  Directory.register dir victim (n - 1);
  Scenario.bootstrap s;
  let parsed = Report.parse_jsonl (jsonl_of s) in
  let by_id = Hashtbl.create 64 in
  List.iter (fun i -> Hashtbl.replace by_id i.Report.i_id i) parsed.Report.spans;
  let areps =
    List.filter (fun i -> i.Report.i_kind = "dad.arep") parsed.Report.spans
  in
  Alcotest.(check bool) "an AREP span exists" true (areps <> []);
  List.iter
    (fun i ->
      match i.Report.i_parent with
      | Some p ->
          Alcotest.(check (option string)) "AREP under the colliding flood"
            (Some "dad.flood")
            (Option.map
               (fun pi -> pi.Report.i_kind)
               (Hashtbl.find_opt by_id p))
      | None -> Alcotest.fail "AREP span has no parent")
    areps;
  (* The colliding flood attempt was rejected with the typed reason. *)
  let rejected =
    List.exists
      (fun i ->
        i.Report.i_kind = "dad.flood"
        && i.Report.i_outcome = Some "rejected"
        && i.Report.i_reason = Some "address collision")
      parsed.Report.spans
  in
  Alcotest.(check bool) "collision rejection recorded" true rejected

let test_run_report_shape () =
  let s = run_once ~profile:true () in
  let j =
    Report.run_report ~engine:(Scenario.engine s) ~obs:(Scenario.obs s)
      ~extra:[ ("seed", Json.Int 3) ]
      ()
  in
  let get path =
    List.fold_left
      (fun acc field ->
        match acc with Some v -> Json.member field v | None -> None)
      (Some j) path
  in
  Alcotest.(check (option string)) "schema"
    (Some Report.report_schema)
    (Option.bind (get [ "schema" ]) Json.to_string_opt);
  Alcotest.(check bool) "span aggregates present" true
    (get [ "span_aggregates"; "dad.bootstrap" ] <> None);
  Alcotest.(check bool) "phases present" true
    (get [ "phases"; "dad.convergence" ] <> None);
  Alcotest.(check bool) "re-dad phase measured" true
    (Option.bind (get [ "phases"; "re_dad.convergence"; "count" ])
       Json.to_int_opt
    = Some 1);
  Alcotest.(check (option bool)) "profile enabled"
    (Some true)
    (Option.bind (get [ "profile"; "enabled" ])
       (function Json.Bool b -> Some b | _ -> None));
  Alcotest.(check bool) "profiled classes include fault" true
    (get [ "profile"; "classes"; "fault" ] <> None);
  (* The report is itself valid JSON (reparse need not be bit-equal:
     wall-clock floats go through the 12-digit canonical formatter). *)
  let reparsed = Json.parse (Json.to_string j) in
  Alcotest.(check (option string)) "report reparses with same schema"
    (Some Report.report_schema)
    (Option.bind (Json.member "schema" reparsed) Json.to_string_opt)

let test_parse_jsonl_rejects () =
  let good = jsonl_of (run_once ()) in
  let bad =
    match Report.parse_jsonl good with
    | exception Json.Parse_error _ -> fun _ -> true
    | (_ : Report.parsed) ->
        fun text ->
          (match Report.parse_jsonl text with
          | (_ : Report.parsed) -> false
          | exception Json.Parse_error _ -> true)
  in
  Alcotest.(check bool) "empty input" true (bad "");
  Alcotest.(check bool) "wrong schema" true
    (bad {|{"schema":"other","version":1}|});
  Alcotest.(check bool) "future version" true
    (bad (Printf.sprintf {|{"schema":"%s","version":%d}|} Obs.schema
            (Obs.schema_version + 1)));
  Alcotest.(check bool) "garbage line" true
    (bad
       (Printf.sprintf {|{"schema":"%s","version":%d}|} Obs.schema
          Obs.schema_version
       ^ "\nnot json\n"))

let test_renderers () =
  let s = run_once () in
  let parsed = Report.parse_jsonl (jsonl_of s) in
  let tree = Report.render_tree parsed in
  (* A child renders indented directly under its parent: find the first
     dad.bootstrap line and check the next line is its indented flood. *)
  let lines = String.split_on_char '\n' tree in
  let rec scan = function
    | a :: b :: _
      when String.length a > 2
           && a.[0] = '#'
           && (match String.index_opt a ' ' with
              | Some i ->
                  String.length a > i + 13
                  && String.sub a (i + 1) 13 = "dad.bootstrap"
              | None -> false) ->
        Alcotest.(check string) "child indented under parent" "  #"
          (String.sub b 0 3)
    | _ :: tl -> scan tl
    | [] -> Alcotest.fail "no dad.bootstrap root in tree"
  in
  scan lines;
  let phases = Report.render_phases parsed in
  List.iter
    (fun name ->
      Alcotest.(check bool) (name ^ " row present") true
        (let rec has i =
           i + String.length name <= String.length phases
           && (String.sub phases i (String.length name) = name || has (i + 1))
         in
         has 0))
    Report.phase_names;
  let top = Report.render_top ~k:3 parsed in
  Alcotest.(check int) "top-k line count" 3
    (List.length
       (List.filter (fun l -> l <> "") (String.split_on_char '\n' top)))

let tc name f = Alcotest.test_case name `Quick f

let suites =
  [
    ( "obs",
      [
        tc "span lifecycle" test_span_lifecycle;
        tc "correlation registry" test_correlation_registry;
        tc "event capture ring" test_event_capture_ring;
        tc "json roundtrip" test_json_roundtrip;
        tc "json parse errors" test_json_parse_errors;
        tc "json float canonical" test_json_float_canonical;
        tc "json non-finite rejected" test_json_nonfinite_rejected;
        tc "json float pinned bytes" test_json_float_pinned;
        tc "jsonl byte determinism" test_jsonl_byte_determinism;
        tc "causal parenting" test_causal_parenting;
        tc "arep on collision" test_arep_on_collision;
        tc "run report shape" test_run_report_shape;
        tc "parse rejects bad input" test_parse_jsonl_rejects;
        tc "renderers" test_renderers;
      ] );
  ]
