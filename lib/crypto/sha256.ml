(* FIPS 180-4 SHA-256 over 32-bit words carried in native ints (OCaml
   ints are 63-bit, so sums of a few 32-bit values never overflow; every
   stored word is masked back to 32 bits). *)

let mask32 = 0xFFFFFFFF

(* manetsem: allow determinism — FIPS round constants: the array is
   created once and never written, only indexed.
   manetdom: allow toplevel-state — same argument across domains:
   read-only after module init. *)
let k =
  [|
    0x428a2f98; 0x71374491; 0xb5c0fbcf; 0xe9b5dba5; 0x3956c25b; 0x59f111f1;
    0x923f82a4; 0xab1c5ed5; 0xd807aa98; 0x12835b01; 0x243185be; 0x550c7dc3;
    0x72be5d74; 0x80deb1fe; 0x9bdc06a7; 0xc19bf174; 0xe49b69c1; 0xefbe4786;
    0x0fc19dc6; 0x240ca1cc; 0x2de92c6f; 0x4a7484aa; 0x5cb0a9dc; 0x76f988da;
    0x983e5152; 0xa831c66d; 0xb00327c8; 0xbf597fc7; 0xc6e00bf3; 0xd5a79147;
    0x06ca6351; 0x14292967; 0x27b70a85; 0x2e1b2138; 0x4d2c6dfc; 0x53380d13;
    0x650a7354; 0x766a0abb; 0x81c2c92e; 0x92722c85; 0xa2bfe8a1; 0xa81a664b;
    0xc24b8b70; 0xc76c51a3; 0xd192e819; 0xd6990624; 0xf40e3585; 0x106aa070;
    0x19a4c116; 0x1e376c08; 0x2748774c; 0x34b0bcb5; 0x391c0cb3; 0x4ed8aa4a;
    0x5b9cca4f; 0x682e6ff3; 0x748f82ee; 0x78a5636f; 0x84c87814; 0x8cc70208;
    0x90befffa; 0xa4506ceb; 0xbef9a3f7; 0xc67178f2;
  |]

type ctx = {
  h : int array; (* 8 chaining words *)
  buf : Bytes.t; (* 64-byte block buffer *)
  mutable buf_len : int;
  mutable total : int; (* total bytes absorbed *)
  w : int array; (* message schedule scratch *)
}

let init () =
  (* manethot: allow hot-alloc — one context per digest: this is the
     streaming API's state, reused across every block of the message;
     sharing it across digests would be cross-domain mutable state. *)
  {
    h =
      (* manethot: allow hot-alloc — initial chaining values of the same
         per-digest context. *)
      [|
        0x6a09e667; 0xbb67ae85; 0x3c6ef372; 0xa54ff53a; 0x510e527f;
        0x9b05688c; 0x1f83d9ab; 0x5be0cd19;
      |];
    (* manethot: allow hot-alloc — block buffer and message schedule of
       the same per-digest context, allocated once and reused for every
       block. *)
    buf = Bytes.create 64;
    buf_len = 0;
    total = 0;
    (* manethot: allow hot-alloc — message schedule scratch of the same
       per-digest context. *)
    w = Array.make 64 0;
  }

let rotr x n = ((x lsr n) lor (x lsl (32 - n))) land mask32

(* The 64-round compression loop as a tail recursion over the eight
   working variables (plain int arguments, so no ref cells and no
   boxing); the final feed-forward adds them into the chaining array in
   the base case, so nothing is returned or boxed. *)
let rec rounds h w t a b c d e f g hh =
  if t = 64 then begin
    h.(0) <- (h.(0) + a) land mask32;
    h.(1) <- (h.(1) + b) land mask32;
    h.(2) <- (h.(2) + c) land mask32;
    h.(3) <- (h.(3) + d) land mask32;
    h.(4) <- (h.(4) + e) land mask32;
    h.(5) <- (h.(5) + f) land mask32;
    h.(6) <- (h.(6) + g) land mask32;
    h.(7) <- (h.(7) + hh) land mask32
  end
  else begin
    let s1 = rotr e 6 lxor rotr e 11 lxor rotr e 25 in
    let ch = (e land f) lxor (lnot e land g) in
    let t1 = (hh + s1 + ch + k.(t) + w.(t)) land mask32 in
    let s0 = rotr a 2 lxor rotr a 13 lxor rotr a 22 in
    let maj = (a land b) lxor (a land c) lxor (b land c) in
    let t2 = (s0 + maj) land mask32 in
    rounds h w (t + 1) ((t1 + t2) land mask32) a b c ((d + t1) land mask32) e
      f g
  end

(* Compress one 64-byte block read directly out of [block] at [off] —
   a string, so whole blocks of the input are consumed in place with
   no staging copy (the partial-block buffer goes through
   [Bytes.unsafe_to_string], which copies nothing either). *)
let compress ctx block off =
  let w = ctx.w in
  for t = 0 to 15 do
    let i = off + (t * 4) in
    w.(t) <-
      (Char.code (String.unsafe_get block i) lsl 24)
      lor (Char.code (String.unsafe_get block (i + 1)) lsl 16)
      lor (Char.code (String.unsafe_get block (i + 2)) lsl 8)
      lor Char.code (String.unsafe_get block (i + 3))
  done;
  for t = 16 to 63 do
    let s0 = rotr w.(t - 15) 7 lxor rotr w.(t - 15) 18 lxor (w.(t - 15) lsr 3) in
    let s1 = rotr w.(t - 2) 17 lxor rotr w.(t - 2) 19 lxor (w.(t - 2) lsr 10) in
    w.(t) <- (w.(t - 16) + s0 + w.(t - 7) + s1) land mask32
  done;
  let h = ctx.h in
  rounds h w 0 h.(0) h.(1) h.(2) h.(3) h.(4) h.(5) h.(6) h.(7)

(* Whole blocks straight from the input, no staging copy. *)
let rec absorb ctx s pos len =
  if len - pos >= 64 then begin
    compress ctx s pos;
    absorb ctx s (pos + 64) len
  end
  else pos

let update ctx s =
  let len = String.length s in
  ctx.total <- ctx.total + len;
  (* Top up a partial block first. *)
  let start =
    if ctx.buf_len > 0 then begin
      let need = 64 - ctx.buf_len in
      let take = if need < len then need else len in
      Bytes.blit_string s 0 ctx.buf ctx.buf_len take;
      ctx.buf_len <- ctx.buf_len + take;
      if ctx.buf_len = 64 then begin
        compress ctx (Bytes.unsafe_to_string ctx.buf) 0;
        ctx.buf_len <- 0
      end;
      take
    end
    else 0
  in
  let pos = absorb ctx s start len in
  if pos < len then begin
    Bytes.blit_string s pos ctx.buf ctx.buf_len (len - pos);
    ctx.buf_len <- ctx.buf_len + (len - pos)
  end

(* Padding happens inside the context's own block buffer: append 0x80,
   zero-fill, spill into a second compression if the 8-byte length
   field does not fit, then write the bit length big-endian into bytes
   56..63.  No pad block is allocated. *)
let finalize ctx =
  let total_bits = ctx.total * 8 in
  Bytes.set ctx.buf ctx.buf_len '\x80';
  Bytes.fill ctx.buf (ctx.buf_len + 1) (63 - ctx.buf_len) '\000';
  if ctx.buf_len + 1 > 56 then begin
    compress ctx (Bytes.unsafe_to_string ctx.buf) 0;
    Bytes.fill ctx.buf 0 64 '\000'
  end;
  for i = 0 to 7 do
    Bytes.set ctx.buf (56 + i)
      (Char.chr ((total_bits lsr ((7 - i) * 8)) land 0xFF))
  done;
  compress ctx (Bytes.unsafe_to_string ctx.buf) 0;
  ctx.buf_len <- 0;
  (* manethot: allow hot-alloc — the 32-byte digest is the return
     value. *)
  let out = Bytes.create 32 in
  for i = 0 to 7 do
    let v = ctx.h.(i) in
    Bytes.set out (i * 4) (Char.chr ((v lsr 24) land 0xFF));
    Bytes.set out ((i * 4) + 1) (Char.chr ((v lsr 16) land 0xFF));
    Bytes.set out ((i * 4) + 2) (Char.chr ((v lsr 8) land 0xFF));
    Bytes.set out ((i * 4) + 3) (Char.chr (v land 0xFF))
  done;
  Bytes.unsafe_to_string out

let digest s =
  let ctx = init () in
  update ctx s;
  finalize ctx

let hex s =
  let buf = Buffer.create (String.length s * 2) in
  String.iter
    (fun c -> Buffer.add_string buf (Printf.sprintf "%02x" (Char.code c)))
    s;
  Buffer.contents buf

let digest_hex s = hex (digest s)

(* Compression-function invocations for a message of [len] bytes: the
   padded input is len + 1 (0x80) + >=8 (length field) bytes rounded up
   to a 64-byte block, i.e. ceil((len + 9) / 64) blocks. *)
let blocks_of_len len =
  if len < 0 then invalid_arg "Sha256.blocks_of_len: negative length";
  (len + 72) / 64
