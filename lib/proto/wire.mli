(** Wire-size model of every protocol message.

    The simulator never serializes messages on the hot path, but every
    transmission is charged the exact number of bytes the {!Binary} codec
    produces for that message, plus a 40-byte IPv6 header and minus the
    simulation-only metadata (the [sent_at] float of Data/Ack).  The
    overhead experiment (E2) and the Table 1 regeneration therefore
    report precisely the bytes a deployment of this codec would put on
    the air — including the fact that protocols carrying empty signature
    fields (plain DSR, SRP's per-hop records) pay only their length
    prefixes. *)

val ipv6_header : int

(* manetsem: allow dead-export — wire-format contract: the per-field
   sizes are the documented vocabulary behind [size_of]; exporting them
   lets experiments compute overheads without re-deriving constants. *)
val addr_size : int
(* manetsem: allow dead-export — wire-format contract (see addr_size). *)
val seq_size : int
(* manetsem: allow dead-export — wire-format contract (see addr_size). *)
val challenge_size : int
(* manetsem: allow dead-export — wire-format contract (see addr_size). *)
val rn_size : int

val size_of : Messages.t -> int
(** Bytes on the wire for one transmission of the message. *)

val srr_entry_size : sig_size:int -> pk_size:int -> int
(** Bytes one intermediate hop adds to an RREQ's secure route record,
    given the signature scheme's sizes. *)
