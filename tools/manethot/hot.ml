(* manethot — hot-path allocation & complexity analyzer.  See hot.mli
   for the rule catalogue.  Built on compiler-libs only, over the shared
   analyzer runtime (tools/analyzer_common): hotness is declared in a
   committed hotpaths.sexp roster and propagated to transitive callees;
   the rules then flag scale-hostile patterns — per-call allocation,
   polymorphic compare/hash, O(n) list lookups, per-event partial
   application — inside the hot set only. *)

open Parsetree
module C = Analyzer_common.Common
open C

type finding = C.finding = {
  file : string;
  line : int;
  rule : string;
  msg : string;
}

let rules =
  [ "hot-alloc"; "hot-poly"; "hot-list"; "hot-partial"; "roster"; "parse" ]

(* Strict allow grammar, like manetdom: the directive may sit anywhere
   inside a comment and the rationale after the rule names is
   mandatory; a directive without one yields an unsuppressible
   "annotation" finding. *)
let scan_allows =
  C.scan_allows ~tool:"manethot" ~rules ~anywhere:true ~require_rationale:true

let mk_unit = C.mk_unit ~scan:scan_allows

(* ------------------------------------------------------------------ *)
(* Roster: the committed hotpaths.sexp.  One (Module function) pair per
   form; [;] starts a line comment.  Every entry must name an existing
   top-level function — stale entries are findings, so the roster can
   not silently rot as the tree is refactored. *)

type token = Lp of int | Rp of int | Atom of string * int

let tokenize text =
  let toks = ref [] in
  let line = ref 1 in
  let n = String.length text in
  let i = ref 0 in
  let buf = Buffer.create 16 in
  let flush () =
    if Buffer.length buf > 0 then begin
      toks := Atom (Buffer.contents buf, !line) :: !toks;
      Buffer.clear buf
    end
  in
  while !i < n do
    (match text.[!i] with
    | ';' ->
        flush ();
        while !i < n && text.[!i] <> '\n' do
          incr i
        done;
        decr i
    | '(' ->
        flush ();
        toks := Lp !line :: !toks
    | ')' ->
        flush ();
        toks := Rp !line :: !toks
    | ' ' | '\t' | '\r' -> flush ()
    | '\n' ->
        flush ();
        incr line
    | c -> Buffer.add_char buf c);
    incr i
  done;
  flush ();
  List.rev !toks

(* Returns (entries, errors): entries are (Module, fn, line). *)
let parse_roster text =
  let entries = ref [] and errors = ref [] in
  let err line msg = errors := (line, msg) :: !errors in
  let rec go = function
    | [] -> ()
    | Lp l :: Atom (m, _) :: Atom (f, _) :: Rp _ :: rest ->
        if m = "" || not (m.[0] >= 'A' && m.[0] <= 'Z') then
          err l (Printf.sprintf "module name %S must be capitalized" m)
        else entries := (m, f, l) :: !entries;
        go rest
    | Lp l :: rest ->
        err l "malformed entry: expected (Module function)";
        let rec skip = function
          | Rp _ :: r -> r
          | _ :: r -> skip r
          | [] -> []
        in
        go (skip rest)
    | Atom (a, l) :: rest ->
        err l (Printf.sprintf "stray atom %S outside an entry" a);
        go rest
    | Rp l :: rest ->
        err l "unmatched )";
        go rest
  in
  go (tokenize text);
  (List.rev !entries, List.rev !errors)

(* ------------------------------------------------------------------ *)
(* Hot set: roster seeds plus transitive callees.  A reference from a
   hot function to another analyzed top-level function makes the callee
   hot too — calls, but also closures installed as callbacks, which is
   exactly how event handlers reach the engine. *)

let rec is_function e =
  match e.pexp_desc with
  | Pexp_fun _ | Pexp_function _ | Pexp_newtype _ -> true
  | Pexp_constraint (x, _) | Pexp_open (_, x) -> is_function x
  | _ -> false

let rec peel_params e =
  match e.pexp_desc with
  | Pexp_fun (_, _, _, body) -> peel_params body
  | Pexp_newtype (_, body) -> peel_params body
  | Pexp_constraint (x, _) -> peel_params x
  | _ -> e

let referenced_fns fn_tbl b =
  let out = ref [] in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun self e ->
          (match e.pexp_desc with
          | Pexp_ident { txt; _ } ->
              let key =
                match resolve b.b_unit.u_aliases txt with
                | Some m, x -> (m, x)
                | None, x -> (b.b_mod, x)
              in
              if Hashtbl.mem fn_tbl key then out := key :: !out
          | _ -> ());
          Ast_iterator.default_iterator.expr self e);
    }
  in
  it.expr it b.b_expr;
  !out

let hot_fixpoint fn_tbl bindings seeds =
  let hot = Hashtbl.create 64 in
  List.iter (fun k -> Hashtbl.replace hot k ()) seeds;
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun b ->
        if Hashtbl.mem hot (b.b_mod, b.b_name) then
          List.iter
            (fun k ->
              if not (Hashtbl.mem hot k) then begin
                Hashtbl.replace hot k ();
                changed := true
              end)
            (referenced_fns fn_tbl b))
      bindings
  done;
  hot

(* ------------------------------------------------------------------ *)
(* Rules.  All walks run over hot function bodies only. *)

let list_linear =
  [
    "length"; "nth"; "mem"; "memq"; "assoc"; "assq"; "mem_assoc";
    "mem_assq"; "find"; "find_opt"; "exists"; "append"; "rev_append";
  ]

(* Generic-[Hashtbl] operations that hash or compare keys with the
   polymorphic primitives.  Functor instances ([Stbl.find] where
   [module Stbl = Hashtbl.Make (String)]) resolve to the instance name
   and are silent by construction — which is exactly the fix. *)
let generic_tbl_ops =
  [ "find"; "find_opt"; "mem"; "replace"; "add"; "remove"; "hash" ]

let alloc_builders =
  [
    ("Array", [ "make"; "create"; "init"; "of_list"; "copy"; "append"; "sub" ]);
    ("Bytes", [ "make"; "create"; "init"; "of_string"; "copy"; "sub" ]);
    ("Buffer", [ "create" ]);
    ("Queue", [ "create" ]);
    ("Hashtbl", [ "create" ]);
  ]

(* Callback argument position of the higher-order sinks checked by
   hot-partial: `First = first unlabelled argument, `Last = last. *)
let hof_sinks =
  [
    (("Engine", "schedule"), `Last);
    (("Engine", "schedule_at"), `Last);
    (("List", "iter"), `First);
    (("List", "map"), `First);
    (("List", "fold_left"), `First);
    (("Array", "iter"), `First);
    (("Array", "iteri"), `First);
    (("Hashtbl", "iter"), `First);
    (("Queue", "iter"), `First);
    (("Option", "iter"), `First);
  ]

let rec peel_wrap e =
  match e.pexp_desc with
  | Pexp_constraint (x, _) | Pexp_coerce (x, _, _) | Pexp_open (_, x) ->
      peel_wrap x
  | _ -> e

(* A constructed operand makes [=]/[<>] a structural comparison for
   sure; identifiers of unknown type are left alone. *)
let structured_operand e =
  match (peel_wrap e).pexp_desc with
  | Pexp_tuple _ | Pexp_record _ | Pexp_array _ -> true
  | Pexp_construct ({ txt; _ }, Some _) -> lid_last txt <> "()"
  | Pexp_construct ({ txt; _ }, None) ->
      List.mem (lid_last txt) [ "None"; "[]" ]
  | _ -> false

let nolabel_args args =
  List.filter_map
    (fun (lbl, a) ->
      match lbl with Asttypes.Nolabel -> Some a | _ -> None)
    args

let analyze_binding ~emit b =
  let who = b.b_mod ^ "." ^ b.b_name in
  let aliases = b.b_unit.u_aliases in
  let line_of loc = loc.Location.loc_start.Lexing.pos_lnum in
  let alloc loc what advice =
    emit (line_of loc) "hot-alloc"
      (Printf.sprintf "%s allocates %s per call on the hot path; %s" who what
         advice)
  in
  let check e =
    match e.pexp_desc with
    | Pexp_fun _ | Pexp_function _ | Pexp_newtype _ ->
        alloc e.pexp_loc "a closure"
          "hoist it out of the per-event path or flatten the event \
           representation"
    | Pexp_tuple _ ->
        alloc e.pexp_loc "a tuple"
          "flatten it into separate arguments or parallel arrays"
    | Pexp_record _ ->
        alloc e.pexp_loc "a record"
          "use a structure-of-arrays or reuse a preallocated cell"
    | Pexp_array (_ :: _) ->
        alloc e.pexp_loc "an array literal" "preallocate or reuse buffers"
    | Pexp_construct ({ txt = Longident.Lident "::"; _ }, Some _) ->
        alloc e.pexp_loc "a list cell"
          "iterate the source directly instead of materializing a list"
    | Pexp_lazy _ ->
        alloc e.pexp_loc "a lazy block" "evaluate eagerly or precompute"
    | Pexp_apply (head, args) -> (
        match head.pexp_desc with
        | Pexp_ident { txt; _ } -> (
            let callee = resolve aliases txt in
            (* hot-partial: a callback argument that is itself an
               application builds a fresh closure at every call. *)
            (match callee with
            | Some m, x -> (
                match List.assoc_opt (m, x) hof_sinks with
                | Some pos -> (
                    let cands = nolabel_args args in
                    let cb =
                      match (pos, cands) with
                      | `First, a :: _ -> Some a
                      | `Last, (_ :: _ as l) ->
                          Some (List.nth l (List.length l - 1))
                      | _, [] -> None
                    in
                    match cb with
                    | Some a when
                        (match (peel_wrap a).pexp_desc with
                        | Pexp_apply _ -> true
                        | _ -> false) ->
                        emit (line_of a.pexp_loc) "hot-partial"
                          (Printf.sprintf
                             "%s passes a partially applied callback to \
                              %s.%s; the closure is rebuilt every call — \
                              bind it once outside the hot path"
                             who m x)
                    | _ -> ())
                | None -> ())
            | _ -> ());
            match callee with
            | None, "ref" ->
                alloc head.pexp_loc "a ref cell"
                  "use a mutable field or a preallocated cell"
            | None, "^" ->
                alloc head.pexp_loc "a string (^ concatenation)"
                  "precompute the string or write into a reused Buffer"
            | None, "@" ->
                emit (line_of head.pexp_loc) "hot-list"
                  (Printf.sprintf
                     "%s appends lists with @ (O(n) copy) on the hot path; \
                      accumulate differently or use an indexed structure"
                     who)
            | None, ("compare" | "min" | "max") ->
                emit (line_of head.pexp_loc) "hot-poly"
                  (Printf.sprintf
                     "%s calls polymorphic %s on the hot path; use a \
                      monomorphic comparison (Int.compare, Float.compare, \
                      String.compare)"
                     who (lid_last txt))
            | Some "Stdlib", ("compare" | "min" | "max") ->
                emit (line_of head.pexp_loc) "hot-poly"
                  (Printf.sprintf
                     "%s calls polymorphic Stdlib.%s on the hot path; use a \
                      monomorphic comparison"
                     who (lid_last txt))
            | None, (("=" | "<>") as op)
              when List.exists structured_operand (List.map snd args) ->
                emit (line_of head.pexp_loc) "hot-poly"
                  (Printf.sprintf
                     "%s applies structural %s to a constructed value on the \
                      hot path; match on the shape or compare fields \
                      monomorphically"
                     who op)
            | Some "Hashtbl", op when List.mem op generic_tbl_ops ->
                emit (line_of head.pexp_loc) "hot-poly"
                  (Printf.sprintf
                     "%s uses polymorphic-hash Hashtbl.%s on the hot path; \
                      instantiate Hashtbl.Make over the key type"
                     who op)
            | Some "List", op when List.mem op list_linear ->
                emit (line_of head.pexp_loc) "hot-list"
                  (Printf.sprintf
                     "%s calls List.%s (O(n)) on the hot path; use an \
                      indexed or constant-time structure"
                     who op)
            | Some (("String" | "Printf" | "Format") as m), x
              when (m = "String" && (x = "concat" || x = "cat"))
                   || (m = "Printf" && x = "sprintf")
                   || (m = "Format" && x = "asprintf") ->
                alloc head.pexp_loc
                  (Printf.sprintf "strings (%s.%s)" m x)
                  "precompute the string or write into a reused Buffer"
            | Some m, x
              when List.exists
                     (fun (bm, xs) -> bm = m && List.mem x xs)
                     alloc_builders ->
                alloc head.pexp_loc (m ^ "." ^ x)
                  "preallocate once and reuse across calls"
            | _ -> ())
        | _ -> ())
    | _ -> ()
  in
  let rec walk e =
    check e;
    match e.pexp_desc with
    | Pexp_fun _ | Pexp_newtype _ -> walk (peel_params e)
    | Pexp_function cases ->
        List.iter
          (fun c ->
            (match c.pc_guard with Some g -> walk g | None -> ());
            walk c.pc_rhs)
          cases
    | _ -> List.iter walk (sub_expressions e)
  in
  let body = peel_params b.b_expr in
  match body.pexp_desc with
  | Pexp_function cases ->
      List.iter
        (fun c ->
          (match c.pc_guard with Some g -> walk g | None -> ());
          walk c.pc_rhs)
        cases
  | _ -> walk body

(* ------------------------------------------------------------------ *)
(* Assembly. *)

let fn_table bindings =
  let fn_tbl = Hashtbl.create 256 in
  List.iter
    (fun b ->
      if is_function b.b_expr then
        Hashtbl.replace fn_tbl (b.b_mod, b.b_name) ())
    bindings;
  fn_tbl

let seeds_of fn_tbl entries =
  List.filter_map
    (fun (m, f, _) -> if Hashtbl.mem fn_tbl (m, f) then Some (m, f) else None)
    entries

let analyze ~roster files =
  let roster_path, roster_text = roster in
  let units = List.map mk_unit files in
  let bindings = List.concat_map collect_bindings units in
  let fn_tbl = fn_table bindings in
  let entries, roster_errors = parse_roster roster_text in
  let roster_findings =
    List.map
      (fun (line, msg) ->
        { file = roster_path; line; rule = "roster"; msg })
      roster_errors
    @ List.filter_map
        (fun (m, f, line) ->
          if Hashtbl.mem fn_tbl (m, f) then None
          else
            Some
              {
                file = roster_path;
                line;
                rule = "roster";
                msg =
                  Printf.sprintf
                    "hotpaths entry %s.%s matches no top-level function in \
                     the analyzed tree; remove or fix the entry"
                    m f;
              })
        entries
  in
  let hot = hot_fixpoint fn_tbl bindings (seeds_of fn_tbl entries) in
  let out = ref [] in
  List.iter
    (fun b ->
      if Hashtbl.mem hot (b.b_mod, b.b_name) && is_function b.b_expr then
        let emit line rule msg =
          out := { file = b.b_unit.u_path; line; rule; msg } :: !out
        in
        analyze_binding ~emit b)
    bindings;
  let findings =
    parse_failures units
    @ roster_findings
    @ !out
    @ annotation_findings ~tool:"manethot" units
  in
  filter_suppressed ~protect:[ "annotation" ] units findings

let hot_set ~roster files =
  let units = List.map mk_unit files in
  let bindings = List.concat_map collect_bindings units in
  let fn_tbl = fn_table bindings in
  let entries, _ = parse_roster roster in
  let hot = hot_fixpoint fn_tbl bindings (seeds_of fn_tbl entries) in
  Hashtbl.fold (fun k () acc -> k :: acc) hot []
  |> List.sort compare
