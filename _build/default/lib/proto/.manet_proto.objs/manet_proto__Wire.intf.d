lib/proto/wire.mli: Messages
