lib/aodv/aodv.mli: Manet_crypto Manet_ipv6 Manet_proto Manet_sim
