lib/sim/stats.ml: Array Float Format Hashtbl List String
