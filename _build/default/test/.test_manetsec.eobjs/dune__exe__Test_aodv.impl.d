test/test_aodv.ml: Alcotest Manet_crypto Manet_ipv6 Manet_sim Manetsec Printf String
