lib/proto/messages.ml: Format List Manet_ipv6 Option String
