(* E1-E6: the simulation evaluation.  The paper publishes no measurement
   tables, so these are the community-standard experiments for
   secure-MANET-routing papers of its era (delivery/overhead/latency
   under attack), as laid out in DESIGN.md; EXPERIMENTS.md records the
   qualitative expectations next to the measured numbers. *)

module Prng = Manetsec.Crypto.Prng
module Address = Manetsec.Ipv6.Address
module Engine = Manetsec.Sim.Engine
module Stats = Manetsec.Sim.Stats
module Net = Manetsec.Sim.Net
module Mobility = Manetsec.Sim.Mobility
module Identity = Manetsec.Proto.Identity
module Directory = Manetsec.Proto.Directory
module Adversary = Manetsec.Adversary
module Credit = Manetsec.Credit
module Scenario = Manetsec.Scenario

let stat s name = Stats.get (Scenario.stats s) name

(* Pick [k] adversary indices deterministically, avoiding node 0 (DNS)
   and the flow endpoints. *)
let pick_adversaries ~seed ~n ~k ~protect =
  let g = Prng.create ~seed:(seed * 7919) in
  let candidates =
    Array.of_list
      (List.filter (fun x -> not (List.mem x protect)) (List.init (n - 1) (fun x -> x + 1)))
  in
  Prng.shuffle g candidates;
  Array.to_list (Array.sub candidates 0 k)

let standard_flows ~n ~seed ~count =
  let g = Prng.create ~seed:(seed * 31 + 17) in
  List.init count (fun _ ->
      let a = 1 + Prng.int g (n - 1) in
      let rec pick_b () =
        let b = 1 + Prng.int g (n - 1) in
        if b = a then pick_b () else b
      in
      (a, pick_b ()))

(* --- E1: delivery ratio vs black-hole fraction -------------------------- *)

type e1_variant = {
  v_name : string;
  v_protocol : Scenario.protocol;
  v_use_acks : bool;
  v_credits : bool;
  v_probes : bool;
  v_forge : bool;  (* do the black holes also forge route replies? *)
}

let e1_variants =
  [
    { v_name = "DSR, silent droppers"; v_protocol = Scenario.Plain_dsr; v_use_acks = false; v_credits = false; v_probes = false; v_forge = false };
    { v_name = "DSR, forging black holes"; v_protocol = Scenario.Plain_dsr; v_use_acks = false; v_credits = false; v_probes = false; v_forge = true };
    { v_name = "secure, forging black holes"; v_protocol = Scenario.Secure; v_use_acks = true; v_credits = true; v_probes = true; v_forge = true };
    { v_name = "secure droppers, credits off"; v_protocol = Scenario.Secure; v_use_acks = true; v_credits = false; v_probes = false; v_forge = false };
    { v_name = "secure droppers, credits+probes"; v_protocol = Scenario.Secure; v_use_acks = true; v_credits = true; v_probes = true; v_forge = false };
  ]

let e1_run ~seed ~fraction variant =
  let n = 36 in
  let flows = standard_flows ~n ~seed ~count:8 in
  let protect = List.concat_map (fun (a, b) -> [ a; b ]) flows in
  let k = int_of_float (Float.round (fraction *. float_of_int n)) in
  (* The §3.4 black hole: with [v_forge] it also advertises fake routes;
     without, it participates honestly in discovery and silently drops
     the data it attracts. *)
  let behavior = { Adversary.blackhole with forge_rrep = variant.v_forge } in
  let adversaries =
    List.map (fun idx -> (idx, behavior)) (pick_adversaries ~seed ~n ~k ~protect)
  in
  let params =
    {
      Scenario.default_params with
      n;
      seed;
      range = 250.0;
      topology = Scenario.Random { width = 900.0; height = 900.0 };
      (* Mobility keeps discovery active, which is where route choice
         (credits) matters. *)
      mobility =
        Mobility.Random_waypoint { min_speed = 1.0; max_speed = 10.0; pause = 2.0 };
      protocol = variant.v_protocol;
      adversaries;
      dsr_config =
        { Scenario.default_params.Scenario.dsr_config with use_acks = variant.v_use_acks };
      secure_config =
        {
          Scenario.default_params.Scenario.secure_config with
          use_credits = variant.v_credits;
          probe_on_timeout = variant.v_probes;
        };
    }
  in
  let s = Scenario.create params in
  Scenario.start_cbr s ~flows ~interval:0.5 ~duration:60.0 ();
  Scenario.run s ~until:120.0;
  let timeouts =
    float_of_int (stat s "data.timeout")
    /. float_of_int (max 1 (stat s "data.delivered"))
  in
  (Scenario.delivery_ratio s, timeouts)

let e1 () =
  Util.heading "E1 -- delivery ratio vs fraction of black-hole nodes";
  print_endline
    "(36 nodes, random 900x900 field, random-waypoint mobility, 8 CBR flows,
    \ 60 s, mean of 3 seeds; 'timeouts' = silently lost transmissions per
    \ delivered packet, the cost retries pay to keep delivery up)";
  let fractions = [ 0.0; 0.1; 0.2; 0.3; 0.4 ] in
  let cells =
    List.map
      (fun variant ->
        List.map
          (fun fr ->
            let runs = List.map (fun seed -> e1_run ~seed ~fraction:fr variant) [ 1; 2; 3 ] in
            ( Util.mean (List.map fst runs), Util.mean (List.map snd runs) ))
          fractions)
      e1_variants
  in
  let header =
    "variant" :: List.map (fun f -> Printf.sprintf "%d%%" (int_of_float (f *. 100.))) fractions
  in
  print_endline "delivery ratio:";
  Util.print_table ~header
    (List.map2
       (fun variant row -> variant.v_name :: List.map (fun (d, _) -> Util.f2 d) row)
       e1_variants cells);
  print_endline "timeouts per delivered packet:";
  Util.print_table ~header
    (List.map2
       (fun variant row -> variant.v_name :: List.map (fun (_, t) -> Util.f2 t) row)
       e1_variants cells)

(* --- E2: routing overhead vs network size ------------------------------- *)

let e2_run ~n ~protocol ~suite =
  let flows = standard_flows ~n ~seed:5 ~count:6 in
  let params =
    {
      Scenario.default_params with
      n;
      seed = 5;
      range = 250.0;
      topology =
        Scenario.Random
          { width = 200.0 *. sqrt (float_of_int n); height = 200.0 *. sqrt (float_of_int n) };
      protocol;
      suite;
    }
  in
  let s = Scenario.create params in
  Scenario.start_cbr s ~flows ~interval:0.5 ~duration:30.0 ();
  Scenario.run s ~until:90.0;
  let delivered = max 1 (stat s "data.delivered") in
  let signs, verifies = Scenario.crypto_ops s in
  ( Scenario.delivery_ratio s,
    float_of_int (Scenario.control_bytes s) /. float_of_int delivered,
    float_of_int (Scenario.control_packets s) /. float_of_int delivered,
    float_of_int (signs + verifies) /. float_of_int delivered )

let e2 () =
  Util.heading "E2 -- routing overhead vs network size";
  print_endline "(density-held random fields, 6 CBR flows, 30 s; per delivered packet)";
  let sizes = [ 10; 20; 40; 60; 80 ] in
  let rows =
    List.concat_map
      (fun n ->
        let d1, b1, p1, _ = e2_run ~n ~protocol:Scenario.Plain_dsr ~suite:Scenario.Mock_suite in
        let ds, bs, ps, _ = e2_run ~n ~protocol:Scenario.Srp_protocol ~suite:Scenario.Mock_suite in
        let d2, b2, p2, c2 = e2_run ~n ~protocol:Scenario.Secure ~suite:Scenario.Mock_suite in
        let rsa_row =
          if n <= 40 then begin
            let d3, b3, p3, c3 = e2_run ~n ~protocol:Scenario.Secure ~suite:(Scenario.Rsa_suite 256) in
            [ [ Util.i n; "secure+rsa256"; Util.f2 d3; Util.f1 b3; Util.f2 p3; Util.f2 c3 ] ]
          end
          else []
        in
        [
          [ Util.i n; "DSR"; Util.f2 d1; Util.f1 b1; Util.f2 p1; "-" ];
          [ Util.i n; "SRP-style"; Util.f2 ds; Util.f1 bs; Util.f2 ps; "-" ];
          [ Util.i n; "secure"; Util.f2 d2; Util.f1 b2; Util.f2 p2; Util.f2 c2 ];
        ]
        @ rsa_row)
      sizes
  in
  Util.print_table
    ~header:[ "nodes"; "protocol"; "delivery"; "ctl bytes/pkt"; "ctl pkts/pkt"; "crypto ops/pkt" ]
    rows

(* --- E3: route discovery latency vs path length -------------------------- *)

let e3_run ~hops ~protocol ~use_cache_replies ~suite =
  (* A chain of hops+1 nodes; discovery from end to end. *)
  let n = hops + 1 in
  let params =
    {
      Scenario.default_params with
      n;
      seed = 5;
      range = 150.0;
      topology = Scenario.Chain { spacing = 100.0 };
      protocol;
      suite;
      with_dns = false;
      secure_config =
        { Scenario.default_params.Scenario.secure_config with use_cache_replies };
      dsr_config =
        { Scenario.default_params.Scenario.dsr_config with use_cache_replies };
    }
  in
  let s = Scenario.create params in
  let t0 = Engine.now (Scenario.engine s) in
  let done_at = ref None in
  Scenario.discover s ~src:0 ~dst:(n - 1) (fun r ->
      if r <> None then done_at := Some (Engine.now (Scenario.engine s)));
  Scenario.run s ~until:30.0;
  match !done_at with
  | Some t1 ->
      (* Then measure one data packet's one-way latency. *)
      Scenario.send s ~src:0 ~dst:(n - 1) ();
      Scenario.run s ~until:60.0;
      let lat = Option.value ~default:nan (Scenario.mean_latency s) in
      (Some ((t1 -. t0) *. 1000.0), lat *. 1000.0)
  | None -> (None, nan)

let e3 () =
  Util.heading "E3 -- route discovery latency vs path length";
  print_endline "(chain topologies, end-to-end discovery; milliseconds)";
  let rows =
    List.map
      (fun hops ->
        let fmt = function Some v -> Util.f1 v | None -> "fail" in
        let d_dsr, l_dsr = e3_run ~hops ~protocol:Scenario.Plain_dsr ~use_cache_replies:true ~suite:Scenario.Mock_suite in
        let d_sec, l_sec = e3_run ~hops ~protocol:Scenario.Secure ~use_cache_replies:true ~suite:Scenario.Mock_suite in
        let d_rsa, _ = e3_run ~hops ~protocol:Scenario.Secure ~use_cache_replies:true ~suite:(Scenario.Rsa_suite 256) in
        [
          Util.i hops;
          fmt d_dsr;
          Util.f1 l_dsr;
          fmt d_sec;
          Util.f1 l_sec;
          fmt d_rsa;
        ])
      [ 2; 3; 4; 5; 6; 8; 10 ]
  in
  Util.print_table
    ~header:
      [ "hops"; "DSR disc ms"; "DSR data ms"; "secure disc ms"; "secure data ms"; "secure+rsa256 disc ms" ]
    rows;
  (* CREP ablation (DESIGN.md section 5): a second requester's discovery
     with and without cached-route replies. *)
  Util.subheading "CREP ablation: second requester's discovery latency";
  let crep_run ~hops ~use_cache_replies =
    let n = hops + 1 in
    let params =
      {
        Scenario.default_params with
        n; seed = 5; range = 150.0;
        topology = Scenario.Chain { spacing = 100.0 };
        with_dns = false;
        secure_config =
          { Scenario.default_params.Scenario.secure_config with use_cache_replies };
      }
    in
    let s = Scenario.create params in
    (* First requester warms the mid-chain caches. *)
    let r1 = ref None in
    Scenario.discover s ~src:1 ~dst:(n - 1) (fun r -> r1 := Some r);
    Scenario.run s ~until:10.0;
    let t0 = Engine.now (Scenario.engine s) in
    let done_at = ref None in
    Scenario.discover s ~src:0 ~dst:(n - 1) (fun r ->
        if r <> None then done_at := Some (Engine.now (Scenario.engine s)));
    Scenario.run s ~until:30.0;
    match !done_at with
    | Some t1 -> Some ((t1 -. t0) *. 1000.0)
    | None -> None
  in
  let rows =
    List.map
      (fun hops ->
        let fmt = function Some v -> Util.f1 v | None -> "fail" in
        [
          Util.i hops;
          fmt (crep_run ~hops ~use_cache_replies:true);
          fmt (crep_run ~hops ~use_cache_replies:false);
        ])
      [ 4; 6; 8; 10 ]
  in
  Util.print_table ~header:[ "hops"; "CREP on (ms)"; "CREP off (ms)" ] rows

(* --- E4: attack-resistance matrix (§4) ----------------------------------- *)

type e4_result = { attacked : bool; succeeded : bool; evidence : string }

let e4_grid ~protocol ~adversaries ~flows ~seed =
  let params =
    {
      Scenario.default_params with
      n = 9;
      seed;
      range = 150.0;
      topology = Scenario.Grid { cols = 3; spacing = 100.0 };
      protocol;
      adversaries;
      dsr_config =
        { Scenario.default_params.Scenario.dsr_config with use_acks = false };
    }
  in
  let s = Scenario.create params in
  Scenario.start_cbr s ~flows ~interval:0.5 ~duration:20.0 ();
  Scenario.run s ~until:80.0;
  s

let e4_blackhole protocol =
  let s = e4_grid ~protocol ~adversaries:[ (4, Adversary.blackhole) ] ~flows:[ (0, 8) ] ~seed:11 in
  let dr = Scenario.delivery_ratio s in
  {
    attacked = stat s "attack.rrep_forged" >= 1;
    succeeded = dr < 0.5;
    evidence = Printf.sprintf "delivery %.2f, swallowed %d" dr (stat s "attack.data_dropped");
  }

let e4_impersonation protocol =
  let params_probe =
    { Scenario.default_params with n = 9; seed = 11; range = 150.0;
      topology = Scenario.Grid { cols = 3; spacing = 100.0 }; protocol }
  in
  let probe = Scenario.create params_probe in
  let victim = Scenario.address_of probe 3 in
  (* The victim sleeps, so a route naming it is pure fabrication. *)
  let s =
    e4_grid ~protocol
      ~adversaries:[ (4, Adversary.impersonator victim); (3, Adversary.sleeper) ]
      ~flows:[ (1, 7) ] ~seed:11
  in
  (* success = a route containing the victim's forged presence was accepted *)
  let has_victim routes = List.exists (List.exists (Address.equal victim)) routes in
  let poisoned_accepted =
    match (Scenario.node s 1).Scenario.routing with
    | Scenario.Dsr_agent agent ->
        has_victim (Manetsec.Dsr.cached_routes agent ~dst:(Scenario.address_of s 7))
    | Scenario.Secure_agent agent ->
        has_victim
          (Manetsec.Secure_routing.cached_routes agent ~dst:(Scenario.address_of s 7))
    | Scenario.Srp_agent agent ->
        has_victim (Manetsec.Srp.cached_routes agent ~dst:(Scenario.address_of s 7))
  in
  {
    attacked = stat s "attack.impersonations" >= 1;
    succeeded = poisoned_accepted;
    evidence =
      Printf.sprintf "poisoned route cached: %b, rreq rejected: %d" poisoned_accepted
        (stat s "secure.rreq_rejected");
  }

let e4_replay protocol =
  let params =
    { Scenario.default_params with n = 5; seed = 7; range = 150.0;
      topology = Scenario.Chain { spacing = 100.0 }; protocol;
      adversaries = [ (2, Adversary.replayer) ];
      secure_config =
        { Scenario.default_params.Scenario.secure_config with use_cache_replies = false };
      dsr_config =
        { Scenario.default_params.Scenario.dsr_config with use_cache_replies = false } }
  in
  let s = Scenario.create params in
  let r1 = ref None and r2 = ref None in
  Scenario.discover s ~src:1 ~dst:4 (fun r -> r1 := Some r);
  Scenario.run s ~until:10.0;
  Scenario.discover s ~src:0 ~dst:4 (fun r -> r2 := Some r);
  Scenario.run s ~until:30.0;
  let rejected = stat s "secure.rrep_rejected" + stat s "srp.rrep_rejected" in
  {
    attacked = stat s "attack.replayed" >= 1;
    (* success = the stale reply was swallowed without rejection *)
    succeeded = stat s "attack.replayed" >= 1 && rejected = 0;
    evidence = Printf.sprintf "replays %d, rejected %d" (stat s "attack.replayed") rejected;
  }

let e4_rerr_forgery protocol =
  let params =
    { Scenario.default_params with n = 4; seed = 7; range = 150.0;
      topology = Scenario.Chain { spacing = 100.0 }; protocol;
      adversaries = [ (2, Adversary.rerr_spammer ~every:0.4) ] }
  in
  let s = Scenario.create params in
  Scenario.start_cbr s ~flows:[ (1, 3) ] ~interval:0.5 ~duration:30.0 ();
  Scenario.run s ~until:60.0;
  let suspected = stat s "secure.hostile_suspected" in
  {
    attacked = stat s "attack.rerr_forged" >= 3;
    (* The paper accepts that an on-route reporter can lie; success for
       the attacker means lying *without ever being identified*. *)
    succeeded = stat s "attack.rerr_forged" >= 3 && suspected = 0;
    evidence =
      Printf.sprintf "forged %d, reporter flagged %d times" (stat s "attack.rerr_forged") suspected;
  }

let e4_churn protocol =
  let s =
    e4_grid ~protocol
      ~adversaries:[ (4, Adversary.identity_churner ~every:8.0) ]
      ~flows:[ (1, 7) ] ~seed:13
  in
  let changes = stat s "attack.identity_changes" in
  (* success for the churner = escaping blame while still dropping
     traffic: under credits each new identity stays at zero standing, so
     we count it defeated when the source's traffic still flows. *)
  let dr = Scenario.delivery_ratio s in
  {
    attacked = changes >= 2;
    succeeded = dr < 0.5;
    evidence = Printf.sprintf "%d identities, delivery %.2f" changes dr;
  }

let e4 () =
  Util.heading "E4 -- attack-resistance matrix (the Section 4 analysis, executed)";
  let attacks =
    [
      ("black hole", e4_blackhole);
      ("impersonation", e4_impersonation);
      ("replayed RREP", e4_replay);
      ("forged RERR", e4_rerr_forgery);
      ("identity churn", e4_churn);
    ]
  in
  let rows =
    List.concat_map
      (fun (name, f) ->
        List.map
          (fun (pname, protocol) ->
            let r = f protocol in
            [
              name;
              pname;
              (if r.attacked then "yes" else "NO");
              (if r.succeeded then "SUCCEEDS" else "defeated");
              r.evidence;
            ])
          [
            ("plain DSR", Scenario.Plain_dsr);
            ("SRP-style", Scenario.Srp_protocol);
            ("secure", Scenario.Secure);
          ])
      attacks
  in
  Util.print_table
    ~header:[ "attack"; "protocol"; "attempted"; "outcome"; "evidence" ]
    rows

(* --- E5: credit convergence over time ------------------------------------ *)

let e5 () =
  Util.heading "E5 -- credit convergence and routing around hostiles";
  print_endline
    "(3x4 grid, black hole at node 5 = the unique shortest relay between\n\
    \ the endpoints of flow 0<->10; per-10 s windows)";
  let adversaries = [ (5, { Adversary.blackhole with forge_rrep = false }) ] in
  let params =
    {
      Scenario.default_params with
      n = 12;
      seed = 3;
      range = 150.0;
      topology = Scenario.Grid { cols = 4; spacing = 100.0 };
      adversaries;
    }
  in
  let s = Scenario.create params in
  Scenario.start_cbr s ~flows:[ (0, 10); (10, 0) ] ~interval:0.25 ~duration:80.0 ();
  let bh = Scenario.address_of s 5 in
  let source_credits () =
    match (Scenario.node s 0).Scenario.routing with
    | Scenario.Secure_agent agent -> Manetsec.Secure_routing.credits agent
    | _ -> assert false
  in
  let last = ref 0 in
  let rows = ref [] in
  for w = 1 to 8 do
    Scenario.run s ~until:(float_of_int w *. 10.0);
    let d = stat s "data.delivered" in
    let window = d - !last in
    last := d;
    let credits = source_credits () in
    let best_honest =
      List.fold_left
        (fun acc (a, v) -> if Address.equal a bh then acc else max acc v)
        0.0 (Credit.snapshot credits)
    in
    rows :=
      [
        Printf.sprintf "%d-%ds" ((w - 1) * 10) (w * 10);
        Util.i window;
        Util.f1 (Credit.get credits bh);
        Util.f1 best_honest;
        Util.i (stat s "secure.hostile_suspected");
      ]
      :: !rows
  done;
  Util.print_table
    ~header:[ "window"; "delivered"; "blackhole credit"; "best honest credit"; "suspected" ]
    (List.rev !rows);
  Printf.printf "final delivery ratio: %.2f\n" (Scenario.delivery_ratio s)

(* --- E6: secure DAD cost and correctness ---------------------------------- *)

let e6_run ~n ~seed ~force_collision =
  let params =
    {
      Scenario.default_params with
      n;
      seed;
      range = 250.0;
      topology =
        Scenario.Random
          { width = 180.0 *. sqrt (float_of_int n); height = 180.0 *. sqrt (float_of_int n) };
    }
  in
  let s = Scenario.create params in
  if force_collision then begin
    (* The last node joins with the first host's address. *)
    let victim = Scenario.address_of s 1 in
    let joiner = Scenario.node s (n - 1) in
    let dir = joiner.Scenario.ctx.Manetsec.Proto.Node_ctx.directory in
    Directory.unregister dir (Scenario.address_of s (n - 1)) (n - 1);
    joiner.Scenario.identity.Identity.address <- victim;
    Directory.register dir victim (n - 1)
  end;
  let t0 = Engine.now (Scenario.engine s) in
  Scenario.bootstrap ~stagger:0.3 s;
  let t1 = Engine.now (Scenario.engine s) in
  ( stat s "dad.configured",
    stat s "tx.areq",
    stat s "dad.collision",
    stat s "dns.registered",
    t1 -. t0 )

let e6 () =
  Util.heading "E6 -- secure DAD cost and duplicate detection";
  print_endline "(staggered joins, 0.3 s apart; AREQ transmissions count every relay)";
  let rows =
    List.map
      (fun n ->
        let configured, areqs, _, registered, _ = e6_run ~n ~seed:9 ~force_collision:false in
        let _, _, collisions, _, _ = e6_run ~n ~seed:9 ~force_collision:true in
        [
          Util.i n;
          Util.i configured;
          Util.i areqs;
          Util.f1 (float_of_int areqs /. float_of_int (max 1 configured));
          Util.i registered;
          (if collisions >= 1 then "detected" else "MISSED");
        ])
      [ 10; 20; 40; 80 ]
  in
  Util.print_table
    ~header:
      [ "nodes"; "configured"; "AREQ tx"; "AREQ tx per join"; "names registered"; "forced duplicate" ]
    rows

(* --- E7: beyond source routing -- AODV / SAODV comparison ---------------- *)

module Aodv_world = Manetsec.Aodv_world
module Aodv_adversary = Manetsec.Aodv_adversary

let e7_aodv_run ~seed ~fraction ~secure ~forge =
  let n = 36 in
  let g = Prng.create ~seed:(seed * 131) in
  let flows =
    List.init 8 (fun _ ->
        let a = Prng.int g n in
        let rec other () = let b = Prng.int g n in if b = a then other () else b in
        (a, other ()))
  in
  let protect = List.concat_map (fun (a, b) -> [ a; b ]) flows in
  let k = int_of_float (Float.round (fraction *. float_of_int n)) in
  let behavior =
    if forge then Aodv_adversary.blackhole else Aodv_adversary.silent_dropper
  in
  let adversaries =
    List.filter (fun x -> not (List.mem x protect)) (List.init n Fun.id)
    |> (fun pool ->
         let arr = Array.of_list pool in
         Prng.shuffle g arr;
         Array.to_list (Array.sub arr 0 (min k (Array.length arr))))
    |> List.map (fun i -> (i, behavior))
  in
  let w =
    Aodv_world.create
      {
        Aodv_world.default_params with
        n;
        seed;
        range = 250.0;
        secure;
        topology = `Random (900.0, 900.0);
        adversaries;
      }
  in
  Aodv_world.start_cbr w ~flows ~interval:0.5 ~duration:60.0 ();
  Aodv_world.run w ~until:120.0;
  Aodv_world.delivery_ratio w

let e7_secure_dsr_run ~seed ~fraction ~forge =
  let variant =
    { v_name = ""; v_protocol = Scenario.Secure; v_use_acks = true;
      v_credits = true; v_probes = true; v_forge = forge }
  in
  (* reuse the E1 machinery but on a static field, like the AODV runs *)
  ignore variant;
  let n = 36 in
  let flows = standard_flows ~n ~seed ~count:8 in
  let protect = List.concat_map (fun (a, b) -> [ a; b ]) flows in
  let k = int_of_float (Float.round (fraction *. float_of_int n)) in
  let behavior = { Adversary.blackhole with forge_rrep = forge } in
  let adversaries =
    List.map (fun idx -> (idx, behavior)) (pick_adversaries ~seed ~n ~k ~protect)
  in
  let params =
    {
      Scenario.default_params with
      n; seed; range = 250.0;
      topology = Scenario.Random { width = 900.0; height = 900.0 };
      adversaries;
    }
  in
  let s = Scenario.create params in
  Scenario.start_cbr s ~flows ~interval:0.5 ~duration:60.0 ();
  Scenario.run s ~until:120.0;
  (Scenario.delivery_ratio s, stat s "secure.hostile_suspected")

let e7 () =
  Util.heading "E7 -- beyond source routing: AODV vs SAODV vs secure DSR";
  print_endline
    "(36 nodes, static random field, 8 CBR flows, 20% adversaries, mean of 3\n\
    \ seeds.  'names culprits' = the protocol can identify which host\n\
    \ misbehaved -- the tracking capability the paper keeps by choosing\n\
    \ source routing, and loses in a distance-vector translation.)";
  let seeds = [ 1; 2; 3 ] in
  let fraction = 0.2 in
  let mean f = Util.mean (List.map f seeds) in
  let aodv_forge = mean (fun seed -> e7_aodv_run ~seed ~fraction ~secure:false ~forge:true) in
  let saodv_forge = mean (fun seed -> e7_aodv_run ~seed ~fraction ~secure:true ~forge:true) in
  let aodv_drop = mean (fun seed -> e7_aodv_run ~seed ~fraction ~secure:false ~forge:false) in
  let saodv_drop = mean (fun seed -> e7_aodv_run ~seed ~fraction ~secure:true ~forge:false) in
  let dsr_forge = List.map (fun seed -> e7_secure_dsr_run ~seed ~fraction ~forge:true) seeds in
  let dsr_drop = List.map (fun seed -> e7_secure_dsr_run ~seed ~fraction ~forge:false) seeds in
  let mean_fst l = Util.mean (List.map fst l) in
  let any_suspects l = List.exists (fun (_, s) -> s > 0) l in
  Util.print_table
    ~header:[ "protocol"; "forging black holes"; "silent droppers"; "names culprits" ]
    [
      [ "AODV"; Util.f2 aodv_forge; Util.f2 aodv_drop; "no" ];
      [ "SAODV-style"; Util.f2 saodv_forge; Util.f2 saodv_drop; "no" ];
      [ "secure DSR (paper)"; Util.f2 (mean_fst dsr_forge); Util.f2 (mean_fst dsr_drop);
        (if any_suspects dsr_forge || any_suspects dsr_drop then "yes" else "no") ];
    ]

let run () =
  e1 ();
  e2 ();
  e3 ();
  e4 ();
  e5 ();
  e6 ();
  e7 ()
