(** A small, dependency-free JSON codec for the observability layer.

    The printer is {e canonical}: a given value always renders to the
    same bytes (fields keep caller order, floats go through one fixed
    formatter), which is what makes the JSONL trace export byte-stable
    across replays of the same seed.  The parser accepts standard JSON
    with the one restriction that [\u] escapes above U+00FF are
    rejected (our own exports never produce them). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string
(** Raised by {!parse} with an offset-prefixed description. *)

val to_string : t -> string
val to_buffer : Buffer.t -> t -> unit

val float_str : float -> string
(** The canonical float rendering used by the printer: integral values
    with magnitude below 1e15 print as ["<n>.0"], everything else via
    [%.12g].  Raises [Invalid_argument] on NaN or the infinities — they
    have no JSON encoding, and a canonical printer must fail loudly
    rather than emit unparseable bytes.  {!to_string} / {!to_buffer}
    inherit this behaviour for [Float] atoms. *)

val parse : string -> t
(** Parse one complete JSON document.  Raises {!Parse_error}. *)

(** {1 Accessors} *)

val member : string -> t -> t option
(** Field of an [Obj]; [None] on missing field or non-object. *)

val to_int_opt : t -> int option
val to_float_opt : t -> float option
(** Accepts both [Float] and [Int]. *)

val to_string_opt : t -> string option
val to_list_opt : t -> t list option
