.PHONY: all build lint test bench scenarios perf benchgate clean

all: build lint test

build:
	dune build

# All analyzers: manetlint (lexical), manetsem (AST-level semantic
# dataflow), manetdom (domain safety), manethot (hot-path allocation &
# complexity), plus `manetsim scenario check` over the committed
# example scenarios.  Fails on any finding not pinned in the
# analyzers' baselines.
lint:
	dune build @lint

test:
	dune runtest

bench:
	dune exec bench/main.exe

# Validate and smoke-run every committed scenario file.
scenarios:
	dune exec bin/manetsim.exe -- scenario check examples/scenarios/*.scn
	mkdir -p _scn_out
	for f in examples/scenarios/*.scn; do \
	  dune exec bin/manetsim.exe -- run --scenario $$f --out-dir _scn_out || exit 1; \
	done

# Regenerate this PR's perf snapshot and gate it against the previous
# PR's committed one (hard-fails only on matching host core counts).
perf:
	dune exec bench/main.exe -- perf

benchgate: perf
	dune exec tools/benchgate/main.exe -- BENCH_9.json BENCH_10.json

benchtrend:
	dune exec tools/benchtrend/main.exe -- BENCH_6.json BENCH_7.json BENCH_8.json BENCH_9.json BENCH_10.json

clean:
	dune clean
