(* Outdoor event (§3.2's motivating scenario): the organizers run a
   public server with a pre-provisioned DNS entry; attendees join ad hoc,
   resolve the server by name with a verified DNS lookup, and talk to it.
   One attendee tries to impersonate the server; another legitimately
   changes its own IP address mid-event while keeping its key pair.

   Run with:  dune exec examples/outdoor_event.exe *)

module Scenario = Manetsec.Scenario
module Stats = Manetsec.Sim.Stats
module Address = Manetsec.Ipv6.Address
module Dns = Manetsec.Dns
module Dns_client = Manetsec.Dns_client
module Identity = Manetsec.Proto.Identity

let () =
  let params =
    {
      Scenario.default_params with
      n = 12;
      seed = 77;
      topology = Scenario.Random { width = 500.0; height = 500.0 };
    }
  in
  let s = Scenario.create params in
  let dns = Option.get (Scenario.dns_server s) in

  (* The event's public server is node 1; its (name, address) mapping is
     placed at the DNS *before* network formation, so nobody can claim
     the name or the address later. *)
  let server_addr = Scenario.address_of s 1 in
  Dns.preload dns ~name:"event-server" server_addr;
  Printf.printf "Pre-provisioned: event-server -> %s\n"
    (Address.to_string server_addr);

  (* Attendees arrive and bootstrap. *)
  Scenario.bootstrap s;
  Printf.printf "%d attendees configured; DNS now holds %d entries\n"
    (Array.length (Scenario.nodes s) - 1)
    (List.length (Dns.entries dns));

  (* Attendee 7 has the "stronger security demand" of §1: before talking
     to the server it verifies the name binding with the DNS (the reply
     is signed under the pre-distributed DNS key). *)
  let resolved = ref None in
  Scenario.discover s ~src:7 ~dst:0 (fun route ->
      match route with
      | Some route ->
          let client = (Scenario.node s 7).Scenario.dns_client in
          Dns_client.query client ~route ~name:"event-server"
            ~callback:(fun r -> resolved := Some r)
      | None -> prerr_endline "no route to the DNS");
  Scenario.run s ~until:Float.max_float;
  (match !resolved with
  | Some (Some addr) when Address.equal addr server_addr ->
      Printf.printf "Attendee 7 verified event-server at %s\n"
        (Address.to_string addr)
  | Some (Some addr) ->
      Printf.printf "UNEXPECTED: verified binding to %s\n" (Address.to_string addr)
  | _ -> print_endline "lookup failed");

  (* Talk to the server. *)
  Scenario.start_cbr s ~flows:[ (7, 1) ] ~interval:0.25 ~duration:10.0 ();
  Scenario.run s ~until:(Scenario.Engine.now (Scenario.engine s) +. 30.0);

  (* A rogue attendee (node 9) tries to take over the server's name by
     re-registering it during a fresh DAD — first-come-first-served plus
     the permanent entry make this futile. *)
  let rogue = Scenario.node s 9 in
  let outcome = ref None in
  Manetsec.Dad.start rogue.Scenario.dad ~dn:"event-server"
    ~on_complete:(fun o -> outcome := Some o)
    ();
  Scenario.run s ~until:Float.max_float;
  (match !outcome with
  | Some (Manetsec.Dad.Configured { name; _ }) ->
      Printf.printf "Rogue re-registration got name %s (not event-server)\n"
        (Option.value ~default:"-" name)
  | Some (Manetsec.Dad.Failed r) -> Printf.printf "Rogue DAD failed: %s\n" r
  | None -> print_endline "rogue DAD incomplete");
  (match Dns.lookup dns "event-server" with
  | Some a when Address.equal a server_addr ->
      print_endline "event-server mapping intact"
  | _ -> print_endline "UNEXPECTED: mapping changed");

  (* Attendee 5 changes its IP address mid-event (§3.2): the DNS
     challenges it to prove ownership of both old and new CGAs under the
     same key pair. *)
  let attendee = Scenario.node s 5 in
  let before = Scenario.address_of s 5 in
  let changed = ref None in
  Scenario.discover s ~src:5 ~dst:0 (fun route ->
      match route with
      | Some route ->
          Dns_client.request_ip_change attendee.Scenario.dns_client ~route
            ~callback:(fun ok -> changed := Some ok)
      | None -> prerr_endline "no route to the DNS");
  Scenario.run s ~until:Float.max_float;
  (match !changed with
  | Some true ->
      Printf.printf "Attendee 5 changed address %s -> %s (same key pair)\n"
        (Address.to_string before)
        (Address.to_string (Scenario.address_of s 5));
      (match Dns.lookup dns "node5" with
      | Some a when Address.equal a (Scenario.address_of s 5) ->
          print_endline "DNS followed the change after the challenge-response"
      | _ -> print_endline "UNEXPECTED: DNS did not follow")
  | Some false -> print_endline "UNEXPECTED: change rejected"
  | None -> print_endline "ip change incomplete");

  let st = Scenario.stats s in
  Printf.printf "\nEvent wrap-up: %d packets delivered, %d DNS queries served, %d registrations\n"
    (Stats.get st "data.delivered")
    (Stats.get st "dns.queries")
    (Stats.get st "dns.registered")
