(* Wall-clock sampling for the profiler.

   This is the ONE place the library touches host time.  The value never
   feeds back into the simulation: simulated time is Engine.now, PRNG
   streams are seeded, and every protocol decision is a function of
   those.  Profiling data derived from this clock lives in a separate
   side table (Engine.profile) and is exported only into the JSON run
   report, never into the deterministic JSONL trace — see DESIGN.md
   "Observability". *)

(* manetsem: allow-file determinism — this module IS the designated
   wall-clock boundary; its samples never enter the sim-time domain. *)
(* manetlint: allow determinism — profiler wall clock, segregated from
   the deterministic sim-time domain by construction (see above). *)
let now_s () = Unix.gettimeofday ()
