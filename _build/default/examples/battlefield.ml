(* Battlefield: a hostile MANET.  A quarter of the nodes are black holes
   that attract and swallow traffic, one node fabricates route errors,
   and one keeps changing identity.  The secure protocol's verification
   plus §3.4 credit management must keep command traffic flowing and
   isolate the hostiles.

   Run with:  dune exec examples/battlefield.exe *)

module Scenario = Manetsec.Scenario
module Engine = Manetsec.Sim.Engine
module Stats = Manetsec.Sim.Stats
module Address = Manetsec.Ipv6.Address
module Adversary = Manetsec.Adversary
module Credit = Manetsec.Credit
module Secure = Manetsec.Secure_routing

let () =
  let adversaries =
    [
      (4, Adversary.blackhole);
      (9, Adversary.blackhole);
      (14, { Adversary.blackhole with forge_rrep = false });
      (19, Adversary.rerr_spammer ~every:1.0);
      (11, Adversary.identity_churner ~every:20.0);
    ]
  in
  let params =
    {
      Scenario.default_params with
      n = 24;
      seed = 1942;
      range = 280.0;
      topology = Scenario.Random { width = 900.0; height = 900.0 };
      adversaries;
    }
  in
  let s = Scenario.create params in
  Scenario.bootstrap s;
  Printf.printf "Force of %d nodes deployed; %d hostiles among them\n"
    params.Scenario.n (List.length adversaries);

  (* Command traffic: HQ (node 1) exchanges with squads. *)
  let squads = [ 3; 6; 8; 13; 17; 21 ] in
  let flows = List.concat_map (fun sq -> [ (1, sq); (sq, 1) ]) squads in
  Scenario.start_cbr s ~flows ~interval:0.5 ~size:128 ~duration:180.0 ();

  let st = Scenario.stats s in
  let rec report at last =
    Engine.schedule_at (Scenario.engine s) ~time:at (fun () ->
        let d = Stats.get st "data.delivered" in
        Printf.printf
          "  t=%4.0fs  delivered %5d (+%3d)  forged-rrep rejected %3d  suspects %2d\n"
          at d (d - last)
          (Stats.get st "secure.rrep_rejected")
          (Stats.get st "secure.hostile_suspected");
        report (at +. 30.0) d)
  in
  report (Engine.now (Scenario.engine s) +. 30.0) 0;
  Scenario.run s ~until:(Engine.now (Scenario.engine s) +. 200.0);

  Printf.printf "\nAfter the engagement:\n";
  Printf.printf "  delivery ratio            %.2f\n" (Scenario.delivery_ratio s);
  Printf.printf "  data swallowed by hostiles %d\n" (Stats.get st "attack.data_dropped");
  Printf.printf "  forged RREPs sent/rejected %d/%d\n"
    (Stats.get st "attack.rrep_forged")
    (Stats.get st "secure.rrep_rejected");
  Printf.printf "  fabricated RERRs           %d\n" (Stats.get st "attack.rerr_forged");
  Printf.printf "  probes sent                %d\n" (Stats.get st "probe.sent");
  Printf.printf "  hostiles suspected         %d\n"
    (Stats.get st "secure.hostile_suspected");

  (* HQ's view of the battlefield: its credit table. *)
  (match (Scenario.node s 1).Scenario.routing with
  | Scenario.Secure_agent agent ->
      let credits = Secure.credits agent in
      let hostile_addrs =
        List.map (fun (i, _) -> Scenario.address_of s i) adversaries
      in
      print_endline "  HQ credit table (negative = blamed):";
      List.iter
        (fun (addr, credit) ->
          let marker =
            if List.exists (Address.equal addr) hostile_addrs then " <- hostile"
            else ""
          in
          if credit < 0.0 || marker <> "" then
            Printf.printf "    %-28s %8.1f%s\n" (Address.to_string addr) credit marker)
        (Credit.snapshot credits)
  | _ -> ())
