(** Log₂-bucketed histogram of non-negative integer samples.

    The bucket table is fixed: bucket 0 holds exactly the value 0 and
    bucket [k >= 1] holds the range [2^(k-1) .. 2^k - 1], so every
    possible sample has one home bucket and exports are byte-stable —
    the same multiset of samples renders identically regardless of
    arrival order or how a sweep was split across domains.  {!merge} is
    associative and commutative (it is a pointwise sum plus min/max),
    which is what lets per-domain histograms fold into one without
    caring about the fan-out.

    Used by the perf registry (lib/obs/perf.ml) for neighbour-scan
    lengths, delivery fan-out and per-node crypto-op distributions.
    Lives in [lib/sim] so the engine and net layers can feed it without
    depending on the observability library above them. *)

type t

val create : unit -> t
(** Empty histogram; all buckets zero. *)

val add : t -> int -> unit
(** Record one sample.  Raises [Invalid_argument] on a negative value. *)

val add_n : t -> int -> int -> unit
(** [add_n t v n] records [n] occurrences of [v].  Raises
    [Invalid_argument] on a negative value or count; [n = 0] is a
    no-op. *)

val count : t -> int
(** Total samples recorded. *)

val sum : t -> int
val min_value : t -> int option
val max_value : t -> int option

val mean : t -> float option
(** [None] when empty. *)

val merge : t -> t -> t
(** Fresh histogram holding both inputs' samples.  Associative and
    commutative; inputs are not mutated. *)

val bucket_of_value : int -> int
(** Home bucket index of a sample: 0 for 0, [1 + floor(log2 v)]
    otherwise.  Raises [Invalid_argument] on a negative value. *)

val bounds : int -> int * int
(** Inclusive [(lo, hi)] range of a bucket index.  Raises
    [Invalid_argument] outside [0 .. 62]. *)

val percentile : t -> float -> int option
(** [percentile t q] estimates the [q]-quantile ([0.0 .. 1.0]) by
    nearest rank over the bucket table, interpolating linearly inside
    the crossing bucket.  Integer arithmetic only, so the estimate is
    byte-stable across replays and merge orders.  [None] when empty;
    raises [Invalid_argument] when [q] is outside [0, 1]. *)

val nonzero_buckets : t -> (int * int * int) list
(** [(lo, hi, count)] for every non-empty bucket, in ascending value
    order — the stable wire form the exports render. *)

val reset : t -> unit
