lib/dsr/dsr.ml: Hashtbl List Manet_crypto Manet_ipv6 Manet_proto Manet_sim Option Queue Route_cache
