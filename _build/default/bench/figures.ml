(* F1 / F2 / F3: regenerate the paper's figures as executable artefacts.

   Figure 1 is the CGA site-local address layout; we show the bit fields
   of generated addresses and measure interface-identifier uniqueness at
   scale.  Figures 2 and 3 are protocol message-sequence diagrams; we run
   the depicted scenarios and print the recorded traces. *)

module Prng = Manetsec.Crypto.Prng
module Suite = Manetsec.Crypto.Suite
module Address = Manetsec.Ipv6.Address
module Cga = Manetsec.Ipv6.Cga
module Engine = Manetsec.Sim.Engine
module Trace = Manetsec.Sim.Trace
module Stats = Manetsec.Sim.Stats
module Net = Manetsec.Sim.Net
module Identity = Manetsec.Proto.Identity
module Directory = Manetsec.Proto.Directory
module Scenario = Manetsec.Scenario

(* --- Figure 1 ---------------------------------------------------------- *)

let fig1 () =
  Util.heading "Figure 1 -- CGA site-local address layout";
  let g = Prng.create ~seed:101 in
  let suite = Suite.mock g in
  let kp = suite.Suite.generate () in
  let rn, addr = Cga.fresh g ~pk_bytes:kp.Suite.pk_bytes in
  let groups = Address.to_groups addr in
  Printf.printf "  example PK hash input : H(PK, rn) with rn = %Lx\n" rn;
  Printf.printf "  address               : %s\n" (Address.to_string addr);
  Printf.printf "  site-local prefix     : %04x (10 bits = 1111111011)\n" groups.(0);
  Printf.printf "  38-bit zero field     : %04x %04x (+6 bits of group 1)\n" groups.(1) groups.(2);
  Printf.printf "  16-bit subnet ID      : %04x\n" groups.(3);
  Printf.printf "  64-bit interface id   : %04x:%04x:%04x:%04x = H(PK, rn)[0..63]\n"
    groups.(4) groups.(5) groups.(6) groups.(7);
  Printf.printf "  Cga.verify            : %b\n"
    (Cga.verify addr ~pk_bytes:kp.Suite.pk_bytes ~rn);
  (* Uniqueness at scale: the paper relies on 64-bit hash IDs colliding
     only with negligible probability. *)
  let rows =
    List.map
      (fun n ->
        let g = Prng.create ~seed:n in
        let seen = Hashtbl.create n in
        let collisions = ref 0 in
        for _ = 1 to n do
          let pk = Prng.bytes g 32 in
          let _, a = Cga.fresh g ~pk_bytes:pk in
          let key = Int64.to_string (Address.interface_id a) in
          if Hashtbl.mem seen key then incr collisions;
          Hashtbl.replace seen key ()
        done;
        [ Util.i n; Util.i !collisions ])
      [ 1_000; 10_000; 100_000 ]
  in
  Util.print_table ~header:[ "addresses generated"; "collisions" ] rows

(* --- Figure 2 ---------------------------------------------------------- *)

(* The Figure 2 scenario: S (a newcomer) picks an address already owned
   by R and a domain name already registered; R answers with an AREP and
   warns the DNS; the DNS answers the name conflict with a DREP; S
   retries with a fresh rn and a fresh name and succeeds. *)
let fig2 () =
  Util.heading "Figure 2 -- the secure DAD procedure (message trace)";
  let params =
    {
      Scenario.default_params with
      n = 6;
      seed = 42;
      range = 150.0;
      topology = Scenario.Chain { spacing = 100.0 };
    }
  in
  let s = Scenario.create params in
  let engine = Scenario.engine s in
  (* R = node 2 bootstraps first and registers "printer". *)
  Manetsec.Dad.start (Scenario.node s 2).Scenario.dad ~dn:"printer"
    ~on_complete:(fun _ -> ())
    ();
  Scenario.run s ~until:10.0;
  (* S = node 5 is forced into both collisions. *)
  let dup = Scenario.address_of s 2 in
  let snode = Scenario.node s 5 in
  Directory.unregister
    snode.Scenario.ctx.Manetsec.Proto.Node_ctx.directory
    (Scenario.address_of s 5) 5;
  snode.Scenario.identity.Identity.address <- dup;
  Directory.register snode.Scenario.ctx.Manetsec.Proto.Node_ctx.directory dup 5;
  Trace.enable (Engine.trace engine);
  Manetsec.Dad.start snode.Scenario.dad ~dn:"printer"
    ~on_complete:(fun _ -> ())
    ();
  Scenario.run s ~until:30.0;
  Trace.disable (Engine.trace engine);
  print_string (Trace.render (Engine.trace engine));
  let st = Scenario.stats s in
  Printf.printf
    "  [checks] duplicate detected: %b, warning reached the DNS: %b, name conflict (DREP): %b\n"
    (Stats.get st "dad.duplicate_detected" >= 1)
    (Stats.get st "dns.warning_stashed" + Stats.get st "dns.registration_cancelled" >= 1)
    (Stats.get st "dad.name_conflict" >= 1)

(* --- Figure 3 ---------------------------------------------------------- *)

(* The Figure 3 scenario: S discovers a route to D with a signed RREQ
   flood and a signed RREP; then S', another host, requests the same
   destination and is answered from S's cache with a CREP carrying both
   signed halves. *)
let fig3 () =
  Util.heading "Figure 3 -- secure route discovery, reply and cached reply";
  let params =
    {
      Scenario.default_params with
      n = 6;
      seed = 42;
      range = 150.0;
      topology = Scenario.Chain { spacing = 100.0 };
    }
  in
  let s = Scenario.create params in
  let engine = Scenario.engine s in
  Trace.enable (Engine.trace engine);
  let log_event detail = Engine.log engine ~node:(-1) ~event:"note" ~detail in
  log_event "S = node 1 discovers D = node 5";
  let r1 = ref None in
  Scenario.discover s ~src:1 ~dst:5 (fun r -> r1 := Some r);
  Scenario.run s ~until:10.0;
  (match !r1 with
  | Some (Some route) ->
      log_event
        (Printf.sprintf "S got verified route via %d intermediates" (List.length route))
  | _ -> log_event "discovery FAILED");
  log_event "S' = node 0 requests the same destination";
  let r2 = ref None in
  Scenario.discover s ~src:0 ~dst:5 (fun r -> r2 := Some r);
  Scenario.run s ~until:20.0;
  (match !r2 with
  | Some (Some route) ->
      log_event
        (Printf.sprintf "S' got verified route via %d intermediates" (List.length route))
  | _ -> log_event "cached discovery FAILED");
  Trace.disable (Engine.trace engine);
  (* The interesting lines are the sends and the notes. *)
  let entries = Trace.entries (Engine.trace engine) in
  List.iter
    (fun e ->
      if
        e.Trace.event = "note"
        || String.length e.Trace.event >= 3 && String.sub e.Trace.event 0 3 = "tx."
      then Format.printf "%a@." Trace.pp_entry e)
    entries;
  let st = Scenario.stats s in
  Printf.printf "  [checks] RREP answered: %b, CREP answered: %b, nothing rejected: %b\n"
    (Stats.get st "route.replies" >= 1)
    (Stats.get st "route.cache_replies" >= 1)
    (Stats.get st "secure.rrep_rejected" = 0 && Stats.get st "secure.crep_rejected" = 0)

let run () =
  fig1 ();
  fig2 ();
  fig3 ()
