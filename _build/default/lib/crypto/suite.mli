(** A signature suite: the bundle of cryptographic operations every
    protocol module is written against.

    Public keys travel as opaque byte strings ([pk_bytes]) because the
    protocol hashes them into CGA addresses and attaches them to messages
    verbatim; only [verify] needs to understand their structure.  The
    suite also keeps running counters of sign/verify operations, which the
    overhead experiments (E2) report as "crypto ops per delivered
    packet". *)

type keypair = {
  pk_bytes : string;  (** serialized public key, as carried on the wire *)
  sign : string -> string;  (** sign a message with the private key *)
}

type t = {
  scheme_name : string;
  generate : unit -> keypair;
  verify : pk_bytes:string -> msg:string -> signature:string -> bool;
  signature_size : int;  (** wire bytes per signature *)
  public_key_size : int;  (** wire bytes per public key *)
  mutable sign_count : int;
  mutable verify_count : int;
}

val rsa : ?bits:int -> Prng.t -> t
(** RSA suite (default 512-bit moduli).  Key generation draws from the
    given PRNG stream, so a seeded suite is fully reproducible. *)

val mock : Prng.t -> t
(** Idealized fast suite backed by {!Mock_sig}; its registry is private to
    the returned suite value. *)

val reset_counters : t -> unit
(** Zero the sign/verify counters before a measured run. *)
