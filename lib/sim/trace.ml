type entry = { time : float; node : int; event : string; detail : string }

type t = {
  mutable enabled : bool;
  capacity : int;
  buf : entry Queue.t;
  mutable dropped : int;
}

let create ?(capacity = 100_000) () =
  { enabled = false; capacity; buf = Queue.create (); dropped = 0 }

let enable t = t.enabled <- true
let disable t = t.enabled <- false
let is_enabled t = t.enabled

let log t ~time ~node ~event ~detail =
  if t.enabled then begin
    if Queue.length t.buf >= t.capacity then begin
      ignore (Queue.pop t.buf);
      t.dropped <- t.dropped + 1
    end;
    Queue.push { time; node; event; detail } t.buf
  end

let entries t = List.of_seq (Queue.to_seq t.buf)
let find t ~event = List.filter (fun e -> String.equal e.event event) (entries t)

let clear t =
  Queue.clear t.buf;
  t.dropped <- 0

let length t = Queue.length t.buf
let dropped t = t.dropped

let pp_entry fmt e =
  if e.node >= 0 then
    Format.fprintf fmt "%10.4f  node %-3d  %-18s %s" e.time e.node e.event e.detail
  else Format.fprintf fmt "%10.4f  %-27s %s" e.time e.event e.detail

let render t =
  let buf = Buffer.create 1024 in
  if t.dropped > 0 then
    Buffer.add_string buf
      (Printf.sprintf "[trace: %d oldest entries dropped at capacity %d]\n"
         t.dropped t.capacity);
  List.iter
    (fun e -> Buffer.add_string buf (Format.asprintf "%a@." pp_entry e))
    (entries t);
  Buffer.contents buf
