(** Parameter sweeps over the E1 / E6 experiment grids, fanned across
    domains.

    This is what the manetdom certificate buys: every {!point} is an
    independent simulation (its own engine, PRNG streams, telemetry and
    audit sinks — nothing shared at module level anywhere under [lib/]),
    so replications can run on concurrent domains via
    {!Manet_sim.Parallel.map} and still merge into byte-identical
    exports at any [~domains] value.

    Grid points:
    - E1 (black-hole fractions): the §3.4 evaluation scenario — secure
      routing with credits and probes against forging black holes, at
      each requested adversary fraction.
    - E6 (N sweep): the §3.1 secure-DAD bootstrap storm at each
      requested network size (no adversaries).

    Every run carries the uniform key
    [(experiment, n, fraction, seed)] — E6 points report fraction 0.0 —
    so a single sweep can mix both grids and still satisfy
    {!Manet_obs.Merge}'s same-key-fields requirement. *)

type point =
  | E1_blackhole of { n : int; fraction : float; seed : int; duration : float }
  | E6_bootstrap of { n : int; seed : int }

type spec = {
  e1_fractions : float list;  (** adversary fractions; [[]] disables E1 *)
  e1_nodes : int;  (** E1 network size *)
  e1_duration : float;  (** E1 CBR traffic duration, seconds *)
  e6_sizes : int list;  (** E6 network sizes; [[]] disables E6 *)
  seeds : int list;  (** replications per grid point *)
}

val default_spec : spec
(** The bench-scale grid: fractions 0.0/0.2/0.4 at 36 nodes for 60 s,
    E6 at 10/20/40 nodes, seeds 1-3. *)

val points : spec -> point list
(** The full grid in deterministic order (E1 fraction-major, then E6
    size-major; seeds innermost). *)

val run : domains:int -> spec -> Manet_obs.Merge.run list
(** Run every grid point, fanning across [domains] concurrent domains
    ([1] runs inline — the single-core fallback), and return the
    per-run artefacts in canonical merged order.  Each run's [stats]
    is the scenario's sorted counter list and its [streams] are
    [("audit", ...)] and [("trace", ...)] JSONL exports.  The returned
    list — and therefore {!Manet_obs.Merge.stream_jsonl} /
    {!Manet_obs.Merge.stats_csv} over it — is independent of
    [domains]. *)
