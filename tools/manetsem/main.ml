(* manetsem driver.

   Usage:
     main.exe [--baseline FILE] [--write-baseline] [--json FILE]
              [--uses DIR]... [ROOT]...

   ROOTs (default: lib) are analyzed; --uses dirs (default: bin test
   bench examples tools, those that exist) are parsed only as reference
   points for the dead-export rule.  Exit 1 on any finding not pinned in
   the baseline, or on stale baseline entries.  The option parsing,
   file walking and baseline semantics live in Analyzer_common.Driver,
   shared with manetdom and manethot. *)

let () =
  Analyzer_common.Driver.run ~tool:"manetsem"
    ~default_uses:[ "bin"; "test"; "bench"; "examples"; "tools" ]
    ~analyze:(fun ~uses files -> Manetsem.Sem.analyze ~uses files)
    ()
