module Engine = Manet_sim.Engine
module Net = Manet_sim.Net
module Mono_clock = Manet_sim.Mono_clock
module Suite = Manet_crypto.Suite

module Stbl = Hashtbl.Make (struct
  type t = string

  let equal = String.equal
  let hash = String.hash
end)

let schema = "manetsim-timeline"
let schema_version = 1
let default_width = 1.0

(* A closed bucket: deltas of the always-on cumulative counters between
   two bucket boundaries.  Buckets are half-open [i*w, (i+1)*w) windows
   of sim time; only windows that saw activity are materialised. *)
type bucket = {
  b_index : int;
  b_events : int;
  b_pending : int; (* queue depth at close *)
  b_labels : (string * int) list; (* nonzero per-label event deltas *)
  b_deliveries : int;
  b_transmissions : int;
  b_drops : int; (* unicast failures *)
  b_signs : int;
  b_verifies : int;
  b_hash_blocks : int;
  b_kinds : (string * (int * int * int)) list; (* per-kind crypto deltas *)
  b_audit : int;
}

(* The cumulative sources diffed at bucket close.  [Net.t] is
   message-polymorphic, so its counters are captured as closures when
   the (polymorphic) {!attach} runs. *)
type sources = {
  s_deliveries : unit -> int;
  s_transmissions : unit -> int;
  s_drops : unit -> int;
  s_suite : Suite.t;
  s_perf : Perf.t;
  s_audit : Audit.t;
}

(* Wall-clock heartbeat state.  Lives entirely outside the
   deterministic domain: it reads {!Mono_clock} every [pr_every]
   events and emits through a caller-supplied sink (bin/ wires stderr),
   never into any export. *)
type progress = {
  pr_emit : string -> unit;
  pr_interval : float;
  pr_horizon : float option;
  pr_every : int;
  mutable pr_countdown : int;
  mutable pr_last_wall : float;
  mutable pr_last_events : int;
  mutable pr_last_sim : float;
}

type t = {
  engine : Engine.t;
  width : float;
  mutable enabled : bool;
  mutable sources : sources option;
  mutable cur : int;
  mutable rev_buckets : bucket list;
  mutable bucket_count : int;
  (* cumulative snapshots at the last close *)
  mutable last_events : int;
  last_labels : int Stbl.t;
  last_kinds : (int * int * int) Stbl.t;
  mutable last_deliveries : int;
  mutable last_transmissions : int;
  mutable last_drops : int;
  mutable last_signs : int;
  mutable last_verifies : int;
  mutable last_hash_blocks : int;
  mutable last_audit : int;
  mutable progress : progress option;
}

let create ?(width = default_width) engine =
  if width <= 0.0 then invalid_arg "Timeline.create: width must be positive";
  {
    engine;
    width;
    enabled = true;
    sources = None;
    cur = 0;
    rev_buckets = [];
    bucket_count = 0;
    last_events = 0;
    last_labels = Stbl.create 16;
    last_kinds = Stbl.create 16;
    last_deliveries = 0;
    last_transmissions = 0;
    last_drops = 0;
    last_signs = 0;
    last_verifies = 0;
    last_hash_blocks = 0;
    last_audit = 0;
    progress = None;
  }

let width t = t.width
let set_enabled t on = t.enabled <- on
let enabled t = t.enabled

let attach t ~net ~suite ~perf ~audit =
  t.sources <-
    Some
      {
        s_deliveries = (fun () -> Net.deliveries net);
        s_transmissions = (fun () -> Net.transmissions net);
        s_drops = (fun () -> Net.unicast_failures net);
        s_suite = suite;
        s_perf = perf;
        s_audit = audit;
      }

(* --- bucket close ------------------------------------------------------- *)

(* Diff the engine's sorted per-label totals against the last snapshot,
   updating the snapshot in place.  Labels only ever grow, so a missing
   snapshot entry reads as 0. *)
let label_deltas t =
  List.filter_map
    (fun (l, c) ->
      let prev = match Stbl.find_opt t.last_labels l with Some v -> v | None -> 0 in
      if c > prev then begin
        Stbl.replace t.last_labels l c;
        Some (l, c - prev)
      end
      else None)
    (Engine.label_counts t.engine)

let kind_deltas t perf =
  List.filter_map
    (fun (k, (s, v, h)) ->
      let ps, pv, ph =
        match Stbl.find_opt t.last_kinds k with
        | Some c -> c
        | None -> (0, 0, 0)
      in
      if s > ps || v > pv || h > ph then begin
        Stbl.replace t.last_kinds k (s, v, h);
        Some (k, (s - ps, v - pv, h - ph))
      end
      else None)
    (Perf.kind_totals perf)

let close t =
  let events = Engine.events_processed t.engine in
  let d_events = events - t.last_events in
  let labels = label_deltas t in
  let dv, dx, dd, ds, dver, dh, dk, da =
    match t.sources with
    | None -> (0, 0, 0, 0, 0, 0, [], 0)
    | Some s ->
        let deliv = s.s_deliveries () in
        let trans = s.s_transmissions () in
        let drops = s.s_drops () in
        let signs = s.s_suite.Suite.sign_count in
        let verifies = s.s_suite.Suite.verify_count in
        let blocks = s.s_suite.Suite.sha256_blocks in
        let audit = Audit.count s.s_audit in
        let r =
          ( deliv - t.last_deliveries,
            trans - t.last_transmissions,
            drops - t.last_drops,
            signs - t.last_signs,
            verifies - t.last_verifies,
            blocks - t.last_hash_blocks,
            kind_deltas t s.s_perf,
            audit - t.last_audit )
        in
        t.last_deliveries <- deliv;
        t.last_transmissions <- trans;
        t.last_drops <- drops;
        t.last_signs <- signs;
        t.last_verifies <- verifies;
        t.last_hash_blocks <- blocks;
        t.last_audit <- audit;
        r
  in
  t.last_events <- events;
  if
    d_events > 0 || labels <> [] || dv > 0 || dx > 0 || dd > 0 || ds > 0
    || dver > 0 || dh > 0 || dk <> [] || da > 0
  then begin
    let b =
      {
        b_index = t.cur;
        b_events = d_events;
        b_pending = Engine.pending t.engine;
        b_labels = labels;
        b_deliveries = dv;
        b_transmissions = dx;
        b_drops = dd;
        b_signs = ds;
        b_verifies = dver;
        b_hash_blocks = dh;
        b_kinds = dk;
        b_audit = da;
      }
    in
    t.rev_buckets <- b :: t.rev_buckets;
    t.bucket_count <- t.bucket_count + 1
  end

(* --- the per-event hook -------------------------------------------------- *)

(* Fired by the engine with the event's timestamp before the event is
   counted or run, so a close at event [e] snapshots state that excludes
   [e]: bucket [i] holds exactly the events with [i*w <= time < (i+1)*w].
   The fast path (same bucket, no heartbeat due) is an option match, a
   float divide and two compares — no allocation. *)
let tick t time =
  (match t.progress with
  | Some p ->
      p.pr_countdown <- p.pr_countdown - 1;
      if p.pr_countdown <= 0 then begin
        p.pr_countdown <- p.pr_every;
        let w = Mono_clock.now_s () in
        let dt = w -. p.pr_last_wall in
        if dt >= p.pr_interval then begin
          let events = Engine.events_processed t.engine in
          let rate = float_of_int (events - p.pr_last_events) /. dt in
          let sim_rate = (time -. p.pr_last_sim) /. dt in
          let line =
            if time <= p.pr_last_sim then
              Printf.sprintf
                "[progress] t=%.3fs STALL: sim clock unchanged for %.1fs wall \
                 (%d events, %.0f ev/s, pending %d)"
                time dt events rate
                (Engine.pending t.engine)
            else
              let eta =
                match p.pr_horizon with
                | Some h when sim_rate > 0.0 && h > time ->
                    Printf.sprintf ", eta %.0fs" ((h -. time) /. sim_rate)
                | _ -> ""
              in
              Printf.sprintf
                "[progress] t=%.3fs  %d events  %.0f ev/s  %.2f sim-s/s  \
                 pending %d%s"
                time events rate sim_rate
                (Engine.pending t.engine)
                eta
          in
          p.pr_emit line;
          p.pr_last_wall <- w;
          p.pr_last_events <- events;
          p.pr_last_sim <- time
        end
      end
  | None -> ());
  if t.enabled then begin
    let idx = int_of_float (time /. t.width) in
    if idx > t.cur then begin
      close t;
      t.cur <- idx
    end
  end

let install t = Engine.set_on_event t.engine (Some (fun time -> tick t time))

let enable_progress ?horizon ?(interval = 2.0) ?(check_every = 4096) t ~emit ()
    =
  let now = Mono_clock.now_s () in
  t.progress <-
    Some
      {
        pr_emit = emit;
        pr_interval = interval;
        pr_horizon = horizon;
        pr_every = check_every;
        pr_countdown = 1;
        pr_last_wall = now;
        pr_last_events = Engine.events_processed t.engine;
        pr_last_sim = Engine.now t.engine;
      }

(* --- read side / export ------------------------------------------------- *)

(* Close the trailing partial bucket.  Idempotent: a second flush with
   no new activity produces only zero deltas, which materialise no
   bucket — so exporting twice yields identical bytes. *)
let flush t = if t.enabled then close t

let buckets t = List.rev t.rev_buckets
let bucket_count t = t.bucket_count

let bucket_json b =
  Json.Obj
    [
      ("type", Json.String "bucket");
      ("i", Json.Int b.b_index);
      ("events", Json.Int b.b_events);
      ("pending", Json.Int b.b_pending);
      ("labels", Json.Obj (List.map (fun (l, c) -> (l, Json.Int c)) b.b_labels));
      ("deliveries", Json.Int b.b_deliveries);
      ("transmissions", Json.Int b.b_transmissions);
      ("drops", Json.Int b.b_drops);
      ("signs", Json.Int b.b_signs);
      ("verifies", Json.Int b.b_verifies);
      ("hash_blocks", Json.Int b.b_hash_blocks);
      ( "kinds",
        Json.Obj
          (List.map
             (fun (k, (s, v, h)) ->
               ( k,
                 Json.Obj
                   [
                     ("signs", Json.Int s);
                     ("verifies", Json.Int v);
                     ("hash_blocks", Json.Int h);
                   ] ))
             b.b_kinds) );
      ("audit", Json.Int b.b_audit);
    ]

let header ?(meta = []) t =
  Json.Obj
    ([
       ("schema", Json.String schema);
       ("version", Json.Int schema_version);
       ("width", Json.Float t.width);
     ]
    @ meta)

(* One header line, one line per materialised bucket oldest-first, then
   the flood provenance tail.  Every byte is a pure function of the
   seeded event sequence — the CI cmp-gates same-seed replays and sweep
   domain counts on this. *)
let to_jsonl ?meta t ~flood =
  flush t;
  let buf = Buffer.create 4096 in
  Json.to_buffer buf (header ?meta t);
  Buffer.add_char buf '\n';
  List.iter
    (fun b ->
      Json.to_buffer buf (bucket_json b);
      Buffer.add_char buf '\n')
    (buckets t);
  Flood.append_jsonl buf flood;
  Buffer.contents buf
