(* Buckets are fixed for the life of the module: bucket 0 holds exactly
   the value 0 and bucket k >= 1 holds [2^(k-1), 2^k - 1].  A fixed table
   (rather than adaptive bounds) keeps exports byte-stable: the same
   samples always land in the same buckets regardless of arrival order
   or of how a sweep was split across domains. *)

let bucket_count = 63

type t = {
  mutable count : int;
  mutable sum : int;
  mutable vmin : int;
  mutable vmax : int;
  buckets : int array;
}

let create () =
  { count = 0; sum = 0; vmin = max_int; vmax = 0; buckets = Array.make bucket_count 0 }

(* 1 + floor(log2 v) for v > 0, and 0 for 0: the index whose range
   [2^(i-1), 2^i - 1] contains v.  Tail recursion over two ints so the
   per-sample path allocates nothing. *)
let rec bit_width acc x = if x = 0 then acc else bit_width (acc + 1) (x lsr 1)

let bucket_of_value v =
  if v < 0 then invalid_arg "Hist.add: negative value" else bit_width 0 v

let bounds i =
  if i < 0 || i >= bucket_count then invalid_arg "Hist.bounds: bucket index"
  else if i = 0 then (0, 0)
  else (1 lsl (i - 1), (1 lsl i) - 1)

let add_n t v n =
  if n < 0 then invalid_arg "Hist.add_n: negative count";
  if n > 0 then begin
    let b = bucket_of_value v in
    t.buckets.(b) <- t.buckets.(b) + n;
    t.count <- t.count + n;
    t.sum <- t.sum + (v * n);
    if v < t.vmin then t.vmin <- v;
    if v > t.vmax then t.vmax <- v
  end

let add t v = add_n t v 1

let count t = t.count
let sum t = t.sum
let min_value t = if t.count = 0 then None else Some t.vmin
let max_value t = if t.count = 0 then None else Some t.vmax

let mean t =
  if t.count = 0 then None
  else Some (float_of_int t.sum /. float_of_int t.count)

let merge a b =
  let m = create () in
  m.count <- a.count + b.count;
  m.sum <- a.sum + b.sum;
  m.vmin <- min a.vmin b.vmin;
  m.vmax <- max a.vmax b.vmax;
  Array.iteri (fun i v -> m.buckets.(i) <- v + b.buckets.(i)) a.buckets;
  m

(* Nearest-rank percentile estimated from the bucket table: walk the
   cumulative counts to the bucket containing rank ceil(q * count), then
   interpolate linearly across that bucket's [lo, hi] range by the rank's
   position inside it.  Integer arithmetic only, so the estimate is a
   pure function of the bucket counts — byte-stable across replays,
   domain counts and merge orders. *)
let percentile t q =
  if q < 0.0 || q > 1.0 then invalid_arg "Hist.percentile: q outside [0, 1]";
  if t.count = 0 then None
  else begin
    let rank =
      let r = int_of_float (ceil (q *. float_of_int t.count)) in
      if r < 1 then 1 else if r > t.count then t.count else r
    in
    let rec find i cum =
      let n = t.buckets.(i) in
      if cum + n >= rank then begin
        let lo, hi = bounds i in
        let pos = rank - cum in
        if n <= 1 then lo else lo + ((hi - lo) * (pos - 1) / (n - 1))
      end
      else find (i + 1) (cum + n)
    in
    (* The interpolation assumes uniform spread inside the crossing
       bucket, which can overshoot the largest sample actually seen —
       clamp to the tracked maximum (and minimum, symmetrically). *)
    Some (min t.vmax (max t.vmin (find 0 0)))
  end

let nonzero_buckets t =
  let acc = ref [] in
  for i = bucket_count - 1 downto 0 do
    if t.buckets.(i) > 0 then begin
      let lo, hi = bounds i in
      acc := (lo, hi, t.buckets.(i)) :: !acc
    end
  done;
  !acc

let reset t =
  t.count <- 0;
  t.sum <- 0;
  t.vmin <- max_int;
  t.vmax <- 0;
  Array.fill t.buckets 0 bucket_count 0
