lib/dns/client.ml: Hashtbl Manet_crypto Manet_ipv6 Manet_proto String
