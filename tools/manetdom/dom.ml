(* manetdom — domain-safety analyzer.  See dom.mli for the rule
   catalogue.  Built on compiler-libs only (Parse + Parsetree +
   Ast_iterator), sharing the comment scanner and baseline machinery
   with manetsem so all three analyzers keep one suppression grammar and
   one diff/stale semantics. *)

open Parsetree
module Sem = Manetsem.Sem

type finding = Sem.finding = {
  file : string;
  line : int;
  rule : string;
  msg : string;
}

let rules =
  [
    "toplevel-state"; "toplevel-lazy"; "escaping-memo"; "global-rng";
    "domain-primitive"; "parse";
  ]

(* The one module allowed to touch the domain primitives: the reviewed
   fan-out scheduler.  Matched by path suffix so fixtures can opt in. *)
let domain_allowlisted path =
  Filename.basename path = "parallel.ml"
  && Filename.basename (Filename.dirname path) = "sim"

let domain_modules =
  [ "Domain"; "Atomic"; "Mutex"; "Condition"; "Semaphore"; "Thread" ]

(* ------------------------------------------------------------------ *)
(* Suppression.  Same scanner and line ranges as manetsem, with one
   tightening: the directive must carry a rationale (prose after the
   rule names), otherwise it does not suppress and instead yields an
   "annotation" finding — which itself cannot be allowed away. *)

type allows = {
  a_ranges : (string * int * int) list;
  a_whole : string list;
  a_bad : int list; (* directive lines missing their rationale *)
}

let no_allows = { a_ranges = []; a_whole = []; a_bad = [] }

let words_of s =
  String.split_on_char '\n' s
  |> List.concat_map (String.split_on_char '\t')
  |> List.concat_map (String.split_on_char ' ')
  |> List.filter (fun w -> w <> "")

let rec take_rules = function
  | w :: rest when List.mem w rules -> w :: take_rules rest
  | _ -> []

let rec drop n l =
  if n <= 0 then l else match l with [] -> [] | _ :: t -> drop (n - 1) t

let has_prose ws =
  List.exists
    (fun w ->
      String.exists (function 'a' .. 'z' | 'A' .. 'Z' -> true | _ -> false) w)
    ws

(* Unlike manetsem, the directive may sit anywhere inside a comment —
   so one comment can carry both a manetsem and a manetdom allow when
   both analyzers flag the same binding.  The rationale is the prose
   between the rule names and the next [manetdom:] marker (or the
   comment's end). *)
let scan_allows src =
  List.fold_left
    (fun acc (text, l0, l1) ->
      let rec until_next acc = function
        | [] -> List.rev acc
        | "manetdom:" :: _ -> List.rev acc
        | w :: rest -> until_next (w :: acc) rest
      in
      let rec go acc = function
        | [] -> acc
        | "manetdom:" :: kw :: rest when kw = "allow" || kw = "allow-file" ->
            let rs = take_rules rest in
            let tail = drop (List.length rs) rest in
            let rationale = until_next [] tail in
            let acc =
              if rs = [] || not (has_prose rationale) then
                { acc with a_bad = l0 :: acc.a_bad }
              else if kw = "allow-file" then
                { acc with a_whole = rs @ acc.a_whole }
              else
                {
                  acc with
                  a_ranges =
                    List.map (fun r -> (r, l0, l1 + 1)) rs @ acc.a_ranges;
                }
            in
            go acc tail
        | _ :: rest -> go acc rest
      in
      go acc (words_of text))
    no_allows (Sem.scan_comments src)

let suppressed allows f =
  f.rule <> "annotation"
  && (List.mem f.rule allows.a_whole
     || List.exists
          (fun (r, a, b) -> r = f.rule && a <= f.line && f.line <= b)
          allows.a_ranges)

(* ------------------------------------------------------------------ *)
(* Parsing and per-file units. *)

type parsed = Impl of structure | Intf of signature | Fail of int * string

type unit_ = {
  u_path : string;
  u_mod : string;
  u_parsed : parsed;
  u_aliases : (string, string) Hashtbl.t;
  u_allows : allows;
}

let first_line s =
  match String.index_opt s '\n' with Some i -> String.sub s 0 i | None -> s

let parse_file path content =
  let lexbuf = Lexing.from_string content in
  Lexing.set_filename lexbuf path;
  try
    if Filename.check_suffix path ".mli" then Intf (Parse.interface lexbuf)
    else Impl (Parse.implementation lexbuf)
  with exn ->
    let line = (Lexing.lexeme_start_p lexbuf).Lexing.pos_lnum in
    Fail (line, first_line (Printexc.to_string exn))

let rec lid_last = function
  | Longident.Lident s -> s
  | Longident.Ldot (_, s) -> s
  | Longident.Lapply (_, l) -> lid_last l

(* Map a reference to (optional module last-component, name), chasing
   one step of local [module X = A.B] aliases — the same resolution
   contract as manetsem: library module basenames in this tree are
   distinct, so the last component identifies a module. *)
let resolve aliases lid =
  match lid with
  | Longident.Lident x -> (None, x)
  | Longident.Ldot (p, x) ->
      let m =
        match p with
        | Longident.Lident m0 -> (
            match Hashtbl.find_opt aliases m0 with Some r -> r | None -> m0)
        | _ -> lid_last p
      in
      (Some m, x)
  | Longident.Lapply (_, _) -> (None, lid_last lid)

let rec collect_aliases str tbl =
  List.iter
    (fun item ->
      match item.pstr_desc with
      | Pstr_module
          {
            pmb_name = { txt = Some name; _ };
            pmb_expr = { pmod_desc = Pmod_ident { txt; _ }; _ };
            _;
          } ->
          Hashtbl.replace tbl name (lid_last txt)
      | Pstr_module { pmb_expr = { pmod_desc = Pmod_structure sub; _ }; _ } ->
          collect_aliases sub tbl
      | _ -> ())
    str

let mk_unit (path, content) =
  let parsed = parse_file path content in
  let aliases = Hashtbl.create 8 in
  (match parsed with Impl str -> collect_aliases str aliases | _ -> ());
  {
    u_path = path;
    u_mod =
      String.capitalize_ascii
        (Filename.remove_extension (Filename.basename path));
    u_parsed = parsed;
    u_aliases = aliases;
    u_allows = scan_allows content;
  }

(* ------------------------------------------------------------------ *)
(* Record mutability: collect (label set, has mutable field) for every
   record type declared anywhere in the analyzed tree (.ml and .mli).
   A record literal is judged mutable only when at least one declaration
   matches its labels and every matching declaration has a mutable
   field, so label collisions between mutable and immutable types do
   not produce false positives. *)

let record_decls units =
  let out = ref [] in
  let it =
    {
      Ast_iterator.default_iterator with
      type_declaration =
        (fun self d ->
          (match d.ptype_kind with
          | Ptype_record lds ->
              let labels = List.map (fun ld -> ld.pld_name.Location.txt) lds in
              let has_mut =
                List.exists (fun ld -> ld.pld_mutable = Asttypes.Mutable) lds
              in
              out := (labels, has_mut) :: !out
          | _ -> ());
          Ast_iterator.default_iterator.type_declaration self d);
    }
  in
  List.iter
    (fun u ->
      match u.u_parsed with
      | Impl str -> it.structure it str
      | Intf sg -> it.signature it sg
      | Fail _ -> ())
    units;
  !out

let record_literal_mutable decls fields =
  let labels =
    List.map (fun (l, _) -> lid_last l.Location.txt) fields
  in
  let matching =
    List.filter
      (fun (ls, _) -> List.for_all (fun l -> List.mem l ls) labels)
      decls
  in
  matching <> [] && List.for_all (fun (_, m) -> m) matching

(* ------------------------------------------------------------------ *)
(* Mutable-allocation classifier.  Returns a human description of the
   first mutable allocation the expression evaluates to, peeling
   wrappers and looking through branches; [returns_mut] answers for
   full applications of local constructor functions (fixpoint below). *)

let mutable_builders =
  [
    ("Hashtbl", [ "create"; "copy"; "of_seq" ]);
    ("Queue", [ "create"; "copy"; "of_seq" ]);
    ("Buffer", [ "create" ]);
    ("Stack", [ "create"; "copy"; "of_seq" ]);
    ("Atomic", [ "make" ]);
    ("Weak", [ "create" ]);
    ( "Array",
      [
        "make"; "create"; "init"; "of_list"; "copy"; "make_matrix"; "append";
        "concat"; "sub";
      ] );
    ("Bytes", [ "make"; "create"; "init"; "of_string"; "copy"; "sub" ]);
  ]

let rec mutable_alloc ~decls ~aliases ~returns_mut e =
  let recur = mutable_alloc ~decls ~aliases ~returns_mut in
  match e.pexp_desc with
  | Pexp_constraint (x, _) | Pexp_coerce (x, _, _) | Pexp_open (_, x) ->
      recur x
  | Pexp_let (_, _, b) | Pexp_sequence (_, b) -> recur b
  | Pexp_array [] -> None (* zero cells: nothing to race on *)
  | Pexp_array _ -> Some "array literal"
  | Pexp_tuple xs -> List.find_map recur xs
  | Pexp_record (fields, base) ->
      if record_literal_mutable decls fields then
        Some "record with mutable fields"
      else (
        match List.find_map (fun (_, x) -> recur x) fields with
        | Some _ as r -> r
        | None -> Option.bind base recur)
  | Pexp_construct (_, Some x) | Pexp_variant (_, Some x) -> recur x
  | Pexp_ifthenelse (_, t, eo) -> (
      match recur t with Some _ as r -> r | None -> Option.bind eo recur)
  | Pexp_match (_, cases) | Pexp_try (_, cases) ->
      List.find_map (fun c -> recur c.pc_rhs) cases
  | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, _) -> (
      match resolve aliases txt with
      | None, "ref" -> Some "ref cell"
      | Some m, x ->
          if
            List.exists
              (fun (bm, xs) -> bm = m && List.mem x xs)
              mutable_builders
          then Some (m ^ "." ^ x)
          else if returns_mut (Some m, x) then
            Some
              (Printf.sprintf "call to %s.%s, which returns mutable state" m x)
          else None
      | None, x ->
          if returns_mut (None, x) then
            Some (Printf.sprintf "call to %s, which returns mutable state" x)
          else None)
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Top-level value summaries, nested modules included. *)

type top = {
  t_unit : unit_;
  t_mod : string;
  t_name : string;
  t_expr : expression;
  t_line : int;
}

let rec binding_name p =
  match p.ppat_desc with
  | Ppat_var { txt; _ } -> Some txt
  | Ppat_constraint (q, _) -> binding_name q
  | _ -> None

let collect_tops u =
  let out = ref [] in
  let rec go modname items =
    List.iter
      (fun item ->
        match item.pstr_desc with
        | Pstr_value (_, vbs) ->
            List.iter
              (fun vb ->
                match binding_name vb.pvb_pat with
                | Some name ->
                    out :=
                      {
                        t_unit = u;
                        t_mod = modname;
                        t_name = name;
                        t_expr = vb.pvb_expr;
                        t_line = vb.pvb_loc.Location.loc_start.Lexing.pos_lnum;
                      }
                      :: !out
                | None -> ())
              vbs
        | Pstr_module
            {
              pmb_name = { txt = Some sub; _ };
              pmb_expr = { pmod_desc = Pmod_structure str; _ };
              _;
            } ->
            go sub str
        | _ -> ())
      items
  in
  (match u.u_parsed with Impl str -> go u.u_mod str | _ -> ());
  List.rev !out

let rec is_function e =
  match e.pexp_desc with
  | Pexp_fun _ | Pexp_function _ | Pexp_newtype _ -> true
  | Pexp_constraint (x, _) | Pexp_open (_, x) -> is_function x
  | _ -> false

let rec peel_funs e =
  match e.pexp_desc with
  | Pexp_fun (_, _, _, body) -> peel_funs body
  | Pexp_newtype (_, body) -> peel_funs body
  | Pexp_constraint (x, _) -> peel_funs x
  | _ -> e

let rec peel_wrappers e =
  match e.pexp_desc with
  | Pexp_constraint (x, _) | Pexp_coerce (x, _, _) | Pexp_open (_, x) ->
      peel_wrappers x
  | _ -> e

let rec strip_lets e =
  match e.pexp_desc with
  | Pexp_let (_, _, b) | Pexp_sequence (_, b) -> strip_lets b
  | Pexp_constraint (x, _) | Pexp_open (_, x) -> strip_lets x
  | _ -> e

(* Constructor-function fixpoint: a top-level function "returns mutable
   state" when, after peeling its parameters, some evaluation path ends
   in a mutable allocation or a full application of another such
   function.  This lets [let make () = Hashtbl.create 64] taint
   [let registry = make ()] even across modules. *)
let returns_mut_fixpoint decls tops =
  let tbl = Hashtbl.create 32 in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun t ->
        if (not (Hashtbl.mem tbl (t.t_mod, t.t_name))) && is_function t.t_expr
        then begin
          let member c =
            match c with
            | None, x -> Hashtbl.mem tbl (t.t_mod, x)
            | Some m, x -> Hashtbl.mem tbl (m, x)
          in
          let ret = peel_funs t.t_expr in
          match
            mutable_alloc ~decls ~aliases:t.t_unit.u_aliases
              ~returns_mut:member ret
          with
          | Some _ ->
              Hashtbl.replace tbl (t.t_mod, t.t_name) ();
              changed := true
          | None -> ()
        end)
      tops
  done;
  fun t_mod c ->
    match c with
    | None, x -> Hashtbl.mem tbl (t_mod, x)
    | Some m, x -> Hashtbl.mem tbl (m, x)

(* ------------------------------------------------------------------ *)
(* Rules (a)+(b): top-level mutable state, lazy bindings, escaping memo
   tables. *)

let toplevel_findings decls returns_mut tops =
  let out = ref [] in
  let emit t line rule msg =
    out := { file = t.t_unit.u_path; line; rule; msg } :: !out
  in
  List.iter
    (fun t ->
      let alloc e =
        mutable_alloc ~decls ~aliases:t.t_unit.u_aliases
          ~returns_mut:(returns_mut t.t_mod) e
      in
      let e = peel_wrappers t.t_expr in
      (* A plain function value holds no state of its own; lets inside
         its body allocate per call. *)
      if not (is_function e) then begin
        (* The memo-table idiom: a let-chain that allocates mutable
           state and then evaluates to a closure capturing it.  The
           allocation happens once, at module init. *)
        let mut_locals = Hashtbl.create 4 in
        let rec memo_chain e =
          match e.pexp_desc with
          | Pexp_let (_, vbs, body) ->
              let body_is_closure = is_function (strip_lets body) in
              List.iter
                (fun vb ->
                  match alloc vb.pvb_expr with
                  | Some what ->
                      (match binding_name vb.pvb_pat with
                      | Some n -> Hashtbl.replace mut_locals n what
                      | None -> ());
                      if body_is_closure then
                        emit t vb.pvb_loc.Location.loc_start.Lexing.pos_lnum
                          "escaping-memo"
                          (Printf.sprintf
                             "%s allocated at module init escapes into the \
                              closure %s.%s; every domain shares one table"
                             what t.t_mod t.t_name)
                  | None -> ())
                vbs;
              memo_chain body
          | Pexp_constraint (x, _) | Pexp_open (_, x) -> memo_chain x
          | _ -> ()
        in
        memo_chain e;
        let final = peel_wrappers (strip_lets e) in
        match final.pexp_desc with
        | Pexp_lazy _ ->
            emit t t.t_line "toplevel-lazy"
              (Printf.sprintf
                 "top-level lazy %s.%s: forcing is not atomic across \
                  domains; make it a per-scenario value"
                 t.t_mod t.t_name)
        | Pexp_ident { txt = Longident.Lident n; _ }
          when Hashtbl.mem mut_locals n ->
            emit t t.t_line "toplevel-state"
              (Printf.sprintf
                 "top-level mutable value %s.%s (%s bound in its own let \
                  chain) is shared by every domain"
                 t.t_mod t.t_name (Hashtbl.find mut_locals n))
        | _ when is_function final -> ()
        | _ -> (
            match alloc e with
            | Some what ->
                emit t t.t_line "toplevel-state"
                  (Printf.sprintf
                     "top-level mutable value %s.%s (%s) is shared by every \
                      domain; allocate it per scenario or prove it read-only"
                     t.t_mod t.t_name what)
            | None -> ())
      end)
    tops;
  !out

(* ------------------------------------------------------------------ *)
(* Rule (c): global RNG. *)

let rng_ident aliases txt =
  match resolve aliases txt with
  | Some "Random", x ->
      Some
        (Printf.sprintf
           "Random.%s draws from the process-global RNG; split the \
            engine's Prng instead"
           x)
  | Some "State", "make_self_init" ->
      Some
        "Random.State.make_self_init seeds from the environment; derive \
         the state from the run seed"
  | _ -> None

let global_rng_direct u =
  let out = ref [] in
  (match u.u_parsed with
  | Impl str ->
      let it =
        {
          Ast_iterator.default_iterator with
          expr =
            (fun self e ->
              (match e.pexp_desc with
              | Pexp_ident { txt; loc } -> (
                  match rng_ident u.u_aliases txt with
                  | Some msg ->
                      out :=
                        (loc.Location.loc_start.Lexing.pos_lnum, msg) :: !out
                  | None -> ())
              | _ -> ());
              Ast_iterator.default_iterator.expr self e);
        }
      in
      it.structure it str
  | _ -> ());
  List.rev !out

(* Call-graph reachability: exported functions that can reach a
   global-RNG user through local calls without using it directly
   themselves (direct uses are already reported at the use site). *)
let rng_reach_findings units tops =
  let idents_of t =
    let acc = ref [] in
    let it =
      {
        Ast_iterator.default_iterator with
        expr =
          (fun self e ->
            (match e.pexp_desc with
            | Pexp_ident { txt; _ } ->
                acc := resolve t.t_unit.u_aliases txt :: !acc
            | _ -> ());
            Ast_iterator.default_iterator.expr self e);
      }
    in
    it.expr it t.t_expr;
    !acc
  in
  let direct = Hashtbl.create 16 in
  List.iter
    (fun t ->
      if
        List.exists
          (function
            | Some "Random", _ | Some "State", "make_self_init" -> true
            | _ -> false)
          (idents_of t)
      then Hashtbl.replace direct (t.t_mod, t.t_name) ())
    tops;
  let reach = Hashtbl.copy direct in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun t ->
        if
          (not (Hashtbl.mem reach (t.t_mod, t.t_name)))
          && List.exists
               (function
                 | None, x -> Hashtbl.mem reach (t.t_mod, x)
                 | Some m, x -> Hashtbl.mem reach (m, x))
               (idents_of t)
        then begin
          Hashtbl.replace reach (t.t_mod, t.t_name) ();
          changed := true
        end)
      tops
  done;
  let exported = Hashtbl.create 64 in
  List.iter
    (fun u ->
      match u.u_parsed with
      | Intf sg ->
          List.iter
            (fun item ->
              match item.psig_desc with
              | Psig_value vd ->
                  Hashtbl.replace exported (u.u_mod, vd.pval_name.Location.txt)
                    ()
              | _ -> ())
            sg
      | _ -> ())
    units;
  List.filter_map
    (fun t ->
      if
        Hashtbl.mem reach (t.t_mod, t.t_name)
        && (not (Hashtbl.mem direct (t.t_mod, t.t_name)))
        && Hashtbl.mem exported (t.t_mod, t.t_name)
      then
        Some
          {
            file = t.t_unit.u_path;
            line = t.t_line;
            rule = "global-rng";
            msg =
              Printf.sprintf
                "exported %s.%s reaches the process-global Random through \
                 its call graph; thread an engine Prng down instead"
                t.t_mod t.t_name;
          }
      else None)
    tops

(* ------------------------------------------------------------------ *)
(* Rule (d): domain primitives outside the sanctioned scheduler. *)

let domain_findings u =
  if domain_allowlisted u.u_path then []
  else
    let out = ref [] in
    let emit line m x =
      out :=
        {
          file = u.u_path;
          line;
          rule = "domain-primitive";
          msg =
            Printf.sprintf
              "%s outside lib/sim/parallel.ml: concurrency primitives \
               belong only in the sanctioned scheduler"
              (match x with Some x -> m ^ "." ^ x | None -> "open " ^ m);
        }
        :: !out
    in
    (match u.u_parsed with
    | Impl str ->
        let check_open loc lid =
          let m = lid_last lid in
          let m =
            match Hashtbl.find_opt u.u_aliases m with Some r -> r | None -> m
          in
          if List.mem m domain_modules then
            emit loc.Location.loc_start.Lexing.pos_lnum m None
        in
        let it =
          {
            Ast_iterator.default_iterator with
            expr =
              (fun self e ->
                (match e.pexp_desc with
                | Pexp_ident { txt; loc } -> (
                    match resolve u.u_aliases txt with
                    | Some m, x when List.mem m domain_modules ->
                        emit loc.Location.loc_start.Lexing.pos_lnum m (Some x)
                    | _ -> ())
                | _ -> ());
                Ast_iterator.default_iterator.expr self e);
            open_declaration =
              (fun self od ->
                (match od.popen_expr.pmod_desc with
                | Pmod_ident { txt; _ } -> check_open od.popen_loc txt
                | _ -> ());
                Ast_iterator.default_iterator.open_declaration self od);
            module_binding =
              (fun self mb ->
                (match (mb.pmb_name.Location.txt, mb.pmb_expr.pmod_desc) with
                | Some _, Pmod_ident { txt; _ } ->
                    let m = lid_last txt in
                    if List.mem m domain_modules then
                      emit mb.pmb_loc.Location.loc_start.Lexing.pos_lnum m None
                | _ -> ());
                Ast_iterator.default_iterator.module_binding self mb);
          }
        in
        it.structure it str
    | _ -> ());
    List.rev !out

(* ------------------------------------------------------------------ *)
(* Assembly. *)

let compare_findings a b =
  match compare a.file b.file with
  | 0 -> (
      match compare a.line b.line with
      | 0 -> (
          match compare a.rule b.rule with 0 -> compare a.msg b.msg | c -> c)
      | c -> c)
  | c -> c

let analyze files =
  let units = List.map mk_unit files in
  let decls = record_decls units in
  let tops = List.concat_map collect_tops units in
  let returns_mut = returns_mut_fixpoint decls tops in
  let parse_failures =
    List.filter_map
      (fun u ->
        match u.u_parsed with
        | Fail (line, msg) ->
            Some
              {
                file = u.u_path;
                line;
                rule = "parse";
                msg = "file does not parse: " ^ msg;
              }
        | _ -> None)
      units
  in
  let rng_direct =
    List.concat_map
      (fun u ->
        List.map
          (fun (line, msg) -> { file = u.u_path; line; rule = "global-rng"; msg })
          (global_rng_direct u))
      units
  in
  let annotation_failures =
    List.concat_map
      (fun u ->
        List.map
          (fun line ->
            {
              file = u.u_path;
              line;
              rule = "annotation";
              msg =
                "manetdom allow directive needs at least one known rule name \
                 and a rationale (prose after the rule names)";
            })
          u.u_allows.a_bad)
      units
  in
  let findings =
    parse_failures
    @ toplevel_findings decls returns_mut tops
    @ rng_direct
    @ rng_reach_findings units tops
    @ List.concat_map domain_findings units
    @ annotation_failures
  in
  let allows_for =
    let tbl = Hashtbl.create 64 in
    List.iter (fun u -> Hashtbl.replace tbl u.u_path u.u_allows) units;
    fun path ->
      match Hashtbl.find_opt tbl path with Some a -> a | None -> no_allows
  in
  findings
  |> List.filter (fun f -> not (suppressed (allows_for f.file) f))
  |> List.sort_uniq compare_findings
