module Scenario = Manetsec.Scenario
module Mobility = Manetsec.Sim.Mobility
module Net = Manetsec.Sim.Net
module Engine = Manetsec.Sim.Engine
module Stats = Manetsec.Sim.Stats
module Parallel = Manetsec.Sim.Parallel
module Adversary = Manetsec.Adversary
module Faults = Manetsec.Faults
module Obs = Manetsec.Obs
module Json = Manetsec.Obs_json
module Audit = Manetsec.Audit
module Metrics = Manetsec.Metrics
module Report = Manetsec.Obs_report
module Merge = Manetsec.Merge

(* --- types --------------------------------------------------------- *)

type topology =
  | Chain of { spacing : float }
  | Grid of { cols : int; spacing : float }
  | Random of { width : float; height : float }
  | Explicit of { width : float; height : float; positions : (float * float) list }

type mobility =
  | Static
  | Waypoint of { min_speed : float; max_speed : float; pause : float }
  | Walk of { speed : float; turn_interval : float }

type protocol = Secure | Dsr | Srp
type suite = Mock | Rsa of int

type flow = {
  flow_src : int;
  flow_dst : int;
  flow_interval : float;
  flow_size : int;
  flow_start : float option;
  flow_duration : float option;
}

type adversary_kind =
  | Blackhole
  | Grayhole of float
  | Replayer
  | Rerr_spammer of float
  | Identity_churner of float
  | Sleeper

type adversary = { adv_node : int; adv_kind : adversary_kind }

type fault =
  | Crash of { node : int; at : float }
  | Restart of { node : int; at : float }
  | Outage of { node : int; down_from : float; down_until : float }
  | Link_down of { a : int; b : int; at : float }
  | Link_up of { a : int; b : int; at : float }
  | Flap of { a : int; b : int; flap_from : float; flap_until : float; period : float }
  | Partition of { cut_from : float; cut_until : float; members : int list }
  | Degrade of {
      bad_from : float;
      bad_until : float;
      loss_good : float;
      loss_bad : float;
      p_good_to_bad : float;
      p_bad_to_good : float;
    }
  | Churn of {
      churn_seed : int;
      churn_nodes : int list;
      horizon : float;
      mean_up : float;
      mean_down : float;
    }

type export =
  | Stats_csv
  | Audit_jsonl
  | Trace_jsonl
  | Metrics_csv
  | Metrics_prom
  | Report_json

type t = {
  name : string;
  seed : int;
  nodes : int;
  range : float;
  loss : float;
  promiscuous : bool;
  protocol : protocol;
  suite : suite;
  dns : bool;
  topology : topology;
  mobility : mobility;
  bootstrap : float option;
  duration : float;
  run_until : float option;
  flows : flow list;
  adversaries : adversary list;
  faults : fault list;
  exports : export list;
}

(* --- positioned errors --------------------------------------------- *)

exception Error of { pos : Sexp.pos; msg : string }

let err pos fmt = Printf.ksprintf (fun msg -> raise (Error { pos; msg })) fmt

let describe = function
  | Sexp.Atom (_, a) -> Printf.sprintf "atom %s" (if String.equal a "" then {|""|} else a)
  | Sexp.List _ -> "a list"

(* --- atom readers --------------------------------------------------- *)

let atom what = function
  | Sexp.Atom (p, s) -> (p, s)
  | Sexp.List (p, _) -> err p "expected %s, got a list" what

let int_v what form =
  let p, s = atom what form in
  match int_of_string_opt s with
  | Some i -> i
  | None -> err p "expected %s (an integer), got %s" what s

let float_v what form =
  let p, s = atom what form in
  match float_of_string_opt s with
  | Some x when Float.is_finite x -> x
  | _ -> err p "expected %s (a finite number), got %s" what s

let bool_v what form =
  let p, s = atom what form in
  if String.equal s Schema.kw_true then true
  else if String.equal s Schema.kw_false then false
  else
    err p "expected %s (%s or %s), got %s" what Schema.kw_true Schema.kw_false s

let positive what form =
  let x = float_v what form in
  if x <= 0.0 then err (Sexp.pos_of form) "expected %s > 0, got %g" what x;
  x

let non_negative what form =
  let x = float_v what form in
  if x < 0.0 then err (Sexp.pos_of form) "expected %s >= 0, got %g" what x;
  x

let fraction what form =
  let x = float_v what form in
  if x < 0.0 || x > 1.0 then
    err (Sexp.pos_of form) "%s out of range: expected a value in [0, 1], got %g"
      what x;
  x

(* --- keyword-headed sub-forms --------------------------------------- *)

type field = {
  f_key : string;
  f_kpos : Sexp.pos;
  f_pos : Sexp.pos;
  f_args : Sexp.t list;
}

let field_of form =
  match form with
  | Sexp.List (p, Sexp.Atom (kp, key) :: args) ->
      { f_key = key; f_kpos = kp; f_pos = p; f_args = args }
  | _ ->
      err (Sexp.pos_of form) "expected a (keyword ...) form, got %s"
        (describe form)

(* Decode [forms] as keyword-headed parameters drawn from [allowed],
   rejecting unknown keywords and duplicates (except keys listed in
   [multi]). *)
let subfields ~what ?(multi = []) allowed forms =
  let fs = List.map field_of forms in
  let seen = ref [] in
  List.iter
    (fun f ->
      if not (List.exists (String.equal f.f_key) allowed) then
        err f.f_kpos "unknown %s parameter %s, expected one of: %s" what f.f_key
          (String.concat ", " allowed);
      if
        List.exists (String.equal f.f_key) !seen
        && not (List.exists (String.equal f.f_key) multi)
      then err f.f_kpos "duplicate %s parameter %s" what f.f_key;
      seen := f.f_key :: !seen)
    fs;
  fs

let find_param fs key = List.find_opt (fun f -> String.equal f.f_key key) fs

let one f =
  match f.f_args with
  | [ v ] -> v
  | _ -> err f.f_pos "parameter (%s ...) expects exactly one value" f.f_key

let req ~what pos fs key =
  match find_param fs key with
  | Some f -> one f
  | None -> err pos "%s is missing its required (%s ...) parameter" what key

let opt fs key ~decode ~default =
  match find_param fs key with Some f -> decode (one f) | None -> default

(* --- node-index checks ---------------------------------------------- *)

let node_idx ~n what form =
  let i = int_v what form in
  if i < 0 || i >= n then
    err (Sexp.pos_of form) "%s out of range: %d is not in [0, %d)" what i n;
  i

let non_dns_node ~n ~dns what form =
  let i = node_idx ~n what form in
  if dns && i = 0 then
    err (Sexp.pos_of form)
      "node 0 hosts the DNS server and cannot be used as %s" what;
  i

(* --- sub-decoders --------------------------------------------------- *)

let decode_topology ~n form =
  let f = field_of form in
  let bad () =
    err f.f_kpos "unknown topology %s, expected one of: %s" f.f_key
      (String.concat ", " Schema.topologies)
  in
  if String.equal f.f_key Schema.kw_chain then begin
    let fs = subfields ~what:"chain topology" [ Schema.kw_spacing ] f.f_args in
    let spacing =
      positive Schema.kw_spacing (req ~what:"chain topology" f.f_pos fs Schema.kw_spacing)
    in
    Chain { spacing }
  end
  else if String.equal f.f_key Schema.kw_grid then begin
    let fs =
      subfields ~what:"grid topology" [ Schema.kw_cols; Schema.kw_spacing ]
        f.f_args
    in
    let cols = int_v Schema.kw_cols (req ~what:"grid topology" f.f_pos fs Schema.kw_cols) in
    if cols < 1 then err f.f_pos "grid topology needs cols >= 1, got %d" cols;
    let spacing =
      positive Schema.kw_spacing (req ~what:"grid topology" f.f_pos fs Schema.kw_spacing)
    in
    Grid { cols; spacing }
  end
  else if String.equal f.f_key Schema.kw_random then begin
    let fs =
      subfields ~what:"random topology" [ Schema.kw_width; Schema.kw_height ]
        f.f_args
    in
    let width =
      positive Schema.kw_width (req ~what:"random topology" f.f_pos fs Schema.kw_width)
    in
    let height =
      positive Schema.kw_height (req ~what:"random topology" f.f_pos fs Schema.kw_height)
    in
    Random { width; height }
  end
  else if String.equal f.f_key Schema.kw_explicit then begin
    let fs =
      subfields ~what:"explicit topology" ~multi:[ Schema.kw_node ]
        [ Schema.kw_width; Schema.kw_height; Schema.kw_node ]
        f.f_args
    in
    let width =
      positive Schema.kw_width (req ~what:"explicit topology" f.f_pos fs Schema.kw_width)
    in
    let height =
      positive Schema.kw_height
        (req ~what:"explicit topology" f.f_pos fs Schema.kw_height)
    in
    let placements =
      List.filter_map
        (fun pf ->
          if not (String.equal pf.f_key Schema.kw_node) then None
          else
            match pf.f_args with
            | [ idx; x; y ] ->
                Some
                  ( node_idx ~n "node id" idx,
                    Sexp.pos_of idx,
                    (float_v "x" x, float_v "y" y) )
            | _ ->
                err pf.f_pos
                  "expected (%s <id> <x> <y>) in explicit topology"
                  Schema.kw_node)
        fs
    in
    let seen = ref [] in
    List.iter
      (fun (i, p, _) ->
        if List.exists (Int.equal i) !seen then
          err p "duplicate node id %d in explicit topology" i;
        seen := i :: !seen)
      placements;
    if List.length placements <> n then
      err f.f_pos "explicit topology places %d node(s), expected %d (one per node)"
        (List.length placements) n;
    let by_id = List.sort (fun (i, _, _) (j, _, _) -> Int.compare i j) placements in
    Explicit { width; height; positions = List.map (fun (_, _, xy) -> xy) by_id }
  end
  else bad ()

let decode_mobility form =
  match form with
  | Sexp.Atom (p, s) ->
      if String.equal s Schema.kw_static then Static
      else
        err p "unknown mobility %s, expected one of: %s" s
          (String.concat ", " Schema.mobilities)
  | Sexp.List _ ->
      let f = field_of form in
      if String.equal f.f_key Schema.kw_waypoint then begin
        let fs =
          subfields ~what:"waypoint mobility"
            [ Schema.kw_min_speed; Schema.kw_max_speed; Schema.kw_pause ]
            f.f_args
        in
        let min_speed =
          opt fs Schema.kw_min_speed ~decode:(positive Schema.kw_min_speed) ~default:1.0
        in
        let max_speed =
          opt fs Schema.kw_max_speed ~decode:(positive Schema.kw_max_speed) ~default:10.0
        in
        if max_speed < min_speed then
          err f.f_pos "waypoint mobility needs max-speed >= min-speed";
        let pause =
          opt fs Schema.kw_pause ~decode:(non_negative Schema.kw_pause) ~default:2.0
        in
        Waypoint { min_speed; max_speed; pause }
      end
      else if String.equal f.f_key Schema.kw_walk then begin
        let fs =
          subfields ~what:"walk mobility"
            [ Schema.kw_speed; Schema.kw_turn_interval ]
            f.f_args
        in
        let speed =
          opt fs Schema.kw_speed ~decode:(positive Schema.kw_speed) ~default:5.0
        in
        let turn_interval =
          opt fs Schema.kw_turn_interval ~decode:(positive Schema.kw_turn_interval)
            ~default:4.0
        in
        Walk { speed; turn_interval }
      end
      else
        err f.f_kpos "unknown mobility %s, expected one of: %s" f.f_key
          (String.concat ", " Schema.mobilities)

let decode_protocol form =
  let p, s = atom "the protocol" form in
  if String.equal s Schema.kw_secure then Secure
  else if String.equal s Schema.kw_dsr then Dsr
  else if String.equal s Schema.kw_srp then Srp
  else
    err p "unknown protocol %s, expected one of: %s" s
      (String.concat ", " Schema.protocols)

let decode_suite form =
  match form with
  | Sexp.Atom (p, s) ->
      if String.equal s Schema.kw_mock then Mock
      else if String.equal s Schema.kw_rsa then
        err p "the rsa suite needs a modulus size: write (%s <bits>)"
          Schema.kw_rsa
      else
        err p "unknown suite %s, expected one of: %s" s
          (String.concat ", " Schema.suites)
  | Sexp.List _ ->
      let f = field_of form in
      if String.equal f.f_key Schema.kw_rsa then begin
        let bits = int_v "the rsa modulus bits" (one f) in
        if bits < 64 then
          err f.f_pos "the rsa modulus must be at least 64 bits, got %d" bits;
        Rsa bits
      end
      else
        err f.f_kpos "unknown suite %s, expected one of: %s" f.f_key
          (String.concat ", " Schema.suites)

let decode_flow ~n form =
  let f = field_of form in
  if not (String.equal f.f_key Schema.kw_cbr) then
    err f.f_kpos "unknown traffic generator %s, expected (%s ...)" f.f_key
      Schema.kw_cbr;
  let fs =
    subfields ~what:"cbr flow"
      [
        Schema.kw_src; Schema.kw_dst; Schema.kw_interval; Schema.kw_size;
        Schema.kw_start; Schema.kw_duration;
      ]
      f.f_args
  in
  let flow_src =
    node_idx ~n "the flow source" (req ~what:"cbr flow" f.f_pos fs Schema.kw_src)
  in
  let flow_dst =
    node_idx ~n "the flow destination"
      (req ~what:"cbr flow" f.f_pos fs Schema.kw_dst)
  in
  if Int.equal flow_src flow_dst then
    err f.f_pos "cbr flow source and destination are both node %d" flow_src;
  let flow_interval =
    opt fs Schema.kw_interval ~decode:(positive Schema.kw_interval) ~default:0.5
  in
  let flow_size =
    opt fs Schema.kw_size ~default:512 ~decode:(fun form ->
        let s = int_v Schema.kw_size form in
        if s <= 0 then err (Sexp.pos_of form) "expected size > 0, got %d" s;
        s)
  in
  let flow_start =
    opt fs Schema.kw_start ~default:None ~decode:(fun form ->
        Some (non_negative Schema.kw_start form))
  in
  let flow_duration =
    opt fs Schema.kw_duration ~default:None ~decode:(fun form ->
        Some (non_negative Schema.kw_duration form))
  in
  { flow_src; flow_dst; flow_interval; flow_size; flow_start; flow_duration }

let decode_adversary ~n ~dns form =
  let f = field_of form in
  if not (List.exists (String.equal f.f_key) Schema.adversary_kinds) then
    err f.f_kpos "unknown adversary kind %s, expected one of: %s" f.f_key
      (String.concat ", " Schema.adversary_kinds);
  let node_form, params =
    match f.f_args with
    | node :: rest -> (node, rest)
    | [] -> err f.f_pos "adversary (%s ...) names no node" f.f_key
  in
  let adv_node = non_dns_node ~n ~dns "an adversary" node_form in
  let fs =
    subfields ~what:"adversary" [ Schema.kw_prob; Schema.kw_every ] params
  in
  let no_params () =
    match fs with
    | [] -> ()
    | p :: _ -> err p.f_kpos "adversary %s takes no parameters" f.f_key
  in
  let every ~default = opt fs Schema.kw_every ~decode:(positive Schema.kw_every) ~default in
  let adv_kind =
    if String.equal f.f_key Schema.kw_blackhole then begin
      no_params ();
      Blackhole
    end
    else if String.equal f.f_key Schema.kw_grayhole then
      Grayhole (opt fs Schema.kw_prob ~decode:(fraction Schema.kw_prob) ~default:0.5)
    else if String.equal f.f_key Schema.kw_replayer then begin
      no_params ();
      Replayer
    end
    else if String.equal f.f_key Schema.kw_rerr_spammer then
      Rerr_spammer (every ~default:1.0)
    else if String.equal f.f_key Schema.kw_identity_churner then
      Identity_churner (every ~default:10.0)
    else if String.equal f.f_key Schema.kw_sleeper then begin
      no_params ();
      Sleeper
    end
    else
      err f.f_kpos "unknown adversary kind %s, expected one of: %s" f.f_key
        (String.concat ", " Schema.adversary_kinds)
  in
  { adv_node; adv_kind }

let decode_fault ~n ~dns form =
  let f = field_of form in
  if not (List.exists (String.equal f.f_key) Schema.fault_kinds) then
    err f.f_kpos "unknown fault kind %s, expected one of: %s" f.f_key
      (String.concat ", " Schema.fault_kinds);
  let churn_target what form = non_dns_node ~n ~dns what form in
  let window ~what fs =
    let from_ =
      non_negative Schema.kw_from (req ~what f.f_pos fs Schema.kw_from)
    in
    let until = non_negative Schema.kw_until (req ~what f.f_pos fs Schema.kw_until) in
    if until <= from_ then
      err f.f_pos "%s window is empty: until %g is not after from %g" what until
        from_;
    (from_, until)
  in
  if String.equal f.f_key Schema.kw_crash || String.equal f.f_key Schema.kw_restart
  then begin
    let node_form, params =
      match f.f_args with
      | node :: rest -> (node, rest)
      | [] -> err f.f_pos "fault (%s ...) names no node" f.f_key
    in
    let node = churn_target "a crash/restart fault" node_form in
    let fs = subfields ~what:"fault" [ Schema.kw_at ] params in
    let at = non_negative Schema.kw_at (req ~what:"the fault" f.f_pos fs Schema.kw_at) in
    if String.equal f.f_key Schema.kw_crash then Crash { node; at }
    else Restart { node; at }
  end
  else if String.equal f.f_key Schema.kw_outage then begin
    let node_form, params =
      match f.f_args with
      | node :: rest -> (node, rest)
      | [] -> err f.f_pos "fault (%s ...) names no node" f.f_key
    in
    let node = churn_target "an outage fault" node_form in
    let fs = subfields ~what:Schema.kw_outage [ Schema.kw_from; Schema.kw_until ] params in
    let down_from, down_until = window ~what:"the outage" fs in
    Outage { node; down_from; down_until }
  end
  else if
    String.equal f.f_key Schema.kw_link_down
    || String.equal f.f_key Schema.kw_link_up
  then begin
    let a_form, b_form, params =
      match f.f_args with
      | a :: b :: rest -> (a, b, rest)
      | _ -> err f.f_pos "fault (%s ...) needs two link endpoints" f.f_key
    in
    let a = node_idx ~n "a link endpoint" a_form in
    let b = node_idx ~n "a link endpoint" b_form in
    if Int.equal a b then
      err f.f_pos "link fault endpoints are both node %d" a;
    let fs = subfields ~what:"link fault" [ Schema.kw_at ] params in
    let at = non_negative Schema.kw_at (req ~what:"the link fault" f.f_pos fs Schema.kw_at) in
    if String.equal f.f_key Schema.kw_link_down then Link_down { a; b; at }
    else Link_up { a; b; at }
  end
  else if String.equal f.f_key Schema.kw_flap then begin
    let a_form, b_form, params =
      match f.f_args with
      | a :: b :: rest -> (a, b, rest)
      | _ -> err f.f_pos "fault (%s ...) needs two link endpoints" f.f_key
    in
    let a = node_idx ~n "a link endpoint" a_form in
    let b = node_idx ~n "a link endpoint" b_form in
    if Int.equal a b then err f.f_pos "link fault endpoints are both node %d" a;
    let fs =
      subfields ~what:Schema.kw_flap
        [ Schema.kw_from; Schema.kw_until; Schema.kw_period ]
        params
    in
    let flap_from, flap_until = window ~what:"the flap" fs in
    let period =
      positive Schema.kw_period (req ~what:"the flap" f.f_pos fs Schema.kw_period)
    in
    Flap { a; b; flap_from; flap_until; period }
  end
  else if String.equal f.f_key Schema.kw_partition then begin
    let fs =
      subfields ~what:Schema.kw_partition
        [ Schema.kw_from; Schema.kw_until; Schema.kw_nodes ]
        f.f_args
    in
    let cut_from, cut_until = window ~what:"the partition" fs in
    let members =
      match find_param fs Schema.kw_nodes with
      | None ->
          err f.f_pos "the partition is missing its (%s ...) member list"
            Schema.kw_nodes
      | Some mf ->
          if List.length mf.f_args = 0 then
            err mf.f_pos "the partition member list is empty";
          List.map (node_idx ~n "a partition member") mf.f_args
    in
    Partition { cut_from; cut_until; members }
  end
  else if String.equal f.f_key Schema.kw_degrade then begin
    let fs =
      subfields ~what:Schema.kw_degrade
        [
          Schema.kw_from; Schema.kw_until; Schema.kw_loss_good;
          Schema.kw_loss_bad; Schema.kw_p_good_to_bad; Schema.kw_p_bad_to_good;
        ]
        f.f_args
    in
    let bad_from, bad_until = window ~what:"the degrade" fs in
    let loss_good =
      opt fs Schema.kw_loss_good ~decode:(fraction Schema.kw_loss_good) ~default:0.01
    in
    let loss_bad =
      opt fs Schema.kw_loss_bad ~decode:(fraction Schema.kw_loss_bad) ~default:0.8
    in
    let p_good_to_bad =
      fraction Schema.kw_p_good_to_bad
        (req ~what:"the degrade" f.f_pos fs Schema.kw_p_good_to_bad)
    in
    let p_bad_to_good =
      fraction Schema.kw_p_bad_to_good
        (req ~what:"the degrade" f.f_pos fs Schema.kw_p_bad_to_good)
    in
    Degrade { bad_from; bad_until; loss_good; loss_bad; p_good_to_bad; p_bad_to_good }
  end
  else if String.equal f.f_key Schema.kw_churn then begin
    let fs =
      subfields ~what:Schema.kw_churn
        [
          Schema.kw_seed; Schema.kw_nodes; Schema.kw_horizon; Schema.kw_mean_up;
          Schema.kw_mean_down;
        ]
        f.f_args
    in
    let churn_seed =
      int_v "the churn seed" (req ~what:"the churn" f.f_pos fs Schema.kw_seed)
    in
    let churn_nodes =
      match find_param fs Schema.kw_nodes with
      | None ->
          err f.f_pos "the churn is missing its (%s ...) node list"
            Schema.kw_nodes
      | Some mf ->
          if List.length mf.f_args = 0 then
            err mf.f_pos "the churn node list is empty";
          List.map (churn_target "a churning node") mf.f_args
    in
    let horizon =
      positive Schema.kw_horizon (req ~what:"the churn" f.f_pos fs Schema.kw_horizon)
    in
    let mean_up =
      positive Schema.kw_mean_up (req ~what:"the churn" f.f_pos fs Schema.kw_mean_up)
    in
    let mean_down =
      positive Schema.kw_mean_down (req ~what:"the churn" f.f_pos fs Schema.kw_mean_down)
    in
    Churn { churn_seed; churn_nodes; horizon; mean_up; mean_down }
  end
  else
    err f.f_kpos "unknown fault kind %s, expected one of: %s" f.f_key
      (String.concat ", " Schema.fault_kinds)

let decode_export form =
  let p, s = atom "an export kind" form in
  if String.equal s Schema.kw_stats_csv then Stats_csv
  else if String.equal s Schema.kw_audit_jsonl then Audit_jsonl
  else if String.equal s Schema.kw_trace_jsonl then Trace_jsonl
  else if String.equal s Schema.kw_metrics_csv then Metrics_csv
  else if String.equal s Schema.kw_metrics_prom then Metrics_prom
  else if String.equal s Schema.kw_report_json then Report_json
  else
    err p "unknown export %s, expected one of: %s" s
      (String.concat ", " Schema.export_kinds)

(* --- the toplevel decoder ------------------------------------------- *)

let name_ok s =
  String.length s > 0
  && String.for_all
       (fun c ->
         (c >= 'a' && c <= 'z')
         || (c >= '0' && c <= '9')
         || c = '-' || c = '_')
       s

let of_sexp form =
  let top_pos, body =
    match form with
    | Sexp.List (p, Sexp.Atom (_, head) :: body)
      when String.equal head Schema.kw_scenario ->
        (p, body)
    | _ ->
        err (Sexp.pos_of form) "expected a (%s ...) form, got %s"
          Schema.kw_scenario (describe form)
  in
  let fields = List.map field_of body in
  let seen = ref [] in
  List.iter
    (fun f ->
      if not (List.exists (String.equal f.f_key) Schema.fields) then
        err f.f_kpos "unknown field %s, expected one of: %s" f.f_key
          (String.concat ", " Schema.fields);
      if List.exists (String.equal f.f_key) !seen then
        err f.f_kpos "duplicate field %s" f.f_key;
      seen := f.f_key :: !seen)
    fields;
  let find key = List.find_opt (fun f -> String.equal f.f_key key) fields in
  let require key =
    match find key with
    | Some f -> f
    | None -> err top_pos "missing required field (%s ...)" key
  in
  (* schema first: refuse to interpret anything under the wrong version *)
  (let f = require Schema.kw_schema in
   match f.f_args with
   | [ n_form; v_form ] ->
       let np, nm = atom "the schema name" n_form in
       if not (String.equal nm Schema.schema_name) then
         err np "expected schema %s, got %s" Schema.schema_name nm;
       let ver = int_v "the schema version" v_form in
       if ver <> Schema.version then
         err (Sexp.pos_of v_form) "unsupported schema version %d, expected %d"
           ver Schema.version
   | _ ->
       err f.f_pos "field %s expects a schema name and a version" f.f_key);
  let name =
    let f = require Schema.kw_name in
    let p, s = atom "the scenario name" (one f) in
    if not (name_ok s) then
      err p
        "invalid scenario name %s: use lowercase letters, digits, hyphen or \
         underscore"
        s;
    s
  in
  let nodes =
    let f = require Schema.kw_nodes in
    let v = int_v "the node count" (one f) in
    if v < 2 then err (Sexp.pos_of (one f)) "need at least 2 nodes, got %d" v;
    v
  in
  let single key ~decode ~default =
    match find key with Some f -> decode (one f) | None -> default
  in
  let seed = single Schema.kw_seed ~decode:(int_v "the seed") ~default:1 in
  let range = single Schema.kw_range ~decode:(positive Schema.kw_range) ~default:250.0 in
  let loss = single Schema.kw_loss ~decode:(fraction Schema.kw_loss) ~default:0.0 in
  let promiscuous =
    single Schema.kw_promiscuous ~decode:(bool_v Schema.kw_promiscuous) ~default:false
  in
  let protocol =
    single Schema.kw_protocol ~decode:decode_protocol ~default:Secure
  in
  let suite = single Schema.kw_suite ~decode:decode_suite ~default:Mock in
  let dns = single Schema.kw_dns ~decode:(bool_v Schema.kw_dns) ~default:true in
  let topology =
    single Schema.kw_topology ~decode:(decode_topology ~n:nodes)
      ~default:(Random { width = 1000.0; height = 1000.0 })
  in
  let mobility =
    single Schema.kw_mobility ~decode:decode_mobility ~default:Static
  in
  let bootstrap =
    match find Schema.kw_bootstrap with
    | None -> None
    | Some f ->
        let fs = subfields ~what:Schema.kw_bootstrap [ Schema.kw_stagger ] f.f_args in
        Some (opt fs Schema.kw_stagger ~decode:(non_negative Schema.kw_stagger) ~default:0.5)
  in
  let duration =
    single Schema.kw_duration ~decode:(non_negative Schema.kw_duration) ~default:60.0
  in
  let run_until =
    match find Schema.kw_run_until with
    | None -> None
    | Some f -> Some (positive Schema.kw_run_until (one f))
  in
  let flows =
    match find Schema.kw_traffic with
    | None -> []
    | Some f -> List.map (decode_flow ~n:nodes) f.f_args
  in
  let adversaries =
    match find Schema.kw_adversaries with
    | None -> []
    | Some f ->
        let advs = List.map (decode_adversary ~n:nodes ~dns) f.f_args in
        let nodes_seen = ref [] in
        List.iteri
          (fun i a ->
            if List.exists (Int.equal a.adv_node) !nodes_seen then
              err (Sexp.pos_of (List.nth f.f_args i))
                "node %d is given two adversary behaviours" a.adv_node;
            nodes_seen := a.adv_node :: !nodes_seen)
          advs;
        advs
  in
  let faults =
    match find Schema.kw_faults with
    | None -> []
    | Some f -> List.map (decode_fault ~n:nodes ~dns) f.f_args
  in
  let exports =
    match find Schema.kw_exports with
    | None -> []
    | Some f ->
        let exs = List.map decode_export f.f_args in
        let seen_ex = ref [] in
        List.iteri
          (fun i e ->
            if List.mem e !seen_ex then
              err
                (Sexp.pos_of (List.nth f.f_args i))
                "duplicate export %s"
                (match List.nth f.f_args i with
                | Sexp.Atom (_, s) -> s
                | Sexp.List _ -> "")
            else seen_ex := e :: !seen_ex)
          exs;
        exs
  in
  {
    name; seed; nodes; range; loss; promiscuous; protocol; suite; dns;
    topology; mobility; bootstrap; duration; run_until; flows; adversaries;
    faults; exports;
  }

let parse text =
  match Sexp.parse text with
  | [ form ] -> of_sexp form
  | [] ->
      raise
        (Error
           {
             pos = { Sexp.line = 1; col = 1 };
             msg =
               Printf.sprintf "empty input: expected one (%s ...) form"
                 Schema.kw_scenario;
           })
  | _ :: second :: _ ->
      err (Sexp.pos_of second)
        "expected exactly one toplevel (%s ...) form, found more"
        Schema.kw_scenario

(* --- compilation into the Engine/Net/Faults/Attacks wiring ---------- *)

let behavior_of = function
  | Blackhole -> Adversary.blackhole
  | Grayhole p -> Adversary.grayhole p
  | Replayer -> Adversary.replayer
  | Rerr_spammer every -> Adversary.rerr_spammer ~every
  | Identity_churner every -> Adversary.identity_churner ~every
  | Sleeper -> Adversary.sleeper

let scenario_params ?seed t =
  let seed = Option.value seed ~default:t.seed in
  {
    Scenario.default_params with
    n = t.nodes;
    seed;
    range = t.range;
    loss = t.loss;
    promiscuous = t.promiscuous;
    topology =
      (match t.topology with
      | Chain { spacing } -> Scenario.Chain { spacing }
      | Grid { cols; spacing } -> Scenario.Grid { cols; spacing }
      | Random { width; height } -> Scenario.Random { width; height }
      | Explicit { width; height; positions } ->
          Scenario.Explicit { width; height; positions });
    mobility =
      (match t.mobility with
      | Static -> Mobility.Static
      | Waypoint { min_speed; max_speed; pause } ->
          Mobility.Random_waypoint { min_speed; max_speed; pause }
      | Walk { speed; turn_interval } ->
          Mobility.Random_walk { speed; turn_interval });
    protocol =
      (match t.protocol with
      | Secure -> Scenario.Secure
      | Dsr -> Scenario.Plain_dsr
      | Srp -> Scenario.Srp_protocol);
    suite =
      (match t.suite with
      | Mock -> Scenario.Mock_suite
      | Rsa bits -> Scenario.Rsa_suite bits);
    with_dns = t.dns;
    adversaries =
      List.map (fun a -> (a.adv_node, behavior_of a.adv_kind)) t.adversaries;
  }

let fault_plan t =
  Faults.seq
    (List.map
       (function
         | Crash { node; at } -> Faults.crash ~at node
         | Restart { node; at } -> Faults.restart ~at node
         | Outage { node; down_from; down_until } ->
             Faults.outage ~from:down_from ~until:down_until node
         | Link_down { a; b; at } -> Faults.link_down ~at a b
         | Link_up { a; b; at } -> Faults.link_up ~at a b
         | Flap { a; b; flap_from; flap_until; period } ->
             Faults.flap ~from:flap_from ~until:flap_until ~period a b
         | Partition { cut_from; cut_until; members } ->
             Faults.partition ~from:cut_from ~until:cut_until members
         | Degrade
             { bad_from; bad_until; loss_good; loss_bad; p_good_to_bad;
               p_bad_to_good } ->
             Faults.degrade ~from:bad_from ~until:bad_until
               ~channel:
                 (Faults.gilbert_elliott ~loss_good ~loss_bad ~p_good_to_bad
                    ~p_bad_to_good ())
               ~baseline:(Net.Uniform { loss = t.loss })
         | Churn { churn_seed; churn_nodes; horizon; mean_up; mean_down } ->
             Faults.churn ~seed:churn_seed ~nodes:churn_nodes ~horizon ~mean_up
               ~mean_down)
       t.faults)

let wants_metrics t =
  List.exists
    (fun e -> match e with Metrics_csv | Metrics_prom -> true | _ -> false)
    t.exports

let execute ?seed t =
  let s = Scenario.create (scenario_params ?seed t) in
  Obs.set_capture (Scenario.obs s) true;
  if wants_metrics t then Metrics.set_enabled (Obs.metrics (Scenario.obs s)) true;
  (match t.faults with
  | [] -> ()
  | _ -> Scenario.inject s (fault_plan t));
  (match t.bootstrap with
  | Some stagger -> Scenario.bootstrap ~stagger s
  | None -> ());
  let engine = Scenario.engine s in
  (* Flow starts are absolute but the bootstrap horizon isn't knowable
     when the file is written: clamp to the post-bootstrap clock so
     (start ...) earlier than bootstrap completion means "immediately". *)
  let now = Engine.now engine in
  let flow_start f = Float.max now (Option.value f.flow_start ~default:now) in
  List.iter
    (fun f ->
      Scenario.start_cbr s
        ~flows:[ (f.flow_src, f.flow_dst) ]
        ~interval:f.flow_interval ~size:f.flow_size ~start_at:(flow_start f)
        ~duration:(Option.value f.flow_duration ~default:t.duration)
        ())
    t.flows;
  let until =
    match t.run_until with
    | Some u -> u
    | None ->
        let flow_end f =
          flow_start f +. Option.value f.flow_duration ~default:t.duration
        in
        List.fold_left (fun acc f -> Float.max acc (flow_end f)) now t.flows
        +. 30.0
  in
  Scenario.run s ~until;
  s

(* --- exports -------------------------------------------------------- *)

let meta t ~seed =
  [
    (Schema.kw_scenario, Json.String t.name); (Schema.kw_seed, Json.Int seed);
  ]

let stats_csv s =
  let buf = Buffer.create 512 in
  Buffer.add_string buf "counter,value\n";
  List.iter
    (fun (k, v) -> Buffer.add_string buf (Printf.sprintf "%s,%d\n" k v))
    (Stats.counters (Scenario.stats s));
  Buffer.contents buf

let export_filename t = function
  | Stats_csv -> Printf.sprintf "%s.stats.csv" t.name
  | Audit_jsonl -> Printf.sprintf "%s.audit.jsonl" t.name
  | Trace_jsonl -> Printf.sprintf "%s.trace.jsonl" t.name
  | Metrics_csv -> Printf.sprintf "%s.metrics.csv" t.name
  | Metrics_prom -> Printf.sprintf "%s.metrics.prom" t.name
  | Report_json -> Printf.sprintf "%s.report.json" t.name

let render_exports t ~seed s =
  let m = meta t ~seed in
  let obs = Scenario.obs s in
  List.map
    (fun e ->
      let contents =
        match e with
        | Stats_csv -> stats_csv s
        | Audit_jsonl -> Audit.to_jsonl ~meta:m (Obs.audit obs)
        | Trace_jsonl -> Obs.to_jsonl ~meta:m obs
        | Metrics_csv -> Metrics.to_csv ~stats:(Scenario.stats s) (Obs.metrics obs)
        | Metrics_prom ->
            Metrics.to_prom ~stats:(Scenario.stats s) (Obs.metrics obs)
        | Report_json ->
            Json.to_string
              (Report.run_report ~engine:(Scenario.engine s) ~obs ~extra:m ())
            ^ "\n"
      in
      (e, export_filename t e, contents))
    t.exports

(* --- seed sweeps over one scenario ---------------------------------- *)

let sweep ~domains ~seeds t =
  if List.length seeds = 0 then invalid_arg "Scn.sweep: empty seed list";
  let run_one seed =
    let s = execute ~seed t in
    let m = meta t ~seed in
    {
      Merge.key = m;
      stats = Stats.counters (Scenario.stats s);
      streams =
        [
          (Schema.stream_audit, Audit.to_jsonl ~meta:m (Obs.audit (Scenario.obs s)));
          (Schema.stream_trace, Obs.to_jsonl ~meta:m (Scenario.obs s));
          (Schema.stream_perf, Scenario.perf_det_jsonl ~meta:m s);
          (Schema.stream_timeline, Scenario.timeline_jsonl ~meta:m s);
        ];
    }
  in
  Merge.sorted (Parallel.map ~domains run_one seeds)
