type config = {
  window : float;
  ewma_alpha : float;
  ewma_threshold : float;
  evidence_threshold : float;
}

let default_config =
  { window = 5.0; ewma_alpha = 0.3; ewma_threshold = 0.5; evidence_threshold = 1.0 }

let contains_sub s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.equal (String.sub s i m) sub || go (i + 1)) in
  m = 0 || go 0

let weight (e : Audit.event) =
  match e.Audit.subject_node with
  | None -> 0.0
  | Some _ -> (
      match e.Audit.kind with
      | Audit.Blackhole_probe_result -> 1.0
      | Audit.Replay_rejected -> 1.0
      | Audit.Rerr_frequency -> 1.0
      | Audit.Credit_slash ->
          if contains_sub e.Audit.cause "predecessor" then 0.2 else 0.6
      | Audit.Rerr_implausible -> 0.3
      | Audit.Sig_verify_fail | Audit.Cga_mismatch | Audit.Rerr_rejected
      | Audit.Dns_conflict | Audit.Dad_collision | Audit.Unverified_accept
      | Audit.Fault_crash | Audit.Fault_restart | Audit.Attack_forgery
      | Audit.Attack_replay | Audit.Attack_drop | Audit.Attack_impersonation
      | Audit.Attack_rerr | Audit.Attack_churn ->
          0.0)

type state = {
  mutable s_window : int;  (* index of the window being accumulated *)
  mutable s_in_window : float;
  mutable s_ewma : float;
  mutable s_ewma_peak : float;
  mutable s_evidence : float;
  mutable s_events : int;
  mutable s_flagged_at : float option;
}

type t = { config : config; states : (int, state) Hashtbl.t }

let create ?(config = default_config) () =
  if config.window <= 0.0 then invalid_arg "Detector.create: window";
  if config.ewma_alpha <= 0.0 || config.ewma_alpha > 1.0 then
    invalid_arg "Detector.create: ewma_alpha";
  { config; states = Hashtbl.create 16 }

let state_of t node =
  match Hashtbl.find_opt t.states node with
  | Some s -> s
  | None ->
      let s =
        {
          s_window = 0;
          s_in_window = 0.0;
          s_ewma = 0.0;
          s_ewma_peak = 0.0;
          s_evidence = 0.0;
          s_events = 0;
          s_flagged_at = None;
        }
      in
      Hashtbl.add t.states node s;
      s

(* Lazily advance [s] to window [w]: fold the accumulated window into
   the EWMA, then decay through any empty windows in between. *)
let roll t s w =
  let a = t.config.ewma_alpha in
  while s.s_window < w do
    s.s_ewma <- (a *. s.s_in_window) +. ((1.0 -. a) *. s.s_ewma);
    if s.s_ewma > s.s_ewma_peak then s.s_ewma_peak <- s.s_ewma;
    s.s_in_window <- 0.0;
    s.s_window <- s.s_window + 1
  done

let feed t (e : Audit.event) =
  let w = weight e in
  if w > 0.0 then
    match e.Audit.subject_node with
    | None -> ()
    | Some node ->
        let s = state_of t node in
        roll t s (int_of_float (e.Audit.time /. t.config.window));
        s.s_in_window <- s.s_in_window +. w;
        s.s_evidence <- s.s_evidence +. w;
        s.s_events <- s.s_events + 1;
        (* The EWMA the current window would close at, so a burst flags
           online rather than one window late. *)
        let prospective =
          (t.config.ewma_alpha *. s.s_in_window)
          +. ((1.0 -. t.config.ewma_alpha) *. s.s_ewma)
        in
        if prospective > s.s_ewma_peak then s.s_ewma_peak <- prospective;
        if
          s.s_flagged_at = None
          && (s.s_evidence >= t.config.evidence_threshold
             || prospective >= t.config.ewma_threshold)
        then s.s_flagged_at <- Some e.Audit.time

let attach t audit = Audit.on_emit audit (feed t)

type verdict = {
  v_node : int;
  v_evidence : float;
  v_events : int;
  v_ewma_peak : float;
  v_suspect : bool;
  v_flagged_at : float option;
}

let verdicts t =
  Hashtbl.fold
    (fun node s acc ->
      {
        v_node = node;
        v_evidence = s.s_evidence;
        v_events = s.s_events;
        v_ewma_peak = s.s_ewma_peak;
        v_suspect = s.s_flagged_at <> None;
        v_flagged_at = s.s_flagged_at;
      }
      :: acc)
    t.states []
  |> List.sort (fun a b -> Int.compare a.v_node b.v_node)

let suspects t =
  List.filter_map (fun v -> if v.v_suspect then Some v.v_node else None)
    (verdicts t)

type assessment = {
  tp : int;
  fp : int;
  fn : int;
  precision : float;
  recall : float;
}

let score t ~truth =
  let truth = List.sort_uniq Int.compare truth in
  let flagged = suspects t in
  let tp = List.length (List.filter (fun n -> List.mem n truth) flagged) in
  let fp = List.length flagged - tp in
  let fn = List.length truth - tp in
  let ratio num den = if den = 0 then 1.0 else float_of_int num /. float_of_int den in
  { tp; fp; fn; precision = ratio tp (tp + fp); recall = ratio tp (tp + fn) }

let render_verdicts t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "node   suspect  evidence  events  ewma-peak  flagged-at\n";
  List.iter
    (fun v ->
      Buffer.add_string buf
        (Printf.sprintf "%-6d %-8s %8.2f  %6d  %9.3f  %s\n" v.v_node
           (if v.v_suspect then "YES" else "-")
           v.v_evidence v.v_events v.v_ewma_peak
           (match v.v_flagged_at with
           | Some time -> Printf.sprintf "%.3f" time
           | None -> "-")))
    (verdicts t);
  Buffer.contents buf

let render_assessment a =
  Printf.sprintf
    "tp %d  fp %d  fn %d  precision %.2f  recall %.2f\n" a.tp a.fp a.fn
    a.precision a.recall
