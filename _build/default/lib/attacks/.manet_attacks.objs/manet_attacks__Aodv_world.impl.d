lib/attacks/aodv_world.ml: Aodv_adversary Array Hashtbl List Manet_aodv Manet_crypto Manet_ipv6 Manet_proto Manet_sim
