(* manetlint — project-specific static analysis for the manetsec tree.

   A dependency-free, comment- and string-aware lexical analyser plus
   structural cross-checks.  No ppxlib, no compiler-libs: the rules are
   deliberately lexical so the tool keeps working on code that does not
   yet type-check.  See README.md "Static analysis" for the rule
   catalogue and DESIGN.md for the paper rationale behind each rule.

   Suppression syntax (inside an OCaml comment):

     (* manetlint: allow <rule> [<rule> ...] *)
         — suppresses the listed rules on the comment's own lines and on
           the line directly below the comment's *last* line, so a
           multi-line rationale still anchors to the flagged construct
           directly beneath it.

     (* manetlint: allow-file <rule> [<rule> ...] *)
         — suppresses the listed rules for the whole file.

   Trailing prose after the rule names is ignored, so annotations can
   (and should) explain *why* the exemption is sound. *)

type finding = { file : string; line : int; rule : string; msg : string }

let rules =
  [
    "proto-schema";
    "security";
    "placeholder-sig";
    "determinism";
    "obj-magic";
    "catch-all";
    "failwith";
    "mli-coverage";
    "poly-compare";
    "obs-no-printf";
    "audit-counter";
    "scenario-keyword";
    "schedule-label";
    "flood-origin-label";
  ]

let to_string f = Printf.sprintf "%s:%d: [%s] %s" f.file f.line f.rule f.msg

(* ------------------------------------------------------------------ *)
(* Small lexical helpers                                              *)
(* ------------------------------------------------------------------ *)

let is_ident_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '_' || c = '\''

let is_ident_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ws c = c = ' ' || c = '\t' || c = '\n' || c = '\r'
let is_digit c = c >= '0' && c <= '9'

let find_sub s sub =
  let n = String.length s and m = String.length sub in
  let rec go i =
    if i + m > n then None
    else if String.sub s i m = sub then Some i
    else go (i + 1)
  in
  go 0

let ends_with suffix s =
  let n = String.length s and m = String.length suffix in
  n >= m && String.sub s (n - m) m = suffix

let starts_with prefix s =
  let n = String.length s and m = String.length prefix in
  n >= m && String.sub s 0 m = prefix

(* Is [path] under directory [dir] ("lib", "lib/secure", ...)?  Accepts
   both repo-relative paths and absolute ones. *)
let under dir path =
  starts_with (dir ^ "/") path || find_sub path ("/" ^ dir ^ "/") <> None

let skip_ws code n i =
  let j = ref i in
  while !j < n && is_ws code.[!j] do incr j done;
  !j

let prev_nonws code i0 =
  let j = ref (i0 - 1) in
  while !j >= 0 && is_ws code.[!j] do decr j done;
  !j

(* The identifier whose last character sits at [j], or "" if [j] is not
   on an identifier. *)
let token_ending_at code j =
  if j < 0 || not (is_ident_char code.[j]) then ""
  else begin
    let s = ref j in
    while !s >= 0 && is_ident_char code.[!s] do decr s done;
    String.sub code (!s + 1) (j - !s)
  end

(* Positions where [tok] occurs as a whole token.  [tok] may be dotted
   ("Unix.gettimeofday").  With [qualified:false] a match preceded by
   '.' is rejected (used to find *bare* [compare]). *)
let occurrences ?(qualified = true) code tok =
  let n = String.length code and m = String.length tok in
  let ok i =
    (i = 0
    ||
    let c = code.[i - 1] in
    (not (is_ident_char c)) && (qualified || c <> '.'))
    && (i + m >= n || not (is_ident_char code.[i + m]))
  in
  let acc = ref [] in
  let i = ref 0 in
  while !i + m <= n do
    if String.sub code !i m = tok && ok !i then acc := !i :: !acc;
    incr i
  done;
  List.rev !acc

let iter_idents code lo hi f =
  let i = ref lo in
  while !i < hi do
    if is_ident_start code.[!i] && (!i = 0 || not (is_ident_char code.[!i - 1]))
    then begin
      let j = ref !i in
      while !j < hi && is_ident_char code.[!j] do incr j done;
      f !i (String.sub code !i (!j - !i));
      i := !j
    end
    else incr i
  done

let line_start code p =
  let s = ref p in
  while !s > 0 && code.[!s - 1] <> '\n' do decr s done;
  !s

(* Start of the dotted identifier chain containing position [p]:
   "Messages.Arep" -> position of 'M'. *)
let chain_start code p =
  let s = ref p in
  while !s > 0 && (is_ident_char code.[!s - 1] || code.[!s - 1] = '.') do
    decr s
  done;
  !s

(* ------------------------------------------------------------------ *)
(* Sanitizer: blank comment bodies and string/char literal contents   *)
(* (keeping line structure and string delimiters) and collect the     *)
(* comments as (start_line, end_line, text).                          *)
(* ------------------------------------------------------------------ *)

let sanitize raw =
  let n = String.length raw in
  let out = Bytes.of_string raw in
  let comments = ref [] in
  let line = ref 1 in
  let blank i = if Bytes.get out i <> '\n' then Bytes.set out i ' ' in
  let bump c = if c = '\n' then incr line in
  let is_lower_or_us c = (c >= 'a' && c <= 'z') || c = '_' in
  let i = ref 0 in
  while !i < n do
    let c = raw.[!i] in
    if c = '(' && !i + 1 < n && raw.[!i + 1] = '*' then begin
      (* Nested comment. *)
      let start_line = !line in
      let buf = Buffer.create 64 in
      blank !i;
      blank (!i + 1);
      i := !i + 2;
      let depth = ref 1 in
      while !depth > 0 && !i < n do
        if !i + 1 < n && raw.[!i] = '(' && raw.[!i + 1] = '*' then begin
          incr depth;
          Buffer.add_string buf "(*";
          blank !i;
          blank (!i + 1);
          i := !i + 2
        end
        else if !i + 1 < n && raw.[!i] = '*' && raw.[!i + 1] = ')' then begin
          decr depth;
          if !depth > 0 then Buffer.add_string buf "*)";
          blank !i;
          blank (!i + 1);
          i := !i + 2
        end
        else begin
          Buffer.add_char buf raw.[!i];
          bump raw.[!i];
          blank !i;
          incr i
        end
      done;
      comments := (start_line, !line, Buffer.contents buf) :: !comments
    end
    else if c = '"' then begin
      (* Regular string literal: keep the quotes, blank the body. *)
      incr i;
      let fin = ref false in
      while (not !fin) && !i < n do
        if raw.[!i] = '\\' && !i + 1 < n then begin
          blank !i;
          blank (!i + 1);
          bump raw.[!i + 1];
          i := !i + 2
        end
        else if raw.[!i] = '"' then begin
          fin := true;
          incr i
        end
        else begin
          bump raw.[!i];
          blank !i;
          incr i
        end
      done
    end
    else if
      c = '{'
      && begin
           let j = ref (!i + 1) in
           while !j < n && is_lower_or_us raw.[!j] do incr j done;
           !j < n && raw.[!j] = '|'
         end
    then begin
      (* Quoted string {id|...|id}: blank the body. *)
      let j = ref (!i + 1) in
      while !j < n && is_lower_or_us raw.[!j] do incr j done;
      let id = String.sub raw (!i + 1) (!j - !i - 1) in
      let close = "|" ^ id ^ "}" in
      let clen = String.length close in
      i := !j + 1;
      let fin = ref false in
      while (not !fin) && !i < n do
        if !i + clen <= n && String.sub raw !i clen = close then begin
          i := !i + clen;
          fin := true
        end
        else begin
          bump raw.[!i];
          blank !i;
          incr i
        end
      done
    end
    else if c = '\'' then begin
      if !i > 0 && is_ident_char raw.[!i - 1] then incr i (* prime: x' *)
      else if
        !i + 2 < n
        && raw.[!i + 1] <> '\\'
        && raw.[!i + 1] <> '\''
        && raw.[!i + 2] = '\''
      then begin
        (* 'a' char literal *)
        blank (!i + 1);
        i := !i + 3
      end
      else if !i + 1 < n && raw.[!i + 1] = '\\' then begin
        (* escaped char literal: closing quote within a few chars *)
        let j = ref (!i + 2) in
        while !j < n && !j <= !i + 6 && raw.[!j] <> '\'' do incr j done;
        if !j < n && raw.[!j] = '\'' then begin
          for k = !i + 1 to !j - 1 do
            blank k
          done;
          i := !j + 1
        end
        else incr i
      end
      else incr i (* type variable 'a *)
    end
    else begin
      bump c;
      incr i
    end
  done;
  (Bytes.to_string out, List.rev !comments)

(* ------------------------------------------------------------------ *)
(* Sources and suppression directives                                 *)
(* ------------------------------------------------------------------ *)

type source = {
  path : string;
  code : string; (* sanitized *)
  raw : string; (* original text, same length/offsets as [code] *)
  line_at : int array; (* line_at.(i) = 1-based line of offset i *)
  allow_file : (string, unit) Hashtbl.t;
  allow_ranges : (string * int * int) list; (* rule, first line, last line *)
}

let parse_directive text =
  match find_sub text "manetlint:" with
  | None -> None
  | Some p ->
      let rest = String.sub text (p + 10) (String.length text - p - 10) in
      let words =
        String.map (fun c -> if is_ws c then ' ' else c) rest
        |> String.split_on_char ' '
        |> List.filter (fun w -> w <> "")
      in
      let rec take = function
        | w :: tl when List.mem w rules -> w :: take tl
        | _ -> []
      in
      (match words with
      | "allow" :: tl -> Some (`Allow (take tl))
      | "allow-file" :: tl -> Some (`Allow_file (take tl))
      | _ -> None)

let make_source path raw =
  let code, comments = sanitize raw in
  let n = String.length code in
  let line_at = Array.make (n + 1) 1 in
  for i = 0 to n - 1 do
    line_at.(i + 1) <- (line_at.(i) + if code.[i] = '\n' then 1 else 0)
  done;
  let allow_file = Hashtbl.create 4 in
  let allow_ranges = ref [] in
  List.iter
    (fun (l0, l1, text) ->
      match parse_directive text with
      | Some (`Allow rs) ->
          List.iter (fun r -> allow_ranges := (r, l0, l1 + 1) :: !allow_ranges) rs
      | Some (`Allow_file rs) ->
          List.iter (fun r -> Hashtbl.replace allow_file r ()) rs
      | None -> ())
    comments;
  { path; code; raw; line_at; allow_file; allow_ranges = !allow_ranges }

let suppressed src f =
  Hashtbl.mem src.allow_file f.rule
  || List.exists
       (fun (r, l0, l1) -> r = f.rule && f.line >= l0 && f.line <= l1)
       src.allow_ranges

(* ------------------------------------------------------------------ *)
(* Top-level chunks (column-0 let/and bindings)                       *)
(* ------------------------------------------------------------------ *)

type chunk = { name : string; lo : int; hi : int }

let read_word code n i =
  if i < n && is_ident_start code.[i] then begin
    let j = ref i in
    while !j < n && is_ident_char code.[!j] do incr j done;
    (String.sub code i (!j - i), !j)
  end
  else ("", i)

let chunks src =
  let code = src.code in
  let n = String.length code in
  let starts = ref [] in
  let check o =
    let kw k =
      let m = String.length k in
      o + m < n && String.sub code o m = k && not (is_ident_char code.[o + m])
    in
    if kw "let" || kw "and" then begin
      let j = skip_ws code n (o + 3) in
      let w, je = read_word code n j in
      let name =
        if w = "rec" then fst (read_word code n (skip_ws code n je)) else w
      in
      let name =
        if name <> "" && (name.[0] = '_' || Char.lowercase_ascii name.[0] = name.[0])
        then name
        else ""
      in
      starts := (o, name) :: !starts
    end
  in
  check 0;
  String.iteri (fun i c -> if c = '\n' && i + 1 < n then check (i + 1)) code;
  let sorted = List.sort (fun (a, _) (b, _) -> Int.compare a b) !starts in
  let rec build = function
    | [] -> []
    | (lo, name) :: tl ->
        let hi = match tl with (next, _) :: _ -> next | [] -> n in
        { name; lo; hi } :: build tl
  in
  build sorted

(* ------------------------------------------------------------------ *)
(* Security rule machinery                                            *)
(* ------------------------------------------------------------------ *)

let signed_variants =
  [
    "Arep"; "Drep"; "Rreq"; "Rrep"; "Crep"; "Rerr"; "Probe_reply";
    "Name_reply"; "Ip_change_proof";
  ]

let handler_prefixes =
  [ "handle"; "consume"; "observe"; "serve"; "receive"; "on_" ]

let is_handler name =
  name <> "" && List.exists (fun p -> starts_with p name) handler_prefixes

let is_verifier_name name =
  find_sub name "verify" <> None
  || find_sub name "cga_check" <> None
  || ends_with "_mac" name

(* Fixpoint of "this same-module function performs verification":
   a chunk verifies if its body mentions a verifier identifier or calls
   another verifying chunk of the same file. *)
let verifying_names src cks =
  let set = Hashtbl.create 16 in
  let body_verifies lo hi =
    let found = ref false in
    iter_idents src.code lo hi (fun _ name ->
        if (not !found) && (is_verifier_name name || Hashtbl.mem set name) then
          found := true);
    !found
  in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun c ->
        if c.name <> "" && (not (Hashtbl.mem set c.name)) && body_verifies c.lo c.hi
        then begin
          Hashtbl.replace set c.name ();
          changed := true
        end)
      cks
  done;
  set

(* Decide whether the variant identifier at [p] is used as a match
   pattern (vs. an expression constructing a message).  Walk left from
   the chain start, skipping whitespace, '(' and ','; a '|' or the
   keywords with/function mean pattern; a lowercase identifier or any
   other character means expression.  Uppercase identifiers (constructor
   application in a pattern, e.g. Some (Messages.Arep ...)) keep the
   walk going. *)
let pattern_intro code p =
  let res = ref None in
  let go = ref true in
  let j = ref (chain_start code p - 1) in
  while !go do
    while !j >= 0 && is_ws code.[!j] do decr j done;
    if !j < 0 then go := false
    else
      match code.[!j] with
      | '|' ->
          res := Some !j;
          go := false
      | '(' | ',' -> decr j
      | c when is_ident_char c ->
          let w = token_ending_at code !j in
          if w = "with" || w = "function" then begin
            res := Some (!j - String.length w + 1);
            go := false
          end
          else if w <> "" && w.[0] >= 'A' && w.[0] <= 'Z' then
            j := !j - String.length w
          else go := false
      | _ -> go := false
  done;
  !res

(* End of the match arm whose pattern starts at [p0]: the first
   subsequent line whose first non-blank character is '|' at a column
   not deeper than the introducing bar. *)
let arm_end code intro_col p0 hi =
  let i = ref p0 in
  let res = ref hi in
  (try
     while !i < hi do
       if code.[!i] = '\n' then begin
         let ls = !i + 1 in
         let j = ref ls in
         while !j < hi && (code.[!j] = ' ' || code.[!j] = '\t') do incr j done;
         if
           !j < hi
           && code.[!j] = '|'
           && (!j + 1 >= hi || (code.[!j + 1] <> '|' && code.[!j + 1] <> ']'))
           && !j - ls <= intro_col
         then begin
           res := ls;
           raise Exit
         end
       end;
       incr i
     done
   with Exit -> ());
  !res

let range_mentions_verifier code vset lo hi =
  let found = ref false in
  iter_idents code lo hi (fun _ name ->
      if (not !found) && (is_verifier_name name || Hashtbl.mem vset name) then
        found := true);
  !found

(* ------------------------------------------------------------------ *)
(* Per-file rules                                                     *)
(* ------------------------------------------------------------------ *)

(* Beyond the wall-clock and self-seeding offenders, the stdlib Random
   draws are banned under lib/ wholesale: any library randomness must
   come from a Manet_crypto.Prng stream split off the engine root, or a
   seeded fault plan (lib/faults) silently stops being replayable. *)
let deterministic_tokens =
  [
    "Random.self_init"; "Unix.gettimeofday"; "Sys.time"; "Hashtbl.hash";
    "Random.init"; "Random.int"; "Random.float"; "Random.bool";
    "Random.bits";
  ]

let addr_fields =
  [
    "sip"; "dip"; "src"; "dst"; "reporter"; "broken_next"; "origin"; "target";
    "requester"; "cacher"; "old_ip"; "new_ip"; "ip";
  ]

let binding_keywords = [ "with"; "let"; "and"; "rec"; "val"; "method" ]

let check_determinism add src =
  List.iter
    (fun tok ->
      List.iter
        (fun p ->
          add src src.line_at.(p) "determinism"
            (Printf.sprintf
               "%s breaks simulation reproducibility; use Manet_crypto.Prng \
                and Engine.now instead"
               tok))
        (occurrences src.code tok))
    deterministic_tokens

let check_obj_magic add src =
  List.iter
    (fun p ->
      add src src.line_at.(p) "obj-magic"
        "Obj.magic defeats the type system; find a typed encoding")
    (occurrences src.code "Obj.magic")

(* Library code must not write to stdout directly: human-facing output
   belongs to bin/ and bench/, and library telemetry must go through the
   Trace/Obs sinks (or be returned as a string) so it stays queryable
   and replay-deterministic.  [Printf.sprintf] and the [Format.pp_*]
   formatter combinators remain fine — they build values. *)
let printf_tokens =
  [
    "Printf.printf"; "Printf.eprintf"; "Format.printf"; "Format.eprintf";
    "print_endline"; "print_string"; "print_newline"; "prerr_endline";
  ]

let check_obs_no_printf add src =
  List.iter
    (fun tok ->
      List.iter
        (fun p ->
          add src src.line_at.(p) "obs-no-printf"
            (Printf.sprintf
               "%s under lib/ bypasses the Trace/Obs sinks; return a string \
                or log through the telemetry layer"
               tok))
        (occurrences src.code tok))
    printf_tokens

let check_failwith add src =
  List.iter
    (fun p ->
      add src src.line_at.(p) "failwith"
        "failwith under lib/ — raise a documented typed exception or return \
         a Result")
    (occurrences src.code "failwith")

let check_catch_all add src =
  let code = src.code in
  let n = String.length code in
  List.iter
    (fun p ->
      let j = skip_ws code n (p + 4) in
      let j = if j < n && code.[j] = '|' then skip_ws code n (j + 1) else j in
      if j < n && code.[j] = '_' && (j + 1 >= n || not (is_ident_char code.[j + 1]))
      then begin
        let k = skip_ws code n (j + 1) in
        if k + 1 < n && code.[k] = '-' && code.[k + 1] = '>' then
          add src src.line_at.(p) "catch-all"
            "catch-all `with _ ->` swallows unexpected exceptions/cases; \
             match the constructors you mean"
      end)
    (occurrences code "with")

let check_placeholder_sig add src =
  let code = src.code in
  let n = String.length code in
  iter_idents code 0 n (fun p name ->
      if starts_with "sig_" name || name = "sig_" then begin
        let j = skip_ws code n (p + String.length name) in
        if j < n && code.[j] = '=' && (j + 1 >= n || code.[j + 1] <> '=') then begin
          let k = skip_ws code n (j + 1) in
          if k + 1 < n && code.[k] = '"' && code.[k + 1] = '"' then
            add src src.line_at.(p) "placeholder-sig"
              (Printf.sprintf
                 "placeholder %s = \"\" in a security-critical layer; sign \
                  the payload or annotate the designated signing site"
                 name)
        end
      end)

let check_poly_compare add src =
  let code = src.code in
  let n = String.length code in
  (* Stdlib.compare is always polymorphic. *)
  List.iter
    (fun p ->
      add src src.line_at.(p) "poly-compare"
        "Stdlib.compare is polymorphic; use the dedicated compare of the \
         values' type")
    (occurrences code "Stdlib.compare");
  (* Bare [compare]: allowed only after a same-file [let compare] definition
     (a module defining its own order may use it below the definition). *)
  let bare = occurrences ~qualified:false code "compare" in
  let def_sites, use_sites =
    List.partition
      (fun p ->
        let w = token_ending_at code (prev_nonws code p) in
        List.mem w [ "let"; "rec"; "and"; "val"; "external" ])
      bare
  in
  let first_def = match def_sites with [] -> max_int | p :: _ -> p in
  List.iter
    (fun p ->
      let prev = prev_nonws code p in
      let tilde = prev >= 0 && (code.[prev] = '~' || code.[prev] = '?') in
      if (not tilde) && p < first_def then
        add src src.line_at.(p) "poly-compare"
          "bare polymorphic compare; use Address.compare / Int.compare / \
           String.compare")
    use_sites;
  (* Polymorphic =/<> between address-typed fields. *)
  let flag_eq p oplen =
    let l = prev_nonws code p in
    if l >= 0 && is_ident_char code.[l] then begin
      let lstart = chain_start code l in
      let lname = token_ending_at code l in
      let before = prev_nonws code lstart in
      let binding =
        before >= 0
        && (code.[before] = '{' || code.[before] = ';' || code.[before] = '~'
          || code.[before] = '?'
           || List.mem (token_ending_at code before) binding_keywords)
      in
      let q = skip_ws code n (p + oplen) in
      let rname =
        if q < n && is_ident_start code.[q] then begin
          let e = ref q in
          while
            !e < n && (is_ident_char code.[!e] || code.[!e] = '.')
          do
            incr e
          done;
          token_ending_at code (!e - 1)
        end
        else ""
      in
      if
        (not binding) && List.mem lname addr_fields && List.mem rname addr_fields
      then
        add src src.line_at.(p) "poly-compare"
          (Printf.sprintf
             "polymorphic %s on address-typed fields (%s, %s); use \
              Address.equal"
             (if oplen = 1 then "=" else "<>")
             lname rname)
    end
  in
  let opchar c =
    match c with
    | '<' | '>' | '=' | '!' | ':' | '+' | '-' | '*' | '/' | '&' | '|' | '^'
    | '@' | '.' ->
        true
    | _ -> false
  in
  for p = 1 to n - 2 do
    if code.[p] = '=' && (not (opchar code.[p - 1])) && not (opchar code.[p + 1])
    then flag_eq p 1
    else if
      code.[p] = '<'
      && code.[p + 1] = '>'
      && (not (opchar code.[p - 1]))
      && (p + 2 >= n || not (opchar code.[p + 2]))
    then flag_eq p 2
  done

(* Every event entering the engine queue must carry a ~label: the
   deterministic per-label counters of the perf registry (and the
   opt-in wall-clock profile) attribute hot-path cost by label, and an
   unlabeled schedule call silently files its events under "other",
   which makes `manetsim perf` blind to that subsystem.  The label
   argument always precedes the closure, so the scan window runs from
   the call token to the first "(fun" (or a fixed horizon for the rare
   eta-passed callback). *)
let check_schedule_label add src =
  let code = src.code in
  let n = String.length code in
  List.iter
    (fun tok ->
      List.iter
        (fun p ->
          let limit = min n (p + 160) in
          let window = String.sub code p (limit - p) in
          let window =
            match find_sub window "(fun" with
            | Some q -> String.sub window 0 q
            | None -> window
          in
          if find_sub window "~label" = None then
            add src src.line_at.(p) "schedule-label"
              (Printf.sprintf
                 "%s without ~label files its events under \"other\"; name the \
                  scheduling subsystem so perf counters and profiles can \
                  attribute it"
                 tok))
        (occurrences code tok))
    [ "Engine.schedule"; "Engine.schedule_at" ]

(* Every broadcast put on the air by the flooding protocols (DAD AREQ,
   DSR / secure / SRP RREQ) must be visible to the flood-provenance
   registry: a copy sent without a [Flood.] recording call makes the
   per-flood propagation accounting under-count, which silently skews
   the duplicate-verify and redundancy metrics that size ROADMAP item
   3's verification cache.  Lexically: a [Ctx.broadcast] call under
   lib/dad, lib/dsr or lib/secure must have a [Flood.] token within the
   preceding window (the recording call directly precedes the broadcast,
   inline or inside the relay closure); non-flood broadcasts carry a
   one-line allow with the rationale, mirroring schedule-label. *)
let check_flood_origin_label add src =
  let code = src.code in
  List.iter
    (fun p ->
      let start = max 0 (p - 400) in
      let window = String.sub code start (p - start) in
      if find_sub window "Flood." = None then
        add src src.line_at.(p) "flood-origin-label"
          "Ctx.broadcast without a preceding Flood. recording call: this \
           copy is invisible to the flood provenance accounting; record it \
           (Flood.originate/sent) or allow with a rationale")
    (occurrences code "Ctx.broadcast")

(* A counter whose name says "rejected", "replayed", "suspected", ...
   carries the same information as a security audit event but none of the
   structure: no subject, no cause, no entry in the JSONL stream the
   misbehaviour detector consumes.  Under the protocol layers such
   counters must be bumped *through* the audit path — [Node_ctx.audit]
   / [Audit.emit] with [~stats] keep the legacy counter and emit the
   typed event atomically — never with a raw [Ctx.stat] / [Stats.incr]
   that leaves the audit stream blind. *)
let audit_counter_markers =
  [
    "reject"; "replay"; "suspect"; "slash"; "forged"; "hostile"; "mismatch";
    "implausible"; "conflict"; "collision"; "duplicate";
  ]

let audit_counter_dirs = [ "lib/dad"; "lib/dns"; "lib/dsr"; "lib/secure" ]

let check_audit_counter add src =
  let code = src.code in
  let n = String.length code in
  (* First "..." literal within a short window after the call token.
     The sanitizer kept the quote characters and blanked the body in
     place, so the literal's content is read back from [src.raw] at the
     very same offsets. *)
  let string_lit_after p =
    let limit = min n (p + 160) in
    let rec find_quote i =
      if i >= limit then None
      else if code.[i] = '"' then Some i
      else find_quote (i + 1)
    in
    match find_quote p with
    | None -> None
    | Some q ->
        let j = ref (q + 1) in
        while !j < n && code.[!j] <> '"' do incr j done;
        if !j < n then Some (String.sub src.raw (q + 1) (!j - q - 1)) else None
  in
  List.iter
    (fun tok ->
      List.iter
        (fun p ->
          match string_lit_after (p + String.length tok) with
          | None -> ()
          | Some name ->
              let lname = String.lowercase_ascii name in
              if
                List.exists
                  (fun m -> find_sub lname m <> None)
                  audit_counter_markers
              then
                add src src.line_at.(p) "audit-counter"
                  (Printf.sprintf
                     "security-shaped counter %S bumped directly; emit the \
                      typed event instead (Node_ctx.audit / Audit.emit with \
                      ~stats keeps the counter and feeds the audit stream)"
                     name))
        (occurrences code tok))
    [ "Ctx.stat"; "Stats.incr" ]

let check_security add src =
  let code = src.code in
  let n = String.length code in
  let cks = chunks src in
  let vset = verifying_names src cks in
  let variant_occs =
    List.concat_map
      (fun v -> List.map (fun p -> (v, p)) (occurrences code v))
      signed_variants
  in
  List.iter
    (fun ck ->
      if is_handler ck.name then
        List.iter
          (fun (v, p) ->
            if p >= ck.lo && p < ck.hi then begin
              let after = skip_ws code n (p + String.length v) in
              if after < n && code.[after] = '{' then
                match pattern_intro code p with
                | None -> () (* construction, not a pattern *)
                | Some intro ->
                    let col = intro - line_start code intro in
                    let hi = arm_end code col p ck.hi in
                    if not (range_mentions_verifier code vset p hi) then
                      add src src.line_at.(p) "security"
                        (Printf.sprintf
                           "handler %s destructures signed %s without calling \
                            a verify/cga_check function in the arm"
                           ck.name v)
            end)
          variant_occs)
    cks

(* ------------------------------------------------------------------ *)
(* proto-schema: messages.mli vs binary.ml vs roundtrip tests          *)
(* ------------------------------------------------------------------ *)

let parse_variants msrc =
  let code = msrc.code in
  let n = String.length code in
  match find_sub code "type t =" with
  | None -> []
  | Some p ->
      let stop = ref n in
      (try
         let i = ref p in
         while !i < n do
           if code.[!i] = '\n' then begin
             let ls = !i + 1 in
             let starts k =
               ls + String.length k <= n
               && String.sub code ls (String.length k) = k
             in
             if
               starts "val " || starts "type " || starts "module "
               || starts "exception " || starts "end"
             then begin
               stop := ls;
               raise Exit
             end
           end;
           incr i
         done
       with Exit -> ());
      let acc = ref [] in
      let depth = ref 0 in
      let j = ref (p + 8) in
      while !j < !stop do
        (match code.[!j] with
        | '{' | '(' | '[' -> incr depth
        | '}' | ')' | ']' -> decr depth
        | '|' when !depth = 0 ->
            let q = skip_ws code !stop (!j + 1) in
            if q < !stop && code.[q] >= 'A' && code.[q] <= 'Z' then begin
              let w, _ = read_word code !stop q in
              acc := (w, msrc.line_at.(q)) :: !acc
            end
        | _ -> ());
        incr j
      done;
      List.rev !acc

let read_int_lit code n i =
  if i < n && is_digit code.[i] then begin
    let j = ref i in
    while !j < n && is_ident_char code.[!j] do incr j done;
    match int_of_string_opt (String.sub code i (!j - i)) with
    | Some v -> Some (v, !j)
    | None -> None
  end
  else None

(* Literal `put_u8 buf <int>` sites inside [lo, hi): the wire tags. *)
let tag_sites code lo hi =
  List.filter_map
    (fun p ->
      if p < lo || p >= hi then None
      else
        let q = skip_ws code hi (p + 6) in
        let w, qe = read_word code hi q in
        if w = "" then None
        else
          let r = skip_ws code hi qe in
          match read_int_lit code hi r with
          | Some (v, _) -> Some (p, v)
          | None -> None)
    (occurrences code "put_u8")

(* Pattern positions of [variants] (followed by '{') inside [lo, hi). *)
let variant_patterns code lo hi variants =
  List.concat_map
    (fun (v, _) ->
      List.filter_map
        (fun p ->
          if p < lo || p >= hi then None
          else
            let after = skip_ws code hi (p + String.length v) in
            if after < hi && code.[after] = '{' then Some (v, p) else None)
        (occurrences code v))
    variants
  |> List.sort (fun (_, a) (_, b) -> Int.compare a b)

let check_proto_schema add srcs =
  match List.find_opt (fun s -> ends_with "messages.mli" s.path) srcs with
  | None -> ()
  | Some msrc -> (
      let variants = parse_variants msrc in
      if variants = [] then ()
      else begin
        let dir =
          match String.rindex_opt msrc.path '/' with
          | Some k -> String.sub msrc.path 0 (k + 1)
          | None -> ""
        in
        let tests =
          List.filter
            (fun s ->
              ends_with "test_binary.ml" s.path || ends_with "test_proto.ml" s.path)
            srcs
        in
        (* Roundtrip-test references. *)
        List.iter
          (fun (v, line) ->
            let mentioned =
              List.exists (fun t -> occurrences t.code v <> []) tests
            in
            if not mentioned then
              add msrc line "proto-schema"
                (Printf.sprintf
                   "constructor %s has no roundtrip test mention in \
                    test_binary.ml / test_proto.ml"
                   v))
          variants;
        match List.find_opt (fun s -> s.path = dir ^ "binary.ml") srcs with
        | None -> ()
        | Some bsrc ->
            let code = bsrc.code in
            let cks = chunks bsrc in
            (match List.find_opt (fun c -> c.name = "encode") cks with
            | None ->
                add bsrc 1 "proto-schema"
                  "binary.ml has no top-level encode function"
            | Some enc ->
                let pats = variant_patterns code enc.lo enc.hi variants in
                let tags = tag_sites code enc.lo enc.hi in
                (* Tag of each encode arm: first literal put_u8 after the
                   pattern and before the next pattern. *)
                let arm_tag p =
                  let next =
                    List.fold_left
                      (fun acc (_, q) -> if q > p && q < acc then q else acc)
                      enc.hi pats
                  in
                  List.find_opt (fun (tp, _) -> tp > p && tp < next) tags
                in
                let assigned = Hashtbl.create 32 in
                List.iter
                  (fun (v, line) ->
                    match List.find_opt (fun (v', _) -> v' = v) pats with
                    | None ->
                        add msrc line "proto-schema"
                          (Printf.sprintf
                             "constructor %s has no encode branch in binary.ml"
                             v)
                    | Some (_, p) -> (
                        match arm_tag p with
                        | None ->
                            add bsrc bsrc.line_at.(p) "proto-schema"
                              (Printf.sprintf
                                 "encode branch for %s writes no literal wire \
                                  tag (put_u8 buf <n>)"
                                 v)
                        | Some (tp, tag) -> (
                            match Hashtbl.find_opt assigned tag with
                            | Some other ->
                                add bsrc bsrc.line_at.(tp) "proto-schema"
                                  (Printf.sprintf
                                     "wire tag %d reused by %s (already taken \
                                      by %s)"
                                     tag v other)
                            | None -> Hashtbl.replace assigned tag v)))
                  variants;
                (* Decode side: every assigned tag must decode back to the
                   same constructor. *)
                (match List.find_opt (fun c -> c.name = "decode_body") cks with
                | None ->
                    add bsrc 1 "proto-schema"
                      "binary.ml has no top-level decode_body function"
                | Some dec ->
                    let decode_map = Hashtbl.create 32 in
                    let i = ref dec.lo in
                    let n = String.length code in
                    let arms = ref [] in
                    while !i < dec.hi do
                      (if code.[!i] = '|' && (!i = 0 || code.[!i - 1] <> '|')
                       && (!i + 1 >= n || code.[!i + 1] <> '|')
                      then
                        let q = skip_ws code dec.hi (!i + 1) in
                        match read_int_lit code dec.hi q with
                        | Some (v, _) -> arms := (v, !i) :: !arms
                        | None -> ());
                      incr i
                    done;
                    let arms = List.rev !arms in
                    let rec fill = function
                      | [] -> ()
                      | (tag, p) :: tl ->
                          let hi =
                            match tl with (_, next) :: _ -> next | [] -> dec.hi
                          in
                          let ctor = ref None in
                          iter_idents code p hi (fun _ name ->
                              if
                                !ctor = None
                                && List.exists (fun (v, _) -> v = name) variants
                              then ctor := Some name);
                          (match !ctor with
                          | Some c ->
                              if not (Hashtbl.mem decode_map tag) then
                                Hashtbl.replace decode_map tag (c, p)
                          | None -> ());
                          fill tl
                    in
                    fill arms;
                    Hashtbl.iter
                      (fun tag v ->
                        match Hashtbl.find_opt decode_map tag with
                        | None ->
                            add bsrc bsrc.line_at.(dec.lo) "proto-schema"
                              (Printf.sprintf
                                 "decode_body has no arm for wire tag %d (%s)"
                                 tag v)
                        | Some (c, p) ->
                            if c <> v then
                              add bsrc bsrc.line_at.(p) "proto-schema"
                                (Printf.sprintf
                                   "wire tag %d decodes to %s but encodes %s"
                                   tag c v))
                      assigned))
      end)

(* ------------------------------------------------------------------ *)
(* scenario-keyword: schema.ml is the single keyword table            *)
(* ------------------------------------------------------------------ *)

(* String literals of a sanitized source: the sanitizer kept the quote
   characters and blanked the body in place, so each literal's content
   is read back from [src.raw] at the same offsets (the audit-counter
   technique). *)
let iter_string_literals src f =
  let code = src.code in
  let n = String.length code in
  let i = ref 0 in
  while !i < n do
    if code.[!i] = '"' then begin
      let j = ref (!i + 1) in
      while !j < n && code.[!j] <> '"' do incr j done;
      if !j < n then begin
        f !i (String.sub src.raw (!i + 1) (!j - !i - 1));
        i := !j + 1
      end
      else i := n
    end
    else incr i
  done

let keyword_shaped s =
  String.length s >= 2
  && s.[0] >= 'a'
  && s.[0] <= 'z'
  && String.for_all
       (fun c -> (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c = '-')
       s

(* The scenario grammar's vocabulary must be enumerable in one place:
   schema.ml's keyword-shaped literals *are* the table, and any other
   lib/scenario module spelling one of those words as a fresh literal
   (instead of referencing the Schema constant) silently forks the
   grammar the moment either copy changes. *)
let check_scenario_keywords add srcs =
  let in_scenario s = under "lib/scenario" s.path && ends_with ".ml" s.path in
  match List.filter in_scenario srcs with
  | [] -> ()
  | scn -> (
      match List.find_opt (fun s -> ends_with "schema.ml" s.path) scn with
      | None ->
          add (List.hd scn) 1 "scenario-keyword"
            "lib/scenario has no schema.ml keyword table; the scenario \
             grammar's vocabulary must live in one file"
      | Some table ->
          let vocab = Hashtbl.create 128 in
          iter_string_literals table (fun _ lit ->
              if keyword_shaped lit then Hashtbl.replace vocab lit ());
          List.iter
            (fun s ->
              if not (ends_with "schema.ml" s.path) then
                iter_string_literals s (fun p lit ->
                    if Hashtbl.mem vocab lit then
                      add s s.line_at.(p) "scenario-keyword"
                        (Printf.sprintf
                           "scenario keyword %S spelled as a stray literal; \
                            reference the Schema constant (the grammar's \
                            vocabulary lives in schema.ml alone)"
                           lit)))
            scn)

(* ------------------------------------------------------------------ *)
(* mli coverage                                                       *)
(* ------------------------------------------------------------------ *)

let check_mli_coverage add srcs =
  let paths = Hashtbl.create 64 in
  List.iter (fun s -> Hashtbl.replace paths s.path ()) srcs;
  List.iter
    (fun s ->
      if under "lib" s.path && ends_with ".ml" s.path then
        if not (Hashtbl.mem paths (s.path ^ "i")) then
          add s 1 "mli-coverage"
            "lib module has no .mli; every lib/** module must declare its \
             interface")
    srcs

(* ------------------------------------------------------------------ *)
(* Driver                                                             *)
(* ------------------------------------------------------------------ *)

let lint_files inputs =
  let srcs = List.map (fun (p, raw) -> make_source p raw) inputs in
  let findings = ref [] in
  let add src line rule msg =
    let f = { file = src.path; line; rule; msg } in
    if not (suppressed src f) then findings := f :: !findings
  in
  List.iter
    (fun src ->
      if ends_with ".ml" src.path || ends_with ".mli" src.path then begin
        let in_lib = under "lib" src.path in
        if in_lib then check_determinism add src;
        check_obj_magic add src;
        if in_lib then check_failwith add src;
        if in_lib then check_obs_no_printf add src;
        check_catch_all add src;
        if
          under "lib/secure" src.path || under "lib/dad" src.path
          || under "lib/dns" src.path
        then check_placeholder_sig add src;
        if in_lib then check_poly_compare add src;
        if List.exists (fun d -> under d src.path) audit_counter_dirs then
          check_audit_counter add src;
        if in_lib then check_schedule_label add src;
        if
          under "lib/dad" src.path || under "lib/dsr" src.path
          || under "lib/secure" src.path
        then check_flood_origin_label add src;
        if in_lib then check_security add src
      end)
    srcs;
  check_mli_coverage add srcs;
  check_proto_schema add srcs;
  check_scenario_keywords add srcs;
  List.sort
    (fun a b ->
      match String.compare a.file b.file with
      | 0 -> (
          match Int.compare a.line b.line with
          | 0 -> String.compare a.rule b.rule
          | c -> c)
      | c -> c)
    !findings
