lib/sim/mobility.mli: Engine Manet_crypto Topology
