(** Plain DSR (Johnson-Maltz dynamic source routing) — the insecure
    baseline the paper's protocol is derived from and measured against.

    On-demand route discovery: a source floods [RREQ]; relays append
    their address to the route record; the destination (or any node with
    a cached route, when cache replies are enabled) returns the recorded
    route.  Data is source-routed; a node that cannot reach its next hop
    reports a [RERR] back to the source, which purges matching cache
    entries.  End-to-end acknowledgements drive bounded retransmission
    and give the delivery/latency metrics the experiments report.

    Nothing is authenticated: any node can claim any route, reply from a
    fabricated cache, or report errors for links it never carried — the
    attack surface the secure protocol closes. *)

module Address = Manet_ipv6.Address
module Messages = Manet_proto.Messages

type config = {
  discovery_timeout : float;  (** seconds to wait for a RREP per attempt *)
  max_discovery_attempts : int;
  use_cache_replies : bool;  (** answer RREQs from the route cache (CREP) *)
  ack_timeout : float;  (** end-to-end ack wait before resending *)
  max_send_retries : int;  (** resends per data packet *)
  cache_capacity_per_dst : int;
  flood_jitter : float;
  use_acks : bool;
      (** classical DSR has no end-to-end acknowledgements; enable them
          for like-for-like comparison with the secure protocol, disable
          them to reproduce the undefended baseline the attack
          experiments measure *)
  salvage : bool;
      (** DSR packet salvaging: an intermediate that cannot reach its
          next hop re-routes the packet over its own cache (the RERR is
          still reported) *)
  route_shortening : bool;
      (** DSR automatic route shortening: a node overhearing (on a
          promiscuous radio) a data frame that will reach it in several
          more hops sends a gratuitous route reply with the shortcut.
          Note this relies on unauthenticated gratuitous replies, which
          is exactly what the secure protocol cannot accept — the secure
          agent deliberately has no such option (DESIGN.md §4a). *)
}

val default_config : config

type t

val create : ?config:config -> Manet_proto.Node_ctx.t -> t

val handle : t -> src:int -> Messages.t -> unit
(** Feed RREQ/RREP/CREP/RERR/Data/Ack.  Probe traffic and DNS messages
    are transit-forwarded. *)

val send : t -> dst:Address.t -> ?size:int -> unit -> unit
(** Offer one data packet of [size] payload bytes (default 512) to the
    routing layer: it is sent immediately over a cached route or queued
    behind a route discovery. *)

val discover :
  t -> dst:Address.t -> on_route:(Address.t list option -> unit) -> unit
(** Explicit route discovery.  [on_route] fires with the intermediate
    hops ([Some []] for a direct neighbour) or [None] when every attempt
    timed out.  If a route is already cached it fires immediately. *)

val cached_route : t -> dst:Address.t -> Address.t list option
(** Best cached route (intermediates) without triggering discovery. *)

val cached_routes : t -> dst:Address.t -> Address.t list list
(** Every cached route for [dst] (inspection; most recently used first). *)

(* manetsem: allow dead-export — uniform agent accessor; every protocol
   agent (Dad, Dsr, Srp, Secure_routing) exposes [address]. *)
val address : t -> Address.t

(** Statistics written to the engine's {!Manet_sim.Stats} registry, all
    under these keys (shared with the secure protocol so experiments
    compare like for like):
    - counters: [data.offered], [data.delivered], [data.acked],
      [data.dropped], [data.forwarded], [route.discoveries],
      [route.replies], [route.cache_replies], [rerr.sent],
      [rerr.received]
    - summaries: [data.latency] (one-way, seconds), [data.rtt],
      [route.discovery_time], [route.hops] *)

(** {1 Telemetry correlation keys}

    Shared vocabulary for the {!Manet_obs.Obs} correlation registry —
    [Manet_secure] uses the same keys so responder-side reply spans can
    attach to the initiating flood span regardless of which protocol
    variant runs.  A flood attempt is identified by (source, seq);
    replies by the fields both the responder and the consumer can see. *)

val rreq_corr : sip:Address.t -> seq:int -> string
val rrep_corr : sip:Address.t -> dip:Address.t -> rr:Address.t list -> string
val crep_corr : cacher:Address.t -> seq:int -> string
