(* The single keyword table of the scenario format.  manetlint's
   scenario-keyword rule enforces that every keyword-shaped string
   literal under lib/scenario lives in this file: the parser, the
   validator and the CLI all reference these constants, so the concrete
   grammar is enumerable in one place (and the docs table in README.md
   can be checked against it by eye). *)

let schema_name = "manetsim-scenario"
let version = 1

(* --- toplevel ----------------------------------------------------- *)

let kw_scenario = "scenario"
let kw_schema = "schema"

(* --- fields ------------------------------------------------------- *)

let kw_name = "name"
let kw_seed = "seed"
let kw_nodes = "nodes"
let kw_range = "range"
let kw_loss = "loss"
let kw_promiscuous = "promiscuous"
let kw_protocol = "protocol"
let kw_suite = "suite"
let kw_dns = "dns"
let kw_topology = "topology"
let kw_mobility = "mobility"
let kw_bootstrap = "bootstrap"
let kw_duration = "duration"
let kw_run_until = "run-until"
let kw_traffic = "traffic"
let kw_adversaries = "adversaries"
let kw_faults = "faults"
let kw_exports = "exports"

let fields =
  [
    kw_schema; kw_name; kw_seed; kw_nodes; kw_range; kw_loss; kw_promiscuous;
    kw_protocol; kw_suite; kw_dns; kw_topology; kw_mobility; kw_bootstrap;
    kw_duration; kw_run_until; kw_traffic; kw_adversaries; kw_faults;
    kw_exports;
  ]

(* --- atoms -------------------------------------------------------- *)

let kw_true = "true"
let kw_false = "false"

(* --- protocol / suite --------------------------------------------- *)

let kw_secure = "secure"
let kw_dsr = "dsr"
let kw_srp = "srp"
let protocols = [ kw_secure; kw_dsr; kw_srp ]

let kw_mock = "mock"
let kw_rsa = "rsa"
let suites = [ kw_mock; kw_rsa ]

(* --- topology ----------------------------------------------------- *)

let kw_chain = "chain"
let kw_grid = "grid"
let kw_random = "random"
let kw_explicit = "explicit"
let topologies = [ kw_chain; kw_grid; kw_random; kw_explicit ]

let kw_spacing = "spacing"
let kw_cols = "cols"
let kw_width = "width"
let kw_height = "height"
let kw_node = "node"

(* --- mobility ----------------------------------------------------- *)

let kw_static = "static"
let kw_waypoint = "waypoint"
let kw_walk = "walk"
let mobilities = [ kw_static; kw_waypoint; kw_walk ]

let kw_min_speed = "min-speed"
let kw_max_speed = "max-speed"
let kw_pause = "pause"
let kw_speed = "speed"
let kw_turn_interval = "turn-interval"

(* --- bootstrap / traffic ------------------------------------------ *)

let kw_stagger = "stagger"

let kw_cbr = "cbr"
let kw_src = "src"
let kw_dst = "dst"
let kw_interval = "interval"
let kw_size = "size"
let kw_start = "start"

(* --- adversaries (lib/attacks vocabulary) ------------------------- *)

let kw_blackhole = "blackhole"
let kw_grayhole = "grayhole"
let kw_replayer = "replayer"
let kw_rerr_spammer = "rerr-spammer"
let kw_identity_churner = "identity-churner"
let kw_sleeper = "sleeper"

let adversary_kinds =
  [
    kw_blackhole; kw_grayhole; kw_replayer; kw_rerr_spammer;
    kw_identity_churner; kw_sleeper;
  ]

let kw_prob = "prob"
let kw_every = "every"

(* --- faults (lib/faults vocabulary) ------------------------------- *)

let kw_crash = "crash"
let kw_restart = "restart"
let kw_outage = "outage"
let kw_link_down = "link-down"
let kw_link_up = "link-up"
let kw_flap = "flap"
let kw_partition = "partition"
let kw_degrade = "degrade"
let kw_churn = "churn"

let fault_kinds =
  [
    kw_crash; kw_restart; kw_outage; kw_link_down; kw_link_up; kw_flap;
    kw_partition; kw_degrade; kw_churn;
  ]

let kw_at = "at"
let kw_from = "from"
let kw_until = "until"
let kw_period = "period"
let kw_loss_good = "loss-good"
let kw_loss_bad = "loss-bad"
let kw_p_good_to_bad = "p-good-to-bad"
let kw_p_bad_to_good = "p-bad-to-good"
let kw_horizon = "horizon"
let kw_mean_up = "mean-up"
let kw_mean_down = "mean-down"

(* --- exports ------------------------------------------------------ *)

let kw_stats_csv = "stats-csv"
let kw_audit_jsonl = "audit-jsonl"
let kw_trace_jsonl = "trace-jsonl"
let kw_metrics_csv = "metrics-csv"
let kw_metrics_prom = "metrics-prom"
let kw_report_json = "report-json"

let export_kinds =
  [
    kw_stats_csv; kw_audit_jsonl; kw_trace_jsonl; kw_metrics_csv;
    kw_metrics_prom; kw_report_json;
  ]

(* --- merged-stream names (sweep exports) -------------------------- *)

let stream_audit = "audit"
let stream_trace = "trace"
let stream_perf = "perf"
let stream_timeline = "timeline"
