(** DSR route cache.

    Maps a destination to the source routes discovered for it.  A route
    is the list of {e intermediate} addresses (excluding the owner and the
    destination).  Entries carry caller-defined metadata ['a]: the plain
    DSR baseline stores nothing, the secure protocol stores the
    destination's signed endorsement so cached-route replies (CREP) can
    prove provenance.

    Invalidation follows DSR route maintenance: a RERR for link
    [(a, b)] purges every entry whose expanded path (owner, route,
    destination) traverses that link, and a node blamed by the credit
    system can be purged from all routes at once. *)

module Address = Manet_ipv6.Address

type 'a entry = {
  route : Address.t list;  (** intermediates, owner to destination order *)
  meta : 'a;
  added_at : float;
  mutable last_used : float;
}

type 'a t

val create : ?capacity_per_dst:int -> unit -> 'a t
(** [capacity_per_dst] bounds routes kept per destination (default 4);
    the oldest-used entry is evicted first. *)

val insert :
  'a t -> dst:Address.t -> route:Address.t list -> meta:'a -> now:float -> unit
(** Add a route; an identical route to the same destination refreshes the
    existing entry instead of duplicating it. *)

val entries : 'a t -> dst:Address.t -> 'a entry list
(** Current routes for [dst], most recently used first. *)

val best :
  'a t -> dst:Address.t -> score:('a entry -> float) -> 'a entry option
(** Highest-scoring entry; marks it used.  [None] when the cache holds no
    route for [dst]. *)

val remove_link :
  'a t -> owner:Address.t -> a:Address.t -> b:Address.t -> int
(** Purge every entry whose expanded path (owner, route, destination)
    contains [a] immediately followed by [b].  Returns how many entries
    were removed. *)

val remove_containing : 'a t -> Address.t -> int
(** Purge every entry whose route (or destination) includes the node —
    used when the credit system blames a host.  Returns removals. *)

val remove_route : 'a t -> dst:Address.t -> route:Address.t list -> unit
(** Drop one specific route (e.g. after an end-to-end ack timeout). *)

val size : 'a t -> int
