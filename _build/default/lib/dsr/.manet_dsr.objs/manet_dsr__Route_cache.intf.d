lib/dsr/route_cache.mli: Manet_ipv6
