(* Partition & heal: cut a running MANET in two, watch the secure route
   maintenance machinery (§3.4) react — signed RERRs, credit slashing of
   the node that keeps reporting breakage — then heal the cut and print
   the recovery metrics.

   Run with:  dune exec examples/partition_heal.exe *)

module Scenario = Manetsec.Scenario
module Engine = Manetsec.Sim.Engine
module Stats = Manetsec.Sim.Stats
module Trace = Manetsec.Sim.Trace
module Faults = Manetsec.Faults
module Resilience = Manetsec.Resilience
module Credit = Manetsec.Credit

let () =
  (* A 6-node chain: 0 (DNS) - 1 - 2 - 3 - 4 - 5.  The flow 1 -> 4 has
     to cross the link 2-3, which the partition will sever.  The credit
     RERR threshold is set to 0 so a single signed RERR is already
     "suspicious" — it makes the slashing visible in a small example. *)
  let params =
    {
      Scenario.default_params with
      n = 6;
      seed = 7;
      range = 250.0;
      topology = Scenario.Chain { spacing = 200.0 };
      secure_config =
        {
          Manetsec.Secure_routing.default_config with
          credit = { Credit.default_config with rerr_threshold = 0 };
        };
    }
  in
  let s = Scenario.create params in
  let engine = Scenario.engine s in
  Trace.enable (Engine.trace engine);
  Scenario.bootstrap s;
  Trace.clear (Engine.trace engine) (* keep the trace to the fault story *);

  let t0 = Engine.now engine in
  let fault_at = t0 +. 10.0 and heal_at = t0 +. 25.0 and stop = t0 +. 45.0 in
  Scenario.start_cbr s ~flows:[ (1, 4) ] ~interval:0.5 ~duration:(stop -. t0) ();

  let mon = Resilience.monitor ~period:1.0 ~until:stop engine in
  Resilience.mark mon ~at:(t0 +. 0.5) "start";
  Resilience.mark mon ~at:fault_at "fault";
  Resilience.mark mon ~at:heal_at "heal";
  Resilience.mark mon ~at:(stop -. 0.5) "end";

  (* Nodes 3, 4, 5 end up on the far side of the cut. *)
  Scenario.inject s (Faults.partition ~from:fault_at ~until:heal_at [ 3; 4; 5 ]);
  Scenario.run s ~until:(stop +. 5.0);

  print_endline "Fault timeline and suspicion events:";
  List.iter
    (fun (e : Trace.entry) ->
      if
        List.mem e.event [ "fault.partition"; "fault.heal"; "secure.suspect" ]
      then Format.printf "  %a@." Trace.pp_entry e)
    (Trace.entries (Engine.trace engine));

  print_endline "\nCredit standing (negative = slashed for reporting breakage):";
  Array.iter
    (fun node ->
      match node.Scenario.routing with
      | Scenario.Secure_agent agent ->
          let credit = Manetsec.Secure_routing.credits agent in
          Array.iter
            (fun peer ->
              let bal =
                Credit.get credit (Scenario.address_of s peer.Scenario.index)
              in
              if bal < 0.0 then
                Printf.printf "  node %d holds node %d at %.0f\n"
                  node.Scenario.index peer.Scenario.index bal)
            (Scenario.nodes s)
      | _ -> ())
    (Scenario.nodes s);

  let st = Scenario.stats s in
  Printf.printf "\nRecovery metrics:\n";
  let phase a b =
    match Resilience.phase mon ~from_mark:a ~to_mark:b with
    | Some r -> Printf.sprintf "%.2f" r
    | None -> "-"
  in
  Printf.printf "  delivery before fault     %s\n" (phase "start" "fault");
  Printf.printf "  delivery during partition %s\n" (phase "fault" "heal");
  Printf.printf "  delivery after heal       %s\n" (phase "heal" "end");
  (match Resilience.route_repair_latency mon ~fault_at:heal_at with
  | Some l -> Printf.printf "  route repaired %.1f s after heal\n" l
  | None -> Printf.printf "  route never repaired\n");
  Printf.printf "  rerr.sent=%d rerr.received=%d hostile_suspected=%d\n"
    (Stats.get st "rerr.sent")
    (Stats.get st "rerr.received")
    (Stats.get st "secure.hostile_suspected")
