(** Deterministic merging of per-run exports from a parameter sweep.

    A sweep runs many independent simulations (seed replications ×
    parameter grid points), possibly across several domains, and each
    run produces its own exports: counter snapshots, an audit JSONL
    stream, a telemetry trace JSONL stream.  This module folds those
    per-run artefacts into single documents whose bytes depend only on
    the set of runs — {e never} on the domain count, spawn order or
    completion order of the workers that produced them.

    Determinism contract: {!sorted} orders runs by their key fields
    (element-wise: ints and floats numerically, strings lexically),
    every merged document is generated from that canonical order, JSON
    is rendered by the canonical {!Json} printer, and each run's stream
    lines are copied verbatim.  Two sweeps over the same grid with the
    same seeds therefore produce byte-identical merged exports at any
    [--domains] value. *)

type run = {
  key : (string * Json.t) list;
      (** Identifying coordinates in canonical comparison order, e.g.
          [("experiment", String "e1"); ("fraction", Float 0.2);
          ("seed", Int 3)].  Every run in one merge must use the same
          field names in the same order. *)
  stats : (string * int) list;  (** Counter snapshot (name, value). *)
  streams : (string * string) list;
      (** Named JSONL exports, e.g. [("audit", Audit.to_jsonl ...)].
          Each export is a header object line followed by record
          lines. *)
}

val sorted : run list -> run list
(** Runs in canonical key order (stable for equal keys). *)

val stream_jsonl : name:string -> run list -> string
(** One merged JSONL document for stream [name]: a sweep header object
    [{"schema":"manetsim-sweep",...,"stream":name,"runs":N}], then per
    run (in {!sorted} order) a run-header object carrying ["run"] (its
    canonical index), the run's key fields and the original per-run
    header under ["source"], followed by that run's record lines
    verbatim.  Raises [Invalid_argument] if a run lacks [name] — a
    partial merge would silently misrepresent the sweep. *)

val stats_csv : run list -> string
(** Counters as CSV: header [<key field names>,counter,value], one row
    per (run, counter) in {!sorted} run order, counters in each run's
    own (already sorted) snapshot order. *)
