lib/attacks/aodv_adversary.ml: Hashtbl Manet_aodv Manet_crypto Manet_ipv6 Manet_sim
