(** A signature suite: the bundle of cryptographic operations every
    protocol module is written against.

    Public keys travel as opaque byte strings ([pk_bytes]) because the
    protocol hashes them into CGA addresses and attaches them to messages
    verbatim; only [verify] needs to understand their structure.  The
    suite also keeps running counters of sign/verify operations, which the
    overhead experiments (E2) report as "crypto ops per delivered
    packet". *)

type keypair = {
  pk_bytes : string;  (** serialized public key, as carried on the wire *)
  sign : string -> string;  (** sign a message with the private key *)
}

type op = Sign | Verify | Hash
(** Operation classes the suite accounts: signature creation, signature
    verification, and bare hashing charged by a caller through
    {!count_hash} (e.g. the CGA binding checks, which hash but neither
    sign nor verify). *)

type t = {
  scheme_name : string;
  generate : unit -> keypair;
  verify : pk_bytes:string -> msg:string -> signature:string -> bool;
  signature_size : int;  (** wire bytes per signature *)
  public_key_size : int;  (** wire bytes per public key *)
  mutable sign_count : int;
  mutable verify_count : int;
  mutable sha256_blocks : int;
      (** 64-byte compression blocks hashed across all operations
          (message digests for sign/verify plus {!count_hash} charges) *)
  mutable on_op : (op:op -> bytes:int -> unit) option;
      (** subscriber notified on every operation with the input size;
          set via {!set_on_op} (the perf registry uses it to attribute
          ops to the message kind and node under dispatch) *)
}

val rsa : ?bits:int -> Prng.t -> t
(** RSA suite (default 512-bit moduli).  Key generation draws from the
    given PRNG stream, so a seeded suite is fully reproducible. *)

val mock : Prng.t -> t
(** Idealized fast suite backed by {!Mock_sig}; its registry is private to
    the returned suite value. *)

val count_hash : t -> bytes:int -> unit
(** Charge the cost of hashing [bytes] bytes outside sign/verify (a CGA
    interface-identifier recomputation, say): adds
    [Sha256.blocks_of_len bytes] to [sha256_blocks] and notifies the
    {!t.on_op} subscriber with the {!Hash} op.  No op counter moves. *)

val set_on_op : t -> (op:op -> bytes:int -> unit) option -> unit
(** Install (or clear) the per-operation subscriber. *)

val reset_counters : t -> unit
(** Zero the sign/verify/hash-block counters before a measured run. *)
