lib/sim/net.ml: Array Engine List Manet_crypto Topology
