examples/outdoor_event.mli:
