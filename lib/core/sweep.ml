module Prng = Manet_crypto.Prng
module Mobility = Manet_sim.Mobility
module Parallel = Manet_sim.Parallel
module Stats = Manet_sim.Stats
module Obs = Manet_obs.Obs
module Audit = Manet_obs.Audit
module Json = Manet_obs.Json
module Merge = Manet_obs.Merge
module Adversary = Manet_attacks.Adversary

type point =
  | E1_blackhole of { n : int; fraction : float; seed : int; duration : float }
  | E6_bootstrap of { n : int; seed : int }

type spec = {
  e1_fractions : float list;
  e1_nodes : int;
  e1_duration : float;
  e6_sizes : int list;
  seeds : int list;
}

let default_spec =
  {
    e1_fractions = [ 0.0; 0.2; 0.4 ];
    e1_nodes = 36;
    e1_duration = 60.0;
    e6_sizes = [ 10; 20; 40 ];
    seeds = [ 1; 2; 3 ];
  }

let points spec =
  List.concat_map
    (fun fraction ->
      List.map
        (fun seed ->
          E1_blackhole
            { n = spec.e1_nodes; fraction; seed; duration = spec.e1_duration })
        spec.seeds)
    spec.e1_fractions
  @ List.concat_map
      (fun n -> List.map (fun seed -> E6_bootstrap { n; seed }) spec.seeds)
      spec.e6_sizes

(* The uniform key shared by both grids (Merge requires one field set
   per sweep); E6 truthfully reports an adversary fraction of 0. *)
let point_key = function
  | E1_blackhole { n; fraction; seed; _ } ->
      [
        ("experiment", Json.String "e1");
        ("n", Json.Int n);
        ("fraction", Json.Float fraction);
        ("seed", Json.Int seed);
      ]
  | E6_bootstrap { n; seed } ->
      [
        ("experiment", Json.String "e6");
        ("n", Json.Int n);
        ("fraction", Json.Float 0.0);
        ("seed", Json.Int seed);
      ]

(* Deterministic adversary placement and flow endpoints, as in the E1
   bench: node 0 (DNS) and flow endpoints are never hostile. *)
let pick_adversaries ~seed ~n ~k ~protect =
  let g = Prng.create ~seed:(seed * 7919) in
  let candidates =
    Array.of_list
      (List.filter
         (fun x -> not (List.mem x protect))
         (List.init (n - 1) (fun x -> x + 1)))
  in
  Prng.shuffle g candidates;
  Array.to_list (Array.sub candidates 0 (min k (Array.length candidates)))

let standard_flows ~n ~seed ~count =
  let g = Prng.create ~seed:((seed * 31) + 17) in
  List.init count (fun _ ->
      let a = 1 + Prng.int g (n - 1) in
      let rec pick_b () =
        let b = 1 + Prng.int g (n - 1) in
        if b = a then pick_b () else b
      in
      (a, pick_b ()))

let scenario_of_point = function
  | E1_blackhole { n; fraction; seed; duration } ->
      (* Scale flow count down with n so small CI grids keep unprotected
         candidate nodes available for adversary placement. *)
      let flows = standard_flows ~n ~seed ~count:(max 1 (min 8 (n / 4))) in
      let protect = List.concat_map (fun (a, b) -> [ a; b ]) flows in
      let k = int_of_float (Float.round (fraction *. float_of_int n)) in
      let behavior = { Adversary.blackhole with forge_rrep = true } in
      let adversaries =
        List.map (fun idx -> (idx, behavior)) (pick_adversaries ~seed ~n ~k ~protect)
      in
      let params =
        {
          Scenario.default_params with
          n;
          seed;
          range = 250.0;
          topology = Scenario.Random { width = 900.0; height = 900.0 };
          mobility =
            Mobility.Random_waypoint
              { min_speed = 1.0; max_speed = 10.0; pause = 2.0 };
          protocol = Scenario.Secure;
          adversaries;
        }
      in
      let s = Scenario.create params in
      Obs.set_capture (Scenario.obs s) true;
      Scenario.start_cbr s ~flows ~interval:0.5 ~duration ();
      Scenario.run s ~until:(duration *. 2.0);
      s
  | E6_bootstrap { n; seed } ->
      let side = 180.0 *. sqrt (float_of_int n) in
      let params =
        {
          Scenario.default_params with
          n;
          seed;
          range = 250.0;
          topology = Scenario.Random { width = side; height = side };
        }
      in
      let s = Scenario.create params in
      Obs.set_capture (Scenario.obs s) true;
      Scenario.bootstrap ~stagger:0.3 s;
      s

let run_point point =
  let key = point_key point in
  let s = scenario_of_point point in
  let obs = Scenario.obs s in
  {
    Merge.key;
    stats = Stats.counters (Scenario.stats s);
    streams =
      [
        ("audit", Audit.to_jsonl ~meta:key (Obs.audit obs));
        ("trace", Obs.to_jsonl ~meta:key obs);
        ("perf", Scenario.perf_det_jsonl ~meta:key s);
        ("timeline", Scenario.timeline_jsonl ~meta:key s);
      ];
  }

let run ~domains spec =
  Merge.sorted (Parallel.map ~domains run_point (points spec))
