lib/aodv/aodv.ml: Hashtbl List Manet_crypto Manet_ipv6 Manet_proto Manet_sim Option Queue String
