type entry = { time : float; node : int; event : string; detail : string }

type t = {
  mutable enabled : bool;
  capacity : int;
  buf : entry Queue.t;
  (* Per-event-tag index mirroring [buf]: each tag maps to its entries in
     insertion order, so [find] costs O(matches) instead of rescanning
     the whole ring per query.  Maintained on every push and drop. *)
  index : (string, entry Queue.t) Hashtbl.t;
  mutable dropped : int;
}

let create ?(capacity = 100_000) () =
  {
    enabled = false;
    capacity;
    buf = Queue.create ();
    index = Hashtbl.create 64;
    dropped = 0;
  }

let enable t = t.enabled <- true
let disable t = t.enabled <- false
let is_enabled t = t.enabled

let index_queue t event =
  match Hashtbl.find_opt t.index event with
  | Some q -> q
  | None ->
      let q = Queue.create () in
      Hashtbl.add t.index event q;
      q

let log t ~time ~node ~event ~detail =
  if t.enabled then begin
    if Queue.length t.buf >= t.capacity then begin
      let oldest = Queue.pop t.buf in
      (* The index queue for the dropped entry's tag is non-empty and its
         front is that same entry: both structures grow in push order. *)
      (match Hashtbl.find_opt t.index oldest.event with
      | Some q -> ignore (Queue.pop q)
      | None -> ());
      t.dropped <- t.dropped + 1
    end;
    let e = { time; node; event; detail } in
    Queue.push e t.buf;
    Queue.push e (index_queue t event)
  end

let entries t = List.of_seq (Queue.to_seq t.buf)

let find t ~event =
  match Hashtbl.find_opt t.index event with
  | None -> []
  | Some q -> List.of_seq (Queue.to_seq q)

let fold t ~init ~f = Queue.fold f init t.buf

let clear t =
  Queue.clear t.buf;
  Hashtbl.reset t.index;
  t.dropped <- 0

let length t = Queue.length t.buf
let dropped t = t.dropped

let pp_entry fmt e =
  if e.node >= 0 then
    Format.fprintf fmt "%10.4f  node %-3d  %-18s %s" e.time e.node e.event e.detail
  else Format.fprintf fmt "%10.4f  %-27s %s" e.time e.event e.detail

let render t =
  let buf = Buffer.create 1024 in
  if t.dropped > 0 then
    Buffer.add_string buf
      (Printf.sprintf "[trace: %d oldest entries dropped at capacity %d]\n"
         t.dropped t.capacity);
  Queue.iter
    (fun e -> Buffer.add_string buf (Format.asprintf "%a@." pp_entry e))
    t.buf;
  Buffer.contents buf
