(* The timeline/flood-provenance contract: bucket aggregation is exact
   (window sums equal the unbucketed totals, windows are half-open),
   flood propagation trees respect causality (a parent is seen no later
   than any child it reaches), and the JSONL export is byte-identical
   across same-seed replays and sweep domain counts — the property the
   CI timeline determinism gates also check end-to-end through the
   CLI. *)

module Engine = Manet_sim.Engine
module Net = Manet_sim.Net
module Suite = Manet_crypto.Suite
module Timeline = Manetsec.Timeline
module Flood = Manetsec.Flood
module Json = Manetsec.Obs_json
module Obs = Manetsec.Obs
module Audit = Manetsec.Audit
module Merge = Manetsec.Merge
module Sweep = Manetsec.Sweep
module Scenario = Manetsec.Scenario

let qtest ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name gen prop)

(* --- bare-engine bucket mechanics --------------------------------------- *)

(* Drive a bare engine through the installed per-event hook: schedule
   one no-op event per timestamp and let the engine fire the tick. *)
let run_times ~width times =
  let e = Engine.create ~seed:1 () in
  let tl = Timeline.create ~width e in
  Timeline.install tl;
  List.iter (fun t -> Engine.schedule_at e ~time:t (fun () -> ())) times;
  Engine.run e;
  Timeline.flush tl;
  (e, tl)

let test_half_open_boundaries () =
  Alcotest.(check int) "schema version pinned" 1 Timeline.schema_version;
  Alcotest.(check (float 0.0)) "default width" 1.0 Timeline.default_width;
  let e, tl = run_times ~width:2.0 [ 0.5; 1.99; 2.0 ] in
  Alcotest.(check (float 0.0)) "width recorded" 2.0 (Timeline.width tl);
  Alcotest.(check bool) "recording on by default" true (Timeline.enabled tl);
  (* [0, 2) holds 0.5 and 1.99; the boundary event 2.0 opens bucket 1. *)
  Alcotest.(check (list (pair int int)))
    "half-open windows: boundary event falls in the next bucket"
    [ (0, 2); (1, 1) ]
    (List.map
       (fun b -> (b.Timeline.b_index, b.Timeline.b_events))
       (Timeline.buckets tl));
  Alcotest.(check int) "bucket_count agrees" 2 (Timeline.bucket_count tl);
  (* Ticks with no new activity (driven directly, as the mli allows)
     materialise nothing: only windows that saw work exist. *)
  Timeline.tick tl 10.0;
  Timeline.flush tl;
  Alcotest.(check int) "idle windows materialise no bucket" 2
    (Timeline.bucket_count tl);
  ignore (Sys.opaque_identity (Engine.events_processed e))

let test_width_validated () =
  let e = Engine.create ~seed:1 () in
  Alcotest.check_raises "non-positive width rejected"
    (Invalid_argument "Timeline.create: width must be positive") (fun () ->
      ignore (Timeline.create ~width:0.0 e))

let test_disabled_records_nothing () =
  let e = Engine.create ~seed:1 () in
  let tl = Timeline.create e in
  Timeline.install tl;
  Timeline.set_enabled tl false;
  List.iter
    (fun t -> Engine.schedule_at e ~time:t (fun () -> ()))
    [ 0.5; 3.0; 7.5 ];
  Engine.run e;
  Timeline.flush tl;
  Alcotest.(check bool) "switch reads back" false (Timeline.enabled tl);
  Alcotest.(check int) "disabled timeline stays empty" 0
    (Timeline.bucket_count tl)

let test_export_shape_and_idempotent_flush () =
  let e, tl = run_times ~width:1.0 [ 0.25; 1.5; 1.75 ] in
  let fl = Flood.create e in
  (match Json.member "schema" (Timeline.header tl) with
  | Some (Json.String s) ->
      Alcotest.(check string) "header carries the schema" Timeline.schema s
  | _ -> Alcotest.fail "timeline header has no schema member");
  List.iter
    (fun b ->
      match Json.member "type" (Timeline.bucket_json b) with
      | Some (Json.String "bucket") -> ()
      | _ -> Alcotest.fail "bucket line is not typed \"bucket\"")
    (Timeline.buckets tl);
  (* to_jsonl flushes; a second export may only close zero-delta
     windows, which materialise nothing — bytes must not change. *)
  let a = Timeline.to_jsonl tl ~flood:fl in
  let b = Timeline.to_jsonl tl ~flood:fl in
  Alcotest.(check string) "double export is byte-identical" a b

(* Window sums = unbucketed totals, at any width, for any event-time
   sequence; bucket indices are exactly the half-open window indices of
   the timestamps, and empty windows never materialise. *)
let times_gen =
  QCheck.pair
    (QCheck.oneofl [ 0.5; 1.0; 2.5 ])
    QCheck.(list_of_size Gen.(int_range 0 60) (int_bound 2999))

let prop_bucket_aggregation =
  qtest "bucket sums = totals; indices = half-open window ids" times_gen
    (fun (width, raw) ->
      let times = List.map (fun k -> float_of_int k /. 100.0) raw in
      let e, tl = run_times ~width times in
      let buckets = Timeline.buckets tl in
      (* Expected tally with the hook's own index arithmetic. *)
      let tally = Hashtbl.create 16 in
      List.iter
        (fun t ->
          let i = int_of_float (t /. width) in
          Hashtbl.replace tally i
            (1 + Option.value ~default:0 (Hashtbl.find_opt tally i)))
        times;
      let expected =
        Hashtbl.fold (fun i c acc -> (i, c) :: acc) tally []
        |> List.sort compare
      in
      let got =
        List.map (fun b -> (b.Timeline.b_index, b.Timeline.b_events)) buckets
      in
      let rec increasing = function
        | a :: (b :: _ as rest) ->
            a.Timeline.b_index < b.Timeline.b_index && increasing rest
        | _ -> true
      in
      got = expected
      && List.fold_left (fun acc b -> acc + b.Timeline.b_events) 0 buckets
         = Engine.events_processed e
      && List.for_all (fun b -> b.Timeline.b_events > 0) buckets
      && increasing buckets
      && Timeline.bucket_count tl = List.length buckets)

(* --- flood-tree invariants ---------------------------------------------- *)

(* Replay a generated reception history against a live engine clock,
   with causality enforced the way the protocols guarantee it: a copy's
   sender is always a node that already holds the flood (or the
   origin).  Each op is (time-ticks, key, node, src, hops, dup?,
   verify?). *)
let origin_node = 1000

let apply_flood_ops ops =
  let e = Engine.create ~seed:1 () in
  let fl = Flood.create e in
  let holders : (string, (int, unit) Hashtbl.t) Hashtbl.t =
    Hashtbl.create 8
  in
  List.iter
    (fun (ticks, k, node, src0, hops, dup, verify) ->
      Engine.schedule_at e
        ~time:(float_of_int ticks /. 10.0)
        (fun () ->
          let key = Printf.sprintf "k%d" k in
          let nodes =
            match Hashtbl.find_opt holders key with
            | Some s -> s
            | None ->
                let s = Hashtbl.create 8 in
                Hashtbl.replace s origin_node ();
                Hashtbl.replace holders key s;
                Flood.originate fl ~kind:Flood.Rreq ~key ~node:origin_node;
                Flood.sent fl ~kind:Flood.Rreq ~key ~node:origin_node;
                s
          in
          let src = if Hashtbl.mem nodes src0 then src0 else origin_node in
          Flood.received fl ~kind:Flood.Rreq ~key ~node ~src ~hops;
          Hashtbl.replace nodes node ();
          if dup then Flood.duplicate fl ~kind:Flood.Rreq ~key
          else Flood.sent fl ~kind:Flood.Rreq ~key ~node;
          if verify then Flood.verified fl ~kind:Flood.Rreq ~key ~node))
    ops;
  Engine.run e;
  (fl, ops)

let flood_ops_gen =
  QCheck.(
    list_of_size
      Gen.(int_range 0 50)
      (map
         (fun ((ticks, k), ((node, src), (hops, (dup, verify)))) ->
           (ticks, k, node, src, hops, dup, verify))
         (pair
            (pair (int_bound 200) (int_bound 2))
            (pair
               (pair (int_bound 9) (int_bound 9))
               (pair (int_bound 4) (pair bool bool))))))

let summary_invariants s =
  s.Flood.duplicates <= s.Flood.received
  && s.Flood.reached <= s.Flood.received
  && s.Flood.verify_nodes <= s.Flood.reached
  && s.Flood.verify_nodes <= s.Flood.verifies
  && s.Flood.start <= s.Flood.last
  && String.equal (Flood.kind_str s.Flood.kind) "rreq"

let tree_invariants fl s =
  let cells = Flood.tree fl ~id:s.Flood.id in
  let rec sorted = function
    | (a, _) :: ((b, _) :: _ as rest) -> a < b && sorted rest
    | _ -> true
  in
  List.length cells = s.Flood.reached
  && sorted cells
  && List.fold_left (fun acc (_, (_, _, _, v)) -> acc + v) 0 cells
     = s.Flood.verifies
  && List.for_all
       (fun (_, (first_seen, parent, hops, verifies)) ->
         first_seen >= s.Flood.start
         && first_seen <= s.Flood.last
         && hops <= s.Flood.hop_radius
         && verifies >= 0
         &&
         (* Causality: a parent that was itself reached was reached no
            later than its child.  The origin is exempt — it holds the
            flood from the start, and its own cell (if any) records when
            its flood echoed back, which can postdate its children. *)
         parent = s.Flood.origin
         ||
         match List.assoc_opt parent cells with
         | None -> true (* an unknown sender *)
         | Some (parent_first, _, _, _) -> parent_first <= first_seen)
       cells

let prop_flood_tree_invariants =
  qtest ~count:150 "flood summaries and trees respect the protocol bounds"
    flood_ops_gen (fun ops ->
      let fl, ops = apply_flood_ops ops in
      let summaries = Flood.summaries fl in
      let distinct_keys =
        List.sort_uniq compare (List.map (fun (_, k, _, _, _, _, _) -> k) ops)
      in
      Flood.flood_count fl = List.length distinct_keys
      && List.length summaries = Flood.flood_count fl
      (* Ids are dense in first-origination order. *)
      && List.for_all2
           (fun i s -> s.Flood.id = i)
           (List.init (List.length summaries) Fun.id)
           summaries
      && List.for_all summary_invariants summaries
      && List.for_all (tree_invariants fl) summaries
      (* The two derived metrics agree with their definitions read off
         the summaries (integer folds, so equality is exact). *)
      &&
      let extra =
        List.fold_left
          (fun acc s -> acc + max 0 (s.Flood.verifies - s.Flood.verify_nodes))
          0 summaries
      in
      let recv =
        List.fold_left (fun acc s -> acc + s.Flood.received) 0 summaries
      in
      let reached =
        List.fold_left (fun acc s -> acc + s.Flood.reached) 0 summaries
      in
      Float.equal
        (Flood.duplicate_verifies_per_flood fl)
        (if summaries = [] then 0.0
         else float_of_int extra /. float_of_int (List.length summaries))
      && Float.equal
           (Flood.flood_redundancy_ratio fl)
           (if reached = 0 then 0.0
            else float_of_int recv /. float_of_int reached))

(* --- end-to-end through a real scenario --------------------------------- *)

let small_run seed =
  let params =
    {
      Scenario.default_params with
      n = 8;
      seed;
      protocol = Scenario.Secure;
    }
  in
  let s = Scenario.create params in
  Scenario.bootstrap ~stagger:0.3 s;
  Scenario.send s ~src:1 ~dst:5 ();
  Scenario.run s ~until:30.0;
  s

(* The scenario wires the timeline to every counter source; after a
   flush each windowed series must sum back to its cumulative total. *)
let test_scenario_window_sums () =
  let s = small_run 7 in
  let tl = Obs.timeline (Scenario.obs s) in
  Timeline.flush tl;
  let buckets = Timeline.buckets tl in
  Alcotest.(check bool) "the run produced buckets" true (buckets <> []);
  let sum get = List.fold_left (fun acc b -> acc + get b) 0 buckets in
  let net = Scenario.net s and suite = Scenario.suite s in
  Alcotest.(check int) "event windows sum to events_processed"
    (Engine.events_processed (Scenario.engine s))
    (sum (fun b -> b.Timeline.b_events));
  Alcotest.(check int) "delivery windows sum to Net.deliveries"
    (Net.deliveries net)
    (sum (fun b -> b.Timeline.b_deliveries));
  Alcotest.(check int) "transmission windows sum to Net.transmissions"
    (Net.transmissions net)
    (sum (fun b -> b.Timeline.b_transmissions));
  Alcotest.(check int) "drop windows sum to Net.unicast_failures"
    (Net.unicast_failures net)
    (sum (fun b -> b.Timeline.b_drops));
  Alcotest.(check int) "sign windows sum to the suite total"
    suite.Suite.sign_count
    (sum (fun b -> b.Timeline.b_signs));
  Alcotest.(check int) "verify windows sum to the suite total"
    suite.Suite.verify_count
    (sum (fun b -> b.Timeline.b_verifies));
  Alcotest.(check int) "hash-block windows sum to the suite total"
    suite.Suite.sha256_blocks
    (sum (fun b -> b.Timeline.b_hash_blocks));
  Alcotest.(check int) "audit windows sum to Audit.count"
    (Audit.count (Obs.audit (Scenario.obs s)))
    (sum (fun b -> b.Timeline.b_audit));
  (* And the secure bootstrap actually flooded something. *)
  Alcotest.(check bool) "floods were recorded" true
    (Flood.flood_count (Obs.flood (Scenario.obs s)) > 0)

let test_scenario_flood_trees () =
  let s = small_run 11 in
  let fl = Obs.flood (Scenario.obs s) in
  let summaries = Flood.summaries fl in
  Alcotest.(check bool) "bootstrap + discovery produced floods" true
    (summaries <> []);
  List.iter
    (fun s ->
      if not (s.Flood.duplicates <= s.Flood.received) then
        Alcotest.failf "flood %d: duplicates %d > received %d" s.Flood.id
          s.Flood.duplicates s.Flood.received;
      if not (tree_invariants fl s) then
        Alcotest.failf "flood %d (%s): tree invariants violated" s.Flood.id
          (Flood.kind_str s.Flood.kind))
    summaries

let test_timeline_jsonl_replay_identical () =
  let export s = Scenario.timeline_jsonl ~meta:[ ("seed", Json.Int 7) ] s in
  let a = export (small_run 7) and b = export (small_run 7) in
  Alcotest.(check string) "same-seed timeline export byte-identical" a b;
  match String.split_on_char '\n' a with
  | header :: _ -> (
      let j = Json.parse header in
      (match Json.member "schema" j with
      | Some (Json.String s) ->
          Alcotest.(check string) "header schema" Timeline.schema s
      | _ -> Alcotest.fail "exported header has no schema");
      match Json.member "version" j with
      | Some (Json.Int v) ->
          Alcotest.(check int) "header version" Timeline.schema_version v
      | _ -> Alcotest.fail "exported header has no version")
  | [] -> Alcotest.fail "empty timeline export"

(* Small but genuinely fanning grid (4 points), as in test_perf. *)
let spec =
  {
    Sweep.e1_fractions = [ 0.2 ];
    e1_nodes = 12;
    e1_duration = 5.0;
    e6_sizes = [ 8 ];
    seeds = [ 1; 2 ];
  }

let test_timeline_domain_invariant () =
  let export domains =
    Merge.stream_jsonl ~name:"timeline" (Sweep.run ~domains spec)
  in
  let base = export 1 in
  Alcotest.(check bool) "timeline stream non-empty" true (base <> "");
  List.iter
    (fun domains ->
      Alcotest.(check string)
        (Printf.sprintf "timeline jsonl byte-identical at %d domain(s)"
           domains)
        base (export domains))
    [ 2; 4 ]

let suites =
  [
    ( "timeline",
      [
        Alcotest.test_case "half-open bucket boundaries" `Quick
          test_half_open_boundaries;
        Alcotest.test_case "width validation" `Quick test_width_validated;
        Alcotest.test_case "disabled timeline records nothing" `Quick
          test_disabled_records_nothing;
        Alcotest.test_case "export shape; flush idempotent" `Quick
          test_export_shape_and_idempotent_flush;
        prop_bucket_aggregation;
        Alcotest.test_case "scenario window sums = cumulative totals" `Slow
          test_scenario_window_sums;
        Alcotest.test_case "same-seed export byte-identical" `Slow
          test_timeline_jsonl_replay_identical;
        Alcotest.test_case "sweep export domain-invariant" `Slow
          test_timeline_domain_invariant;
      ] );
    ( "flood",
      [
        prop_flood_tree_invariants;
        Alcotest.test_case "scenario flood trees respect causality" `Slow
          test_scenario_flood_trees;
      ] );
  ]
