(* manethot driver.

   Usage:
     main.exe [--hotpaths FILE] [--baseline FILE] [--write-baseline]
              [--json FILE] [ROOT]...

   ROOTs (default: lib) are analyzed against the hot-path roster
   (default: tools/manethot/hotpaths.sexp).  Exit 1 on any finding not
   pinned in the baseline, or on stale baseline entries.  Option
   parsing, file walking and baseline semantics live in
   Analyzer_common.Driver. *)

let () =
  let roster_path = ref "tools/manethot/hotpaths.sexp" in
  Analyzer_common.Driver.run ~tool:"manethot"
    ~options:[ ("--hotpaths", roster_path) ]
    ~analyze:(fun ~uses:_ files ->
      let path = !roster_path in
      Manethot.Hot.analyze
        ~roster:(path, Analyzer_common.Driver.read_file path)
        files)
    ()
