module Address = Manet_ipv6.Address
module M = Messages

(* --- encoding ----------------------------------------------------------- *)

let put_u8 buf v = Buffer.add_char buf (Char.chr (v land 0xFF))

let put_u16 buf v =
  if v < 0 || v > 0xFFFF then invalid_arg "Binary: u16 out of range";
  put_u8 buf (v lsr 8);
  put_u8 buf v

let put_u32 buf v =
  for i = 3 downto 0 do
    put_u8 buf ((v lsr (i * 8)) land 0xFF)
  done

let put_u64 buf v =
  for i = 7 downto 0 do
    put_u8 buf (Int64.to_int (Int64.shift_right_logical v (i * 8)) land 0xFF)
  done

let put_addr buf a = Buffer.add_string buf (Address.to_bytes a)

let put_string buf s =
  put_u16 buf (String.length s);
  Buffer.add_string buf s

let put_opt_string buf = function
  | None -> put_u8 buf 0
  | Some s ->
      put_u8 buf 1;
      put_string buf s

let put_opt_addr buf = function
  | None -> put_u8 buf 0
  | Some a ->
      put_u8 buf 1;
      put_addr buf a

let put_route buf route =
  put_u16 buf (List.length route);
  List.iter (put_addr buf) route

let put_bool buf b = put_u8 buf (if b then 1 else 0)
let put_float buf f = put_u64 buf (Int64.bits_of_float f)

let put_srr buf srr =
  put_u16 buf (List.length srr);
  List.iter
    (fun e ->
      put_addr buf e.M.ip;
      put_string buf e.M.sig_;
      put_string buf e.M.pk;
      put_u64 buf e.M.rn)
    srr

let encode msg =
  let buf = Buffer.create 128 in
  (match msg with
  | M.Areq { sip; seq; dn; ch; rr } ->
      put_u8 buf 1;
      put_addr buf sip;
      put_u32 buf seq;
      put_opt_string buf dn;
      put_u64 buf ch;
      put_route buf rr
  | M.Arep { sip; rr; remaining; sig_; pk; rn } ->
      put_u8 buf 2;
      put_addr buf sip;
      put_route buf rr;
      put_route buf remaining;
      put_string buf sig_;
      put_string buf pk;
      put_u64 buf rn
  | M.Drep { sip; dn; rr; remaining; sig_ } ->
      put_u8 buf 3;
      put_addr buf sip;
      put_string buf dn;
      put_route buf rr;
      put_route buf remaining;
      put_string buf sig_
  | M.Rreq { sip; dip; seq; srr; sig_; spk; srn } ->
      put_u8 buf 4;
      put_addr buf sip;
      put_addr buf dip;
      put_u32 buf seq;
      put_srr buf srr;
      put_string buf sig_;
      put_string buf spk;
      put_u64 buf srn
  | M.Rrep { sip; dip; rr; remaining; sig_; dpk; drn } ->
      put_u8 buf 5;
      put_addr buf sip;
      put_addr buf dip;
      put_route buf rr;
      put_route buf remaining;
      put_string buf sig_;
      put_string buf dpk;
      put_u64 buf drn
  | M.Crep
      {
        requester;
        cacher;
        dip;
        requester_seq;
        cacher_seq;
        rr_to_cacher;
        rr_to_dest;
        remaining;
        sig_cacher;
        cacher_pk;
        cacher_rn;
        sig_dest;
        dest_pk;
        dest_rn;
      } ->
      put_u8 buf 6;
      put_addr buf requester;
      put_addr buf cacher;
      put_addr buf dip;
      put_u32 buf requester_seq;
      put_u32 buf cacher_seq;
      put_route buf rr_to_cacher;
      put_route buf rr_to_dest;
      put_route buf remaining;
      put_string buf sig_cacher;
      put_string buf cacher_pk;
      put_u64 buf cacher_rn;
      put_string buf sig_dest;
      put_string buf dest_pk;
      put_u64 buf dest_rn
  | M.Rerr { reporter; broken_next; dst; remaining; sig_; pk; rn } ->
      put_u8 buf 7;
      put_addr buf reporter;
      put_addr buf broken_next;
      put_addr buf dst;
      put_route buf remaining;
      put_string buf sig_;
      put_string buf pk;
      put_u64 buf rn
  | M.Data { src; dst; seq; route; remaining; payload_size; sent_at } ->
      put_u8 buf 8;
      put_addr buf src;
      put_addr buf dst;
      put_u32 buf seq;
      put_route buf route;
      put_route buf remaining;
      put_u32 buf payload_size;
      put_float buf sent_at
  | M.Ack { src; dst; data_seq; route; remaining; sent_at } ->
      put_u8 buf 9;
      put_addr buf src;
      put_addr buf dst;
      put_u32 buf data_seq;
      put_route buf route;
      put_route buf remaining;
      put_float buf sent_at
  | M.Probe { origin; target; seq; route; remaining } ->
      put_u8 buf 10;
      put_addr buf origin;
      put_addr buf target;
      put_u32 buf seq;
      put_route buf route;
      put_route buf remaining
  | M.Probe_reply { responder; origin; seq; remaining; sig_; pk; rn } ->
      put_u8 buf 11;
      put_addr buf responder;
      put_addr buf origin;
      put_u32 buf seq;
      put_route buf remaining;
      put_string buf sig_;
      put_string buf pk;
      put_u64 buf rn
  | M.Name_query { requester; name; ch; route; remaining } ->
      put_u8 buf 12;
      put_addr buf requester;
      put_string buf name;
      put_u64 buf ch;
      put_route buf route;
      put_route buf remaining
  | M.Name_reply { requester; name; result; ch; remaining; sig_ } ->
      put_u8 buf 13;
      put_addr buf requester;
      put_string buf name;
      put_opt_addr buf result;
      put_u64 buf ch;
      put_route buf remaining;
      put_string buf sig_
  | M.Ip_change_request { old_ip; new_ip; route; remaining } ->
      put_u8 buf 14;
      put_addr buf old_ip;
      put_addr buf new_ip;
      put_route buf route;
      put_route buf remaining
  | M.Ip_change_challenge { old_ip; new_ip; ch; remaining } ->
      put_u8 buf 15;
      put_addr buf old_ip;
      put_addr buf new_ip;
      put_u64 buf ch;
      put_route buf remaining
  | M.Ip_change_proof { old_ip; new_ip; old_rn; new_rn; pk; sig_; route; remaining }
    ->
      put_u8 buf 16;
      put_addr buf old_ip;
      put_addr buf new_ip;
      put_u64 buf old_rn;
      put_u64 buf new_rn;
      put_string buf pk;
      put_string buf sig_;
      put_route buf route;
      put_route buf remaining
  | M.Ip_change_ack { old_ip; new_ip; accepted; remaining } ->
      put_u8 buf 17;
      put_addr buf old_ip;
      put_addr buf new_ip;
      put_bool buf accepted;
      put_route buf remaining);
  Buffer.contents buf

(* --- decoding ------------------------------------------------------------ *)

exception Bad of string

type reader = { data : string; mutable pos : int }

let need r n =
  if r.pos + n > String.length r.data then
    raise (Bad (Printf.sprintf "truncated at byte %d (need %d)" r.pos n))

let get_u8 r =
  need r 1;
  let v = Char.code r.data.[r.pos] in
  r.pos <- r.pos + 1;
  v

let get_u16 r =
  let hi = get_u8 r in
  let lo = get_u8 r in
  (hi lsl 8) lor lo

let get_u32 r =
  let v = ref 0 in
  for _ = 1 to 4 do
    v := (!v lsl 8) lor get_u8 r
  done;
  !v

let get_u64 r =
  let v = ref 0L in
  for _ = 1 to 8 do
    v := Int64.logor (Int64.shift_left !v 8) (Int64.of_int (get_u8 r))
  done;
  !v

let get_bytes r n =
  need r n;
  let s = String.sub r.data r.pos n in
  r.pos <- r.pos + n;
  s

let get_addr r = Address.of_bytes (get_bytes r 16)

let get_string r =
  let n = get_u16 r in
  get_bytes r n

let get_opt_string r =
  match get_u8 r with
  | 0 -> None
  | 1 -> Some (get_string r)
  | v -> raise (Bad (Printf.sprintf "bad option byte %d" v))

let get_opt_addr r =
  match get_u8 r with
  | 0 -> None
  | 1 -> Some (get_addr r)
  | v -> raise (Bad (Printf.sprintf "bad option byte %d" v))

let get_bool r =
  match get_u8 r with
  | 0 -> false
  | 1 -> true
  | v -> raise (Bad (Printf.sprintf "bad bool byte %d" v))

let get_float r = Int64.float_of_bits (get_u64 r)

let max_list = 4096

let get_route r =
  let n = get_u16 r in
  if n > max_list then raise (Bad "route too long");
  List.init n (fun _ -> get_addr r)

let get_srr r =
  let n = get_u16 r in
  if n > max_list then raise (Bad "srr too long");
  List.init n (fun _ ->
      let ip = get_addr r in
      let sig_ = get_string r in
      let pk = get_string r in
      let rn = get_u64 r in
      { M.ip; sig_; pk; rn })

let decode_body r =
  match get_u8 r with
  | 1 ->
      let sip = get_addr r in
      let seq = get_u32 r in
      let dn = get_opt_string r in
      let ch = get_u64 r in
      let rr = get_route r in
      M.Areq { sip; seq; dn; ch; rr }
  | 2 ->
      let sip = get_addr r in
      let rr = get_route r in
      let remaining = get_route r in
      let sig_ = get_string r in
      let pk = get_string r in
      let rn = get_u64 r in
      M.Arep { sip; rr; remaining; sig_; pk; rn }
  | 3 ->
      let sip = get_addr r in
      let dn = get_string r in
      let rr = get_route r in
      let remaining = get_route r in
      let sig_ = get_string r in
      M.Drep { sip; dn; rr; remaining; sig_ }
  | 4 ->
      let sip = get_addr r in
      let dip = get_addr r in
      let seq = get_u32 r in
      let srr = get_srr r in
      let sig_ = get_string r in
      let spk = get_string r in
      let srn = get_u64 r in
      M.Rreq { sip; dip; seq; srr; sig_; spk; srn }
  | 5 ->
      let sip = get_addr r in
      let dip = get_addr r in
      let rr = get_route r in
      let remaining = get_route r in
      let sig_ = get_string r in
      let dpk = get_string r in
      let drn = get_u64 r in
      M.Rrep { sip; dip; rr; remaining; sig_; dpk; drn }
  | 6 ->
      let requester = get_addr r in
      let cacher = get_addr r in
      let dip = get_addr r in
      let requester_seq = get_u32 r in
      let cacher_seq = get_u32 r in
      let rr_to_cacher = get_route r in
      let rr_to_dest = get_route r in
      let remaining = get_route r in
      let sig_cacher = get_string r in
      let cacher_pk = get_string r in
      let cacher_rn = get_u64 r in
      let sig_dest = get_string r in
      let dest_pk = get_string r in
      let dest_rn = get_u64 r in
      M.Crep
        {
          requester;
          cacher;
          dip;
          requester_seq;
          cacher_seq;
          rr_to_cacher;
          rr_to_dest;
          remaining;
          sig_cacher;
          cacher_pk;
          cacher_rn;
          sig_dest;
          dest_pk;
          dest_rn;
        }
  | 7 ->
      let reporter = get_addr r in
      let broken_next = get_addr r in
      let dst = get_addr r in
      let remaining = get_route r in
      let sig_ = get_string r in
      let pk = get_string r in
      let rn = get_u64 r in
      M.Rerr { reporter; broken_next; dst; remaining; sig_; pk; rn }
  | 8 ->
      let src = get_addr r in
      let dst = get_addr r in
      let seq = get_u32 r in
      let route = get_route r in
      let remaining = get_route r in
      let payload_size = get_u32 r in
      let sent_at = get_float r in
      M.Data { src; dst; seq; route; remaining; payload_size; sent_at }
  | 9 ->
      let src = get_addr r in
      let dst = get_addr r in
      let data_seq = get_u32 r in
      let route = get_route r in
      let remaining = get_route r in
      let sent_at = get_float r in
      M.Ack { src; dst; data_seq; route; remaining; sent_at }
  | 10 ->
      let origin = get_addr r in
      let target = get_addr r in
      let seq = get_u32 r in
      let route = get_route r in
      let remaining = get_route r in
      M.Probe { origin; target; seq; route; remaining }
  | 11 ->
      let responder = get_addr r in
      let origin = get_addr r in
      let seq = get_u32 r in
      let remaining = get_route r in
      let sig_ = get_string r in
      let pk = get_string r in
      let rn = get_u64 r in
      M.Probe_reply { responder; origin; seq; remaining; sig_; pk; rn }
  | 12 ->
      let requester = get_addr r in
      let name = get_string r in
      let ch = get_u64 r in
      let route = get_route r in
      let remaining = get_route r in
      M.Name_query { requester; name; ch; route; remaining }
  | 13 ->
      let requester = get_addr r in
      let name = get_string r in
      let result = get_opt_addr r in
      let ch = get_u64 r in
      let remaining = get_route r in
      let sig_ = get_string r in
      M.Name_reply { requester; name; result; ch; remaining; sig_ }
  | 14 ->
      let old_ip = get_addr r in
      let new_ip = get_addr r in
      let route = get_route r in
      let remaining = get_route r in
      M.Ip_change_request { old_ip; new_ip; route; remaining }
  | 15 ->
      let old_ip = get_addr r in
      let new_ip = get_addr r in
      let ch = get_u64 r in
      let remaining = get_route r in
      M.Ip_change_challenge { old_ip; new_ip; ch; remaining }
  | 16 ->
      let old_ip = get_addr r in
      let new_ip = get_addr r in
      let old_rn = get_u64 r in
      let new_rn = get_u64 r in
      let pk = get_string r in
      let sig_ = get_string r in
      let route = get_route r in
      let remaining = get_route r in
      M.Ip_change_proof { old_ip; new_ip; old_rn; new_rn; pk; sig_; route; remaining }
  | 17 ->
      let old_ip = get_addr r in
      let new_ip = get_addr r in
      let accepted = get_bool r in
      let remaining = get_route r in
      M.Ip_change_ack { old_ip; new_ip; accepted; remaining }
  | tag -> raise (Bad (Printf.sprintf "unknown message tag %d" tag))

let decode data =
  let r = { data; pos = 0 } in
  match decode_body r with
  | msg ->
      if r.pos <> String.length data then
        Error (Printf.sprintf "%d trailing bytes" (String.length data - r.pos))
      else Ok msg
  | exception Bad reason -> Error reason

(* --- structural equality --------------------------------------------------- *)

let equal_route a b = List.length a = List.length b && List.for_all2 Address.equal a b

let equal_srr a b =
  List.length a = List.length b
  && List.for_all2
       (fun x y ->
         Address.equal x.M.ip y.M.ip
         && String.equal x.M.sig_ y.M.sig_
         && String.equal x.M.pk y.M.pk
         && Int64.equal x.M.rn y.M.rn)
       a b

let equal_message (a : M.t) (b : M.t) =
  match (a, b) with
  | M.Areq x, M.Areq y ->
      Address.equal x.sip y.sip && x.seq = y.seq && x.dn = y.dn
      && Int64.equal x.ch y.ch && equal_route x.rr y.rr
  | M.Arep x, M.Arep y ->
      Address.equal x.sip y.sip && equal_route x.rr y.rr
      && equal_route x.remaining y.remaining
      && String.equal x.sig_ y.sig_ && String.equal x.pk y.pk
      && Int64.equal x.rn y.rn
  | M.Drep x, M.Drep y ->
      Address.equal x.sip y.sip && String.equal x.dn y.dn
      && equal_route x.rr y.rr
      && equal_route x.remaining y.remaining
      && String.equal x.sig_ y.sig_
  | M.Rreq x, M.Rreq y ->
      Address.equal x.sip y.sip && Address.equal x.dip y.dip && x.seq = y.seq
      && equal_srr x.srr y.srr && String.equal x.sig_ y.sig_
      && String.equal x.spk y.spk && Int64.equal x.srn y.srn
  | M.Rrep x, M.Rrep y ->
      Address.equal x.sip y.sip && Address.equal x.dip y.dip
      && equal_route x.rr y.rr
      && equal_route x.remaining y.remaining
      && String.equal x.sig_ y.sig_ && String.equal x.dpk y.dpk
      && Int64.equal x.drn y.drn
  | M.Crep x, M.Crep y ->
      Address.equal x.requester y.requester && Address.equal x.cacher y.cacher
      && Address.equal x.dip y.dip && x.requester_seq = y.requester_seq
      && x.cacher_seq = y.cacher_seq
      && equal_route x.rr_to_cacher y.rr_to_cacher
      && equal_route x.rr_to_dest y.rr_to_dest
      && equal_route x.remaining y.remaining
      && String.equal x.sig_cacher y.sig_cacher
      && String.equal x.cacher_pk y.cacher_pk
      && Int64.equal x.cacher_rn y.cacher_rn
      && String.equal x.sig_dest y.sig_dest
      && String.equal x.dest_pk y.dest_pk
      && Int64.equal x.dest_rn y.dest_rn
  | M.Rerr x, M.Rerr y ->
      Address.equal x.reporter y.reporter
      && Address.equal x.broken_next y.broken_next
      && Address.equal x.dst y.dst
      && equal_route x.remaining y.remaining
      && String.equal x.sig_ y.sig_ && String.equal x.pk y.pk
      && Int64.equal x.rn y.rn
  | M.Data x, M.Data y ->
      Address.equal x.src y.src && Address.equal x.dst y.dst && x.seq = y.seq
      && equal_route x.route y.route
      && equal_route x.remaining y.remaining
      && x.payload_size = y.payload_size && x.sent_at = y.sent_at
  | M.Ack x, M.Ack y ->
      Address.equal x.src y.src && Address.equal x.dst y.dst
      && x.data_seq = y.data_seq
      && equal_route x.route y.route
      && equal_route x.remaining y.remaining
      && x.sent_at = y.sent_at
  | M.Probe x, M.Probe y ->
      Address.equal x.origin y.origin && Address.equal x.target y.target
      && x.seq = y.seq
      && equal_route x.route y.route
      && equal_route x.remaining y.remaining
  | M.Probe_reply x, M.Probe_reply y ->
      Address.equal x.responder y.responder && Address.equal x.origin y.origin
      && x.seq = y.seq
      && equal_route x.remaining y.remaining
      && String.equal x.sig_ y.sig_ && String.equal x.pk y.pk
      && Int64.equal x.rn y.rn
  | M.Name_query x, M.Name_query y ->
      Address.equal x.requester y.requester && String.equal x.name y.name
      && Int64.equal x.ch y.ch
      && equal_route x.route y.route
      && equal_route x.remaining y.remaining
  | M.Name_reply x, M.Name_reply y ->
      Address.equal x.requester y.requester && String.equal x.name y.name
      && Option.equal Address.equal x.result y.result
      && Int64.equal x.ch y.ch
      && equal_route x.remaining y.remaining
      && String.equal x.sig_ y.sig_
  | M.Ip_change_request x, M.Ip_change_request y ->
      Address.equal x.old_ip y.old_ip && Address.equal x.new_ip y.new_ip
      && equal_route x.route y.route
      && equal_route x.remaining y.remaining
  | M.Ip_change_challenge x, M.Ip_change_challenge y ->
      Address.equal x.old_ip y.old_ip && Address.equal x.new_ip y.new_ip
      && Int64.equal x.ch y.ch
      && equal_route x.remaining y.remaining
  | M.Ip_change_proof x, M.Ip_change_proof y ->
      Address.equal x.old_ip y.old_ip && Address.equal x.new_ip y.new_ip
      && Int64.equal x.old_rn y.old_rn && Int64.equal x.new_rn y.new_rn
      && String.equal x.pk y.pk && String.equal x.sig_ y.sig_
      && equal_route x.route y.route
      && equal_route x.remaining y.remaining
  | M.Ip_change_ack x, M.Ip_change_ack y ->
      Address.equal x.old_ip y.old_ip && Address.equal x.new_ip y.new_ip
      && x.accepted = y.accepted
      && equal_route x.remaining y.remaining
  | _ -> false
