lib/dsr/dsr.mli: Manet_ipv6 Manet_proto
