(** manetdom — domain-safety analyzer for the MANET codebase.

    OCaml 5 domains share the heap: any mutable value created at module
    initialisation time is reached by {e every} domain, so a simulation
    core that hides top-level state cannot be fanned across
    [Domain.spawn] workers without racing.  manetdom proves the absence
    of that state class over [lib/] the same way manetsem proves the
    security dataflow properties: parse with compiler-libs, walk the
    AST, diff against a committed baseline.  The certificate it emits is
    what lets [manetsim sweep] run seed replications and parameter grids
    concurrently while keeping byte-determinism.

    Rules:

    - ["toplevel-state"] — a top-level binding (at any module nesting
      depth) whose initialiser allocates mutable state: [ref] cells,
      non-empty array literals, [Array]/[Bytes] builders,
      [Hashtbl]/[Queue]/[Buffer]/[Stack]/[Atomic]/[Weak] creation,
      record literals whose inferred type carries [mutable] fields, or a
      full application of a function that (transitively) returns such a
      value.  Zero-length array literals ([[||]]) are exempt: they have
      no mutable cells.
    - ["toplevel-lazy"] — a top-level [lazy] binding.  Forcing is not
      atomic across domains ([CamlinternalLazy.Undefined] races), so
      module-level thunks and memoised constants must become
      per-scenario values or [Domain.DLS] slots.
    - ["escaping-memo"] — the memoisation idiom
      [let f = let tbl = Hashtbl.create .. in fun x -> ..]: the table is
      created once at module init and captured by the returned closure,
      i.e. shared by every domain that calls [f].
    - ["global-rng"] — any use of the stdlib's process-global [Random]
      (including [Random.self_init] and
      [Random.State.make_self_init]), plus call-graph reachability:
      an [.mli]-exported function that can reach a global-RNG user
      through local calls is reported even when the use sits in a
      private helper.  The simulation must draw only from engine-owned
      {!Manet_crypto.Prng} streams.
    - ["domain-primitive"] — [Domain]/[Atomic]/[Mutex]/[Condition]/
      [Semaphore]/[Thread] references (or [open]s) anywhere except the
      sanctioned scheduler, [lib/sim/parallel.ml].  Concurrency
      primitives outside the one reviewed module mean shared state
      snuck in somewhere.
    - ["parse"] — a file failed to parse (never baselined away
      silently).

    Suppression mirrors manetsem with two deltas.  First, a rationale
    is mandatory: [(* manetdom: allow <rules> — why it is safe *)]
    suppresses the named rules on the comment's lines and the line
    below; [(* manetdom: allow-file <rules> — why *)] suppresses
    file-wide; a directive whose text after the rule names carries no
    prose raises an ["annotation"] finding instead of suppressing —
    un-annotatable by design.  Second, the directive may appear
    {e anywhere} inside a comment, not only at its start, so a single
    comment block can carry a manetsem directive and a manetdom one
    when both analyzers flag the same binding. *)

type finding = Manetsem.Sem.finding = {
  file : string;
  line : int;
  rule : string;
  msg : string;
}

val rules : string list
(** Rule identifiers accepted by the [allow] directives (excludes
    ["annotation"], which cannot be suppressed). *)

val analyze : (string * string) list -> finding list
(** [analyze files] runs every rule over [files] (path, content pairs —
    normally [lib/**/*.ml(i)]; [.mli]s feed the mutable-record-label and
    exported-entry-point tables and are checked for parse failures).
    Findings are sorted by file, line, rule and already filtered through
    in-source [allow] annotations.

    Baseline handling (keys, diff, stale detection, JSON export) is
    shared verbatim with manetsem: use {!Manetsem.Sem.finding_key},
    {!Manetsem.Sem.diff_baseline}, {!Manetsem.Sem.parse_baseline},
    {!Manetsem.Sem.render_baseline} and {!Manetsem.Sem.to_json} on the
    findings this function returns. *)
