(* Property and unit tests for the binary wire codec. *)

module Prng = Manet_crypto.Prng
module Address = Manet_ipv6.Address
module Messages = Manet_proto.Messages
module Binary = Manet_proto.Binary

let qtest ?(count = 500) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name gen prop)

(* --- random message generator ----------------------------------------- *)

let gen_message =
  QCheck.Gen.(
    let* seed = int in
    let g = Prng.create ~seed in
    let addr () =
      Address.of_bytes (Prng.bytes g 16)
    in
    let route () = List.init (Prng.int g 5) (fun _ -> addr ()) in
    let str () = Prng.bytes g (Prng.int g 40) in
    let srr () =
      List.init (Prng.int g 4) (fun _ ->
          { Messages.ip = addr (); sig_ = str (); pk = str (); rn = Prng.bits64 g })
    in
    let opt f = if Prng.bool g then Some (f ()) else None in
    let i32 () = Prng.int g 1000000 in
    let f () = Prng.float g 1000.0 in
    return
      (match Prng.int g 17 with
      | 0 ->
          Messages.Areq
            { sip = addr (); seq = i32 (); dn = opt str; ch = Prng.bits64 g; rr = route () }
      | 1 ->
          Messages.Arep
            { sip = addr (); rr = route (); remaining = route (); sig_ = str ();
              pk = str (); rn = Prng.bits64 g }
      | 2 ->
          Messages.Drep
            { sip = addr (); dn = str (); rr = route (); remaining = route (); sig_ = str () }
      | 3 ->
          Messages.Rreq
            { sip = addr (); dip = addr (); seq = i32 (); srr = srr (); sig_ = str ();
              spk = str (); srn = Prng.bits64 g }
      | 4 ->
          Messages.Rrep
            { sip = addr (); dip = addr (); rr = route (); remaining = route ();
              sig_ = str (); dpk = str (); drn = Prng.bits64 g }
      | 5 ->
          Messages.Crep
            { requester = addr (); cacher = addr (); dip = addr ();
              requester_seq = i32 (); cacher_seq = i32 (); rr_to_cacher = route ();
              rr_to_dest = route (); remaining = route (); sig_cacher = str ();
              cacher_pk = str (); cacher_rn = Prng.bits64 g; sig_dest = str ();
              dest_pk = str (); dest_rn = Prng.bits64 g }
      | 6 ->
          Messages.Rerr
            { reporter = addr (); broken_next = addr (); dst = addr ();
              remaining = route (); sig_ = str (); pk = str (); rn = Prng.bits64 g }
      | 7 ->
          Messages.Data
            { src = addr (); dst = addr (); seq = i32 (); route = route ();
              remaining = route (); payload_size = i32 (); sent_at = f () }
      | 8 ->
          Messages.Ack
            { src = addr (); dst = addr (); data_seq = i32 (); route = route ();
              remaining = route (); sent_at = f () }
      | 9 ->
          Messages.Probe
            { origin = addr (); target = addr (); seq = i32 (); route = route ();
              remaining = route () }
      | 10 ->
          Messages.Probe_reply
            { responder = addr (); origin = addr (); seq = i32 ();
              remaining = route (); sig_ = str (); pk = str (); rn = Prng.bits64 g }
      | 11 ->
          Messages.Name_query
            { requester = addr (); name = str (); ch = Prng.bits64 g;
              route = route (); remaining = route () }
      | 12 ->
          Messages.Name_reply
            { requester = addr (); name = str (); result = opt addr;
              ch = Prng.bits64 g; remaining = route (); sig_ = str () }
      | 13 ->
          Messages.Ip_change_request
            { old_ip = addr (); new_ip = addr (); route = route (); remaining = route () }
      | 14 ->
          Messages.Ip_change_challenge
            { old_ip = addr (); new_ip = addr (); ch = Prng.bits64 g; remaining = route () }
      | 15 ->
          Messages.Ip_change_proof
            { old_ip = addr (); new_ip = addr (); old_rn = Prng.bits64 g;
              new_rn = Prng.bits64 g; pk = str (); sig_ = str (); route = route ();
              remaining = route () }
      | _ ->
          Messages.Ip_change_ack
            { old_ip = addr (); new_ip = addr (); accepted = Prng.bool g;
              remaining = route () }))

let arb_message =
  QCheck.make ~print:(fun m -> Format.asprintf "%a" Messages.pp m) gen_message

let prop_roundtrip =
  qtest "binary: decode (encode m) = m" arb_message (fun m ->
      match Binary.decode (Binary.encode m) with
      | Ok m' -> Binary.equal_message m m'
      | Error e -> QCheck.Test.fail_reportf "decode failed: %s" e)

let prop_truncation_rejected =
  qtest ~count:200 "binary: every strict prefix is rejected"
    QCheck.(pair arb_message (float_bound_exclusive 1.0))
    (fun (m, frac) ->
      let enc = Binary.encode m in
      let n = int_of_float (frac *. float_of_int (String.length enc)) in
      QCheck.assume (n < String.length enc);
      match Binary.decode (String.sub enc 0 n) with
      | Error _ -> true
      | Ok m' ->
          (* A prefix that still parses must not silently equal the
             original (it can only happen if we truncated zero bytes). *)
          not (Binary.equal_message m m'))

let prop_trailing_garbage_rejected =
  qtest ~count:200 "binary: trailing bytes are rejected" arb_message (fun m ->
      match Binary.decode (Binary.encode m ^ "\x00") with
      | Error _ -> true
      | Ok _ -> false)

let prop_random_bytes_never_crash =
  (* The decoder must be total: arbitrary byte strings either decode to
     some message or return Error, never raise. *)
  qtest ~count:2000 "binary: decoding random bytes never raises"
    QCheck.(string_of_size QCheck.Gen.(int_bound 200))
    (fun s ->
      match Binary.decode s with Ok _ | Error _ -> true)

let prop_bitflip_detected_or_valid =
  (* Flipping one byte of a valid encoding must yield Error or a
     *different* well-formed message (never a silent identical parse). *)
  qtest ~count:300 "binary: single byte flips never alias the original"
    QCheck.(pair arb_message (pair small_nat small_nat))
    (fun (m, (pos0, delta0)) ->
      let enc = Bytes.of_string (Binary.encode m) in
      let pos = pos0 mod Bytes.length enc in
      let delta = 1 + (delta0 mod 255) in
      Bytes.set enc pos
        (Char.chr ((Char.code (Bytes.get enc pos) + delta) land 0xFF));
      match Binary.decode (Bytes.unsafe_to_string enc) with
      | Error _ -> true
      | Ok m' -> not (Binary.equal_message m m'))

let test_unknown_tag_rejected () =
  (match Binary.decode "\xff" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "tag 255 accepted");
  match Binary.decode "" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "empty input accepted"

let test_oversized_route_rejected () =
  (* tag 10 (Probe) with a route count beyond the cap *)
  let buf = Buffer.create 64 in
  Buffer.add_char buf '\x0a';
  Buffer.add_string buf (String.make 32 '\x00');
  (* seq *)
  Buffer.add_string buf "\x00\x00\x00\x01";
  (* route count = 65535 *)
  Buffer.add_string buf "\xff\xff";
  match Binary.decode (Buffer.contents buf) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "oversized route accepted"

let test_known_encoding_stable () =
  (* Pin one concrete encoding so accidental format changes are caught. *)
  let a = Address.of_string_exn "fec0::1" in
  let b = Address.of_string_exn "fec0::2" in
  let m =
    Messages.Ip_change_challenge { old_ip = a; new_ip = b; ch = 0x1122L; remaining = [ a ] }
  in
  let enc = Binary.encode m in
  Alcotest.(check int) "length" (1 + 16 + 16 + 8 + 2 + 16) (String.length enc);
  Alcotest.(check char) "tag" '\x0f' enc.[0];
  Alcotest.(check string) "ch bytes" "\x00\x00\x00\x00\x00\x00\x11\x22"
    (String.sub enc 33 8)

let suites =
  [
    ( "proto.binary",
      [
        prop_roundtrip;
        prop_truncation_rejected;
        prop_trailing_garbage_rejected;
        prop_random_bytes_never_crash;
        prop_bitflip_detected_or_valid;
        Alcotest.test_case "unknown tag" `Quick test_unknown_tag_rejected;
        Alcotest.test_case "oversized route" `Quick test_oversized_route_rejected;
        Alcotest.test_case "stable encoding" `Quick test_known_encoding_stable;
      ] );
  ]
