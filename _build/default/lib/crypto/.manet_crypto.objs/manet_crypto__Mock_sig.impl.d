lib/crypto/mock_sig.ml: Hashtbl Hmac Prng Sha256
