(* The one sanctioned concurrency module (see parallel.mli and
   manetdom's domain-primitive rule).  Shared data is limited to the
   read-only task array; every other value is owned by exactly one
   domain. *)

let default_domains () = Domain.recommended_domain_count ()

(* Per-task outcome, captured inside the worker so a raising task can
   never leave a sibling domain unjoined. *)
type 'b outcome = Ok_ of 'b | Raised of exn * Printexc.raw_backtrace

let run_task f x =
  try Ok_ (f x) with exn -> Raised (exn, Printexc.get_raw_backtrace ())

(* Left-to-right [List.map]: the stdlib does not pin its application
   order, and we promise the first failure in {e input} order. *)
let rec map_ordered f = function
  | [] -> []
  | x :: tl ->
      let y = f x in
      y :: map_ordered f tl

let unwrap = function
  | Ok_ y -> y
  | Raised (exn, bt) -> Printexc.raise_with_backtrace exn bt

let map ~domains f xs =
  let n = List.length xs in
  let d = max 1 (min domains n) in
  if d = 1 then
    (* Inline fallback: no Domain.spawn, but the same observable
       semantics as the fan-out — every task runs, then the first
       failure in input order propagates. *)
    map_ordered unwrap (List.map (run_task f) xs)
  else begin
    let tasks = Array.of_list xs in
    (* Worker [k] owns indices k, k+d, k+2d, ... — a static deal, so no
       shared cursor is needed and results carry their index home. *)
    let worker k () =
      let acc = ref [] in
      let i = ref k in
      while !i < n do
        acc := (!i, run_task f tasks.(!i)) :: !acc;
        i := !i + d
      done;
      !acc
    in
    let spawned = List.init (d - 1) (fun k -> Domain.spawn (worker (k + 1))) in
    let mine = worker 0 () in
    let gathered = mine :: List.map Domain.join spawned in
    let out = Array.make n None in
    List.iter (List.iter (fun (i, r) -> out.(i) <- Some r)) gathered;
    Array.to_list out
    |> map_ordered (function Some r -> unwrap r | None -> assert false)
  end
