lib/crypto/bignum.mli: Format Prng
