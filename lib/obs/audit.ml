module Engine = Manet_sim.Engine

let schema = "manetsim-audit"
let schema_version = 1

type kind =
  | Sig_verify_fail
  | Cga_mismatch
  | Replay_rejected
  | Credit_slash
  | Rerr_rejected
  | Rerr_implausible
  | Rerr_frequency
  | Blackhole_probe_result
  | Dns_conflict
  | Dad_collision
  | Unverified_accept
  | Fault_crash
  | Fault_restart
  | Attack_forgery
  | Attack_replay
  | Attack_drop
  | Attack_impersonation
  | Attack_rerr
  | Attack_churn

let all_kinds =
  [
    Sig_verify_fail; Cga_mismatch; Replay_rejected; Credit_slash;
    Rerr_rejected; Rerr_implausible; Rerr_frequency; Blackhole_probe_result;
    Dns_conflict; Dad_collision; Unverified_accept; Fault_crash;
    Fault_restart; Attack_forgery; Attack_replay; Attack_drop;
    Attack_impersonation; Attack_rerr; Attack_churn;
  ]

let kind_label = function
  | Sig_verify_fail -> "sig_verify_fail"
  | Cga_mismatch -> "cga_mismatch"
  | Replay_rejected -> "replay_rejected"
  | Credit_slash -> "credit_slash"
  | Rerr_rejected -> "rerr_rejected"
  | Rerr_implausible -> "rerr_implausible"
  | Rerr_frequency -> "rerr_frequency"
  | Blackhole_probe_result -> "blackhole_probe_result"
  | Dns_conflict -> "dns_conflict"
  | Dad_collision -> "dad_collision"
  | Unverified_accept -> "unverified_accept"
  | Fault_crash -> "fault_crash"
  | Fault_restart -> "fault_restart"
  | Attack_forgery -> "attack_forgery"
  | Attack_replay -> "attack_replay"
  | Attack_drop -> "attack_drop"
  | Attack_impersonation -> "attack_impersonation"
  | Attack_rerr -> "attack_rerr"
  | Attack_churn -> "attack_churn"

let kind_of_label l =
  List.find_opt (fun k -> String.equal (kind_label k) l) all_kinds

let is_ground_truth = function
  | Attack_forgery | Attack_replay | Attack_drop | Attack_impersonation
  | Attack_rerr | Attack_churn ->
      true
  | Sig_verify_fail | Cga_mismatch | Replay_rejected | Credit_slash
  | Rerr_rejected | Rerr_implausible | Rerr_frequency
  | Blackhole_probe_result | Dns_conflict | Dad_collision
  | Unverified_accept | Fault_crash | Fault_restart ->
      false

type event = {
  seq : int;
  time : float;
  kind : kind;
  node : int;
  subject_node : int option;
  subject_addr : string option;
  cause : string;
}

type t = {
  engine : Engine.t;
  events : event Queue.t;
  capacity : int;
  mutable recording : bool;
  mutable next_seq : int;
  mutable dropped : int;
  mutable subscribers : (event -> unit) list; (* reverse subscription order *)
}

let create ?(capacity = 200_000) engine =
  {
    engine;
    events = Queue.create ();
    capacity;
    recording = true;
    next_seq = 1;
    dropped = 0;
    subscribers = [];
  }

let on_emit t f = t.subscribers <- f :: t.subscribers

let set_recording t on = t.recording <- on
let recording t = t.recording
let count t = t.next_seq - 1

let emit t ~kind ~node ?subject_node ?subject_addr ~cause () =
  let e =
    {
      seq = t.next_seq;
      time = Engine.now t.engine;
      kind;
      node;
      subject_node;
      subject_addr;
      cause;
    }
  in
  t.next_seq <- t.next_seq + 1;
  if t.recording then begin
    if Queue.length t.events >= t.capacity then begin
      ignore (Queue.pop t.events);
      t.dropped <- t.dropped + 1
    end;
    Queue.push e t.events
  end;
  List.iter (fun f -> f e) (List.rev t.subscribers)

let events t = List.of_seq (Queue.to_seq t.events)
let dropped t = t.dropped

let counts_by_kind evs =
  List.filter_map
    (fun k ->
      match List.length (List.filter (fun e -> e.kind = k) evs) with
      | 0 -> None
      | n -> Some (k, n))
    all_kinds

(* --- export / import ----------------------------------------------------- *)

let json_of_event e =
  let base =
    [
      ("type", Json.String "audit");
      ("seq", Json.Int e.seq);
      ("t", Json.Float e.time);
      ("kind", Json.String (kind_label e.kind));
      ("node", Json.Int e.node);
      ( "subject",
        match e.subject_node with Some n -> Json.Int n | None -> Json.Null );
    ]
  in
  let addr =
    match e.subject_addr with
    | Some a -> [ ("subject_addr", Json.String a) ]
    | None -> []
  in
  Json.Obj (base @ addr @ [ ("cause", Json.String e.cause) ])

let to_jsonl ?(meta = []) t =
  let buf = Buffer.create 4096 in
  let line v =
    Json.to_buffer buf v;
    Buffer.add_char buf '\n'
  in
  line
    (Json.Obj
       ([
          ("schema", Json.String schema);
          ("version", Json.Int schema_version);
          ("events", Json.Int (Queue.length t.events));
          ("dropped", Json.Int t.dropped);
        ]
       @ meta));
  Queue.iter (fun e -> line (json_of_event e)) t.events;
  Buffer.contents buf

type parsed = { header : Json.t; parsed_events : event list }

let parse_jsonl text =
  let bad msg = raise (Json.Parse_error msg) in
  let lines =
    List.filter
      (fun l -> String.trim l <> "")
      (String.split_on_char '\n' text)
  in
  match lines with
  | [] -> bad "empty audit stream"
  | header_line :: rest ->
      let header = Json.parse header_line in
      (match Json.member "schema" header with
      | Some (Json.String s) when String.equal s schema -> ()
      | _ -> bad "not a manetsim-audit stream");
      (match Json.member "version" header with
      | Some (Json.Int v) when v = schema_version -> ()
      | _ -> bad "unsupported audit schema version");
      let event_of line =
        let j = Json.parse line in
        let str field =
          match Json.member field j with
          | Some (Json.String s) -> s
          | _ -> bad (Printf.sprintf "audit line missing string %S" field)
        in
        let int field =
          match Json.member field j with
          | Some (Json.Int i) -> i
          | _ -> bad (Printf.sprintf "audit line missing int %S" field)
        in
        let kind =
          let l = str "kind" in
          match kind_of_label l with
          | Some k -> k
          | None -> bad (Printf.sprintf "unknown audit kind %S" l)
        in
        {
          seq = int "seq";
          time =
            (match Option.bind (Json.member "t" j) Json.to_float_opt with
            | Some x -> x
            | None -> bad "audit line missing time");
          kind;
          node = int "node";
          subject_node =
            (match Json.member "subject" j with
            | Some (Json.Int n) -> Some n
            | _ -> None);
          subject_addr =
            Option.bind (Json.member "subject_addr" j) Json.to_string_opt;
          cause = str "cause";
        }
      in
      { header; parsed_events = List.map event_of rest }

(* --- rendering ----------------------------------------------------------- *)

let render_timeline evs =
  let buf = Buffer.create 1024 in
  List.iter
    (fun e ->
      Buffer.add_string buf
        (Printf.sprintf "%10.3f  node %-3d %-22s%s  %s\n" e.time e.node
           (kind_label e.kind)
           (match (e.subject_node, e.subject_addr) with
           | Some n, _ -> Printf.sprintf "  subject node %d" n
           | None, Some a -> Printf.sprintf "  subject %s" a
           | None, None -> "")
           e.cause))
    evs;
  Buffer.contents buf

let render_scorecards evs =
  let nodes =
    List.sort_uniq Int.compare
      (List.concat_map
         (fun e -> e.node :: Option.to_list e.subject_node)
         evs)
  in
  let buf = Buffer.create 1024 in
  List.iter
    (fun n ->
      let emitted = List.filter (fun e -> e.node = n) evs in
      let accused = List.filter (fun e -> e.subject_node = Some n) evs in
      Buffer.add_string buf
        (Printf.sprintf "node %d: %d emitted, %d accusations\n" n
           (List.length emitted) (List.length accused));
      let breakdown label l =
        match counts_by_kind l with
        | [] -> ()
        | counts ->
            Buffer.add_string buf
              (Printf.sprintf "  %-9s %s\n" label
                 (String.concat ", "
                    (List.map
                       (fun (k, c) ->
                         Printf.sprintf "%s=%d" (kind_label k) c)
                       counts)))
      in
      breakdown "emitted" emitted;
      breakdown "accused" accused)
    nodes;
  Buffer.contents buf
