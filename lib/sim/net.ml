module Prng = Manet_crypto.Prng

type channel =
  | Uniform of { loss : float }
  | Gilbert_elliott of {
      p_good_to_bad : float;
      p_bad_to_good : float;
      loss_good : float;
      loss_bad : float;
    }

type config = {
  range : float;
  loss : float;
  bit_rate : float;
  prop_delay : float;
  jitter : float;
  mac_retries : int;
  promiscuous : bool;
}

let default_config =
  {
    range = 250.0;
    loss = 0.0;
    bit_rate = 2_000_000.0;
    prop_delay = 5e-6;
    jitter = 1e-4;
    mac_retries = 3;
    promiscuous = false;
  }

(* A link is keyed by the packed pair (min lsl 20) lor max — node
   indices are bounded far below 2^20 — so looking one up neither
   allocates a tuple nor hashes through the polymorphic primitives. *)
module Link = Hashtbl.Make (struct
  type t = int

  let equal = Int.equal
  let hash k = (k * 0x9E3779B1) land max_int
end)

let link_key a b = if a <= b then (a lsl 20) lor b else (b lsl 20) lor a

type 'msg t = {
  engine : Engine.t;
  topo : Topology.t;
  cfg : config;
  rng : Prng.t;
  handlers : (src:int -> 'msg -> unit) array;
  down : bool array;
  (* Fault state (see lib/faults): administratively severed links, an
     optional partition cut, and the pluggable channel model. *)
  blocked : unit Link.t;
  mutable partition : bool array option; (* node -> side of the cut *)
  mutable channel : channel;
  ge_bad : bool Link.t; (* per-link Gilbert-Elliott state: true = bad *)
  mutable bytes_sent : int;
  mutable transmissions : int;
  mutable deliveries : int;
  mutable unicast_failures : int;
  (* Deterministic cost accounting for the perf registry: how many
     candidate positions each neighbour lookup examined (today O(N) —
     the histogram quantifies exactly the cost a spatial index would
     remove), how many deliveries each broadcast fanned out to, and how
     many MAC-level retries unicast needed. *)
  scan_hist : Hist.t;
  fanout_hist : Hist.t;
  mutable retries : int;
  mutable fanout_tmp : int; (* scratch counter for the broadcast loop *)
}

let create ?(config = default_config) engine topo =
  let n = Topology.size topo in
  {
    engine;
    topo;
    cfg = config;
    rng = Prng.split (Engine.rng engine);
    handlers = Array.make n (fun ~src:_ _ -> ());
    down = Array.make n false;
    blocked = Link.create 16;
    partition = None;
    channel = Uniform { loss = config.loss };
    ge_bad = Link.create 64;
    bytes_sent = 0;
    transmissions = 0;
    deliveries = 0;
    unicast_failures = 0;
    scan_hist = Hist.create ();
    fanout_hist = Hist.create ();
    retries = 0;
    fanout_tmp = 0;
  }

let topology t = t.topo
let engine t = t.engine
let size t = Array.length t.handlers
let set_handler t i f = t.handlers.(i) <- f
let set_down t i b = t.down.(i) <- b
let is_down t i = t.down.(i)

(* --- fault state -------------------------------------------------------- *)

let set_link t a b ~up =
  if a = b then invalid_arg "Net.set_link: a = b";
  if up then Link.remove t.blocked (link_key a b)
  else Link.replace t.blocked (link_key a b) ()

let set_partition t group =
  let side = Array.make (size t) false in
  List.iter
    (fun i ->
      if i < 0 || i >= size t then invalid_arg "Net.set_partition: node index";
      side.(i) <- true)
    group;
  t.partition <- Some side

let clear_partition t = t.partition <- None

let link_up t a b =
  (not (Link.mem t.blocked (link_key a b)))
  && match t.partition with None -> true | Some side -> side.(a) = side.(b)

let set_channel t c = t.channel <- c

(* One loss draw for a frame crossing link (a, b).  The uniform model is
   memoryless; Gilbert-Elliott keeps a per-link two-state Markov chain
   whose state advances once per frame on that link. *)
let channel_pass t a b =
  match t.channel with
  | Uniform { loss } -> Prng.float t.rng 1.0 >= loss
  | Gilbert_elliott { p_good_to_bad; p_bad_to_good; loss_good; loss_bad } ->
      let k = link_key a b in
      let was_bad =
        match Link.find t.ge_bad k with
        | b -> b
        | exception Not_found -> false
      in
      let flip = Prng.float t.rng 1.0 in
      let bad =
        if was_bad then flip >= p_bad_to_good else flip < p_good_to_bad
      in
      Link.replace t.ge_bad k bad;
      let loss = if bad then loss_bad else loss_good in
      Prng.float t.rng 1.0 >= loss

(* --- transmission ------------------------------------------------------- *)

let tx_time t size = float_of_int (size * 8) /. t.cfg.bit_rate

let deliver t ~src ~dst msg delay =
  (* manethot: allow hot-alloc — the scheduled closure IS the delivery
     event; the engine holds exactly one per in-flight frame and it
     dies when the frame lands. *)
  Engine.schedule t.engine ~label:"net" ~delay (fun () ->
      if not t.down.(dst) then begin
        t.deliveries <- t.deliveries + 1;
        t.handlers.(dst) ~src msg
      end)

(* One neighbour lookup: record how many candidate positions it
   examined.  The scan itself walks every node index in ascending
   order without materializing a neighbour list, so its cost is the
   topology size; the histogram quantifies exactly the cost a spatial
   index would remove. *)
let note_scan t = Hist.add t.scan_hist (Topology.size t.topo)

let broadcast t ~src ~size msg =
  if not t.down.(src) then begin
    t.bytes_sent <- t.bytes_sent + size;
    t.transmissions <- t.transmissions + 1;
    let base = tx_time t size +. t.cfg.prop_delay in
    note_scan t;
    t.fanout_tmp <- 0;
    for dst = 0 to Topology.size t.topo - 1 do
      if
        Topology.in_range t.topo ~range:t.cfg.range src dst
        && (not t.down.(dst))
        && link_up t src dst
        && channel_pass t src dst
      then begin
        t.fanout_tmp <- t.fanout_tmp + 1;
        deliver t ~src ~dst msg (base +. Prng.float t.rng t.cfg.jitter)
      end
    done;
    Hist.add t.fanout_hist t.fanout_tmp
  end

let no_fail () = ()

let unicast t ~src ~dst ~size ?(on_fail = no_fail) msg =
  let attempts = 1 + t.cfg.mac_retries in
  (* Both times are invariant across retries (frame size and
     propagation delay do not change mid-exchange), so they are
     computed once here rather than once per attempt.  No link-layer
     ack: after a failed attempt the sender waits one transmission +
     ack-timeout's worth of time, then retries or gives up. *)
  let tx = tx_time t size in
  let ack_wait = tx +. (2.0 *. t.cfg.prop_delay) in
  (* Each attempt inspects the world at its own transmission time, so a
     node crash or link fault landing mid-retry is honoured and the
     counters account exactly the frames that actually went on the air.
     A sender that goes down mid-retry falls silent: no further
     transmissions, and no [on_fail] either -- its MAC state died with
     it. *)
  (* manethot: allow hot-alloc — the retry state machine is one closure
     per unicast transmission, not per event; flattening it would mean
     threading every capture through each scheduled retry. *)
  let rec attempt k =
    if not t.down.(src) then begin
      t.bytes_sent <- t.bytes_sent + size;
      t.transmissions <- t.transmissions + 1;
      let reachable =
        (not t.down.(dst))
        && link_up t src dst
        && Topology.in_range t.topo ~range:t.cfg.range src dst
      in
      if reachable && channel_pass t src dst then begin
        let delay = tx +. t.cfg.prop_delay +. Prng.float t.rng t.cfg.jitter in
        deliver t ~src ~dst msg delay;
        (* Promiscuous radios overhear unicast frames addressed to
           others (each overhearing subject to its own channel draw). *)
        if t.cfg.promiscuous then begin
          note_scan t;
          for other = 0 to Topology.size t.topo - 1 do
            if
              other <> dst
              && Topology.in_range t.topo ~range:t.cfg.range src other
              && (not t.down.(other))
              && link_up t src other
              && channel_pass t src other
            then
              deliver t ~src ~dst:other msg
                (delay +. Prng.float t.rng t.cfg.jitter)
          done
        end
      end
      else if k + 1 < attempts then begin
        t.retries <- t.retries + 1;
        (* manethot: allow hot-alloc — the scheduled closure carries the
           retry continuation; one per failed attempt by design. *)
        Engine.schedule t.engine ~label:"net" ~delay:ack_wait (fun () ->
            attempt (k + 1))
      end
      else begin
        t.unicast_failures <- t.unicast_failures + 1;
        Engine.schedule t.engine ~label:"net"
          ~delay:(ack_wait +. Prng.float t.rng t.cfg.jitter)
          on_fail
      end
    end
  in
  attempt 0

let bytes_sent t = t.bytes_sent
let transmissions t = t.transmissions
let deliveries t = t.deliveries
let unicast_failures t = t.unicast_failures
let scan_hist t = t.scan_hist
let fanout_hist t = t.fanout_hist
let retries t = t.retries

let reset_counters t =
  t.bytes_sent <- 0;
  t.transmissions <- 0;
  t.deliveries <- 0;
  t.unicast_failures <- 0;
  Hist.reset t.scan_hist;
  Hist.reset t.fanout_hist;
  t.retries <- 0
