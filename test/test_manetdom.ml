(* Self-tests for manetdom, the domain-safety analyzer: every rule must
   fire on a synthetic bad input, stay quiet on the matching good input,
   and honour the annotation grammar (including its mandatory-rationale
   tightening).  Fixtures live in string literals, so manetlint's
   lexical pass never sees them. *)

module Dom = Manetdom.Dom
module Sem = Manetsem.Sem

let count rule files =
  List.length (List.filter (fun f -> f.Dom.rule = rule) (Dom.analyze files))

let fires name rule files =
  Alcotest.(check bool) name true (count rule files > 0)

let clean name rule files =
  Alcotest.(check int) name 0 (count rule files)

(* --- toplevel-state ----------------------------------------------------- *)

let test_toplevel_state_fires () =
  fires "top-level ref cell" "toplevel-state"
    [ ("lib/x/m.ml", "let counter = ref 0\n") ];
  fires "top-level non-empty array literal" "toplevel-state"
    [ ("lib/x/m.ml", "let table = [| 1; 2; 3 |]\n") ];
  fires "top-level Hashtbl" "toplevel-state"
    [ ("lib/x/m.ml", "let cache = Hashtbl.create 16\n") ];
  fires "top-level Bytes builder" "toplevel-state"
    [ ("lib/x/m.ml", "let scratch = Bytes.create 64\n") ];
  fires "mutable state bound through a local let" "toplevel-state"
    [ ("lib/x/m.ml", "let t = let h = Hashtbl.create 8 in h\n") ];
  fires "mutable record literal" "toplevel-state"
    [
      ( "lib/x/m.ml",
        "type t = { mutable hits : int }\nlet global = { hits = 0 }\n" );
    ];
  fires "nested module is not a hiding place" "toplevel-state"
    [ ("lib/x/m.ml", "module Inner = struct let q = Queue.create () end\n") ];
  (* A constructor function returning mutable state taints its full
     applications at top level (the Bignum.of_int shape). *)
  fires "call to a mutable-returning constructor" "toplevel-state"
    [
      ( "lib/x/m.ml",
        "type cell = { mutable v : int }\nlet make n = { v = n }\nlet shared = make 0\n"
      );
    ]

let test_toplevel_state_clean () =
  clean "immutable scalars and strings" "toplevel-state"
    [ ("lib/x/m.ml", "let x = 42\nlet s = \"hi\"\nlet p = (1, \"a\")\n") ];
  clean "empty array literal has no cells" "toplevel-state"
    [ ("lib/x/m.ml", "let empty = [||]\n") ];
  clean "immutable record" "toplevel-state"
    [
      ( "lib/x/m.ml",
        "type t = { hits : int }\nlet zero = { hits = 0 }\n" );
    ];
  clean "functions allocate per call, not at init" "toplevel-state"
    [
      ( "lib/x/m.ml",
        "let f () = ref 0\nlet g x = Hashtbl.create x\nlet h = fun () -> [| 1 |]\n"
      );
    ];
  clean "local mutable state inside a function body" "toplevel-state"
    [
      ( "lib/x/m.ml",
        "let sum xs =\n  let acc = ref 0 in\n  List.iter (fun x -> acc := !acc + x) xs;\n  !acc\n"
      );
    ]

(* --- toplevel-lazy / escaping-memo -------------------------------------- *)

let test_lazy_and_memo () =
  fires "top-level lazy thunk" "toplevel-lazy"
    [ ("lib/x/m.ml", "let table = lazy (List.init 10 (fun i -> i))\n") ];
  fires "memo table captured by returned closure" "escaping-memo"
    [
      ( "lib/x/m.ml",
        "let memo =\n  let tbl = Hashtbl.create 16 in\n  fun x ->\n    match Hashtbl.find_opt tbl x with\n    | Some y -> y\n    | None -> Hashtbl.add tbl x (x * x); x * x\n"
      );
    ];
  clean "per-call table is fine" "escaping-memo"
    [
      ( "lib/x/m.ml",
        "let f x =\n  let tbl = Hashtbl.create 16 in\n  Hashtbl.add tbl x x;\n  Hashtbl.length tbl\n"
      );
    ]

(* --- global-rng ---------------------------------------------------------- *)

let test_global_rng () =
  fires "Random.self_init" "global-rng"
    [ ("lib/x/m.ml", "let seed () = Random.self_init ()\n") ];
  fires "Random.int draws from the process-global state" "global-rng"
    [ ("lib/x/m.ml", "let roll () = Random.int 6\n") ];
  fires "Random.State.make_self_init" "global-rng"
    [ ("lib/x/m.ml", "let s () = Random.State.make_self_init ()\n") ];
  (* Reachability: the exported entry point reaches the global RNG
     through a private helper, so it is reported too. *)
  let files =
    [
      ( "lib/x/m.ml",
        "let helper () = Random.int 10\nlet entry () = helper () + 1\n" );
      ("lib/x/m.mli", "val entry : unit -> int\n");
    ]
  in
  Alcotest.(check bool)
    "exported entry point reaching Random is reported" true
    (List.exists
       (fun f ->
         f.Dom.rule = "global-rng"
         && f.Dom.line = 2 (* the entry, beyond the direct use on line 1 *))
       (Dom.analyze files));
  clean "engine-owned Prng streams are fine" "global-rng"
    [ ("lib/x/m.ml", "let roll g = Prng.int g 6\n") ]

(* --- domain-primitive ---------------------------------------------------- *)

let test_domain_primitive () =
  fires "Domain.spawn outside the scheduler" "domain-primitive"
    [ ("lib/x/m.ml", "let go f = Domain.join (Domain.spawn f)\n") ];
  fires "Atomic outside the scheduler" "domain-primitive"
    [ ("lib/x/m.ml", "let c = fun () -> Atomic.make 0\n") ];
  fires "open Domain counts too" "domain-primitive"
    [ ("lib/x/m.ml", "open Domain\nlet f x = x\n") ];
  clean "lib/sim/parallel.ml is allowlisted" "domain-primitive"
    [ ("lib/sim/parallel.ml", "let go f = Domain.join (Domain.spawn f)\n") ]

(* --- annotations --------------------------------------------------------- *)

let test_annotation_suppresses () =
  clean "allow with rationale suppresses" "toplevel-state"
    [
      ( "lib/x/m.ml",
        "(* manetdom: allow toplevel-state — read-only constant table. *)\nlet k = [| 1; 2 |]\n"
      );
    ];
  clean "allow-file with rationale suppresses everywhere" "toplevel-state"
    [
      ( "lib/x/m.ml",
        "(* manetdom: allow-file toplevel-state — fixture module. *)\nlet a = ref 0\nlet b = ref 1\n"
      );
    ];
  (* The directive may sit anywhere inside a shared comment block. *)
  clean "directive embedded mid-comment" "toplevel-state"
    [
      ( "lib/x/m.ml",
        "(* manetsem: allow determinism — constant.\n   manetdom: allow toplevel-state — never written after init. *)\nlet k = [| 1 |]\n"
      );
    ]

let test_annotation_requires_rationale () =
  (* No prose after the rule names: the allow is rejected and reported,
     and the underlying finding still fires. *)
  let files =
    [ ("lib/x/m.ml", "(* manetdom: allow toplevel-state *)\nlet r = ref 0\n") ]
  in
  fires "rationale-free allow is an annotation finding" "annotation" files;
  fires "rationale-free allow does not suppress" "toplevel-state" files;
  (* And the annotation finding itself cannot be allowed away. *)
  fires "annotation findings are unsuppressible" "annotation"
    [
      ( "lib/x/m.ml",
        "(* manetdom: allow-file annotation — because. *)\n(* manetdom: allow toplevel-state *)\nlet r = ref 0\n"
      );
    ]

(* --- parse + baseline plumbing ------------------------------------------- *)

let test_parse_and_baseline () =
  fires "syntax errors are findings" "parse"
    [ ("lib/x/m.ml", "let let let\n") ];
  let findings = Dom.analyze [ ("lib/x/m.ml", "let r = ref 0\n") ] in
  let baseline =
    Sem.parse_baseline (Sem.render_baseline ~tool:"manetdom" findings)
  in
  let fresh, stale = Sem.diff_baseline ~baseline findings in
  Alcotest.(check int) "pinned findings are not fresh" 0 (List.length fresh);
  Alcotest.(check int) "no stale keys when all still fire" 0 (List.length stale);
  (* Fix the code: the pinned key must now be reported stale. *)
  let fresh', stale' = Sem.diff_baseline ~baseline [] in
  Alcotest.(check int) "nothing fresh after the fix" 0 (List.length fresh');
  Alcotest.(check int) "fixed finding leaves a stale key" 1 (List.length stale');
  (* And a new finding in another file is fresh against the old pin. *)
  let fresh'', _ =
    Sem.diff_baseline ~baseline
      (Dom.analyze [ ("lib/y/n.ml", "let q = Queue.create ()\n") ])
  in
  Alcotest.(check int) "new finding is fresh" 1 (List.length fresh'')

let test_real_tree_shape () =
  (* The committed baseline is empty, so the real tree must analyze
     clean — the same invariant @lint enforces, checked here without
     the file system walk: rules list is stable and non-empty. *)
  Alcotest.(check bool) "rule catalogue non-empty" true (Dom.rules <> []);
  List.iter
    (fun r ->
      Alcotest.(check bool) "annotation is not an allowable rule" true
        (r <> "annotation"))
    Dom.rules

let suites =
  [
    ( "manetdom",
      [
        Alcotest.test_case "toplevel-state fires" `Quick test_toplevel_state_fires;
        Alcotest.test_case "toplevel-state clean" `Quick test_toplevel_state_clean;
        Alcotest.test_case "lazy and escaping memo" `Quick test_lazy_and_memo;
        Alcotest.test_case "global rng" `Quick test_global_rng;
        Alcotest.test_case "domain primitives" `Quick test_domain_primitive;
        Alcotest.test_case "annotations suppress" `Quick test_annotation_suppresses;
        Alcotest.test_case "annotations need rationale" `Quick
          test_annotation_requires_rationale;
        Alcotest.test_case "parse and baseline" `Quick test_parse_and_baseline;
        Alcotest.test_case "rule catalogue" `Quick test_real_tree_shape;
      ] );
  ]
