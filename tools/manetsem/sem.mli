(** manetsem — AST-level semantic analyzer for the MANET codebase.

    Where manetlint (tools/manetlint) is lexical, manetsem parses every
    source file with compiler-libs ([Parse] + [Parsetree]) and checks
    dataflow-level properties of the paper's security argument:

    - ["taint"] — verify-before-use: a value destructured from a signed
      {!Messages.t} constructor must not reach a state-mutating sink
      (routing table, DNS directory, credit store, protocol state
      fields) on any path that has not passed a [verify]/CGA check.
    - ["dispatch"] — every [Messages.t] constructor must be named (no
      catch-all arm) in the protocol [handle] dispatch of [lib/dad],
      [lib/dns], [lib/dsr] and [lib/secure], cross-checked against the
      constructor list parsed from [messages.mli].
    - ["codec"] — every [Codec.*_payload] wire builder must appear in
      both a signing and a verification context; orphaned or asymmetric
      helpers are flagged.
    - ["determinism"] — wall-clock reads, [Hashtbl.iter]/unordered
      [Hashtbl.fold] whose order can leak into traces, and top-level
      mutable state shared across simulation runs.
    - ["dead-export"] — [.mli] vals never referenced outside their own
      module anywhere in the tree (uses the same cross-module reference
      graph the taint rule builds).
    - ["parse"] — a file failed to parse (internal error, never
      baselined away silently).

    Suppression mirrors manetlint: [(* manetsem: allow <rules> — why *)]
    suppresses the named rules on the comment's own lines and on the
    line directly below the comment's {e last} line;
    [(* manetsem: allow-file <rules> *)] suppresses for the whole file. *)

type finding = Analyzer_common.Common.finding = {
  file : string;
  line : int;
  rule : string;
  msg : string;
}

val rules : string list
(** All rule identifiers accepted by the [allow] directives. *)

val analyze :
  ?uses:(string * string) list -> (string * string) list -> finding list
(** [analyze ~uses files] runs every rule over [files] (path, content
    pairs — the analyzed set, normally [lib/**/*.ml(i)]).  [uses] are
    reference-only files (bin, test, bench, examples): they are parsed
    for cross-module references feeding the dead-export rule but are
    not themselves checked.  Findings are sorted by file, line, rule
    and already filtered through in-source [allow] annotations. *)

val pp_finding : Format.formatter -> finding -> unit
(** [file:line: [rule] msg] — one line, the format the CLI prints. *)

val scan_comments : string -> (string * int * int) list
(** Every comment of an OCaml source, as (text, first line, last line).
    Strings (plain and [{id|...|id}]), char literals and nested comments
    are tracked lexically so the line ranges are exact.  Exposed for the
    sibling analyzers (manetdom) so every tool reads suppression
    directives from the same scanner. *)

(** {1 Baseline}

    A baseline pins accepted pre-existing findings so that [@lint] only
    fails on {e new} ones.  Keys deliberately omit the line number so
    unrelated edits do not invalidate the baseline. *)

val finding_key : finding -> string
(** Stable identity of a finding: ["file|rule|msg"]. *)

val render_baseline : ?tool:string -> finding list -> string
(** Serialize findings as a sorted, de-duplicated baseline file.
    [tool] (default ["manetsem"]) only names the regeneration command in
    the header comment. *)

val parse_baseline : string -> string list
(** Keys from a baseline file's contents ([#] comments, blanks skipped). *)

val diff_baseline :
  baseline:string list -> finding list -> finding list * string list
(** [diff_baseline ~baseline findings] is [(fresh, stale)]: findings
    whose key is not pinned, and pinned keys that no longer fire.  Both
    are failures — stale keys keep the committed baseline minimal. *)

val to_json : baseline:string list -> finding list -> string
(** All findings as a JSON array (each with a ["baselined"] flag), for
    the CI artifact. *)
