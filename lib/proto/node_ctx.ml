module Address = Manet_ipv6.Address
module Engine = Manet_sim.Engine
module Net = Manet_sim.Net
module Stats = Manet_sim.Stats
module Prng = Manet_crypto.Prng
module Suite = Manet_crypto.Suite
module Obs = Manet_obs.Obs
module Audit = Manet_obs.Audit
module Metrics = Manet_obs.Metrics

type t = {
  engine : Engine.t;
  net : Messages.t Net.t;
  directory : Directory.t;
  identity : Identity.t;
  rng : Prng.t;
  obs : Obs.t;
}

let create ?obs net directory identity rng =
  let engine = Net.engine net in
  let obs =
    match obs with Some o -> o | None -> Obs.create engine
  in
  { engine; net; directory; identity; rng; obs }

let address t = t.identity.Identity.address
let node_id t = t.identity.Identity.node_id
let suite t = t.identity.Identity.suite
let now t = Engine.now t.engine

let size_of _t msg = Wire.size_of msg

let stat t name =
  Stats.incr (Engine.stats t.engine) name;
  Metrics.record (Obs.metrics t.obs) ~node:(node_id t) name

let stat_by t name by =
  Stats.incr ~by (Engine.stats t.engine) name;
  Metrics.record (Obs.metrics t.obs) ~node:(node_id t) ~by name

let observe t name v =
  Stats.observe (Engine.stats t.engine) name v;
  Metrics.observe (Obs.metrics t.obs) ~node:(node_id t) name v

let log t ~event ~detail = Obs.log t.obs ~node:(node_id t) ~event ~detail

let audit t ~kind ?subject ?subject_node ?(stats = []) ~cause () =
  List.iter (fun name -> stat t name) stats;
  let subject_node =
    match subject_node with
    | Some _ as s -> s
    | None -> Option.bind subject (fun a -> Directory.lookup t.directory a)
  in
  let subject_addr = Option.map Address.to_string subject in
  Audit.emit (Obs.audit t.obs) ~kind ~node:(node_id t) ?subject_node
    ?subject_addr ~cause ()

let broadcast t msg =
  let tag = Messages.tag msg in
  let size = size_of t msg in
  stat t ("tx." ^ tag);
  stat_by t ("txbytes." ^ tag) size;
  log t ~event:("tx." ^ tag) ~detail:(Format.asprintf "broadcast %a" Messages.pp msg);
  Net.broadcast t.net ~src:(node_id t) ~size msg

let send_along t ~path ?(on_fail = fun () -> ()) msg =
  match path with
  | [] -> invalid_arg "Node_ctx.send_along: empty path"
  | next :: _ -> (
      let msg = Messages.with_remaining msg path in
      let tag = Messages.tag msg in
      stat t ("tx." ^ tag);
      stat_by t ("txbytes." ^ tag) (size_of t msg);
      log t ~event:("tx." ^ tag)
        ~detail:(Format.asprintf "to %a: %a" Address.pp next Messages.pp msg);
      match Directory.lookup_all t.directory next with
      | [] ->
          (* The next-hop address resolves to nobody: the neighbour is
             gone (address changed or node left).  Behaves like a MAC
             failure after the retries' worth of time. *)
          Engine.schedule t.engine ~label:"net" ~delay:0.01 on_fail
      | claimants ->
          let size = size_of t msg in
          List.iter
            (fun dst ->
              Net.unicast t.net ~src:(node_id t) ~dst ~size ~on_fail msg)
            claimants)

let rec forward_transit t ~src msg =
  deliver_up t ~src msg
    ~consume:(fun _ -> ())
    ~forward:(fun ~next m -> send_along t ~path:next m)
    ~not_mine:(fun _ -> ())

and deliver_up t ~src:_ msg ~consume ~forward ~not_mine =
  match Messages.remaining msg with
  | None -> not_mine msg
  | Some [] -> consume msg
  | Some (head :: tail) ->
      if Address.equal head (address t) then begin
        match tail with
        | [] -> consume (Messages.with_remaining msg [])
        | _ -> forward ~next:tail (Messages.with_remaining msg tail)
      end
      else not_mine msg
