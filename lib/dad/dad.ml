module Address = Manet_ipv6.Address
module Cga = Manet_ipv6.Cga
module Prng = Manet_crypto.Prng
module Suite = Manet_crypto.Suite
module Messages = Manet_proto.Messages
module Codec = Manet_proto.Codec
module Ctx = Manet_proto.Node_ctx
module Directory = Manet_proto.Directory
module Identity = Manet_proto.Identity
module Audit = Manet_obs.Audit
module Engine = Manet_sim.Engine
module Obs = Manet_obs.Obs
module Flood = Manet_obs.Flood

type config = {
  arep_wait : float;
  flood_jitter : float;
  max_attempts : int;
  auto_rename : bool;
}

let default_config =
  { arep_wait = 2.0; flood_jitter = 0.02; max_attempts = 4; auto_rename = true }

type outcome =
  | Configured of { address : Address.t; name : string option }
  | Failed of string

type pending = {
  p_ch : int64;
  p_seq : int;
  p_dn : string option;
  p_attempt : int;
  mutable p_resolved : bool;
}

type t = {
  ctx : Ctx.t;
  config : config;
  dns_address : Address.t;
  dns_pk : string;
  mutable pending : pending option;
  mutable configured : bool;
  mutable seq : int;
  mutable on_complete : outcome -> unit;
  (* Flood dedup.  AREQ key: (sip, seq, ch) — seq alone can collide when
     two initiators contest the same address.  Warning-AREP key: the
     signature bytes, unique per (signer, sip, ch). *)
  seen_areq : (string, unit) Hashtbl.t;
  seen_warning : (string, unit) Hashtbl.t;
  mutable areq_observer : Messages.t -> unit;
  mutable warning_sink : Messages.t -> unit;
  (* Telemetry: the whole-bootstrap span and the current attempt's flood
     span (a child of it).  [None] outside a run. *)
  mutable span_bootstrap : int option;
  mutable span_flood : int option;
}

(* Correlation keys (shared with [Manet_dns] responder spans): an AREQ
   flood attempt is identified by (sip, ch) — [ch] is a fresh 64-bit
   challenge per attempt — and an AREP by its signature bytes, unique
   per (signer, sip, ch). *)
let flood_key ~sip ~ch = "areq:" ^ Codec.addr sip ^ Codec.u64 ch
let arep_corr sig_ = "arep:" ^ sig_
let drep_corr sig_ = "drep:" ^ sig_

let create ?(config = default_config) ?(dns_address = Address.dns_server_1)
    ~dns_pk ctx =
  {
    ctx;
    config;
    dns_address;
    dns_pk;
    pending = None;
    configured = false;
    seq = 0;
    on_complete = (fun _ -> ());
    seen_areq = Hashtbl.create 64;
    seen_warning = Hashtbl.create 16;
    areq_observer = (fun _ -> ());
    warning_sink = (fun _ -> ());
    span_bootstrap = None;
    span_flood = None;
  }

let identity t = t.ctx.Ctx.identity
let address t = (identity t).Identity.address
let is_configured t = t.configured

let set_areq_observer t f = t.areq_observer <- f
let set_warning_sink t f = t.warning_sink <- f

let areq_key ~sip ~seq ~ch = Codec.addr sip ^ Codec.u32 seq ^ Codec.u64 ch

let obs t = t.ctx.Ctx.obs

(* The AREQ dedup key doubles as the flood-provenance id: both are pure
   functions of (sip, seq, ch), so the registry needs no wire change. *)
let floods t = Obs.flood (obs t)

let finish_flood t outcome =
  match t.span_flood with
  | Some id ->
      Obs.finish (obs t) id outcome;
      t.span_flood <- None
  | None -> ()

let finish_bootstrap t outcome =
  match t.span_bootstrap with
  | Some id ->
      Obs.finish (obs t) id outcome;
      t.span_bootstrap <- None
  | None -> ()

let rec begin_attempt t ~attempt ~dn =
  let ctx = t.ctx in
  t.seq <- t.seq + 1;
  let ch = Prng.bits64 ctx.Ctx.rng in
  let sip = address t in
  (* Tentative registration: stands in for the last-hop broadcast of the
     returning AREP (the initiator has no legal address yet). *)
  Directory.register ctx.Ctx.directory sip (Ctx.node_id ctx);
  let pending = { p_ch = ch; p_seq = t.seq; p_dn = dn; p_attempt = attempt; p_resolved = false } in
  t.pending <- Some pending;
  let fl =
    Obs.start (obs t) ?parent:t.span_bootstrap ~kind:"dad.flood"
      ~node:(Ctx.node_id ctx)
      ~detail:
        (Printf.sprintf "sip=%s attempt=%d" (Address.to_string sip) attempt)
      ()
  in
  t.span_flood <- Some fl;
  Obs.correlate (obs t) (flood_key ~sip ~ch) fl;
  (* Ignore echoes of our own flood. *)
  let fkey = areq_key ~sip ~seq:t.seq ~ch in
  Hashtbl.replace t.seen_areq fkey ();
  Ctx.log ctx ~event:"dad.start"
    ~detail:
      (Printf.sprintf "sip=%s dn=%s attempt=%d" (Address.to_string sip)
         (Option.value ~default:"-" dn)
         attempt);
  Flood.originate (floods t) ~kind:Flood.Areq ~key:fkey ~node:(Ctx.node_id ctx);
  Flood.sent (floods t) ~kind:Flood.Areq ~key:fkey ~node:(Ctx.node_id ctx);
  Ctx.broadcast ctx (Messages.Areq { sip; seq = t.seq; dn; ch; rr = [] });
  Engine.schedule ctx.Ctx.engine ~label:"dad" ~delay:t.config.arep_wait (fun () ->
      match t.pending with
      | Some p when p == pending && not p.p_resolved ->
          p.p_resolved <- true;
          t.pending <- None;
          t.configured <- true;
          (identity t).Identity.domain_name <- dn;
          finish_flood t Obs.Ok;
          finish_bootstrap t Obs.Ok;
          Ctx.stat ctx "dad.configured";
          Ctx.log ctx ~event:"dad.configured"
            ~detail:(Address.to_string (address t));
          t.on_complete (Configured { address = address t; name = dn })
      | _ -> ())

and retry_with_new_address t p =
  let ctx = t.ctx in
  p.p_resolved <- true;
  t.pending <- None;
  (* The verified owner shares our tentative address; it is honest until
     something else says otherwise, so nobody stands accused here. *)
  Ctx.audit ctx ~kind:Audit.Dad_collision
    ~stats:[ "dad.collision" ]
    ~cause:("tentative address already owned: " ^ Address.to_string (address t))
    ();
  finish_flood t (Obs.Rejected "address collision");
  if p.p_attempt + 1 >= t.config.max_attempts then begin
    Ctx.stat ctx "dad.failed";
    finish_bootstrap t (Obs.Failed "address collisions exhausted retry budget");
    t.on_complete (Failed "address collisions exhausted retry budget")
  end
  else begin
    Directory.unregister ctx.Ctx.directory (address t) (Ctx.node_id ctx);
    Identity.refresh_address (identity t) ctx.Ctx.rng;
    Ctx.log ctx ~event:"dad.retry" ~detail:(Address.to_string (address t));
    begin_attempt t ~attempt:(p.p_attempt + 1) ~dn:p.p_dn
  end

and retry_with_new_name t p =
  let ctx = t.ctx in
  p.p_resolved <- true;
  t.pending <- None;
  Ctx.audit ctx ~kind:Audit.Dns_conflict
    ~stats:[ "dad.name_conflict" ]
    ~cause:
      ("domain name already registered: "
      ^ Option.value ~default:"-" p.p_dn)
    ();
  finish_flood t (Obs.Rejected "domain name conflict");
  if not t.config.auto_rename then begin
    finish_bootstrap t (Obs.Failed "domain name conflict");
    t.on_complete (Failed "domain name conflict")
  end
  else if p.p_attempt + 1 >= t.config.max_attempts then begin
    Ctx.stat ctx "dad.failed";
    finish_bootstrap t
      (Obs.Failed "domain name conflicts exhausted retry budget");
    t.on_complete (Failed "domain name conflicts exhausted retry budget")
  end
  else begin
    let dn =
      Option.map (fun n -> Printf.sprintf "%s-%d" n (p.p_attempt + 2)) p.p_dn
    in
    Ctx.log ctx ~event:"dad.rename" ~detail:(Option.value ~default:"-" dn);
    begin_attempt t ~attempt:(p.p_attempt + 1) ~dn
  end

let start t ?dn ?parent ~on_complete () =
  if t.pending <> None then invalid_arg "Dad.start: already running";
  t.on_complete <- on_complete;
  t.configured <- false;
  let sb =
    Obs.start (obs t) ?parent ~kind:"dad.bootstrap"
      ~node:(Ctx.node_id t.ctx)
      ~detail:(match dn with Some d -> "dn=" ^ d | None -> "")
      ()
  in
  t.span_bootstrap <- Some sb;
  begin_attempt t ~attempt:0 ~dn

let abort t =
  match t.pending with
  | Some p ->
      (* Marking the attempt resolved defuses its arep_wait timer; the
         completion callback never fires.  Used when a node crashes with
         a DAD exchange in flight, so a restart can call [start] anew. *)
      p.p_resolved <- true;
      t.pending <- None;
      finish_flood t (Obs.Failed "aborted");
      finish_bootstrap t (Obs.Failed "aborted")
  | None ->
      finish_flood t (Obs.Failed "aborted");
      finish_bootstrap t (Obs.Failed "aborted")

(* --- responder/relay side --------------------------------------------- *)

let answer_duplicate t (m : (* areq fields *) Address.t * int64 * Address.t list) =
  let sip, ch, rr = m in
  let ctx = t.ctx in
  let id = identity t in
  let sig_ = Identity.sign id (Codec.arep_payload ~sip ~ch) in
  let pk = Identity.pk_bytes id in
  let rn = id.Identity.rn in
  (* [sip] is also our address, so a directory lookup would name
     ourselves: the claimant has no resolvable identity yet. *)
  Ctx.audit ctx ~kind:Audit.Dad_collision
    ~stats:[ "dad.duplicate_detected" ]
    ~cause:("tentative claim of our address " ^ Address.to_string sip)
    ();
  Ctx.log ctx ~event:"dad.duplicate" ~detail:(Address.to_string sip);
  (* AREP span: child of the initiator's flood span (shared Obs), open
     from here until the initiator accepts the reply. *)
  let o = obs t in
  let parent = Obs.lookup o (flood_key ~sip ~ch) in
  let arep_span =
    Obs.start o ?parent ~kind:"dad.arep" ~node:(Ctx.node_id ctx)
      ~detail:("sip=" ^ Address.to_string sip)
      ()
  in
  Obs.correlate o (arep_corr sig_) arep_span;
  (* AREP back to the initiator along the reverse route record. *)
  let back_path = List.rev rr @ [ sip ] in
  Ctx.send_along ctx ~path:back_path
    (Messages.Arep { sip; rr; remaining = back_path; sig_; pk; rn });
  (* Warning AREP to the DNS, flooded because no route to the DNS is
     known this early (DESIGN.md §4). *)
  let warning =
    Messages.Arep { sip; rr = []; remaining = [ t.dns_address ]; sig_; pk; rn }
  in
  Hashtbl.replace t.seen_warning sig_ ();
  Ctx.stat ctx "dad.warning_sent";
  (* manetlint: allow flood-origin-label — the warning AREP is flooded
     towards the DNS but is not an AREQ/RREQ flood; provenance tracks
     address/route request storms only (§3.1). *)
  Ctx.broadcast ctx warning

let handle_areq t ~src msg =
  match msg with
  | Messages.Areq { sip; seq; dn; ch; rr } ->
      let ctx = t.ctx in
      let key = areq_key ~sip ~seq ~ch in
      Flood.received (floods t) ~kind:Flood.Areq ~key ~node:(Ctx.node_id ctx)
        ~src ~hops:(List.length rr);
      if not (Hashtbl.mem t.seen_areq key) then begin
        Hashtbl.replace t.seen_areq key ();
        t.areq_observer msg;
        if Address.equal sip (address t) then answer_duplicate t (sip, ch, rr);
        (* Relay: every host rebroadcasts once (§3.1) — including a
           duplicate owner, which may sit on the only path to the DNS —
           with our address appended to RR, after a small jitter to
           de-synchronize the flood. *)
        let rr' = rr @ [ address t ] in
        let delay = Prng.float ctx.Ctx.rng t.config.flood_jitter in
        Engine.schedule ctx.Ctx.engine ~label:"dad" ~delay (fun () ->
            Flood.sent (floods t) ~kind:Flood.Areq ~key
              ~node:(Ctx.node_id ctx);
            Ctx.broadcast ctx (Messages.Areq { sip; seq; dn; ch; rr = rr' }))
      end
      else Flood.duplicate (floods t) ~kind:Flood.Areq ~key
  | _ -> ()

(* --- initiator verification ------------------------------------------- *)

type arep_check = Arep_ok | Arep_bad_binding | Arep_bad_sig

let verify_arep_r t ~sip ~sig_ ~pk ~rn ~ch =
  let suite = Ctx.suite t.ctx in
  Suite.count_hash suite ~bytes:(String.length pk + 8);
  (* Check 1: R generated SIP by the CGA rule. *)
  if not (Cga.verify sip ~pk_bytes:pk ~rn) then Arep_bad_binding
    (* Check 2: R owns the private key — it answered our challenge. *)
  else if
    suite.Suite.verify ~pk_bytes:pk
      ~msg:(Codec.arep_payload ~sip ~ch)
      ~signature:sig_
  then Arep_ok
  else Arep_bad_sig

let consume_arep t msg =
  match msg with
  | Messages.Arep { sip; sig_; pk; rn; _ } -> (
      match t.pending with
      | Some p when (not p.p_resolved) && Address.equal sip (address t) -> (
          match verify_arep_r t ~sip ~sig_ ~pk ~rn ~ch:p.p_ch with
          | Arep_ok ->
              (match Obs.lookup (obs t) (arep_corr sig_) with
              | Some sid -> Obs.finish (obs t) sid Obs.Ok
              | None -> ());
              retry_with_new_address t p
          | (Arep_bad_binding | Arep_bad_sig) as why ->
              (* An AREP for our pending address that fails verification
                 is a forgery or replay: ignore it (§4).  A bad CGA
                 binding means the claimed owner fabricated its identity
                 material; a bad signature, that the challenge was never
                 really answered. *)
              (match why with
              | Arep_bad_binding ->
                  Ctx.audit t.ctx ~kind:Audit.Cga_mismatch
                    ~stats:[ "dad.arep_rejected" ]
                    ~cause:"arep owner key/address binding" ()
              | Arep_bad_sig | Arep_ok ->
                  Ctx.audit t.ctx ~kind:Audit.Sig_verify_fail
                    ~stats:[ "dad.arep_rejected" ]
                    ~cause:"arep challenge signature" ());
              Ctx.log t.ctx ~event:"dad.arep_rejected"
                ~detail:(Address.to_string sip))
      | _ ->
          (* Not ours: if we host the DNS this is a duplicate warning. *)
          t.warning_sink msg)
  | _ -> ()

let consume_drep t msg =
  match msg with
  | Messages.Drep { dn; sig_; _ } -> (
      match t.pending with
      | Some p when (not p.p_resolved) && p.p_dn = Some dn ->
          let suite = Ctx.suite t.ctx in
          if
            suite.Suite.verify ~pk_bytes:t.dns_pk
              ~msg:(Codec.drep_payload ~dn ~ch:p.p_ch)
              ~signature:sig_
          then begin
            (match Obs.lookup (obs t) (drep_corr sig_) with
            | Some sid -> Obs.finish (obs t) sid Obs.Ok
            | None -> ());
            retry_with_new_name t p
          end
          else begin
            Ctx.audit t.ctx ~kind:Audit.Sig_verify_fail
              ~stats:[ "dad.drep_rejected" ]
              ~cause:"drep dns server signature" ();
            Ctx.log t.ctx ~event:"dad.drep_rejected" ~detail:dn
          end
      | _ -> ())
  | _ -> ()

(* --- reception dispatch ------------------------------------------------ *)

let relay_warning t msg =
  (* A flooded warning AREP overheard in transit: rebroadcast once unless
     we are its DNS target. *)
  match msg with
  | Messages.Arep { remaining = [ target ]; sig_; _ }
    when Address.equal target t.dns_address
         && not (Address.equal (address t) t.dns_address) ->
      if not (Hashtbl.mem t.seen_warning sig_) then begin
        Hashtbl.replace t.seen_warning sig_ ();
        let delay = Prng.float t.ctx.Ctx.rng t.config.flood_jitter in
        Engine.schedule t.ctx.Ctx.engine ~label:"dad" ~delay (fun () ->
            (* manetlint: allow flood-origin-label — warning AREP relay,
               not an AREQ/RREQ flood (see answer_duplicate). *)
            Ctx.broadcast t.ctx msg)
      end
  | _ -> ()

let handle t ~src msg =
  match msg with
  | Messages.Areq _ -> handle_areq t ~src msg
  | Messages.Arep _ ->
      Ctx.deliver_up t.ctx ~src msg
        ~consume:(fun m -> consume_arep t m)
        ~forward:(fun ~next m -> Ctx.send_along t.ctx ~path:next m)
        ~not_mine:(fun m -> relay_warning t m)
  | Messages.Drep _ ->
      Ctx.deliver_up t.ctx ~src msg
        ~consume:(fun m -> consume_drep t m)
        ~forward:(fun ~next m -> Ctx.send_along t.ctx ~path:next m)
        ~not_mine:(fun _ -> ())
  (* Routing, data and DNS-service traffic is not DAD's business; the
     arms are spelled out so that adding a Messages constructor forces a
     decision here (manetsem dispatch rule). *)
  | Messages.Rreq _ | Messages.Rrep _ | Messages.Crep _ | Messages.Rerr _
  | Messages.Data _ | Messages.Ack _ | Messages.Probe _
  | Messages.Probe_reply _ | Messages.Name_query _ | Messages.Name_reply _
  | Messages.Ip_change_request _ | Messages.Ip_change_challenge _
  | Messages.Ip_change_proof _ | Messages.Ip_change_ack _ -> ()
