bench/main.mli:
