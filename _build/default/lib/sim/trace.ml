type entry = { time : float; node : int; event : string; detail : string }

type t = {
  mutable enabled : bool;
  capacity : int;
  buf : entry Queue.t;
}

let create ?(capacity = 100_000) () =
  { enabled = false; capacity; buf = Queue.create () }

let enable t = t.enabled <- true
let disable t = t.enabled <- false
let is_enabled t = t.enabled

let log t ~time ~node ~event ~detail =
  if t.enabled then begin
    if Queue.length t.buf >= t.capacity then ignore (Queue.pop t.buf);
    Queue.push { time; node; event; detail } t.buf
  end

let entries t = List.of_seq (Queue.to_seq t.buf)
let find t ~event = List.filter (fun e -> String.equal e.event event) (entries t)
let clear t = Queue.clear t.buf
let length t = Queue.length t.buf

let pp_entry fmt e =
  if e.node >= 0 then
    Format.fprintf fmt "%10.4f  node %-3d  %-18s %s" e.time e.node e.event e.detail
  else Format.fprintf fmt "%10.4f  %-27s %s" e.time e.event e.detail

let render t =
  let buf = Buffer.create 1024 in
  List.iter
    (fun e -> Buffer.add_string buf (Format.asprintf "%a@." pp_entry e))
    (entries t);
  Buffer.contents buf
