examples/battlefield.mli:
