lib/ipv6/cga.ml: Address Char Int64 Manet_crypto String
