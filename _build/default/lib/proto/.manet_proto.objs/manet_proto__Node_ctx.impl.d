lib/proto/node_ctx.ml: Directory Format Identity List Manet_crypto Manet_ipv6 Manet_sim Messages Wire
