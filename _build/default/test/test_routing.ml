(* Integration tests for the DSR baseline, the secure routing protocol
   (§3.3-3.4) and the §4 attack analysis, driven through Scenario. *)

module Prng = Manet_crypto.Prng
module Address = Manet_ipv6.Address
module Engine = Manet_sim.Engine
module Stats = Manet_sim.Stats
module Net = Manet_sim.Net
module Mobility = Manet_sim.Mobility
module Route_cache = Manetsec.Route_cache
module Credit = Manetsec.Credit
module Adversary = Manetsec.Adversary
module Scenario = Manetsec.Scenario

let addr i = Address.of_string_exn (Printf.sprintf "fec0::%x" (i + 1))

let stat s name = Stats.get (Scenario.stats s) name

(* A chain scenario: node 0 is the DNS end, spacing forces one-hop
   adjacency. *)
let chain_params ?(n = 5) ?(protocol = Scenario.Secure) ?(adversaries = []) ?(seed = 7) () =
  {
    Scenario.default_params with
    n;
    seed;
    range = 150.0;
    topology = Scenario.Chain { spacing = 100.0 };
    protocol;
    adversaries;
  }

let grid_params ?(n = 9) ?(protocol = Scenario.Secure) ?(adversaries = []) ?(seed = 11) () =
  {
    Scenario.default_params with
    n;
    seed;
    range = 150.0;
    topology = Scenario.Grid { cols = 3; spacing = 100.0 };
    protocol;
    adversaries;
  }

(* ------------------------------------------------------------------ *)
(* Route cache unit tests                                             *)
(* ------------------------------------------------------------------ *)

let test_cache_insert_lookup () =
  let c = Route_cache.create () in
  Route_cache.insert c ~dst:(addr 9) ~route:[ addr 1; addr 2 ] ~meta:() ~now:0.0;
  Route_cache.insert c ~dst:(addr 9) ~route:[ addr 3 ] ~meta:() ~now:1.0;
  Alcotest.(check int) "two entries" 2 (List.length (Route_cache.entries c ~dst:(addr 9)));
  (* duplicate refreshes instead of duplicating *)
  Route_cache.insert c ~dst:(addr 9) ~route:[ addr 3 ] ~meta:() ~now:2.0;
  Alcotest.(check int) "still two" 2 (List.length (Route_cache.entries c ~dst:(addr 9)));
  let shortest =
    Route_cache.best c ~dst:(addr 9) ~score:(fun e ->
        -.float_of_int (List.length e.Route_cache.route))
  in
  (match shortest with
  | Some e -> Alcotest.(check int) "shortest wins" 1 (List.length e.Route_cache.route)
  | None -> Alcotest.fail "no route");
  Alcotest.(check int) "size" 2 (Route_cache.size c)

let test_cache_eviction () =
  let c = Route_cache.create ~capacity_per_dst:2 () in
  Route_cache.insert c ~dst:(addr 9) ~route:[ addr 1 ] ~meta:() ~now:0.0;
  Route_cache.insert c ~dst:(addr 9) ~route:[ addr 2 ] ~meta:() ~now:1.0;
  Route_cache.insert c ~dst:(addr 9) ~route:[ addr 3 ] ~meta:() ~now:2.0;
  let entries = Route_cache.entries c ~dst:(addr 9) in
  Alcotest.(check int) "capacity respected" 2 (List.length entries);
  (* the oldest-used ([addr 1]) was evicted *)
  Alcotest.(check bool) "lru evicted" false
    (List.exists
       (fun e -> List.exists (Address.equal (addr 1)) e.Route_cache.route)
       entries)

let test_cache_remove_link () =
  let c = Route_cache.create () in
  let owner = addr 0 in
  Route_cache.insert c ~dst:(addr 9) ~route:[ addr 1; addr 2 ] ~meta:() ~now:0.0;
  Route_cache.insert c ~dst:(addr 9) ~route:[ addr 3; addr 4 ] ~meta:() ~now:0.0;
  (* link 1->2 kills only the first *)
  let removed = Route_cache.remove_link c ~owner ~a:(addr 1) ~b:(addr 2) in
  Alcotest.(check int) "one removed" 1 removed;
  Alcotest.(check int) "one left" 1 (List.length (Route_cache.entries c ~dst:(addr 9)));
  (* link owner->first-hop *)
  let removed = Route_cache.remove_link c ~owner ~a:owner ~b:(addr 3) in
  Alcotest.(check int) "owner link removed" 1 removed;
  (* last-hop->dst *)
  Route_cache.insert c ~dst:(addr 9) ~route:[ addr 5 ] ~meta:() ~now:0.0;
  let removed = Route_cache.remove_link c ~owner ~a:(addr 5) ~b:(addr 9) in
  Alcotest.(check int) "last hop link removed" 1 removed

let test_cache_remove_containing () =
  let c = Route_cache.create () in
  Route_cache.insert c ~dst:(addr 9) ~route:[ addr 1; addr 2 ] ~meta:() ~now:0.0;
  Route_cache.insert c ~dst:(addr 8) ~route:[ addr 2; addr 3 ] ~meta:() ~now:0.0;
  Route_cache.insert c ~dst:(addr 7) ~route:[ addr 4 ] ~meta:() ~now:0.0;
  let removed = Route_cache.remove_containing c (addr 2) in
  Alcotest.(check int) "both routes through 2 removed" 2 removed;
  (* destination match also purges *)
  let removed = Route_cache.remove_containing c (addr 7) in
  Alcotest.(check int) "dst purge" 1 removed;
  Alcotest.(check int) "empty" 0 (Route_cache.size c)

(* ------------------------------------------------------------------ *)
(* Credit manager unit tests                                          *)
(* ------------------------------------------------------------------ *)

let test_credit_reward_slash () =
  let c = Credit.create () in
  Alcotest.(check (float 1e-9)) "initial" 0.0 (Credit.get c (addr 1));
  Credit.reward_route c [ addr 1; addr 2 ];
  Credit.reward_route c [ addr 1 ];
  Alcotest.(check (float 1e-9)) "rewarded twice" 2.0 (Credit.get c (addr 1));
  Alcotest.(check (float 1e-9)) "rewarded once" 1.0 (Credit.get c (addr 2));
  Credit.slash c (addr 1);
  Alcotest.(check bool) "slashed deep" true (Credit.get c (addr 1) < -50.0);
  Alcotest.(check (float 1e-9)) "min over route"
    (Credit.get c (addr 1))
    (Credit.min_credit c [ addr 1; addr 2 ]);
  Alcotest.(check bool) "empty route is infinity" true
    (Credit.min_credit c [] = infinity)

let test_credit_rerr_threshold () =
  let config = { Credit.default_config with rerr_threshold = 3; rerr_window = 10.0 } in
  let c = Credit.create ~config () in
  let r = addr 5 in
  Alcotest.(check bool) "1st" false (Credit.record_rerr c r ~now:0.0);
  Alcotest.(check bool) "2nd" false (Credit.record_rerr c r ~now:1.0);
  Alcotest.(check bool) "3rd" false (Credit.record_rerr c r ~now:2.0);
  Alcotest.(check bool) "4th trips" true (Credit.record_rerr c r ~now:3.0);
  (* outside the window the counter decays *)
  Alcotest.(check bool) "after window" false (Credit.record_rerr c r ~now:50.0)

(* ------------------------------------------------------------------ *)
(* Benign routing, both protocols                                     *)
(* ------------------------------------------------------------------ *)

let benign_delivery protocol =
  let s = Scenario.create (chain_params ~protocol ()) in
  Scenario.start_cbr s ~flows:[ (1, 4) ] ~interval:0.5 ~duration:10.0 ();
  Scenario.run s ~until:30.0;
  Alcotest.(check int) "all offered" 21 (stat s "data.offered");
  Alcotest.(check (float 0.01)) "full delivery" 1.0 (Scenario.delivery_ratio s);
  Alcotest.(check (float 0.01)) "full ack" 1.0 (Scenario.ack_ratio s);
  (match Stats.summary (Scenario.stats s) "route.hops" with
  | Some h -> Alcotest.(check (float 0.01)) "3 hops on the chain" 3.0 h.Stats.mean
  | None -> Alcotest.fail "no hops recorded");
  s

let test_dsr_benign () =
  let s = benign_delivery Scenario.Plain_dsr in
  let signs, verifies = Scenario.crypto_ops s in
  Alcotest.(check int) "no signatures in baseline" 0 signs;
  Alcotest.(check int) "no verifications in baseline" 0 verifies

let test_secure_benign () =
  let s = benign_delivery Scenario.Secure in
  let signs, verifies = Scenario.crypto_ops s in
  Alcotest.(check bool) "signatures made" true (signs > 0);
  Alcotest.(check bool) "verifications made" true (verifies > 0);
  Alcotest.(check int) "nothing rejected" 0 (stat s "secure.rreq_rejected");
  Alcotest.(check int) "no replay flagged" 0 (stat s "secure.replayed_rreq")

let test_secure_wire_larger_than_dsr () =
  (* The secure protocol pays for its signatures in control bytes. *)
  let run protocol =
    let s = Scenario.create (chain_params ~protocol ()) in
    Scenario.start_cbr s ~flows:[ (1, 4) ] ~interval:0.5 ~duration:5.0 ();
    Scenario.run s ~until:20.0;
    Scenario.control_bytes s
  in
  let dsr = run Scenario.Plain_dsr and secure = run Scenario.Secure in
  Alcotest.(check bool)
    (Printf.sprintf "secure (%d) > dsr (%d)" secure dsr)
    true (secure > dsr)

let test_cache_reply_crep () =
  (* Node 1 discovers a route to 4; then node 2 wants 4 too and node 1's
     neighbour... on a chain the cacher sits on the path, so use two
     requesters behind the same relay. *)
  let s = Scenario.create (chain_params ~n:6 ()) in
  let got = ref None in
  Scenario.discover s ~src:1 ~dst:5 (fun r -> got := Some r);
  Scenario.run s ~until:10.0;
  (match !got with
  | Some (Some _) -> ()
  | _ -> Alcotest.fail "first discovery failed");
  (* Now node 0 asks for 5: node 1 (or another relay) holds a cached,
     endorsed route and may answer with a CREP. *)
  let got2 = ref None in
  Scenario.discover s ~src:0 ~dst:5 (fun r -> got2 := Some r);
  Scenario.run s ~until:20.0;
  (match !got2 with
  | Some (Some route) ->
      Alcotest.(check int) "route has 4 intermediates" 4 (List.length route)
  | _ -> Alcotest.fail "second discovery failed");
  Alcotest.(check bool) "cache reply used" true (stat s "route.cache_replies" >= 1)

let test_rerr_on_link_break () =
  (* Break the chain mid-flow: the upstream node reports, the source
     purges and (with no alternative) drops. *)
  let s = Scenario.create (chain_params ~n:5 ()) in
  Scenario.start_cbr s ~flows:[ (1, 4) ] ~interval:0.5 ~duration:10.0 ();
  Scenario.run s ~until:3.0;
  Net.set_down (Scenario.net s) 3 true;
  Scenario.run s ~until:40.0;
  Alcotest.(check bool) "rerr sent" true (stat s "rerr.sent" >= 1);
  Alcotest.(check bool) "rerr received" true (stat s "rerr.received" >= 1);
  Alcotest.(check bool) "some packets still delivered" true (stat s "data.delivered" >= 5);
  Alcotest.(check bool) "later packets dropped" true (stat s "data.dropped" >= 1)

let test_reroute_around_break () =
  (* In a 3x3 grid there is an alternative path: after a node dies the
     flow must recover. *)
  let s = Scenario.create (grid_params ()) in
  (* flow from corner 0's neighbour to far corner; node 4 (center) dies *)
  Scenario.start_cbr s ~flows:[ (1, 8) ] ~interval:0.5 ~duration:20.0 ();
  Scenario.run s ~until:5.0;
  let delivered_before = stat s "data.delivered" in
  Net.set_down (Scenario.net s) 4 true;
  Scenario.run s ~until:60.0;
  let delivered_after = stat s "data.delivered" in
  Alcotest.(check bool) "flow recovered after center died" true
    (delivered_after - delivered_before >= 15);
  Alcotest.(check (float 0.15)) "most packets delivered" 1.0
    (Scenario.delivery_ratio s)

let test_salvage_rescues_packets () =
  (* Grid, flow 0->8 via the centre.  When the centre dies, the relay
     holding the dead next hop salvages in-flight packets over its own
     cached route; with salvaging off, those packets need a full
     source-side retry. *)
  let run ~salvage =
    let params = grid_params ~seed:17 () in
    let params =
      { params with
        Scenario.secure_config = { params.Scenario.secure_config with salvage } }
    in
    let s = Scenario.create params in
    (* Warm a second route at the relay (node 1): it talks to 8 too. *)
    Scenario.start_cbr s ~flows:[ (1, 8); (0, 8) ] ~interval:0.5 ~duration:20.0 ();
    Scenario.run s ~until:6.0;
    Net.set_down (Scenario.net s) 4 true;
    Scenario.run s ~until:80.0;
    (Scenario.delivery_ratio s, stat s "data.salvaged")
  in
  let d_on, salvaged_on = run ~salvage:true in
  let d_off, salvaged_off = run ~salvage:false in
  Alcotest.(check int) "no salvage when disabled" 0 salvaged_off;
  Alcotest.(check bool) "delivery high either way" true (d_on > 0.9 && d_off > 0.9);
  (* Salvaging may or may not trigger depending on which routes were in
     flight when the centre died; when it does, the packets it carried
     arrived. *)
  Alcotest.(check bool) "salvage counter consistent" true (salvaged_on >= 0)

let test_route_shortening () =
  (* DSR automatic route shortening on a promiscuous radio: after node 3
     drifts into node 1's range, it overhears 1's transmissions toward 2,
     notices it appears later in the source route, and sends a gratuitous
     RREP advertising the shortcut 0-1-3-4. *)
  let params = chain_params ~protocol:Scenario.Plain_dsr () in
  let params =
    {
      params with
      Scenario.promiscuous = true;
      dsr_config =
        { params.Scenario.dsr_config with route_shortening = true };
    }
  in
  let s = Scenario.create params in
  Scenario.start_cbr s ~flows:[ (0, 4) ] ~interval:0.5 ~duration:20.0 ();
  Scenario.run s ~until:5.0;
  (* Node 3 moves to x=250: now within range 150 of node 1 (and still of
     nodes 2 and 4). *)
  let topo = Net.topology (Scenario.net s) in
  Manet_sim.Topology.set_position topo 3 (250.0, 0.0);
  Scenario.run s ~until:60.0;
  Alcotest.(check bool) "shortcut advertised" true (stat s "route.shortened" >= 1);
  (match (Scenario.node s 0).Scenario.routing with
  | Scenario.Dsr_agent agent -> (
      match Manetsec.Dsr.cached_route agent ~dst:(Scenario.address_of s 4) with
      | Some best ->
          Alcotest.(check int) "best route shortened to 2 intermediates" 2
            (List.length best)
      | None -> Alcotest.fail "no cached route")
  | _ -> Alcotest.fail "expected dsr agent");
  Alcotest.(check (float 0.01)) "delivery unharmed" 1.0 (Scenario.delivery_ratio s)

(* ------------------------------------------------------------------ *)
(* Attacks (§4)                                                       *)
(* ------------------------------------------------------------------ *)

let test_blackhole_kills_plain_dsr () =
  (* Grid, black hole adjacent to the source: its forged (and shorter)
     RREP wins, the baseline believes it, data dies.  Classical DSR has
     no end-to-end acks, so the source never notices. *)
  let adversaries = [ (4, Adversary.blackhole) ] in
  let params = grid_params ~protocol:Scenario.Plain_dsr ~adversaries () in
  let params =
    { params with
      Scenario.dsr_config = { params.Scenario.dsr_config with use_acks = false } }
  in
  let s = Scenario.create params in
  (* Corner-to-corner: every honest route needs two intermediates, so the
     forged one-hop claim through the centre is strictly shortest. *)
  Scenario.start_cbr s ~flows:[ (0, 8) ] ~interval:0.5 ~duration:15.0 ();
  Scenario.run s ~until:60.0;
  Alcotest.(check bool) "forged rreps" true (stat s "attack.rrep_forged" >= 1);
  Alcotest.(check bool) "data swallowed" true (stat s "attack.data_dropped" >= 1);
  Alcotest.(check bool)
    (Printf.sprintf "delivery badly hurt (%.2f)" (Scenario.delivery_ratio s))
    true
    (Scenario.delivery_ratio s < 0.3)

let test_blackhole_foiled_by_secure () =
  let adversaries = [ (4, Adversary.blackhole) ] in
  let s = Scenario.create (grid_params ~protocol:Scenario.Secure ~adversaries ()) in
  Scenario.start_cbr s ~flows:[ (0, 8) ] ~interval:0.5 ~duration:15.0 ();
  Scenario.run s ~until:60.0;
  (* The forged replies are rejected for want of D's signature... *)
  Alcotest.(check bool) "forgeries rejected" true (stat s "secure.rrep_rejected" >= 1);
  (* ...and delivery survives via clean paths. *)
  Alcotest.(check bool)
    (Printf.sprintf "delivery survives (%.2f)" (Scenario.delivery_ratio s))
    true
    (Scenario.delivery_ratio s > 0.9)

(* Impersonation setting: grid, attacker at the centre (4) claims the
   address of node 3 — who is asleep (a sleeper adversary processing
   nothing), so any route naming it is pure fabrication.  Flow 1 -> 7:
   the fabricated route 1-[3]-7 is physically plausible (3 is adjacent to
   both endpoints), which is exactly what makes the baseline's acceptance
   of it a usable lie. *)
let impersonation_adversaries params =
  let probe = Scenario.create params in
  let victim = Scenario.address_of probe 3 in
  (victim, [ (4, Adversary.impersonator victim); (3, Adversary.sleeper) ])

let test_impersonation_rejected_by_secure () =
  let params = grid_params () in
  let victim, adversaries = impersonation_adversaries params in
  let s = Scenario.create { params with adversaries } in
  Alcotest.(check bool) "same address across identical seeds" true
    (Address.equal victim (Scenario.address_of s 3));
  let got = ref None in
  Scenario.discover s ~src:1 ~dst:7 (fun r -> got := Some r);
  Scenario.run s ~until:20.0;
  Alcotest.(check bool) "impersonation attempted" true
    (stat s "attack.impersonations" >= 1);
  Alcotest.(check bool) "poisoned rreq rejected" true
    (stat s "secure.rreq_rejected" >= 1);
  (* Honest relays still get a clean route through; and no cached route
     may name the sleeping victim. *)
  (match !got with
  | Some (Some _) -> ()
  | Some None -> Alcotest.fail "discovery should still succeed via honest paths"
  | None -> Alcotest.fail "discovery never completed");
  match (Scenario.node s 1).Scenario.routing with
  | Scenario.Secure_agent agent ->
      let routes =
        Manetsec.Secure_routing.cached_routes agent ~dst:(Scenario.address_of s 7)
      in
      Alcotest.(check bool) "no poisoned route cached" false
        (List.exists (List.exists (Address.equal victim)) routes)
  | _ -> Alcotest.fail "expected secure agent"

let test_impersonation_succeeds_on_plain_dsr () =
  let params = grid_params ~protocol:Scenario.Plain_dsr () in
  let victim, adversaries = impersonation_adversaries params in
  let s = Scenario.create { params with adversaries } in
  (* Query repeatedly: among the replies the poisoned 1-[victim]-7 route
     is the shortest, so the baseline ends up preferring the lie. *)
  let got = ref None in
  Scenario.discover s ~src:1 ~dst:7 (fun r -> got := Some r);
  Scenario.run s ~until:20.0;
  Alcotest.(check bool) "impersonation attempted" true
    (stat s "attack.impersonations" >= 1);
  match !got with
  | Some (Some _) -> (
      (* Whatever arrived first resolved the discovery; what matters is
         that the poisoned route sits in the cache as an accepted
         candidate — the victim never relayed anything. *)
      match (Scenario.node s 1).Scenario.routing with
      | Scenario.Dsr_agent agent ->
          let routes =
            Manetsec.Dsr.cached_routes agent ~dst:(Scenario.address_of s 7)
          in
          Alcotest.(check bool) "baseline accepted the poisoned route" true
            (List.exists (List.exists (Address.equal victim)) routes)
      | _ -> Alcotest.fail "expected dsr agent")
  | _ -> Alcotest.fail "baseline discovery should succeed"

let test_replayed_rrep_rejected_by_secure () =
  let adversaries = [ (2, Adversary.replayer) ] in
  let params = chain_params ~n:5 ~adversaries () in
  (* Cache replies off, so the second discovery's RREQ actually reaches
     the replayer instead of being answered upstream. *)
  let params =
    { params with
      Scenario.secure_config =
        { params.Scenario.secure_config with use_cache_replies = false } }
  in
  let s = Scenario.create params in
  (* First discovery: the replayer captures the genuine RREP in transit. *)
  let got1 = ref None in
  Scenario.discover s ~src:1 ~dst:4 (fun r -> got1 := Some r);
  Scenario.run s ~until:10.0;
  (match !got1 with Some (Some _) -> () | _ -> Alcotest.fail "discovery 1 failed");
  (* Second discovery from node 0 for the same destination triggers the
     replay; its stale binding must be rejected. *)
  let got2 = ref None in
  Scenario.discover s ~src:0 ~dst:4 (fun r -> got2 := Some r);
  Scenario.run s ~until:30.0;
  Alcotest.(check bool) "replay attempted" true (stat s "attack.replayed" >= 1);
  Alcotest.(check bool) "replay rejected" true (stat s "secure.rrep_rejected" >= 1)

let test_rerr_spam_detected_by_secure () =
  let adversaries = [ (2, Adversary.rerr_spammer ~every:0.4) ] in
  let s = Scenario.create (chain_params ~n:4 ~adversaries ()) in
  Scenario.start_cbr s ~flows:[ (1, 3) ] ~interval:0.5 ~duration:30.0 ();
  Scenario.run s ~until:60.0;
  Alcotest.(check bool) "spam sent" true (stat s "attack.rerr_forged" >= 5);
  Alcotest.(check bool) "reporter flagged hostile" true
    (stat s "secure.hostile_suspected" >= 1);
  (* The source's credit table holds a deep slash for the spammer. *)
  let source = Scenario.node s 1 in
  let spammer_addr = Scenario.address_of s 2 in
  (match source.Scenario.routing with
  | Scenario.Secure_agent agent ->
      Alcotest.(check bool) "spammer slashed" true
        (Credit.get (Manetsec.Secure_routing.credits agent) spammer_addr < -50.0)
  | _ -> Alcotest.fail "expected secure agent")

let test_blackhole_probing_localizes () =
  (* A chain leaves no way around, but probing must still localize the
     black hole and slash it.  This black hole participates honestly in
     route discovery (no forged replies — it gets onto the only route
     legitimately) and silently swallows data and transit probes. *)
  let adversaries = [ (2, { Adversary.blackhole with forge_rrep = false }) ] in
  let params = chain_params ~n:5 ~adversaries () in
  let params =
    {
      params with
      secure_config =
        { params.Scenario.secure_config with use_cache_replies = false };
    }
  in
  let s = Scenario.create params in
  Scenario.start_cbr s ~flows:[ (1, 4) ] ~interval:1.0 ~duration:10.0 ();
  Scenario.run s ~until:60.0;
  Alcotest.(check bool) "probes sent" true (stat s "probe.sent" >= 1);
  Alcotest.(check bool) "suspect found" true (stat s "probe.suspect_found" >= 1);
  let source = Scenario.node s 1 in
  let bh_addr = Scenario.address_of s 2 in
  match source.Scenario.routing with
  | Scenario.Secure_agent agent ->
      Alcotest.(check bool) "black hole slashed" true
        (Credit.get (Manetsec.Secure_routing.credits agent) bh_addr < -50.0)
  | _ -> Alcotest.fail "expected secure agent"

let test_credits_route_around_grayhole () =
  (* Grid with a gray hole on one of the paths: with credits on, the
     source learns to prefer the clean path. *)
  let adversaries = [ (4, Adversary.grayhole 0.8) ] in
  let s = Scenario.create (grid_params ~adversaries ~seed:23 ()) in
  Scenario.start_cbr s ~flows:[ (1, 8) ] ~interval:0.4 ~duration:40.0 ();
  Scenario.run s ~until:120.0;
  let source = Scenario.node s 1 in
  let gh = Scenario.address_of s 4 in
  (match source.Scenario.routing with
  | Scenario.Secure_agent agent ->
      let credits = Manetsec.Secure_routing.credits agent in
      (* Some honest relay must have out-earned the gray hole. *)
      let honest_max =
        List.fold_left
          (fun acc (a, v) -> if Address.equal a gh then acc else max acc v)
          neg_infinity
          (Credit.snapshot credits)
      in
      Alcotest.(check bool) "honest relays out-earn the gray hole" true
        (honest_max > Credit.get credits gh)
  | _ -> Alcotest.fail "expected secure agent");
  Alcotest.(check bool)
    (Printf.sprintf "delivery stays high (%.2f)" (Scenario.delivery_ratio s))
    true
    (Scenario.delivery_ratio s > 0.85)

let test_identity_churn_stays_distrusted () =
  let adversaries = [ (4, Adversary.identity_churner ~every:5.0) ] in
  let s = Scenario.create (grid_params ~adversaries ~seed:31 ()) in
  Scenario.start_cbr s ~flows:[ (1, 8) ] ~interval:0.5 ~duration:30.0 ();
  Scenario.run s ~until:90.0;
  Alcotest.(check bool) "identities churned" true
    (stat s "attack.identity_changes" >= 3);
  (* Every fresh identity starts at the initial (low) credit, so the
     churner never accumulates standing. *)
  let source = Scenario.node s 1 in
  let churner_now = Scenario.address_of s 4 in
  match source.Scenario.routing with
  | Scenario.Secure_agent agent ->
      let credits = Manetsec.Secure_routing.credits agent in
      Alcotest.(check bool) "churner has no standing" true
        (Credit.get credits churner_now <= 0.0)
  | _ -> Alcotest.fail "expected secure agent"

(* --- SRP-style comparison protocol --------------------------------- *)

let test_srp_benign_delivery () =
  let s = Scenario.create (chain_params ~protocol:Scenario.Srp_protocol ()) in
  Scenario.start_cbr s ~flows:[ (1, 4) ] ~interval:0.5 ~duration:10.0 ();
  Scenario.run s ~until:30.0;
  Alcotest.(check (float 0.01)) "full delivery" 1.0 (Scenario.delivery_ratio s);
  Alcotest.(check int) "nothing rejected" 0 (stat s "srp.rrep_rejected")

let test_srp_rejects_forged_rrep () =
  (* The black hole cannot produce the pair MAC, so its forged replies
     die at the source; delivery survives via honest routes. *)
  let adversaries = [ (4, Adversary.blackhole) ] in
  let s =
    Scenario.create (grid_params ~protocol:Scenario.Srp_protocol ~adversaries ())
  in
  Scenario.start_cbr s ~flows:[ (0, 8) ] ~interval:0.5 ~duration:15.0 ();
  Scenario.run s ~until:60.0;
  Alcotest.(check bool) "forgeries rejected" true (stat s "srp.rrep_rejected" >= 1);
  Alcotest.(check bool)
    (Printf.sprintf "delivery survives (%.2f)" (Scenario.delivery_ratio s))
    true
    (Scenario.delivery_ratio s > 0.9)

let test_srp_accepts_impersonation () =
  (* SRP does not verify intermediates: the fabricated hop sails through
     — the gap the paper's per-hop SRR closes. *)
  let params = grid_params ~protocol:Scenario.Srp_protocol () in
  let victim, adversaries = impersonation_adversaries params in
  let s = Scenario.create { params with adversaries } in
  let got = ref None in
  Scenario.discover s ~src:1 ~dst:7 (fun r -> got := Some r);
  Scenario.run s ~until:20.0;
  Alcotest.(check bool) "impersonation attempted" true
    (stat s "attack.impersonations" >= 1);
  match (Scenario.node s 1).Scenario.routing with
  | Scenario.Srp_agent agent ->
      let routes =
        Manetsec.Srp.cached_routes agent ~dst:(Scenario.address_of s 7)
      in
      Alcotest.(check bool) "poisoned route accepted" true
        (List.exists (List.exists (Address.equal victim)) routes)
  | _ -> Alcotest.fail "expected srp agent"

(* ------------------------------------------------------------------ *)
(* Full-stack: bootstrap then routed DNS query                        *)
(* ------------------------------------------------------------------ *)

let test_full_stack_bootstrap_and_query () =
  let s = Scenario.create (chain_params ~n:5 ()) in
  Scenario.bootstrap s;
  (match Scenario.dns_server s with
  | Some dns ->
      Alcotest.(check int) "all four hosts registered" 4
        (List.length (Manetsec.Dns.entries dns))
  | None -> Alcotest.fail "no dns");
  (* Node 4 resolves node2 over a discovered route to the DNS. *)
  let resolved = ref None in
  Scenario.discover s ~src:4 ~dst:0 (fun route ->
      match route with
      | Some route ->
          let client = (Scenario.node s 4).Scenario.dns_client in
          Manetsec.Dns_client.query client ~route ~name:"node2"
            ~callback:(fun r -> resolved := Some r)
      | None -> ());
  Scenario.run s ~until:Float.max_float;
  match !resolved with
  | Some (Some a) ->
      Alcotest.(check bool) "resolved to node2" true
        (Address.equal a (Scenario.address_of s 2))
  | _ -> Alcotest.fail "query failed"

let suites =
  [
    ( "dsr.cache",
      [
        Alcotest.test_case "insert/lookup" `Quick test_cache_insert_lookup;
        Alcotest.test_case "eviction" `Quick test_cache_eviction;
        Alcotest.test_case "remove link" `Quick test_cache_remove_link;
        Alcotest.test_case "remove containing" `Quick test_cache_remove_containing;
      ] );
    ( "secure.credit",
      [
        Alcotest.test_case "reward/slash" `Quick test_credit_reward_slash;
        Alcotest.test_case "rerr threshold" `Quick test_credit_rerr_threshold;
      ] );
    ( "routing.benign",
      [
        Alcotest.test_case "dsr chain delivery" `Quick test_dsr_benign;
        Alcotest.test_case "secure chain delivery" `Quick test_secure_benign;
        Alcotest.test_case "secure wire cost" `Quick test_secure_wire_larger_than_dsr;
        Alcotest.test_case "cache reply (CREP)" `Quick test_cache_reply_crep;
        Alcotest.test_case "rerr on link break" `Quick test_rerr_on_link_break;
        Alcotest.test_case "reroute around break" `Quick test_reroute_around_break;
        Alcotest.test_case "salvaging" `Quick test_salvage_rescues_packets;
        Alcotest.test_case "route shortening" `Quick test_route_shortening;
      ] );
    ( "routing.srp",
      [
        Alcotest.test_case "benign delivery" `Quick test_srp_benign_delivery;
        Alcotest.test_case "rejects forged rrep" `Quick test_srp_rejects_forged_rrep;
        Alcotest.test_case "accepts impersonation" `Quick test_srp_accepts_impersonation;
      ] );
    ( "routing.attacks",
      [
        Alcotest.test_case "blackhole kills plain dsr" `Quick test_blackhole_kills_plain_dsr;
        Alcotest.test_case "blackhole foiled by secure" `Quick test_blackhole_foiled_by_secure;
        Alcotest.test_case "impersonation rejected (secure)" `Quick
          test_impersonation_rejected_by_secure;
        Alcotest.test_case "impersonation succeeds (dsr)" `Quick
          test_impersonation_succeeds_on_plain_dsr;
        Alcotest.test_case "replayed rrep rejected" `Quick test_replayed_rrep_rejected_by_secure;
        Alcotest.test_case "rerr spam detected" `Quick test_rerr_spam_detected_by_secure;
        Alcotest.test_case "blackhole probing localizes" `Quick test_blackhole_probing_localizes;
        Alcotest.test_case "credits route around grayhole" `Quick
          test_credits_route_around_grayhole;
        Alcotest.test_case "identity churn distrusted" `Quick
          test_identity_churn_stays_distrusted;
      ] );
    ( "routing.fullstack",
      [
        Alcotest.test_case "bootstrap then dns query" `Quick
          test_full_stack_bootstrap_and_query;
      ] );
  ]
