module Prng = Manet_crypto.Prng

type t = {
  mutable now : float;
  queue : (unit -> unit) Heap.t;
  rng : Prng.t;
  stats : Stats.t;
  trace : Trace.t;
  mutable processed : int;
}

let create ~seed () =
  {
    now = 0.0;
    queue = Heap.create ();
    rng = Prng.create ~seed;
    stats = Stats.create ();
    trace = Trace.create ();
    processed = 0;
  }

let now t = t.now
let rng t = t.rng
let stats t = t.stats
let trace t = t.trace

let schedule t ~delay f =
  if delay < 0.0 then invalid_arg "Engine.schedule: negative delay";
  Heap.push t.queue (t.now +. delay) f

let schedule_at t ~time f =
  if time < t.now then invalid_arg "Engine.schedule_at: time in the past";
  Heap.push t.queue time f

let run ?until ?max_events t =
  let budget = ref (match max_events with Some n -> n | None -> max_int) in
  let continue = ref true in
  while !continue && !budget > 0 do
    match Heap.peek t.queue with
    | None -> continue := false
    | Some (time, _) -> (
        match until with
        | Some limit when time > limit ->
            (* Leave future events queued; advance the clock to the
               horizon so repeated bounded runs make progress. *)
            t.now <- limit;
            continue := false
        | _ -> (
            match Heap.pop t.queue with
            | None -> continue := false
            | Some (time, f) ->
                t.now <- time;
                t.processed <- t.processed + 1;
                decr budget;
                f ()))
  done

let pending t = Heap.size t.queue
let events_processed t = t.processed

let log t ~node ~event ~detail =
  Trace.log t.trace ~time:t.now ~node ~event ~detail
