(** Typed scenario descriptions and their compiler.

    A scenario file is one [(scenario ...)] S-expression (concrete
    syntax in {!Sexp}, vocabulary in {!Schema}).  {!parse} decodes and
    validates it into {!t}, rejecting malformed input with positioned
    errors; {!execute} compiles {!t} onto the existing
    Engine/Net/Faults/Attacks wiring so that running a file is
    byte-identical to the equivalent hand-coded configuration. *)

type topology =
  | Chain of { spacing : float }
  | Grid of { cols : int; spacing : float }
  | Random of { width : float; height : float }
  | Explicit of { width : float; height : float; positions : (float * float) list }

type mobility =
  | Static
  | Waypoint of { min_speed : float; max_speed : float; pause : float }
  | Walk of { speed : float; turn_interval : float }

type protocol = Secure | Dsr | Srp
type suite = Mock | Rsa of int

type flow = {
  flow_src : int;
  flow_dst : int;
  flow_interval : float;
  flow_size : int;
  flow_start : float option;
      (** absolute start time, clamped to the post-bootstrap clock;
          default: now *)
  flow_duration : float option;  (** default: the scenario duration *)
}

type adversary_kind =
  | Blackhole
  | Grayhole of float  (** drop probability *)
  | Replayer
  | Rerr_spammer of float  (** period *)
  | Identity_churner of float  (** period *)
  | Sleeper

type adversary = { adv_node : int; adv_kind : adversary_kind }

type fault =
  | Crash of { node : int; at : float }
  | Restart of { node : int; at : float }
  | Outage of { node : int; down_from : float; down_until : float }
  | Link_down of { a : int; b : int; at : float }
  | Link_up of { a : int; b : int; at : float }
  | Flap of { a : int; b : int; flap_from : float; flap_until : float; period : float }
  | Partition of { cut_from : float; cut_until : float; members : int list }
  | Degrade of {
      bad_from : float;
      bad_until : float;
      loss_good : float;
      loss_bad : float;
      p_good_to_bad : float;
      p_bad_to_good : float;
    }
  | Churn of {
      churn_seed : int;
      churn_nodes : int list;
      horizon : float;
      mean_up : float;
      mean_down : float;
    }

type export =
  | Stats_csv
  | Audit_jsonl
  | Trace_jsonl
  | Metrics_csv
  | Metrics_prom
  | Report_json

type t = {
  name : string;
  seed : int;
  nodes : int;
  range : float;
  loss : float;
  promiscuous : bool;
  protocol : protocol;
  suite : suite;
  dns : bool;
  topology : topology;
  mobility : mobility;
  bootstrap : float option;  (** DAD stagger, when bootstrap is requested *)
  duration : float;  (** default flow duration *)
  run_until : float option;  (** absolute horizon; default derived from flows *)
  flows : flow list;
  adversaries : adversary list;
  faults : fault list;
  exports : export list;
}

exception Error of { pos : Sexp.pos; msg : string }
(** Validation error, positioned at the offending form. *)

val parse : string -> t
(** Decode and validate one scenario file.  Raises {!Error} on schema
    violations (unknown/duplicate fields, out-of-range values, bad node
    ids, ...) and {!Sexp.Parse_error} on lexical errors. *)

val execute : ?seed:int -> t -> Manetsec.Scenario.t
(** Compile and run the scenario: create the {!Manetsec.Scenario},
    enable capture (and metrics when a metrics export was requested),
    inject the fault plan, bootstrap when requested, start every traffic
    flow in file order, and drive the engine to the horizon.  [seed]
    overrides the file's seed (used by {!sweep}). *)

val meta : t -> seed:int -> (string * Manetsec.Obs_json.t) list
(** The [(scenario, seed)] provenance attached to every export. *)

val stats_csv : Manetsec.Scenario.t -> string
(** The scenario's counters as a two-column CSV, sorted by name. *)

val render_exports :
  t -> seed:int -> Manetsec.Scenario.t -> (export * string * string) list
(** [(kind, filename, contents)] for every export the file requested,
    in file order.  Filenames are derived from the scenario name. *)

val sweep :
  domains:int -> seeds:int list -> t -> Manetsec.Merge.run list
(** Run the scenario once per seed on {!Manetsec.Parallel.map} and
    return the canonically sorted runs ({!Manetsec.Merge.sorted}) —
    byte-deterministic in [domains].  Raises [Invalid_argument] on an
    empty seed list. *)
