(** Host-side DNS operations of §3.2.

    A host that already discovered a route to the DNS server (routing is
    a separate concern) can:

    - resolve a name with a challenge-response query, verifying the
      reply's signature under the pre-distributed DNS public key — this
      is the "stronger security demand" path of §1, where a host checks
      a server's address with the DNS before communicating;
    - change its IP address while keeping its key pair: the DNS
      challenges, the host proves ownership of both old and new CGAs by
      signing [(old, new, ch)], and on acceptance the host rebinds its
      identity and directory entries. *)

module Address = Manet_ipv6.Address
module Messages = Manet_proto.Messages

type t

val create :
  dns_pk:string -> ?dns_address:Address.t -> Manet_proto.Node_ctx.t -> t

val query :
  t ->
  route:Address.t list ->
  name:string ->
  callback:(Address.t option -> unit) ->
  unit
(** [query t ~route ~name ~callback] sends a [Name_query] along [route]
    (intermediates only).  [callback] fires with the verified result —
    or is never called if the reply fails verification or is lost. *)

val request_ip_change :
  t -> route:Address.t list -> callback:(bool -> unit) -> unit
(** Draw a fresh CGA for this node, then run the §3.2 challenge-response
    against the DNS.  On acceptance the node's identity and directory
    bindings switch to the new address before [callback true]. *)

val handle : t -> src:int -> Messages.t -> unit
(** Feed [Name_reply], [Ip_change_challenge] and [Ip_change_ack]
    messages (with forwarding when this node is an intermediate hop). *)
