lib/sim/topology.mli: Manet_crypto
