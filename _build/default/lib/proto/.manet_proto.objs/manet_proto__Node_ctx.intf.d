lib/proto/node_ctx.mli: Directory Identity Manet_crypto Manet_ipv6 Manet_sim Messages
