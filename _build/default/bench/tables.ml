(* T1 / T2: regenerate the paper's two tables from the implementation.

   Table 1 lists the control messages with their parameters; we render
   each message's parameter list (from the typed constructors) together
   with its modelled wire size, which the paper leaves implicit.  Table 2
   is the notation; we print each symbol next to the code location that
   realizes it, as a consistency check that every notational element of
   the paper exists in the implementation. *)

module Messages = Manetsec.Proto.Messages
module Wire = Manetsec.Proto.Wire
module Address = Manetsec.Ipv6.Address

let sample_route k =
  List.init k (fun idx ->
      Address.of_string_exn (Printf.sprintf "fec0::%x" (idx + 1)))

let sample_srr ~sig_size ~pk_size k =
  List.map
    (fun ip ->
      { Messages.ip; sig_ = String.make sig_size 's'; pk = String.make pk_size 'p'; rn = 1L })
    (sample_route k)

(* Representative instances of each Table 1 message at route length
   [hops], used only for size computation. *)
let instances ~sig_size ~pk_size ~hops =
  let a = Address.of_string_exn "fec0::a" in
  let b = Address.of_string_exn "fec0::b" in
  let rr = sample_route hops in
  let sig_ = String.make sig_size 's' in
  let pk = String.make pk_size 'p' in
  [
    ( "AREQ",
      "(SIP, seq, DN, ch, RR)",
      Messages.Areq { sip = a; seq = 1; dn = Some "host"; ch = 7L; rr } );
    ( "AREP",
      "(SIP, RR, [SIP, ch]RSK, RPK, Rrn)",
      Messages.Arep { sip = a; rr; remaining = rr; sig_; pk; rn = 1L } );
    ( "DREP",
      "(SIP, RR, [DN, ch]NSK)",
      Messages.Drep { sip = a; dn = "host"; rr; remaining = rr; sig_ } );
    ( "RREQ",
      "(SIP, DIP, seq, SRR, [SIP, seq]SSK, SPK, Srn)",
      Messages.Rreq
        {
          sip = a;
          dip = b;
          seq = 1;
          srr = sample_srr ~sig_size ~pk_size hops;
          sig_;
          spk = pk;
          srn = 1L;
        } );
    ( "RREP",
      "(SIP, DIP, [SIP, seq, RR]DSK, DPK, Drn)",
      Messages.Rrep { sip = a; dip = b; rr; remaining = rr; sig_; dpk = pk; drn = 1L }
    );
    ( "CREP",
      "(S'IP, SIP, DIP, RR, [S'IP, seq', RR]SSK, SPK, Srn, [SIP, seq, RR]DSK, DPK, Drn)",
      Messages.Crep
        {
          requester = a;
          cacher = b;
          dip = b;
          requester_seq = 1;
          cacher_seq = 1;
          rr_to_cacher = rr;
          rr_to_dest = rr;
          remaining = rr;
          sig_cacher = sig_;
          cacher_pk = pk;
          cacher_rn = 1L;
          sig_dest = sig_;
          dest_pk = pk;
          dest_rn = 1L;
        } );
    ( "RERR",
      "(IIP, I'IP, [IIP, I'IP]ISK, IPK, Irn)",
      Messages.Rerr
        { reporter = a; broken_next = b; dst = a; remaining = rr; sig_; pk; rn = 1L }
    );
  ]

let table1 () =
  Util.heading "Table 1 -- control messages (with modelled wire sizes)";
  let hops = 4 in
  (* RSA-512: 64-byte signatures, 71-byte keys; mock: 32/32. *)
  let rsa = instances ~sig_size:64 ~pk_size:71 ~hops in
  let mock = instances ~sig_size:32 ~pk_size:32 ~hops in
  let plain = instances ~sig_size:0 ~pk_size:0 ~hops in
  let rows =
    List.map2
      (fun (name, params, m_rsa) ((_, _, m_mock), (_, _, m_plain)) ->
        [
          name;
          params;
          Util.i (Wire.size_of m_plain);
          Util.i (Wire.size_of m_mock);
          Util.i (Wire.size_of m_rsa);
        ])
      rsa
      (List.combine mock plain)
  in
  print_endline (Printf.sprintf "(route length %d hops; bytes include a 40-byte IPv6 header)" hops);
  Util.print_table
    ~header:[ "Type"; "Parameters (as in the paper)"; "plain B"; "mock B"; "rsa512 B" ]
    rows

let table2 () =
  Util.heading "Table 2 -- symbols and where the implementation realizes them";
  Util.print_table
    ~header:[ "Symbol"; "Paper meaning"; "Realization" ]
    [
      [ "XIP"; "IP address of node X"; "Ipv6.Address.t (Proto.Identity.address)" ];
      [ "XSK"; "private key of host X"; "Crypto.Suite.keypair (sign closure)" ];
      [ "XPK"; "public key of host X"; "Crypto.Suite.keypair.pk_bytes" ];
      [ "Xrn"; "random number hashing X's IP"; "Proto.Identity.rn (Ipv6.Cga modifier)" ];
      [ "DN"; "domain name"; "Dad.start ?dn / Dns name table" ];
      [ "ch"; "random challenge"; "Messages.Areq.ch (64-bit)" ];
      [ "seq"; "initiator sequence number"; "Messages.Rreq.seq / Areq.seq" ];
      [ "RR"; "route record"; "Messages.Areq.rr / Rrep.rr" ];
      [ "SRR"; "secure route record"; "Messages.srr_entry list (Rreq.srr)" ];
      [ "[msg]XSK"; "msg encrypted by X's private key"; "Crypto.Suite sign over Proto.Codec payloads" ];
      [ "H"; "one-way collision-resistant hash"; "Crypto.Sha256 (Ipv6.Cga.interface_id)" ];
    ]

let run () =
  table1 ();
  table2 ()
