type registry = (string, string) Hashtbl.t
type private_key = { secret : string; pk_bytes : string }

let create_registry () = Hashtbl.create 64

let generate reg g =
  let secret = Prng.bytes g 32 in
  let pk_bytes = Sha256.digest secret in
  Hashtbl.replace reg pk_bytes secret;
  (pk_bytes, { secret; pk_bytes })

let sign sk msg = Hmac.hmac_sha256 ~key:sk.secret msg

let verify reg ~pk_bytes ~msg ~signature =
  match Hashtbl.find_opt reg pk_bytes with
  | None -> false
  | Some secret -> Hmac.verify ~key:secret msg ~tag:signature

let signature_size = 32
let public_key_size = 32
