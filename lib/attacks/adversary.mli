(** Adversary node behaviours — the attack models of §4.

    An adversary owns a {e legitimate} identity (key pair and CGA): the
    protocol never prevents a hostile node from joining, it prevents it
    from lying about {e who it is}.  The adversary participates in the
    protocol through a delegate (the honest DSR or secure agent) and
    deviates according to its {!behavior}:

    - {b black hole} (§3.4/§4): answer route requests with fabricated
      replies claiming a route to any destination, then silently drop the
      data (and transit probes) attracted;
    - {b gray hole}: drop transit data probabilistically;
    - {b impersonation}: append a victim's address to route records
      instead of its own — against the secure protocol the CGA check at
      the destination exposes it;
    - {b replay}: record route replies seen in transit and replay them
      against later discoveries — the sequence-number binding makes them
      stale;
    - {b RERR fabrication}: periodically report link breaks for flows it
      relays; the reports verify (the adversary signs with its own key),
      which is exactly the §3.4 case the credit/frequency tracking
      handles;
    - {b identity churn}: periodically abandon the current CGA for a
      fresh one, resetting any per-address blame. *)

module Address = Manet_ipv6.Address
module Messages = Manet_proto.Messages

type behavior = {
  drop_data : [ `Never | `Always | `Prob of float ];  (** transit data *)
  forge_rrep : bool;
  impersonate : Address.t option;
  replay_rrep : bool;
  rerr_spam_interval : float option;
  churn_interval : float option;
  answer_probes : bool;  (** reply to probes targeting the adversary *)
  drop_probes : bool;  (** drop probes in transit *)
  mute : bool;  (** process nothing at all (a victim asleep or jammed) *)
}

(* manetsem: allow dead-export — public API: the documented base
   behavior callers override to build custom adversaries. *)
val honest : behavior
(** No deviation — useful as a base to override. *)

val sleeper : behavior
(** A node that processes no routing traffic at all; used to prove that a
    route naming it is fabricated. *)

val blackhole : behavior
(** [forge_rrep], drop all transit data and probes, answer own probes. *)

val grayhole : float -> behavior
(** Drop transit data with the given probability. *)

val impersonator : Address.t -> behavior
val replayer : behavior
val rerr_spammer : every:float -> behavior
val identity_churner : every:float -> behavior

type t

val create :
  ?behavior:behavior ->
  secure:bool ->
  Manet_proto.Node_ctx.t ->
  delegate:(src:int -> Messages.t -> unit) ->
  t
(** [secure] selects how forgeries are built (the secure wire format
    carries signature fields the baseline's does not). *)

val start : t -> unit
(** Arm the periodic behaviours (RERR spam, identity churn). *)

val handle : t -> src:int -> Messages.t -> unit

(** Stats written under [attack.*]: [attack.data_dropped],
    [attack.rrep_forged], [attack.impersonations], [attack.replayed],
    [attack.rerr_forged], [attack.identity_changes],
    [attack.probes_dropped]. *)
