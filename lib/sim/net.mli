(** The simulated radio: unit-disk broadcast medium with loss, delay and
    MAC-level retry for unicast frames.

    Nodes are integer ids into a {!Topology}.  Each node registers one
    receive handler; the network invokes it with the link-layer sender.
    Messages are an arbitrary type ['msg]; their wire size is supplied per
    send so that the overhead experiments can account bytes honestly
    without the simulator serializing anything.

    Semantics:
    - [broadcast] reaches every node currently within range, each
      delivery independently subject to the loss probability.
    - [unicast] models a MAC with link-level acknowledgements: up to
      [1 + mac_retries] attempts, each evaluated at its own transmission
      time so mid-retry faults are honoured; if every attempt is lost or
      the target is out of range or down, the sender's [on_fail]
      callback fires after the attempts' worth of time — this is how
      DSR's route maintenance learns a link broke.  A sender that
      crashes mid-retry simply falls silent: no further transmissions
      and no [on_fail].

    Fault state (driven by [lib/faults]): individual links can be
    administratively severed with {!set_link}, the network can be cut in
    two with {!set_partition}, and the loss process can be swapped at
    runtime with {!set_channel} — the default {!Uniform} channel
    reproduces the classic i.i.d. loss, while {!Gilbert_elliott} keeps a
    per-link two-state Markov chain for bursty loss. *)

type 'msg t

type channel =
  | Uniform of { loss : float }  (** i.i.d. per-frame loss *)
  | Gilbert_elliott of {
      p_good_to_bad : float;  (** per-frame P(good -> bad) *)
      p_bad_to_good : float;  (** per-frame P(bad -> good) *)
      loss_good : float;  (** loss probability in the good state *)
      loss_bad : float;  (** loss probability in the bad state *)
    }
      (** Two-state bursty-loss channel; state is kept per (unordered)
          link and advances once per frame crossing that link.  The
          stationary probability of the bad state is
          [p_good_to_bad /. (p_good_to_bad +. p_bad_to_good)]. *)

type config = {
  range : float;  (** unit-disk radio range *)
  loss : float;  (** per-delivery loss probability in [0,1) *)
  bit_rate : float;  (** bits per second; sets transmission delay *)
  prop_delay : float;  (** per-hop propagation delay, seconds *)
  jitter : float;  (** uniform extra delivery delay, seconds *)
  mac_retries : int;  (** extra unicast attempts after the first *)
  promiscuous : bool;
      (** neighbours overhear unicast frames addressed to others — the
          radio mode DSR's automatic route shortening relies on *)
}

val default_config : config
(** 250 m range, no loss, 2 Mb/s, 5 us propagation, 0.1 ms jitter,
    3 retries, promiscuous off. *)

val create : ?config:config -> Engine.t -> Topology.t -> 'msg t

val topology : 'msg t -> Topology.t
val engine : 'msg t -> Engine.t

val set_handler : 'msg t -> int -> (src:int -> 'msg -> unit) -> unit
(** Replace node [i]'s receive handler (default: drop). *)

val set_down : 'msg t -> int -> bool -> unit
(** A down node neither sends, receives, nor acknowledges. *)

val is_down : 'msg t -> int -> bool

val set_link : 'msg t -> int -> int -> up:bool -> unit
(** Administratively sever ([up:false]) or restore ([up:true]) the
    (unordered) link between two nodes.  A severed link blocks frames in
    both directions regardless of radio range.  Raises [Invalid_argument]
    on a self-link. *)

val link_up : 'msg t -> int -> int -> bool
(** Whether the link is neither severed nor cut by a partition.  Does
    not consider radio range or node down-state. *)

val set_partition : 'msg t -> int list -> unit
(** Cut the network in two: the listed nodes on one side, everyone else
    on the other.  Frames only cross between same-side nodes.  Replaces
    any previous partition.  Raises [Invalid_argument] on a bad index. *)

val clear_partition : 'msg t -> unit
(** Heal the partition (severed links from {!set_link} stay severed). *)

val set_channel : 'msg t -> channel -> unit
(** Swap the loss process.  Gilbert–Elliott per-link state persists
    across swaps back and forth. *)


val broadcast : 'msg t -> src:int -> size:int -> 'msg -> unit
(** One radio transmission of [size] bytes to all current neighbours. *)

val unicast :
  'msg t -> src:int -> dst:int -> size:int -> ?on_fail:(unit -> unit) ->
  'msg -> unit
(** Link-layer unicast to a (supposed) neighbour. *)

val bytes_sent : 'msg t -> int
(** Total bytes put on the air, including retries. *)

val transmissions : 'msg t -> int
(** Number of radio transmissions (retries counted). *)

val deliveries : 'msg t -> int
val unicast_failures : 'msg t -> int

val scan_hist : 'msg t -> Hist.t
(** Candidate positions examined per neighbour lookup (one sample per
    broadcast or promiscuous overhear scan).  Today the lookup walks the
    whole topology, so the samples quantify the O(N) cost a spatial
    index would remove.  Deterministic; read by the perf registry. *)

val fanout_hist : 'msg t -> Hist.t
(** Deliveries actually scheduled per broadcast (after down/link/loss
    filtering).  Deterministic; read by the perf registry. *)

val retries : 'msg t -> int
(** MAC-level unicast retransmission attempts (beyond each first
    attempt).  Deterministic; read by the perf registry. *)

val reset_counters : 'msg t -> unit
