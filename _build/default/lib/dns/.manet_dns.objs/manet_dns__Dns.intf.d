lib/dns/dns.mli: Manet_dad Manet_ipv6 Manet_proto
