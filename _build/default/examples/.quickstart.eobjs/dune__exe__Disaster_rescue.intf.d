examples/disaster_rescue.mli:
