(** Causal telemetry: typed spans over the simulated protocol stack.

    A {e span} is a named interval of simulated time attributed to one
    node — an AREQ flood attempt, a whole route discovery, a node
    outage.  Spans form a tree through their [parent] field, and the
    {e correlation registry} lets a span started on one node become the
    parent of a span started on another (the responder of an AREQ flood
    parents its AREP span to the initiator's flood span by looking up
    the flood's correlation key).  The result is a queryable causal
    tree: every AREP/RREP/CREP/DREP traces back to the flood that
    caused it, with hop notes and a typed outcome.

    One [Obs.t] is shared by every node of a scenario (it lives in
    [Node_ctx]).  All recorded data is a function of the deterministic
    sim domain — simulated clock, seeded PRNG — so {!to_jsonl} is
    byte-identical across replays of the same seed.  Wall-clock
    profiling data deliberately lives elsewhere ({!Manet_sim.Engine}
    profile) and never enters this export. *)

module Engine = Manet_sim.Engine

val schema : string
val schema_version : int
(** Schema identifier and version stamped into the JSONL header line.
    The version bumps on any change to line shapes or field meanings;
    consumers must check it (see DESIGN.md "Observability"). *)

type outcome = Ok | Timeout | Rejected of string | Failed of string

val outcome_label : outcome -> string
(** ["ok"] / ["timeout"] / ["rejected"] / ["failed"]. *)

val outcome_reason : outcome -> string option

type span = {
  id : int;  (** dense, starting at 1, in start order *)
  parent : int option;
  kind : string;  (** e.g. ["dad.flood"], ["route.discovery"] *)
  node : int;  (** owning node, -1 for global *)
  detail : string;
  start_time : float;
  mutable end_time : float option;  (** [None] while open *)
  mutable outcome : outcome option;
  mutable notes : (float * int * string) list;
      (** newest first; [(time, node, text)] *)
}

type event = { time : float; node : int; name : string; detail : string }

type t

val create : ?event_capacity:int -> Engine.t -> t
(** One per scenario, shared by all nodes.  [event_capacity] caps the
    JSONL event sink (default 200_000, oldest dropped first).  Also
    creates the scenario's {!Audit} stream and windowed {!Metrics}
    engine and wires every audit event into the metrics (under
    ["audit.<kind>"] for the emitter, ["accused.<kind>"] for the
    subject). *)

val audit : t -> Audit.t
(** The scenario-wide security audit stream. *)

val metrics : t -> Metrics.t
(** The scenario-wide windowed metrics engine (disabled by default). *)

val perf : t -> Perf.t
(** The scenario-wide performance telemetry registry (always
    collecting; its deterministic counters perturb nothing). *)

val timeline : t -> Timeline.t
(** The scenario-wide time-resolved telemetry registry.  Created
    enabled; it records nothing until the scenario installs it as the
    engine's per-event observer and attaches its counter sources. *)

val flood : t -> Flood.t
(** The scenario-wide flood-provenance registry (always collecting;
    counter-pure like {!perf}). *)

(** {1 Spans} *)

val start :
  t -> ?parent:int -> kind:string -> node:int -> ?detail:string -> unit -> int
(** Open a span at the current simulated time; returns its id. *)

val finish : t -> int -> outcome -> unit
(** Close a span with its outcome.  Idempotent: only the first call
    takes effect, so a discovery resolved by a reply can safely race its
    own timeout closure. *)

val note : t -> int -> node:int -> string -> unit
(** Attach a timestamped annotation (e.g. a relay hop) to an open or
    closed span. *)

val span_count : t -> int

val spans : t -> span list
(** All spans in id (= start) order. *)

(** {1 Correlation registry} *)

val correlate : t -> string -> int -> unit
(** Bind a protocol-level key (flood id, discovery id, outage id) to a
    span so other nodes can parent to it.  Rebinding replaces. *)

val lookup : t -> string -> int option

(** {1 Event sink} *)

val log : t -> node:int -> event:string -> detail:string -> unit
(** Fan out one telemetry event to the sinks: always to the engine's
    ring-buffer {!Manet_sim.Trace} (subject to its enable switch), and
    to the JSONL event sink when capture is on. *)

val set_capture : t -> bool -> unit
(** JSONL event capture; default off (spans are always recorded). *)

val events : t -> event list
val events_dropped : t -> int

(** {1 Export} *)

val to_jsonl : ?meta:(string * Json.t) list -> t -> string
(** Schema-versioned JSONL: one header object (extended with [meta],
    e.g. the run seed), then one line per span in id order, then one
    line per captured event in log order.  Byte-identical across
    replays of the same seed and plan. *)
