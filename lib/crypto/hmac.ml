let block_size = 64

(* HMAC = H((key xor opad) || H((key xor ipad) || msg)), fed to the
   streaming SHA-256 contexts so neither padded-key block is ever
   concatenated with the message: the only per-call allocation besides
   the two digest contexts is one 64-byte working buffer, reused for
   both pads (ipad byte xor opad byte = 0x36 lxor 0x5c = 0x6a). *)
let hmac_sha256 ~key msg =
  let key = if String.length key > block_size then Sha256.digest key else key in
  (* manethot: allow hot-alloc — the one 64-byte pad buffer per HMAC;
     sharing it across calls would be cross-domain mutable state. *)
  let b = Bytes.make block_size '\x36' in
  for i = 0 to String.length key - 1 do
    Bytes.set b i (Char.chr (Char.code (String.unsafe_get key i) lxor 0x36))
  done;
  let inner = Sha256.init () in
  Sha256.update inner (Bytes.unsafe_to_string b);
  Sha256.update inner msg;
  let inner_digest = Sha256.finalize inner in
  for i = 0 to block_size - 1 do
    Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x6a))
  done;
  let outer = Sha256.init () in
  Sha256.update outer (Bytes.unsafe_to_string b);
  Sha256.update outer inner_digest;
  Sha256.finalize outer

(* Constant-time comparison: fold the xor of every byte pair into an
   accumulator carried as a plain int argument. *)
let rec ct_diff a b i acc =
  if i < 0 then acc
  else
    ct_diff a b (i - 1)
      (acc
      lor (Char.code (String.unsafe_get a i)
          lxor Char.code (String.unsafe_get b i)))

let verify ~key msg ~tag =
  let expected = hmac_sha256 ~key msg in
  String.length expected = String.length tag
  && ct_diff expected tag (String.length expected - 1) 0 = 0
