lib/sim/engine.ml: Heap Manet_crypto Stats Trace
