(* The `audit` bench section: quantify the security audit stream's cost
   and prove it cannot perturb a run.

   The same blackhole scenario (the E5 grid: node 5 is the unique
   shortest relay between the endpoints of flow 0<->10) runs twice —
   once with audit retention off and metrics disabled, once with both
   on.  Audit emission never draws randomness, never schedules engine
   events and never touches protocol state, and metrics derive windows
   lazily from Engine.now, so the two runs' span traces must be
   byte-identical; the engine's own wall-clock accounting bounds the
   observability overhead in events/sec. *)

module Scenario = Manetsec.Scenario
module Engine = Manetsec.Sim.Engine
module Obs = Manetsec.Obs
module Audit = Manetsec.Audit
module Metrics = Manetsec.Metrics
module Detector = Manetsec.Detector
module Adversary = Manetsec.Adversary
module Json = Manetsec.Obs_json

let seed = 3
let audit_file = "bench-audit.jsonl"

let write_file path contents =
  let oc = open_out_bin path in
  output_string oc contents;
  close_out oc

let params =
  {
    Scenario.default_params with
    n = 12;
    seed;
    range = 150.0;
    topology = Scenario.Grid { cols = 4; spacing = 100.0 };
    adversaries = [ (5, { Adversary.blackhole with forge_rrep = false }) ];
  }

(* One full run; [observe] turns audit retention and windowed metrics
   on.  Emission itself has no switch — the detector and the legacy
   counters see every event either way. *)
let run_once ~observe () =
  let s = Scenario.create params in
  let obs = Scenario.obs s in
  Obs.set_capture obs true;
  Audit.set_recording (Obs.audit obs) observe;
  Metrics.set_enabled (Obs.metrics obs) observe;
  Engine.set_profiling (Scenario.engine s) true;
  Scenario.start_cbr s ~flows:[ (0, 10); (10, 0) ] ~interval:0.25
    ~duration:60.0 ();
  Scenario.run s ~until:80.0;
  s

let run () =
  Util.heading "AUDIT: security-event stream overhead and non-perturbation";
  let off = run_once ~observe:false () in
  let on = run_once ~observe:true () in
  let audit_of s = Obs.audit (Scenario.obs s) in
  Util.subheading "non-perturbation";
  let trace s = Obs.to_jsonl ~meta:[ ("seed", Json.Int seed) ] (Scenario.obs s) in
  let identical = String.equal (trace off) (trace on) in
  Printf.printf "span traces byte-identical (recording off vs on): %b\n"
    identical;
  if not identical then failwith "audit layer perturbed the simulation";
  Printf.printf "events emitted in both runs: %d = %d\n"
    (Audit.count (audit_of off))
    (Audit.count (audit_of on));
  assert (Audit.count (audit_of off) = Audit.count (audit_of on));
  (* Retention switch: the off run stored nothing, the on run stored
     everything (capacity permitting). *)
  assert (Audit.events (audit_of off) = []);
  assert (Audit.recording (audit_of on));
  Util.subheading "overhead";
  let rate s = Engine.events_per_sec (Scenario.engine s) in
  Printf.printf
    "engine rate: %.0f events/s observability off, %.0f events/s on (%+.1f%%)\n"
    (rate off) (rate on)
    (100.0 *. ((rate on /. rate off) -. 1.0));
  Printf.printf "audit stream: %d events retained, %d dropped\n"
    (List.length (Audit.events (audit_of on)))
    (Audit.dropped (audit_of on));
  Util.subheading "event mix";
  Util.print_table
    ~header:[ "kind"; "events"; "windowed total" ]
    (List.map
       (fun (k, c) ->
         [
           Audit.kind_label k;
           Util.i c;
           Util.i
             (Metrics.counter_total
                (Obs.metrics (Scenario.obs on))
                ~node:Metrics.global_node
                ("audit." ^ Audit.kind_label k));
         ])
       (Audit.counts_by_kind (Audit.events (audit_of on))));
  Util.subheading "detector verdicts against ground truth";
  print_string (Detector.render_verdicts (Scenario.detector on));
  print_string
    (Detector.render_assessment
       (Detector.score (Scenario.detector on)
          ~truth:(Scenario.adversary_ids on)));
  write_file audit_file
    (Audit.to_jsonl ~meta:[ ("seed", Json.Int seed) ] (audit_of on));
  Printf.printf "wrote %s\n" audit_file
