(** Black-hole behaviour against AODV / SAODV.

    The AODV black hole answers any overheard route request with a
    fabricated route reply claiming a very fresh destination sequence
    number at one hop — in plain AODV the freshness rule makes that
    reply beat every honest one.  Against SAODV the forged reply cannot
    carry the destination's signature and is rejected.  Either way the
    adversary silently drops the data it attracts; unlike the secure-DSR
    case there is no per-hop identity for the victimized source to blame
    (experiment E7). *)

module Address = Manet_ipv6.Address

type behavior = {
  forge_rrep : bool;
  drop_data : bool;
}

val blackhole : behavior
val silent_dropper : behavior
(** Participates honestly in discovery, drops transit data. *)

type t

val create :
  ?behavior:behavior ->
  delegate:Manet_aodv.Aodv.t ->
  rng:Manet_crypto.Prng.t ->
  unit ->
  t
(** Wraps the honest agent (which supplies identity, tables and the
    radio); deviations are implemented by interception. *)

val handle : t -> src:int -> Manet_aodv.Aodv.msg -> unit

(** Stats: [attack.rrep_forged], [attack.data_dropped]. *)
