(** The performance telemetry registry: where time, allocation and
    protocol cost go inside a run.

    One [Perf.t] rides alongside each scenario's {!Obs.t}.  It
    aggregates, per run:

    - per-event-label counts (from the engine's always-on accounting)
      and the sampled scheduler-occupancy series;
    - net-layer cost: neighbour-scan lengths per transmission, delivery
      fan-out and MAC retry counts (from {!Manet_sim.Net});
    - crypto-op cost: sign/verify counts and SHA-256 compression blocks,
      attributed per message kind and per node via {!with_attribution}
      around the reception dispatch and a {!Manet_crypto.Suite.set_on_op}
      subscription;
    - GC/alloc telemetry: [Gc.quick_stat] deltas per named phase.

    Exports split in two, following the Audit/Metrics precedent:

    - the {e deterministic} section ({!deterministic_json},
      {!det_jsonl}) holds only pure functions of the sim domain —
      counts, scan lengths, queue depths, per-phase event counts.  It
      is byte-identical across replays of the same seed and across
      sweep domain counts, and is gated by the CI determinism cmp.
    - the {e wall-clock} section ({!wall_json}) holds host timings and
      every [Gc.quick_stat]-derived quantity (allocation words,
      collection counts, promotion volumes, heap sizes) and is
      explicitly excluded from determinism gates.

    Allocation volume ([minor_words] deltas) lives in the wall-clock
    section even though OCaml counts words {e allocated}: empirically
    the counter drifts by a few words between same-seed replays on the
    multicore runtime, because the runtime's own internal allocations
    (GC bookkeeping, domain machinery) are charged to it too.  Only the
    per-phase event counts — a pure function of the event sequence —
    stay deterministic. *)

module Engine = Manet_sim.Engine
module Net = Manet_sim.Net
module Hist = Manet_sim.Hist
module Suite = Manet_crypto.Suite

val schema : string
val schema_version : int

val no_kind : string
(** The message-kind bucket charged for crypto ops performed outside any
    {!with_attribution} scope (node-initiated sends, timer work). *)

type t

val create : unit -> t

(** {1 Generic deterministic counters} *)

val incr : ?n:int -> t -> string -> unit
(** Bump a named counter (default 1). *)

val counters : t -> (string * int) list
(** All counters, sorted by name. *)

(** {1 Crypto attribution} *)

val with_attribution : t -> kind:string -> node:int -> (unit -> 'a) -> 'a
(** [with_attribution t ~kind ~node f] runs [f] with crypto ops
    attributed to message kind [kind] on node [node] (exception-safe,
    restores the previous attribution).  The scenario wraps its per-node
    reception dispatch in this. *)

val crypto_op : t -> op:Suite.op -> bytes:int -> unit
(** Record one suite operation under the current attribution.  Normally
    invoked via the {!subscribe} hook rather than directly. *)

val subscribe : t -> Suite.t -> unit
(** Install this registry as the suite's per-operation subscriber. *)

val kind_totals : t -> (string * (int * int * int)) list
(** Per message kind [(signs, verifies, hash_blocks)] totals, sorted by
    kind.  Deterministic; the timeline layer diffs these at bucket
    boundaries to resolve crypto cost over sim time. *)

(** {1 GC phase accounting} *)

val phase : t -> engine:Engine.t -> string -> (unit -> 'a) -> 'a
(** [phase t ~engine name f] runs [f] and charges the [Gc.quick_stat]
    and processed-event deltas to phase [name] (accumulating across
    repeated calls; exception-safe). *)

(** {1 Export} *)

val deterministic_json :
  ?extra_det:(string * Json.t) list ->
  t -> engine:Engine.t -> net:_ Net.t -> suite:Suite.t -> Json.t
(** The deterministic section: byte-identical across same-seed replays
    and domain counts.  [extra_det] members (e.g. the flood-provenance
    summary) are appended verbatim and must obey the same purity
    contract. *)

val wall_json : t -> engine:Engine.t -> Json.t
(** The wall-clock section: host timings and GC scheduling artefacts;
    never byte-stable, never determinism-gated. *)

val to_json :
  ?meta:(string * Json.t) list ->
  ?extra_det:(string * Json.t) list ->
  t -> engine:Engine.t -> net:_ Net.t -> suite:Suite.t -> Json.t
(** The full schema-versioned export: header fields, [meta], then
    ["deterministic"] and ["wall_clock"] members. *)

val det_jsonl :
  ?meta:(string * Json.t) list ->
  ?extra_det:(string * Json.t) list ->
  t -> engine:Engine.t -> net:_ Net.t -> suite:Suite.t -> string
(** The sweep-mergeable form: one schema header line, then one record
    line carrying only the deterministic section — the ["perf"] stream
    {!Merge.stream_jsonl} folds across runs. *)
