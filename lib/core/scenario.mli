(** Scenario orchestration: build a whole simulated MANET in one call.

    A scenario wires together everything the lower layers provide — the
    event engine, a topology with optional mobility, the lossy radio, one
    identity per node, the DAD bootstrapping agents, the DNS server on
    node 0, a routing agent per node (plain DSR or the paper's secure
    protocol), and any adversaries — and exposes the traffic generators
    and metric readers the experiments and examples need.

    Typical use:
    {[
      let s = Scenario.create { Scenario.default_params with n = 50 } in
      Scenario.bootstrap s;                     (* secure DAD for all   *)
      Scenario.start_cbr s ~flows:[ (3, 17) ] ~interval:0.25 ~duration:60.0 ();
      Scenario.run s ~until:120.0;
      Printf.printf "delivery %.2f\n" (Scenario.delivery_ratio s)
    ]} *)

module Address = Manet_ipv6.Address
module Engine = Manet_sim.Engine
module Stats = Manet_sim.Stats
module Mobility = Manet_sim.Mobility
module Identity = Manet_proto.Identity

type topology_spec =
  | Chain of { spacing : float }
  | Grid of { cols : int; spacing : float }
  | Random of { width : float; height : float }
      (** resampled until connected at the configured radio range *)
  | Explicit of { width : float; height : float; positions : (float * float) list }
      (** one position per node, in node order; {!create} raises
          [Invalid_argument] unless exactly [n] positions are given *)

type suite_spec =
  | Mock_suite  (** idealized signatures; large sweeps *)
  | Rsa_suite of int  (** real RSA with the given modulus bits *)

type protocol =
  | Plain_dsr
  | Secure
  | Srp_protocol
      (** SRP-style comparison: end-to-end MACs under pre-established
          pairwise associations, no per-hop verification *)

type params = {
  n : int;  (** node count, including the DNS server at node 0 *)
  seed : int;
  range : float;
  loss : float;
  promiscuous : bool;  (** radios overhear unicasts (route shortening) *)
  topology : topology_spec;
  mobility : Mobility.model;
  protocol : protocol;
  suite : suite_spec;
  with_dns : bool;  (** host the DNS server on node 0 *)
  adversaries : (int * Manet_attacks.Adversary.behavior) list;
      (** node index to behaviour; indices must not be 0 when [with_dns] *)
  dsr_config : Manet_dsr.Dsr.config;
  secure_config : Manet_secure.Secure_routing.config;
  dad_config : Manet_dad.Dad.config;
}

val default_params : params
(** 20 nodes, seed 1, 250 range, no loss, random 1000x1000 field, static,
    secure protocol, mock suite, DNS on node 0, no adversaries. *)

type routing_agent =
  | Dsr_agent of Manet_dsr.Dsr.t
  | Secure_agent of Manet_secure.Secure_routing.t
  | Srp_agent of Manet_secure.Srp.t

type node = {
  index : int;
  identity : Identity.t;
  ctx : Manet_proto.Node_ctx.t;
  dad : Manet_dad.Dad.t;
  dns_client : Manet_dns.Client.t;
  routing : routing_agent;
  adversary : Manet_attacks.Adversary.t option;
}

type t

val create : params -> t

val engine : t -> Engine.t
val net : t -> Manet_proto.Messages.t Manet_sim.Net.t
(** The shared radio — exposed for failure injection (downing nodes) in
    tests and experiments. *)

val stats : t -> Stats.t

val obs : t -> Manet_obs.Obs.t
(** The scenario-wide telemetry handle.  One shared handle is passed to
    every node context, so causal spans cross node boundaries: an AREP
    answered on node [j] parents to the AREQ flood opened on node [i],
    and a re-DAD after {!inject}ed churn parents to the outage span that
    forced it.  Use {!Manet_obs.Obs.to_jsonl} or
    {!Manet_obs.Report.run_report} to export it. *)

val detector : t -> Manet_obs.Detector.t
(** The online misbehaviour detector, subscribed to the scenario's audit
    stream from creation: by the time {!run} returns, its verdicts cover
    every security event of the run.  Score them against
    {!adversary_ids} with {!Manet_obs.Detector.score}. *)

val adversary_ids : t -> int list
(** Ground truth: the node indices given hostile behaviours in
    {!params}[.adversaries], sorted, deduplicated. *)

val params : t -> params
val node : t -> int -> node
val nodes : t -> node array
val dns_server : t -> Manet_dns.Dns.t option
(* manetsem: allow dead-export — public API: exposes the shared crypto
   suite so callers can read sign/verify counters directly. *)
val suite : t -> Manet_crypto.Suite.t

val address_of : t -> int -> Address.t

val bootstrap : ?stagger:float -> t -> unit
(** Run secure DAD for every non-DNS node, started [stagger] seconds
    apart (default 0.5), then run the engine until the network is quiet.
    Also starts mobility and adversary timers. *)

(* manetsem: allow dead-export — public API: documented lifecycle
   entry point for experiments that skip bootstrap. *)
val start : t -> unit
(** Start mobility and adversary timers without DAD (addresses were
    assigned at creation); for experiments that skip bootstrap. *)

val send : t -> src:int -> dst:int -> ?size:int -> unit -> unit
(** Offer one data packet from node [src] to node [dst]'s current
    address. *)

val start_cbr :
  t ->
  flows:(int * int) list ->
  interval:float ->
  ?size:int ->
  ?start_at:float ->
  duration:float ->
  unit ->
  unit
(** Constant-bit-rate flows: each (src, dst) pair offers a packet every
    [interval] seconds from [start_at] (default: now) for [duration]. *)

val discover : t -> src:int -> dst:int -> (Address.t list option -> unit) -> unit

val run : ?until:float -> t -> unit
(** Drive the engine ([until] is absolute simulated time). *)

val inject : t -> Manet_faults.Faults.plan -> unit
(** Schedule a fault plan against this scenario.  Crashes down the radio
    and abort any in-flight DAD; restarts bring the radio back and
    re-run the secure DAD bootstrap with the node's existing identity
    (same CGA address and domain name, so the DNS sees a benign
    re-registration).  Link, partition, and channel events act on the
    shared {!net}.  Raises [Invalid_argument] if the plan names a node
    outside the scenario, or crashes/restarts node 0 while it hosts the
    DNS. *)

(* --- metric readers ---------------------------------------------------- *)

val delivery_ratio : t -> float
(** delivered / offered; 1.0 when nothing was offered. *)

val ack_ratio : t -> float

val control_bytes : t -> int
(** Bytes of all non-data, non-ack transmissions (route discovery,
    replies, errors, probes, bootstrap, DNS). *)

val control_packets : t -> int

val crypto_ops : t -> int * int
(** (signatures made, verifications performed) across all nodes. *)

val mean_latency : t -> float option
(** Mean one-way data latency in seconds. *)

(* --- perf export -------------------------------------------------------- *)

val perf_json : ?meta:(string * Manet_obs.Json.t) list -> t -> Manet_obs.Json.t
(** The scenario's full performance export
    ({!Manet_obs.Perf.to_json}): schema header, [meta], a
    byte-deterministic section (including the ["floods"] provenance
    summary) and a wall-clock section. *)

val perf_det_jsonl : ?meta:(string * Manet_obs.Json.t) list -> t -> string
(** The sweep-mergeable deterministic-only perf stream
    ({!Manet_obs.Perf.det_jsonl}), with the ["floods"] summary
    appended; byte-identical across same-seed replays and domain
    counts. *)

val timeline_jsonl : ?meta:(string * Manet_obs.Json.t) list -> t -> string
(** The scenario's time-resolved telemetry export
    ({!Manet_obs.Timeline.to_jsonl}): sim-time-bucketed series plus the
    per-flood provenance tail; byte-identical across same-seed replays
    and domain counts. *)

