(* Shared analyzer CLI driver.  Every analyzer executable is the same
   program modulo its tool name and analyze function: walk the source
   roots, run the rules, then either write the baseline or diff against
   it, print fresh findings and stale keys, and exit 1 on either.  See
   driver.mli. *)

let rec walk acc path =
  if Sys.is_directory path then
    Sys.readdir path |> Array.to_list |> List.sort compare
    |> List.filter (fun n -> n <> "_build" && n.[0] <> '.')
    |> List.fold_left (fun acc n -> walk acc (Filename.concat path n)) acc
  else if
    Filename.check_suffix path ".ml" || Filename.check_suffix path ".mli"
  then path :: acc
  else acc

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let gather roots =
  roots
  |> List.filter Sys.file_exists
  |> List.fold_left walk []
  |> List.sort compare
  |> List.map (fun p -> (p, read_file p))

let run ~tool ?(default_roots = [ "lib" ]) ?default_uses ?(options = [])
    ~analyze () =
  let roots = ref [] in
  let uses = ref [] in
  let baseline_path = ref ("tools/" ^ tool ^ "/baseline") in
  let write_baseline = ref false in
  let json_path = ref None in
  let rec parse_args = function
    | [] -> ()
    | "--baseline" :: p :: rest ->
        baseline_path := p;
        parse_args rest
    | "--write-baseline" :: rest ->
        write_baseline := true;
        parse_args rest
    | "--json" :: p :: rest ->
        json_path := Some p;
        parse_args rest
    | "--uses" :: d :: rest when default_uses <> None ->
        uses := !uses @ [ d ];
        parse_args rest
    | flag :: v :: rest when List.mem_assoc flag options ->
        List.assoc flag options := v;
        parse_args rest
    | arg :: rest ->
        roots := !roots @ [ arg ];
        parse_args rest
  in
  parse_args (List.tl (Array.to_list Sys.argv));
  let roots = if !roots = [] then default_roots else !roots in
  let uses =
    match default_uses with
    | None -> []
    | Some d -> if !uses = [] then d else !uses
  in
  let findings = analyze ~uses:(gather uses) (gather roots) in
  if !write_baseline then begin
    let oc = open_out !baseline_path in
    output_string oc (Common.render_baseline ~tool findings);
    close_out oc;
    Printf.printf "%s: wrote %d baseline entr%s to %s\n" tool
      (List.length findings)
      (if List.length findings = 1 then "y" else "ies")
      !baseline_path
  end
  else begin
    let baseline =
      if Sys.file_exists !baseline_path then
        Common.parse_baseline (read_file !baseline_path)
      else []
    in
    (match !json_path with
    | Some p ->
        let oc = open_out p in
        output_string oc (Common.to_json ~baseline findings);
        close_out oc
    | None -> ());
    let fresh, stale = Common.diff_baseline ~baseline findings in
    List.iter (fun f -> Format.printf "%a@." Common.pp_finding f) fresh;
    List.iter
      (fun k ->
        Printf.printf
          "%s: stale baseline entry (no longer fires); remove it or rerun \
           --write-baseline\n"
          k)
      stale;
    if fresh <> [] || stale <> [] then begin
      Printf.printf "%s: %d new finding(s), %d stale baseline entr%s\n" tool
        (List.length fresh) (List.length stale)
        (if List.length stale = 1 then "y" else "ies");
      exit 1
    end
  end
