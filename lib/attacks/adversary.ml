module Address = Manet_ipv6.Address
module Prng = Manet_crypto.Prng
module Messages = Manet_proto.Messages
module Codec = Manet_proto.Codec
module Ctx = Manet_proto.Node_ctx
module Directory = Manet_proto.Directory
module Identity = Manet_proto.Identity
module Audit = Manet_obs.Audit
module Engine = Manet_sim.Engine

type behavior = {
  drop_data : [ `Never | `Always | `Prob of float ];
  forge_rrep : bool;
  impersonate : Address.t option;
  replay_rrep : bool;
  rerr_spam_interval : float option;
  churn_interval : float option;
  answer_probes : bool;
  drop_probes : bool;
  mute : bool;
}

let honest =
  {
    drop_data = `Never;
    forge_rrep = false;
    impersonate = None;
    replay_rrep = false;
    rerr_spam_interval = None;
    churn_interval = None;
    answer_probes = true;
    drop_probes = false;
    mute = false;
  }

let sleeper = { honest with mute = true }

let blackhole =
  { honest with drop_data = `Always; forge_rrep = true; drop_probes = true }

let grayhole p = { honest with drop_data = `Prob p }
let impersonator victim = { honest with impersonate = Some victim }
let replayer = { honest with replay_rrep = true }
let rerr_spammer ~every = { honest with rerr_spam_interval = Some every }

let identity_churner ~every =
  { honest with churn_interval = Some every; drop_data = `Always }

type captured_rrep = {
  c_rr : Address.t list;
  c_sig : string;
  c_dpk : string;
  c_drn : int64;
}

type t = {
  ctx : Ctx.t;
  behavior : behavior;
  secure : bool;
  delegate : src:int -> Messages.t -> unit;
  seen_rreq : (string, unit) Hashtbl.t;
  captured : (string, captured_rrep) Hashtbl.t; (* by destination address *)
  flows : (string, Address.t * Address.t list) Hashtbl.t; (* data flows relayed *)
  mutable running : bool;
}

let create ?(behavior = honest) ~secure ctx ~delegate =
  {
    ctx;
    behavior;
    secure;
    delegate;
    seen_rreq = Hashtbl.create 64;
    captured = Hashtbl.create 16;
    flows = Hashtbl.create 16;
    running = false;
  }

let address t = Ctx.address t.ctx
let identity t = t.ctx.Ctx.identity

(* --- periodic behaviours ------------------------------------------------ *)

let split_route_at route me =
  let rec go before = function
    | [] -> None
    | x :: rest when Address.equal x me -> Some (List.rev before, rest)
    | x :: rest -> go (x :: before) rest
  in
  go [] route

let spam_rerrs t =
  (* For every flow we relay, fabricate a break of our next hop.  We are
     genuinely on the route, so even the secure protocol must accept the
     report (§4) — until frequency tracking blames us. *)
  let flows =
    (* Deterministic emission order: iterate flows sorted by key, not in
       hash-bucket order. *)
    List.sort
      (fun (a, _) (b, _) -> String.compare a b)
      (Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.flows [])
  in
  List.iter
    (fun (_, (src, route)) ->
      let me = address t in
      match split_route_at route me with
      | Some (before, after) ->
          let broken_next =
            match after with a :: _ -> a | [] -> src (* claim dst itself *)
          in
          let back = List.rev before @ [ src ] in
          let sig_, pk, rn =
            if t.secure then
              let id = identity t in
              ( Identity.sign id (Codec.rerr_payload ~reporter:me ~broken_next),
                Identity.pk_bytes id,
                id.Identity.rn )
            else ("", "", 0L)
          in
          (* Ground truth for detector scoring: every mounted attack is
             recorded under an [Attack_*] kind that the detector itself
             never weighs. *)
          Ctx.audit t.ctx ~kind:Audit.Attack_rerr
            ~stats:[ "attack.rerr_forged" ]
            ~cause:
              ("fabricated break toward " ^ Address.to_string broken_next)
            ();
          Ctx.send_along t.ctx ~path:back
            (Messages.Rerr
               { reporter = me; broken_next; dst = src; remaining = back; sig_; pk; rn })
      | None -> ())
    flows

let churn_identity t =
  let ctx = t.ctx in
  let id = identity t in
  Directory.unregister ctx.Ctx.directory id.Identity.address (Ctx.node_id ctx);
  Identity.refresh_address id ctx.Ctx.rng;
  Directory.register ctx.Ctx.directory id.Identity.address (Ctx.node_id ctx);
  Ctx.audit ctx ~kind:Audit.Attack_churn
    ~stats:[ "attack.identity_changes" ]
    ~cause:("identity shed for " ^ Address.to_string id.Identity.address)
    ();
  Ctx.log ctx ~event:"attack.churn" ~detail:(Address.to_string id.Identity.address)

let start t =
  if not t.running then begin
    t.running <- true;
    (* An impersonator also claims the victim's address at the link
       layer (it answers frames sent to that address), which the shared
       directory models as a second claim on the address. *)
    (match t.behavior.impersonate with
    | Some victim ->
        Directory.register t.ctx.Ctx.directory victim (Ctx.node_id t.ctx)
    | None -> ());
    (match t.behavior.rerr_spam_interval with
    | Some every ->
        let rec tick () =
          if t.running then begin
            spam_rerrs t;
            Engine.schedule t.ctx.Ctx.engine ~label:"adversary" ~delay:every
              tick
          end
        in
        Engine.schedule t.ctx.Ctx.engine ~label:"adversary" ~delay:every tick
    | None -> ());
    match t.behavior.churn_interval with
    | Some every ->
        let rec tick () =
          if t.running then begin
            churn_identity t;
            Engine.schedule t.ctx.Ctx.engine ~label:"adversary" ~delay:every
              tick
          end
        in
        Engine.schedule t.ctx.Ctx.engine ~label:"adversary" ~delay:every tick
    | None -> ()
  end

(* --- message interception ------------------------------------------------ *)

let fkey a seq = Address.to_bytes a ^ Codec.u32 seq

let forge_rrep t ~sip ~dip ~seq ~rr =
  (* Claim the destination is our direct neighbour: route S -> ... -> me
     -> D.  Under the secure protocol we cannot produce D's signature, so
     we attach junk; the baseline carries no signature at all. *)
  Ctx.audit t.ctx ~kind:Audit.Attack_forgery
    ~stats:[ "attack.rrep_forged" ]
    ~cause:("forged one-hop route to " ^ Address.to_string dip)
    ();
  let claimed_rr = rr @ [ address t ] in
  let back = List.rev rr @ [ sip ] in
  ignore seq;
  let sig_, dpk, drn =
    if t.secure then
      ( Prng.bytes t.ctx.Ctx.rng 32,
        Prng.bytes t.ctx.Ctx.rng 32,
        Prng.bits64 t.ctx.Ctx.rng )
    else ("", "", 0L)
  in
  Ctx.send_along t.ctx ~path:back
    (Messages.Rrep { sip; dip; rr = claimed_rr; remaining = back; sig_; dpk; drn })

let impersonate_relay t victim ~rreq =
  match rreq with
  | Messages.Rreq { sip; dip; seq; srr; sig_; spk; srn } ->
      (* Append the victim's address instead of our own.  We cannot know
         the victim's private key, so in secure mode we sign with our own
         key and attach our own key material — the CGA check at the
         destination is what catches the mismatch. *)
      Ctx.audit t.ctx ~kind:Audit.Attack_impersonation
        ~stats:[ "attack.impersonations" ]
        ~cause:("appended victim " ^ Address.to_string victim ^ " to rreq")
        ();
      let entry =
        if t.secure then begin
          let id = identity t in
          {
            Messages.ip = victim;
            sig_ = Identity.sign id (Codec.srr_entry_payload ~iip:victim ~seq);
            pk = Identity.pk_bytes id;
            rn = id.Identity.rn;
          }
        end
        else { Messages.ip = victim; sig_ = ""; pk = ""; rn = 0L }
      in
      Ctx.broadcast t.ctx
        (Messages.Rreq { sip; dip; seq; srr = srr @ [ entry ]; sig_; spk; srn })
  | _ -> ()

let replay_captured t ~sip ~dip ~rr =
  match Hashtbl.find_opt t.captured (Address.to_bytes dip) with
  | None -> false
  | Some c ->
      (* Replay the old signed reply to the new requester, back along the
         live route record so it actually arrives.  The stale sequence
         binding is what the secure verification catches. *)
      Ctx.audit t.ctx ~kind:Audit.Attack_replay
        ~stats:[ "attack.replayed" ]
        ~cause:("captured rrep for " ^ Address.to_string dip ^ " re-sent")
        ();
      let back = List.rev rr @ [ sip ] in
      Ctx.send_along t.ctx ~path:back
        (Messages.Rrep
           { sip; dip; rr = c.c_rr; remaining = back; sig_ = c.c_sig; dpk = c.c_dpk; drn = c.c_drn });
      true

let should_drop t =
  match t.behavior.drop_data with
  | `Never -> false
  | `Always -> true
  | `Prob p -> Prng.float t.ctx.Ctx.rng 1.0 < p

(* Is this message transiting through us (we are the head of remaining
   and more hops follow)? *)
let transit_tail t msg =
  match Messages.remaining msg with
  | Some (head :: (_ :: _ as tail)) when Address.equal head (address t) -> Some tail
  | _ -> None

(* Frames whose next hop is the impersonated victim are processed by the
   adversary as if it were the victim: it pops the victim's address and
   forwards (subject to its drop policy) — traffic flows through the
   adversary while the route record blames the victim. *)
let impersonated_transit t msg =
  match (t.behavior.impersonate, Messages.remaining msg) with
  | Some victim, Some (head :: tail) when Address.equal head victim ->
      (match (msg, tail) with
      | _, [] -> Some `Consumed (* addressed to the victim itself: swallow *)
      | Messages.Data _, _ when should_drop t -> Some `Consumed
      | _, _ ->
          Ctx.stat t.ctx "attack.mitm_forwarded";
          Ctx.send_along t.ctx ~path:tail (Messages.with_remaining msg tail);
          Some `Forwarded)
  | _ -> None

let handle t ~src msg =
  if t.behavior.mute then ()
  else if impersonated_transit t msg <> None then ()
  else
  match msg with
  (* The adversary deliberately skips all verification: it consumes
     whatever it overhears to mount the §4 forgery/replay attacks. *)
  (* manetlint: allow security *)
  | Messages.Rreq { sip; dip; seq; srr; _ } ->
      let key = fkey sip seq in
      if Hashtbl.mem t.seen_rreq key then ()
      else begin
        Hashtbl.replace t.seen_rreq key ();
        let me = address t in
        let rr = List.map (fun e -> e.Messages.ip) srr in
        if Address.equal dip me then t.delegate ~src msg
        else if Address.equal sip me || List.exists (Address.equal me) rr then ()
        else begin
          (* Replaying is additive: the adversary still relays so as not
             to give itself away by killing the flood. *)
          if t.behavior.replay_rrep then
            ignore (replay_captured t ~sip ~dip ~rr);
          if t.behavior.forge_rrep then forge_rrep t ~sip ~dip ~seq ~rr
          else begin
            match t.behavior.impersonate with
            | Some victim -> impersonate_relay t victim ~rreq:msg
            | None -> t.delegate ~src msg
          end
        end
      end
  (* Captures reply signatures wholesale for later replay (§4). *)
  (* manetlint: allow security *)
  | Messages.Rrep { dip; rr; sig_; dpk; drn; _ } ->
      if t.behavior.replay_rrep then
        Hashtbl.replace t.captured (Address.to_bytes dip)
          { c_rr = rr; c_sig = sig_; c_dpk = dpk; c_drn = drn };
      t.delegate ~src msg
  | Messages.Data { src = flow_src; route; _ } -> (
      match transit_tail t msg with
      | Some _ ->
          (* Transit data: remember the flow (for RERR fabrication), then
             apply the drop policy. *)
          Hashtbl.replace t.flows (Address.to_bytes flow_src) (flow_src, route);
          if should_drop t then
            Ctx.audit t.ctx ~kind:Audit.Attack_drop
              ~stats:[ "attack.data_dropped" ]
              ~cause:"transit data silently dropped" ()
          else t.delegate ~src msg
      | None -> t.delegate ~src msg)
  | Messages.Probe { target; _ } -> (
      match transit_tail t msg with
      | Some _ ->
          if t.behavior.drop_probes then
            Ctx.audit t.ctx ~kind:Audit.Attack_drop
              ~stats:[ "attack.probes_dropped" ]
              ~cause:"transit probe silently dropped" ()
          else t.delegate ~src msg
      | None ->
          if Address.equal target (address t) && not t.behavior.answer_probes
          then
            Ctx.audit t.ctx ~kind:Audit.Attack_drop
              ~stats:[ "attack.probes_dropped" ]
              ~cause:("probe for " ^ Address.to_string target ^ " ignored")
              ()
          else t.delegate ~src msg)
  | _ -> t.delegate ~src msg
