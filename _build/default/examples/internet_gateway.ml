(* Internet gateway: Figure 1 notes that the 16-bit subnet ID "can be
   replaced by the gateway when the node is connecting to the Internet".
   A gateway advertises a global routing prefix and subnet; hosts derive
   global CGAs under it with the *same* key pair and the same H(PK, rn)
   ownership proof, keep their site-local addresses for MANET-internal
   traffic, and route Internet-bound packets to the gateway.

   Run with:  dune exec examples/internet_gateway.exe *)

module Scenario = Manetsec.Scenario
module Stats = Manetsec.Sim.Stats
module Address = Manetsec.Ipv6.Address
module Cga = Manetsec.Ipv6.Cga
module Identity = Manetsec.Proto.Identity
module Directory = Manetsec.Proto.Directory
module Ctx = Manetsec.Proto.Node_ctx

let () =
  let params =
    {
      Scenario.default_params with
      n = 10;
      seed = 7;
      topology = Scenario.Random { width = 600.0; height = 600.0 };
    }
  in
  let s = Scenario.create params in
  Scenario.bootstrap s;
  print_endline "MANET bootstrapped with site-local CGAs.";

  (* Node 1 is the gateway: it owns a delegated global prefix. *)
  let routing_prefix = Address.of_string_exn "2001:db8:feed::" in
  let subnet = 0x0001 in
  let hi = Cga.global_hi ~routing_prefix ~subnet in
  Printf.printf "Gateway (node 1) advertises prefix %s subnet %#x\n"
    (Address.to_string routing_prefix)
    subnet;

  (* Every host derives a global CGA under the advertised prefix — same
     key pair, same rn, same ownership proof — and registers it as a
     second address (the site-local one keeps serving MANET traffic). *)
  Array.iter
    (fun node ->
      let id = node.Scenario.identity in
      let global =
        Cga.generate_under ~hi ~pk_bytes:(Identity.pk_bytes id) ~rn:id.Identity.rn
      in
      let dir = node.Scenario.ctx.Ctx.directory in
      Directory.register dir global node.Scenario.index;
      assert (Cga.verify_under ~hi global ~pk_bytes:(Identity.pk_bytes id) ~rn:id.Identity.rn);
      if node.Scenario.index <= 3 then
        Printf.printf "  node %d: %-28s (site-local) | %s (global)\n"
          node.Scenario.index
          (Address.to_string id.Identity.address)
          (Address.to_string global))
    (Scenario.nodes s);
  print_endline "  ... (ownership of every global address verified by CGA rule)";

  (* Internet-bound traffic: hosts route to the gateway over the secure
     MANET; the gateway would forward beyond (the upstream is outside the
     simulation). *)
  let flows = [ (4, 1); (7, 1); (9, 1) ] in
  Scenario.start_cbr s ~flows ~interval:0.25 ~size:256 ~duration:20.0 ();
  Scenario.run s ~until:(Scenario.Engine.now (Scenario.engine s) +. 60.0);
  let st = Scenario.stats s in
  Printf.printf "\nUplink traffic through the gateway: %d packets offered, %d reached it (ratio %.2f)\n"
    (Stats.get st "data.offered")
    (Stats.get st "data.delivered")
    (Scenario.delivery_ratio s);

  (* An impostor cannot claim a global address it does not own: the CGA
     check fails exactly as it does for site-local addresses. *)
  let victim = Scenario.node s 4 in
  let victim_global =
    Cga.generate_under ~hi
      ~pk_bytes:(Identity.pk_bytes victim.Scenario.identity)
      ~rn:victim.Scenario.identity.Identity.rn
  in
  let impostor = Scenario.node s 9 in
  let ok =
    Cga.verify_under ~hi victim_global
      ~pk_bytes:(Identity.pk_bytes impostor.Scenario.identity)
      ~rn:impostor.Scenario.identity.Identity.rn
  in
  Printf.printf "Impostor claiming node 4's global address verifies: %b (expected false)\n" ok
