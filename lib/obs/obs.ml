module Engine = Manet_sim.Engine

let schema = "manetsim-trace"
let schema_version = 1

type outcome = Ok | Timeout | Rejected of string | Failed of string

let outcome_label = function
  | Ok -> "ok"
  | Timeout -> "timeout"
  | Rejected _ -> "rejected"
  | Failed _ -> "failed"

let outcome_reason = function
  | Ok | Timeout -> None
  | Rejected r | Failed r -> Some r

type span = {
  id : int;
  parent : int option;
  kind : string;
  node : int;
  detail : string;
  start_time : float;
  mutable end_time : float option;
  mutable outcome : outcome option;
  mutable notes : (float * int * string) list; (* newest first *)
}

type event = { time : float; node : int; name : string; detail : string }

type t = {
  engine : Engine.t;
  spans : (int, span) Hashtbl.t;
  mutable next_id : int;
  corr : (string, int) Hashtbl.t;
  mutable capture : bool;
  events : event Queue.t;
  event_capacity : int;
  mutable events_dropped : int;
  audit : Audit.t;
  metrics : Metrics.t;
  perf : Perf.t;
  timeline : Timeline.t;
  flood : Flood.t;
}

let create ?(event_capacity = 200_000) engine =
  let audit = Audit.create engine in
  let metrics = Metrics.create engine in
  (* Every audit event also feeds the windowed metrics: once under the
     emitter's node and, when someone stands accused, once under the
     subject's.  Metrics themselves gate on their enabled switch. *)
  Audit.on_emit audit (fun e ->
      let label = Audit.kind_label e.Audit.kind in
      Metrics.record metrics ~node:e.Audit.node ("audit." ^ label);
      match e.Audit.subject_node with
      | Some s -> Metrics.record metrics ~node:s ("accused." ^ label)
      | None -> ());
  {
    engine;
    spans = Hashtbl.create 256;
    next_id = 1;
    corr = Hashtbl.create 256;
    capture = false;
    events = Queue.create ();
    event_capacity;
    events_dropped = 0;
    audit;
    metrics;
    perf = Perf.create ();
    timeline = Timeline.create engine;
    flood = Flood.create engine;
  }

let audit t = t.audit
let metrics t = t.metrics
let perf t = t.perf
let timeline t = t.timeline
let flood t = t.flood


(* --- spans -------------------------------------------------------------- *)

let start t ?parent ~kind ~node ?(detail = "") () =
  let id = t.next_id in
  t.next_id <- id + 1;
  let span =
    {
      id;
      parent;
      kind;
      node;
      detail;
      start_time = Engine.now t.engine;
      end_time = None;
      outcome = None;
      notes = [];
    }
  in
  Hashtbl.replace t.spans id span;
  id


let finish t id outcome =
  match Hashtbl.find_opt t.spans id with
  | Some span when span.outcome = None ->
      span.end_time <- Some (Engine.now t.engine);
      span.outcome <- Some outcome
  | Some _ | None -> () (* double finish / unknown id: first verdict wins *)

let note t id ~node text =
  match Hashtbl.find_opt t.spans id with
  | Some span -> span.notes <- (Engine.now t.engine, node, text) :: span.notes
  | None -> ()

let span_count t = t.next_id - 1

let spans t =
  List.filter_map (fun id -> Hashtbl.find_opt t.spans id)
    (List.init (span_count t) (fun i -> i + 1))

(* --- correlation registry ----------------------------------------------- *)

let correlate t key id = Hashtbl.replace t.corr key id

let lookup t key = Hashtbl.find_opt t.corr key

(* --- event sink --------------------------------------------------------- *)

let set_capture t on = t.capture <- on

let log t ~node ~event ~detail =
  (* The ring-buffer Trace stays one sink (honouring its own enable
     switch); capture adds the JSONL sink on top. *)
  Engine.log t.engine ~node ~event ~detail;
  if t.capture then begin
    if Queue.length t.events >= t.event_capacity then begin
      ignore (Queue.pop t.events);
      t.events_dropped <- t.events_dropped + 1
    end;
    Queue.push
      { time = Engine.now t.engine; node; name = event; detail }
      t.events
  end

let events t = List.of_seq (Queue.to_seq t.events)
let events_dropped t = t.events_dropped

(* --- JSONL export ------------------------------------------------------- *)

let json_of_span s =
  let base =
    [
      ("type", Json.String "span");
      ("id", Json.Int s.id);
      ( "parent",
        match s.parent with Some p -> Json.Int p | None -> Json.Null );
      ("kind", Json.String s.kind);
      ("node", Json.Int s.node);
      ("detail", Json.String s.detail);
      ("start", Json.Float s.start_time);
      ( "end",
        match s.end_time with Some e -> Json.Float e | None -> Json.Null );
      ( "outcome",
        match s.outcome with
        | Some o -> Json.String (outcome_label o)
        | None -> Json.Null );
    ]
  in
  let reason =
    match s.outcome with
    | Some o -> (
        match outcome_reason o with
        | Some r -> [ ("reason", Json.String r) ]
        | None -> [])
    | None -> []
  in
  let notes =
    match s.notes with
    | [] -> []
    | l ->
        [
          ( "notes",
            Json.List
              (List.rev_map
                 (fun (time, node, text) ->
                   Json.Obj
                     [
                       ("t", Json.Float time);
                       ("node", Json.Int node);
                       ("text", Json.String text);
                     ])
                 l) );
        ]
  in
  Json.Obj (base @ reason @ notes)

let json_of_event (e : event) =
  Json.Obj
    [
      ("type", Json.String "event");
      ("t", Json.Float e.time);
      ("node", Json.Int e.node);
      ("name", Json.String e.name);
      ("detail", Json.String e.detail);
    ]

let to_jsonl ?(meta = []) t =
  let buf = Buffer.create 4096 in
  let line v =
    Json.to_buffer buf v;
    Buffer.add_char buf '\n'
  in
  line
    (Json.Obj
       ([
          ("schema", Json.String schema);
          ("version", Json.Int schema_version);
          ("spans", Json.Int (span_count t));
          ("events", Json.Int (Queue.length t.events));
          ("events_dropped", Json.Int t.events_dropped);
        ]
       @ meta));
  List.iter (fun s -> line (json_of_span s)) (spans t);
  Queue.iter (fun e -> line (json_of_event e)) t.events;
  Buffer.contents buf
