(** Address-to-node resolution for the simulated link layer.

    Real MANETs resolve a next-hop IPv6 address to a radio neighbour with
    NDP; the simulator models that resolved state as a shared table from
    address to simulator node ids, updated whenever a node (re)configures
    an address.  Forwarding consults it to turn "unicast to the next
    address in the source route" into a link transmission.

    An address can be *contested*: during DAD two nodes hold the same
    tentative/configured address, and an impersonation adversary may
    claim a victim's address outright.  The table therefore binds an
    address to a {e set} of nodes; delivery to a contested address
    reaches all claimants, as a link-layer broadcast would.  Lying about
    one's address thus remains entirely possible at the protocol layer,
    so no attack the paper considers is blocked by this abstraction. *)

module Address = Manet_ipv6.Address

type t

val create : unit -> t

val register : t -> Address.t -> int -> unit
(** Bind [addr] to a node (idempotent per node). *)

val unregister : t -> Address.t -> int -> unit
(** Remove one node's claim to [addr]. *)

val lookup_all : t -> Address.t -> int list
(** Every node currently claiming [addr], ascending id; [] if none. *)

val lookup : t -> Address.t -> int option
(** The first claimant, if any. *)

val addresses_of : t -> int -> Address.t list
(** All addresses currently bound to a node (an identity-churning
    adversary holds several over time). *)
