(* The perf registry contract: the log₂ histogram is a stable,
   mergeable representation (qcheck properties), the engine's always-on
   accounting is exact, and the deterministic export section is
   byte-identical across same-seed replays and sweep domain counts —
   the property the CI determinism gates also check end-to-end through
   the CLI. *)

module Engine = Manet_sim.Engine
module Hist = Manet_sim.Hist
module Suite = Manet_crypto.Suite
module Perf = Manetsec.Perf
module Json = Manetsec.Obs_json
module Obs = Manetsec.Obs
module Merge = Manetsec.Merge
module Sweep = Manetsec.Sweep
module Scenario = Manetsec.Scenario

let qtest ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name gen prop)

(* --- histogram properties ---------------------------------------------- *)

let nat_gen = QCheck.map (fun i -> abs (i land max_int)) QCheck.int

let prop_bucket_contains =
  qtest "bounds (bucket_of_value v) contains v" nat_gen (fun v ->
      let lo, hi = Hist.bounds (Hist.bucket_of_value v) in
      lo <= v && v <= hi)

let prop_bucket_monotone =
  qtest "bucket_of_value is monotone" (QCheck.pair nat_gen nat_gen)
    (fun (a, b) ->
      let lo, hi = (min a b, max a b) in
      Hist.bucket_of_value lo <= Hist.bucket_of_value hi)

let of_list vs =
  let h = Hist.create () in
  List.iter (Hist.add h) vs;
  h

(* The exported representation: everything the wire form renders. *)
let repr h =
  ( Hist.count h,
    Hist.sum h,
    Hist.min_value h,
    Hist.max_value h,
    Hist.nonzero_buckets h )

let small_nats = QCheck.(list (int_bound 100_000))

let prop_count_preserved =
  qtest "count and sum preserved" small_nats (fun vs ->
      let h = of_list vs in
      Hist.count h = List.length vs
      && Hist.sum h = List.fold_left ( + ) 0 vs
      && List.fold_left (fun acc (_, _, c) -> acc + c) 0 (Hist.nonzero_buckets h)
         = List.length vs)

let prop_merge_commutative =
  qtest "merge is commutative" (QCheck.pair small_nats small_nats)
    (fun (a, b) ->
      repr (Hist.merge (of_list a) (of_list b))
      = repr (Hist.merge (of_list b) (of_list a)))

let prop_merge_associative =
  qtest "merge is associative"
    (QCheck.triple small_nats small_nats small_nats)
    (fun (a, b, c) ->
      let ha () = of_list a and hb () = of_list b and hc () = of_list c in
      repr (Hist.merge (ha ()) (Hist.merge (hb ()) (hc ())))
      = repr (Hist.merge (Hist.merge (ha ()) (hb ())) (hc ())))

let prop_merge_is_concat =
  qtest "merge equals histogram of concatenation"
    (QCheck.pair small_nats small_nats) (fun (a, b) ->
      repr (Hist.merge (of_list a) (of_list b)) = repr (of_list (a @ b)))

let test_hist_add_n () =
  let h = Hist.create () in
  Hist.add_n h 7 3;
  Hist.add_n h 0 2;
  Hist.add_n h 9 0;
  Alcotest.(check int) "count" 5 (Hist.count h);
  Alcotest.(check int) "sum" 21 (Hist.sum h);
  Alcotest.(check (option int)) "min" (Some 0) (Hist.min_value h);
  Alcotest.(check (option int)) "max" (Some 7) (Hist.max_value h);
  Alcotest.check
    (Alcotest.option (Alcotest.float 1e-9))
    "mean" (Some 4.2) (Hist.mean h);
  Alcotest.check_raises "negative value rejected"
    (Invalid_argument "Hist.add: negative value") (fun () -> Hist.add h (-1));
  Hist.reset h;
  Alcotest.(check int) "reset" 0 (Hist.count h)

(* --- engine accounting ------------------------------------------------- *)

let test_engine_label_counts () =
  let e = Engine.create ~seed:1 () in
  let fired = ref 0 in
  let rec chain k =
    if k > 0 then
      Engine.schedule e ~label:"chain" ~delay:0.5 (fun () ->
          incr fired;
          chain (k - 1))
  in
  chain 10;
  for _ = 1 to 25 do
    Engine.schedule e ~label:"burst" ~delay:1.0 (fun () -> incr fired)
  done;
  Engine.schedule e ~delay:2.0 (fun () -> incr fired);
  Engine.run e;
  Alcotest.(check int) "all events fired" 36 !fired;
  Alcotest.(check (list (pair string int)))
    "per-label counts, sorted"
    [ ("burst", 25); ("chain", 10); ("other", 1) ]
    (Engine.label_counts e);
  Alcotest.(check int)
    "label counts sum to events processed"
    (Engine.events_processed e)
    (List.fold_left (fun acc (_, c) -> acc + c) 0 (Engine.label_counts e));
  Alcotest.(check bool)
    "max_pending saw the burst" true
    (Engine.max_pending e >= 25)

let test_engine_occupancy () =
  let e = Engine.create ~seed:1 () in
  for _ = 1 to 5000 do
    Engine.schedule e ~label:"x" ~delay:1.0 (fun () -> ())
  done;
  Engine.run e;
  let occ = Engine.occupancy e in
  Alcotest.(check bool) "bounded" true (List.length occ <= 512);
  Alcotest.(check bool) "non-empty" true (occ <> []);
  let stride = Engine.occupancy_stride e in
  Alcotest.(check bool)
    "stride is a power of two" true
    (stride > 0 && stride land (stride - 1) = 0);
  let rec increasing = function
    | (a, _) :: ((b, _) :: _ as tl) -> a < b && increasing tl
    | _ -> true
  in
  Alcotest.(check bool) "sample indices strictly increasing" true
    (increasing occ);
  List.iter
    (fun (i, _) ->
      Alcotest.(check int)
        "sample index on the stride grid" 0
        (i mod stride))
    occ

(* --- registry counters and attribution --------------------------------- *)

let test_counters_and_attribution () =
  let p = Perf.create () in
  Perf.incr p "cache_miss";
  Perf.incr ~n:3 p "cache_hit";
  Perf.incr p "cache_miss";
  Alcotest.(check (list (pair string int)))
    "counters sorted"
    [ ("cache_hit", 3); ("cache_miss", 2) ]
    (Perf.counters p);
  Perf.with_attribution p ~kind:"rreq" ~node:2 (fun () ->
      Perf.crypto_op p ~op:Suite.Verify ~bytes:100;
      Perf.crypto_op p ~op:Suite.Hash ~bytes:64);
  Perf.crypto_op p ~op:Suite.Sign ~bytes:10;
  (* Render through a real (tiny, idle) scenario's engine/net/suite so
     the export paths are exercised directly. *)
  let s = Scenario.create { Scenario.default_params with n = 2; seed = 1 } in
  let det =
    Perf.deterministic_json p ~engine:(Scenario.engine s)
      ~net:(Scenario.net s) ~suite:(Scenario.suite s)
  in
  let wall = Perf.wall_json p ~engine:(Scenario.engine s) in
  let at path j =
    List.fold_left
      (fun acc name -> Option.bind acc (Json.member name))
      (Some j) path
  in
  Alcotest.(check (option int))
    "rreq verify attributed" (Some 1)
    (Option.bind
       (at [ "crypto"; "by_kind"; "rreq"; "verifies" ] det)
       Json.to_int_opt);
  Alcotest.(check (option int))
    "unattributed sign under the none kind" (Some 1)
    (Option.bind
       (at [ "crypto"; "by_kind"; Perf.no_kind; "signs" ] det)
       Json.to_int_opt);
  Alcotest.(check (option int))
    "named counter exported" (Some 3)
    (Option.bind (at [ "counters"; "cache_hit" ] det) Json.to_int_opt);
  Alcotest.(check bool)
    "wall section carries gc member" true
    (at [ "gc" ] wall <> None)

(* --- deterministic-section byte-identity -------------------------------- *)

let small_run seed =
  let params =
    {
      Scenario.default_params with
      n = 8;
      seed;
      protocol = Scenario.Secure;
    }
  in
  let s = Scenario.create params in
  Obs.set_capture (Scenario.obs s) true;
  Scenario.bootstrap ~stagger:0.3 s;
  Scenario.send s ~src:1 ~dst:5 ();
  Scenario.run s ~until:30.0;
  s

let test_det_jsonl_replay_identical () =
  let export s = Scenario.perf_det_jsonl ~meta:[ ("seed", Json.Int 7) ] s in
  let a = export (small_run 7) and b = export (small_run 7) in
  Alcotest.(check string) "same-seed perf det export byte-identical" a b;
  (* And the deterministic member of the full export agrees with it. *)
  let s = small_run 7 in
  match Json.member "deterministic" (Scenario.perf_json s) with
  | None -> Alcotest.fail "perf_json has no deterministic member"
  | Some det ->
      let in_jsonl =
        match String.split_on_char '\n' (export s) with
        | _header :: record :: _ -> record
        | _ -> ""
      in
      Alcotest.(check bool)
        "jsonl record embeds the same deterministic section" true
        (let sub = Json.to_string det in
         let n = String.length in_jsonl and m = String.length sub in
         let rec find i =
           i + m <= n && (String.sub in_jsonl i m = sub || find (i + 1))
         in
         find 0)

(* A grid small enough for the suite but fanning genuinely across
   domains (4 points). *)
let spec =
  {
    Sweep.e1_fractions = [ 0.2 ];
    e1_nodes = 12;
    e1_duration = 5.0;
    e6_sizes = [ 8 ];
    seeds = [ 1; 2 ];
  }

let test_det_jsonl_domain_invariant () =
  let export domains =
    Merge.stream_jsonl ~name:"perf" (Sweep.run ~domains spec)
  in
  let base = export 1 in
  Alcotest.(check bool) "perf stream non-empty" true (base <> "");
  List.iter
    (fun domains ->
      Alcotest.(check string)
        (Printf.sprintf "perf jsonl byte-identical at %d domain(s)" domains)
        base (export domains))
    [ 2; 4 ]

let suites =
  [
    ( "perf",
      [
        prop_bucket_contains;
        prop_bucket_monotone;
        prop_count_preserved;
        prop_merge_commutative;
        prop_merge_associative;
        prop_merge_is_concat;
        Alcotest.test_case "hist add_n / reset" `Quick test_hist_add_n;
        Alcotest.test_case "engine label counts" `Quick
          test_engine_label_counts;
        Alcotest.test_case "engine occupancy series" `Quick
          test_engine_occupancy;
        Alcotest.test_case "counters and crypto attribution" `Quick
          test_counters_and_attribution;
        Alcotest.test_case "det export replay-identical" `Quick
          test_det_jsonl_replay_identical;
        Alcotest.test_case "det export domain-invariant" `Quick
          test_det_jsonl_domain_invariant;
      ] );
  ]
