(** Time-resolved run telemetry: sim-time-bucketed windowed series over
    the always-on cumulative counters.

    The engine fires {!tick} once per processed event (via
    {!Engine.set_on_event}) with the event's timestamp.  When the
    timestamp crosses a bucket boundary the open bucket closes: the
    registry snapshots deltas of the cumulative counters it was
    {!attach}ed to — processed events (total and per label), scheduler
    queue depth, net deliveries/transmissions/unicast drops, suite
    sign/verify/SHA-256-block totals (total and per message kind via
    {!Perf.kind_totals}), audit events — and records them against the
    closed window.  Buckets are half-open [ [i*w, (i+1)*w) ] windows of
    sim time; windows with no activity materialise nothing (renderers
    fill gaps with zero).

    Everything recorded is a pure function of the seeded event
    sequence: the hook reads no clock and draws no randomness, so the
    {!to_jsonl} export is byte-identical across same-seed replays and
    sweep domain counts (CI-gated), and recording perturbs nothing.
    The per-event fast path is an option match, one float divide and
    two compares — no allocation (manethot-clean).

    The one deliberately wall-clock feature is the {!enable_progress}
    heartbeat for minutes-long large-N runs: every [check_every] events
    it samples {!Manet_sim.Mono_clock} and, when [interval] wall seconds
    have passed, emits one throughput/ETA/stall line through a
    caller-supplied sink (bin/ wires stderr).  It shares the tick but
    writes into no export, so determinism is untouched. *)

module Engine = Manet_sim.Engine
module Net = Manet_sim.Net
module Suite = Manet_crypto.Suite

val schema : string
val schema_version : int
val default_width : float

type t

type bucket = {
  b_index : int;
  b_events : int;
  b_pending : int;
  b_labels : (string * int) list;
  b_deliveries : int;
  b_transmissions : int;
  b_drops : int;
  b_signs : int;
  b_verifies : int;
  b_hash_blocks : int;
  b_kinds : (string * (int * int * int)) list;
  b_audit : int;
}

val create : ?width:float -> Engine.t -> t
(** Fresh timeline with bucket width [width] sim seconds (default
    {!default_width}).  Raises [Invalid_argument] on a non-positive
    width.  Recording is enabled by default. *)

val width : t -> float

val set_enabled : t -> bool -> unit
(** Disable to freeze bucket recording (the bench uses this for the
    off/on non-perturbation comparison); the heartbeat still runs. *)

val enabled : t -> bool

val attach :
  t -> net:_ Net.t -> suite:Suite.t -> perf:Perf.t -> audit:Audit.t -> unit
(** Connect the cumulative counter sources diffed at bucket close.
    Without sources only engine-derived series are recorded. *)

val install : t -> unit
(** Install {!tick} as the engine's per-event observer. *)

val tick : t -> float -> unit
(** The per-event hook; exposed for tests driving a bare engine. *)

val enable_progress :
  ?horizon:float ->
  ?interval:float ->
  ?check_every:int ->
  t ->
  emit:(string -> unit) ->
  unit ->
  unit
(** Turn on the wall-clock heartbeat: every [check_every] events
    (default 4096) sample the monotonic clock and, when [interval]
    (default 2.0) wall seconds elapsed, emit one progress line —
    events/sec, sim-seconds per wall-second, queue depth, ETA against
    [horizon] when given, or a STALL warning when sim time has not
    advanced since the last line. *)

val flush : t -> unit
(** Close the trailing partial bucket.  Idempotent. *)

val buckets : t -> bucket list
(** Materialised buckets, oldest first (does not flush). *)

val bucket_count : t -> int

val header : ?meta:(string * Json.t) list -> t -> Json.t
val bucket_json : bucket -> Json.t

val to_jsonl : ?meta:(string * Json.t) list -> t -> flood:Flood.t -> string
(** The schema-versioned export: header line, one ["bucket"] line per
    materialised window oldest-first, then the flood provenance tail
    ({!Flood.append_jsonl}).  Flushes first.  Byte-identical across
    same-seed replays and domain counts; the ["timeline"] stream
    {!Merge.stream_jsonl} folds across sweep runs. *)
