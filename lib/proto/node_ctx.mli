(** Per-node protocol context: the bundle every protocol agent (DAD, DNS,
    DSR, secure routing) needs — the engine, the shared radio, the
    address directory, this node's identity, and a private PRNG stream —
    plus the source-route transmission helpers.

    Source-route convention: a message's [remaining] field lists the hops
    still to visit {e including the next receiver}: a node transmitting
    along path [\[a; b; c\]] unicasts to [a] a message with
    [remaining = \[a; b; c\]]; [a] finds itself at the head, pops it, and
    either consumes the message ([tail = \[\]]) or forwards it to [b].
    Delivery to a contested address reaches every claimant (see
    {!Directory}). *)

module Address = Manet_ipv6.Address
module Engine = Manet_sim.Engine
module Net = Manet_sim.Net
module Prng = Manet_crypto.Prng
module Suite = Manet_crypto.Suite
module Obs = Manet_obs.Obs
module Audit = Manet_obs.Audit

type t = {
  engine : Engine.t;
  net : Messages.t Net.t;
  directory : Directory.t;
  identity : Identity.t;
  rng : Prng.t;
  obs : Obs.t;
      (** Telemetry handle, shared by every node of a scenario so spans
          started on one node can parent spans started on another. *)
}

val create :
  ?obs:Obs.t -> Messages.t Net.t -> Directory.t -> Identity.t -> Prng.t -> t
(** [obs] defaults to a fresh private handle — fine for unit tests, but
    a scenario must pass one shared handle to every node or cross-node
    span correlation silently degrades to per-node trees. *)

val address : t -> Address.t
val node_id : t -> int
val suite : t -> Suite.t
val now : t -> float

val size_of : t -> Messages.t -> int
(** Wire size of the message (see {!Wire.size_of}): exactly what the
    binary codec would put on the air — empty signature fields cost only
    their length prefixes, so the baseline is charged honestly. *)

val stat : t -> string -> unit
(** Increment a named counter in the engine's stats, and — when the
    scenario's windowed {!Manet_obs.Metrics} are enabled — in this
    node's current metric window. *)

val observe : t -> string -> float -> unit
val log : t -> event:string -> detail:string -> unit
(** Telemetry event for this node, fanned out through {!Obs.log} (ring
    trace always; JSONL sink when capture is on). *)

val audit :
  t ->
  kind:Audit.kind ->
  ?subject:Address.t ->
  ?subject_node:int ->
  ?stats:string list ->
  cause:string ->
  unit ->
  unit
(** Emit one security audit event from this node at the current
    simulated time.  [stats] names legacy counters bumped atomically
    with the event, so converted call sites keep their exact historical
    counter semantics.  When only [subject] is given, the accused node
    is resolved through the shared {!Directory} (first claimant); pass
    [subject_node] when the protocol already knows the node (e.g. the
    radio-level transmitter). *)

val broadcast : t -> Messages.t -> unit
(** One radio broadcast from this node, size-accounted. *)

val send_along :
  t -> path:Address.t list -> ?on_fail:(unit -> unit) -> Messages.t -> unit
(** Transmit toward the head of [path] with [remaining = path].  The
    head must resolve in the directory; if it does not (stale route),
    [on_fail] fires after a MAC-timeout's worth of delay.  Delivery goes
    to every claimant of the head address. *)

val forward_transit : t -> src:int -> Messages.t -> unit
(** Pure transit behaviour: pop this node from the source route and pass
    the message to the next hop; consume and overheard traffic are
    dropped.  Used for message kinds a node relays but does not
    interpret. *)

val deliver_up :
  t ->
  src:int ->
  Messages.t ->
  consume:(Messages.t -> unit) ->
  forward:(next:Address.t list -> Messages.t -> unit) ->
  not_mine:(Messages.t -> unit) ->
  unit
(** Source-route reception step.  Pops this node's address from the head
    of [remaining] and dispatches: [consume] when this node is the final
    destination, [forward ~next] when hops remain ([next] includes the
    new next hop at its head), and [not_mine] when the head is not this
    node's address (overheard or flood-relayed traffic). *)
