module Engine = Manet_sim.Engine
module Stats = Manet_sim.Stats

let global_node = -1

type series = {
  mutable s_count : int;
  mutable s_sum : float;
  mutable s_min : float;
  mutable s_max : float;
}

(* Cells are keyed by (metric name, node, window index). *)
type key = string * int * int

type t = {
  engine : Engine.t;
  win : float;
  mutable enabled : bool;
  counters : (key, int ref) Hashtbl.t;
  series : (key, series) Hashtbl.t;
}

let create ?(window = 1.0) engine =
  if window <= 0.0 then invalid_arg "Metrics.create: window must be positive";
  {
    engine;
    win = window;
    enabled = false;
    counters = Hashtbl.create 256;
    series = Hashtbl.create 64;
  }

let window t = t.win
let set_enabled t on = t.enabled <- on
let enabled t = t.enabled

let widx t = int_of_float (Engine.now t.engine /. t.win)

let record t ~node ?(by = 1) name =
  if t.enabled then begin
    let w = widx t in
    let bump node =
      let key = (name, node, w) in
      match Hashtbl.find_opt t.counters key with
      | Some r -> r := !r + by
      | None -> Hashtbl.add t.counters key (ref by)
    in
    bump node;
    if node <> global_node then bump global_node
  end

let observe t ~node name x =
  if t.enabled then begin
    let w = widx t in
    let add node =
      let key = (name, node, w) in
      let s =
        match Hashtbl.find_opt t.series key with
        | Some s -> s
        | None ->
            let s =
              { s_count = 0; s_sum = 0.0; s_min = infinity; s_max = neg_infinity }
            in
            Hashtbl.add t.series key s;
            s
      in
      s.s_count <- s.s_count + 1;
      s.s_sum <- s.s_sum +. x;
      if x < s.s_min then s.s_min <- x;
      if x > s.s_max then s.s_max <- x
    in
    add node;
    if node <> global_node then add global_node
  end

let counter_total t ~node name =
  Hashtbl.fold
    (fun (n, nd, _) r acc ->
      if String.equal n name && nd = node then acc + !r else acc)
    t.counters 0

(* --- export -------------------------------------------------------------- *)

let compare_key (na, ia, wa) (nb, ib, wb) =
  match String.compare na nb with
  | 0 -> ( match Int.compare ia ib with 0 -> Int.compare wa wb | c -> c)
  | c -> c

let sorted_cells tbl =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare_key a b)

let window_start t w = Json.float_str (float_of_int w *. t.win)

let to_csv ?stats t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "kind,name,node,window,count,mean,stddev,min,max\n";
  List.iter
    (fun ((name, node, w), r) ->
      Buffer.add_string buf
        (Printf.sprintf "counter,%s,%d,%s,%d,,,,\n" name node
           (window_start t w) !r))
    (sorted_cells t.counters);
  List.iter
    (fun ((name, node, w), s) ->
      Buffer.add_string buf
        (Printf.sprintf "series,%s,%d,%s,%d,%s,,%s,%s\n" name node
           (window_start t w) s.s_count
           (Json.float_str (s.s_sum /. float_of_int s.s_count))
           (Json.float_str s.s_min) (Json.float_str s.s_max)))
    (sorted_cells t.series);
  (match stats with
  | None -> ()
  | Some st ->
      List.iter
        (fun (name, v) ->
          Buffer.add_string buf
            (Printf.sprintf "stat_counter,%s,,,%d,,,,\n" name v))
        (Stats.counters st);
      List.iter
        (fun (name, s) ->
          Buffer.add_string buf
            (Printf.sprintf "stat_summary,%s,,,%d,%s,%s,%s,%s\n" name
               s.Stats.count
               (Json.float_str s.Stats.mean)
               (Json.float_str s.Stats.stddev)
               (Json.float_str s.Stats.min)
               (Json.float_str s.Stats.max)))
        (Stats.summaries st));
  Buffer.contents buf

let to_prom ?stats t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "# manetsim windowed metrics, window=%ss\n"
       (Json.float_str t.win));
  Buffer.add_string buf "# TYPE manetsim_counter gauge\n";
  List.iter
    (fun ((name, node, w), r) ->
      Buffer.add_string buf
        (Printf.sprintf
           "manetsim_counter{name=%S,node=\"%d\",window=%S} %d\n" name node
           (window_start t w) !r))
    (sorted_cells t.counters);
  let series_field field value =
    List.iter
      (fun ((name, node, w), s) ->
        Buffer.add_string buf
          (Printf.sprintf
             "manetsim_series_%s{name=%S,node=\"%d\",window=%S} %s\n" field
             name node (window_start t w) (value s)))
      (sorted_cells t.series)
  in
  Buffer.add_string buf "# TYPE manetsim_series_count gauge\n";
  series_field "count" (fun s -> string_of_int s.s_count);
  Buffer.add_string buf "# TYPE manetsim_series_sum gauge\n";
  series_field "sum" (fun s -> Json.float_str s.s_sum);
  Buffer.add_string buf "# TYPE manetsim_series_min gauge\n";
  series_field "min" (fun s -> Json.float_str s.s_min);
  Buffer.add_string buf "# TYPE manetsim_series_max gauge\n";
  series_field "max" (fun s -> Json.float_str s.s_max);
  (match stats with
  | None -> ()
  | Some st ->
      Buffer.add_string buf "# TYPE manetsim_stat_total counter\n";
      List.iter
        (fun (name, v) ->
          Buffer.add_string buf
            (Printf.sprintf "manetsim_stat_total{name=%S} %d\n" name v))
        (Stats.counters st);
      Buffer.add_string buf "# TYPE manetsim_stat_summary gauge\n";
      List.iter
        (fun (name, s) ->
          let field f v =
            Buffer.add_string buf
              (Printf.sprintf "manetsim_stat_summary{name=%S,field=%S} %s\n"
                 name f v)
          in
          field "count" (string_of_int s.Stats.count);
          field "mean" (Json.float_str s.Stats.mean);
          field "stddev" (Json.float_str s.Stats.stddev);
          field "min" (Json.float_str s.Stats.min);
          field "max" (Json.float_str s.Stats.max))
        (Stats.summaries st));
  Buffer.contents buf
