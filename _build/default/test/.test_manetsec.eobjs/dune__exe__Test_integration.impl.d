test/test_integration.ml: Alcotest List Manet_crypto Manet_ipv6 Manet_sim Manetsec Printf QCheck QCheck_alcotest
