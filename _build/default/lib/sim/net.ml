module Prng = Manet_crypto.Prng

type config = {
  range : float;
  loss : float;
  bit_rate : float;
  prop_delay : float;
  jitter : float;
  mac_retries : int;
  promiscuous : bool;
}

let default_config =
  {
    range = 250.0;
    loss = 0.0;
    bit_rate = 2_000_000.0;
    prop_delay = 5e-6;
    jitter = 1e-4;
    mac_retries = 3;
    promiscuous = false;
  }

type 'msg t = {
  engine : Engine.t;
  topo : Topology.t;
  cfg : config;
  rng : Prng.t;
  handlers : (src:int -> 'msg -> unit) array;
  down : bool array;
  mutable bytes_sent : int;
  mutable transmissions : int;
  mutable deliveries : int;
  mutable unicast_failures : int;
}

let create ?(config = default_config) engine topo =
  let n = Topology.size topo in
  {
    engine;
    topo;
    cfg = config;
    rng = Prng.split (Engine.rng engine);
    handlers = Array.make n (fun ~src:_ _ -> ());
    down = Array.make n false;
    bytes_sent = 0;
    transmissions = 0;
    deliveries = 0;
    unicast_failures = 0;
  }

let config t = t.cfg
let topology t = t.topo
let engine t = t.engine
let size t = Array.length t.handlers
let set_handler t i f = t.handlers.(i) <- f
let set_down t i b = t.down.(i) <- b
let is_down t i = t.down.(i)

let tx_time t size = float_of_int (size * 8) /. t.cfg.bit_rate

let deliver t ~src ~dst msg delay =
  Engine.schedule t.engine ~delay (fun () ->
      if not t.down.(dst) then begin
        t.deliveries <- t.deliveries + 1;
        t.handlers.(dst) ~src msg
      end)

let broadcast t ~src ~size msg =
  if not t.down.(src) then begin
    t.bytes_sent <- t.bytes_sent + size;
    t.transmissions <- t.transmissions + 1;
    let base = tx_time t size +. t.cfg.prop_delay in
    List.iter
      (fun dst ->
        if (not t.down.(dst)) && Prng.float t.rng 1.0 >= t.cfg.loss then
          deliver t ~src ~dst msg (base +. Prng.float t.rng t.cfg.jitter))
      (Topology.neighbors t.topo ~range:t.cfg.range src)
  end

let unicast t ~src ~dst ~size ?(on_fail = fun () -> ()) msg =
  if t.down.(src) then ()
  else begin
    let reachable =
      (not t.down.(dst)) && Topology.in_range t.topo ~range:t.cfg.range src dst
    in
    let attempts = 1 + t.cfg.mac_retries in
    (* Decide up front which attempt (if any) gets through; each attempt
       is an independent Bernoulli draw. *)
    let winning =
      if not reachable then None
      else begin
        let rec find k =
          if k >= attempts then None
          else if Prng.float t.rng 1.0 >= t.cfg.loss then Some k
          else find (k + 1)
        in
        find 0
      end
    in
    match winning with
    | Some k ->
        let used = k + 1 in
        t.bytes_sent <- t.bytes_sent + (size * used);
        t.transmissions <- t.transmissions + used;
        let delay =
          (float_of_int used *. tx_time t size)
          +. t.cfg.prop_delay
          +. Prng.float t.rng t.cfg.jitter
        in
        deliver t ~src ~dst msg delay;
        (* Promiscuous radios overhear unicast frames addressed to
           others (each overhearing subject to the loss probability). *)
        if t.cfg.promiscuous then
          List.iter
            (fun other ->
              if
                other <> dst && (not t.down.(other))
                && Prng.float t.rng 1.0 >= t.cfg.loss
              then deliver t ~src ~dst:other msg (delay +. Prng.float t.rng t.cfg.jitter))
            (Topology.neighbors t.topo ~range:t.cfg.range src)
    | None ->
        t.bytes_sent <- t.bytes_sent + (size * attempts);
        t.transmissions <- t.transmissions + attempts;
        t.unicast_failures <- t.unicast_failures + 1;
        let delay =
          (float_of_int attempts *. (tx_time t size +. (2.0 *. t.cfg.prop_delay)))
          +. Prng.float t.rng t.cfg.jitter
        in
        Engine.schedule t.engine ~delay on_fail
  end

let bytes_sent t = t.bytes_sent
let transmissions t = t.transmissions
let deliveries t = t.deliveries
let unicast_failures t = t.unicast_failures

let reset_counters t =
  t.bytes_sent <- 0;
  t.transmissions <- 0;
  t.deliveries <- 0;
  t.unicast_failures <- 0
