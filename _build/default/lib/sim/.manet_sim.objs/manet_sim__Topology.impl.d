lib/sim/topology.ml: Array List Manet_crypto Queue
