module Sha256 = Manet_crypto.Sha256
module Prng = Manet_crypto.Prng

let rn_bytes rn =
  String.init 8 (fun i ->
      Char.chr (Int64.to_int (Int64.logand (Int64.shift_right_logical rn ((7 - i) * 8)) 0xFFL)))

let interface_id ~pk_bytes ~rn =
  let digest = Sha256.digest (pk_bytes ^ rn_bytes rn) in
  let v = ref 0L in
  for i = 0 to 7 do
    v := Int64.logor (Int64.shift_left !v 8) (Int64.of_int (Char.code digest.[i]))
  done;
  !v

(* fec0::/10 with the 38-bit zero field and zero subnet ID: the high half
   is exactly 0xfec0_0000_0000_0000. *)
let site_local_hi = 0xFEC0_0000_0000_0000L

let generate ~pk_bytes ~rn =
  Address.make ~hi:site_local_hi ~lo:(interface_id ~pk_bytes ~rn)

let fresh g ~pk_bytes =
  let rn = Prng.bits64 g in
  (rn, generate ~pk_bytes ~rn)

let verify addr ~pk_bytes ~rn =
  Int64.equal addr.Address.hi site_local_hi
  && Int64.equal addr.Address.lo (interface_id ~pk_bytes ~rn)

let generate_under ~hi ~pk_bytes ~rn =
  Address.make ~hi ~lo:(interface_id ~pk_bytes ~rn)

let verify_under ~hi addr ~pk_bytes ~rn =
  Int64.equal addr.Address.hi hi
  && Int64.equal addr.Address.lo (interface_id ~pk_bytes ~rn)

let global_hi ~routing_prefix ~subnet =
  if subnet < 0 || subnet > 0xFFFF then invalid_arg "Cga.global_hi: subnet";
  let top48 = Int64.logand routing_prefix.Address.hi 0xFFFF_FFFF_FFFF_0000L in
  Int64.logor top48 (Int64.of_int subnet)
