lib/proto/directory.ml: Hashtbl List Manet_ipv6 Option
