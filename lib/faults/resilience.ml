open Manet_sim

type sample = {
  time : float;
  offered : int;
  delivered : int;
  rerr_sent : int;
  dad_configured : int;
}

type t = {
  engine : Engine.t;
  mutable samples : sample list; (* newest first *)
  mutable marks : (string * float * Stats.snapshot) list; (* newest first *)
}

let take_sample engine =
  let stats = Engine.stats engine in
  {
    time = Engine.now engine;
    offered = Stats.get stats "data.offered";
    delivered = Stats.get stats "data.delivered";
    rerr_sent = Stats.get stats "rerr.sent";
    dad_configured = Stats.get stats "dad.configured";
  }

let monitor ?(period = 1.0) ~until engine =
  if period <= 0.0 then invalid_arg "Resilience.monitor: period <= 0";
  let t = { engine; samples = []; marks = [] } in
  let rec at time =
    if time <= until then
      Engine.schedule_at engine ~label:"fault" ~time (fun () ->
          t.samples <- take_sample engine :: t.samples;
          at (time +. period))
  in
  at (Engine.now engine +. period);
  t

let samples t = List.rev t.samples

let mark t ~at name =
  Engine.schedule_at t.engine ~label:"fault" ~time:at (fun () ->
      t.marks <- (name, at, Stats.snapshot (Engine.stats t.engine)) :: t.marks)

let find_mark t name =
  List.find_map
    (fun (n, at, snap) -> if String.equal n name then Some (at, snap) else None)
    t.marks

let ratio_between before after =
  let d name =
    Stats.snapshot_get after name - Stats.snapshot_get before name
  in
  let offered = d "data.offered" in
  if offered <= 0 then None
  else Some (float_of_int (d "data.delivered") /. float_of_int offered)

let phase t ~from_mark ~to_mark =
  match (find_mark t from_mark, find_mark t to_mark) with
  | Some (_, before), Some (_, after) -> ratio_between before after
  | _ -> None

(* Delivery ratio over each sampling interval: how the network breathes
   through a fault window. *)
let delivery_curve t =
  let rec go = function
    | a :: (b :: _ as rest) ->
        let offered = b.offered - a.offered in
        let r =
          if offered <= 0 then None
          else Some (float_of_int (b.delivered - a.delivered) /. float_of_int offered)
        in
        (b.time, r) :: go rest
    | _ -> []
  in
  go (samples t)

(* First moment after [fault_at] at which deliveries resume: the sample
   whose delivered count exceeds the count at the last pre-fault sample.
   This brackets route-repair latency at the monitor's period. *)
let route_repair_latency t ~fault_at =
  let chron = samples t in
  let baseline =
    List.fold_left
      (fun acc s -> if s.time <= fault_at then s.delivered else acc)
      0 chron
  in
  List.find_map
    (fun s ->
      if s.time > fault_at && s.delivered > baseline then
        Some (s.time -. fault_at)
      else None)
    chron

(* Re-DAD convergence from the trace: the gap between a node's
   [fault.restart] and its next [dad.configured].  Requires tracing to
   have been enabled for the run. *)
let redad_convergence trace ~node =
  let entries = Trace.entries trace in
  let rec go restart_at = function
    | [] -> None
    | (e : Trace.entry) :: rest -> (
        match restart_at with
        | None ->
            if e.node = node && String.equal e.event "fault.restart" then
              go (Some e.time) rest
            else go None rest
        | Some t0 ->
            if e.node = node && String.equal e.event "dad.configured" then
              Some (e.time -. t0)
            else go restart_at rest)
  in
  go None entries

let pp_curve fmt t =
  Format.fprintf fmt "@[<v>";
  List.iter
    (fun (time, r) ->
      match r with
      | Some r -> Format.fprintf fmt "%8.2f  %.3f@," time r
      | None -> Format.fprintf fmt "%8.2f  -@," time)
    (delivery_curve t);
  Format.fprintf fmt "@]"
