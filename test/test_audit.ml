(* Tests for the security observability layer (DESIGN.md §5c): the
   typed audit event stream, the windowed metrics engine, and the
   online misbehaviour detector — including the end-to-end acceptance
   properties: planted adversaries are flagged, attacker-free runs flag
   nobody, and every export is byte-deterministic across replays. *)

module Engine = Manet_sim.Engine
module Stats = Manet_sim.Stats
module Obs = Manetsec.Obs
module Audit = Manetsec.Audit
module Metrics = Manetsec.Metrics
module Detector = Manetsec.Detector
module Json = Manetsec.Obs_json
module Adversary = Manetsec.Adversary
module Scenario = Manetsec.Scenario

(* A chain scenario with cached replies off, so route discoveries
   actually traverse the adversary instead of being answered upstream. *)
let chain_params ?(n = 5) ?(adversaries = []) ?(seed = 7) () =
  {
    Scenario.default_params with
    n;
    seed;
    range = 150.0;
    topology = Scenario.Chain { spacing = 100.0 };
    adversaries;
    secure_config =
      {
        Scenario.default_params.Scenario.secure_config with
        use_cache_replies = false;
      };
  }

(* ------------------------------------------------------------------ *)
(* Audit stream primitives                                            *)
(* ------------------------------------------------------------------ *)

let test_audit_stream_basics () =
  Alcotest.(check string) "schema" "manetsim-audit" Audit.schema;
  Alcotest.(check bool) "version stamped" true (Audit.schema_version >= 1);
  let e = Engine.create ~seed:1 () in
  let a = Audit.create e in
  let seen = ref [] in
  Audit.on_emit a (fun ev -> seen := ev.Audit.seq :: !seen);
  Engine.schedule e ~delay:1.5 (fun () ->
      Audit.emit a ~kind:Audit.Sig_verify_fail ~node:2 ~cause:"c1" ();
      Audit.emit a ~kind:Audit.Replay_rejected ~node:3 ~subject_node:4
        ~subject_addr:"fec0::5" ~cause:"c2" ());
  Engine.run e;
  Alcotest.(check int) "count" 2 (Audit.count a);
  (match Audit.events a with
  | [ e1; e2 ] ->
      Alcotest.(check int) "seq dense from 1" 1 e1.Audit.seq;
      Alcotest.(check int) "seq dense" 2 e2.Audit.seq;
      Alcotest.(check (float 1e-9)) "sim time stamped" 1.5 e1.Audit.time;
      Alcotest.(check (option int)) "subject node" (Some 4) e2.Audit.subject_node;
      Alcotest.(check (option string)) "subject addr" (Some "fec0::5")
        e2.Audit.subject_addr
  | l -> Alcotest.failf "expected 2 events, got %d" (List.length l));
  Alcotest.(check (list int)) "subscribers saw every emission" [ 2; 1 ] !seen;
  Alcotest.(check bool) "histogram over retained events" true
    (Audit.counts_by_kind (Audit.events a)
    = [ (Audit.Sig_verify_fail, 1); (Audit.Replay_rejected, 1) ])

let test_audit_recording_switch () =
  let e = Engine.create ~seed:1 () in
  let a = Audit.create ~capacity:2 e in
  Alcotest.(check bool) "recording on by default" true (Audit.recording a);
  Audit.set_recording a false;
  Audit.emit a ~kind:Audit.Dad_collision ~node:1 ~cause:"off" ();
  Alcotest.(check int) "counted while off" 1 (Audit.count a);
  Alcotest.(check int) "nothing retained while off" 0
    (List.length (Audit.events a));
  Audit.set_recording a true;
  for i = 1 to 3 do
    Audit.emit a ~kind:Audit.Dad_collision ~node:i ~cause:"on" ()
  done;
  Alcotest.(check int) "retention capped" 2 (List.length (Audit.events a));
  Alcotest.(check int) "oldest dropped" 1 (Audit.dropped a)

let test_audit_kind_labels () =
  List.iter
    (fun k ->
      let l = Audit.kind_label k in
      Alcotest.(check bool) (l ^ " label roundtrips") true
        (Audit.kind_of_label l = Some k))
    Audit.all_kinds;
  Alcotest.(check bool) "unknown label" true (Audit.kind_of_label "nope" = None);
  Alcotest.(check (list string)) "ground truth is exactly the attack family"
    [
      "attack_forgery"; "attack_replay"; "attack_drop"; "attack_impersonation";
      "attack_rerr"; "attack_churn";
    ]
    (List.map Audit.kind_label
       (List.filter Audit.is_ground_truth Audit.all_kinds))

let test_audit_jsonl_roundtrip () =
  let e = Engine.create ~seed:1 () in
  let a = Audit.create e in
  Engine.schedule e ~delay:0.25 (fun () ->
      Audit.emit a ~kind:Audit.Cga_mismatch ~node:1 ~subject_addr:"fec0::2"
        ~cause:"key/address binding" ();
      Audit.emit a ~kind:Audit.Blackhole_probe_result ~node:2 ~subject_node:3
        ~cause:"hop 1 of 2 silent" ());
  Engine.run e;
  let text = Audit.to_jsonl ~meta:[ ("seed", Json.Int 1) ] a in
  let parsed = Audit.parse_jsonl text in
  Alcotest.(check bool) "events roundtrip" true
    (parsed.Audit.parsed_events = Audit.events a);
  Alcotest.(check (option string)) "schema in header" (Some Audit.schema)
    (Option.bind (Json.member "schema" parsed.Audit.header) Json.to_string_opt);
  Alcotest.(check (option int)) "version in header" (Some Audit.schema_version)
    (Option.bind (Json.member "version" parsed.Audit.header) Json.to_int_opt);
  Alcotest.(check (option int)) "meta merged into header" (Some 1)
    (Option.bind (Json.member "seed" parsed.Audit.header) Json.to_int_opt);
  let reject text =
    match Audit.parse_jsonl text with
    | (_ : Audit.parsed) -> false
    | exception Json.Parse_error _ -> true
  in
  Alcotest.(check bool) "empty input rejected" true (reject "");
  Alcotest.(check bool) "wrong schema rejected" true
    (reject {|{"schema":"other","version":1}|});
  Alcotest.(check bool) "unknown kind rejected" true
    (reject
       (Printf.sprintf
          {|{"schema":"%s","version":%d}
{"type":"audit","seq":1,"t":0.0,"kind":"not_a_kind","node":1,"cause":"x"}|}
          Audit.schema Audit.schema_version))

(* ------------------------------------------------------------------ *)
(* Windowed metrics                                                   *)
(* ------------------------------------------------------------------ *)

let test_metrics_windows () =
  let e = Engine.create ~seed:1 () in
  let m = Metrics.create ~window:2.0 e in
  Alcotest.(check (float 0.0)) "window length" 2.0 (Metrics.window m);
  Alcotest.(check bool) "disabled by default" false (Metrics.enabled m);
  Metrics.record m ~node:1 "x";
  (* no-op while disabled *)
  Metrics.set_enabled m true;
  Metrics.record m ~node:1 "x";
  Engine.schedule e ~delay:3.0 (fun () ->
      Metrics.record m ~node:1 ~by:2 "x";
      Metrics.observe m ~node:2 "lat" 0.5);
  Engine.run e;
  Alcotest.(check int) "disabled call not counted, windows summed" 3
    (Metrics.counter_total m ~node:1 "x");
  Alcotest.(check int) "global pseudo-node aggregates" 3
    (Metrics.counter_total m ~node:Metrics.global_node "x");
  Alcotest.(check int) "absent counter" 0
    (Metrics.counter_total m ~node:1 "y");
  let csv = Metrics.to_csv m in
  let stats = Stats.create () in
  Stats.incr stats "c1";
  Stats.observe stats "s1" 1.0;
  let csv_with = Metrics.to_csv ~stats m in
  let prom = Metrics.to_prom ~stats m in
  Alcotest.(check bool) "csv has cells" true (String.length csv > 0);
  Alcotest.(check bool) "stat totals appended" true
    (String.length csv_with > String.length csv);
  Alcotest.(check bool) "prom exposition nonempty" true (String.length prom > 0)

(* ------------------------------------------------------------------ *)
(* Detector unit behaviour                                            *)
(* ------------------------------------------------------------------ *)

let mk ?subject_node ~time ~kind ~cause () =
  {
    Audit.seq = 0;
    time;
    kind;
    node = 9;
    subject_node;
    subject_addr = None;
    cause;
  }

let test_detector_weights () =
  Alcotest.(check (float 0.0)) "unattributed events carry no weight" 0.0
    (Detector.weight (mk ~time:0.0 ~kind:Audit.Replay_rejected ~cause:"x" ()));
  Alcotest.(check (float 0.0)) "ground truth is never evidence" 0.0
    (Detector.weight
       (mk ~subject_node:2 ~time:0.0 ~kind:Audit.Attack_drop ~cause:"x" ()));
  Alcotest.(check (float 0.0)) "claimed-identity kinds carry no weight" 0.0
    (Detector.weight
       (mk ~subject_node:2 ~time:0.0 ~kind:Audit.Cga_mismatch ~cause:"x" ()));
  Alcotest.(check (float 0.0)) "probe verdict full weight" 1.0
    (Detector.weight
       (mk ~subject_node:2 ~time:0.0 ~kind:Audit.Blackhole_probe_result
          ~cause:"hop silent" ()));
  Alcotest.(check (float 0.0)) "direct slash" 0.6
    (Detector.weight
       (mk ~subject_node:2 ~time:0.0 ~kind:Audit.Credit_slash ~cause:"drop" ()));
  Alcotest.(check (float 0.0)) "predecessor slash discounted" 0.2
    (Detector.weight
       (mk ~subject_node:2 ~time:0.0 ~kind:Audit.Credit_slash
          ~cause:"predecessor of silent hop" ()))

let test_detector_evidence_flagging () =
  let d = Detector.create ~config:Detector.default_config () in
  (* Two implausible RERRs: evidence 0.6, below both thresholds. *)
  Detector.feed d
    (mk ~subject_node:5 ~time:1.0 ~kind:Audit.Rerr_implausible ~cause:"x" ());
  Detector.feed d
    (mk ~subject_node:5 ~time:2.0 ~kind:Audit.Rerr_implausible ~cause:"x" ());
  Alcotest.(check (list int)) "below thresholds" [] (Detector.suspects d);
  (* One attributed probe verdict crosses the evidence threshold. *)
  Detector.feed d
    (mk ~subject_node:5 ~time:3.0 ~kind:Audit.Blackhole_probe_result
       ~cause:"hop silent" ());
  Alcotest.(check (list int)) "flagged" [ 5 ] (Detector.suspects d);
  match Detector.verdicts d with
  | [ v ] ->
      Alcotest.(check int) "node" 5 v.Detector.v_node;
      Alcotest.(check int) "events counted" 3 v.Detector.v_events;
      Alcotest.(check (float 1e-9)) "evidence accumulated" 1.6
        v.Detector.v_evidence;
      Alcotest.(check bool) "flag time = crossing event" true
        (v.Detector.v_flagged_at = Some 3.0)
  | l -> Alcotest.failf "expected one verdict, got %d" (List.length l)

let test_detector_ewma_flagging () =
  (* Evidence threshold out of reach: only the EWMA path can flag. *)
  let config =
    { Detector.default_config with Detector.evidence_threshold = 100.0 }
  in
  let d = Detector.create ~config () in
  Detector.feed d
    (mk ~subject_node:7 ~time:0.5 ~kind:Audit.Replay_rejected ~cause:"x" ());
  (* prospective EWMA 0.3 * 1.0 = 0.3 < 0.5 *)
  Alcotest.(check (list int)) "one event below EWMA threshold" []
    (Detector.suspects d);
  Detector.feed d
    (mk ~subject_node:7 ~time:1.0 ~kind:Audit.Replay_rejected ~cause:"x" ());
  (* prospective EWMA 0.3 * 2.0 = 0.6 >= 0.5: a same-window burst flags
     online, not one window late *)
  Alcotest.(check (list int)) "burst crosses EWMA" [ 7 ] (Detector.suspects d);
  (* A long quiet gap decays the EWMA back down (peak is retained). *)
  Detector.feed d
    (mk ~subject_node:7 ~time:100.0 ~kind:Audit.Rerr_implausible ~cause:"x" ());
  match Detector.verdicts d with
  | [ v ] ->
      Alcotest.(check bool) "peak retained above threshold" true
        (v.Detector.v_ewma_peak >= 0.5)
  | l -> Alcotest.failf "expected one verdict, got %d" (List.length l)

(* ------------------------------------------------------------------ *)
(* End-to-end: planted adversaries vs ground truth                    *)
(* ------------------------------------------------------------------ *)

let test_blackhole_flagged () =
  let adversaries = [ (2, { Adversary.blackhole with forge_rrep = false }) ] in
  let s = Scenario.create (chain_params ~adversaries ()) in
  Scenario.start_cbr s ~flows:[ (1, 4) ] ~interval:1.0 ~duration:10.0 ();
  Scenario.run s ~until:60.0;
  let det = Scenario.detector s in
  Alcotest.(check (list int)) "ground truth" [ 2 ] (Scenario.adversary_ids s);
  Alcotest.(check bool) "blackhole flagged" true
    (List.mem 2 (Detector.suspects det));
  let a = Detector.score det ~truth:(Scenario.adversary_ids s) in
  Alcotest.(check int) "true positive" 1 a.Detector.tp;
  Alcotest.(check int) "no miss" 0 a.Detector.fn;
  Alcotest.(check (float 0.0)) "recall" 1.0 a.Detector.recall;
  (* The adversary's own ground-truth events are in the stream. *)
  let evs = Audit.events (Obs.audit (Scenario.obs s)) in
  Alcotest.(check bool) "ground-truth drops recorded" true
    (List.exists (fun ev -> ev.Audit.kind = Audit.Attack_drop) evs);
  (* In a chain the blackhole answers its own probe and swallows the
     downstream hop's, so the probe verdict names the next hop and the
     blackhole is accused as its predecessor — the §3.4 ambiguity.  The
     repeated discounted slashes are what push it over the threshold. *)
  Alcotest.(check bool) "probe verdicts recorded" true
    (List.exists
       (fun ev -> ev.Audit.kind = Audit.Blackhole_probe_result)
       evs);
  Alcotest.(check bool) "predecessor slashes name the blackhole" true
    (List.exists
       (fun ev ->
         ev.Audit.kind = Audit.Credit_slash && ev.Audit.subject_node = Some 2)
       evs);
  (* Renderer smoke: both views mention the culprit. *)
  Alcotest.(check bool) "timeline renders" true
    (String.length (Audit.render_timeline evs) > 0);
  Alcotest.(check bool) "scorecards render" true
    (String.length (Audit.render_scorecards evs) > 0)

let test_replayer_flagged () =
  let adversaries = [ (2, Adversary.replayer) ] in
  let s = Scenario.create (chain_params ~adversaries ()) in
  (* First discovery: the replayer captures the genuine RREP in
     transit; the second (from another source, same destination)
     triggers the replay. *)
  let got1 = ref None in
  Scenario.discover s ~src:1 ~dst:4 (fun r -> got1 := Some r);
  Scenario.run s ~until:10.0;
  (match !got1 with
  | Some (Some _) -> ()
  | _ -> Alcotest.fail "discovery 1 failed");
  Scenario.discover s ~src:0 ~dst:4 (fun _ -> ());
  Scenario.run s ~until:30.0;
  let det = Scenario.detector s in
  Alcotest.(check bool) "replayer flagged" true
    (List.mem 2 (Detector.suspects det));
  let a = Detector.score det ~truth:(Scenario.adversary_ids s) in
  Alcotest.(check int) "no miss" 0 a.Detector.fn;
  Alcotest.(check (float 0.0)) "recall" 1.0 a.Detector.recall;
  let evs = Audit.events (Obs.audit (Scenario.obs s)) in
  Alcotest.(check bool) "attributed replay rejection recorded" true
    (List.exists
       (fun ev ->
         ev.Audit.kind = Audit.Replay_rejected
         && ev.Audit.subject_node = Some 2)
       evs)

let test_attacker_free_zero_flags () =
  let s = Scenario.create (chain_params ()) in
  Scenario.start_cbr s ~flows:[ (1, 4) ] ~interval:1.0 ~duration:10.0 ();
  Scenario.run s ~until:60.0;
  Alcotest.(check (list int)) "no ground truth" [] (Scenario.adversary_ids s);
  Alcotest.(check (list int)) "no suspects" []
    (Detector.suspects (Scenario.detector s));
  let a =
    Detector.score (Scenario.detector s) ~truth:(Scenario.adversary_ids s)
  in
  Alcotest.(check int) "no false positives" 0 a.Detector.fp;
  Alcotest.(check (float 0.0)) "vacuous precision" 1.0 a.Detector.precision

(* ------------------------------------------------------------------ *)
(* Export byte-determinism and offline replay                         *)
(* ------------------------------------------------------------------ *)

let run_blackhole () =
  let adversaries = [ (2, { Adversary.blackhole with forge_rrep = false }) ] in
  let s = Scenario.create (chain_params ~adversaries ()) in
  Metrics.set_enabled (Obs.metrics (Scenario.obs s)) true;
  Scenario.start_cbr s ~flows:[ (1, 4) ] ~interval:1.0 ~duration:10.0 ();
  Scenario.run s ~until:60.0;
  s

let test_export_byte_determinism () =
  let s1 = run_blackhole () in
  let s2 = run_blackhole () in
  let audit s =
    Audit.to_jsonl ~meta:[ ("seed", Json.Int 7) ] (Obs.audit (Scenario.obs s))
  in
  let csv s = Metrics.to_csv ~stats:(Scenario.stats s) (Obs.metrics (Scenario.obs s)) in
  let prom s =
    Metrics.to_prom ~stats:(Scenario.stats s) (Obs.metrics (Scenario.obs s))
  in
  Alcotest.(check bool) "audit jsonl byte-identical" true
    (String.equal (audit s1) (audit s2));
  Alcotest.(check bool) "metrics csv byte-identical" true
    (String.equal (csv s1) (csv s2));
  Alcotest.(check bool) "metrics prom byte-identical" true
    (String.equal (prom s1) (prom s2));
  (* Replaying the exported stream offline reaches the online verdicts:
     the detector is a pure fold over the event stream. *)
  let offline = Detector.create () in
  List.iter (Detector.feed offline)
    (Audit.parse_jsonl (audit s1)).Audit.parsed_events;
  Alcotest.(check (list int)) "offline replay = online verdicts"
    (Detector.suspects (Scenario.detector s1))
    (Detector.suspects offline)

let tc name f = Alcotest.test_case name `Quick f

let suites =
  [
    ( "audit",
      [
        tc "stream basics" test_audit_stream_basics;
        tc "recording switch" test_audit_recording_switch;
        tc "kind labels" test_audit_kind_labels;
        tc "jsonl roundtrip" test_audit_jsonl_roundtrip;
        tc "metrics windows" test_metrics_windows;
        tc "detector weights" test_detector_weights;
        tc "detector evidence flagging" test_detector_evidence_flagging;
        tc "detector ewma flagging" test_detector_ewma_flagging;
        tc "blackhole flagged" test_blackhole_flagged;
        tc "replayer flagged" test_replayer_flagged;
        tc "attacker-free zero flags" test_attacker_free_zero_flags;
        tc "export byte determinism" test_export_byte_determinism;
      ] );
  ]
