lib/proto/identity.ml: Manet_crypto Manet_ipv6
