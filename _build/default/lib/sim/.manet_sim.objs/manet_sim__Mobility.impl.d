lib/sim/mobility.ml: Array Engine Float Manet_crypto Topology
