examples/internet_gateway.ml: Array Manetsec Printf
