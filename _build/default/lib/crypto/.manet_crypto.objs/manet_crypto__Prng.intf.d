lib/crypto/prng.mli:
