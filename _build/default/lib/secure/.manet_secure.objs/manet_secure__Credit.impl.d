lib/secure/credit.ml: Hashtbl List Manet_ipv6 Option
