(* analyzer_common — the shared runtime of the AST analyzers
   (manetsem, manetdom, manethot).  One comment scanner, one
   allow-directive grammar (with per-tool strictness switches), one
   parse/alias/binding toolkit over compiler-libs, and one baseline
   fresh/stale/diff semantics, so every analyzer suppresses, pins and
   reports findings identically.  See common.mli. *)

open Parsetree

type finding = { file : string; line : int; rule : string; msg : string }

let pp_finding fmt f =
  Format.fprintf fmt "%s:%d: [%s] %s" f.file f.line f.rule f.msg

let compare_findings a b =
  match compare a.file b.file with
  | 0 -> (
      match compare a.line b.line with
      | 0 -> (
          match compare a.rule b.rule with 0 -> compare a.msg b.msg | c -> c)
      | c -> c)
  | c -> c

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

(* ------------------------------------------------------------------ *)
(* Comment scanning.  The parser drops comments, so suppression
   directives are collected lexically: strings (plain and {id|...|id}),
   char literals and nested comments are tracked so that comment line
   ranges are exact. *)

let scan_comments src =
  let n = String.length src in
  let comments = ref [] in
  let line = ref 1 in
  let i = ref 0 in
  let bump c = if c = '\n' then incr line in
  while !i < n do
    let c = src.[!i] in
    if c = '(' && !i + 1 < n && src.[!i + 1] = '*' then begin
      let l0 = !line in
      let buf = Buffer.create 64 in
      let depth = ref 1 in
      i := !i + 2;
      while !depth > 0 && !i < n do
        if !i + 1 < n && src.[!i] = '(' && src.[!i + 1] = '*' then begin
          incr depth;
          Buffer.add_string buf "(*";
          i := !i + 2
        end
        else if !i + 1 < n && src.[!i] = '*' && src.[!i + 1] = ')' then begin
          decr depth;
          if !depth > 0 then Buffer.add_string buf "*)";
          i := !i + 2
        end
        else begin
          bump src.[!i];
          Buffer.add_char buf src.[!i];
          incr i
        end
      done;
      comments := (Buffer.contents buf, l0, !line) :: !comments
    end
    else if c = '"' then begin
      incr i;
      let fin = ref false in
      while (not !fin) && !i < n do
        match src.[!i] with
        | '\\' ->
            if !i + 1 < n && src.[!i + 1] = '\n' then incr line;
            i := !i + 2
        | '"' ->
            fin := true;
            incr i
        | ch ->
            bump ch;
            incr i
      done
    end
    else if c = '{' then begin
      let j = ref (!i + 1) in
      while
        !j < n && (match src.[!j] with 'a' .. 'z' | '_' -> true | _ -> false)
      do
        incr j
      done;
      if !j < n && src.[!j] = '|' then begin
        let id = String.sub src (!i + 1) (!j - !i - 1) in
        let close = "|" ^ id ^ "}" in
        let cl = String.length close in
        i := !j + 1;
        let fin = ref false in
        while (not !fin) && !i < n do
          if !i + cl <= n && String.sub src !i cl = close then begin
            fin := true;
            i := !i + cl
          end
          else begin
            bump src.[!i];
            incr i
          end
        done
      end
      else begin
        bump c;
        incr i
      end
    end
    else if c = '\'' then begin
      if !i + 2 < n && src.[!i + 1] = '\\' then begin
        let j = ref (!i + 2) in
        while !j < n && src.[!j] <> '\'' && !j < !i + 6 do
          incr j
        done;
        if !j < n && src.[!j] = '\'' then i := !j + 1 else incr i
      end
      else if !i + 2 < n && src.[!i + 2] = '\'' then begin
        if src.[!i + 1] = '\n' then incr line;
        i := !i + 3
      end
      else incr i
    end
    else begin
      bump c;
      incr i
    end
  done;
  List.rev !comments

let words_of s =
  String.split_on_char '\n' s
  |> List.concat_map (String.split_on_char '\t')
  |> List.concat_map (String.split_on_char ' ')
  |> List.filter (fun w -> w <> "")

(* ------------------------------------------------------------------ *)
(* Allow directives.  Two grammars share this scanner:

   - legacy (manetsem): the directive must open the comment and needs no
     rationale ([anywhere = false], [require_rationale = false]);
   - strict (manetdom, manethot): the directive may sit anywhere inside
     a comment — so one block can carry several tools' allows — and the
     prose after the rule names (up to the next [tool:] marker) is
     mandatory; a directive without it lands in [a_bad] instead of
     suppressing.

   An [allow] suppresses on the comment's own lines and on the line
   directly below the comment's last line; [allow-file] suppresses
   file-wide. *)

type allows = {
  a_ranges : (string * int * int) list; (* rule, first line, last line *)
  a_whole : string list;
  a_bad : int list; (* strict-mode directive lines missing their rationale *)
}

let no_allows = { a_ranges = []; a_whole = []; a_bad = [] }

let rec drop n l =
  if n <= 0 then l else match l with [] -> [] | _ :: t -> drop (n - 1) t

let has_prose ws =
  List.exists
    (fun w ->
      String.exists (function 'a' .. 'z' | 'A' .. 'Z' -> true | _ -> false) w)
    ws

let scan_allows ~tool ~rules ?(anywhere = false) ?(require_rationale = false)
    src =
  let marker = tool ^ ":" in
  let rec take_rules = function
    | w :: rest when List.mem w rules -> w :: take_rules rest
    | _ -> []
  in
  let rec until_next acc = function
    | [] -> List.rev acc
    | w :: _ when w = marker -> List.rev acc
    | w :: rest -> until_next (w :: acc) rest
  in
  let apply acc kw rest l0 l1 =
    let rs = take_rules rest in
    let tail = drop (List.length rs) rest in
    let rationale = until_next [] tail in
    if rs = [] || (require_rationale && not (has_prose rationale)) then
      if require_rationale then { acc with a_bad = l0 :: acc.a_bad } else acc
    else if kw = "allow-file" then { acc with a_whole = rs @ acc.a_whole }
    else
      {
        acc with
        a_ranges = List.map (fun r -> (r, l0, l1 + 1)) rs @ acc.a_ranges;
      }
  in
  List.fold_left
    (fun acc (text, l0, l1) ->
      if anywhere then
        let rec go acc = function
          | [] -> acc
          | w :: kw :: rest when w = marker && (kw = "allow" || kw = "allow-file")
            ->
              go (apply acc kw rest l0 l1) rest
          | _ :: rest -> go acc rest
        in
        go acc (words_of text)
      else
        match words_of text with
        | w :: kw :: rest when w = marker && (kw = "allow" || kw = "allow-file")
          ->
            apply acc kw rest l0 l1
        | _ -> acc)
    no_allows (scan_comments src)

let suppressed ?(protect = []) allows f =
  (not (List.mem f.rule protect))
  && (List.mem f.rule allows.a_whole
     || List.exists
          (fun (r, a, b) -> r = f.rule && a <= f.line && f.line <= b)
          allows.a_ranges)

(* ------------------------------------------------------------------ *)
(* Parsing and per-file units. *)

type parsed =
  | Impl of structure
  | Intf of signature
  | Fail of int * string

type unit_ = {
  u_path : string;
  u_mod : string;
  u_parsed : parsed;
  u_aliases : (string, string) Hashtbl.t;
  u_allows : allows;
  u_analyzed : bool;
}

let first_line s =
  match String.index_opt s '\n' with
  | Some i -> String.sub s 0 i
  | None -> s

let parse_file path content =
  let lexbuf = Lexing.from_string content in
  Lexing.set_filename lexbuf path;
  try
    if Filename.check_suffix path ".mli" then Intf (Parse.interface lexbuf)
    else Impl (Parse.implementation lexbuf)
  with exn ->
    let line = (Lexing.lexeme_start_p lexbuf).Lexing.pos_lnum in
    Fail (line, first_line (Printexc.to_string exn))

let rec lid_last = function
  | Longident.Lident s -> s
  | Longident.Ldot (_, s) -> s
  | Longident.Lapply (_, l) -> lid_last l

(* [resolve] maps a reference to an (optional module last-component,
   name) pair.  Local [module X = A.B] aliases are chased one step; all
   library module basenames in this tree are distinct, so the last
   component identifies a module uniquely. *)
let resolve aliases lid =
  match lid with
  | Longident.Lident x -> (None, x)
  | Longident.Ldot (p, x) ->
      let m =
        match p with
        | Longident.Lident m0 -> (
            match Hashtbl.find_opt aliases m0 with Some r -> r | None -> m0)
        | _ -> lid_last p
      in
      (Some m, x)
  | Longident.Lapply (_, _) -> (None, lid_last lid)

let rec collect_aliases str tbl =
  List.iter
    (fun item ->
      match item.pstr_desc with
      | Pstr_module
          {
            pmb_name = { txt = Some name; _ };
            pmb_expr = { pmod_desc = Pmod_ident { txt; _ }; _ };
            _;
          } ->
          Hashtbl.replace tbl name (lid_last txt)
      | Pstr_module
          { pmb_expr = { pmod_desc = Pmod_structure sub; _ }; _ } ->
          collect_aliases sub tbl
      | _ -> ())
    str

let mk_unit ?(analyzed = true) ~scan (path, content) =
  let parsed = parse_file path content in
  let aliases = Hashtbl.create 8 in
  (match parsed with Impl str -> collect_aliases str aliases | _ -> ());
  {
    u_path = path;
    u_mod =
      String.capitalize_ascii
        (Filename.remove_extension (Filename.basename path));
    u_parsed = parsed;
    u_aliases = aliases;
    u_allows = (if analyzed then scan content else no_allows);
    u_analyzed = analyzed;
  }

let parse_failures units =
  List.filter_map
    (fun u ->
      match u.u_parsed with
      | Fail (line, msg) when u.u_analyzed ->
          Some
            {
              file = u.u_path;
              line;
              rule = "parse";
              msg = "file does not parse: " ^ msg;
            }
      | _ -> None)
    units

let annotation_findings ~tool units =
  List.concat_map
    (fun u ->
      List.map
        (fun line ->
          {
            file = u.u_path;
            line;
            rule = "annotation";
            msg =
              tool
              ^ " allow directive needs at least one known rule name and a \
                 rationale (prose after the rule names)";
          })
        u.u_allows.a_bad)
    units

(* ------------------------------------------------------------------ *)
(* Top-level bindings, nested modules included. *)

type binding = {
  b_unit : unit_;
  b_mod : string; (* enclosing module: file module or submodule *)
  b_name : string;
  b_expr : expression;
  b_line : int;
}

let rec binding_name p =
  match p.ppat_desc with
  | Ppat_var { txt; _ } -> Some txt
  | Ppat_constraint (q, _) -> binding_name q
  | _ -> None

let collect_bindings u =
  let out = ref [] in
  let rec go modname items =
    List.iter
      (fun item ->
        match item.pstr_desc with
        | Pstr_value (_, vbs) ->
            List.iter
              (fun vb ->
                match binding_name vb.pvb_pat with
                | Some name ->
                    out :=
                      {
                        b_unit = u;
                        b_mod = modname;
                        b_name = name;
                        b_expr = vb.pvb_expr;
                        b_line = vb.pvb_loc.Location.loc_start.Lexing.pos_lnum;
                      }
                      :: !out
                | None -> ())
              vbs
        | Pstr_module
            {
              pmb_name = { txt = Some sub; _ };
              pmb_expr = { pmod_desc = Pmod_structure str; _ };
              _;
            } ->
            go sub str
        | _ -> ())
      items
  in
  (match u.u_parsed with Impl str -> go u.u_mod str | _ -> ());
  List.rev !out

(* One-level expression children, for generic traversal cases. *)
let sub_expressions e =
  let acc = ref [] in
  let sub =
    {
      Ast_iterator.default_iterator with
      expr = (fun _ x -> acc := x :: !acc);
    }
  in
  Ast_iterator.default_iterator.expr sub e;
  List.rev !acc

let filter_suppressed ?protect units findings =
  let tbl = Hashtbl.create 64 in
  List.iter (fun u -> Hashtbl.replace tbl u.u_path u.u_allows) units;
  let allows_for path =
    match Hashtbl.find_opt tbl path with Some a -> a | None -> no_allows
  in
  findings
  |> List.filter (fun f -> not (suppressed ?protect (allows_for f.file) f))
  |> List.sort_uniq compare_findings

(* ------------------------------------------------------------------ *)
(* Baseline. *)

let finding_key f = f.file ^ "|" ^ f.rule ^ "|" ^ f.msg

let render_baseline ~tool findings =
  let keys = List.sort_uniq compare (List.map finding_key findings) in
  let header =
    Printf.sprintf
      "# %s baseline — accepted pre-existing findings.\n\
       # One key per line: file|rule|message.  Regenerate with:\n\
       #   dune exec tools/%s/main.exe -- --write-baseline\n"
      tool tool
  in
  header ^ String.concat "" (List.map (fun k -> k ^ "\n") keys)

let parse_baseline s =
  String.split_on_char '\n' s
  |> List.map String.trim
  |> List.filter (fun l -> l <> "" && l.[0] <> '#')

let diff_baseline ~baseline findings =
  let fresh =
    List.filter (fun f -> not (List.mem (finding_key f) baseline)) findings
  in
  let keys = List.map finding_key findings in
  let stale = List.filter (fun k -> not (List.mem k keys)) baseline in
  (fresh, stale)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json ~baseline findings =
  let obj f =
    Printf.sprintf
      "{\"file\":\"%s\",\"line\":%d,\"rule\":\"%s\",\"msg\":\"%s\",\"baselined\":%b}"
      (json_escape f.file) f.line (json_escape f.rule) (json_escape f.msg)
      (List.mem (finding_key f) baseline)
  in
  "[" ^ String.concat ",\n " (List.map obj findings) ^ "]\n"
