module Address = Manet_ipv6.Address
module Prng = Manet_crypto.Prng
module Suite = Manet_crypto.Suite
module Engine = Manet_sim.Engine
module Stats = Manet_sim.Stats
module Topology = Manet_sim.Topology
module Net = Manet_sim.Net
module Directory = Manet_proto.Directory
module Identity = Manet_proto.Identity
module Aodv = Manet_aodv.Aodv

type params = {
  n : int;
  seed : int;
  range : float;
  loss : float;
  secure : bool;
  topology : [ `Chain of float | `Grid of int * float | `Random of float * float ];
  adversaries : (int * Aodv_adversary.behavior) list;
  config : Aodv.config;
}

let default_params =
  {
    n = 20;
    seed = 1;
    range = 250.0;
    loss = 0.0;
    secure = false;
    topology = `Random (1000.0, 1000.0);
    adversaries = [];
    config = Aodv.default_config;
  }

type t = {
  params : params;
  engine : Engine.t;
  net : Aodv.msg Net.t;
  agents : Aodv.t array;
  identities : Identity.t array;
}

let create params =
  let engine = Engine.create ~seed:params.seed () in
  let root = Engine.rng engine in
  let topo =
    match params.topology with
    | `Chain spacing -> Topology.chain ~n:params.n ~spacing
    | `Grid (cols, spacing) ->
        let rows = (params.n + cols - 1) / cols in
        Topology.grid ~rows ~cols ~spacing
    | `Random (w, h) ->
        Topology.random_connected (Prng.split root) ~n:params.n ~width:w ~height:h
          ~range:params.range
  in
  let net_config =
    { Net.default_config with range = params.range; loss = params.loss }
  in
  let net = Net.create ~config:net_config engine topo in
  let directory = Directory.create () in
  let suite = Suite.mock (Prng.split root) in
  let id_rng = Prng.split root in
  let identities =
    Array.init params.n (fun i -> Identity.create suite id_rng ~node_id:i)
  in
  Array.iteri
    (fun i id -> Directory.register directory id.Identity.address i)
    identities;
  let config = { params.config with secure = params.secure } in
  let agents =
    Array.init params.n (fun i ->
        Aodv.create ~config ~net ~directory ~identity:identities.(i)
          ~rng:(Prng.split root) ())
  in
  let behaviors = Hashtbl.create 8 in
  List.iter (fun (i, b) -> Hashtbl.replace behaviors i b) params.adversaries;
  Array.iteri
    (fun i agent ->
      match Hashtbl.find_opt behaviors i with
      | Some behavior ->
          let adv =
            Aodv_adversary.create ~behavior ~delegate:agent ~rng:(Prng.split root) ()
          in
          Net.set_handler net i (fun ~src msg -> Aodv_adversary.handle adv ~src msg)
      | None ->
          Net.set_handler net i (fun ~src msg -> Aodv.handle agent ~src msg))
    agents;
  { params; engine; net; agents; identities }

let engine t = t.engine
let stats t = Engine.stats t.engine
let agent t i = t.agents.(i)
let address_of t i = t.identities.(i).Identity.address

let send t ~src ~dst ?(size = 512) () =
  Aodv.send t.agents.(src) ~dst:(address_of t dst) ~size ()

let start_cbr t ~flows ~interval ?(size = 512) ~duration () =
  let t0 = Engine.now t.engine in
  List.iter
    (fun (src, dst) ->
      let rec tick at =
        if at <= t0 +. duration then
          Engine.schedule_at t.engine ~label:"traffic" ~time:at (fun () ->
              send t ~src ~dst ~size ();
              tick (at +. interval))
      in
      tick t0)
    flows

let run ?until t =
  match until with
  | Some limit -> Engine.run ~until:limit t.engine
  | None -> Engine.run t.engine

let delivery_ratio t =
  let s = stats t in
  let offered = Stats.get s "data.offered" in
  if offered = 0 then 1.0
  else float_of_int (Stats.get s "data.delivered") /. float_of_int offered
