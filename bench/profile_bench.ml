(* The `profile` bench section: run a fixed-seed scenario with engine
   wall-clock profiling on, print the per-event-class breakdown and
   events/sec, and export the telemetry artefacts (JSONL trace + JSON
   run report) that CI uploads and diffs for determinism.

   Profiling samples the host monotonic clock strictly outside the
   deterministic sim-time domain, so the exported JSONL trace here is
   byte-identical to one produced without --profile. *)

module Scenario = Manetsec.Scenario
module Engine = Manetsec.Sim.Engine
module Obs = Manetsec.Obs
module Json = Manetsec.Obs_json
module Report = Manetsec.Obs_report
module Faults = Manetsec.Faults

let seed = 42
let trace_file = "bench-profile-trace.jsonl"
let report_file = "bench-profile-report.json"

let write_file path contents =
  let oc = open_out_bin path in
  output_string oc contents;
  close_out oc

let run () =
  Util.heading "PROFILE: engine wall-clock accounting + telemetry export";
  let params =
    {
      Scenario.default_params with
      n = 16;
      seed;
      topology = Scenario.Random { width = 900.0; height = 900.0 };
    }
  in
  let s = Scenario.create params in
  let engine = Scenario.engine s in
  Engine.set_profiling engine true;
  Obs.set_capture (Scenario.obs s) true;
  Scenario.bootstrap s;
  (* A burst of churn so the trace exercises fault.outage -> re-DAD
     parenting, then steady CBR traffic.  Fault times are absolute, so
     offset them past the bootstrap horizon. *)
  let t0 = Engine.now engine in
  Scenario.inject s
    (Faults.seq
       [
         Faults.outage ~from:(t0 +. 5.0) ~until:(t0 +. 15.0) 3;
         Faults.outage ~from:(t0 +. 8.0) ~until:(t0 +. 18.0) 7;
       ]);
  Scenario.start_cbr s
    ~flows:[ (1, 9); (2, 12); (5, 14) ]
    ~interval:0.5 ~duration:30.0 ();
  Scenario.run s ~until:(Engine.now engine +. 60.0);
  Util.subheading "per-event-class wall clock";
  Util.print_table
    ~header:[ "class"; "events"; "wall ms"; "us/event" ]
    (List.map
       (fun (label, e) ->
         [
           label;
           Util.i e.Engine.p_count;
           Printf.sprintf "%.3f" (e.Engine.p_wall_s *. 1000.0);
           (if e.Engine.p_count = 0 then "-"
            else
              Printf.sprintf "%.2f"
                (e.Engine.p_wall_s *. 1e6 /. float_of_int e.Engine.p_count));
         ])
       (Engine.profile engine));
  Printf.printf "\n%d events in %.1f ms wall: %.0f events/s\n"
    (Engine.events_processed engine)
    (Engine.wall_in_run engine *. 1000.0)
    (Engine.events_per_sec engine);
  write_file trace_file
    (Obs.to_jsonl ~meta:[ ("seed", Json.Int seed) ] (Scenario.obs s));
  let report =
    Report.run_report ~engine ~obs:(Scenario.obs s)
      ~extra:[ ("seed", Json.Int seed); ("section", Json.String "profile") ]
      ()
  in
  write_file report_file (Json.to_string report ^ "\n");
  Printf.printf "wrote %s and %s\n" trace_file report_file
