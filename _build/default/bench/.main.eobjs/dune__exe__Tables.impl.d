bench/tables.ml: List Manetsec Printf String Util
