lib/dns/dns.ml: Hashtbl List Manet_crypto Manet_dad Manet_ipv6 Manet_proto Manet_sim Printf String
