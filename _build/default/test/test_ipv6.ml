(* Tests for IPv6 address handling and the Figure 1 CGA scheme. *)

module Prng = Manet_crypto.Prng
module Address = Manet_ipv6.Address
module Cga = Manet_ipv6.Cga

let qtest ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name gen prop)

let addr_testable = Alcotest.testable Address.pp Address.equal

let parse s =
  match Address.of_string s with
  | Ok a -> a
  | Error e -> Alcotest.failf "parse %s: %s" s e

(* ------------------------------------------------------------------ *)
(* Address parsing and printing                                       *)
(* ------------------------------------------------------------------ *)

let test_parse_full_form () =
  let a = parse "fe80:0:0:0:1:2:3:4" in
  Alcotest.(check (array int))
    "groups"
    [| 0xfe80; 0; 0; 0; 1; 2; 3; 4 |]
    (Address.to_groups a)

let test_parse_compressed () =
  List.iter
    (fun (s, groups) ->
      Alcotest.(check (array int)) s groups (Address.to_groups (parse s)))
    [
      ("::", [| 0; 0; 0; 0; 0; 0; 0; 0 |]);
      ("::1", [| 0; 0; 0; 0; 0; 0; 0; 1 |]);
      ("1::", [| 1; 0; 0; 0; 0; 0; 0; 0 |]);
      ("fec0::1:2", [| 0xfec0; 0; 0; 0; 0; 0; 1; 2 |]);
      ("fec0:0:0:ffff::1", [| 0xfec0; 0; 0; 0xffff; 0; 0; 0; 1 |]);
      ("a:b:c:d:e:f::1", [| 0xa; 0xb; 0xc; 0xd; 0xe; 0xf; 0; 1 |]);
    ]

let test_parse_ipv4_mapped () =
  let a = parse "::ffff:192.168.1.2" in
  Alcotest.(check (array int))
    "groups"
    [| 0; 0; 0; 0; 0; 0xffff; 0xc0a8; 0x0102 |]
    (Address.to_groups a)

let test_parse_errors () =
  List.iter
    (fun s ->
      match Address.of_string s with
      | Ok _ -> Alcotest.failf "expected failure for %s" s
      | Error _ -> ())
    [
      "";
      ":::";
      "1::2::3";
      "1:2:3:4:5:6:7";
      "1:2:3:4:5:6:7:8:9";
      "12345::";
      "g::1";
      "1:2:3:4:5:6:7:8::";
      "::256.1.1.1";
      "::1.2.3";
      "1.2.3.4";
    ]

let test_print_canonical () =
  (* RFC 5952: longest zero run compressed, leftmost tie, lowercase. *)
  List.iter
    (fun (input, expected) ->
      Alcotest.(check string) input expected (Address.to_string (parse input)))
    [
      ("0:0:0:0:0:0:0:0", "::");
      ("0:0:0:0:0:0:0:1", "::1");
      ("FEC0:0:0:FFFF:0:0:0:1", "fec0:0:0:ffff::1");
      ("1:0:0:2:0:0:0:3", "1:0:0:2::3");
      ("1:0:0:2:2:0:0:3", "1::2:2:0:0:3");
      ("1:2:3:4:5:6:7:8", "1:2:3:4:5:6:7:8");
      ("1:0:2:3:4:5:6:7", "1:0:2:3:4:5:6:7");
    ]

let arb_addr =
  QCheck.make
    ~print:(fun a -> Address.to_string a)
    QCheck.Gen.(
      map2
        (fun seed sparse ->
          let g = Prng.create ~seed in
          (* Sparse addresses exercise the '::' compression paths. *)
          let group _ =
            if sparse then if Prng.int g 3 = 0 then Prng.int g 0x10000 else 0
            else Prng.int g 0x10000
          in
          Address.of_groups (Array.init 8 group))
        int bool)

let prop_string_roundtrip =
  qtest "address: of_string (to_string a) = a" arb_addr (fun a ->
      match Address.of_string (Address.to_string a) with
      | Ok b -> Address.equal a b
      | Error _ -> false)

let prop_bytes_roundtrip =
  qtest "address: of_bytes (to_bytes a) = a" arb_addr (fun a ->
      Address.equal a (Address.of_bytes (Address.to_bytes a)))

let prop_groups_roundtrip =
  qtest "address: of_groups (to_groups a) = a" arb_addr (fun a ->
      Address.equal a (Address.of_groups (Address.to_groups a)))

let prop_compare_consistent =
  qtest "address: compare consistent with equal"
    QCheck.(pair arb_addr arb_addr)
    (fun (a, b) -> Address.equal a b = (Address.compare a b = 0))

let test_bytes_layout () =
  let a = parse "0102:0304:0506:0708:090a:0b0c:0d0e:0f10" in
  Alcotest.(check string)
    "network order"
    "\x01\x02\x03\x04\x05\x06\x07\x08\x09\x0a\x0b\x0c\x0d\x0e\x0f\x10"
    (Address.to_bytes a)

let test_prefixes () =
  Alcotest.(check bool) "fec0 is site local" true
    (Address.is_site_local (parse "fec0::1"));
  Alcotest.(check bool) "febf is site local (10-bit prefix)" true
    (Address.is_site_local (parse "fecf::1"));
  Alcotest.(check bool) "fe80 is not site local" false
    (Address.is_site_local (parse "fe80::1"));
  Alcotest.(check bool) "2001 is not site local" false
    (Address.is_site_local (parse "2001:db8::1"));
  Alcotest.(check bool) "prefix len 0 matches all" true
    (Address.matches_prefix (parse "1::") ~prefix:(parse "2::") ~len:0);
  Alcotest.(check bool) "full 128 match" true
    (Address.matches_prefix (parse "1::2") ~prefix:(parse "1::2") ~len:128);
  Alcotest.(check bool) "full 128 mismatch" false
    (Address.matches_prefix (parse "1::2") ~prefix:(parse "1::3") ~len:128);
  Alcotest.(check bool) "mismatch beyond 64 detected" false
    (Address.matches_prefix (parse "1::2") ~prefix:(parse "1::3") ~len:128)

let test_dns_constants () =
  Alcotest.(check string) "dns1" "fec0:0:0:ffff::1" (Address.to_string Address.dns_server_1);
  Alcotest.(check string) "dns2" "fec0:0:0:ffff::2" (Address.to_string Address.dns_server_2);
  Alcotest.(check string) "dns3" "fec0:0:0:ffff::3" (Address.to_string Address.dns_server_3);
  Alcotest.(check bool) "dns1 site local" true (Address.is_site_local Address.dns_server_1)

(* ------------------------------------------------------------------ *)
(* CGA                                                                *)
(* ------------------------------------------------------------------ *)

let test_cga_layout () =
  let addr = Cga.generate ~pk_bytes:"some public key" ~rn:42L in
  (* Figure 1: site-local prefix, 38 zero bits, zero subnet ID. *)
  Alcotest.(check bool) "site local" true (Address.is_site_local addr);
  let groups = Address.to_groups addr in
  Alcotest.(check int) "group 0 = fec0" 0xfec0 groups.(0);
  Alcotest.(check int) "group 1 zero" 0 groups.(1);
  Alcotest.(check int) "group 2 zero" 0 groups.(2);
  Alcotest.(check int) "subnet id zero" 0 groups.(3)

let test_cga_deterministic () =
  let a = Cga.generate ~pk_bytes:"pk" ~rn:7L in
  let b = Cga.generate ~pk_bytes:"pk" ~rn:7L in
  Alcotest.check addr_testable "same inputs same address" a b

let test_cga_verify_accepts () =
  let g = Prng.create ~seed:1 in
  for _ = 1 to 50 do
    let pk_bytes = Prng.bytes g 64 in
    let rn, addr = Cga.fresh g ~pk_bytes in
    Alcotest.(check bool) "verifies" true (Cga.verify addr ~pk_bytes ~rn)
  done

let test_cga_verify_rejects_wrong_pk () =
  let addr = Cga.generate ~pk_bytes:"alice" ~rn:1L in
  Alcotest.(check bool) "wrong pk" false (Cga.verify addr ~pk_bytes:"mallory" ~rn:1L)

let test_cga_verify_rejects_wrong_rn () =
  let addr = Cga.generate ~pk_bytes:"alice" ~rn:1L in
  Alcotest.(check bool) "wrong rn" false (Cga.verify addr ~pk_bytes:"alice" ~rn:2L)

let test_cga_verify_rejects_non_site_local () =
  (* The right hash in the wrong prefix must fail: an adversary cannot
     smuggle a CGA outside fec0::/10. *)
  let iid = Cga.interface_id ~pk_bytes:"alice" ~rn:1L in
  let addr = Address.make ~hi:0x2001_0db8_0000_0000L ~lo:iid in
  Alcotest.(check bool) "wrong prefix" false (Cga.verify addr ~pk_bytes:"alice" ~rn:1L)

let test_cga_rn_changes_address () =
  (* The paper's collision-recovery path: a new rn gives a new address
     while the key pair is unchanged. *)
  let a = Cga.generate ~pk_bytes:"pk" ~rn:1L in
  let b = Cga.generate ~pk_bytes:"pk" ~rn:2L in
  Alcotest.(check bool) "different" false (Address.equal a b)

let test_cga_global_prefix () =
  (* Figure 1's gateway note: the subnet ID replaced by a
     gateway-advertised routing prefix, ownership proof unchanged. *)
  let routing_prefix = parse "2001:db8:cafe::" in
  let hi = Cga.global_hi ~routing_prefix ~subnet:0x42 in
  let addr = Cga.generate_under ~hi ~pk_bytes:"alice" ~rn:7L in
  let groups = Address.to_groups addr in
  Alcotest.(check int) "prefix group 0" 0x2001 groups.(0);
  Alcotest.(check int) "prefix group 1" 0x0db8 groups.(1);
  Alcotest.(check int) "prefix group 2" 0xcafe groups.(2);
  Alcotest.(check int) "subnet" 0x42 groups.(3);
  Alcotest.(check bool) "owner verifies" true
    (Cga.verify_under ~hi addr ~pk_bytes:"alice" ~rn:7L);
  Alcotest.(check bool) "impostor fails" false
    (Cga.verify_under ~hi addr ~pk_bytes:"mallory" ~rn:7L);
  (* The site-local verify must not accept the global address. *)
  Alcotest.(check bool) "site-local check distinct" false
    (Cga.verify addr ~pk_bytes:"alice" ~rn:7L);
  Alcotest.check_raises "subnet range"
    (Invalid_argument "Cga.global_hi: subnet") (fun () ->
      ignore (Cga.global_hi ~routing_prefix ~subnet:0x10000))

let prop_cga_no_collisions =
  qtest ~count:1 "cga: no interface-id collisions across 4096 keys"
    QCheck.unit
    (fun () ->
      let g = Prng.create ~seed:12345 in
      let seen = Hashtbl.create 4096 in
      let collision = ref false in
      for _ = 1 to 4096 do
        let pk_bytes = Prng.bytes g 32 in
        let _, addr = Cga.fresh g ~pk_bytes in
        let key = Address.to_bytes addr in
        if Hashtbl.mem seen key then collision := true;
        Hashtbl.replace seen key ()
      done;
      not !collision)

let suites =
  [
    ( "ipv6.address",
      [
        Alcotest.test_case "parse full form" `Quick test_parse_full_form;
        Alcotest.test_case "parse compressed" `Quick test_parse_compressed;
        Alcotest.test_case "parse ipv4 mapped" `Quick test_parse_ipv4_mapped;
        Alcotest.test_case "parse errors" `Quick test_parse_errors;
        Alcotest.test_case "print canonical" `Quick test_print_canonical;
        prop_string_roundtrip;
        prop_bytes_roundtrip;
        prop_groups_roundtrip;
        prop_compare_consistent;
        Alcotest.test_case "bytes layout" `Quick test_bytes_layout;
        Alcotest.test_case "prefixes" `Quick test_prefixes;
        Alcotest.test_case "dns constants" `Quick test_dns_constants;
      ] );
    ( "ipv6.cga",
      [
        Alcotest.test_case "figure 1 layout" `Quick test_cga_layout;
        Alcotest.test_case "deterministic" `Quick test_cga_deterministic;
        Alcotest.test_case "verify accepts" `Quick test_cga_verify_accepts;
        Alcotest.test_case "rejects wrong pk" `Quick test_cga_verify_rejects_wrong_pk;
        Alcotest.test_case "rejects wrong rn" `Quick test_cga_verify_rejects_wrong_rn;
        Alcotest.test_case "rejects wrong prefix" `Quick test_cga_verify_rejects_non_site_local;
        Alcotest.test_case "new rn new address" `Quick test_cga_rn_changes_address;
        Alcotest.test_case "global prefix (gateway)" `Quick test_cga_global_prefix;
        prop_cga_no_collisions;
      ] );
  ]
