(** AODV and an SAODV-style secured variant — the paper's "translating to
    other routing protocols" future work, built out so the loss of
    tracking capability can be measured.

    AODV (Perkins-Royer) is hop-by-hop distance-vector routing on
    demand: a flooded RREQ installs reverse-route entries as it travels;
    the destination (or a node with a fresh-enough route) answers with an
    RREP that installs forward routes on its way back; data follows the
    routing tables one hop at a time; a broken link triggers RERRs that
    invalidate routes through it.  No node ever learns the full path.

    With [secure = true] the agent applies SAODV's two mechanisms
    (Zapata's draft, reviewed in the paper's §2.1): the immutable fields
    of RREQ/RREP are signed by their originator, and the mutable hop
    count is protected by a hash chain — the originator draws a seed,
    publishes [top_hash = H^max_hops(seed)], and each relay checks
    [H^(max_hops - hop_count)(hash) = top_hash] before advancing the
    chain, so a relay can inflate but never shrink the distance.

    What SAODV {e cannot} do — and the reason the paper sticks with
    source routing — is identify intermediate nodes: the route is a
    distributed set of next-hop pointers, relays add no verifiable
    identity, so a silent dropper on the path can be neither named nor
    routed around by identity.  Experiment E7 measures exactly this. *)

module Address = Manet_ipv6.Address

(** AODV's own wire messages (it does not share the DSR message set). *)
type msg =
  | Rreq of {
      src : Address.t;
      src_seq : int;
      bcast_id : int;
      dst : Address.t;
      dst_seq_known : int;  (** 0 = unknown *)
      hop_count : int;
      sig_ : string;  (** SAODV: originator's signature over immutables *)
      spk : string;
      srn : int64;
      hash : string;  (** SAODV hash-chain element *)
      top_hash : string;
      max_hops : int;
    }
  | Rrep of {
      rep_src : Address.t;  (** the requester the reply travels to *)
      rep_dst : Address.t;  (** the destination being reported *)
      dst_seq : int;
      hop_count : int;
      sig_ : string;
      dpk : string;
      drn : int64;
      hash : string;
      top_hash : string;
      max_hops : int;
    }
  | Rerr of { unreachable : (Address.t * int) list  (** (dst, seq) pairs *) }
  | Data of {
      d_src : Address.t;
      d_dst : Address.t;
      d_seq : int;
      payload_size : int;
      sent_at : float;
    }
  | Ack of { a_src : Address.t; a_dst : Address.t; data_seq : int; sent_at : float }

val msg_size : sig_size:int -> pk_size:int -> msg -> int
(** Wire-size model, same conventions as {!Manet_proto.Wire}. *)

type config = {
  secure : bool;  (** SAODV signatures + hash chains *)
  discovery_timeout : float;
  max_discovery_attempts : int;
  route_lifetime : float;  (** entries expire without use *)
  ack_timeout : float;
  max_send_retries : int;
  flood_jitter : float;
  max_hops : int;  (** hash-chain length bound *)
}

val default_config : config

type t

val create :
  ?config:config ->
  net:msg Manet_sim.Net.t ->
  directory:Manet_proto.Directory.t ->
  identity:Manet_proto.Identity.t ->
  rng:Manet_crypto.Prng.t ->
  unit ->
  t

val handle : t -> src:int -> msg -> unit

val send : t -> dst:Address.t -> ?size:int -> unit -> unit
(** Offer a data packet; discovery runs if no valid route exists. *)

val next_hop : t -> dst:Address.t -> Address.t option
val address : t -> Address.t
val node_id : t -> int
val net : t -> msg Manet_sim.Net.t

(** Stats (shared engine registry): [data.offered], [data.delivered],
    [data.acked], [data.dropped], [route.discoveries], plus
    [aodv.rrep_rejected] (SAODV verification failures),
    [aodv.hash_chain_rejected], and [tx.aodv_*] counters. *)

module Hash_chain : sig
  (** SAODV hop-count protection, exposed for tests. *)

  val generate : Manet_crypto.Prng.t -> max_hops:int -> string * string
  (** [(seed, top_hash)] with [top_hash = H^max_hops(seed)]. *)

  val advance : string -> string
  (** One application of [H] — what each relay does. *)

  val check : hash:string -> top_hash:string -> max_hops:int -> hop_count:int -> bool
  (** Does [H^(max_hops - hop_count)(hash) = top_hash] hold? *)
end
