(** Deterministic fault injection for the simulated network.

    A fault {!plan} is a declarative list of timed {!step}s — node
    crashes and restarts, link severing and restoration, network
    partitions, and channel-model swaps (including the two-state
    Gilbert–Elliott bursty-loss model).  {!schedule} compiles a plan
    into {!Manet_sim.Engine} events, so a plan executes inside the same
    deterministic event order as the protocols it perturbs: the same
    seed plus the same plan yields a byte-identical trace.

    Plans are plain lists, so they compose with [@] or {!seq} and can be
    generated programmatically — {!churn} derives an arbitrarily long
    crash/restart schedule from a seed.

    Each fired step increments a [fault.*] stats counter and logs a
    [fault.*] trace event before invoking its hook, so fault timelines
    appear inline in rendered traces. *)

open Manet_sim

type event =
  | Crash of int  (** node goes down: no send, receive, or ack *)
  | Restart of int
      (** node comes back up; scenario-level hooks re-run secure DAD *)
  | Link_down of int * int  (** administratively sever an unordered link *)
  | Link_up of int * int
  | Partition of int list
      (** cut the network: listed nodes vs. everyone else *)
  | Heal  (** remove the partition (severed links stay severed) *)
  | Channel of Net.channel  (** swap the loss process *)

type step = { at : float; event : event }
type plan = step list

(** {1 Builders}

    Each returns a (possibly singleton) plan; combine with [@] or
    {!seq}. *)

val crash : at:float -> int -> plan

(* manetsem: allow dead-export — plan-builder symmetry with [crash];
   [outage] composes it internally and callers may schedule it alone. *)
val restart : at:float -> int -> plan
val link_down : at:float -> int -> int -> plan
(* manetsem: allow dead-export — plan-builder symmetry with
   [link_down], same rationale as [restart]. *)
val link_up : at:float -> int -> int -> plan

val outage : from:float -> until:float -> int -> plan
(** Crash at [from], restart at [until]. *)

val flap : from:float -> until:float -> period:float -> int -> int -> plan
(** Toggle a link down/up every [period] seconds across the window,
    leaving it up at the end. *)

val partition : from:float -> until:float -> int list -> plan
(** Cut the listed nodes off at [from], heal at [until]. *)

val gilbert_elliott :
  ?loss_good:float ->
  ?loss_bad:float ->
  p_good_to_bad:float ->
  p_bad_to_good:float ->
  unit ->
  Net.channel
(** Convenience constructor; defaults [loss_good = 0.01],
    [loss_bad = 0.8]. *)

val degrade :
  from:float ->
  until:float ->
  channel:Net.channel ->
  baseline:Net.channel ->
  plan
(** Switch to [channel] at [from], back to [baseline] at [until]. *)

val churn :
  seed:int ->
  nodes:int list ->
  horizon:float ->
  mean_up:float ->
  mean_down:float ->
  plan
(** Seeded node churn: each listed node alternates exponentially
    distributed up-periods (mean [mean_up]) and down-periods (mean
    [mean_down]) over [0, horizon)].  Every node that is down at the
    horizon is restarted there, so the plan leaves the network whole.
    The plan is a pure function of the arguments. *)

val seq : plan list -> plan
(** Concatenate plans ({!schedule} orders steps by time anyway). *)

val validate : n:int -> plan -> unit
(** Raise [Invalid_argument] if any step names a node outside [0, n),
    a self-link, or a negative time. *)

(** {1 Execution} *)

type hooks = {
  crash : int -> unit;
  restart : int -> unit;
  set_link : int -> int -> up:bool -> unit;
  partition : int list -> unit;
  heal : unit -> unit;
  set_channel : Net.channel -> unit;
}
(** What each event does to the world.  {!net_hooks} gives the bare
    radio semantics; [Scenario.inject] layers protocol re-bootstrap on
    top (restart re-runs secure DAD). *)

val net_hooks : 'msg Net.t -> hooks
(** Crash/restart toggle {!Net.set_down}; the rest map one-to-one onto
    the corresponding [Net] fault-state calls. *)

val schedule : ?obs:Manet_obs.Obs.t -> Engine.t -> hooks -> plan -> unit
(** Sort the plan by time (stable, so same-time steps keep plan order)
    and schedule each step on the engine.  Every step logs a [fault.*]
    trace event and bumps the matching stats counter when it fires.

    With [obs], Crash..Restart pairs become [fault.outage] spans and
    Partition..Heal pairs [fault.partition] spans.  An open outage span
    is registered under {!outage_key}, so a restart hook can parent the
    node's re-DAD bootstrap span to the outage that caused it. *)

val outage_key : int -> string
(** Correlation-registry key of node [i]'s most recent outage span. *)
