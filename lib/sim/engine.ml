module Prng = Manet_crypto.Prng

type profile_entry = { p_count : int; p_wall_s : float }

type prof_cell = { mutable c_count : int; mutable c_wall_s : float }

(* The occupancy series decimates itself to stay bounded: samples are
   taken every [occ_stride] processed events, and when the buffer would
   exceed [occ_capacity] every other sample is dropped and the stride
   doubles.  Both operations depend only on the processed-event count,
   so the series is a pure function of the run — byte-identical across
   replays and domain counts. *)
let occ_capacity = 512

type t = {
  mutable now : float;
  queue : (string * (unit -> unit)) Heap.t;
  rng : Prng.t;
  stats : Stats.t;
  trace : Trace.t;
  mutable processed : int;
  (* Deterministic perf accounting (always on): per-label processed
     event counts, queue high-water mark, and the sampled occupancy
     series.  All are pure functions of the event sequence — they read
     no clock and draw no randomness — so keeping them on costs a few
     table updates per event and perturbs nothing. *)
  counts : (string, int ref) Hashtbl.t;
  mutable max_pending : int;
  mutable occ : (int * int) list; (* (processed index, pending) newest first *)
  mutable occ_len : int;
  mutable occ_stride : int;
  (* Wall-clock profiling (opt-in).  Lives entirely outside the
     deterministic domain: enabling it changes no event order, no PRNG
     draw and no trace byte. *)
  mutable profiling : bool;
  prof : (string, prof_cell) Hashtbl.t;
  mutable wall_in_run : float;
}

let create ~seed () =
  {
    now = 0.0;
    queue = Heap.create ();
    rng = Prng.create ~seed;
    stats = Stats.create ();
    trace = Trace.create ();
    processed = 0;
    counts = Hashtbl.create 32;
    max_pending = 0;
    occ = [];
    occ_len = 0;
    occ_stride = 1;
    profiling = false;
    prof = Hashtbl.create 32;
    wall_in_run = 0.0;
  }

let now t = t.now
let rng t = t.rng
let stats t = t.stats
let trace t = t.trace

let default_label = "other"

let note_push t =
  let depth = Heap.size t.queue in
  if depth > t.max_pending then t.max_pending <- depth

let schedule t ?(label = default_label) ~delay f =
  if delay < 0.0 then invalid_arg "Engine.schedule: negative delay";
  Heap.push t.queue (t.now +. delay) (label, f);
  note_push t

let schedule_at t ?(label = default_label) ~time f =
  if time < t.now then invalid_arg "Engine.schedule_at: time in the past";
  Heap.push t.queue time (label, f);
  note_push t

let count_label t label =
  match Hashtbl.find_opt t.counts label with
  | Some r -> incr r
  | None -> Hashtbl.add t.counts label (ref 1)

let sample_occupancy t =
  if t.processed mod t.occ_stride = 0 then begin
    t.occ <- (t.processed, Heap.size t.queue) :: t.occ;
    t.occ_len <- t.occ_len + 1;
    if t.occ_len > occ_capacity then begin
      let stride = t.occ_stride * 2 in
      t.occ_stride <- stride;
      t.occ <- List.filter (fun (i, _) -> i mod stride = 0) t.occ;
      t.occ_len <- List.length t.occ
    end
  end

let charge t label dt =
  let cell =
    match Hashtbl.find_opt t.prof label with
    | Some c -> c
    | None ->
        let c = { c_count = 0; c_wall_s = 0.0 } in
        Hashtbl.add t.prof label c;
        c
  in
  cell.c_count <- cell.c_count + 1;
  cell.c_wall_s <- cell.c_wall_s +. dt

let run ?until ?max_events t =
  let budget = ref (match max_events with Some n -> n | None -> max_int) in
  let continue = ref true in
  let run_t0 = if t.profiling then Mono_clock.now_s () else 0.0 in
  while !continue && !budget > 0 do
    match Heap.peek t.queue with
    | None -> continue := false
    | Some (time, _) -> (
        match until with
        | Some limit when time > limit ->
            (* Leave future events queued; advance the clock to the
               horizon so repeated bounded runs make progress. *)
            t.now <- limit;
            continue := false
        | _ -> (
            match Heap.pop t.queue with
            | None -> continue := false
            | Some (time, (label, f)) ->
                t.now <- time;
                t.processed <- t.processed + 1;
                count_label t label;
                sample_occupancy t;
                decr budget;
                if t.profiling then begin
                  let t0 = Mono_clock.now_s () in
                  f ();
                  charge t label (Mono_clock.now_s () -. t0)
                end
                else f ()))
  done;
  if t.profiling then
    t.wall_in_run <- t.wall_in_run +. (Mono_clock.now_s () -. run_t0)

let pending t = Heap.size t.queue
let events_processed t = t.processed

let label_counts t =
  Hashtbl.fold (fun label r acc -> (label, !r) :: acc) t.counts []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let occupancy t = List.rev t.occ
let occupancy_stride t = t.occ_stride
let max_pending t = t.max_pending

let set_profiling t on = t.profiling <- on
let profiling t = t.profiling

let profile t =
  Hashtbl.fold
    (fun label c acc ->
      (label, { p_count = c.c_count; p_wall_s = c.c_wall_s }) :: acc)
    t.prof []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let wall_in_run t = t.wall_in_run

let events_per_sec t =
  let profiled =
    Hashtbl.fold (fun _ c acc -> acc + c.c_count) t.prof 0
  in
  if t.wall_in_run > 0.0 && profiled > 0 then
    float_of_int profiled /. t.wall_in_run
  else 0.0

let log t ~node ~event ~detail =
  Trace.log t.trace ~time:t.now ~node ~event ~detail
