module Address = Manet_ipv6.Address
module Cga = Manet_ipv6.Cga
module Suite = Manet_crypto.Suite
module Prng = Manet_crypto.Prng

type t = {
  node_id : int;
  suite : Suite.t;
  keypair : Suite.keypair;
  mutable rn : int64;
  mutable address : Address.t;
  mutable domain_name : string option;
}

let create ?address ?name suite g ~node_id =
  let keypair = suite.Suite.generate () in
  let rn, cga = Cga.fresh g ~pk_bytes:keypair.Suite.pk_bytes in
  let address = match address with Some a -> a | None -> cga in
  { node_id; suite; keypair; rn; address; domain_name = name }

let refresh_address t g =
  let rn, addr = Cga.fresh g ~pk_bytes:t.keypair.Suite.pk_bytes in
  t.rn <- rn;
  t.address <- addr

let sign t msg = t.keypair.Suite.sign msg
let pk_bytes t = t.keypair.Suite.pk_bytes

