module Address = Manet_ipv6.Address
module Cga = Manet_ipv6.Cga
module Prng = Manet_crypto.Prng
module Suite = Manet_crypto.Suite
module Messages = Manet_proto.Messages
module Codec = Manet_proto.Codec
module Ctx = Manet_proto.Node_ctx
module Directory = Manet_proto.Directory
module Identity = Manet_proto.Identity
module Audit = Manet_obs.Audit
module Obs = Manet_obs.Obs

type pending_query = {
  q_name : string;
  q_ch : int64;
  q_cb : Address.t option -> unit;
  q_span : int; (* dns.query telemetry span *)
}

type pending_change = {
  c_old : Address.t;
  c_new : Address.t;
  c_new_rn : int64;
  c_route : Address.t list;
  c_cb : bool -> unit;
  c_span : int; (* dns.ip_change telemetry span *)
}

type t = {
  ctx : Ctx.t;
  dns_pk : string;
  dns_address : Address.t;
  queries : (int64, pending_query) Hashtbl.t;
  mutable change : pending_change option;
}

let create ~dns_pk ?(dns_address = Address.dns_server_1) ctx =
  { ctx; dns_pk; dns_address; queries = Hashtbl.create 8; change = None }

let query t ~route ~name ~callback =
  let ctx = t.ctx in
  let ch = Prng.bits64 ctx.Ctx.rng in
  let span =
    Obs.start ctx.Ctx.obs ~kind:"dns.query" ~node:(Ctx.node_id ctx)
      ~detail:("name=" ^ name) ()
  in
  Hashtbl.replace t.queries ch
    { q_name = name; q_ch = ch; q_cb = callback; q_span = span };
  Ctx.stat ctx "dns_client.queries";
  let path = route @ [ t.dns_address ] in
  Ctx.send_along ctx ~path
    (Messages.Name_query
       { requester = Ctx.address ctx; name; ch; route; remaining = path })

let consume_name_reply t (m : Messages.t) =
  match m with
  | Messages.Name_reply { name; result; ch; sig_; _ } -> (
      match Hashtbl.find_opt t.queries ch with
      | Some q when String.equal q.q_name name ->
          let suite = Ctx.suite t.ctx in
          if
            suite.Suite.verify ~pk_bytes:t.dns_pk
              ~msg:(Codec.name_reply_payload ~name ~result ~ch)
              ~signature:sig_
          then begin
            Hashtbl.remove t.queries ch;
            Ctx.stat t.ctx "dns_client.verified_replies";
            Obs.finish t.ctx.Ctx.obs q.q_span
              (match result with
              | Some _ -> Obs.Ok
              | None -> Obs.Rejected "name not found");
            q.q_cb result
          end
          else
            Ctx.audit t.ctx ~kind:Audit.Sig_verify_fail
              ~stats:[ "dns_client.reply_rejected" ]
              ~cause:"name reply dns server signature" ()
      | _ -> Ctx.stat t.ctx "dns_client.reply_unmatched")
  | _ -> ()

let request_ip_change t ~route ~callback =
  let ctx = t.ctx in
  let id = ctx.Ctx.identity in
  let new_rn, new_ip = Cga.fresh ctx.Ctx.rng ~pk_bytes:(Identity.pk_bytes id) in
  let old_ip = Ctx.address ctx in
  let span =
    Obs.start ctx.Ctx.obs ~kind:"dns.ip_change" ~node:(Ctx.node_id ctx)
      ~detail:
        (Printf.sprintf "%s -> %s" (Address.to_string old_ip)
           (Address.to_string new_ip))
      ()
  in
  t.change <-
    Some
      {
        c_old = old_ip;
        c_new = new_ip;
        c_new_rn = new_rn;
        c_route = route;
        c_cb = callback;
        c_span = span;
      };
  Ctx.stat ctx "dns_client.ip_change_requested";
  let path = route @ [ t.dns_address ] in
  Ctx.send_along ctx ~path
    (Messages.Ip_change_request { old_ip; new_ip; route; remaining = path })

let consume_challenge t (m : Messages.t) =
  match m with
  | Messages.Ip_change_challenge { old_ip; new_ip; ch; _ } -> (
      match t.change with
      | Some c when Address.equal c.c_old old_ip && Address.equal c.c_new new_ip ->
          let ctx = t.ctx in
          let id = ctx.Ctx.identity in
          let sig_ =
            Identity.sign id (Codec.ip_change_payload ~old_ip ~new_ip ~ch)
          in
          let path = c.c_route @ [ t.dns_address ] in
          Ctx.send_along ctx ~path
            (Messages.Ip_change_proof
               {
                 old_ip;
                 new_ip;
                 old_rn = id.Identity.rn;
                 new_rn = c.c_new_rn;
                 pk = Identity.pk_bytes id;
                 sig_;
                 route = c.c_route;
                 remaining = path;
               })
      | _ -> Ctx.stat t.ctx "dns_client.challenge_unmatched")
  | _ -> ()

let consume_ack t (m : Messages.t) =
  match m with
  | Messages.Ip_change_ack { old_ip; new_ip; accepted; _ } -> (
      match t.change with
      | Some c when Address.equal c.c_old old_ip && Address.equal c.c_new new_ip ->
          t.change <- None;
          let ctx = t.ctx in
          if accepted then begin
            let id = ctx.Ctx.identity in
            Directory.unregister ctx.Ctx.directory old_ip (Ctx.node_id ctx);
            id.Identity.rn <- c.c_new_rn;
            id.Identity.address <- new_ip;
            Directory.register ctx.Ctx.directory new_ip (Ctx.node_id ctx);
            Ctx.stat ctx "dns_client.ip_changed";
            Ctx.log ctx ~event:"dns_client.ip_changed"
              ~detail:(Address.to_string new_ip)
          end
          else
            Ctx.audit ctx ~kind:Audit.Dns_conflict
              ~stats:[ "dns_client.ip_change_rejected" ]
              ~cause:"dns refused our ip change" ();
          Obs.finish ctx.Ctx.obs c.c_span
            (if accepted then Obs.Ok else Obs.Rejected "dns refused");
          c.c_cb accepted
      | _ -> ())
  | _ -> ()

let handle t ~src msg =
  match msg with
  | Messages.Name_reply _ | Messages.Ip_change_challenge _
  | Messages.Ip_change_ack _ ->
      Ctx.deliver_up t.ctx ~src msg
        ~consume:(fun m ->
          match m with
          | Messages.Name_reply _ -> consume_name_reply t m
          | Messages.Ip_change_challenge _ -> consume_challenge t m
          | Messages.Ip_change_ack _ -> consume_ack t m
          | _ -> ())
        ~forward:(fun ~next m -> Ctx.send_along t.ctx ~path:next m)
        ~not_mine:(fun _ -> ())
  (* The client only consumes lookup/IP-change replies; everything else
     is enumerated so a new Messages constructor fails the manetsem
     dispatch rule instead of being silently dropped. *)
  | Messages.Areq _ | Messages.Arep _ | Messages.Drep _ | Messages.Rreq _
  | Messages.Rrep _ | Messages.Crep _ | Messages.Rerr _ | Messages.Data _
  | Messages.Ack _ | Messages.Probe _ | Messages.Probe_reply _
  | Messages.Name_query _ | Messages.Ip_change_request _
  | Messages.Ip_change_proof _ -> ()
