.PHONY: all build lint test bench clean

all: build lint test

build:
	dune build

# Both analyzers: manetlint (lexical) and manetsem (AST-level semantic
# dataflow).  Fails on any finding not pinned in tools/manetsem/baseline.
lint:
	dune build @lint

test:
	dune runtest

bench:
	dune exec bench/main.exe

clean:
	dune clean
