(* manetlint driver: scan the given directories (default lib/ bin/ test/)
   and exit non-zero when any rule fires.  Wired to `dune build @lint`. *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let rec walk acc path =
  if Sys.is_directory path then
    Sys.readdir path |> Array.to_list
    |> List.sort String.compare
    |> List.fold_left
         (fun acc entry ->
           if entry = "_build" || entry = ".git" then acc
           else walk acc (Filename.concat path entry))
         acc
  else if Filename.check_suffix path ".ml" || Filename.check_suffix path ".mli"
  then path :: acc
  else acc

let () =
  let roots =
    match Array.to_list Sys.argv with
    | _ :: (_ :: _ as given) -> given
    | _ -> [ "lib"; "bin"; "test" ]
  in
  let files =
    List.concat_map
      (fun r -> if Sys.file_exists r then List.rev (walk [] r) else [])
      roots
  in
  let inputs = List.map (fun p -> (p, read_file p)) files in
  let findings = Manetlint.Lint.lint_files inputs in
  List.iter (fun f -> print_endline (Manetlint.Lint.to_string f)) findings;
  match findings with
  | [] -> ()
  | fs ->
      Printf.eprintf "manetlint: %d violation(s) across %d file(s) scanned\n"
        (List.length fs) (List.length files);
      exit 1
