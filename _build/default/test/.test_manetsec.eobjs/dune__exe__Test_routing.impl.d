test/test_routing.ml: Alcotest Float List Manet_crypto Manet_ipv6 Manet_sim Manetsec Printf
