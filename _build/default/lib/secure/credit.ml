module Address = Manet_ipv6.Address

type config = {
  initial : float;
  reward : float;
  penalty : float;
  rerr_window : float;
  rerr_threshold : int;
}

let default_config =
  { initial = 0.0; reward = 1.0; penalty = 100.0; rerr_window = 30.0; rerr_threshold = 5 }

type t = {
  config : config;
  scores : (string, float) Hashtbl.t;
  rerrs : (string, float list ref) Hashtbl.t; (* recent report times *)
  addrs : (string, Address.t) Hashtbl.t; (* for snapshots *)
}

let create ?(config = default_config) () =
  {
    config;
    scores = Hashtbl.create 64;
    rerrs = Hashtbl.create 16;
    addrs = Hashtbl.create 64;
  }

let key = Address.to_bytes

let note_addr t a = Hashtbl.replace t.addrs (key a) a

let get t a =
  match Hashtbl.find_opt t.scores (key a) with
  | Some v -> v
  | None -> t.config.initial

let set t a v =
  note_addr t a;
  Hashtbl.replace t.scores (key a) v

let reward_route t route =
  List.iter (fun a -> set t a (get t a +. t.config.reward)) route

let slash t a = set t a (get t a -. t.config.penalty)

let record_rerr t reporter ~now =
  let k = key reporter in
  note_addr t reporter;
  let times =
    match Hashtbl.find_opt t.rerrs k with
    | Some l -> l
    | None ->
        let l = ref [] in
        Hashtbl.add t.rerrs k l;
        l
  in
  times := now :: List.filter (fun w -> now -. w <= t.config.rerr_window) !times;
  List.length !times > t.config.rerr_threshold

let min_credit t route =
  List.fold_left (fun acc a -> min acc (get t a)) infinity route

let snapshot t =
  Hashtbl.fold (fun k a acc -> (a, Option.value ~default:t.config.initial (Hashtbl.find_opt t.scores k)) :: acc) t.addrs []
  |> List.sort (fun (a, _) (b, _) -> Address.compare a b)
