(** Credit management — §3.4.

    Each source keeps a credit score per host that has relayed for it.
    Every end-to-end acknowledged delivery increments the credit of each
    host on the route; detected misbehaviour (failed integrity probe,
    implausible or excessive RERR reporting) slashes a host "by a very
    large amount".  New identities start low, which is the defence
    against identity churn: an adversary who keeps changing its CGA
    keeps returning to the bottom of the trust scale.  In hostile
    environments the source prefers routes whose {e minimum} member
    credit is highest. *)

module Address = Manet_ipv6.Address

type config = {
  initial : float;  (** credit of a never-seen host *)
  reward : float;  (** per-host increment on an acked delivery *)
  penalty : float;  (** subtracted on detected misbehaviour *)
  rerr_window : float;  (** seconds of RERR-frequency history *)
  rerr_threshold : int;  (** RERRs per window that mark a reporter hostile *)
}

val default_config : config

type t

val create : ?config:config -> unit -> t

val get : t -> Address.t -> float
val reward_route : t -> Address.t list -> unit
val slash : t -> Address.t -> unit

val record_rerr : t -> Address.t -> now:float -> bool
(** Note one RERR from the reporter; [true] when the reporter exceeded
    the frequency threshold within the window (the caller should then
    {!slash} and route around it). *)

val min_credit : t -> Address.t list -> float
(** The weakest-member credit of a route ([infinity] for an empty
    route, i.e. a direct neighbour). *)

val snapshot : t -> (Address.t * float) list
(** All scored hosts, sorted by address — for the convergence
    experiment (E5). *)
