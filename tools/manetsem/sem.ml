(* manetsem — AST-level semantic analyzer.  See sem.mli for the rule
   catalogue.  Built on compiler-libs only (Parse + Parsetree +
   Ast_iterator); the comment scanner, allow-directive grammar,
   parse/alias/binding toolkit and baseline machinery live in
   tools/analyzer_common, shared with manetdom and manethot. *)

open Parsetree
module C = Analyzer_common.Common
open C

type finding = C.finding = {
  file : string;
  line : int;
  rule : string;
  msg : string;
}

let rules =
  [ "taint"; "dispatch"; "codec"; "determinism"; "dead-export"; "parse" ]

let pp_finding = C.pp_finding
let scan_comments = C.scan_comments

(* manetsem keeps the legacy allow grammar: the directive opens the
   comment and needs no rationale.  (manetdom and manethot use the
   strict variant of the same scanner.) *)
let scan_allows = C.scan_allows ~tool:"manetsem" ~rules
let mk_unit ~analyzed = C.mk_unit ~analyzed ~scan:scan_allows

(* ------------------------------------------------------------------ *)
(* Verify-before-use taint. *)

let signed_ctors =
  [
    "Arep"; "Drep"; "Rreq"; "Rrep"; "Crep"; "Rerr"; "Probe_reply";
    "Name_reply"; "Ip_change_proof";
  ]

let named_sinks =
  [
    ("Route_cache", [ "insert"; "remove_link"; "remove_route"; "remove_containing" ]);
    ("Credit", [ "slash"; "reward_route"; "record_rerr" ]);
    ("Directory", [ "register"; "unregister" ]);
    ("Identity", [ "refresh_address" ]);
  ]

let state_fields =
  [
    "table"; "pending_by_sip"; "pending_by_dn"; "pending_changes";
    "stashed_warnings"; "trusted"; "reg_cancelled"; "p_resolved";
  ]

(* MAC recomputation counts as verification: SRP checks replies by
   recomputing [*_mac] over the received fields and comparing. *)
let name_is_verifier n =
  contains n "verify" || Filename.check_suffix n "_mac"

type scan_env = {
  sv_self : string;
  sv_aliases : (string, string) Hashtbl.t;
  sv_is_verifier : string option * string -> bool;
  sv_is_sinky : string option * string -> bool;
  sv_sink : string -> Location.t -> string -> unit;
}

let callee_of env head =
  match head.pexp_desc with
  | Pexp_ident { txt; _ } -> (
      match resolve env.sv_aliases txt with
      | None, x -> Some (Some env.sv_self, x)
      | r -> Some r)
  | Pexp_field (_, { txt; _ }) -> Some (None, lid_last txt)
  | _ -> None

let callee_str = function
  | Some m, x -> m ^ "." ^ x
  | None, x -> x

let first_positional args =
  List.find_map
    (fun (lbl, a) ->
      match lbl with Asttypes.Nolabel -> Some a | _ -> None)
    args

let primitive_sink callee args =
  match callee with
  | Some m, x
    when List.exists
           (fun (sm, xs) -> sm = m && List.mem x xs)
           named_sinks ->
      Some ("sink " ^ m ^ "." ^ x)
  | Some "Hashtbl", (("replace" | "add") as x) -> (
      match first_positional args with
      | Some { pexp_desc = Pexp_field (_, { txt; _ }); _ }
        when List.mem (lid_last txt) state_fields ->
          Some
            ("Hashtbl." ^ x ^ " on state field " ^ lid_last txt)
      | _ -> None)
  | _ -> None

let pattern_binds p =
  let found = ref false in
  let it =
    {
      Ast_iterator.default_iterator with
      pat =
        (fun self q ->
          (match q.ppat_desc with
          | Ppat_var _ | Ppat_alias _ -> found := true
          | _ -> ());
          Ast_iterator.default_iterator.pat self q);
    }
  in
  it.pat it p;
  !found

(* A case taints when its pattern destructures a signed constructor and
   actually binds part of the payload; a bare [Ctor _] dispatch pattern
   is not a taint source. *)
let taint_ctor pat =
  let found = ref None in
  let it =
    {
      Ast_iterator.default_iterator with
      pat =
        (fun self q ->
          (match q.ppat_desc with
          | Ppat_construct ({ txt; _ }, Some (_, arg)) ->
              let name = lid_last txt in
              if List.mem name signed_ctors && pattern_binds arg
                 && !found = None
              then found := Some name
          | _ -> ());
          Ast_iterator.default_iterator.pat self q);
    }
  in
  it.pat it pat;
  !found

(* The core threading scan.  [v] is "a verifier has run on this path";
   joins are may-joins (any branch verifying blesses the continuation),
   which keeps false positives down at the cost of missing flows that
   verify on one branch only — the rule is a regression tripwire, not a
   soundness proof.  Returns the verified state after [e]. *)
let rec scan env ~tainted v e =
  match e.pexp_desc with
  | Pexp_let (_, vbs, body) ->
      let v =
        List.fold_left (fun v vb -> scan env ~tainted v vb.pvb_expr) v vbs
      in
      scan env ~tainted v body
  | Pexp_sequence (a, b) -> scan env ~tainted (scan env ~tainted v a) b
  | Pexp_ifthenelse (c, t, eo) ->
      let vc = scan env ~tainted v c in
      let vt = scan env ~tainted vc t in
      let ve =
        match eo with Some x -> scan env ~tainted vc x | None -> vc
      in
      vc || vt || ve
  | Pexp_match (s, cases) | Pexp_try (s, cases) ->
      let vs = scan env ~tainted v s in
      List.fold_left (fun acc c -> acc || scan_case env ~tainted vs c) vs cases
  | Pexp_function cases ->
      List.iter (fun c -> ignore (scan_case env ~tainted v c)) cases;
      v
  | Pexp_fun (_, dflt, _, body) ->
      (match dflt with
      | Some d -> ignore (scan env ~tainted v d)
      | None -> ());
      ignore (scan env ~tainted v body);
      v
  | Pexp_apply (head, args) ->
      let v_args =
        List.fold_left (fun v (_, a) -> scan env ~tainted v a) v args
      in
      let v_args =
        match head.pexp_desc with
        | Pexp_ident _ -> v_args
        | Pexp_field (b, _) -> scan env ~tainted v_args b
        | _ -> scan env ~tainted v_args head
      in
      let callee = callee_of env head in
      let verifies =
        match callee with Some c -> env.sv_is_verifier c | None -> false
      in
      (match (callee, tainted) with
      | Some c, Some ctor when not v_args -> (
          match primitive_sink c args with
          | Some desc ->
              env.sv_sink ctor head.pexp_loc desc
          | None ->
              if env.sv_is_sinky c then
                env.sv_sink ctor head.pexp_loc
                  (callee_str c ^ ", which mutates protocol state"))
      | _ -> ());
      v_args || verifies
  | Pexp_setfield (obj, fld, value) ->
      let v' = scan env ~tainted (scan env ~tainted v obj) value in
      let fname = lid_last fld.Location.txt in
      (match tainted with
      | Some ctor when (not v') && List.mem fname state_fields ->
          env.sv_sink ctor e.pexp_loc ("mutation of state field " ^ fname)
      | _ -> ());
      v'
  | _ -> List.fold_left (fun v x -> scan env ~tainted v x) v (sub_expressions e)

and scan_case env ~tainted v c =
  let t' =
    match taint_ctor c.pc_lhs with Some ctor -> Some ctor | None -> tainted
  in
  let vg =
    match c.pc_guard with
    | Some g -> scan env ~tainted:t' v g
    | None -> v
  in
  scan env ~tainted:t' vg c.pc_rhs

(* Verifier fixpoint: a function verifies if its body applies something
   whose name contains "verify" (Suite.verify, Cga.verify, hand-rolled
   verify_* helpers) or another member of the set. *)
let verifier_fixpoint fns =
  let vset = Hashtbl.create 32 in
  let member c =
    match c with
    | Some m, x -> name_is_verifier x || Hashtbl.mem vset (m, x)
    | None, x -> name_is_verifier x
  in
  let body_verifies f =
    let hit = ref false in
    let env =
      {
        sv_self = f.b_mod;
        sv_aliases = f.b_unit.u_aliases;
        sv_is_verifier = member;
        sv_is_sinky = (fun _ -> false);
        sv_sink = (fun _ _ _ -> ());
      }
    in
    let it =
      {
        Ast_iterator.default_iterator with
        expr =
          (fun self e ->
            (match e.pexp_desc with
            | Pexp_apply (head, _) -> (
                match callee_of env head with
                | Some c when member c -> hit := true
                | _ -> ())
            | _ -> ());
            Ast_iterator.default_iterator.expr self e);
      }
    in
    it.expr it f.b_expr;
    !hit
  in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun f ->
        if (not (Hashtbl.mem vset (f.b_mod, f.b_name))) && body_verifies f
        then begin
          Hashtbl.replace vset (f.b_mod, f.b_name) ();
          changed := true
        end)
      fns
  done;
  vset

(* Unguarded-sink fixpoint: a function is "sinky" when some path through
   its body reaches a state-mutating sink (or a sinky callee) without a
   verifier having run first.  Calling one of these from a taint arm
   without prior verification is exactly the bug class of §3.3/§3.4. *)
let sinky_fixpoint fns vset =
  let sinky = Hashtbl.create 32 in
  let is_verifier c =
    match c with
    | Some m, x -> name_is_verifier x || Hashtbl.mem vset (m, x)
    | None, x -> name_is_verifier x
  in
  let is_sinky c =
    match c with Some m, x -> Hashtbl.mem sinky (m, x) | None, _ -> false
  in
  let body_sinks f =
    let hit = ref false in
    let env =
      {
        sv_self = f.b_mod;
        sv_aliases = f.b_unit.u_aliases;
        sv_is_verifier = is_verifier;
        sv_is_sinky = is_sinky;
        sv_sink = (fun _ _ _ -> hit := true);
      }
    in
    ignore (scan env ~tainted:(Some "summary") false f.b_expr);
    !hit
  in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun f ->
        if (not (Hashtbl.mem sinky (f.b_mod, f.b_name))) && body_sinks f
        then begin
          Hashtbl.replace sinky (f.b_mod, f.b_name) ();
          changed := true
        end)
      fns
  done;
  sinky

let taint_findings fns vset sinky =
  let out = ref [] in
  List.iter
    (fun f ->
      let env =
        {
          sv_self = f.b_mod;
          sv_aliases = f.b_unit.u_aliases;
          sv_is_verifier =
            (fun c ->
              match c with
              | Some m, x -> name_is_verifier x || Hashtbl.mem vset (m, x)
              | None, x -> name_is_verifier x);
          sv_is_sinky =
            (fun c ->
              match c with
              | Some m, x -> Hashtbl.mem sinky (m, x)
              | None, _ -> false);
          sv_sink =
            (fun ctor loc desc ->
              out :=
                {
                  file = f.b_unit.u_path;
                  line = loc.Location.loc_start.Lexing.pos_lnum;
                  rule = "taint";
                  msg =
                    Printf.sprintf "unverified %s payload reaches %s" ctor
                      desc;
                }
                :: !out);
        }
      in
      ignore (scan env ~tainted:None false f.b_expr))
    fns;
  !out

(* ------------------------------------------------------------------ *)
(* Dispatch coverage. *)

let messages_ctors units =
  let from_sig sg =
    List.find_map
      (fun item ->
        match item.psig_desc with
        | Psig_type (_, decls) ->
            List.find_map
              (fun d ->
                match (d.ptype_name.Location.txt, d.ptype_kind) with
                | "t", Ptype_variant cds ->
                    Some (List.map (fun cd -> cd.pcd_name.Location.txt) cds)
                | _ -> None)
              decls
        | _ -> None)
      sg
  in
  List.find_map
    (fun u ->
      if Filename.basename u.u_path = "messages.mli" then
        match u.u_parsed with Intf sg -> from_sig sg | _ -> None
      else None)
    units

let dispatch_dirs = [ "dad"; "dns"; "dsr"; "secure" ]

let in_dispatch_dir path =
  let dir = Filename.basename (Filename.dirname path) in
  List.mem dir dispatch_dirs

(* The dispatch site is the outermost match of a [handle] function:
   descend through parameters and leading bindings, stopping at the
   first match/function in tail position. *)
let rec dispatch_site e =
  match e.pexp_desc with
  | Pexp_fun (_, _, _, body) -> dispatch_site body
  | Pexp_let (_, _, body) -> dispatch_site body
  | Pexp_sequence (_, b) -> dispatch_site b
  | Pexp_constraint (x, _) | Pexp_open (_, x) -> dispatch_site x
  | Pexp_match (_, cases) | Pexp_function cases -> Some (e.pexp_loc, cases)
  | _ -> None

let rec covers_all p =
  match p.ppat_desc with
  | Ppat_any | Ppat_var _ -> true
  | Ppat_alias (q, _) | Ppat_constraint (q, _) | Ppat_open (_, q) ->
      covers_all q
  | Ppat_or (a, b) -> covers_all a || covers_all b
  | _ -> false

let pattern_ctors ctors p =
  let out = ref [] in
  let it =
    {
      Ast_iterator.default_iterator with
      pat =
        (fun self q ->
          (match q.ppat_desc with
          | Ppat_construct ({ txt; _ }, _) ->
              let n = lid_last txt in
              if List.mem n ctors && not (List.mem n !out) then
                out := n :: !out
          | _ -> ());
          Ast_iterator.default_iterator.pat self q);
    }
  in
  it.pat it p;
  !out

let dispatch_findings fns ctors =
  let out = ref [] in
  List.iter
    (fun f ->
      if f.b_name = "handle" && in_dispatch_dir f.b_unit.u_path then
        match dispatch_site f.b_expr with
        | Some (loc, cases) ->
            let mentioned =
              List.concat_map (fun c -> pattern_ctors ctors c.pc_lhs) cases
            in
            if mentioned <> [] then begin
              let line = loc.Location.loc_start.Lexing.pos_lnum in
              let catch_alls =
                List.filter (fun c -> covers_all c.pc_lhs) cases
              in
              List.iter
                (fun c ->
                  out :=
                    {
                      file = f.b_unit.u_path;
                      line =
                        c.pc_lhs.ppat_loc.Location.loc_start.Lexing.pos_lnum;
                      rule = "dispatch";
                      msg =
                        "catch-all arm hides Messages.t constructors; \
                         enumerate every arm explicitly";
                    }
                    :: !out)
                catch_alls;
              if catch_alls = [] then begin
                let handled =
                  List.sort_uniq compare
                    (List.concat_map
                       (fun c -> pattern_ctors ctors c.pc_lhs)
                       cases)
                in
                let missing =
                  List.filter (fun c -> not (List.mem c handled)) ctors
                in
                if missing <> [] then
                  out :=
                    {
                      file = f.b_unit.u_path;
                      line;
                      rule = "dispatch";
                      msg =
                        "dispatch does not handle Messages.t constructors: "
                        ^ String.concat ", " missing;
                    }
                    :: !out
              end
            end
        | None -> ())
    fns;
  !out

(* ------------------------------------------------------------------ *)
(* Codec pairing.  Classification is per enclosing top-level function:
   a payload builder must be mentioned by at least one signing function
   (applies something whose name contains "sign") and one verification
   function (in the verifier fixpoint, or itself verify-named). *)

let codec_payloads units =
  List.concat_map
    (fun u ->
      if Filename.basename u.u_path = "codec.mli" then
        match u.u_parsed with
        | Intf sg ->
            List.filter_map
              (fun item ->
                match item.psig_desc with
                | Psig_value vd
                  when Filename.check_suffix vd.pval_name.Location.txt
                         "_payload" ->
                    Some
                      ( vd.pval_name.Location.txt,
                        u.u_path,
                        vd.pval_loc.Location.loc_start.Lexing.pos_lnum )
                | _ -> None)
              sg
        | _ -> []
      else [])
    units

let fn_payload_uses f =
  let out = ref [] in
  let has_sign = ref false in
  let env =
    {
      sv_self = f.b_mod;
      sv_aliases = f.b_unit.u_aliases;
      sv_is_verifier = (fun _ -> false);
      sv_is_sinky = (fun _ -> false);
      sv_sink = (fun _ _ _ -> ());
    }
  in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun self e ->
          (match e.pexp_desc with
          | Pexp_ident { txt; _ } ->
              let _, x = resolve f.b_unit.u_aliases txt in
              if Filename.check_suffix x "_payload" then out := x :: !out
          | Pexp_apply (head, _) -> (
              match callee_of env head with
              | Some (_, n) when contains n "sign" && not (contains n "verify")
                ->
                  has_sign := true
              | _ -> ())
          | _ -> ());
          Ast_iterator.default_iterator.expr self e);
    }
  in
  it.expr it f.b_expr;
  (!out, !has_sign)

let codec_findings fns vset units =
  let payloads = codec_payloads units in
  if payloads = [] then []
  else begin
    let signed = Hashtbl.create 8 and verified = Hashtbl.create 8 in
    let used = Hashtbl.create 8 in
    List.iter
      (fun f ->
        (* the builder's own definition does not count as a use *)
        if not (Filename.check_suffix f.b_name "_payload") then begin
          let uses, has_sign = fn_payload_uses f in
          let in_verify =
            Hashtbl.mem vset (f.b_mod, f.b_name) || name_is_verifier f.b_name
          in
          List.iter
            (fun p ->
              Hashtbl.replace used p ();
              if has_sign then Hashtbl.replace signed p ();
              if in_verify then Hashtbl.replace verified p ())
            uses
        end)
      fns;
    List.filter_map
      (fun (p, file, line) ->
        let mk msg = Some { file; line; rule = "codec"; msg } in
        if not (Hashtbl.mem used p) then
          mk (Printf.sprintf "codec builder %s is never used (orphan wire helper)" p)
        else if not (Hashtbl.mem signed p) then
          mk (Printf.sprintf "codec builder %s never appears in a signing context" p)
        else if not (Hashtbl.mem verified p) then
          mk
            (Printf.sprintf
               "codec builder %s never appears in a verification context" p)
        else None)
      payloads
  end

(* ------------------------------------------------------------------ *)
(* Semantic determinism. *)

let clock_idents =
  [
    ("Unix", "time"); ("Unix", "gettimeofday"); ("Unix", "localtime");
    ("Unix", "gmtime"); ("Unix", "mktime"); ("Sys", "time");
  ]

let sortish n =
  List.mem n [ "sort"; "sort_uniq"; "stable_sort"; "fast_sort" ]

let commutative_ops =
  [ "+"; "+."; "*"; "*."; "max"; "min"; "land"; "lor"; "lxor"; "&&"; "||" ]

let rec comm_expr acc e =
  match e.pexp_desc with
  | Pexp_ident { txt = Longident.Lident x; _ } -> x = acc
  | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, args)
    when List.mem (lid_last txt) commutative_ops ->
      List.exists (fun (_, a) -> comm_expr acc a) args
  | Pexp_ifthenelse (_, t, eo) -> (
      comm_expr acc t
      && match eo with Some x -> comm_expr acc x | None -> false)
  | Pexp_match (_, cases) ->
      cases <> [] && List.for_all (fun c -> comm_expr acc c.pc_rhs) cases
  | Pexp_let (_, _, b) | Pexp_sequence (_, b) -> comm_expr acc b
  | Pexp_constraint (x, _) -> comm_expr acc x
  | _ -> false

let commutative_fold_fn f =
  let rec peel e =
    match e.pexp_desc with
    | Pexp_fun (_, _, p, body) -> (
        match body.pexp_desc with
        | Pexp_fun _ -> peel body
        | _ -> (binding_name p, Some body))
    | _ -> (None, None)
  in
  match peel f with
  | Some acc, Some body -> comm_expr acc body
  | _ -> false

let head_is_sortish env e =
  match e.pexp_desc with
  | Pexp_apply (h, _) -> (
      match callee_of env h with Some (_, n) -> sortish n | None -> false)
  | Pexp_ident { txt; _ } -> sortish (lid_last txt)
  | _ -> false

let rec dwalk env report ~sorted e =
  match e.pexp_desc with
  | Pexp_ident { txt; _ } -> (
      match resolve env.sv_aliases txt with
      | Some m, x when List.mem (m, x) clock_idents ->
          report e.pexp_loc
            (Printf.sprintf
               "wall-clock read %s.%s is nondeterministic across runs" m x)
      | _ -> ())
  | Pexp_apply (h, args) -> (
      match (callee_of env h, args) with
      | Some (_, "|>"), [ (_, l); (_, r) ] ->
          dwalk env report ~sorted:(sorted || head_is_sortish env r) l;
          dwalk env report ~sorted r
      | Some (_, "@@"), [ (_, fn); (_, x) ] ->
          dwalk env report ~sorted fn;
          dwalk env report ~sorted:(sorted || head_is_sortish env fn) x
      | callee, _ ->
          let sorted_args =
            sorted
            || match callee with Some (_, n) -> sortish n | None -> false
          in
          (match callee with
          | Some (Some m, x) when List.mem (m, x) clock_idents ->
              report h.pexp_loc
                (Printf.sprintf
                   "wall-clock read %s.%s is nondeterministic across runs" m
                   x)
          | Some (Some "Hashtbl", "iter") ->
              report h.pexp_loc
                "Hashtbl.iter order is unspecified and can leak into \
                 traces; fold to a list and sort instead"
          | Some (Some "Hashtbl", "fold") ->
              let comm =
                match first_positional args with
                | Some f0 -> commutative_fold_fn f0
                | None -> false
              in
              if not (sorted || comm) then
                report h.pexp_loc
                  "Hashtbl.fold order is unspecified; sort the result or \
                   use a commutative accumulator"
          | _ -> ());
          List.iter (fun (_, a) -> dwalk env report ~sorted:sorted_args a) args;
          (match h.pexp_desc with
          | Pexp_ident _ -> ()
          | _ -> dwalk env report ~sorted h))
  | _ -> List.iter (dwalk env report ~sorted) (sub_expressions e)

let rec mutable_creation e =
  match e.pexp_desc with
  | Pexp_constraint (x, _) | Pexp_coerce (x, _, _) -> mutable_creation x
  | Pexp_array _ -> true
  | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, _) -> (
      match txt with
      | Longident.Lident "ref" -> true
      | Longident.Ldot (p, x) -> (
          match (lid_last p, x) with
          | ("Hashtbl" | "Queue" | "Buffer" | "Stack" | "Atomic"), "create" ->
              true
          | ("Array" | "Bytes"), ("make" | "create" | "init") -> true
          | _ -> false)
      | _ -> false)
  | _ -> false

let determinism_findings fns =
  let out = ref [] in
  List.iter
    (fun f ->
      let env =
        {
          sv_self = f.b_mod;
          sv_aliases = f.b_unit.u_aliases;
          sv_is_verifier = (fun _ -> false);
          sv_is_sinky = (fun _ -> false);
          sv_sink = (fun _ _ _ -> ());
        }
      in
      let report_line line msg =
        out :=
          { file = f.b_unit.u_path; line; rule = "determinism"; msg } :: !out
      in
      let report loc msg =
        report_line loc.Location.loc_start.Lexing.pos_lnum msg
      in
      if mutable_creation f.b_expr then
        report_line f.b_line
          (Printf.sprintf
             "top-level mutable value %s is shared across simulation runs"
             f.b_name);
      dwalk env report ~sorted:false f.b_expr)
    fns;
  !out

(* ------------------------------------------------------------------ *)
(* Dead exports. *)

(* The core library (lib/core/manetsec.ml) re-exports modules under new
   names ([module Obs_report = Manet_obs.Report]); bin/test reference
   them through those names.  Chase aliases transitively across all
   files so such uses land on the defining module. *)
let global_chase units =
  (* Names of real compilation units: a reference that already lands on
     one must not be chased further — another file's alias of the same
     bare name (e.g. bin's [module Json = Manetsec.Obs_json]) is a
     different scope and must not capture it. *)
  let real = Hashtbl.create 64 in
  List.iter (fun u -> Hashtbl.replace real u.u_mod ()) units;
  let pairs =
    List.concat_map
      (fun u ->
        Hashtbl.fold
          (fun k v acc -> if k <> v then (k, v) :: acc else acc)
          u.u_aliases [])
      units
    |> List.sort_uniq compare
  in
  let tbl = Hashtbl.create 64 in
  List.iter (fun (k, v) -> Hashtbl.replace tbl k v) pairs;
  let rec chase seen n =
    if Hashtbl.mem real n then n
    else
      match Hashtbl.find_opt tbl n with
      | Some v when (not (List.mem v seen)) && List.length seen < 8 ->
          chase (n :: seen) v
      | _ -> n
  in
  fun n -> chase [] n

let collect_uses units =
  let chase = global_chase units in
  let used = Hashtbl.create 256 in
  List.iter
    (fun u ->
      match u.u_parsed with
      | Impl str ->
          let it =
            {
              Ast_iterator.default_iterator with
              expr =
                (fun self e ->
                  (match e.pexp_desc with
                  | Pexp_ident { txt; _ } -> (
                      match resolve u.u_aliases txt with
                      | Some m, x ->
                          Hashtbl.replace used (u.u_mod, chase m, x) ()
                      | None, _ -> ())
                  | _ -> ());
                  Ast_iterator.default_iterator.expr self e);
            }
          in
          List.iter (fun item -> it.structure_item it item) str
      | _ -> ())
    units;
  used

let is_operator_name n =
  n = "" || match n.[0] with 'a' .. 'z' | '_' -> false | _ -> true

let dead_export_findings units =
  let used = Hashtbl.create 256 in
  Hashtbl.iter (fun k () -> Hashtbl.replace used k ())
    (collect_uses units);
  let used_outside m x =
    Hashtbl.fold
      (fun (u, um, ux) () acc -> acc || (um = m && ux = x && u <> m))
      used false
  in
  List.concat_map
    (fun u ->
      if not u.u_analyzed then []
      else
        match u.u_parsed with
        | Intf sg ->
            List.filter_map
              (fun item ->
                match item.psig_desc with
                | Psig_value vd ->
                    let name = vd.pval_name.Location.txt in
                    if
                      (not (is_operator_name name))
                      && not (used_outside u.u_mod name)
                    then
                      Some
                        {
                          file = u.u_path;
                          line =
                            vd.pval_loc.Location.loc_start.Lexing.pos_lnum;
                          rule = "dead-export";
                          msg =
                            Printf.sprintf
                              "val %s.%s is never referenced outside its \
                               module"
                              u.u_mod name;
                        }
                    else None
                | _ -> None)
              sg
        | _ -> [])
    units

(* ------------------------------------------------------------------ *)
(* Assembly. *)

let analyze ?(uses = []) files =
  let analyzed = List.map (mk_unit ~analyzed:true) files in
  let reference = List.map (mk_unit ~analyzed:false) uses in
  let units = analyzed @ reference in
  let fns = List.concat_map collect_bindings analyzed in
  let vset = verifier_fixpoint fns in
  let sinky = sinky_fixpoint fns vset in
  let findings =
    parse_failures analyzed
    @ taint_findings fns vset sinky
    @ (match messages_ctors analyzed with
      | Some ctors -> dispatch_findings fns ctors
      | None -> [])
    @ codec_findings fns vset analyzed
    @ determinism_findings fns
    @ dead_export_findings units
  in
  filter_suppressed analyzed findings

(* ------------------------------------------------------------------ *)
(* Baseline (re-exported from the shared runtime for compatibility). *)

let finding_key = C.finding_key

let render_baseline ?(tool = "manetsem") findings =
  C.render_baseline ~tool findings

let parse_baseline = C.parse_baseline
let diff_baseline = C.diff_baseline
let to_json = C.to_json
