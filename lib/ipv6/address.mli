(** 128-bit IPv6 addresses.

    Stored as two 64-bit halves.  Textual forms follow RFC 4291 syntax and
    RFC 5952 canonical output (longest zero-run compression, leftmost on
    ties, lower-case hex, IPv4-mapped tail rendered dotted-quad).  The
    module also carries the protocol's well-known constants: the
    [fec0::/10] site-local prefix the paper builds CGAs under and the
    three reserved DNS-discovery addresses of §2.4. *)

type t = { hi : int64; lo : int64 }
(** [hi] covers bytes 0-7 (network order), [lo] bytes 8-15. *)

val make : hi:int64 -> lo:int64 -> t
val compare : t -> t -> int
val equal : t -> t -> bool
val hash : t -> int

(* manetsem: allow dead-export — RFC 4291 constant; part of the
   address-type API surface even when no current caller needs it. *)
val unspecified : t
(** [::] — the source of a host that does not yet have an address. *)

(* manetsem: allow dead-export — RFC 4291 constant, same rationale as
   [unspecified]. *)
val loopback : t
(** [::1]. *)

val of_groups : int array -> t
(** [of_groups g] builds an address from eight 16-bit groups.
    Raises [Invalid_argument] unless [g] has length 8 with all values in
    [0, 0xffff]. *)

val to_groups : t -> int array

val of_bytes : string -> t
(** [of_bytes s] for a 16-byte network-order string. *)

val to_bytes : t -> string

val of_string : string -> (t, string) result
(** Parses RFC 4291 text (full form, [::] compression, IPv4-mapped
    dotted-quad tail).  Returns [Error reason] on malformed input. *)

val of_string_exn : string -> t
(** Like {!of_string}; raises [Invalid_argument]. *)

val to_string : t -> string
(** RFC 5952 canonical form. *)

val pp : Format.formatter -> t -> unit

(* manetsem: allow dead-export — the paper's Figure 1 site prefix;
   kept as the documented constant behind the default topology. *)
val site_local_prefix : t
(** [fec0::] — the 10-bit prefix of the paper's Figure 1 layout. *)

val is_site_local : t -> bool
(** True when the top 10 bits are [1111 1110 11]. *)

val matches_prefix : t -> prefix:t -> len:int -> bool
(** [matches_prefix a ~prefix ~len] checks the first [len] bits. *)

val dns_server_1 : t
(** [fec0:0:0:ffff::1], the first well-known DNS discovery address. *)

val dns_server_2 : t
val dns_server_3 : t

val interface_id : t -> int64
(** The low 64 bits — the CGA hash field of Figure 1. *)
