examples/quickstart.mli:
