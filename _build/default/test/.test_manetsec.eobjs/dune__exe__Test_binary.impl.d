test/test_binary.ml: Alcotest Buffer Bytes Char Format List Manet_crypto Manet_ipv6 Manet_proto QCheck QCheck_alcotest String
