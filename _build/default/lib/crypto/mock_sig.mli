(** An idealized signature scheme for large simulations.

    RSA dominates the runtime of thousand-node sweeps, so experiments that
    study *protocol* behaviour (delivery ratio, overhead counts, credit
    dynamics) can swap in this scheme: public keys are hashes of random
    secrets, signing is HMAC-SHA256 under the secret, and verification
    consults a per-registry table mapping public keys back to secrets.
    This models an ideal EUF-CMA signature oracle — an adversary without
    the secret cannot produce a valid tag, and a fabricated public key
    verifies nothing — while costing two hash compressions per operation.
    Experiments state which scheme they ran (see DESIGN.md §4.2). *)

type registry
(** The verification oracle: one per simulated world, so tests do not
    observe each other's keys. *)

type private_key

val create_registry : unit -> registry

val generate : registry -> Prng.t -> string * private_key
(** [generate reg g] is [(pk_bytes, sk)]; the key is recorded in [reg]. *)

val sign : private_key -> string -> string
(** 32-byte tag. *)

val verify : registry -> pk_bytes:string -> msg:string -> signature:string -> bool

val signature_size : int
val public_key_size : int
