lib/crypto/rsa.ml: Bignum Bytes Char Sha256 String
