lib/ipv6/address.mli: Format
