lib/ipv6/address.ml: Array Buffer Bytes Char Format Int64 List Printf String
