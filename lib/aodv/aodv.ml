module Address = Manet_ipv6.Address
module Prng = Manet_crypto.Prng
module Sha256 = Manet_crypto.Sha256
module Suite = Manet_crypto.Suite
module Engine = Manet_sim.Engine
module Stats = Manet_sim.Stats
module Net = Manet_sim.Net
module Directory = Manet_proto.Directory
module Identity = Manet_proto.Identity

type msg =
  | Rreq of {
      src : Address.t;
      src_seq : int;
      bcast_id : int;
      dst : Address.t;
      dst_seq_known : int;
      hop_count : int;
      sig_ : string;
      spk : string;
      srn : int64;
      hash : string;
      top_hash : string;
      max_hops : int;
    }
  | Rrep of {
      rep_src : Address.t;
      rep_dst : Address.t;
      dst_seq : int;
      hop_count : int;
      sig_ : string;
      dpk : string;
      drn : int64;
      hash : string;
      top_hash : string;
      max_hops : int;
    }
  | Rerr of { unreachable : (Address.t * int) list }
  | Data of {
      d_src : Address.t;
      d_dst : Address.t;
      d_seq : int;
      payload_size : int;
      sent_at : float;
    }
  | Ack of { a_src : Address.t; a_dst : Address.t; data_seq : int; sent_at : float }

let tag = function
  | Rreq _ -> "aodv_rreq"
  | Rrep _ -> "aodv_rrep"
  | Rerr _ -> "aodv_rerr"
  | Data _ -> "aodv_data"
  | Ack _ -> "aodv_ack"

let msg_size ~sig_size ~pk_size m =
  let header = 40 + 1 and addr = 16 and seq = 4 and hash = 32 in
  let body =
    match m with
    | Rreq { sig_; _ } ->
        (2 * addr) + (4 * seq)
        + (if sig_ = "" then 0 else sig_size + pk_size + 8 + (2 * hash) + 1)
        + 1
    | Rrep { sig_; _ } ->
        (2 * addr) + (2 * seq)
        + (if sig_ = "" then 0 else sig_size + pk_size + 8 + (2 * hash) + 1)
    | Rerr { unreachable } -> 1 + (List.length unreachable * (addr + seq))
    | Data { payload_size; _ } -> (2 * addr) + seq + payload_size
    | Ack _ -> (2 * addr) + seq
  in
  header + body

module Hash_chain = struct
  let advance h = Sha256.digest h

  let rec iterate h n = if n <= 0 then h else iterate (advance h) (n - 1)

  let generate g ~max_hops =
    let seed = Prng.bytes g 32 in
    (seed, iterate seed max_hops)

  let check ~hash ~top_hash ~max_hops ~hop_count =
    hop_count >= 0 && hop_count <= max_hops
    && String.equal (iterate hash (max_hops - hop_count)) top_hash
end

type config = {
  secure : bool;
  discovery_timeout : float;
  max_discovery_attempts : int;
  route_lifetime : float;
  ack_timeout : float;
  max_send_retries : int;
  flood_jitter : float;
  max_hops : int;
}

let default_config =
  {
    secure = false;
    discovery_timeout = 1.0;
    max_discovery_attempts = 3;
    route_lifetime = 30.0;
    ack_timeout = 1.5;
    max_send_retries = 2;
    flood_jitter = 0.01;
    max_hops = 16;
  }

type route_entry = {
  mutable next : Address.t;
  mutable hops : int;
  mutable seq : int;
  mutable expires : float;
  mutable valid : bool;
}

type packet = {
  p_dst : Address.t;
  p_size : int;
  p_seq : int;
  p_first_sent : float;
  mutable p_retries : int;
}

type pending_discovery = {
  d_dst : Address.t;
  mutable d_attempts : int;
  mutable d_resolved : bool;
}

type t = {
  config : config;
  net : msg Net.t;
  directory : Directory.t;
  identity : Identity.t;
  rng : Prng.t;
  engine : Engine.t;
  table : (string, route_entry) Hashtbl.t;
  mutable own_seq : int;
  mutable bcast_id : int;
  mutable data_seq : int;
  seen_rreq : (string, unit) Hashtbl.t;
  pending : (string, pending_discovery) Hashtbl.t;
  queue : (string, packet Queue.t) Hashtbl.t;
  in_flight : (string, packet) Hashtbl.t;
  seen_data : (string, unit) Hashtbl.t;
}

let akey = Address.to_bytes
let fkey a n = akey a ^ string_of_int n

let create ?(config = default_config) ~net ~directory ~identity ~rng () =
  {
    config;
    net;
    directory;
    identity;
    rng;
    engine = Net.engine net;
    table = Hashtbl.create 32;
    own_seq = 0;
    bcast_id = 0;
    data_seq = 0;
    seen_rreq = Hashtbl.create 256;
    pending = Hashtbl.create 16;
    queue = Hashtbl.create 16;
    in_flight = Hashtbl.create 32;
    seen_data = Hashtbl.create 64;
  }

let address t = t.identity.Identity.address
let now t = Engine.now t.engine
let node_id t = t.identity.Identity.node_id
let net t = t.net
let suite t = t.identity.Identity.suite
let stat t name = Stats.incr (Engine.stats t.engine) name
let observe t name v = Stats.observe (Engine.stats t.engine) name v

let sig_sizes t =
  let s = suite t in
  if t.config.secure then (s.Suite.signature_size, s.Suite.public_key_size)
  else (0, 0)

let broadcast t m =
  let sig_size, pk_size = sig_sizes t in
  stat t ("tx." ^ tag m);
  Net.broadcast t.net ~src:(node_id t) ~size:(msg_size ~sig_size ~pk_size m) m

let unicast_addr t ~next ?(on_fail = fun () -> ()) m =
  let sig_size, pk_size = sig_sizes t in
  stat t ("tx." ^ tag m);
  match Directory.lookup_all t.directory next with
  | [] -> Engine.schedule t.engine ~label:"aodv" ~delay:0.01 on_fail
  | claimants ->
      let size = msg_size ~sig_size ~pk_size m in
      List.iter
        (fun dst -> Net.unicast t.net ~src:(node_id t) ~dst ~size ~on_fail m)
        claimants

(* The MAC-layer sender's address: AODV installs it as the next hop of
   reverse/forward routes. *)
let sender_addr t src =
  match Directory.addresses_of t.directory src with a :: _ -> Some a | [] -> None

(* --- routing table ------------------------------------------------------- *)

let route_lookup t dst =
  match Hashtbl.find_opt t.table (akey dst) with
  | Some e when e.valid && e.expires > now t -> Some e
  | _ -> None

let next_hop t ~dst = Option.map (fun e -> e.next) (route_lookup t dst)

(* AODV route update rule: fresher sequence number wins; equal freshness
   prefers fewer hops; invalid/expired entries are always replaced. *)
let route_update t ~dst ~next ~hops ~seq =
  let k = akey dst in
  let expires = now t +. t.config.route_lifetime in
  match Hashtbl.find_opt t.table k with
  | Some e when e.valid && e.expires > now t ->
      if seq > e.seq || (seq = e.seq && hops < e.hops) then begin
        e.next <- next;
        e.hops <- hops;
        e.seq <- seq;
        e.expires <- expires;
        true
      end
      else begin
        e.expires <- max e.expires expires;
        false
      end
  | _ ->
      Hashtbl.replace t.table k { next; hops; seq; expires; valid = true };
      true

let invalidate_route t dst =
  match Hashtbl.find_opt t.table (akey dst) with
  | Some e -> e.valid <- false
  | None -> ()

(* --- SAODV signatures ----------------------------------------------------- *)

let rreq_payload ~src ~src_seq ~bcast_id ~dst ~top_hash ~max_hops =
  "AORQ|" ^ Address.to_bytes src ^ string_of_int src_seq ^ "|"
  ^ string_of_int bcast_id ^ Address.to_bytes dst ^ top_hash
  ^ string_of_int max_hops

let rrep_payload ~rep_src ~rep_dst ~dst_seq ~top_hash ~max_hops =
  "AORP|" ^ Address.to_bytes rep_src ^ Address.to_bytes rep_dst
  ^ string_of_int dst_seq ^ top_hash ^ string_of_int max_hops

let verify_origin t ~ip ~pk ~rn ~payload ~signature =
  Suite.count_hash (suite t) ~bytes:(String.length pk + 8);
  Manet_ipv6.Cga.verify ip ~pk_bytes:pk ~rn
  && (suite t).Suite.verify ~pk_bytes:pk ~msg:payload ~signature

(* --- data plane ------------------------------------------------------------ *)

let rec transmit t packet =
  match route_lookup t packet.p_dst with
  | None ->
      Queue.push packet (queue_for t packet.p_dst);
      start_discovery t packet.p_dst
  | Some entry ->
      Hashtbl.replace t.in_flight (fkey packet.p_dst packet.p_seq) packet;
      let m =
        Data
          {
            d_src = address t;
            d_dst = packet.p_dst;
            d_seq = packet.p_seq;
            payload_size = packet.p_size;
            sent_at = packet.p_first_sent;
          }
      in
      unicast_addr t ~next:entry.next m ~on_fail:(fun () ->
          invalidate_route t packet.p_dst);
      Engine.schedule t.engine ~label:"aodv" ~delay:t.config.ack_timeout
        (fun () ->
          let k = fkey packet.p_dst packet.p_seq in
          match Hashtbl.find_opt t.in_flight k with
          | Some p when p == packet ->
              Hashtbl.remove t.in_flight k;
              stat t "data.timeout";
              invalidate_route t packet.p_dst;
              if packet.p_retries < t.config.max_send_retries then begin
                packet.p_retries <- packet.p_retries + 1;
                transmit t packet
              end
              else stat t "data.dropped"
          | _ -> ())

and queue_for t dst =
  let k = akey dst in
  match Hashtbl.find_opt t.queue k with
  | Some q -> q
  | None ->
      let q = Queue.create () in
      Hashtbl.add t.queue k q;
      q

and start_discovery t dst =
  let k = akey dst in
  if not (Hashtbl.mem t.pending k) then begin
    let d = { d_dst = dst; d_attempts = 0; d_resolved = false } in
    Hashtbl.add t.pending k d;
    send_rreq t d
  end

and send_rreq t d =
  d.d_attempts <- d.d_attempts + 1;
  t.own_seq <- t.own_seq + 1;
  t.bcast_id <- t.bcast_id + 1;
  stat t "route.discoveries";
  let src = address t in
  let dst_seq_known =
    match Hashtbl.find_opt t.table (akey d.d_dst) with Some e -> e.seq | None -> 0
  in
  let hash, top_hash =
    if t.config.secure then Hash_chain.generate t.rng ~max_hops:t.config.max_hops
    else ("", "")
  in
  let sig_, spk, srn =
    if t.config.secure then
      ( Identity.sign t.identity
          (rreq_payload ~src ~src_seq:t.own_seq ~bcast_id:t.bcast_id ~dst:d.d_dst
             ~top_hash ~max_hops:t.config.max_hops),
        Identity.pk_bytes t.identity,
        t.identity.Identity.rn )
    else ("", "", 0L)
  in
  Hashtbl.replace t.seen_rreq (fkey src t.bcast_id) ();
  broadcast t
    (Rreq
       {
         src;
         src_seq = t.own_seq;
         bcast_id = t.bcast_id;
         dst = d.d_dst;
         dst_seq_known;
         hop_count = 0;
         sig_;
         spk;
         srn;
         hash;
         top_hash;
         max_hops = t.config.max_hops;
       });
  Engine.schedule t.engine ~label:"aodv" ~delay:t.config.discovery_timeout
    (fun () ->
      if not d.d_resolved then begin
        if d.d_attempts < t.config.max_discovery_attempts then send_rreq t d
        else begin
          d.d_resolved <- true;
          Hashtbl.remove t.pending (akey d.d_dst);
          stat t "route.discovery_failed";
          match Hashtbl.find_opt t.queue (akey d.d_dst) with
          | Some q ->
              Queue.iter (fun _ -> stat t "data.dropped") q;
              Queue.clear q
          | None -> ()
        end
      end)

and route_established t dst =
  (match Hashtbl.find_opt t.pending (akey dst) with
  | Some d when not d.d_resolved ->
      d.d_resolved <- true;
      Hashtbl.remove t.pending (akey dst)
  | _ -> ());
  match Hashtbl.find_opt t.queue (akey dst) with
  | Some q ->
      let packets = List.of_seq (Queue.to_seq q) in
      Queue.clear q;
      List.iter (fun p -> transmit t p) packets
  | None -> ()

let send t ~dst ?(size = 512) () =
  t.data_seq <- t.data_seq + 1;
  stat t "data.offered";
  transmit t
    { p_dst = dst; p_size = size; p_seq = t.data_seq; p_first_sent = now t; p_retries = 0 }

(* --- message handling -------------------------------------------------------- *)

let answer_as_destination t ~src =
  t.own_seq <- t.own_seq + 1;
  let hash, top_hash =
    if t.config.secure then Hash_chain.generate t.rng ~max_hops:t.config.max_hops
    else ("", "")
  in
  let sig_, dpk, drn =
    if t.config.secure then
      ( Identity.sign t.identity
          (rrep_payload ~rep_src:src ~rep_dst:(address t) ~dst_seq:t.own_seq
             ~top_hash ~max_hops:t.config.max_hops),
        Identity.pk_bytes t.identity,
        t.identity.Identity.rn )
    else ("", "", 0L)
  in
  let m =
    Rrep
      {
        rep_src = src;
        rep_dst = address t;
        dst_seq = t.own_seq;
        hop_count = 0;
        sig_;
        dpk;
        drn;
        hash;
        top_hash;
        max_hops = t.config.max_hops;
      }
  in
  match route_lookup t src with
  | Some e -> unicast_addr t ~next:e.next m
  | None -> () (* reverse route vanished; the requester will retry *)

let handle_rreq t ~src m =
  match m with
  | Rreq
      {
        src = origin;
        src_seq;
        bcast_id;
        dst;
        dst_seq_known;
        hop_count;
        sig_;
        spk;
        srn;
        hash;
        top_hash;
        max_hops;
      } ->
      let key = fkey origin bcast_id in
      if Hashtbl.mem t.seen_rreq key then ()
      else begin
        Hashtbl.replace t.seen_rreq key ();
        let chain_ok =
          (not t.config.secure)
          || Hash_chain.check ~hash ~top_hash ~max_hops ~hop_count
        in
        let sig_ok =
          (not t.config.secure)
          || verify_origin t ~ip:origin ~pk:spk ~rn:srn
               ~payload:
                 (rreq_payload ~src:origin ~src_seq ~bcast_id ~dst ~top_hash
                    ~max_hops)
               ~signature:sig_
        in
        if not chain_ok then stat t "aodv.hash_chain_rejected"
        else if not sig_ok then stat t "aodv.rreq_rejected"
        else begin
          (* Install the reverse route toward the requester. *)
          (match sender_addr t src with
          | Some prev ->
              ignore
                (route_update t ~dst:origin ~next:prev ~hops:(hop_count + 1)
                   ~seq:src_seq)
          | None -> ());
          if Address.equal dst (address t) then begin
            t.own_seq <- max t.own_seq dst_seq_known;
            answer_as_destination t ~src:origin
          end
          else if hop_count + 1 < max_hops then begin
            let relayed =
              Rreq
                {
                  src = origin;
                  src_seq;
                  bcast_id;
                  dst;
                  dst_seq_known;
                  hop_count = hop_count + 1;
                  sig_;
                  spk;
                  srn;
                  hash = (if t.config.secure then Hash_chain.advance hash else hash);
                  top_hash;
                  max_hops;
                }
            in
            let delay = Prng.float t.rng t.config.flood_jitter in
            Engine.schedule t.engine ~label:"aodv" ~delay (fun () ->
                broadcast t relayed)
          end
        end
      end
  | _ -> ()

let handle_rrep t ~src m =
  match m with
  | Rrep
      { rep_src; rep_dst; dst_seq; hop_count; sig_; dpk; drn; hash; top_hash; max_hops }
    ->
      let chain_ok =
        (not t.config.secure)
        || Hash_chain.check ~hash ~top_hash ~max_hops ~hop_count
      in
      let sig_ok =
        (not t.config.secure)
        || verify_origin t ~ip:rep_dst ~pk:dpk ~rn:drn
             ~payload:(rrep_payload ~rep_src ~rep_dst ~dst_seq ~top_hash ~max_hops)
             ~signature:sig_
      in
      if not chain_ok then stat t "aodv.hash_chain_rejected"
      else if not sig_ok then stat t "aodv.rrep_rejected"
      else begin
        (* Install the forward route toward the reported destination. *)
        (match sender_addr t src with
        | Some prev ->
            ignore
              (route_update t ~dst:rep_dst ~next:prev ~hops:(hop_count + 1)
                 ~seq:dst_seq)
        | None -> ());
        if Address.equal rep_src (address t) then route_established t rep_dst
        else begin
          match route_lookup t rep_src with
          | Some e ->
              unicast_addr t ~next:e.next
                (Rrep
                   {
                     rep_src;
                     rep_dst;
                     dst_seq;
                     hop_count = hop_count + 1;
                     sig_;
                     dpk;
                     drn;
                     hash =
                       (if t.config.secure then Hash_chain.advance hash else hash);
                     top_hash;
                     max_hops;
                   })
          | None -> stat t "aodv.rrep_no_reverse_route"
        end
      end
  | _ -> ()

let handle_rerr t ~src m =
  match m with
  (* AODV/SAODV route errors carry no origin signature (only RREQ/RREP
     are protected); error handling is inherently unauthenticated. *)
  (* manetlint: allow security *)
  | Rerr { unreachable } ->
      (* Invalidate every listed destination we route via the sender,
         and propagate once for the ones we actually dropped. *)
      let prev = sender_addr t src in
      let dropped =
        List.filter
          (fun (dst, seq) ->
            match (Hashtbl.find_opt t.table (akey dst), prev) with
            | Some e, Some p
              when e.valid && Address.equal e.next p && (seq = 0 || e.seq <= seq) ->
                e.valid <- false;
                true
            | _ -> false)
          unreachable
      in
      stat t "rerr.received";
      if dropped <> [] then broadcast t (Rerr { unreachable = dropped })
  | _ -> ()

let handle_data t ~src:_ m =
  match m with
  | Data { d_src; d_dst; d_seq; sent_at; _ } ->
      if Address.equal d_dst (address t) then begin
        let k = fkey d_src d_seq in
        if not (Hashtbl.mem t.seen_data k) then begin
          Hashtbl.replace t.seen_data k ();
          stat t "data.delivered";
          observe t "data.latency" (now t -. sent_at)
        end;
        match route_lookup t d_src with
        | Some e ->
            unicast_addr t ~next:e.next
              (Ack { a_src = address t; a_dst = d_src; data_seq = d_seq; sent_at })
        | None -> stat t "aodv.ack_no_route"
      end
      else begin
        match route_lookup t d_dst with
        | Some e ->
            stat t "data.forwarded";
            unicast_addr t ~next:e.next m ~on_fail:(fun () ->
                invalidate_route t d_dst;
                stat t "rerr.sent";
                broadcast t (Rerr { unreachable = [ (d_dst, 0) ] }))
        | None ->
            stat t "rerr.sent";
            broadcast t (Rerr { unreachable = [ (d_dst, 0) ] })
      end
  | _ -> ()

let handle_ack t ~src:_ m =
  match m with
  | Ack { a_src; a_dst; data_seq; sent_at } ->
      if Address.equal a_dst (address t) then begin
        let k = fkey a_src data_seq in
        match Hashtbl.find_opt t.in_flight k with
        | Some _ ->
            Hashtbl.remove t.in_flight k;
            stat t "data.acked";
            observe t "data.rtt" (now t -. sent_at)
        | None -> stat t "ack.unmatched"
      end
      else begin
        match route_lookup t a_dst with
        | Some e -> unicast_addr t ~next:e.next m
        | None -> ()
      end
  | _ -> ()

let handle t ~src m =
  match m with
  | Rreq _ -> handle_rreq t ~src m
  | Rrep _ -> handle_rrep t ~src m
  | Rerr _ -> handle_rerr t ~src m
  | Data _ -> handle_data t ~src m
  | Ack _ -> handle_ack t ~src m
