lib/proto/wire.ml: Binary Messages String
