(* manetdom — domain-safety analyzer.  See dom.mli for the rule
   catalogue.  Built on compiler-libs only (Parse + Parsetree +
   Ast_iterator); the comment scanner, strict allow grammar and baseline
   machinery come from tools/analyzer_common, shared with manetsem and
   manethot, so all analyzers keep one suppression grammar and one
   diff/stale semantics. *)

open Parsetree
module C = Analyzer_common.Common
open C

type finding = C.finding = {
  file : string;
  line : int;
  rule : string;
  msg : string;
}

let rules =
  [
    "toplevel-state"; "toplevel-lazy"; "escaping-memo"; "global-rng";
    "domain-primitive"; "parse";
  ]

(* The one module allowed to touch the domain primitives: the reviewed
   fan-out scheduler.  Matched by path suffix so fixtures can opt in. *)
let domain_allowlisted path =
  Filename.basename path = "parallel.ml"
  && Filename.basename (Filename.dirname path) = "sim"

let domain_modules =
  [ "Domain"; "Atomic"; "Mutex"; "Condition"; "Semaphore"; "Thread" ]

(* Strict allow grammar: the directive may sit anywhere inside a
   comment — so one comment can carry both a manetsem and a manetdom
   allow when both analyzers flag the same binding — and the rationale
   (prose between the rule names and the next [manetdom:] marker) is
   mandatory; a directive without one yields an unsuppressible
   "annotation" finding instead. *)
let scan_allows =
  C.scan_allows ~tool:"manetdom" ~rules ~anywhere:true ~require_rationale:true

let mk_unit = C.mk_unit ~scan:scan_allows

(* ------------------------------------------------------------------ *)
(* Record mutability: collect (label set, has mutable field) for every
   record type declared anywhere in the analyzed tree (.ml and .mli).
   A record literal is judged mutable only when at least one declaration
   matches its labels and every matching declaration has a mutable
   field, so label collisions between mutable and immutable types do
   not produce false positives. *)

let record_decls units =
  let out = ref [] in
  let it =
    {
      Ast_iterator.default_iterator with
      type_declaration =
        (fun self d ->
          (match d.ptype_kind with
          | Ptype_record lds ->
              let labels = List.map (fun ld -> ld.pld_name.Location.txt) lds in
              let has_mut =
                List.exists (fun ld -> ld.pld_mutable = Asttypes.Mutable) lds
              in
              out := (labels, has_mut) :: !out
          | _ -> ());
          Ast_iterator.default_iterator.type_declaration self d);
    }
  in
  List.iter
    (fun u ->
      match u.u_parsed with
      | Impl str -> it.structure it str
      | Intf sg -> it.signature it sg
      | Fail _ -> ())
    units;
  !out

let record_literal_mutable decls fields =
  let labels =
    List.map (fun (l, _) -> lid_last l.Location.txt) fields
  in
  let matching =
    List.filter
      (fun (ls, _) -> List.for_all (fun l -> List.mem l ls) labels)
      decls
  in
  matching <> [] && List.for_all (fun (_, m) -> m) matching

(* ------------------------------------------------------------------ *)
(* Mutable-allocation classifier.  Returns a human description of the
   first mutable allocation the expression evaluates to, peeling
   wrappers and looking through branches; [returns_mut] answers for
   full applications of local constructor functions (fixpoint below). *)

let mutable_builders =
  [
    ("Hashtbl", [ "create"; "copy"; "of_seq" ]);
    ("Queue", [ "create"; "copy"; "of_seq" ]);
    ("Buffer", [ "create" ]);
    ("Stack", [ "create"; "copy"; "of_seq" ]);
    ("Atomic", [ "make" ]);
    ("Weak", [ "create" ]);
    ( "Array",
      [
        "make"; "create"; "init"; "of_list"; "copy"; "make_matrix"; "append";
        "concat"; "sub";
      ] );
    ("Bytes", [ "make"; "create"; "init"; "of_string"; "copy"; "sub" ]);
  ]

let rec mutable_alloc ~decls ~aliases ~returns_mut e =
  let recur = mutable_alloc ~decls ~aliases ~returns_mut in
  match e.pexp_desc with
  | Pexp_constraint (x, _) | Pexp_coerce (x, _, _) | Pexp_open (_, x) ->
      recur x
  | Pexp_let (_, _, b) | Pexp_sequence (_, b) -> recur b
  | Pexp_array [] -> None (* zero cells: nothing to race on *)
  | Pexp_array _ -> Some "array literal"
  | Pexp_tuple xs -> List.find_map recur xs
  | Pexp_record (fields, base) ->
      if record_literal_mutable decls fields then
        Some "record with mutable fields"
      else (
        match List.find_map (fun (_, x) -> recur x) fields with
        | Some _ as r -> r
        | None -> Option.bind base recur)
  | Pexp_construct (_, Some x) | Pexp_variant (_, Some x) -> recur x
  | Pexp_ifthenelse (_, t, eo) -> (
      match recur t with Some _ as r -> r | None -> Option.bind eo recur)
  | Pexp_match (_, cases) | Pexp_try (_, cases) ->
      List.find_map (fun c -> recur c.pc_rhs) cases
  | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, _) -> (
      match resolve aliases txt with
      | None, "ref" -> Some "ref cell"
      | Some m, x ->
          if
            List.exists
              (fun (bm, xs) -> bm = m && List.mem x xs)
              mutable_builders
          then Some (m ^ "." ^ x)
          else if returns_mut (Some m, x) then
            Some
              (Printf.sprintf "call to %s.%s, which returns mutable state" m x)
          else None
      | None, x ->
          if returns_mut (None, x) then
            Some (Printf.sprintf "call to %s, which returns mutable state" x)
          else None)
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Shape helpers over top-level bindings (Common.collect_bindings). *)

let rec is_function e =
  match e.pexp_desc with
  | Pexp_fun _ | Pexp_function _ | Pexp_newtype _ -> true
  | Pexp_constraint (x, _) | Pexp_open (_, x) -> is_function x
  | _ -> false

let rec peel_funs e =
  match e.pexp_desc with
  | Pexp_fun (_, _, _, body) -> peel_funs body
  | Pexp_newtype (_, body) -> peel_funs body
  | Pexp_constraint (x, _) -> peel_funs x
  | _ -> e

let rec peel_wrappers e =
  match e.pexp_desc with
  | Pexp_constraint (x, _) | Pexp_coerce (x, _, _) | Pexp_open (_, x) ->
      peel_wrappers x
  | _ -> e

let rec strip_lets e =
  match e.pexp_desc with
  | Pexp_let (_, _, b) | Pexp_sequence (_, b) -> strip_lets b
  | Pexp_constraint (x, _) | Pexp_open (_, x) -> strip_lets x
  | _ -> e

(* Constructor-function fixpoint: a top-level function "returns mutable
   state" when, after peeling its parameters, some evaluation path ends
   in a mutable allocation or a full application of another such
   function.  This lets [let make () = Hashtbl.create 64] taint
   [let registry = make ()] even across modules. *)
let returns_mut_fixpoint decls tops =
  let tbl = Hashtbl.create 32 in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun t ->
        if (not (Hashtbl.mem tbl (t.b_mod, t.b_name))) && is_function t.b_expr
        then begin
          let member c =
            match c with
            | None, x -> Hashtbl.mem tbl (t.b_mod, x)
            | Some m, x -> Hashtbl.mem tbl (m, x)
          in
          let ret = peel_funs t.b_expr in
          match
            mutable_alloc ~decls ~aliases:t.b_unit.u_aliases
              ~returns_mut:member ret
          with
          | Some _ ->
              Hashtbl.replace tbl (t.b_mod, t.b_name) ();
              changed := true
          | None -> ()
        end)
      tops
  done;
  fun b_mod c ->
    match c with
    | None, x -> Hashtbl.mem tbl (b_mod, x)
    | Some m, x -> Hashtbl.mem tbl (m, x)

(* ------------------------------------------------------------------ *)
(* Rules (a)+(b): top-level mutable state, lazy bindings, escaping memo
   tables. *)

let toplevel_findings decls returns_mut tops =
  let out = ref [] in
  let emit t line rule msg =
    out := { file = t.b_unit.u_path; line; rule; msg } :: !out
  in
  List.iter
    (fun t ->
      let alloc e =
        mutable_alloc ~decls ~aliases:t.b_unit.u_aliases
          ~returns_mut:(returns_mut t.b_mod) e
      in
      let e = peel_wrappers t.b_expr in
      (* A plain function value holds no state of its own; lets inside
         its body allocate per call. *)
      if not (is_function e) then begin
        (* The memo-table idiom: a let-chain that allocates mutable
           state and then evaluates to a closure capturing it.  The
           allocation happens once, at module init. *)
        let mut_locals = Hashtbl.create 4 in
        let rec memo_chain e =
          match e.pexp_desc with
          | Pexp_let (_, vbs, body) ->
              let body_is_closure = is_function (strip_lets body) in
              List.iter
                (fun vb ->
                  match alloc vb.pvb_expr with
                  | Some what ->
                      (match binding_name vb.pvb_pat with
                      | Some n -> Hashtbl.replace mut_locals n what
                      | None -> ());
                      if body_is_closure then
                        emit t vb.pvb_loc.Location.loc_start.Lexing.pos_lnum
                          "escaping-memo"
                          (Printf.sprintf
                             "%s allocated at module init escapes into the \
                              closure %s.%s; every domain shares one table"
                             what t.b_mod t.b_name)
                  | None -> ())
                vbs;
              memo_chain body
          | Pexp_constraint (x, _) | Pexp_open (_, x) -> memo_chain x
          | _ -> ()
        in
        memo_chain e;
        let final = peel_wrappers (strip_lets e) in
        match final.pexp_desc with
        | Pexp_lazy _ ->
            emit t t.b_line "toplevel-lazy"
              (Printf.sprintf
                 "top-level lazy %s.%s: forcing is not atomic across \
                  domains; make it a per-scenario value"
                 t.b_mod t.b_name)
        | Pexp_ident { txt = Longident.Lident n; _ }
          when Hashtbl.mem mut_locals n ->
            emit t t.b_line "toplevel-state"
              (Printf.sprintf
                 "top-level mutable value %s.%s (%s bound in its own let \
                  chain) is shared by every domain"
                 t.b_mod t.b_name (Hashtbl.find mut_locals n))
        | _ when is_function final -> ()
        | _ -> (
            match alloc e with
            | Some what ->
                emit t t.b_line "toplevel-state"
                  (Printf.sprintf
                     "top-level mutable value %s.%s (%s) is shared by every \
                      domain; allocate it per scenario or prove it read-only"
                     t.b_mod t.b_name what)
            | None -> ())
      end)
    tops;
  !out

(* ------------------------------------------------------------------ *)
(* Rule (c): global RNG. *)

let rng_ident aliases txt =
  match resolve aliases txt with
  | Some "Random", x ->
      Some
        (Printf.sprintf
           "Random.%s draws from the process-global RNG; split the \
            engine's Prng instead"
           x)
  | Some "State", "make_self_init" ->
      Some
        "Random.State.make_self_init seeds from the environment; derive \
         the state from the run seed"
  | _ -> None

let global_rng_direct u =
  let out = ref [] in
  (match u.u_parsed with
  | Impl str ->
      let it =
        {
          Ast_iterator.default_iterator with
          expr =
            (fun self e ->
              (match e.pexp_desc with
              | Pexp_ident { txt; loc } -> (
                  match rng_ident u.u_aliases txt with
                  | Some msg ->
                      out :=
                        (loc.Location.loc_start.Lexing.pos_lnum, msg) :: !out
                  | None -> ())
              | _ -> ());
              Ast_iterator.default_iterator.expr self e);
        }
      in
      it.structure it str
  | _ -> ());
  List.rev !out

(* Call-graph reachability: exported functions that can reach a
   global-RNG user through local calls without using it directly
   themselves (direct uses are already reported at the use site). *)
let rng_reach_findings units tops =
  let idents_of t =
    let acc = ref [] in
    let it =
      {
        Ast_iterator.default_iterator with
        expr =
          (fun self e ->
            (match e.pexp_desc with
            | Pexp_ident { txt; _ } ->
                acc := resolve t.b_unit.u_aliases txt :: !acc
            | _ -> ());
            Ast_iterator.default_iterator.expr self e);
      }
    in
    it.expr it t.b_expr;
    !acc
  in
  let direct = Hashtbl.create 16 in
  List.iter
    (fun t ->
      if
        List.exists
          (function
            | Some "Random", _ | Some "State", "make_self_init" -> true
            | _ -> false)
          (idents_of t)
      then Hashtbl.replace direct (t.b_mod, t.b_name) ())
    tops;
  let reach = Hashtbl.copy direct in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun t ->
        if
          (not (Hashtbl.mem reach (t.b_mod, t.b_name)))
          && List.exists
               (function
                 | None, x -> Hashtbl.mem reach (t.b_mod, x)
                 | Some m, x -> Hashtbl.mem reach (m, x))
               (idents_of t)
        then begin
          Hashtbl.replace reach (t.b_mod, t.b_name) ();
          changed := true
        end)
      tops
  done;
  let exported = Hashtbl.create 64 in
  List.iter
    (fun u ->
      match u.u_parsed with
      | Intf sg ->
          List.iter
            (fun item ->
              match item.psig_desc with
              | Psig_value vd ->
                  Hashtbl.replace exported (u.u_mod, vd.pval_name.Location.txt)
                    ()
              | _ -> ())
            sg
      | _ -> ())
    units;
  List.filter_map
    (fun t ->
      if
        Hashtbl.mem reach (t.b_mod, t.b_name)
        && (not (Hashtbl.mem direct (t.b_mod, t.b_name)))
        && Hashtbl.mem exported (t.b_mod, t.b_name)
      then
        Some
          {
            file = t.b_unit.u_path;
            line = t.b_line;
            rule = "global-rng";
            msg =
              Printf.sprintf
                "exported %s.%s reaches the process-global Random through \
                 its call graph; thread an engine Prng down instead"
                t.b_mod t.b_name;
          }
      else None)
    tops

(* ------------------------------------------------------------------ *)
(* Rule (d): domain primitives outside the sanctioned scheduler. *)

let domain_findings u =
  if domain_allowlisted u.u_path then []
  else
    let out = ref [] in
    let emit line m x =
      out :=
        {
          file = u.u_path;
          line;
          rule = "domain-primitive";
          msg =
            Printf.sprintf
              "%s outside lib/sim/parallel.ml: concurrency primitives \
               belong only in the sanctioned scheduler"
              (match x with Some x -> m ^ "." ^ x | None -> "open " ^ m);
        }
        :: !out
    in
    (match u.u_parsed with
    | Impl str ->
        let check_open loc lid =
          let m = lid_last lid in
          let m =
            match Hashtbl.find_opt u.u_aliases m with Some r -> r | None -> m
          in
          if List.mem m domain_modules then
            emit loc.Location.loc_start.Lexing.pos_lnum m None
        in
        let it =
          {
            Ast_iterator.default_iterator with
            expr =
              (fun self e ->
                (match e.pexp_desc with
                | Pexp_ident { txt; loc } -> (
                    match resolve u.u_aliases txt with
                    | Some m, x when List.mem m domain_modules ->
                        emit loc.Location.loc_start.Lexing.pos_lnum m (Some x)
                    | _ -> ())
                | _ -> ());
                Ast_iterator.default_iterator.expr self e);
            open_declaration =
              (fun self od ->
                (match od.popen_expr.pmod_desc with
                | Pmod_ident { txt; _ } -> check_open od.popen_loc txt
                | _ -> ());
                Ast_iterator.default_iterator.open_declaration self od);
            module_binding =
              (fun self mb ->
                (match (mb.pmb_name.Location.txt, mb.pmb_expr.pmod_desc) with
                | Some _, Pmod_ident { txt; _ } ->
                    let m = lid_last txt in
                    if List.mem m domain_modules then
                      emit mb.pmb_loc.Location.loc_start.Lexing.pos_lnum m None
                | _ -> ());
                Ast_iterator.default_iterator.module_binding self mb);
          }
        in
        it.structure it str
    | _ -> ());
    List.rev !out

(* ------------------------------------------------------------------ *)
(* Assembly. *)

let analyze files =
  let units = List.map mk_unit files in
  let decls = record_decls units in
  let tops = List.concat_map collect_bindings units in
  let returns_mut = returns_mut_fixpoint decls tops in
  let rng_direct =
    List.concat_map
      (fun u ->
        List.map
          (fun (line, msg) -> { file = u.u_path; line; rule = "global-rng"; msg })
          (global_rng_direct u))
      units
  in
  let findings =
    parse_failures units
    @ toplevel_findings decls returns_mut tops
    @ rng_direct
    @ rng_reach_findings units tops
    @ List.concat_map domain_findings units
    @ annotation_findings ~tool:"manetdom" units
  in
  filter_suppressed ~protect:[ "annotation" ] units findings
