(** Windowed time-series metrics over simulated time.

    Counters and float series, bucketed into fixed-length windows of the
    simulated clock and attributed per node (with a [-1] pseudo-node
    aggregating the global view).  The engine is layered {e over} the
    existing flat {!Manet_sim.Stats} (which stays the source of truth
    for run totals) and over the {!Audit} stream (every audit event
    counts under ["audit.<kind>"] for the emitter and
    ["accused.<kind>"] for the subject — wired in {!Obs.create}).

    Windows are derived lazily from [Engine.now] at record time; nothing
    is ever scheduled on the engine, so enabling metrics cannot perturb
    a simulation.  Recording is {e off} by default: the per-call cost
    with metrics disabled is one field test.

    Both exports are sorted and rendered through the canonical
    {!Json.float_str} formatter, and both rely on the documented
    sorted-output guarantee of {!Manet_sim.Stats.counters} and
    {!Manet_sim.Stats.summaries} for their run-total sections — so they
    are byte-identical across replays of the same seed. *)

module Engine = Manet_sim.Engine
module Stats = Manet_sim.Stats

type t

val create : ?window:float -> Engine.t -> t
(** [window] is the bucket length in simulated seconds (default 1.0).
    Raises [Invalid_argument] if [window <= 0]. *)

val window : t -> float
val set_enabled : t -> bool -> unit
val enabled : t -> bool

val global_node : int
(** The pseudo-node index ([-1]) under which every sample is also
    aggregated. *)

(** {1 Recording} *)

val record : t -> node:int -> ?by:int -> string -> unit
(** Bump counter [name] for [node] (and the global aggregate) in the
    window containing the current simulated time.  No-op while
    disabled. *)

val observe : t -> node:int -> string -> float -> unit
(** Add one float sample to series [name] (count/sum/min/max per
    window, per node and global).  No-op while disabled. *)

(** {1 Reading} *)

val counter_total : t -> node:int -> string -> int
(** Sum of [name]'s windows for [node] ({!global_node} for the run
    total). *)

(** {1 Export} *)

val to_csv : ?stats:Stats.t -> t -> string
(** Deterministic CSV, one row per (window, node, metric) cell, sorted
    by kind, name, node, window.  With [stats], run totals from the
    flat stats table are appended as [stat_counter] / [stat_summary]
    rows (relying on their sorted-output guarantee). *)

val to_prom : ?stats:Stats.t -> t -> string
(** Prometheus-style text exposition of the same data: windowed cells
    as [manetsim_counter] / [manetsim_series_*] samples labelled by
    name, node and window start, plus optional [manetsim_stat_*] run
    totals.  Deterministic byte output. *)
