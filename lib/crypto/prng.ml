(* xoshiro256** by Blackman & Vigna, seeded via splitmix64.  Both are
   public-domain reference algorithms, transcribed for OCaml's boxed
   int64. *)

type t = {
  mutable s0 : int64;
  mutable s1 : int64;
  mutable s2 : int64;
  mutable s3 : int64;
}

let ( +% ) = Int64.add
let ( *% ) = Int64.mul
let ( ^% ) = Int64.logxor

let rotl x k = Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

(* splitmix64: a one-off mixer used only to spread a small seed over the
   256-bit xoshiro state. *)
let splitmix64 state =
  state := !state +% 0x9E3779B97F4A7C15L;
  let z = !state in
  let z = (z ^% Int64.shift_right_logical z 30) *% 0xBF58476D1CE4E5B9L in
  let z = (z ^% Int64.shift_right_logical z 27) *% 0x94D049BB133111EBL in
  z ^% Int64.shift_right_logical z 31

let create ~seed =
  let st = ref (Int64.of_int seed) in
  let s0 = splitmix64 st in
  let s1 = splitmix64 st in
  let s2 = splitmix64 st in
  let s3 = splitmix64 st in
  { s0; s1; s2; s3 }

let copy g = { s0 = g.s0; s1 = g.s1; s2 = g.s2; s3 = g.s3 }

let bits64 g =
  let result = rotl (g.s1 *% 5L) 7 *% 9L in
  let t = Int64.shift_left g.s1 17 in
  g.s2 <- g.s2 ^% g.s0;
  g.s3 <- g.s3 ^% g.s1;
  g.s1 <- g.s1 ^% g.s2;
  g.s0 <- g.s0 ^% g.s3;
  g.s2 <- g.s2 ^% t;
  g.s3 <- rotl g.s3 45;
  result

let split g =
  let st = ref (bits64 g) in
  let s0 = splitmix64 st in
  let s1 = splitmix64 st in
  let s2 = splitmix64 st in
  let s3 = splitmix64 st in
  { s0; s1; s2; s3 }

let int64 g bound =
  if Int64.compare bound 0L <= 0 then invalid_arg "Prng.int64: bound <= 0";
  (* Rejection sampling over the top 63 bits to avoid modulo bias. *)
  let rec loop () =
    let raw = Int64.shift_right_logical (bits64 g) 1 in
    let v = Int64.rem raw bound in
    if Int64.compare (Int64.sub raw v) (Int64.sub (Int64.sub Int64.max_int bound) 1L) <= 0
    then v
    else loop ()
  in
  loop ()

let int g bound =
  if bound <= 0 then invalid_arg "Prng.int: bound <= 0";
  Int64.to_int (int64 g (Int64.of_int bound))

let float g bound =
  (* 53 random bits scaled into [0, 1). *)
  let raw = Int64.shift_right_logical (bits64 g) 11 in
  Int64.to_float raw /. 9007199254740992.0 *. bound

let bool g = Int64.logand (bits64 g) 1L = 1L

let bytes g n =
  let b = Bytes.create n in
  let i = ref 0 in
  while !i < n do
    let v = ref (bits64 g) in
    let k = min 8 (n - !i) in
    for j = 0 to k - 1 do
      Bytes.set b (!i + j) (Char.chr (Int64.to_int (Int64.logand !v 0xFFL)));
      v := Int64.shift_right_logical !v 8
    done;
    i := !i + k
  done;
  Bytes.unsafe_to_string b

let shuffle g a =
  for i = Array.length a - 1 downto 1 do
    let j = int g (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let exponential g ~mean =
  let u = float g 1.0 in
  (* 1 - u is in (0, 1], so log is finite. *)
  -.mean *. log (1.0 -. u)
