(** Host wall-clock sampling, for profiling only.

    The simulation's own time domain is {!Engine.now}; nothing in the
    protocols or the fault planner may read this clock.  It exists so the
    engine can attribute real elapsed time to event classes
    ({!Engine.profile}) without perturbing replay determinism: the
    sampled values are stored off to the side and surface only in the
    JSON run report, which is explicitly not byte-stable across runs. *)

val now_s : unit -> float
(** Seconds since the Unix epoch, sub-microsecond resolution. *)
