lib/proto/codec.ml: Char Int64 List Manet_ipv6 String
