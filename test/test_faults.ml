(* Fault-injection subsystem: plan builders, determinism of faulted
   runs, crash/restart re-bootstrap, and partition/heal recovery through
   the secure route-maintenance machinery. *)

module Address = Manet_ipv6.Address
module Engine = Manet_sim.Engine
module Stats = Manet_sim.Stats
module Trace = Manet_sim.Trace
module Net = Manet_sim.Net
module Dad = Manet_dad.Dad
module Dns = Manet_dns.Dns
module Credit = Manet_secure.Credit
module Secure = Manet_secure.Secure_routing
module Faults = Manet_faults.Faults
module Resilience = Manet_faults.Resilience
module Scenario = Manetsec.Scenario

let stat s name = Stats.get (Scenario.stats s) name

let chain_params ~n ~seed =
  {
    Scenario.default_params with
    n;
    seed;
    range = 250.0;
    topology = Scenario.Chain { spacing = 200.0 };
  }

(* ------------------------------------------------------------------ *)
(* Plan builders                                                      *)
(* ------------------------------------------------------------------ *)

let test_builders () =
  let plan =
    Faults.seq
      [
        Faults.outage ~from:1.0 ~until:2.0 3;
        Faults.flap ~from:0.0 ~until:2.5 ~period:1.0 1 2;
        Faults.partition ~from:4.0 ~until:5.0 [ 1; 2 ];
      ]
  in
  Faults.validate ~n:5 plan;
  Alcotest.(check int) "outage+flap+partition steps" 8 (List.length plan);
  (* The flap must leave the link up at the window end. *)
  let last_flap =
    List.filter
      (fun { Faults.event; _ } ->
        match event with
        | Faults.Link_up (1, 2) | Faults.Link_down (1, 2) -> true
        | _ -> false)
      plan
    |> List.rev |> List.hd
  in
  (match last_flap.Faults.event with
  | Faults.Link_up _ -> ()
  | _ -> Alcotest.fail "flap must end with the link up");
  Alcotest.check_raises "node out of range"
    (Invalid_argument "Faults.validate: crash node 9 outside [0,5)")
    (fun () -> Faults.validate ~n:5 (Faults.crash ~at:1.0 9));
  Alcotest.check_raises "self-link"
    (Invalid_argument "Faults.validate: self-link") (fun () ->
      Faults.validate ~n:5 (Faults.link_down ~at:1.0 2 2))

let test_churn_pure () =
  let mk () =
    Faults.churn ~seed:99 ~nodes:[ 1; 2; 3 ] ~horizon:50.0 ~mean_up:10.0
      ~mean_down:3.0
  in
  let a = mk () and b = mk () in
  Alcotest.(check bool) "same args, same plan" true (a = b);
  Alcotest.(check bool) "non-empty" true (List.length a > 0);
  Faults.validate ~n:4 a;
  List.iter
    (fun { Faults.at; _ } ->
      Alcotest.(check bool) "within horizon" true (at >= 0.0 && at <= 50.0))
    a;
  (* Every crash is eventually matched by a restart, so the plan leaves
     the network whole. *)
  let balance = Hashtbl.create 4 in
  List.iter
    (fun { Faults.event; _ } ->
      match event with
      | Faults.Crash i ->
          Hashtbl.replace balance i
            ((match Hashtbl.find_opt balance i with Some v -> v | None -> 0) + 1)
      | Faults.Restart i ->
          Hashtbl.replace balance i
            ((match Hashtbl.find_opt balance i with Some v -> v | None -> 0) - 1)
      | _ -> ())
    a;
  Hashtbl.iter
    (fun node v ->
      Alcotest.(check int) (Printf.sprintf "node %d ends up" node) 0 v)
    balance

(* ------------------------------------------------------------------ *)
(* Determinism                                                        *)
(* ------------------------------------------------------------------ *)

let faulted_run () =
  let s = Scenario.create (chain_params ~n:6 ~seed:42) in
  let engine = Scenario.engine s in
  Trace.enable (Engine.trace engine);
  Scenario.bootstrap s;
  let t0 = Engine.now engine in
  Scenario.start_cbr s ~flows:[ (1, 4); (2, 5) ] ~interval:0.5 ~duration:30.0 ();
  Scenario.inject s
    (Faults.seq
       [
         Faults.partition ~from:(t0 +. 5.0) ~until:(t0 +. 12.0) [ 3; 4; 5 ];
         Faults.outage ~from:(t0 +. 15.0) ~until:(t0 +. 20.0) 2;
         Faults.flap ~from:(t0 +. 22.0) ~until:(t0 +. 25.0) ~period:1.0 1 2;
         Faults.degrade ~from:(t0 +. 26.0) ~until:(t0 +. 28.0)
           ~channel:
             (Faults.gilbert_elliott ~p_good_to_bad:0.2 ~p_bad_to_good:0.4 ())
           ~baseline:(Net.Uniform { loss = 0.0 });
       ]);
  Scenario.run s ~until:(t0 +. 35.0);
  (Trace.render (Engine.trace engine), Stats.snapshot (Scenario.stats s))

let test_determinism () =
  let trace1, stats1 = faulted_run () in
  let trace2, stats2 = faulted_run () in
  Alcotest.(check bool) "trace non-trivial" true (String.length trace1 > 1000);
  Alcotest.(check string) "byte-identical trace" trace1 trace2;
  Alcotest.(check (list (pair string int))) "identical counters" stats1 stats2;
  Alcotest.(check bool) "faults actually fired" true
    (Stats.snapshot_get stats1 "fault.partition" = 1
    && Stats.snapshot_get stats1 "fault.crash" = 1
    && Stats.snapshot_get stats1 "fault.channel" = 2)

(* ------------------------------------------------------------------ *)
(* Crash -> restart re-runs DAD and re-registers with the DNS         *)
(* ------------------------------------------------------------------ *)

let test_crash_restart_redad () =
  let s = Scenario.create (chain_params ~n:5 ~seed:5) in
  let engine = Scenario.engine s in
  Trace.enable (Engine.trace engine);
  Scenario.bootstrap s;
  let dns = Option.get (Scenario.dns_server s) in
  let addr3 = Scenario.address_of s 3 in
  Alcotest.(check bool) "node3 registered before crash" true
    (List.mem_assoc "node3" (Dns.entries dns));
  let configured_before = stat s "dad.configured" in
  let t0 = Engine.now engine in
  Scenario.inject s (Faults.outage ~from:(t0 +. 2.0) ~until:(t0 +. 6.0) 3);
  Scenario.run s ~until:(t0 +. 20.0);
  Alcotest.(check int) "one crash" 1 (stat s "fault.crash");
  Alcotest.(check int) "one restart" 1 (stat s "fault.restart");
  Alcotest.(check int) "restart re-ran DAD to completion"
    (configured_before + 1) (stat s "dad.configured");
  Alcotest.(check bool) "node3 configured again" true
    (Dad.is_configured (Scenario.node s 3).Scenario.dad);
  (match Resilience.redad_convergence (Engine.trace engine) ~node:3 with
  | Some dt -> Alcotest.(check bool) "re-DAD took positive time" true (dt > 0.0)
  | None -> Alcotest.fail "no dad.configured after fault.restart in trace");
  (* Same identity, so the same CGA address and an unchanged DNS row. *)
  Alcotest.(check bool) "address survives the restart" true
    (Address.equal addr3 (Scenario.address_of s 3));
  Alcotest.(check bool) "DNS still maps node3 to the same address" true
    (match List.assoc_opt "node3" (Dns.entries dns) with
    | Some a -> Address.equal a addr3
    | None -> false);
  Alcotest.(check int) "re-registration raised no conflict" 0
    (stat s "dad.duplicate_detected")

(* ------------------------------------------------------------------ *)
(* Partition -> heal: RERR, credit penalties, re-discovery            *)
(* ------------------------------------------------------------------ *)

let test_partition_heal_recovery () =
  let params =
    {
      (chain_params ~n:5 ~seed:9) with
      secure_config =
        {
          Secure.default_config with
          credit = { Credit.default_config with rerr_threshold = 0 };
        };
    }
  in
  let s = Scenario.create params in
  let engine = Scenario.engine s in
  Scenario.bootstrap s;
  let t0 = Engine.now engine in
  let fault_at = t0 +. 8.0 and heal_at = t0 +. 16.0 and stop = t0 +. 30.0 in
  Scenario.start_cbr s ~flows:[ (1, 4) ] ~interval:0.5 ~duration:(stop -. t0) ();
  let mon = Resilience.monitor ~period:1.0 ~until:stop engine in
  Resilience.mark mon ~at:(t0 +. 0.5) "start";
  Resilience.mark mon ~at:fault_at "fault";
  Resilience.mark mon ~at:heal_at "heal";
  Resilience.mark mon ~at:(stop -. 0.5) "end";
  (* Cut between 2 and 3: the 1 -> 4 flow dies at its forwarder. *)
  Scenario.inject s (Faults.partition ~from:fault_at ~until:heal_at [ 3; 4 ]);
  Scenario.run s ~until:(stop +. 5.0);
  Alcotest.(check bool) "signed RERR sent" true (stat s "rerr.sent" >= 1);
  Alcotest.(check bool) "RERR consumed" true (stat s "rerr.received" >= 1);
  Alcotest.(check bool) "chronic reporter suspected" true
    (stat s "secure.hostile_suspected" >= 1);
  (* The source (node 1) slashes the RERR reporter (node 2). *)
  let credit_1 =
    match (Scenario.node s 1).Scenario.routing with
    | Scenario.Secure_agent a -> Secure.credits a
    | _ -> Alcotest.fail "expected the secure protocol"
  in
  Alcotest.(check bool) "credit penalty applied" true
    (Credit.get credit_1 (Scenario.address_of s 2) < 0.0);
  (* Delivery collapses during the cut and recovers after the heal. *)
  let phase a b =
    match Resilience.phase mon ~from_mark:a ~to_mark:b with
    | Some r -> r
    | None -> Alcotest.fail (Printf.sprintf "phase %s -> %s empty" a b)
  in
  Alcotest.(check bool) "healthy before the fault" true
    (phase "start" "fault" > 0.9);
  Alcotest.(check bool) "dead during the partition" true
    (phase "fault" "heal" < 0.3);
  Alcotest.(check bool) "recovered after the heal" true
    (phase "heal" "end" > 0.7);
  (match Resilience.route_repair_latency mon ~fault_at:heal_at with
  | Some l -> Alcotest.(check bool) "repair latency sane" true (l <= 5.0)
  | None -> Alcotest.fail "route never repaired after heal")

(* ------------------------------------------------------------------ *)
(* Scenario.inject guard rails                                        *)
(* ------------------------------------------------------------------ *)

let test_inject_guards () =
  let s = Scenario.create (chain_params ~n:4 ~seed:3) in
  Alcotest.check_raises "DNS host cannot churn"
    (Invalid_argument "Scenario.inject: node 0 hosts the DNS and cannot churn")
    (fun () -> Scenario.inject s (Faults.crash ~at:1.0 0));
  Alcotest.check_raises "node outside the scenario"
    (Invalid_argument "Faults.validate: crash node 7 outside [0,4)")
    (fun () -> Scenario.inject s (Faults.crash ~at:1.0 7))

let suites =
  [
    ( "faults",
      [
        Alcotest.test_case "plan builders" `Quick test_builders;
        Alcotest.test_case "churn is pure" `Quick test_churn_pure;
        Alcotest.test_case "faulted run is deterministic" `Quick test_determinism;
        Alcotest.test_case "crash/restart re-runs DAD" `Quick test_crash_restart_redad;
        Alcotest.test_case "partition/heal recovery" `Quick test_partition_heal_recovery;
        Alcotest.test_case "inject guard rails" `Quick test_inject_guards;
      ] );
  ]
