(* Disaster rescue: teams arrive over time, the network is mobile, links
   break and heal, and coordination traffic must keep flowing.  This
   exercises staggered secure bootstrapping, random-waypoint mobility,
   route maintenance (RERR) and rediscovery under churn.

   Run with:  dune exec examples/disaster_rescue.exe *)

module Scenario = Manetsec.Scenario
module Engine = Manetsec.Sim.Engine
module Stats = Manetsec.Sim.Stats
module Mobility = Manetsec.Sim.Mobility
module Address = Manetsec.Ipv6.Address

let () =
  let params =
    {
      Scenario.default_params with
      n = 25;
      seed = 404;
      range = 250.0;
      topology = Scenario.Random { width = 800.0; height = 800.0 };
      (* Rescue teams on foot / slow vehicles. *)
      mobility =
        Mobility.Random_waypoint { min_speed = 1.0; max_speed = 8.0; pause = 3.0 };
    }
  in
  let s = Scenario.create params in

  (* Teams power up their radios one by one (two per simulated second). *)
  Scenario.bootstrap ~stagger:0.5 s;
  let st = Scenario.stats s in
  Printf.printf "Bootstrap: %d configured, %d address collisions, %d name conflicts\n"
    (Stats.get st "dad.configured")
    (Stats.get st "dad.collision")
    (Stats.get st "dad.name_conflict");

  (* Coordination traffic: field teams report to two coordinators (nodes
     1 and 2), and the coordinators talk to each other. *)
  let flows =
    (1, 2) :: List.concat_map (fun i -> [ (i, 1); (i, 2) ]) [ 5; 9; 13; 17; 21 ]
  in
  Scenario.start_cbr s ~flows ~interval:1.0 ~size:256 ~duration:120.0 ();

  (* Report progress every 30 simulated seconds. *)
  let rec report at last_delivered =
    Engine.schedule_at (Scenario.engine s) ~time:at (fun () ->
        let d = Stats.get st "data.delivered" in
        Printf.printf "  t=%4.0fs  delivered %4d (+%d)  rerr %3d  rediscoveries %3d\n"
          at d (d - last_delivered)
          (Stats.get st "rerr.received")
          (Stats.get st "route.discoveries");
        report (at +. 30.0) d)
  in
  report (Engine.now (Scenario.engine s) +. 30.0) 0;
  Scenario.run s ~until:(Engine.now (Scenario.engine s) +. 150.0);

  Printf.printf "\nAfter 150 s of operation under mobility:\n";
  Printf.printf "  delivery ratio    %.2f\n" (Scenario.delivery_ratio s);
  Printf.printf "  packets offered   %d\n" (Stats.get st "data.offered");
  Printf.printf "  packets delivered %d\n" (Stats.get st "data.delivered");
  Printf.printf "  route errors      %d\n" (Stats.get st "rerr.received");
  Printf.printf "  link failures     %d\n" (Stats.get st "data.timeout");
  (match Stats.summary st "route.hops" with
  | Some h ->
      Printf.printf "  route length      %.1f hops mean (max %.0f)\n" h.Stats.mean
        h.Stats.max
  | None -> ());
  (match Scenario.mean_latency s with
  | Some l -> Printf.printf "  mean latency      %.1f ms\n" (l *. 1000.0)
  | None -> ())
