bench/micro.ml: Analyze Bechamel Benchmark Hashtbl Instance List Manetsec Measure Printf Staged Test Time Toolkit Util
