type t = { hi : int64; lo : int64 }

let make ~hi ~lo = { hi; lo }

let compare a b =
  let c = Int64.unsigned_compare a.hi b.hi in
  if c <> 0 then c else Int64.unsigned_compare a.lo b.lo

let equal a b = Int64.equal a.hi b.hi && Int64.equal a.lo b.lo

let hash a =
  Int64.to_int (Int64.logxor a.hi (Int64.mul a.lo 0x9E3779B97F4A7C15L)) land max_int

let unspecified = { hi = 0L; lo = 0L }
let loopback = { hi = 0L; lo = 1L }

let of_groups g =
  if Array.length g <> 8 then invalid_arg "Address.of_groups: need 8 groups";
  Array.iter
    (fun v -> if v < 0 || v > 0xFFFF then invalid_arg "Address.of_groups: group out of range")
    g;
  let pack a b c d =
    Int64.logor
      (Int64.shift_left (Int64.of_int a) 48)
      (Int64.logor
         (Int64.shift_left (Int64.of_int b) 32)
         (Int64.logor (Int64.shift_left (Int64.of_int c) 16) (Int64.of_int d)))
  in
  { hi = pack g.(0) g.(1) g.(2) g.(3); lo = pack g.(4) g.(5) g.(6) g.(7) }

let to_groups a =
  let unpack v =
    [|
      Int64.to_int (Int64.logand (Int64.shift_right_logical v 48) 0xFFFFL);
      Int64.to_int (Int64.logand (Int64.shift_right_logical v 32) 0xFFFFL);
      Int64.to_int (Int64.logand (Int64.shift_right_logical v 16) 0xFFFFL);
      Int64.to_int (Int64.logand v 0xFFFFL);
    |]
  in
  Array.append (unpack a.hi) (unpack a.lo)

let of_bytes s =
  if String.length s <> 16 then invalid_arg "Address.of_bytes: need 16 bytes";
  let word off =
    let v = ref 0L in
    for i = 0 to 7 do
      v := Int64.logor (Int64.shift_left !v 8) (Int64.of_int (Char.code s.[off + i]))
    done;
    !v
  in
  { hi = word 0; lo = word 8 }

let to_bytes a =
  let b = Bytes.create 16 in
  let put off v =
    for i = 0 to 7 do
      Bytes.set b (off + i)
        (Char.chr (Int64.to_int (Int64.logand (Int64.shift_right_logical v ((7 - i) * 8)) 0xFFL)))
    done
  in
  put 0 a.hi;
  put 8 a.lo;
  Bytes.unsafe_to_string b

(* --- parsing ---------------------------------------------------------- *)

let parse_group s =
  let len = String.length s in
  if len = 0 || len > 4 then None
  else begin
    let v = ref 0 in
    let ok = ref true in
    String.iter
      (fun c ->
        let d =
          match c with
          | '0' .. '9' -> Char.code c - Char.code '0'
          | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
          | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
          | _ ->
              ok := false;
              0
        in
        v := (!v lsl 4) lor d)
      s;
    if !ok then Some !v else None
  end

let parse_ipv4_tail s =
  (* "a.b.c.d" -> two 16-bit groups *)
  match String.split_on_char '.' s with
  | [ a; b; c; d ] -> (
      let byte x =
        match int_of_string_opt x with
        | Some v when v >= 0 && v <= 255 && String.length x <= 3 && x <> "" -> Some v
        | _ -> None
      in
      match (byte a, byte b, byte c, byte d) with
      | Some a, Some b, Some c, Some d -> Some [ (a lsl 8) lor b; (c lsl 8) lor d ]
      | _ -> None)
  | _ -> None

let parse_side s =
  (* Parse a "g:g:...:g" fragment (no "::") into a list of 16-bit groups.
     The last component may be an embedded IPv4 dotted quad. *)
  if s = "" then Some []
  else begin
    let parts = String.split_on_char ':' s in
    let rec go acc = function
      | [] -> Some (List.rev acc)
      | [ last ] when String.contains last '.' -> (
          match parse_ipv4_tail last with
          | Some gs -> Some (List.rev_append acc gs)
          | None -> None)
      | p :: rest -> (
          match parse_group p with
          | Some v -> go (v :: acc) rest
          | None -> None)
    in
    go [] parts
  end

let find_double_colon s =
  let n = String.length s in
  let rec go i =
    if i >= n - 1 then None
    else if s.[i] = ':' && s.[i + 1] = ':' then Some i
    else go (i + 1)
  in
  go 0

let of_string s =
  let fail reason = Error (Printf.sprintf "%S: %s" s reason) in
  match find_double_colon s with
  | None -> (
      match parse_side s with
      | Some groups when List.length groups = 8 -> Ok (of_groups (Array.of_list groups))
      | Some _ -> fail "wrong number of groups"
      | None -> fail "malformed group")
  | Some i -> (
      let left = String.sub s 0 i in
      let right = String.sub s (i + 2) (String.length s - i - 2) in
      if find_double_colon right <> None then fail "multiple '::'"
      else begin
        match (parse_side left, parse_side right) with
        | Some l, Some r ->
            let missing = 8 - List.length l - List.length r in
            if missing < 1 then fail "'::' expands to nothing"
            else begin
              let zeros = List.init missing (fun _ -> 0) in
              Ok (of_groups (Array.of_list (l @ zeros @ r)))
            end
        | _ -> fail "malformed group"
      end)

let of_string_exn s =
  match of_string s with
  | Ok a -> a
  | Error e -> invalid_arg ("Address.of_string_exn: " ^ e)

(* --- printing (RFC 5952) ---------------------------------------------- *)

let to_string a =
  let g = to_groups a in
  (* Longest run of >= 2 zero groups, leftmost on ties. *)
  let best_start = ref (-1) and best_len = ref 0 in
  let i = ref 0 in
  while !i < 8 do
    if g.(!i) = 0 then begin
      let j = ref !i in
      while !j < 8 && g.(!j) = 0 do incr j done;
      let len = !j - !i in
      if len >= 2 && len > !best_len then begin
        best_start := !i;
        best_len := len
      end;
      i := !j
    end
    else incr i
  done;
  let buf = Buffer.create 39 in
  if !best_start = -1 then begin
    Array.iteri
      (fun i v ->
        if i > 0 then Buffer.add_char buf ':';
        Buffer.add_string buf (Printf.sprintf "%x" v))
      g
  end
  else begin
    for i = 0 to !best_start - 1 do
      if i > 0 then Buffer.add_char buf ':';
      Buffer.add_string buf (Printf.sprintf "%x" g.(i))
    done;
    Buffer.add_string buf "::";
    for i = !best_start + !best_len to 7 do
      if i > !best_start + !best_len then Buffer.add_char buf ':';
      Buffer.add_string buf (Printf.sprintf "%x" g.(i))
    done
  end;
  Buffer.contents buf

let pp fmt a = Format.pp_print_string fmt (to_string a)

(* --- well-known constants and prefixes -------------------------------- *)

let site_local_prefix = { hi = 0xFEC0_0000_0000_0000L; lo = 0L }

let matches_prefix a ~prefix ~len =
  if len < 0 || len > 128 then invalid_arg "Address.matches_prefix: bad length";
  let mask64 bits =
    if bits <= 0 then 0L
    else if bits >= 64 then -1L
    else Int64.shift_left (-1L) (64 - bits)
  in
  let hi_mask = mask64 len and lo_mask = mask64 (len - 64) in
  Int64.equal (Int64.logand a.hi hi_mask) (Int64.logand prefix.hi hi_mask)
  && Int64.equal (Int64.logand a.lo lo_mask) (Int64.logand prefix.lo lo_mask)

let is_site_local a = matches_prefix a ~prefix:site_local_prefix ~len:10

let dns_server_1 = of_string_exn "fec0:0:0:ffff::1"
let dns_server_2 = of_string_exn "fec0:0:0:ffff::2"
let dns_server_3 = of_string_exn "fec0:0:0:ffff::3"

let interface_id a = a.lo
