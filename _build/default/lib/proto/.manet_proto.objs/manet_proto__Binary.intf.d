lib/proto/binary.mli: Messages
