(** The MANET's DNS server — the protocol's only security infrastructure.

    §3.2: the server owns a key pair whose public half every host knows
    before joining.  It maintains the domain-name table: permanent
    entries are pre-provisioned before network formation (impersonating
    those hosts is impossible); everything else registers online,
    first-come-first-served, through the DAD integration of §3.1:

    - it observes every fresh AREQ; a conflicting name draws a signed
      [DREP] back along the AREQ's route record, otherwise the
      registration is held pending for [commit_wait] seconds;
    - a verified duplicate-address warning (an AREP arriving at the DNS)
      cancels the pending registration, so a host whose DAD failed never
      gets a name bound to the contested address;
    - it answers routed name queries with signed replies, and processes
      the challenge-response IP-address change of §3.2 (the host proves
      ownership of both old and new CGAs under one key pair).

    Attach it to the co-located {!Manet_dad.Dad} agent with {!attach}. *)

module Address = Manet_ipv6.Address
module Messages = Manet_proto.Messages

type config = {
  commit_wait : float;
      (** seconds a registration stays pending, waiting for warnings *)
}

(* manetsem: allow dead-export — public API: the documented starting
   point for customised configs, symmetric with Srp.default_config. *)
val default_config : config

type t

val create : ?config:config -> Manet_proto.Node_ctx.t -> t
(** The node's identity must already hold the DNS's well-known address
    and key pair. *)

val attach : t -> Manet_dad.Dad.t -> unit
(** Register the AREQ observer and warning sink on this node's DAD
    agent. *)

val preload : t -> name:string -> Address.t -> unit
(** Pre-provision a permanent (name, address) entry — §3.2's public
    server case. *)

val lookup : t -> string -> Address.t option
val entries : t -> (string * Address.t) list
(** Committed entries, sorted by name. *)

val handle : t -> src:int -> Messages.t -> unit
(** Server-side processing of routed [Name_query], [Ip_change_request]
    and [Ip_change_proof] messages (plus forwarding when this node is an
    intermediate hop).  AREQ/AREP flow in through {!attach}. *)
