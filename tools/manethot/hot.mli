(** manethot — hot-path allocation & complexity analyzer.

    Where manetsem checks the security argument and manetdom checks
    domain-safety, manethot checks {e scale}: it parses the tree with
    compiler-libs and flags patterns that are harmless in cold code but
    hostile on the per-event path — allocation per call, polymorphic
    compare/hash, O(n) list walks, per-event closure construction.

    Hotness is declarative.  A committed roster
    ([tools/manethot/hotpaths.sexp], one [(Module function)] form per
    entry) names the seed functions: engine event dispatch, [Net]
    delivery and neighbour scan, the crypto verify path, [Hist]/[Perf]
    record sites.  Every analyzed top-level function referenced
    (called, or installed as a callback) from a hot function becomes
    hot too, to a fixpoint — so the rules follow the event wherever the
    code takes it, without per-function annotations in the tree.

    Rules:
    - ["hot-alloc"] — per-call allocation in a hot body: closures,
      tuples, records, array/list literals, list cons, [lazy], [ref],
      [^] string concatenation, [String.concat]/[Printf.sprintf]-style
      string building, and [Array.make]/[Buffer.create]-style builder
      calls.
    - ["hot-poly"] — polymorphic [compare]/[min]/[max], structural
      [=]/[<>] against a constructed operand, and generic-[Hashtbl]
      operations (polymorphic hash) on hot paths.
    - ["hot-list"] — [List.length]/[nth]/[mem]/[assoc]/[find]/… (O(n))
      and [@] list append in hot bodies.
    - ["hot-partial"] — a partially-applied callback passed to a known
      higher-order sink ([Engine.schedule], [List.iter], …): the
      closure is rebuilt at every call site execution.
    - ["roster"] — the hotpaths roster itself is malformed or names a
      function that no longer exists; the roster can never silently
      rot.
    - ["parse"] — a file failed to parse.

    Suppression uses the strict grammar (shared with manetdom): the
    directive [(* manethot: allow <rules> — rationale *)] may sit
    anywhere in a comment and {e must} carry a prose rationale after
    the rule names; a bare directive is itself an unsuppressible
    ["annotation"] finding. *)

type finding = Analyzer_common.Common.finding = {
  file : string;
  line : int;
  rule : string;
  msg : string;
}

val rules : string list
(** Rule identifiers accepted by the [allow] directives. *)

val analyze : roster:string * string -> (string * string) list -> finding list
(** [analyze ~roster:(path, text) files] parses the roster, computes
    the hot set over [files] (path, content pairs) and runs every rule
    over hot function bodies.  Findings are sorted by file, line, rule
    and filtered through in-source [allow] annotations; roster and
    annotation findings cannot be suppressed. *)

val hot_set : roster:string -> (string * string) list -> (string * string) list
(** [hot_set ~roster files] is the computed hot set — roster seeds plus
    transitive callees — as sorted (module, function) pairs.  Exposed
    for tests of the propagation semantics. *)
