lib/secure/secure_routing.mli: Credit Manet_ipv6 Manet_proto
