(** Positioned S-expressions — the concrete syntax of scenario files.

    A deliberately small dialect, hand-rolled in the spirit of
    {!Manet_obs.Json} (no new dependencies): atoms, double-quoted atoms
    with the usual backslash escapes, parenthesised lists, and [;]
    line comments.  Every node carries the 1-based line/column where it
    started, so the typed decoder in {!Scn} can reject malformed files
    with positioned, human-readable errors. *)

type pos = { line : int; col : int }
(** 1-based source position. *)

type t =
  | Atom of pos * string
  | List of pos * t list

exception Parse_error of { pos : pos; msg : string }

val pos_of : t -> pos
(** The position where the form starts. *)

val parse : string -> t list
(** All toplevel forms of the input.  Raises {!Parse_error} on lexical
    or bracketing errors (with the position of the offending byte, or of
    the unclosed opening parenthesis). *)
